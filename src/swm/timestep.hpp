#pragma once

/// \file timestep.hpp
/// Time-integration building blocks: element-wise field updates in a
/// chosen accumulation precision, with or without compensation.
///
/// The paper's three configurations of Fig. 5 map onto these:
///  * Float64 / Float32:        standard accumulation, Tprog == T
///  * Float16 (default):        compensated (Kahan) accumulation in T;
///                              "a compensated summation that
///                              compensates for the rounding error of
///                              the previous time step" (~5 % runtime)
///  * Float16/32 mixed:         RHS in Float16, accumulation in Float32
///                              (Tprog = float), no compensation

#include <span>
#include <type_traits>

#include "core/contracts.hpp"
#include "fp/traits.hpp"
#include "kernels/sweeps.hpp"
#include "swm/field.hpp"
#include "swm/rhs.hpp"

namespace tfx::swm {

/// How the prognostic update y_{n+1} = y_n + dt*F is accumulated.
enum class integration_scheme {
  standard,     ///< plain += in Tprog
  compensated,  ///< Kahan-compensated += in Tprog
};

/// Which sweep structure model<T, Tprog>::step runs. Both produce
/// bit-identical trajectories (tests/swm_fused_test); `unfused` keeps
/// the reference element-wise kernels alive for the fusion ablation
/// (bench/ablation_fusion) and as the comparison oracle.
///
/// The fused sweeps route native element types (double / float with
/// T == Tprog, per fp::vec_traits) through the dispatched vector
/// kernels in kernels/sweeps.hpp — explicitly vectorized at the runtime
/// width policy, bit-identical to the scalar loops at every width
/// (docs/KERNELS.md). Soft-float and analysis types keep the scalar
/// loops below.
enum class update_pipeline {
  fused,    ///< combine/down-cast/RHS as one region per stage; one
            ///< increment+apply sweep per field, no increment arrays
  unfused,  ///< separate serial sweeps: stage_combine x3, rk4_increment,
            ///< apply_increment[_compensated]
};

/// Lossless-where-possible precision cast (via double, exact for all
/// library formats).
template <typename To, typename From>
constexpr To fpcast(const From& v) {
  if constexpr (std::is_same_v<To, From>) {
    return v;
  } else {
    return To(static_cast<double>(v));
  }
}

/// out = y + a * k, element-wise, computed in Tprog (k cast up/down as
/// needed). Used to form the RK stage states.
template <typename Tprog, typename T>
void stage_combine(field2d<Tprog>& out, const field2d<Tprog>& y,
                   const field2d<T>& k, Tprog a) {
  auto o = out.flat();
  auto yy = y.flat();
  auto kk = k.flat();
  TFX_EXPECTS(o.size() == yy.size() && o.size() == kk.size());
  for (std::size_t idx = 0; idx < o.size(); ++idx) {
    o[idx] = yy[idx] + a * fpcast<Tprog>(kk[idx]);
  }
}

/// The RK4 combination (k1 + 2 k2 + 2 k3 + k4) / 6, in Tprog.
template <typename Tprog, typename T>
void rk4_increment(field2d<Tprog>& inc, const field2d<T>& k1,
                   const field2d<T>& k2, const field2d<T>& k3,
                   const field2d<T>& k4) {
  auto o = inc.flat();
  auto a = k1.flat();
  auto b = k2.flat();
  auto cc = k3.flat();
  auto d = k4.flat();
  const Tprog two{2};
  const Tprog sixth = Tprog(1.0 / 6.0);
  for (std::size_t idx = 0; idx < o.size(); ++idx) {
    const Tprog sum = fpcast<Tprog>(a[idx]) + two * fpcast<Tprog>(b[idx]) +
                      two * fpcast<Tprog>(cc[idx]) + fpcast<Tprog>(d[idx]);
    o[idx] = sixth * sum;
  }
}

/// y += inc, plain.
template <typename Tprog>
void apply_increment(field2d<Tprog>& y, const field2d<Tprog>& inc) {
  auto yy = y.flat();
  auto ii = inc.flat();
  for (std::size_t idx = 0; idx < yy.size(); ++idx) yy[idx] += ii[idx];
}

/// y += inc with Kahan compensation carried in `comp` across steps -
/// the compensated time integration of § III-B / Fig. 4's caption.
template <typename Tprog>
void apply_increment_compensated(field2d<Tprog>& y, const field2d<Tprog>& inc,
                                 field2d<Tprog>& comp) {
  auto yy = y.flat();
  auto ii = inc.flat();
  auto cc = comp.flat();
  for (std::size_t idx = 0; idx < yy.size(); ++idx) {
    const Tprog adjusted = ii[idx] - cc[idx];
    const Tprog t = yy[idx] + adjusted;
    cc[idx] = (t - yy[idx]) - adjusted;
    yy[idx] = t;
  }
}

// ---------------------------------------------------------------------------
// Fused update pipeline. The rk4_increment + apply_increment pair above
// costs two sweeps per field and a full increment array of traffic (one
// write, one read). Because the per-element arithmetic chains are
// independent, both can run in ONE sweep that never materializes the
// increment: the element value
//
//   inc = (k1 + 2 k2 + 2 k3 + k4) / 6        (evaluated in Tprog,
//                                              left-to-right, exactly as
//                                              rk4_increment writes it)
//
// feeds straight into y += inc (or the Kahan update), so the fused
// kernels are bit-identical to the unfused pair at every precision -
// tests/swm_fused_test pins this against the unfused path.
// ---------------------------------------------------------------------------

/// One element range of the fused standard update: y += rk4(k1..k4).
template <typename Tprog, typename T>
void fused_rk4_update_range(std::span<Tprog> y, std::span<const T> k1,
                            std::span<const T> k2, std::span<const T> k3,
                            std::span<const T> k4, std::size_t lo,
                            std::size_t hi) {
  if constexpr (std::is_same_v<T, Tprog> &&
                fp::vec_traits<Tprog>::kind == fp::vectorizability::native) {
    kernels::sweeps::rk4_update<Tprog>(y, k1, k2, k3, k4, lo, hi);
    return;
  }
  const Tprog two{2};
  const Tprog sixth = Tprog(1.0 / 6.0);
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const Tprog sum = fpcast<Tprog>(k1[idx]) + two * fpcast<Tprog>(k2[idx]) +
                      two * fpcast<Tprog>(k3[idx]) + fpcast<Tprog>(k4[idx]);
    y[idx] += sixth * sum;
  }
}

/// One element range of the fused compensated update: the Kahan
/// recurrence of apply_increment_compensated with the increment formed
/// in registers.
template <typename Tprog, typename T>
void fused_rk4_update_compensated_range(std::span<Tprog> y,
                                        std::span<Tprog> comp,
                                        std::span<const T> k1,
                                        std::span<const T> k2,
                                        std::span<const T> k3,
                                        std::span<const T> k4, std::size_t lo,
                                        std::size_t hi) {
  if constexpr (std::is_same_v<T, Tprog> &&
                fp::vec_traits<Tprog>::kind == fp::vectorizability::native) {
    kernels::sweeps::rk4_update_kahan<Tprog>(y, comp, k1, k2, k3, k4, lo, hi);
    return;
  }
  const Tprog two{2};
  const Tprog sixth = Tprog(1.0 / 6.0);
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const Tprog sum = fpcast<Tprog>(k1[idx]) + two * fpcast<Tprog>(k2[idx]) +
                      two * fpcast<Tprog>(k3[idx]) + fpcast<Tprog>(k4[idx]);
    const Tprog inc = sixth * sum;
    const Tprog adjusted = inc - comp[idx];
    const Tprog t = y[idx] + adjusted;
    comp[idx] = (t - y[idx]) - adjusted;
    y[idx] = t;
  }
}

/// Whole-field fused update, standard accumulation.
template <typename Tprog, typename T>
void fused_rk4_update(field2d<Tprog>& y, const field2d<T>& k1,
                      const field2d<T>& k2, const field2d<T>& k3,
                      const field2d<T>& k4) {
  TFX_EXPECTS(y.size() == k1.size());
  fused_rk4_update_range<Tprog, T>(y.flat(), k1.flat(), k2.flat(), k3.flat(),
                                   k4.flat(), 0, y.size());
}

/// Whole-field fused update, Kahan-compensated accumulation.
template <typename Tprog, typename T>
void fused_rk4_update_compensated(field2d<Tprog>& y, field2d<Tprog>& comp,
                                  const field2d<T>& k1, const field2d<T>& k2,
                                  const field2d<T>& k3,
                                  const field2d<T>& k4) {
  TFX_EXPECTS(y.size() == k1.size() && y.size() == comp.size());
  fused_rk4_update_compensated_range<Tprog, T>(y.flat(), comp.flat(),
                                               k1.flat(), k2.flat(), k3.flat(),
                                               k4.flat(), 0, y.size());
}

/// One element range of the fused stage combine: out = y + a*k for all
/// three prognostic fields in a single loop (one element-wise sweep
/// instead of three; per-field arithmetic identical to stage_combine).
template <typename Tprog, typename T>
void fused_stage_combine_range(state<Tprog>& out, const state<Tprog>& y,
                               const tendencies<T>& k, Tprog a, std::size_t lo,
                               std::size_t hi) {
  auto ou = out.u.flat();
  auto ov = out.v.flat();
  auto oe = out.eta.flat();
  auto yu = y.u.flat();
  auto yv = y.v.flat();
  auto ye = y.eta.flat();
  auto ku = k.du.flat();
  auto kv = k.dv.flat();
  auto ke = k.deta.flat();
  if constexpr (std::is_same_v<T, Tprog> &&
                fp::vec_traits<Tprog>::kind == fp::vectorizability::native) {
    // Elements are independent, so the interleaved three-field loop and
    // three per-field sweeps compute identical values; the per-field
    // form is what the vector kernel wants.
    kernels::sweeps::combine<Tprog>(ou, yu, ku, a, lo, hi);
    kernels::sweeps::combine<Tprog>(ov, yv, kv, a, lo, hi);
    kernels::sweeps::combine<Tprog>(oe, ye, ke, a, lo, hi);
    return;
  }
  for (std::size_t idx = lo; idx < hi; ++idx) {
    ou[idx] = yu[idx] + a * fpcast<Tprog>(ku[idx]);
    ov[idx] = yv[idx] + a * fpcast<Tprog>(kv[idx]);
    oe[idx] = ye[idx] + a * fpcast<Tprog>(ke[idx]);
  }
}

}  // namespace tfx::swm
