// Golden-trace suite for the observability plane (src/obs).
//
// The contract under test: the threaded mpisim runtime and the
// discrete-event engine, executing the same seeded program under the
// same fault plane, emit the *same* structured event stream - the same
// per-rank sequence of message-lifecycle records with matching payload
// words and virtual timestamps, and the same casualty set when crash
// schedules kill ranks. On top of that: DES traces are bitwise
// reproducible run over run, the Chrome export round-trips through the
// schema validator (balanced B/E pairs, monotone timestamps, declared
// tids) including on a chaos + rollback-recovery run, and the runtime
// toggle actually gates recording.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "core/table.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/des.hpp"
#include "mpisim/faultplane.hpp"
#include "mpisim/runtime.hpp"
#include "obs/chrome.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"
#include "swm/resilience.hpp"

using namespace tfx;
using namespace tfx::mpisim;

// Everything that inspects recorded events or gated metrics is vacuous
// when the plane is compiled out; those tests skip instead of failing
// so the -DTFX_OBS=OFF build stays green. (The validator tests below
// run either way - the schema checker has no gate.)
#define REQUIRE_OBS_COMPILED()                                          \
  if (!obs::compiled) {                                                 \
    GTEST_SKIP() << "observability plane compiled out (TFX_OBS=OFF)";   \
  }                                                                     \
  static_assert(true, "")

namespace {

/// RAII tracing session: clears the metrics registry (values must not
/// leak across tests), starts a fresh trace, stops on exit.
struct obs_session {
  obs_session() {
    obs::metrics_registry::instance().clear();
    obs::start();
  }
  ~obs_session() { obs::stop(); }
  obs_session(const obs_session&) = delete;
  obs_session& operator=(const obs_session&) = delete;
};

/// The chaos knobs of mpisim_fault_test: heavy enough that every fault
/// class injects, a retry budget deep enough that the chaos drains.
fault_config chaos_config(std::uint64_t seed) {
  fault_config cfg;
  cfg.seed = seed;
  cfg.probs.drop = 0.08;
  cfg.probs.duplicate = 0.05;
  cfg.probs.corrupt = 0.04;
  cfg.probs.reorder = 0.06;
  cfg.probs.delay = 0.05;
  cfg.retry.max_retries = 30;
  return cfg;
}

/// Deterministic pairwise-exchange program (the mpisim_fault_test
/// shape): paired sends/recvs plus a neighbour shift when p >= 3.
sim_program pairwise_program(int p, std::uint64_t seed, int rounds) {
  xoshiro256 rng(seed);
  sim_program prog(p);
  for (int round = 0; round < rounds; ++round) {
    for (int a = 0; a + 1 < p; a += 2) {
      const int b = a + 1;
      const std::size_t bytes = 1 + rng.bounded(4096);
      prog.rank(a).push_back(sim_op::send_to(b, bytes));
      prog.rank(b).push_back(sim_op::send_to(a, bytes));
      prog.rank(a).push_back(sim_op::recv_from(b, bytes));
      prog.rank(b).push_back(sim_op::recv_from(a, bytes));
    }
    for (int a = 0; a < p; ++a) {
      if (p < 3) break;
      prog.rank(a).push_back(sim_op::send_to((a + 1) % p, 256));
    }
    for (int a = 0; a < p; ++a) {
      if (p < 3) break;
      prog.rank(a).push_back(sim_op::recv_from((a + p - 1) % p, 256));
    }
  }
  return prog;
}

/// Execute a sim_program on the threaded runtime (tag 0, matching the
/// DES delivery records).
void run_threaded_program(world& w, const sim_program& prog) {
  w.run([&](communicator& comm) {
    const auto& ops = prog.ranks[static_cast<std::size_t>(comm.rank())];
    std::vector<std::byte> buf(1 << 13);
    for (const auto& op : ops) {
      switch (op.what) {
        case sim_op::kind::send:
          comm.send_bytes(std::span<const std::byte>(buf.data(), op.bytes),
                          op.peer, 0);
          break;
        case sim_op::kind::recv:
          comm.recv_bytes(std::span<std::byte>(buf.data(), op.bytes), op.peer,
                          0);
          break;
        case sim_op::kind::compute:
          comm.advance(op.seconds);
          break;
      }
    }
  });
}

struct rec {
  std::string name;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double ts = 0;
};

/// One rank's net-domain record sequence, in emission (= program)
/// order. net.dedup is filtered (receive-side discards exist only in
/// the threaded engine; the DES never materializes the discarded
/// copies) and so is net.casualty (compared as a set - the *timing* of
/// observing a peer's death is engine-specific, its existence is not).
std::vector<rec> net_records(const std::vector<obs::event>& events,
                             int track) {
  std::vector<rec> out;
  for (const auto& e : events) {
    if (e.dom != obs::domain::net) continue;
    if (e.track != static_cast<std::uint16_t>(track)) continue;
    if (std::strcmp(e.name, "net.dedup") == 0) continue;
    if (std::strcmp(e.name, "net.casualty") == 0) continue;
    out.push_back({e.name, e.a, e.b, e.ts});
  }
  return out;
}

/// The set of ranks the trace records as dead (net.casualty carries
/// the dying rank in `a`, equal to its track).
std::set<int> casualty_ranks(const std::vector<obs::event>& events) {
  std::set<int> out;
  for (const auto& e : events) {
    if (e.dom != obs::domain::net) continue;
    if (std::strcmp(e.name, "net.casualty") != 0) continue;
    EXPECT_EQ(e.a, e.track) << "casualty must carry the dying rank in a";
    out.insert(static_cast<int>(e.a));
  }
  return out;
}

std::uint64_t counter_value(std::string_view name) {
  return obs::metrics_registry::instance().get_counter(name).value();
}

}  // namespace

// ---------------------------------------------------------------------------
// Tentpole property: cross-engine golden traces. Same program, same
// fault plane => same per-rank event structure, payloads, and virtual
// timestamps on both engines; same flushed metrics.
// ---------------------------------------------------------------------------

class GoldenTrace
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(GoldenTrace, ThreadedMatchesDes) {
  REQUIRE_OBS_COMPILED();
  const auto [seed, p] = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed) + " ranks " +
               std::to_string(p));
  const auto prog = pairwise_program(p, seed, 3);
  const tofud_params net;
  const torus_placement place = torus_placement::line(p);
  const fault_config cfg = chaos_config(seed * 31 + 7);
  const fault_plane plane(cfg);

  std::vector<obs::event> threaded_events;
  fault_stats threaded_stats;
  std::uint64_t threaded_sends = 0, threaded_tx = 0;
  {
    const obs_session session;
    world w(place, net);
    w.set_faults(cfg);
    run_threaded_program(w, prog);
    threaded_events = obs::collect();
    threaded_stats = w.last_fault_report().stats;
    threaded_sends = counter_value("net.sends");
    threaded_tx = counter_value("net.tx_bytes.0->1");
    EXPECT_EQ(obs::dropped(), 0u);
  }

  std::vector<obs::event> des_events;
  des_result des;
  {
    const obs_session session;
    des = simulate(prog, net, place, {}, &plane);
    des_events = obs::collect();
    // The per-engine metric flushes land on the same names, so a
    // threaded run and its DES twin fill comparable registries.
    EXPECT_EQ(counter_value("net.sends"), threaded_sends);
    EXPECT_EQ(counter_value("net.sends"), des.stats.sends);
    EXPECT_EQ(counter_value("net.tx_bytes.0->1"), threaded_tx);
    EXPECT_EQ(obs::dropped(), 0u);
  }
  EXPECT_EQ(threaded_stats, des.stats);
  EXPECT_EQ(threaded_sends, threaded_stats.sends);

  std::size_t total = 0;
  for (int r = 0; r < p; ++r) {
    const auto want = net_records(des_events, r);
    const auto got = net_records(threaded_events, r);
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    for (std::size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE("rank " + std::to_string(r) + " event " +
                   std::to_string(i) + " (" + want[i].name + ")");
      EXPECT_EQ(got[i].name, want[i].name);
      EXPECT_EQ(got[i].a, want[i].a);
      EXPECT_EQ(got[i].b, want[i].b);
      // Both engines stamp the event from the same clock-update
      // formulas; only summation order may differ.
      EXPECT_NEAR(got[i].ts, want[i].ts, 1e-15 + 1e-9 * want[i].ts);
    }
    total += want.size();
  }
  EXPECT_GT(total, 0u) << "program produced no traffic";
  EXPECT_TRUE(casualty_ranks(threaded_events).empty());
  EXPECT_TRUE(casualty_ranks(des_events).empty());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsRanks, GoldenTrace,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 5, 9, 2026),
                       ::testing::Values(2, 4, 6)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_p" +
             std::to_string(std::get<1>(param_info.param));
    });

// A scheduled crash: both engines record the same casualty set, the
// scheduled rank's own casualty implicates itself (b == a), and every
// dead rank in the fault report has a trace record.
TEST(GoldenTraceCrash, CasualtySetsMatch) {
  REQUIRE_OBS_COMPILED();
  const int p = 6;
  const auto prog = pairwise_program(p, 11, 3);
  const tofud_params net;
  const torus_placement place = torus_placement::line(p);
  fault_config cfg;
  cfg.seed = 17;
  cfg.crashes.push_back({1, 2});  // rank 1 dies before its 3rd send
  const fault_plane plane(cfg);

  std::vector<obs::event> threaded_events;
  std::vector<int> threaded_crashed;
  {
    const obs_session session;
    world w(place, net);
    w.set_faults(cfg);
    try {
      run_threaded_program(w, prog);
    } catch (const comm_error&) {
      // Expected: the crash cascades into the blocked receivers.
    }
    threaded_events = obs::collect();
    threaded_crashed = w.last_fault_report().crashed;
  }

  std::vector<obs::event> des_events;
  des_result des;
  {
    const obs_session session;
    des = simulate(prog, net, place, {}, &plane);
    des_events = obs::collect();
  }

  const std::set<int> threaded_dead = casualty_ranks(threaded_events);
  const std::set<int> des_dead = casualty_ranks(des_events);
  EXPECT_EQ(threaded_dead, des_dead);
  EXPECT_EQ(threaded_dead,
            std::set<int>(threaded_crashed.begin(), threaded_crashed.end()));
  EXPECT_EQ(des_dead, std::set<int>(des.crashed.begin(), des.crashed.end()));
  ASSERT_TRUE(threaded_dead.count(1) == 1) << "scheduled crash not recorded";

  // The scheduled casualty implicates itself in both engines.
  for (const auto* events : {&threaded_events, &des_events}) {
    bool found_self = false;
    for (const auto& e : *events) {
      if (e.dom == obs::domain::net &&
          std::strcmp(e.name, "net.casualty") == 0 && e.track == 1) {
        EXPECT_EQ(e.a, 1u);
        if (e.b == 1u) found_self = true;
      }
    }
    EXPECT_TRUE(found_self) << "scheduled crash should implicate itself";
  }
}

// ---------------------------------------------------------------------------
// DES determinism: two runs of the same (program, seed) produce
// bitwise-identical traces - every field of every event, timestamps
// included.
// ---------------------------------------------------------------------------

TEST(DesTrace, BitReproducibleAcrossRuns) {
  REQUIRE_OBS_COMPILED();
  const int p = 6;
  const auto prog = pairwise_program(p, 42, 4);
  const tofud_params net;
  const torus_placement place = torus_placement::line(p);
  const fault_config cfg = chaos_config(4242);
  const fault_plane plane(cfg);

  const auto once = [&] {
    const obs_session session;
    simulate(prog, net, place, {}, &plane);
    return obs::collect();
  };
  const auto first = once();
  const auto second = once();

  ASSERT_EQ(first.size(), second.size());
  ASSERT_GT(first.size(), 0u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_STREQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].ts, second[i].ts);  // bitwise, no tolerance
    EXPECT_EQ(first[i].a, second[i].a);
    EXPECT_EQ(first[i].b, second[i].b);
    EXPECT_EQ(first[i].what, second[i].what);
    EXPECT_EQ(first[i].dom, second[i].dom);
    EXPECT_EQ(first[i].track, second[i].track);
  }
}

// ---------------------------------------------------------------------------
// Runtime toggle: nothing is recorded while the plane is off, and
// stop() really stops.
// ---------------------------------------------------------------------------

TEST(Toggle, GatesRecording) {
  REQUIRE_OBS_COMPILED();
  ASSERT_FALSE(obs::active());
  obs::instant(obs::domain::pool, 0, "ignored");
  {
    const obs_session session;
    ASSERT_TRUE(obs::active());
    obs::instant(obs::domain::pool, 0, "kept", 7, 9);
  }
  ASSERT_FALSE(obs::active());
  obs::instant(obs::domain::pool, 0, "ignored.too");

  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept");
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 9u);

  // Metrics obey the same gate.
  obs::metrics_registry::instance().clear();
  obs::metric_add("gated");
  EXPECT_EQ(counter_value("gated"), 0u);
}

// The ring drops the newest events on overflow and counts the loss -
// span begins are never orphaned by the drop policy.
TEST(Toggle, RingOverflowDropsNewestAndCounts) {
  REQUIRE_OBS_COMPILED();
  obs::start(/*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    obs::instant(obs::domain::pool, 0, "e", static_cast<std::uint64_t>(i));
  }
  obs::stop();
  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, i);  // the oldest prefix survived
  }
  EXPECT_EQ(obs::dropped(), 12u);
}

// ---------------------------------------------------------------------------
// Chrome export schema: the exporter's output round-trips through the
// validator, on a plain chaos run and on a chaos + crash + rollback
// recovery run (the TSan-exercised path: worker threads, fault plane,
// resilience protocol and SWM step spans all live at once).
// ---------------------------------------------------------------------------

TEST(ChromeSchema, ChaosRunValidates) {
  REQUIRE_OBS_COMPILED();
  std::vector<obs::event> events;
  {
    const obs_session session;
    world w(4);
    w.set_faults(chaos_config(7));
    w.run([&](communicator& comm) {
      std::vector<double> in{static_cast<double>(comm.rank() + 1)};
      std::vector<double> out{0.0};
      allreduce(comm, std::span<const double>(in), std::span<double>(out),
                ops::sum{});
      barrier(comm);
    });
    events = obs::collect();
  }
  ASSERT_GT(events.size(), 0u);

  const std::string json = obs::to_chrome_json(events, "obs_trace_test");
  const auto v = obs::validate_chrome_json(json);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, events.size());
  EXPECT_GT(v.spans, 0u) << "collective spans missing";
  EXPECT_GT(v.instants, 0u) << "message lifecycle instants missing";
  EXPECT_GT(v.metadata, 0u);
}

TEST(ChromeSchema, ChaosRecoveryRunValidates) {
  REQUIRE_OBS_COMPILED();
  const int p = 4;
  swm::swm_params params;
  params.nx = 32;
  params.ny = 16;

  swm::model<double> seedm(params);
  seedm.seed_random_eddies(7, 0.5);
  const swm::state<double> init = seedm.prognostic();

  mpisim::fault_config cfg;
  cfg.seed = 43;
  cfg.crashes.push_back({1, 120});
  cfg.probs.drop = 0.02;
  cfg.probs.corrupt = 0.02;
  cfg.retry.max_retries = 40;

  std::vector<obs::event> events;
  std::vector<int> rounds(static_cast<std::size_t>(p), 0);
  {
    const obs_session session;
    world w(p);
    w.set_faults(cfg);
    w.run([&](communicator& comm) {
      swm::distributed_model<double> dm(comm, params);
      dm.set_from_global(init);
      swm::resilience_options opt;
      opt.checkpoint_interval = 4;
      const auto report = swm::run_resilient(comm, dm, 12, opt);
      rounds[static_cast<std::size_t>(comm.rank())] = report.rounds;
    });
    events = obs::collect();
    EXPECT_EQ(obs::dropped(), 0u);
    EXPECT_GT(counter_value("resil.events"), 0u);
    EXPECT_GT(counter_value("swm.halo_bytes"), 0u);
  }
  ASSERT_GT(events.size(), 0u);
  EXPECT_GE(*std::max_element(rounds.begin(), rounds.end()), 1)
      << "the scheduled crash never triggered a recovery round";

  const std::string json = obs::to_chrome_json(events);
  const auto v = obs::validate_chrome_json(json);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, events.size());
  EXPECT_GT(v.spans, 0u);
}

// The validator is not a rubber stamp: hand-built malformed traces of
// each rejected class must fail with a diagnostic.
TEST(ChromeSchema, ValidatorRejectsMalformedTraces) {
  const char* meta =
      R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
      R"("args":{"name":"t"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":1000,)"
      R"("args":{"name":"pool/0"}})";

  const auto wrap = [&](const std::string& body) {
    return std::string(R"({"traceEvents":[)") + meta +
           (body.empty() ? "" : ",") + body + "]}";
  };

  // Well-formed baseline.
  EXPECT_TRUE(obs::validate_chrome_json(wrap("")).ok);
  EXPECT_TRUE(
      obs::validate_chrome_json(
          wrap(R"({"name":"s","ph":"B","pid":1,"tid":1000,"ts":1.0},)"
               R"({"name":"s","ph":"E","pid":1,"tid":1000,"ts":2.0})"))
          .ok);

  // Unbalanced: a span begin with no end.
  EXPECT_FALSE(
      obs::validate_chrome_json(
          wrap(R"({"name":"s","ph":"B","pid":1,"tid":1000,"ts":1.0})"))
          .ok);
  // Mismatched LIFO nesting.
  EXPECT_FALSE(
      obs::validate_chrome_json(
          wrap(R"({"name":"x","ph":"B","pid":1,"tid":1000,"ts":1.0},)"
               R"({"name":"y","ph":"B","pid":1,"tid":1000,"ts":2.0},)"
               R"({"name":"x","ph":"E","pid":1,"tid":1000,"ts":3.0},)"
               R"({"name":"y","ph":"E","pid":1,"tid":1000,"ts":4.0})"))
          .ok);
  // Timestamps moving backwards within a tid.
  EXPECT_FALSE(
      obs::validate_chrome_json(
          wrap(R"({"name":"a","ph":"i","pid":1,"tid":1000,"ts":5.0,"s":"t"},)"
               R"({"name":"b","ph":"i","pid":1,"tid":1000,"ts":4.0,"s":"t"})"))
          .ok);
  // Undeclared tid (no thread_name metadata).
  EXPECT_FALSE(
      obs::validate_chrome_json(
          wrap(R"({"name":"a","ph":"i","pid":1,"tid":2001,"ts":1.0,"s":"t"})"))
          .ok);
  // Unknown phase.
  EXPECT_FALSE(
      obs::validate_chrome_json(
          wrap(R"({"name":"a","ph":"X","pid":1,"tid":1000,"ts":1.0})"))
          .ok);
  // Not JSON at all.
  EXPECT_FALSE(obs::validate_chrome_json("]junk[").ok);
}

// ---------------------------------------------------------------------------
// Metrics registry semantics used by the exporters and benches.
// ---------------------------------------------------------------------------

TEST(Metrics, CountersGaugesHistograms) {
  REQUIRE_OBS_COMPILED();
  auto& reg = obs::metrics_registry::instance();
  reg.clear();
  obs::start();

  obs::metric_add("m.count");
  obs::metric_add("m.count", 4);
  obs::metric_set("m.gauge", 2.5);
  static constexpr double uppers[] = {1.0, 10.0};
  obs::metric_observe("m.hist", uppers, 0.5);
  obs::metric_observe("m.hist", uppers, 5.0);
  obs::metric_observe("m.hist", uppers, 50.0);
  obs::stop();

  EXPECT_EQ(reg.get_counter("m.count").value(), 5u);
  EXPECT_EQ(reg.get_gauge("m.gauge").value(), 2.5);
  auto& h = reg.get_histogram("m.hist", uppers);
  ASSERT_EQ(h.buckets(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);  // +inf overflow
  EXPECT_EQ(h.total(), 3u);

  // The flat table export carries one row per counter/gauge and one
  // per histogram bucket.
  const table t = reg.to_table();
  ASSERT_GE(t.rows(), 5u);

  // reset() zeroes values but keeps registrations and bucket layouts.
  reg.reset();
  EXPECT_EQ(reg.get_counter("m.count").value(), 0u);
  EXPECT_EQ(h.total(), 0u);
  ASSERT_EQ(h.buckets(), 3u);
}
