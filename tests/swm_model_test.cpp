// Shallow-water model: discrete operators, conservation, stability,
// determinism, and the exactness of the power-of-two scaling.

#include <gtest/gtest.h>

#include <cmath>

#include "swm/diagnostics.hpp"
#include "swm/model.hpp"
#include "swm/output.hpp"

using namespace tfx::swm;

namespace {

swm_params small_params() {
  swm_params p;
  p.nx = 48;
  p.ny = 24;
  return p;
}

}  // namespace

TEST(Field2d, IndexingAndWrap) {
  field2d<double> f(4, 3);
  f(0, 0) = 1.0;
  f(3, 2) = 2.0;
  EXPECT_EQ(f.flat()[0], 1.0);
  EXPECT_EQ(f.flat()[11], 2.0);
  EXPECT_EQ(f.ip(3), 0);
  EXPECT_EQ(f.im(0), 3);
  EXPECT_EQ(f.jp(2), 0);
  EXPECT_EQ(f.jm(0), 2);
  f.fill(7.0);
  EXPECT_EQ(f(2, 1), 7.0);
}

TEST(Field2d, ConvertRoundTrips) {
  field2d<double> f(5, 5);
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) f(i, j) = 0.25 * i - 0.5 * j;
  const auto g = convert_field<float>(f);
  const auto back = convert_field<double>(g);
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(back(i, j), f(i, j));  // quarters are exact in float
    }
}

TEST(Params, DerivedQuantities) {
  const swm_params p = small_params();
  EXPECT_DOUBLE_EQ(p.dx(), p.Lx / p.nx);
  // dt respects the gravity-wave CFL.
  const double c = std::sqrt(p.gravity * p.depth);
  EXPECT_LE(p.dt() * c / p.dx(), p.cfl + 1e-12);
  EXPECT_GT(p.visc_biharmonic(), 0.0);
}

TEST(Model, StableAndFiniteOverLongRun) {
  model<double> m(small_params());
  m.seed_random_eddies(1, 0.5);
  m.run(400);
  const auto d = m.diag();
  EXPECT_TRUE(d.finite);
  EXPECT_LT(d.cfl, 1.0);
  EXPECT_GT(d.energy, 0.0);
}

TEST(Model, MassConservedToRoundoff) {
  // The flux-form continuity equation conserves sum(eta) exactly in
  // exact arithmetic on periodic boundaries; in double it must stay at
  // roundoff relative to the field magnitude.
  model<double> m(small_params());
  m.seed_random_eddies(2, 0.5);
  const double area = small_params().Lx * small_params().Ly;
  m.run(250);
  const auto d = m.diag();
  const auto s = m.unscaled();
  double eta_rms = 0;
  for (double v : s.eta.flat()) eta_rms += v * v;
  eta_rms = std::sqrt(eta_rms / static_cast<double>(s.eta.size()));
  EXPECT_LT(std::abs(d.mass), 1e-9 * eta_rms * area);
}

TEST(Model, EnergyDecaysWithoutForcing) {
  swm_params p = small_params();
  p.wind_stress = 0.0;
  p.drag = 1e-5;
  model<double> m(p);
  m.seed_random_eddies(3, 0.5);
  double prev = m.diag().energy;
  for (int k = 0; k < 5; ++k) {
    m.run(40);
    const double e = m.diag().energy;
    EXPECT_LT(e, prev * 1.0001);
    prev = e;
  }
}

TEST(Model, WindSpinsUpFromRest) {
  model<double> m(small_params());  // starts at rest
  EXPECT_EQ(m.diag().energy, 0.0);
  m.run(100);
  const auto d = m.diag();
  EXPECT_GT(d.energy, 0.0);
  EXPECT_GT(d.max_speed, 0.0);
  EXPECT_TRUE(d.finite);
}

TEST(Model, DeterministicAcrossInstances) {
  model<double> a(small_params()), b(small_params());
  a.seed_random_eddies(7, 0.4);
  b.seed_random_eddies(7, 0.4);
  a.run(50);
  b.run(50);
  const auto sa = a.unscaled();
  const auto sb = b.unscaled();
  for (std::size_t k = 0; k < sa.eta.size(); ++k) {
    ASSERT_EQ(sa.eta.flat()[k], sb.eta.flat()[k]);
  }
}

TEST(Model, ScalingIsExactInFloat64) {
  // The power-of-two scaling must not change a double-precision
  // trajectory: every scale operation is exact and every coefficient
  // identical, so the unscaled states agree bit-for-bit.
  swm_params plain = small_params();
  swm_params scaled = small_params();
  scaled.log2_scale = 8;
  model<double> a(plain), b(scaled);
  a.seed_random_eddies(5, 0.5);
  b.seed_random_eddies(5, 0.5);
  a.run(60);
  b.run(60);
  const auto sa = a.unscaled();
  const auto sb = b.unscaled();
  double max_rel = 0;
  for (std::size_t k = 0; k < sa.u.size(); ++k) {
    const double d = std::abs(sa.u.flat()[k] - sb.u.flat()[k]);
    const double mag = std::abs(sa.u.flat()[k]) + 1e-30;
    max_rel = std::max(max_rel, d / mag);
  }
  EXPECT_LT(max_rel, 1e-12);
}

TEST(Model, Float32TracksFloat64) {
  model<double> a(small_params());
  model<float> b(small_params());
  a.seed_random_eddies(11, 0.5);
  b.seed_random_eddies(11, 0.5);
  a.run(150);
  b.run(150);
  const auto za = relative_vorticity(a.unscaled(), small_params());
  const auto zb = relative_vorticity(b.unscaled(), small_params());
  EXPECT_GT(correlation(za, zb), 0.999);
  EXPECT_LT(rmse(za, zb), 0.01 * rms(za) + 1e-12);
}

TEST(Model, CompensatedMatchesStandardInFloat64) {
  // At double precision the compensation is inert (corrections are
  // ~1e-16 of the state): trajectories must stay extremely close.
  model<double> a(small_params(), integration_scheme::standard);
  model<double> b(small_params(), integration_scheme::compensated);
  a.seed_random_eddies(13, 0.5);
  b.seed_random_eddies(13, 0.5);
  a.run(100);
  b.run(100);
  const auto za = relative_vorticity(a.unscaled(), small_params());
  const auto zb = relative_vorticity(b.unscaled(), small_params());
  EXPECT_GT(correlation(za, zb), 0.999999);
}

TEST(Model, GravityWaveDispersionMatchesTheory) {
  // Physics validation: a small-amplitude single-mode surface wave on
  // a non-rotating, unforced, inviscid fluid oscillates at
  // omega = sqrt(g h0) * k. Count zero crossings of eta at a probe
  // point over several periods and compare the implied frequency.
  swm_params p = small_params();
  p.coriolis_f0 = 0.0;
  p.coriolis_beta = 0.0;
  p.wind_stress = 0.0;
  p.drag = 0.0;
  p.visc_fraction = 0.0;

  model<double> m(p);
  const double amp = 0.01;  // linear regime
  for (int j = 0; j < p.ny; ++j) {
    for (int i = 0; i < p.nx; ++i) {
      m.prognostic().eta(i, j) =
          amp * std::cos(2.0 * M_PI * i / p.nx);
    }
  }

  const double k = 2.0 * M_PI / p.Lx;
  const double omega = std::sqrt(p.gravity * p.depth) * k;
  const double period = 2.0 * M_PI / omega;
  const int steps = static_cast<int>(3.0 * period / p.dt());

  int crossings = 0;
  double prev = m.prognostic().eta(0, 0);
  double t_first = 0, t_last = 0;
  for (int s = 0; s < steps; ++s) {
    m.step();
    const double cur = m.prognostic().eta(0, 0);
    if (prev * cur < 0.0) {
      ++crossings;
      const double t = m.time();
      if (crossings == 1) t_first = t;
      t_last = t;
    }
    prev = cur;
  }
  ASSERT_GE(crossings, 4);
  // Crossings are half a period apart.
  const double measured_period =
      2.0 * (t_last - t_first) / (crossings - 1);
  EXPECT_NEAR(measured_period, period, 0.05 * period);
}

TEST(Diagnostics, VorticityOfShearFlow) {
  // u = U0 sin(2 pi j / ny): zeta = -du/dy, checked against the
  // discrete derivative of the analytic profile.
  const swm_params p = small_params();
  state<double> s(p.nx, p.ny);
  s.fill(0.0);
  for (int j = 0; j < p.ny; ++j) {
    for (int i = 0; i < p.nx; ++i) {
      s.u(i, j) = std::sin(2.0 * M_PI * j / p.ny);
    }
  }
  const auto zeta = relative_vorticity(s, p);
  for (int j = 1; j < p.ny; ++j) {
    const double expected =
        -(s.u(0, j) - s.u(0, j - 1)) / p.dy();
    EXPECT_NEAR(zeta(5, j), expected, 1e-12);
  }
}

TEST(Diagnostics, CorrelationAndRmse) {
  field2d<double> a(8, 8), b(8, 8);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i) {
      a(i, j) = i + j;
      b(i, j) = 2.0 * (i + j) + 3.0;  // affine: perfect correlation
    }
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(rmse(a, a), 0.0, 1e-15);
  EXPECT_GT(rmse(a, b), 0.0);
}

TEST(Output, PgmAndCsvFiles) {
  field2d<double> f(16, 8);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 16; ++i) f(i, j) = std::sin(0.3 * i) * j;
  EXPECT_TRUE(write_pgm(f, "/tmp/tfx_test_field.pgm"));
  EXPECT_TRUE(write_csv(f, "/tmp/tfx_test_field.csv"));
  // PGM header sanity.
  FILE* fp = std::fopen("/tmp/tfx_test_field.pgm", "rb");
  ASSERT_NE(fp, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, fp), 2u);
  EXPECT_EQ(std::string(magic), "P5");
  std::fclose(fp);
}
