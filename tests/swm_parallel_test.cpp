// Thread-parallel RHS evaluation: bit-equality with serial at every
// precision, across pool sizes.

#include <gtest/gtest.h>

#include "core/threadpool.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::swm;
using tfx::fp::float16;

namespace {

swm_params params_for(int nx, int ny) {
  swm_params p;
  p.nx = nx;
  p.ny = ny;
  return p;
}

}  // namespace

class ParallelModel : public ::testing::TestWithParam<int> {};

TEST_P(ParallelModel, BitIdenticalToSerialFloat64) {
  const int threads = GetParam();
  const swm_params p = params_for(48, 24);
  const int steps = 25;

  model<double> serial(p);
  serial.seed_random_eddies(21, 0.5);
  serial.run(steps);

  thread_pool pool(threads);
  model<double> parallel(p);
  parallel.attach_pool(&pool);
  parallel.seed_random_eddies(21, 0.5);
  parallel.run(steps);

  const auto& a = serial.prognostic();
  const auto& b = parallel.prognostic();
  for (std::size_t k = 0; k < a.eta.size(); ++k) {
    ASSERT_EQ(a.u.flat()[k], b.u.flat()[k]) << k;
    ASSERT_EQ(a.v.flat()[k], b.v.flat()[k]) << k;
    ASSERT_EQ(a.eta.flat()[k], b.eta.flat()[k]) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelModel,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelModel, Float16RunsBitIdenticalToo) {
  // The FTZ mode is thread-local; for_rows propagates the caller's
  // mode into the workers, so a flushed serial run and a flushed
  // parallel run must agree bit for bit (the event *counters* spread
  // over per-thread instances, which is fine - they are diagnostics).
  tfx::fp::ftz_guard ftz(tfx::fp::ftz_mode::flush);
  swm_params p = params_for(32, 16);
  p.log2_scale = 12;

  model<float16> serial(p, integration_scheme::compensated);
  serial.seed_random_eddies(22, 0.5);
  serial.run(15);

  thread_pool pool(4);
  model<float16> parallel(p, integration_scheme::compensated);
  parallel.attach_pool(&pool);
  parallel.seed_random_eddies(22, 0.5);
  parallel.run(15);

  const auto& a = serial.prognostic();
  const auto& b = parallel.prognostic();
  for (std::size_t k = 0; k < a.eta.size(); ++k) {
    ASSERT_EQ(a.eta.flat()[k].bits(), b.eta.flat()[k].bits()) << k;
  }
}

TEST(ParallelModel, TinyGridFallsBackToSerial) {
  // Grids smaller than 2 rows per worker skip the pool entirely (no
  // point waking 8 threads for 4 rows); this must still be correct.
  const swm_params p = params_for(16, 8);  // square cells
  thread_pool pool(8);
  model<double> m(p);
  m.attach_pool(&pool);
  m.seed_random_eddies(23, 0.4);
  m.run(10);
  EXPECT_TRUE(m.diag().finite);
}
