#include "kernels/registry.hpp"

#include "arch/features.hpp"
#include "core/contracts.hpp"

namespace tfx::kernels {

blas_registry::blas_registry() {
  for (auto& backend : make_all_backends()) {
    backends_.emplace_back(std::move(backend));
  }
  // The paper's default remains the generic kernel ("Julia"); the
  // host's preferred Vec* backend is probed here (preferred_vectorized)
  // and one select_preferred_vectorized() away.
  current_.store(backends_.front().get(), std::memory_order_release);
}

blas_registry& blas_registry::instance() {
  static blas_registry registry;
  return registry;
}

bool blas_registry::register_backend(
    std::shared_ptr<const blas_backend> backend) {
  TFX_EXPECTS(backend != nullptr);
  const std::scoped_lock lock(mutex_);
  for (const auto& existing : backends_) {
    if (existing->name() == backend->name()) return false;
  }
  backends_.push_back(std::move(backend));
  return true;
}

bool blas_registry::set_current(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (const auto& backend : backends_) {
    if (backend->name() == name) {
      current_.store(backend.get(), std::memory_order_release);
      return true;
    }
  }
  return false;
}

std::shared_ptr<const blas_backend> blas_registry::current() const {
  // Non-owning alias: backends_ never shrinks, so the raw pointer is
  // valid for the registry's lifetime and the hot path stays a single
  // lock-free atomic load (std::atomic<shared_ptr> would be the
  // natural fit, but libstdc++'s implementation is a spinlock protocol
  // TSan cannot see through).
  return {std::shared_ptr<const blas_backend>{},
          current_.load(std::memory_order_acquire)};
}

std::string_view blas_registry::preferred_vectorized() const {
  switch (arch::preferred_vector_bits()) {
    case 512:
      return "Vec512";
    case 256:
      return "Vec256";
    default:
      return "Vec128";
  }
}

bool blas_registry::select_preferred_vectorized() {
  return set_current(preferred_vectorized());
}

std::shared_ptr<const blas_backend> blas_registry::find(
    std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& backend : backends_) {
    if (backend->name() == name) return backend;
  }
  return nullptr;
}

std::vector<std::string_view> blas_registry::names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string_view> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) out.push_back(backend->name());
  return out;
}

}  // namespace tfx::kernels
