#pragma once

/// \file timestep.hpp
/// Time-integration building blocks: element-wise field updates in a
/// chosen accumulation precision, with or without compensation.
///
/// The paper's three configurations of Fig. 5 map onto these:
///  * Float64 / Float32:        standard accumulation, Tprog == T
///  * Float16 (default):        compensated (Kahan) accumulation in T;
///                              "a compensated summation that
///                              compensates for the rounding error of
///                              the previous time step" (~5 % runtime)
///  * Float16/32 mixed:         RHS in Float16, accumulation in Float32
///                              (Tprog = float), no compensation

#include <type_traits>

#include "core/contracts.hpp"
#include "swm/field.hpp"
#include "swm/rhs.hpp"

namespace tfx::swm {

/// How the prognostic update y_{n+1} = y_n + dt*F is accumulated.
enum class integration_scheme {
  standard,     ///< plain += in Tprog
  compensated,  ///< Kahan-compensated += in Tprog
};

/// Lossless-where-possible precision cast (via double, exact for all
/// library formats).
template <typename To, typename From>
constexpr To fpcast(const From& v) {
  if constexpr (std::is_same_v<To, From>) {
    return v;
  } else {
    return To(static_cast<double>(v));
  }
}

/// out = y + a * k, element-wise, computed in Tprog (k cast up/down as
/// needed). Used to form the RK stage states.
template <typename Tprog, typename T>
void stage_combine(field2d<Tprog>& out, const field2d<Tprog>& y,
                   const field2d<T>& k, Tprog a) {
  auto o = out.flat();
  auto yy = y.flat();
  auto kk = k.flat();
  TFX_EXPECTS(o.size() == yy.size() && o.size() == kk.size());
  for (std::size_t idx = 0; idx < o.size(); ++idx) {
    o[idx] = yy[idx] + a * fpcast<Tprog>(kk[idx]);
  }
}

/// The RK4 combination (k1 + 2 k2 + 2 k3 + k4) / 6, in Tprog.
template <typename Tprog, typename T>
void rk4_increment(field2d<Tprog>& inc, const field2d<T>& k1,
                   const field2d<T>& k2, const field2d<T>& k3,
                   const field2d<T>& k4) {
  auto o = inc.flat();
  auto a = k1.flat();
  auto b = k2.flat();
  auto cc = k3.flat();
  auto d = k4.flat();
  const Tprog two{2};
  const Tprog sixth = Tprog(1.0 / 6.0);
  for (std::size_t idx = 0; idx < o.size(); ++idx) {
    const Tprog sum = fpcast<Tprog>(a[idx]) + two * fpcast<Tprog>(b[idx]) +
                      two * fpcast<Tprog>(cc[idx]) + fpcast<Tprog>(d[idx]);
    o[idx] = sixth * sum;
  }
}

/// y += inc, plain.
template <typename Tprog>
void apply_increment(field2d<Tprog>& y, const field2d<Tprog>& inc) {
  auto yy = y.flat();
  auto ii = inc.flat();
  for (std::size_t idx = 0; idx < yy.size(); ++idx) yy[idx] += ii[idx];
}

/// y += inc with Kahan compensation carried in `comp` across steps -
/// the compensated time integration of § III-B / Fig. 4's caption.
template <typename Tprog>
void apply_increment_compensated(field2d<Tprog>& y, const field2d<Tprog>& inc,
                                 field2d<Tprog>& comp) {
  auto yy = y.flat();
  auto ii = inc.flat();
  auto cc = comp.flat();
  for (std::size_t idx = 0; idx < yy.size(); ++idx) {
    const Tprog adjusted = ii[idx] - cc[idx];
    const Tprog t = yy[idx] + adjusted;
    cc[idx] = (t - yy[idx]) - adjusted;
    yy[idx] = t;
  }
}

}  // namespace tfx::swm
