#pragma once

/// \file params.hpp
/// Physical and numerical parameters of the shallow-water model, plus
/// the precomputed per-step coefficients.
///
/// Two precision-engineering devices from the paper are visible here:
///
///  * every coefficient is pre-multiplied by the time step, so the RHS
///    produces per-step *increments*; this keeps magnitudes like
///    dt*f0 ~ 2e-3 inside Float16's normal range where the raw Coriolis
///    parameter f0 ~ 1e-4 would graze the subnormal boundary;
///  * the prognostic fields are stored multiplied by a power-of-two
///    scale s = 2^k (chosen via a Sherlog analysis run); linear terms
///    are scale-transparent, and the handful of quadratic terms divide
///    by s exactly once. Powers of two are exact, so the scaling
///    changes no mantissa bits.

#include <cmath>
#include <cstdint>

#include "core/contracts.hpp"

namespace tfx::swm {

/// Domain boundary conditions.
enum class boundary {
  periodic,  ///< doubly periodic (default; beta-plane turbulence box)
  channel,   ///< periodic in x, free-slip solid walls at y = 0 and Ly
             ///< (the zonal-channel configuration; v vanishes on the
             ///< walls, zeta vanishes on the walls under free slip)
};

/// User-level physical configuration (all SI units, double precision -
/// this is setup code, not the hot loop; ShallowWaters.jl does the
/// same: transcendental/constant work in high precision, § III-B).
struct swm_params {
  int nx = 128;
  int ny = 64;
  double Lx = 4000e3;  ///< zonal extent (m)
  double Ly = 2000e3;  ///< meridional extent (m)

  double gravity = 10.0;   ///< m/s^2
  double depth = 500.0;    ///< mean layer thickness h0 (m)
  double coriolis_f0 = 1e-4;   ///< f-plane part (1/s)
  double coriolis_beta = 2e-11;  ///< beta-plane gradient (1/(m s))

  double wind_stress = 0.1;  ///< peak wind stress tau0 (Pa)
  double rho = 1000.0;       ///< water density (kg/m^3)
  double drag = 1e-6;        ///< linear bottom drag (1/s)

  /// Biharmonic strength as dt*nu4/dx^4. The largest grid-scale
  /// eigenvalue of the discrete biharmonic is 64, so explicit RK4
  /// stability needs this fraction well below ~1/64 * 2.8; 0.005 damps
  /// grid noise on a ~200-step timescale.
  double visc_fraction = 0.005;

  double cfl = 0.7;  ///< advective CFL target for dt

  boundary bc = boundary::periodic;

  /// log2 of the prognostic-variable scale s (0 = unscaled). For
  /// Float16 runs this is chosen with fp::choose_scaling from a
  /// Sherlog32 development run, as in § III-B.
  int log2_scale = 0;

  [[nodiscard]] double dx() const { return Lx / nx; }
  [[nodiscard]] double dy() const { return Ly / ny; }

  /// Gravity-wave-limited time step.
  [[nodiscard]] double dt() const {
    const double c = std::sqrt(gravity * depth);
    const double dmin = dx() < dy() ? dx() : dy();
    return cfl * dmin / c;
  }

  /// Biharmonic viscosity coefficient (m^4/s), scaled to damp grid
  /// noise in about 1/visc_fraction time steps.
  [[nodiscard]] double visc_biharmonic() const {
    const double d4 = dx() * dx() * dx() * dx();
    return visc_fraction * d4 / dt();
  }
};

/// Per-step coefficients in the model's element type T. All are formed
/// from doubles and rounded once into T.
template <typename T>
struct coefficients {
  T half{};         ///< 0.5
  T quarter{};      ///< 0.25
  T g_dtdx{};       ///< dt*g/dx    (pressure gradient, x)
  T g_dtdy{};       ///< dt*g/dy
  T dt_f0{};        ///< dt*f0
  T dt_beta_dy{};   ///< dt*beta*dy (Coriolis change per j row)
  /// dt/dx and dt/dy for the quadratic terms. The nonlinear products
  /// are formed as (scaled factor) * (inv_s * scaled factor) so no
  /// intermediate ever carries scale s^2 - at s = 2^13 a bare U*V would
  /// overflow Float16 even though both factors are in range. inv_s is
  /// a power of two, so the refactoring is exact.
  T dtdx{};
  T dtdy{};
  T h0_dtdx{};      ///< dt*h0/dx   (linear continuity)
  T h0_dtdy{};      ///< dt*h0/dy
  T dt_drag{};      ///< dt*r       (linear bottom drag)
  T dt_visc{};      ///< dt*nu4/dx^4 (biharmonic, grid units)
  T wind_u{};       ///< dt*s*tau0/(rho*h0) peak wind acceleration
  T inv_s{};        ///< 1/s
  double scale = 1.0;      ///< s, kept in double for I/O
  int jmid = 0;            ///< reference row for beta plane

  static coefficients make(const swm_params& p) {
    coefficients c;
    const double dt = p.dt();
    const double s = std::ldexp(1.0, p.log2_scale);
    c.half = T(0.5);
    c.quarter = T(0.25);
    c.g_dtdx = T(dt * p.gravity / p.dx());
    c.g_dtdy = T(dt * p.gravity / p.dy());
    c.dt_f0 = T(dt * p.coriolis_f0);
    c.dt_beta_dy = T(dt * p.coriolis_beta * p.dy());
    c.dtdx = T(dt / p.dx());
    c.dtdy = T(dt / p.dy());
    c.h0_dtdx = T(dt * p.depth / p.dx());
    c.h0_dtdy = T(dt * p.depth / p.dy());
    c.dt_drag = T(dt * p.drag);
    c.dt_visc = T(dt * p.visc_biharmonic() /
                  (p.dx() * p.dx() * p.dx() * p.dx()));
    c.wind_u = T(dt * s * p.wind_stress / (p.rho * p.depth));
    c.inv_s = T(1.0 / s);
    c.scale = s;
    c.jmid = p.ny / 2;
    return c;
  }
};

}  // namespace tfx::swm
