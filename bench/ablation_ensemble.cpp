// Ablation: what batched member stepping buys the ensemble engine.
//
// The same workload — N identical-shape Float64 members integrated for
// a fixed number of RK4 steps — runs two ways:
//
//   batched        the service: all members submitted up front, grouped
//                  into one (personality, shape) batch, carved into
//                  tiles (priced off the arch model's L2 via
//                  kernels::problems_per_tile) that the thread pool
//                  claims concurrently, `stride` consecutive steps per
//                  tile for temporal cache reuse, and ONE batched
//                  RK4-apply dispatch per tile and step
//                  (kernels::sweeps::rk4_update_batched).
//   one-at-a-time  the ablation baseline: submit a member, wait for it,
//                  submit the next — each member runs alone, the way a
//                  naive driver loops over scenario configs. A single
//                  48x24 member is far too small to parallelize
//                  internally (the whole point of batching across
//                  problems, PR 6), so the pool idles — and every
//                  member-step still pays a full scheduling round
//                  (claim rebuild + pool fan-out/join), where the
//                  batched mode pays one round per tile x stride
//                  member-steps.
//
// Both modes are bit-identical per member by construction (the
// engine's oracle test suite pins this), so the only thing this bench
// measures is throughput: member-steps per second vs ensemble size,
// and vs the forced tile size at a fixed ensemble. Both modes get the
// SAME thread pool — the batched win is the service argument:
// members-in-flight are the parallelism (tile claims keep every worker
// fed no matter how uniform the ensemble is), and the per-round
// scheduling cost amortizes across the whole batch instead of landing
// on every single member-step. The tile sweep isolates the
// tile-granularity knob alone at a fixed thread count.
//
// BENCH_ensemble.json carries the machine-readable rows.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "ensemble/engine.hpp"

using namespace tfx;
using namespace tfx::ensemble;

namespace {

struct scale_row {
  int members = 0;
  std::size_t tile = 0;     ///< priced tile of the batched mode
  double batched_sps = 0;   ///< member-steps/s, batched
  double serial_sps = 0;    ///< member-steps/s, one-at-a-time
  double speedup = 0;
};

struct tile_row {
  std::size_t tile = 0;
  double sps = 0;
  double speedup = 0;  ///< vs tile 1 (same stride, batched apply)
};

member_config bench_member(int steps, std::uint64_t seed) {
  member_config cfg;
  cfg.prec = personality::float64;
  cfg.nx = 48;
  cfg.ny = 24;
  cfg.steps = steps;
  cfg.seed = seed;
  return cfg;
}

/// Batched mode: submit everything, then drain the engine.
double run_batched(engine_options opts, int members, int steps) {
  opts.async = false;
  opts.max_members = static_cast<std::size_t>(members);
  engine eng(opts);
  for (int m = 0; m < members; ++m) {
    if (!eng.submit(bench_member(steps, 100 + static_cast<std::uint64_t>(m)))
             .ok()) {
      std::fprintf(stderr, "submit rejected at member %d\n", m);
      return 0;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.wait_all();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(members) * steps / secs;
}

/// One-at-a-time mode: each member is submitted alone and drained to
/// completion before the next is admitted — one member in flight.
double run_one_at_a_time(engine_options opts, int members, int steps) {
  opts.async = false;
  opts.tile_members = 1;
  opts.stride = 1;
  opts.batched_apply = false;
  engine eng(opts);
  const auto t0 = std::chrono::steady_clock::now();
  for (int m = 0; m < members; ++m) {
    const auto ticket =
        eng.submit(bench_member(steps, 100 + static_cast<std::uint64_t>(m)));
    if (!ticket.ok()) {
      std::fprintf(stderr, "submit rejected at member %d\n", m);
      return 0;
    }
    eng.wait(ticket.id);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(members) * steps / secs;
}

void write_json(const std::string& path, int steps, int threads,
                const std::vector<scale_row>& scaling,
                const std::vector<tile_row>& tiles) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_ensemble\",\n");
  std::fprintf(f, "  \"grid\": \"48x24 Float64\",\n");
  std::fprintf(f, "  \"steps\": %d,\n  \"threads\": %d,\n", steps, threads);
  std::fprintf(f, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& r = scaling[i];
    std::fprintf(f,
                 "    {\"members\": %d, \"tile\": %zu, "
                 "\"batched_member_steps_per_s\": %.6e, "
                 "\"one_at_a_time_member_steps_per_s\": %.6e, "
                 "\"batched_speedup\": %.4f}%s\n",
                 r.members, r.tile, r.batched_sps, r.serial_sps, r.speedup,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"tile_sweep\": [\n");
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const auto& r = tiles[i];
    std::fprintf(f,
                 "    {\"tile\": %zu, \"member_steps_per_s\": %.6e, "
                 "\"speedup_vs_tile1\": %.4f}%s\n",
                 r.tile, r.sps, r.speedup, i + 1 < tiles.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("\nWrote %s\n", path.c_str());
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"steps", "RK4 steps per member (default 24)"},
            {"threads", "engine threads, both modes (default 2)"},
            {"json", "output path (default BENCH_ensemble.json)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 0;
  }
  const int steps = static_cast<int>(args.get_int("steps", 24));
  const int threads = static_cast<int>(args.get_int("threads", 2));
  const std::string json = args.get_string("json", "BENCH_ensemble.json");

  engine_options batched;
  batched.threads = threads;

  std::size_t priced_tile = 0;
  {
    engine probe(batched);
    priced_tile = probe.tile_members_for(bench_member(steps, 0));
  }
  std::printf("48x24 Float64 members, %d steps each, %d thread%s; "
              "L2-priced tile: %zu members\n\n",
              steps, threads, threads == 1 ? "" : "s", priced_tile);

  std::vector<scale_row> scaling;
  table t({"members", "batched Msteps/s", "1-at-a-time Msteps/s", "speedup"});
  for (const int members : {8, 16, 32, 64, 128, 256}) {
    scale_row r;
    r.members = members;
    r.tile = priced_tile;
    r.batched_sps = run_batched(batched, members, steps);
    r.serial_sps = run_one_at_a_time(batched, members, steps);
    r.speedup = r.batched_sps / r.serial_sps;
    scaling.push_back(r);
    t.add_row({std::to_string(members), format_fixed(r.batched_sps / 1e6, 3),
               format_fixed(r.serial_sps / 1e6, 3),
               format_fixed(r.speedup, 3)});
  }
  t.print(std::cout);

  // Forced tile sizes at a fixed ensemble: the tile-granularity knob
  // alone (all members in flight, stride and batched apply at their
  // defaults). Small tiles feed more workers; large tiles amortize
  // more apply dispatches — the priced tile is the model's bet.
  const int fixed_members = 128;
  std::vector<tile_row> tiles;
  table t2({"tile", "Msteps/s", "speedup vs tile 1"});
  double tile1_sps = 0;
  for (const std::size_t tile : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}, std::size_t{8},
                                 std::size_t{16}, std::size_t{32},
                                 std::size_t{64}, priced_tile}) {
    engine_options opts = batched;
    opts.tile_members = tile;
    tile_row r;
    r.tile = tile;
    r.sps = run_batched(opts, fixed_members, steps);
    if (tile == 1) tile1_sps = r.sps;
    r.speedup = tile1_sps > 0 ? r.sps / tile1_sps : 0;
    tiles.push_back(r);
    t2.add_row({std::to_string(tile) + (tile == priced_tile ? " (priced)" : ""),
                format_fixed(r.sps / 1e6, 3), format_fixed(r.speedup, 3)});
  }
  std::puts("");
  t2.print(std::cout);

  write_json(json, steps, threads, scaling, tiles);
  return 0;
}
