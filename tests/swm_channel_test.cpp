// The channel configuration: free-slip solid walls at y = 0 and y = Ly.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "swm/diagnostics.hpp"
#include "swm/model.hpp"

using namespace tfx::swm;
using tfx::fp::float16;

namespace {

swm_params channel_params() {
  swm_params p;
  p.nx = 48;
  p.ny = 24;
  p.bc = boundary::channel;
  return p;
}

}  // namespace

TEST(Channel, NoFlowThroughTheWallsEver) {
  model<double> m(channel_params());
  m.seed_random_eddies(31, 0.5);
  for (int chunk = 0; chunk < 6; ++chunk) {
    m.run(40);
    for (int i = 0; i < channel_params().nx; ++i) {
      ASSERT_EQ(m.prognostic().v(i, 0), 0.0) << "wall leak at i=" << i;
    }
  }
  EXPECT_TRUE(m.diag().finite);
}

TEST(Channel, WallVorticityVanishesUnderFreeSlip) {
  // Free slip: zeta = 0 on the walls. The wall corners live on the
  // j = 0 row of the vorticity field.
  model<double> m(channel_params());
  m.seed_random_eddies(32, 0.5);
  m.run(100);
  const auto zeta = relative_vorticity(m.unscaled(), channel_params());
  // The diagnostic vorticity uses wrapped differences; recompute the
  // wall value the way the dynamics sees it: v = 0 on the wall and u
  // mirrored => the dynamical wall vorticity is exactly zero. Verify
  // through the RHS proxy: the model stayed stable and the wall v row
  // never moved (previous test), and the *interior* vorticity next to
  // the wall stays bounded.
  double zmax = 0;
  for (int i = 0; i < channel_params().nx; ++i) {
    zmax = std::max(zmax, std::abs(zeta(i, 1)));
  }
  EXPECT_TRUE(std::isfinite(zmax));
  EXPECT_TRUE(m.diag().finite);
}

TEST(Channel, MassConservedWithWalls) {
  // No flux through the walls + flux-form continuity: sum(eta) stays
  // at roundoff, exactly like the periodic case.
  model<double> m(channel_params());
  m.seed_random_eddies(33, 0.5);
  m.run(200);
  const auto s = m.unscaled();
  double eta_rms = 0, mass = 0;
  for (double v : s.eta.flat()) {
    mass += v;
    eta_rms += v * v;
  }
  eta_rms = std::sqrt(eta_rms / static_cast<double>(s.eta.size()));
  EXPECT_LT(std::abs(mass),
            1e-9 * eta_rms * static_cast<double>(s.eta.size()));
}

TEST(Channel, MeridionalMomentumStaysBounded) {
  // A channel jet cannot pump fluid through the walls: the net
  // meridional transport (sum of v) must stay at roundoff of the
  // typical magnitude (it is not exactly conserved pointwise, but no
  // systematic wall source can exist).
  model<double> m(channel_params());
  m.seed_random_eddies(34, 0.5);
  m.run(150);
  const auto s = m.unscaled();
  double vsum = 0, vrms = 0;
  for (double v : s.v.flat()) {
    vsum += v;
    vrms += v * v;
  }
  vrms = std::sqrt(vrms / static_cast<double>(s.v.size()));
  EXPECT_LT(std::abs(vsum),
            0.05 * vrms * static_cast<double>(s.v.size()));
  EXPECT_TRUE(m.diag().finite);
}

TEST(Channel, DiffersFromPeriodicRun) {
  // Same seed, different boundary conditions: the trajectories must
  // diverge (the walls do something).
  swm_params per = channel_params();
  per.bc = boundary::periodic;
  model<double> a(channel_params()), b(per);
  a.seed_random_eddies(35, 0.5);
  b.seed_random_eddies(35, 0.5);
  a.run(80);
  b.run(80);
  const auto za = relative_vorticity(a.unscaled(), channel_params());
  const auto zb = relative_vorticity(b.unscaled(), per);
  EXPECT_GT(rmse(za, zb), 1e-9);
}

TEST(Channel, StableLongRun) {
  model<double> m(channel_params());
  m.seed_random_eddies(36, 0.5);
  m.run(500);
  const auto d = m.diag();
  EXPECT_TRUE(d.finite);
  EXPECT_LT(d.cfl, 1.0);
}

TEST(Channel, Float16ChannelRunsWithTheFullPipeline) {
  swm_params p = channel_params();
  p.log2_scale = 13;
  tfx::fp::ftz_guard ftz(tfx::fp::ftz_mode::flush);
  tfx::fp::counters().reset();
  model<float16> m(p, integration_scheme::compensated);
  m.seed_random_eddies(37, 0.5);
  m.run(120);
  EXPECT_TRUE(m.diag().finite);
  EXPECT_EQ(tfx::fp::counters().f16_overflows, 0u);
  for (int i = 0; i < p.nx; ++i) {
    ASSERT_TRUE(m.prognostic().v(i, 0).iszero());
  }
}

TEST(Channel, MatchesPeriodicAwayFromTheWalls) {
  // Spinning up from rest, the wall influence propagates inward at one
  // stencil radius per RHS evaluation (~8 rows per RK4 step). After
  // one step, mid-channel rows must agree with the periodic run to
  // near roundoff (the influence that has arrived is exponentially
  // small through the smooth wind profile).
  swm_params per = channel_params();
  per.bc = boundary::periodic;
  model<double> chan(channel_params()), peri(per);
  chan.step();
  peri.step();
  const int mid = channel_params().ny / 2;
  for (int j = mid - 1; j <= mid + 1; ++j) {
    for (int i = 0; i < channel_params().nx; ++i) {
      const double a = chan.prognostic().u(i, j);
      const double b = peri.prognostic().u(i, j);
      ASSERT_NEAR(a, b, 1e-12 * (std::abs(b) + 1e-6)) << i << "," << j;
    }
  }
}
