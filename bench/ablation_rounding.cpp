// Ablation (extension): three cures for Float16 accumulation drift.
//
// The paper's ShallowWaters runs use compensated (Kahan) summation for
// the precision-critical time integration (§ III-B). The
// reduced-precision literature it draws on also uses stochastic
// rounding. This bench puts the options side by side on the canonical
// drift problem - accumulate n tiny increments into a state of order
// one - which is exactly what a time integrator does.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "fp/compensated.hpp"
#include "fp/float16.hpp"
#include "fp/stochastic.hpp"

using namespace tfx;
using tfx::fp::float16;

int main() {
  std::puts("Ablation: Float16 accumulation - plain vs Kahan vs stochastic");
  std::puts("rounding. Increment 2^-13 (below the ulp of 1.0), so plain");
  std::puts("Float16 accumulation cannot move at all.\n");

  table t({"n", "exact", "plain f16", "Kahan f16", "SR f16 (1 run)",
           "SR f16 (mean of 32)"});
  for (const int n : {256, 1024, 4096, 16384, 65536}) {
    const double inc = std::ldexp(1.0, -13);
    const double exact = 1.0 + n * inc;

    float16 plain(1.0);
    fp::kahan_accumulator<float16> kahan(float16(1.0));
    for (int i = 0; i < n; ++i) {
      plain += float16(inc);
      kahan.add(float16(inc));
    }

    fp::sr_accumulator sr_once(float16(1.0), 1);
    for (int i = 0; i < n; ++i) sr_once.add(float16(inc));

    double sr_mean = 0;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
      fp::sr_accumulator sr(float16(1.0), seed * 7919 + 3);
      for (int i = 0; i < n; ++i) sr.add(float16(inc));
      sr_mean += static_cast<double>(sr.value());
    }
    sr_mean /= 32.0;

    t.add_row({std::to_string(n), format_fixed(exact, 4),
               format_fixed(static_cast<double>(plain), 4),
               format_fixed(static_cast<double>(kahan.value()), 4),
               format_fixed(static_cast<double>(sr_once.value()), 4),
               format_fixed(sr_mean, 4)});
  }
  t.print(std::cout);

  std::puts("\nKahan tracks the exact sum deterministically (the paper's");
  std::puts("choice); stochastic rounding is right in expectation with a");
  std::puts("random-walk spread, and needs no extra state arrays. Both");
  std::puts("beat plain rounding, which never moves.");
  return 0;
}
