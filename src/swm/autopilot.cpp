#include "swm/autopilot.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace tfx::swm {

namespace {

swm_params stripe_of(const swm_params& member, int stripe_rows) {
  swm_params p = member;
  const int rows = std::clamp(stripe_rows, 1, member.ny);
  // Shrink Ly with the row count so dy (and therefore dt and every
  // dt-folded coefficient) matches the member's grid exactly: the
  // shadow arithmetic must see the member's magnitudes, not a
  // different discretisation's.
  p.Ly = member.dy() * rows;
  p.ny = rows;
  // The stripe rotates through the member's rows, so it is never a
  // wall-adjacent subdomain: evaluate it periodically even when the
  // member runs the channel configuration.
  p.bc = boundary::periodic;
  return p;
}

}  // namespace

autopilot::autopilot(autopilot_options opt, fp::format_range target,
                     const swm_params& member_params)
    : opt_(opt),
      target_(target),
      stripe_params_(stripe_of(member_params, opt.stripe_rows)),
      stripe_in_(stripe_params_.nx, stripe_params_.ny),
      shadow_state_(stripe_params_.nx, stripe_params_.ny),
      shadow_k_(stripe_params_.nx, stripe_params_.ny),
      src_ny_(member_params.ny) {
  TFX_EXPECTS(opt_.check_every >= 0);
  rebuild_shadow();
}

autopilot::~autopilot() = default;

void autopilot::sample_impl() {
  ++checks_;
  // The raw stripe values themselves are in-format magnitudes too:
  // a state drifting toward the subnormal floor shows up here even
  // when every *computed* increment still lands in range.
  for (const auto* f : {&stripe_in_.u, &stripe_in_.v, &stripe_in_.eta}) {
    for (const double v : f->flat()) window_.record(v);
  }
  convert_state_into(shadow_state_, stripe_in_);
  // Borrow the thread's Sherlog sink for the shadow evaluation and
  // hand it back untouched, so the autopilot composes with callers
  // that run their own Sherlog analysis on this thread.
  auto& sink = fp::sherlog_sink();
  const fp::exponent_histogram saved = sink;
  sink.reset();
  shadow_rhs_->evaluate_serial(shadow_state_, shadow_k_);
  window_.merge(sink);
  sink = saved;
}

autopilot_verdict autopilot::assess(int current_log2_scale) {
  autopilot_verdict v;
  v.subnormal_fraction =
      window_.fraction_below(target_.min_normal_exponent + opt_.subnormal_guard);
  v.overflow_fraction = window_.fraction_at_or_above(
      target_.max_exponent + 1 - opt_.overflow_guard);
  const bool nonfinite = window_.nonfinite() > 0;
  const bool sub = v.subnormal_fraction > opt_.max_subnormal_fraction;
  const bool over = v.overflow_fraction > opt_.max_overflow_fraction;

  // The window holds *scaled* magnitudes, so choose_scaling's answer
  // is the additional shift to apply on top of the current scale.
  // Remember it even on healthy windows: the reactive path uses the
  // latest range picture when the sentinel trips between checks.
  if (window_.total() > 0) {
    last_choice_ = fp::choose_scaling(window_, target_, opt_.clip);
    // Cap the lift so the unclipped window top keeps rescale_headroom
    // binades below the admitted ceiling. A lift of zero is recorded
    // as "no usable shift": the ladder escalates instead of restating
    // into certain overflow.
    const int lift_cap = target_.max_exponent - opt_.rescale_headroom -
                         window_.max_observed();
    if (last_choice_.log2_scale > lift_cap)
      last_choice_.log2_scale = std::max(lift_cap, 0);
    have_choice_ = true;
  }
  window_.reset();

  if (!nonfinite && !sub && !over) return v;

  v.cause = nonfinite ? autopilot_cause::nonfinite_shadow
            : sub     ? autopilot_cause::subnormal_drift
                      : autopilot_cause::overflow_drift;
  // A non-finite shadow means the live state is already poisoned;
  // drift alone means the state is still good and the action can be
  // applied in place.
  v.rollback = nonfinite;

  const int delta = have_choice_ ? last_choice_.log2_scale : 0;
  if (delta != 0 && rescales_ < opt_.max_rescales) {
    v.action = autopilot_action::rescale;
    v.log2_scale = current_log2_scale + delta;
  } else if (opt_.allow_promote) {
    v.action = autopilot_action::promote;
  } else {
    v.action = autopilot_action::fail;
  }
  return v;
}

autopilot_verdict autopilot::on_numerical_error(int current_log2_scale) {
  ++failures_;
  autopilot_verdict v;
  v.cause = autopilot_cause::numerical_error;
  v.rollback = true;
  if (failures_ == 1) {
    // First trip on this rung: when the latest range picture suggests
    // a shift, restate and rerun; otherwise a plain retry (a one-shot
    // upset — an injected fault, a freak rounding path — won't recur).
    const int delta = have_choice_ ? last_choice_.log2_scale : 0;
    if (delta != 0 && rescales_ < opt_.max_rescales) {
      v.action = autopilot_action::rescale;
      v.log2_scale = current_log2_scale + delta;
    } else {
      v.action = autopilot_action::retry;
    }
  } else if (opt_.allow_promote) {
    v.action = autopilot_action::promote;
  } else {
    v.action = autopilot_action::fail;
  }
  window_.reset();
  return v;
}

void autopilot::note_rescale(int new_log2_scale) {
  ++rescales_;
  stripe_params_.log2_scale = new_log2_scale;
  rebuild_shadow();
  window_.reset();
  have_choice_ = false;
}

void autopilot::note_promotion(fp::format_range new_target,
                               int new_log2_scale) {
  ++promotions_;
  // A fresh rung gets a fresh reactive ladder: the next sentinel trip
  // retries before escalating again.
  failures_ = 0;
  target_ = new_target;
  stripe_params_.log2_scale = new_log2_scale;
  rebuild_shadow();
  window_.reset();
  have_choice_ = false;
}

void autopilot::rebuild_shadow() {
  // coefficients<T>::make wraps doubles without arithmetic on the
  // sherlog type, so rebuilding records nothing in the thread's sink.
  shadow_rhs_ =
      std::make_unique<rhs_evaluator<fp::sherlog64>>(stripe_params_);
}

}  // namespace tfx::swm
