#pragma once

/// \file patterns.hpp
/// Collective algorithms restated as per-rank event programs.
///
/// Running 1536 real threads (the paper's Fig. 3 configuration) is not
/// feasible, so the large-scale benchmarks time the collectives with a
/// discrete-event walk (des.hpp) over these programs. Each generator
/// mirrors, operation for operation, the corresponding template in
/// collectives.hpp; tests/mpisim_des_test pins the two against each
/// other by comparing virtual completion times at thread-runnable rank
/// counts. If you change an algorithm, change it in both places or the
/// test will fail.

#include <cstddef>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/network.hpp"

namespace tfx::mpisim {

/// One step of a rank's program.
struct sim_op {
  enum class kind { send, recv, compute };
  kind what = kind::compute;
  int peer = 0;           ///< destination (send) or source (recv)
  std::size_t bytes = 0;  ///< payload size
  double seconds = 0;     ///< compute duration (kind::compute only)

  static sim_op send_to(int dst, std::size_t bytes) {
    return {kind::send, dst, bytes, 0.0};
  }
  static sim_op recv_from(int src, std::size_t bytes) {
    return {kind::recv, src, bytes, 0.0};
  }
  static sim_op compute_for(double seconds) {
    return {kind::compute, 0, 0, seconds};
  }
};

/// A complete collective: one ordered op list per rank.
struct sim_program {
  std::vector<std::vector<sim_op>> ranks;

  explicit sim_program(int p) : ranks(static_cast<std::size_t>(p)) {}
  [[nodiscard]] int size() const { return static_cast<int>(ranks.size()); }
  std::vector<sim_op>& rank(int r) {
    return ranks[static_cast<std::size_t>(r)];
  }
};

/// Dissemination barrier (mirrors mpisim::barrier; 1-byte tokens).
sim_program make_barrier_program(int p);

/// Binomial bcast of count*elem_bytes from root (mirrors mpisim::bcast).
sim_program make_bcast_program(int p, std::size_t count,
                               std::size_t elem_bytes, int root);

/// Binomial reduce to root (mirrors mpisim::reduce).
sim_program make_reduce_program(const tofud_params& net, int p,
                                std::size_t count, std::size_t elem_bytes,
                                int root);

/// Allreduce; algo must be recursive_doubling or ring (automatic is
/// resolved with the same threshold as the template).
sim_program make_allreduce_program(const tofud_params& net, int p,
                                   std::size_t count, std::size_t elem_bytes,
                                   coll_algorithm algo);

/// Hierarchical (node-leader) allreduce: binomial reduce to each
/// node's local rank 0, flat allreduce among the leaders, binomial
/// bcast back - mirrors hierarchy::allreduce (hierarchical.hpp)
/// op-for-op under the block rank placement. `algo` selects the
/// leader-phase algorithm; automatic resolves with the flat threshold.
sim_program make_hierarchical_allreduce_program(
    const tofud_params& net, const torus_placement& place,
    std::size_t count, std::size_t elem_bytes,
    coll_algorithm algo = coll_algorithm::automatic);

/// Linear gatherv with uniform counts (mirrors mpisim::gatherv).
sim_program make_gatherv_program(int p, std::size_t count,
                                 std::size_t elem_bytes, int root);

/// Ring allgather of count*elem_bytes per rank (mirrors
/// mpisim::allgather).
sim_program make_allgather_program(int p, std::size_t count,
                                   std::size_t elem_bytes);

}  // namespace tfx::mpisim
