#pragma once

/// \file roofline.hpp
/// Analytic execution-time model for streaming kernels on the A64FX.
///
/// This is the instrument that stands in for the A64FX silicon the
/// paper ran on (DESIGN.md § 2). A kernel is summarized by a
/// `kernel_profile` (per-element flops and loads/stores, the vector
/// width its code generation achieves, loop and call overheads); the
/// model charges the slowest of three resources:
///
///   * FP pipes    — ceil(n/lanes) vector FMAs over `fp_pipes` pipes,
///   * LSU ports   — vector loads/stores over 2 load + 1 store ports,
///   * memory      — bytes moved at the bandwidth of the cache level(s)
///                   the working set streams from,
///
/// plus per-iteration loop overhead and a per-call fixed cost. The
/// level mix is a capacity argument (what fraction of the steady-state
/// working set is resident where) validated against the trace-driven
/// simulator in cache.hpp.

#include <cstddef>
#include <string_view>

#include "arch/a64fx.hpp"

namespace tfx::arch {

/// How a kernel's inner loop executes; one per library backend.
struct kernel_profile {
  std::string_view name = "kernel";

  // Per-*element* resource usage.
  double flops_per_elem = 2.0;   ///< axpy: one FMA
  double loads_per_elem = 2.0;   ///< axpy: x[i], y[i]
  double stores_per_elem = 1.0;  ///< axpy: y[i]

  /// Vector width the backend's code achieves. 512 = full SVE,
  /// 128 = NEON-only code path (the paper's explanation for OpenBLAS
  /// and ARMPL lagging: "likely because it is not taking full advantage
  /// of A64FX vectorization capabilities"), 0 = scalar.
  std::size_t vector_bits = 512;

  /// Fraction of the ideal issue rate the backend's schedule sustains
  /// (software pipelining quality, unrolling, prefetch tuning).
  double simd_efficiency = 1.0;

  /// Loop-control cycles per vector iteration.
  double loop_overhead_cycles = 0.25;

  /// Fixed per-invocation cost (dispatch, argument checks), ns.
  double call_overhead_ns = 8.0;

  /// Extra scalar cycles per element for software-emulated arithmetic
  /// (used for the "Float16 without hardware lowering" ablation).
  double soft_float_cycles = 0.0;
};

/// Evaluation result, broken down for reporting.
struct model_time {
  double seconds = 0;        ///< total predicted time for one call
  double compute_seconds = 0;  ///< FP-pipe component
  double lsu_seconds = 0;      ///< load/store-port component
  double memory_seconds = 0;   ///< bandwidth component
  double overhead_seconds = 0; ///< loop + call overhead
  double gflops = 0;           ///< flops / seconds
};

/// Effective streaming bandwidth (GB/s) for a steady-state working set
/// of `working_set_bytes`, blending the level bandwidths by residency.
double effective_bandwidth_gbs(const a64fx_params& machine,
                               std::size_t working_set_bytes);

/// Predict one invocation of the kernel over n elements of
/// `elem_bytes`, with `working_set_bytes` the steady-state footprint
/// (for axpy: 2 * n * elem_bytes).
///
/// `subnormal_ops` charges the A64FX trap penalty for binary16
/// subnormal operands when FZ16 is off (paper § III-B); pass the count
/// observed by fp::counters().
model_time predict(const a64fx_params& machine, const kernel_profile& profile,
                   std::size_t n, std::size_t elem_bytes,
                   std::size_t working_set_bytes,
                   std::uint64_t subnormal_ops = 0);

}  // namespace tfx::arch
