// Fig. 4 text claim, quantified: "rounding errors remain smaller than
// model or discretization errors."
//
// The standard way to test this (Klower et al.'s line of work, which
// the paper's ShallowWaters results build on) is an ensemble argument:
// run an ensemble of Float64 simulations whose initial conditions are
// perturbed at the level of realistic analysis uncertainty (~1 %, far
// better than any real observing system); the ensemble spread is the
// forecast error that uncertainty already implies. If the
// Float16-vs-Float64 difference for the SAME initial condition sits
// below that spread, the precision loss is operationally invisible -
// which is what "qualitatively indistinguishable" means in practice.
//
// All seven members (the Float64 control, the Float16 twin and the
// four perturbed Float64 runs) go through the ensemble engine
// (src/ensemble) as one batched workload; the engine's per-member
// snapshots are bit-exactly model::unscaled() at the same steps, so
// this table is bitwise-identical to stepping the models by hand —
// pinned by the engine's oracle test suite.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/table.hpp"
#include "core/units.hpp"
#include "ensemble/engine.hpp"
#include "fp/fpenv.hpp"
#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/diagnostics.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

swm_params base_params() {
  swm_params p;
  p.nx = 48;
  p.ny = 24;
  return p;
}

}  // namespace

int main() {
  std::puts("Ensemble test of the Fig. 4 claim: Float16 rounding error vs");
  std::puts("the model's intrinsic (chaotic) error growth.\n");

  const swm_params p = base_params();
  const int members = 4;
  const double ic_perturbation = 1e-2;  // 1% analysis uncertainty
  const int chunks = 6;
  const int chunk_steps = 30;

  // Scale choice for the Float16 runs.
  fp::sherlog_sink().reset();
  {
    model<fp::sherlog32> dev(p);
    dev.seed_random_eddies(42, 0.5);
    dev.run(15);
  }
  swm_params p16 = p;
  p16.log2_scale =
      fp::choose_scaling(fp::sherlog_sink(), fp::float16_range).log2_scale;

  // The whole ensemble as one engine workload: every member records an
  // unscaled snapshot at each 30-step mark.
  ensemble::engine_options opts;
  opts.threads = 2;
  opts.async = false;
  ensemble::engine eng(opts);

  ensemble::member_config base;
  base.nx = p.nx;
  base.ny = p.ny;
  base.steps = chunks * chunk_steps;
  base.seed = 42;
  base.velocity_amplitude = 0.5;
  base.record_every = chunk_steps;

  // Control member (unperturbed) at Float64 and Float16.
  ensemble::member_config control = base;
  control.prec = ensemble::personality::float64;
  const auto t_control = eng.submit(control);

  ensemble::member_config half = base;
  half.prec = ensemble::personality::float16;
  half.log2_scale = p16.log2_scale;
  half.ftz = fp::ftz_mode::flush;
  const auto t_half = eng.submit(half);

  // Perturbed Float64 ensemble.
  std::vector<ensemble::job_id> perturbed;
  for (int m = 0; m < members; ++m) {
    ensemble::member_config cfg = base;
    cfg.perturb_seed = static_cast<std::uint64_t>(m) + 1000;
    cfg.perturb_amplitude = ic_perturbation;
    perturbed.push_back(eng.submit(cfg).id);
  }
  if (!t_control.ok() || !t_half.ok()) {
    std::puts("submit rejected?!");
    return 1;
  }
  eng.wait_all();

  const ensemble::job_result* rc = eng.result(t_control.id);
  const ensemble::job_result* rh = eng.result(t_half.id);

  table t({"step", "f16 vs f64 RMSE", "ensemble spread", "ratio",
           "verdict"});
  for (int chunk = 0; chunk < chunks; ++chunk) {
    const auto c = static_cast<std::size_t>(chunk);
    const auto zc = relative_vorticity(rc->snapshots[c], p);
    const auto zh = relative_vorticity(rh->snapshots[c], p16);
    const double precision_err = rmse(zc, zh);

    double spread = 0;
    for (const ensemble::job_id id : perturbed) {
      const auto zm = relative_vorticity(eng.result(id)->snapshots[c], p);
      spread += rmse(zc, zm);
    }
    spread /= members;

    const double ratio = precision_err / spread;
    char pe[32], sp[32];
    std::snprintf(pe, sizeof pe, "%.3e", precision_err);
    std::snprintf(sp, sizeof sp, "%.3e", spread);
    t.add_row({std::to_string((chunk + 1) * chunk_steps), pe, sp,
               format_fixed(ratio, 4),
               ratio < 1.0 ? "rounding < IC error" : "rounding VISIBLE"});
  }
  t.print(std::cout);

  std::puts("\nThe Float16 rounding difference stays below the error a 1%");
  std::puts("initial-condition uncertainty already implies - the paper's");
  std::puts("'rounding errors remain smaller than model errors' claim,");
  std::puts("made quantitative. (In this freely-decaying configuration the");
  std::puts("IC spread damps with the flow while rounding noise is");
  std::puts("re-injected each step, so the ratio creeps up; a forced,");
  std::puts("chaotic regime keeps the spread growing instead.)");
  return 0;
}
