// Hot-swap safety of the kernel dispatch layer: retargeting the
// trampoline (blas_registry::set_current) and the SIMD width policy
// (set_simd_width) while worker threads stream dispatched kernels must
// be race-free (run under TFX_SANITIZE=thread via the `threads` ctest
// label) and must never produce a wrong result — every backend and
// every width computes the same bits for the exact-arithmetic inputs
// used here. Also pins the allocation-freedom of the batched steady
// state: after warm-up, batched dispatch touches no heap.

// The replacement operator new/delete below route through malloc/free;
// GCC's heuristic cannot see that the pair matches and warns at every
// inlined delete site in this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "kernels/batched.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/registry.hpp"

using namespace tfx;

// ---------------------------------------------------------------------------
// Global allocation counter (the obs_overhead_test idiom): every
// operator new in the process bumps it, so a window of zero proves the
// steady state touched no heap at all.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t allocs_during(const auto& fn) {
  const std::uint64_t before = g_allocs.load();
  fn();
  return g_allocs.load() - before;
}

}  // namespace

TEST(HotSwap, ConcurrentSetCurrentWhileStreamingAxpy) {
  auto& reg = kernels::blas_registry::instance();
  ASSERT_TRUE(reg.set_current("Julia"));

  // Exactly representable values: a*x + y = 2 * 1.5 + 1 = 4 in every
  // backend's loop shape, fused or not, at any width. Any wrong result
  // under concurrency is a real bug, not rounding.
  const std::size_t n = 4096;
  const std::vector<double> x(n, 1.5);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sweeps{0};
  std::atomic<int> wrong{0};

  std::vector<std::thread> workers;
  const unsigned worker_count = 4;
  workers.reserve(worker_count);
  for (unsigned w = 0; w < worker_count; ++w) {
    workers.emplace_back([&] {
      std::vector<double> y(n);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& v : y) v = 1.0;
        kernels::axpy_dispatch(2.0, std::span<const double>(x),
                               std::span<double>(y));
        for (const double v : y) {
          if (v != 4.0) {
            wrong.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        sweeps.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The swapper: retarget the trampoline across scalar, unrolled and
  // all three fixed-width vector backends, as fast as possible.
  const char* const targets[] = {"Julia",  "Vec512",   "OpenBLAS",
                                 "Vec128", "FujitsuBLAS", "Vec256"};
  std::thread swapper([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(reg.set_current(targets[i % std::size(targets)]));
      ++i;
    }
  });

  // Run until every worker has streamed through a healthy number of
  // swaps (bounded by wall clock as a safety net).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sweeps.load() < 2000 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  swapper.join();
  for (auto& t : workers) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(sweeps.load(), 0u);
  ASSERT_TRUE(reg.set_current("Julia"));
}

TEST(HotSwap, ConcurrentWidthPolicySwapWhileStreamingBatched) {
  auto& reg = kernels::blas_registry::instance();
  ASSERT_TRUE(reg.set_current("Julia"));

  const std::size_t count = 64, len = 31;
  const std::vector<double> a(count, 2.0);
  const std::vector<double> x(count * len, 1.5);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sweeps{0};
  std::atomic<int> wrong{0};

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      std::vector<double> y(count * len);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& v : y) v = 1.0;
        kernels::axpy_batched_dispatch<double>(a, x, y, len);
        for (const double v : y) {
          if (v != 4.0) {
            wrong.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        sweeps.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread swapper([&] {
    const std::size_t widths[] = {0, 128, 256, 512};
    const char* const backends[] = {"Julia", "Vec512", "Vec128"};
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(kernels::set_simd_width(widths[i % std::size(widths)]));
      ASSERT_TRUE(reg.set_current(backends[i % std::size(backends)]));
      ++i;
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sweeps.load() < 1000 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  swapper.join();
  for (auto& t : workers) t.join();

  EXPECT_EQ(wrong.load(), 0);
  kernels::reset_simd_width();
  ASSERT_TRUE(reg.set_current("Julia"));
}

TEST(BatchedAllocation, SteadyStateIsAllocationFree) {
  auto& reg = kernels::blas_registry::instance();
  ASSERT_TRUE(reg.set_current("Vec512"));

  const kernels::gemm_batch_shape s{16, 8, 8, 8};
  const std::vector<double> ga = [&] {
    std::vector<double> v(s.count * s.a_elems());
    for (auto& e : v) e = 1.0;
    return v;
  }();
  const std::vector<double> gb = ga;
  std::vector<double> gc(s.count * s.c_elems(), 0.0);

  const std::size_t count = 32, len = 24;
  const std::vector<double> a(count, 0.5);
  const std::vector<double> x(count * len, 2.0);
  std::vector<double> y(count * len, 1.0);
  std::vector<double> dots(count, 0.0);

  // Warm-up: registry init, lazy statics, anything first-call.
  kernels::axpy_batched_dispatch<double>(a, x, y, len);
  kernels::dot_batched_dispatch<double>(x, x, dots, len);
  kernels::gemm_batched_dispatch<double>(s, 1.0, ga, gb, 0.0, gc);

  // Steady state: repeated batched calls with preallocated buffers
  // must perform ZERO heap allocations (the whole point of the batched
  // path is that per-problem overhead — dispatch, spans, loop setup —
  // vanishes; an allocation would dwarf the arithmetic at these sizes).
  const std::uint64_t allocs = allocs_during([&] {
    for (int rep = 0; rep < 50; ++rep) {
      kernels::axpy_batched_dispatch<double>(a, x, y, len);
      kernels::dot_batched_dispatch<double>(x, x, dots, len);
      kernels::gemm_batched_dispatch<double>(s, 1.0, ga, gb, 0.0, gc);
    }
  });
  EXPECT_EQ(allocs, 0u);

  // The single-call trampoline stays allocation-free too.
  const std::uint64_t single = allocs_during([&] {
    for (int rep = 0; rep < 50; ++rep) {
      kernels::axpy_dispatch(0.5, std::span<const double>(x),
                             std::span<double>(y));
    }
  });
  EXPECT_EQ(single, 0u);

  ASSERT_TRUE(reg.set_current("Julia"));
}
