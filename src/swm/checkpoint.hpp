#pragma once

/// \file checkpoint.hpp
/// Binary checkpoints of the model's prognostic state.
///
/// Long climate integrations restart from checkpoints; for the
/// precision experiments a checkpoint also lets a Float64 spin-up be
/// handed to a Float16 production run (a common reduced-precision
/// deployment pattern). The file stores raw element bits plus a typed
/// header, so a checkpoint can only be loaded at the element type it
/// was written with - cross-precision handoff goes through
/// convert_state, deliberately visible in user code.
///
/// Format (little-endian host assumed, like every HPC restart file):
///   magic "TFXSWM1\0" | u32 elem_bytes | u32 nx | u32 ny | u64 steps
///   | f64 scale | u, v, eta arrays (nx*ny elements each, raw bits)
///
/// The Kahan compensation arrays are not stored: restarting clears
/// them, which perturbs the trajectory by one rounding at most (the
/// compensation is always < 1 ulp of the state).

#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "swm/field.hpp"

namespace tfx::swm {

/// What a checkpoint file carries besides the fields.
struct checkpoint_info {
  int nx = 0;
  int ny = 0;
  std::uint64_t steps_taken = 0;
  double scale = 1.0;
};

namespace detail {
inline constexpr char checkpoint_magic[8] = {'T', 'F', 'X', 'S',
                                             'W', 'M', '1', '\0'};
}

/// Write a checkpoint. Returns false on I/O failure.
template <typename T>
bool save_checkpoint(const state<T>& s, const checkpoint_info& info,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(detail::checkpoint_magic, 8);
  const auto elem = static_cast<std::uint32_t>(sizeof(T));
  const auto nx = static_cast<std::uint32_t>(info.nx);
  const auto ny = static_cast<std::uint32_t>(info.ny);
  out.write(reinterpret_cast<const char*>(&elem), 4);
  out.write(reinterpret_cast<const char*>(&nx), 4);
  out.write(reinterpret_cast<const char*>(&ny), 4);
  out.write(reinterpret_cast<const char*>(&info.steps_taken), 8);
  out.write(reinterpret_cast<const char*>(&info.scale), 8);
  for (const auto* f : {&s.u, &s.v, &s.eta}) {
    out.write(reinterpret_cast<const char*>(f->flat().data()),
              static_cast<std::streamsize>(f->size() * sizeof(T)));
  }
  return static_cast<bool>(out);
}

/// Load a checkpoint written at element type T. Returns nullopt on I/O
/// failure, bad magic, or element-size mismatch.
template <typename T>
std::optional<std::pair<state<T>, checkpoint_info>> load_checkpoint(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8];
  in.read(magic, 8);
  if (!in || std::memcmp(magic, detail::checkpoint_magic, 8) != 0) {
    return std::nullopt;
  }
  std::uint32_t elem = 0, nx = 0, ny = 0;
  checkpoint_info info;
  in.read(reinterpret_cast<char*>(&elem), 4);
  in.read(reinterpret_cast<char*>(&nx), 4);
  in.read(reinterpret_cast<char*>(&ny), 4);
  in.read(reinterpret_cast<char*>(&info.steps_taken), 8);
  in.read(reinterpret_cast<char*>(&info.scale), 8);
  if (!in || elem != sizeof(T) || nx == 0 || ny == 0) return std::nullopt;
  info.nx = static_cast<int>(nx);
  info.ny = static_cast<int>(ny);

  state<T> s(info.nx, info.ny);
  for (auto* f : {&s.u, &s.v, &s.eta}) {
    in.read(reinterpret_cast<char*>(f->flat().data()),
            static_cast<std::streamsize>(f->size() * sizeof(T)));
  }
  if (!in) return std::nullopt;
  return std::make_pair(std::move(s), info);
}

}  // namespace tfx::swm
