// Ablation (design choice): the eager/rendezvous protocol switch in
// the network model, and what each term of the Hockney cost
// contributes across the Fig. 2 message range.

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "mpisim/network.hpp"

using namespace tfx;
using namespace tfx::mpisim;

int main() {
  std::puts("Ablation: TofuD transfer-time decomposition (2 nodes, 1 hop).");
  const tofud_params net;
  const auto place = torus_placement::line(2);

  table t({"bytes", "total", "alpha+hop", "wire (bytes/B)", "rendezvous",
           "protocol"});
  for (unsigned e = 0; e <= 24; e += 2) {
    const std::size_t bytes = std::size_t{1} << e;
    const double total = transfer_seconds(net, place, 0, 1, bytes);
    const double base = net.alpha_s + net.per_hop_s;
    const double wire = static_cast<double>(bytes) / net.link_bandwidth_Bps;
    const bool rndv = bytes > net.eager_threshold;
    t.add_row({format_bytes(bytes), format_seconds(total),
               format_seconds(base), format_seconds(wire),
               rndv ? format_seconds(net.rendezvous_extra_s) : "-",
               rndv ? "rendezvous" : "eager"});
  }
  t.print(std::cout);

  std::puts("\nLatency-bandwidth crossover: the alpha term dominates below");
  const double cross = net.alpha_s * net.link_bandwidth_Bps;
  std::printf("~%s per message; beyond that the wire term takes over.\n",
              format_bytes(static_cast<std::uint64_t>(cross)).c_str());
  return 0;
}
