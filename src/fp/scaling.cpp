#include "fp/scaling.hpp"

#include <cmath>

namespace tfx::fp {

scaling_choice choose_scaling(const exponent_histogram& hist,
                              format_range target, double clip) {
  scaling_choice choice;
  if (hist.total() == 0) {
    choice.scale = 1.0;
    choice.fits = true;
    return choice;
  }

  const int lo = hist.quantile(clip);
  const int hi = hist.quantile(1.0 - clip);
  const int span = hi - lo;
  const int target_span = target.max_exponent - target.min_normal_exponent;

  // Centre the observed [lo, hi] inside the target range: solve for k in
  // midpoint(lo+k, hi+k) == midpoint(target range).
  const int k = (target.min_normal_exponent + target.max_exponent) / 2 -
                (lo + hi) / 2;

  choice.log2_scale = k;
  choice.scale = std::ldexp(1.0, k);
  choice.subnormal_fraction_before =
      hist.fraction_below(target.min_normal_exponent);
  choice.subnormal_fraction_after =
      hist.fraction_below(target.min_normal_exponent - k);
  choice.overflow_fraction_after =
      hist.fraction_at_or_above(target.max_exponent + 1 - k);
  choice.fits = span <= target_span &&
                hist.min_observed() + k >= target.min_normal_exponent &&
                hist.max_observed() + k <= target.max_exponent;
  return choice;
}

}  // namespace tfx::fp
