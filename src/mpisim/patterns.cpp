#include "mpisim/patterns.hpp"

#include "core/contracts.hpp"

namespace tfx::mpisim {

namespace {

int largest_pow2_below(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

int log2_levels(int p) {  // number of k in {1,2,4,...} with k < p
  int levels = 0;
  for (int k = 1; k < p; k <<= 1) ++levels;
  return levels;
}

// Reserve every rank's op vector at a closed-form upper bound so
// building a program is one allocation per rank instead of a
// reallocation cascade - at 1024+ ranks the ring builder's growth
// copies used to dominate DES host time (docs/TOPOLOGY.md).
void reserve_ranks(sim_program& prog, std::size_t ops_per_rank) {
  for (auto& ops : prog.ranks) ops.reserve(ops_per_rank);
}

}  // namespace

sim_program make_barrier_program(int p) {
  sim_program prog(p);
  if (p == 1) return prog;
  reserve_ranks(prog, 2 * static_cast<std::size_t>(log2_levels(p)));
  for (int r = 0; r < p; ++r) {
    for (int k = 1; k < p; k <<= 1) {
      const int dst = (r + k) % p;
      const int src = (r - k % p + p) % p;
      prog.rank(r).push_back(sim_op::send_to(dst, 1));
      prog.rank(r).push_back(sim_op::recv_from(src, 1));
    }
  }
  return prog;
}

sim_program make_bcast_program(int p, std::size_t count,
                               std::size_t elem_bytes, int root) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  if (p == 1) return prog;
  reserve_ranks(prog, static_cast<std::size_t>(log2_levels(p)) + 1);
  for (int r = 0; r < p; ++r) {
    const int vrank = (r - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int src = ((vrank - mask) + root) % p;
        prog.rank(r).push_back(sim_op::recv_from(src, bytes));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < p) {
        const int dst = ((vrank + mask) + root) % p;
        prog.rank(r).push_back(sim_op::send_to(dst, bytes));
      }
      mask >>= 1;
    }
  }
  return prog;
}

sim_program make_reduce_program(const tofud_params& net, int p,
                                std::size_t count, std::size_t elem_bytes,
                                int root) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  const double combine_s = reduce_compute_seconds(net, bytes);
  reserve_ranks(prog, 2 * static_cast<std::size_t>(log2_levels(p)));
  for (int r = 0; r < p; ++r) {
    const int vrank = (r - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int dst = ((vrank - mask) + root) % p;
        prog.rank(r).push_back(sim_op::send_to(dst, bytes));
        break;
      }
      if (vrank + mask < p) {
        const int src = ((vrank + mask) + root) % p;
        prog.rank(r).push_back(sim_op::recv_from(src, bytes));
        prog.rank(r).push_back(sim_op::compute_for(combine_s));
      }
      mask <<= 1;
    }
  }
  return prog;
}

sim_program make_allreduce_program(const tofud_params& net, int p,
                                   std::size_t count, std::size_t elem_bytes,
                                   coll_algorithm algo) {
  if (algo == coll_algorithm::automatic) {
    algo = count * elem_bytes <= allreduce_ring_threshold
               ? coll_algorithm::recursive_doubling
               : coll_algorithm::rabenseifner;
  }
  TFX_EXPECTS(algo == coll_algorithm::recursive_doubling ||
              algo == coll_algorithm::ring ||
              algo == coll_algorithm::rabenseifner);

  sim_program prog(p);
  if (p == 1) return prog;
  const std::size_t bytes = count * elem_bytes;
  const double combine_s = reduce_compute_seconds(net, bytes);

  if (algo == coll_algorithm::recursive_doubling) {
    const int pof2 = largest_pow2_below(p);
    const int rem = p - pof2;
    auto real_rank = [rem](int nr) { return nr < rem ? nr * 2 : nr + rem; };
    reserve_ranks(prog, 3 * static_cast<std::size_t>(log2_levels(pof2)) + 3);
    for (int r = 0; r < p; ++r) {
      auto& ops = prog.rank(r);
      int newrank;
      if (r < 2 * rem) {
        if (r % 2 != 0) {
          ops.push_back(sim_op::send_to(r - 1, bytes));
          newrank = -1;
        } else {
          ops.push_back(sim_op::recv_from(r + 1, bytes));
          ops.push_back(sim_op::compute_for(combine_s));
          newrank = r / 2;
        }
      } else {
        newrank = r - rem;
      }
      if (newrank != -1) {
        for (int mask = 1; mask < pof2; mask <<= 1) {
          const int partner = real_rank(newrank ^ mask);
          ops.push_back(sim_op::send_to(partner, bytes));
          ops.push_back(sim_op::recv_from(partner, bytes));
          ops.push_back(sim_op::compute_for(combine_s));
        }
      }
      if (r < 2 * rem) {
        if (r % 2 == 0) {
          ops.push_back(sim_op::send_to(r + 1, bytes));
        } else {
          ops.push_back(sim_op::recv_from(r - 1, bytes));
        }
      }
    }
    return prog;
  }

  if (algo == coll_algorithm::rabenseifner) {
    // Mirrors detail::allreduce_rabenseifner operation for operation.
    const int pof2 = largest_pow2_below(p);
    const int rem = p - pof2;
    auto real_rank = [rem](int nr) { return nr < rem ? nr * 2 : nr + rem; };
    auto bound = [count, pof2](int b) {
      return count * static_cast<std::size_t>(b) /
             static_cast<std::size_t>(pof2);
    };
    reserve_ranks(prog, 5 * static_cast<std::size_t>(log2_levels(pof2)) + 3);
    for (int r = 0; r < p; ++r) {
      auto& ops = prog.rank(r);
      int newrank;
      if (r < 2 * rem) {
        if (r % 2 != 0) {
          ops.push_back(sim_op::send_to(r - 1, bytes));
          newrank = -1;
        } else {
          ops.push_back(sim_op::recv_from(r + 1, bytes));
          ops.push_back(sim_op::compute_for(combine_s));
          newrank = r / 2;
        }
      } else {
        newrank = r - rem;
      }
      int lo = 0, hi = pof2;
      if (newrank != -1) {
        for (int mask = pof2 >> 1; mask > 0; mask >>= 1) {
          const int partner = real_rank(newrank ^ mask);
          const int mid = (lo + hi) / 2;
          const std::size_t lo_b = bound(lo), mid_b = bound(mid),
                            hi_b = bound(hi);
          if (newrank < (newrank ^ mask)) {
            ops.push_back(sim_op::send_to(partner,
                                          (hi_b - mid_b) * elem_bytes));
            ops.push_back(sim_op::recv_from(partner,
                                            (mid_b - lo_b) * elem_bytes));
            ops.push_back(sim_op::compute_for(reduce_compute_seconds(
                net, (mid_b - lo_b) * elem_bytes)));
            hi = mid;
          } else {
            ops.push_back(sim_op::send_to(partner,
                                          (mid_b - lo_b) * elem_bytes));
            ops.push_back(sim_op::recv_from(partner,
                                            (hi_b - mid_b) * elem_bytes));
            ops.push_back(sim_op::compute_for(reduce_compute_seconds(
                net, (hi_b - mid_b) * elem_bytes)));
            lo = mid;
          }
        }
        for (int mask = 1; mask < pof2; mask <<= 1) {
          const int partner = real_rank(newrank ^ mask);
          const int span_blocks = hi - lo;
          const std::size_t lo_b = bound(lo), hi_b = bound(hi);
          ops.push_back(sim_op::send_to(partner, (hi_b - lo_b) * elem_bytes));
          if (newrank < (newrank ^ mask)) {
            const std::size_t sib_b = bound(hi + span_blocks);
            ops.push_back(sim_op::recv_from(partner,
                                            (sib_b - hi_b) * elem_bytes));
            hi += span_blocks;
          } else {
            const std::size_t sib_b = bound(lo - span_blocks);
            ops.push_back(sim_op::recv_from(partner,
                                            (lo_b - sib_b) * elem_bytes));
            lo -= span_blocks;
          }
        }
      }
      if (r < 2 * rem) {
        if (r % 2 == 0) {
          ops.push_back(sim_op::send_to(r + 1, bytes));
        } else {
          ops.push_back(sim_op::recv_from(r - 1, bytes));
        }
      }
    }
    return prog;
  }

  // Ring: reduce-scatter then allgather with the same segment sizes as
  // the template (n*(k)/p boundaries over *elements*, then scaled).
  auto seg_elems = [&](int s) {
    const int seg = ((s % p) + p) % p;
    const std::size_t b =
        count * static_cast<std::size_t>(seg) / static_cast<std::size_t>(p);
    const std::size_t e = count * (static_cast<std::size_t>(seg) + 1) /
                          static_cast<std::size_t>(p);
    return e - b;
  };
  reserve_ranks(prog, 5 * static_cast<std::size_t>(p - 1));
  for (int r = 0; r < p; ++r) {
    auto& ops = prog.rank(r);
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const std::size_t out_b = seg_elems(r - step) * elem_bytes;
      const std::size_t in_b = seg_elems(r - step - 1) * elem_bytes;
      ops.push_back(sim_op::send_to(right, out_b));
      ops.push_back(sim_op::recv_from(left, in_b));
      ops.push_back(sim_op::compute_for(
          reduce_compute_seconds(net, in_b)));
    }
    for (int step = 0; step < p - 1; ++step) {
      const std::size_t out_b = seg_elems(r + 1 - step) * elem_bytes;
      const std::size_t in_b = seg_elems(r - step) * elem_bytes;
      ops.push_back(sim_op::send_to(right, out_b));
      ops.push_back(sim_op::recv_from(left, in_b));
    }
  }
  return prog;
}

sim_program make_hierarchical_allreduce_program(
    const tofud_params& net, const torus_placement& place,
    std::size_t count, std::size_t elem_bytes, coll_algorithm algo) {
  const int p = place.rank_count();
  const int m = place.ranks_per_node();
  const int nodes = place.node_count();
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  const double combine_s = reduce_compute_seconds(net, bytes);

  // The leaders' flat allreduce, built once over `nodes` virtual ranks
  // and spliced into each leader's program with peers remapped to
  // global ranks (leader of node k == global rank k*m under the block
  // placement - the same ranks hierarchy{} elects).
  sim_program leader_prog =
      nodes > 1 ? make_allreduce_program(net, nodes, count, elem_bytes, algo)
                : sim_program(1);

  const auto levels = static_cast<std::size_t>(log2_levels(m));
  for (int node = 0; node < nodes; ++node) {
    const int leader = node * m;
    auto& lops = prog.rank(leader);
    lops.reserve(2 * levels +
                 leader_prog.ranks[static_cast<std::size_t>(
                     nodes > 1 ? node : 0)].size() +
                 static_cast<std::size_t>(m > 1 ? 1 : 0));
    for (int j = 1; j < m; ++j) {
      prog.rank(leader + j).reserve(2 * levels + 2);
    }

    // Phase 1: intra-node binomial reduce to local rank 0
    // (detail::reduce_inplace with root 0; vrank == local rank).
    for (int j = 0; j < m; ++j) {
      auto& ops = prog.rank(leader + j);
      int mask = 1;
      while (mask < m) {
        if (j & mask) {
          ops.push_back(sim_op::send_to(leader + (j - mask), bytes));
          break;
        }
        if (j + mask < m) {
          ops.push_back(sim_op::recv_from(leader + (j + mask), bytes));
          ops.push_back(sim_op::compute_for(combine_s));
        }
        mask <<= 1;
      }
    }

    // Phase 2: the leaders' flat allreduce, remapped to global ranks.
    if (nodes > 1) {
      for (const sim_op& op : leader_prog.ranks[static_cast<std::size_t>(node)]) {
        sim_op mapped = op;
        if (op.what != sim_op::kind::compute) mapped.peer = op.peer * m;
        lops.push_back(mapped);
      }
    }

    // Phase 3: intra-node binomial bcast from local rank 0.
    for (int j = 0; j < m; ++j) {
      auto& ops = prog.rank(leader + j);
      int mask = 1;
      while (mask < m) {
        if (j & mask) {
          ops.push_back(sim_op::recv_from(leader + (j - mask), bytes));
          break;
        }
        mask <<= 1;
      }
      mask >>= 1;
      while (mask > 0) {
        if (j + mask < m) {
          ops.push_back(sim_op::send_to(leader + (j + mask), bytes));
        }
        mask >>= 1;
      }
    }
  }
  return prog;
}

sim_program make_allgather_program(int p, std::size_t count,
                                   std::size_t elem_bytes) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  if (p == 1) return prog;
  reserve_ranks(prog, 2 * static_cast<std::size_t>(p - 1));
  for (int r = 0; r < p; ++r) {
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      prog.rank(r).push_back(sim_op::send_to(right, bytes));
      prog.rank(r).push_back(sim_op::recv_from(left, bytes));
    }
  }
  return prog;
}

sim_program make_gatherv_program(int p, std::size_t count,
                                 std::size_t elem_bytes, int root) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  prog.rank(root).reserve(static_cast<std::size_t>(p - 1));
  for (int r = 0; r < p; ++r) {
    if (r != root) {
      prog.rank(r).push_back(sim_op::send_to(root, bytes));
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    prog.rank(root).push_back(sim_op::recv_from(src, bytes));
  }
  return prog;
}

}  // namespace tfx::mpisim
