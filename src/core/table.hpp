#pragma once

/// \file table.hpp
/// Column-aligned text tables and CSV emission for the per-figure
/// benchmark binaries. Each bench prints the same rows/series the
/// paper's figure reports, so the table *is* the reproduced artifact.

#include <iosfwd>
#include <string>
#include <vector>

namespace tfx {

/// A simple right-aligned table builder.
///
/// Usage:
///   table t({"n", "Julia", "FujitsuBLAS"});
///   t.add_row({"1024", "12.3", "11.9"});
///   t.print(std::cout);
class table {
 public:
  explicit table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish: cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfx
