// Stress suite of the ensemble engine: thousands of members with
// randomized shapes and precision personalities through the async
// scheduler (run under TFX_SANITIZE=thread via the `threads` ctest
// label), an operator-new counting proof that the batched steady
// state allocates nothing after warmup (the kernels_hotswap_test
// idiom), and tenant isolation of the obs plane — each tenant's
// metric counters account for exactly its own member-steps, and
// ens-domain job events carry the owning tenant's track.

// The replacement operator new/delete below route through malloc/free;
// GCC's heuristic cannot see that the pair matches and warns at every
// inlined delete site in this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <set>
#include <string_view>
#include <vector>

#include "core/rng.hpp"
#include "ensemble/engine.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::ensemble;

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps
// it, so a window of zero proves the steady state touched no heap.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t allocs_during(const auto& fn) {
  const std::uint64_t before = g_allocs.load();
  fn();
  return g_allocs.load() - before;
}

// Standalone oracle (the ensemble_engine_test recipe, condensed):
// final scaled prognostic + compensation in double.
template <typename T, typename Tprog>
void run_oracle_as(const member_config& cfg, swm::integration_scheme scheme,
                   swm::state<double>& prog, swm::state<double>& comp) {
  swm::swm_params p;
  p.nx = cfg.nx;
  p.ny = cfg.ny;
  p.log2_scale = cfg.log2_scale;
  fp::ftz_guard guard(cfg.ftz);
  swm::model<T, Tprog> m(p, scheme);
  if (cfg.initial != nullptr) {
    m.restore(swm::convert_state<Tprog>(*cfg.initial), cfg.initial_steps);
  } else {
    m.seed_random_eddies(cfg.seed, cfg.velocity_amplitude);
  }
  if (cfg.perturb_seed != 0) {
    xoshiro256 rng(cfg.perturb_seed);
    auto& st = m.prognostic();
    for (auto* f : {&st.u, &st.v, &st.eta}) {
      for (auto& v : f->flat()) {
        v = Tprog(static_cast<double>(v) *
                  (1.0 + cfg.perturb_amplitude * rng.uniform(-1.0, 1.0)));
      }
    }
  }
  m.run(cfg.steps);
  swm::convert_state_into(prog, m.prognostic());
  swm::convert_state_into(comp, m.compensation());
}

void run_oracle(const member_config& cfg, swm::state<double>& prog,
                swm::state<double>& comp) {
  using swm::integration_scheme;
  switch (cfg.prec) {
    case personality::float64:
      run_oracle_as<double, double>(cfg, integration_scheme::standard, prog,
                                    comp);
      return;
    case personality::float64_comp:
      run_oracle_as<double, double>(cfg, integration_scheme::compensated, prog,
                                    comp);
      return;
    case personality::float32:
      run_oracle_as<float, float>(cfg, integration_scheme::standard, prog,
                                  comp);
      return;
    case personality::float16:
      run_oracle_as<fp::float16, fp::float16>(
          cfg, integration_scheme::compensated, prog, comp);
      return;
    case personality::float16_mixed:
      run_oracle_as<fp::float16, float>(cfg, integration_scheme::standard,
                                        prog, comp);
      return;
    case personality::bfloat16:
      run_oracle_as<fp::bfloat16, fp::bfloat16>(
          cfg, integration_scheme::compensated, prog, comp);
      return;
  }
}

void expect_state_bits(const swm::state<double>& got,
                       const swm::state<double>& want) {
  for (const auto [g, w] : {std::pair{&got.u, &want.u},
                            std::pair{&got.v, &want.v},
                            std::pair{&got.eta, &want.eta}}) {
    const auto gf = g->flat();
    const auto wf = w->flat();
    ASSERT_EQ(gf.size(), wf.size());
    int bad = 0;
    for (std::size_t i = 0; i < gf.size(); ++i) {
      bad += std::bit_cast<std::uint64_t>(gf[i]) !=
             std::bit_cast<std::uint64_t>(wf[i]);
    }
    EXPECT_EQ(bad, 0);
  }
}

/// RAII tracing session (the obs_trace_test idiom).
struct obs_session {
  obs_session() {
    obs::metrics_registry::instance().clear();
    obs::start();
  }
  ~obs_session() { obs::stop(); }
  obs_session(const obs_session&) = delete;
  obs_session& operator=(const obs_session&) = delete;
};

}  // namespace

// ---------------------------------------------------------------------------
// 2k+ randomized members through the async scheduler.
// ---------------------------------------------------------------------------

TEST(EnsembleStress, ThousandsOfRandomizedMembersAllCompleteExactly) {
  constexpr int kMembers = 2048;
  constexpr struct {
    int nx, ny;
  } kShapes[] = {{8, 4}, {12, 6}, {16, 8}};

  std::mt19937 rng(20260807u);
  std::vector<member_config> configs;
  configs.reserve(kMembers);
  for (int i = 0; i < kMembers; ++i) {
    member_config cfg;
    cfg.prec = all_personalities[rng() % 6u];
    const auto& sh = kShapes[rng() % 3u];
    cfg.nx = sh.nx;
    cfg.ny = sh.ny;
    cfg.steps = 2 + static_cast<int>(rng() % 4u);
    cfg.seed = 100 + (rng() % 1000u);
    if (rng() % 4u == 0) {
      cfg.perturb_seed = 5000 + i;
      cfg.perturb_amplitude = 1e-2;
    }
    if (cfg.prec == personality::float16 && rng() % 2u == 0) {
      cfg.log2_scale = 8;
      cfg.ftz = fp::ftz_mode::flush;
    }
    configs.push_back(cfg);
  }

  engine_options opts;
  opts.threads = 4;
  opts.async = true;
  opts.max_members = kMembers;
  engine eng(opts);

  std::vector<job_id> ids;
  ids.reserve(configs.size());
  std::vector<job_id> cancelled;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const submit_ticket t = eng.submit(configs[i]);
    ASSERT_TRUE(t.ok()) << "member " << i << ": "
                        << submit_error_name(t.error);
    ids.push_back(t.id);
    // Sprinkle cancellations while the scheduler races the submitter.
    if (i % 97 == 0) {
      const cancel_result c = eng.cancel(t.id);
      EXPECT_TRUE(c == cancel_result::requested ||
                  c == cancel_result::already_done);
      cancelled.push_back(t.id);
    }
  }
  eng.wait_all();
  EXPECT_EQ(eng.active_members(), 0u);

  std::set<job_id> maybe_cancelled(cancelled.begin(), cancelled.end());
  int done = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto st = eng.poll(ids[i]);
    ASSERT_TRUE(st.has_value());
    if (maybe_cancelled.count(ids[i]) != 0) {
      ASSERT_TRUE(st->state == job_state::done ||
                  st->state == job_state::cancelled);
      continue;
    }
    ASSERT_EQ(st->state, job_state::done) << "member " << i;
    ASSERT_EQ(st->steps_done, configs[i].steps);
    ++done;
  }
  EXPECT_GE(done, kMembers - static_cast<int>(cancelled.size()));

  // Spot-check a deterministic sample against the standalone oracle —
  // full bit-identity, not tolerance.
  for (std::size_t i = 0; i < ids.size(); i += 97) {
    if (maybe_cancelled.count(ids[i]) != 0) continue;
    SCOPED_TRACE(::testing::Message() << "member " << i << " "
                                      << personality_name(configs[i].prec));
    const job_result* got = eng.result(ids[i]);
    ASSERT_NE(got, nullptr);
    swm::state<double> prog(configs[i].nx, configs[i].ny);
    swm::state<double> comp(configs[i].nx, configs[i].ny);
    run_oracle(configs[i], prog, comp);
    expect_state_bits(got->prognostic, prog);
    expect_state_bits(got->compensation, comp);
  }
}

// ---------------------------------------------------------------------------
// Allocation-freedom of the batched steady state.
// ---------------------------------------------------------------------------

TEST(EnsembleStress, BatchedSteadyStateIsAllocationFreeAfterWarmup) {
  ASSERT_FALSE(obs::active());  // obs off: the gated hot path is bare

  engine_options opts;
  opts.threads = 2;
  opts.async = false;  // manual rounds: the measured window is exact
  opts.stride = 2;
  engine eng(opts);

  // Two batch groups, enough members for several tiles each.
  for (int i = 0; i < 32; ++i) {
    member_config cfg;
    cfg.prec = personality::float32;
    cfg.nx = 16;
    cfg.ny = 8;
    cfg.steps = 30;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(eng.submit(cfg).ok());
  }
  for (int i = 0; i < 16; ++i) {
    member_config cfg;
    cfg.prec = personality::float64_comp;
    cfg.nx = 12;
    cfg.ny = 6;
    cfg.steps = 30;
    cfg.seed = 500 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(eng.submit(cfg).ok());
  }

  // Warmup: first rounds splice members into groups, reserve the
  // batch-item scratch and grow the pool's task buffer.
  ASSERT_EQ(eng.drive(2), 2);

  // Steady state: stepping rounds touch no heap at all.
  const std::uint64_t steady = allocs_during([&] { eng.drive(4); });
  EXPECT_EQ(steady, 0u)
      << "batched stepping rounds must not allocate after warmup";

  // Completion (finalize + compaction) only *releases* memory.
  const std::uint64_t drain = allocs_during([&] { eng.wait_all(); });
  EXPECT_EQ(drain, 0u) << "finalization must not allocate";

  for (job_id id = 1; id <= 48; ++id) {
    const auto st = eng.poll(id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, job_state::done);
  }
}

// ---------------------------------------------------------------------------
// Obs tenant isolation.
// ---------------------------------------------------------------------------

TEST(EnsembleStress, TenantCountersAndTracksAreIsolated) {
  if (!obs::compiled) GTEST_SKIP() << "obs compiled out";
  const obs_session session;

  std::vector<obs::event> events;
  tenant_id alpha = 0;
  tenant_id beta = 0;
  std::vector<job_id> alpha_ids;
  std::vector<job_id> beta_ids;
  {
    engine_options opts;
    opts.threads = 2;
    opts.async = false;
    engine eng(opts);
    alpha = eng.register_tenant("alpha");
    beta = eng.register_tenant("beta");
    ASSERT_NE(alpha, beta);
    ASSERT_NE(alpha, default_tenant);

    // alpha: 3 jobs x 4 steps = 12 member-steps; beta: 2 x 5 = 10.
    for (int i = 0; i < 3; ++i) {
      member_config cfg;
      cfg.steps = 4;
      cfg.seed = 10 + static_cast<std::uint64_t>(i);
      const submit_ticket t = eng.submit(cfg, alpha);
      ASSERT_TRUE(t.ok());
      alpha_ids.push_back(t.id);
    }
    for (int i = 0; i < 2; ++i) {
      member_config cfg;
      cfg.prec = personality::float32;
      cfg.steps = 5;
      cfg.seed = 20 + static_cast<std::uint64_t>(i);
      const submit_ticket t = eng.submit(cfg, beta);
      ASSERT_TRUE(t.ok());
      beta_ids.push_back(t.id);
    }
    eng.wait_all();
    events = obs::collect();
  }

  // Per-tenant counters account for exactly the tenant's own steps —
  // no bleed between tenants, none from the default tenant.
  auto& reg = obs::metrics_registry::instance();
  EXPECT_EQ(reg.get_counter("ens.steps.alpha").value(), 12u);
  EXPECT_EQ(reg.get_counter("ens.jobs.alpha").value(), 3u);
  EXPECT_EQ(reg.get_counter("ens.steps.beta").value(), 10u);
  EXPECT_EQ(reg.get_counter("ens.jobs.beta").value(), 2u);
  EXPECT_EQ(reg.get_counter("ens.steps.default").value(), 0u);
  EXPECT_EQ(reg.get_counter("ens.member_steps").value(), 22u);
  EXPECT_EQ(reg.get_counter("ens.jobs_done").value(), 5u);

  // Every ens.job.done instant carries the owning tenant's track and
  // one of its job ids; ens.tenant.steps counters only name
  // registered tenants.
  const std::set<job_id> alpha_set(alpha_ids.begin(), alpha_ids.end());
  const std::set<job_id> beta_set(beta_ids.begin(), beta_ids.end());
  int done_events = 0;
  for (const obs::event& e : events) {
    if (e.dom != obs::domain::ens) continue;
    const std::string_view name(e.name);
    if (name == "ens.job.done") {
      ++done_events;
      if (e.track == alpha) {
        EXPECT_EQ(alpha_set.count(e.a), 1u) << "job " << e.a;
      } else if (e.track == beta) {
        EXPECT_EQ(beta_set.count(e.a), 1u) << "job " << e.a;
      } else {
        ADD_FAILURE() << "ens.job.done on unowned track " << e.track;
      }
    } else if (name == "ens.tenant.steps") {
      EXPECT_TRUE(e.track == alpha || e.track == beta)
          << "tenant counter on track " << e.track;
    }
  }
  EXPECT_EQ(done_events, 5);
}
