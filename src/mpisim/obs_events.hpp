#pragma once

/// \file obs_events.hpp
/// Shared trace-event vocabulary of the message-passing layer.
///
/// The threaded runtime (runtime.cpp) and the discrete-event engine
/// (des.cpp) must emit the *same* event sequence for the same program
/// and fault schedule - the golden-trace test
/// (tests/obs_trace_test.cpp) compares the two streams record for
/// record. Both engines therefore route their emission through these
/// helpers: every lifecycle event is derived from the same
/// fault_plane::plan() output and stamped with the rank's *virtual*
/// clock, so DES traces are bit-reproducible and the threaded trace
/// matches it independent of thread interleaving. The one engine
/// asymmetry is net.dedup (receive-side discard of a corrupt/replayed
/// copy): the DES never materializes those copies, so the golden test
/// filters dedup events out before comparing.
///
/// Track convention: track == the emitting (or dying) rank. Payload
/// words: see each helper.

#include <cstddef>
#include <cstdint>

#include "mpisim/faultplane.hpp"
#include "obs/trace.hpp"

namespace tfx::mpisim::obs_ev {

inline constexpr const char* send = "net.send";
inline constexpr const char* recv = "net.recv";
inline constexpr const char* stall = "net.stall";
inline constexpr const char* retry = "net.retry";
inline constexpr const char* drop = "net.drop";
inline constexpr const char* corrupt = "net.corrupt";
inline constexpr const char* dup = "net.dup";
inline constexpr const char* send_failed = "net.send_failed";
inline constexpr const char* casualty = "net.casualty";
inline constexpr const char* dedup = "net.dedup";  ///< threaded engine only
inline constexpr const char* link_wait =
    "net.link_wait";  ///< contended DES only

inline std::uint16_t track_of(int rank) {
  return static_cast<std::uint16_t>(rank);
}

/// Scheduled stall charged before a send. a = dst, b = send index.
inline void emit_stall(int rank, int dst, double clock,
                       std::uint64_t send_index) {
  tfx::obs::instant_at(tfx::obs::domain::net, track_of(rank), stall, clock,
                       static_cast<std::uint64_t>(dst), send_index);
}

/// Vanilla (fault-free path) send. a = dst, b = bytes; ts = the
/// injection start, identical in both engines.
inline void emit_vanilla_send(int rank, int dst, double inject_start,
                              std::size_t bytes) {
  tfx::obs::instant_at(tfx::obs::domain::net, track_of(rank), send,
                       inject_start, static_cast<std::uint64_t>(dst),
                       static_cast<std::uint64_t>(bytes));
}

/// The full sender-side lifecycle of one fault-plane message, derived
/// from its transmit_plan: retries (b = attempt index) and their
/// drop/corrupt outcomes (b = seq) at each attempt's depart time, then
/// either net.send_failed (retries exhausted) or net.send at the
/// delivered copy's depart (b = bytes) plus an optional net.dup.
inline void emit_transmit_plan(int rank, int dst, std::uint64_t seq,
                               std::size_t bytes, const transmit_plan& tp) {
  using namespace tfx::obs;
  if (!active()) return;
  const auto udst = static_cast<std::uint64_t>(dst);
  const std::uint16_t tr = track_of(rank);
  for (std::size_t i = 0; i < tp.attempts.size(); ++i) {
    const auto& a = tp.attempts[i];
    if (i > 0) instant_at(domain::net, tr, retry, a.depart, udst, i);
    if (a.dropped) {
      instant_at(domain::net, tr, drop, a.depart, udst, seq);
    } else if (a.corrupt) {
      instant_at(domain::net, tr, corrupt, a.depart, udst, seq);
    }
  }
  if (tp.failed) {
    instant_at(domain::net, tr, send_failed, tp.attempts.back().depart, udst,
               seq);
    return;
  }
  instant_at(domain::net, tr, send, tp.good_depart, udst,
             static_cast<std::uint64_t>(bytes));
  if (tp.duplicated) {
    instant_at(domain::net, tr, dup, tp.dup_depart, udst, seq);
  }
}

/// Accepted delivery. a = src, b = bytes; ts = the receiver's clock
/// after the arrival update (identical formulas in both engines).
inline void emit_recv(int rank, int src, double clock, std::size_t bytes) {
  tfx::obs::instant_at(tfx::obs::domain::net, track_of(rank), recv, clock,
                       static_cast<std::uint64_t>(src),
                       static_cast<std::uint64_t>(bytes));
}

/// Receive-side discard of a corrupt or replayed copy (threaded
/// runtime only). a = src, b = seq.
inline void emit_dedup(int rank, int src, double clock, std::uint64_t seq) {
  tfx::obs::instant_at(tfx::obs::domain::net, track_of(rank), dedup, clock,
                       static_cast<std::uint64_t>(src), seq);
}

/// A message queued behind busy torus links on its route (emitted only
/// by the DES in fabric_mode::contended, so the golden cross-engine
/// traces - which run uncontended - never see it). a = dst,
/// b = the wait in nanoseconds (rounded); ts = the injection start.
inline void emit_link_wait(int rank, int dst, double inject_start,
                           double wait_s) {
  tfx::obs::instant_at(tfx::obs::domain::net, track_of(rank), link_wait,
                       inject_start, static_cast<std::uint64_t>(dst),
                       static_cast<std::uint64_t>(wait_s * 1e9 + 0.5));
}

/// Rank death (scheduled crash, exhausted retries, or a fatal notice
/// from a peer). a = the dying rank (== track), b = the implicated
/// peer (self for scheduled crashes). The golden test compares
/// casualty *sets* per engine, not timestamps.
inline void emit_casualty(int rank, int peer, double clock) {
  tfx::obs::instant_at(tfx::obs::domain::net, track_of(rank), casualty, clock,
                       static_cast<std::uint64_t>(rank),
                       static_cast<std::uint64_t>(peer));
}

}  // namespace tfx::mpisim::obs_ev
