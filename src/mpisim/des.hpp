#pragma once

/// \file des.hpp
/// Discrete-event execution of sim_programs.
///
/// Walks the per-rank op lists with the *same* clock-update rules the
/// threaded runtime applies (runtime.hpp header comment), using
/// per-(src,dst) FIFO message queues instead of real data. This is how
/// the Fig. 3 benchmarks time collectives at 1536 ranks in
/// milliseconds of host time.
///
/// When a fault plane is supplied (faultplane.hpp), the engine applies
/// the same deterministic per-message transmission schedules as the
/// threaded runtime - retry backoff, stall/crash schedules, poisoned
/// sends - and reports the same counters, delivery orders, and crashed
/// ranks, so a chaos run is cross-checkable between the two engines at
/// thread-runnable rank counts and replayable at 1536 ranks.

#include <vector>

#include "mpisim/faultplane.hpp"
#include "mpisim/network.hpp"
#include "mpisim/patterns.hpp"

namespace tfx::mpisim {

/// How the fabric charges a message's serialization time.
enum class fabric_mode {
  /// Endpoint-port model: serialization is charged at the sender's
  /// injection port and the receiver's ejection port only; torus links
  /// never contend. Reproduces the pre-topology clocks bit-identically
  /// (the golden-clock oracle in tests/mpisim_topology_test.cpp).
  uncontended,
  /// Store-and-forward link model: an inter-node message additionally
  /// occupies every directed link of its dimension-ordered route
  /// (torus_placement::route_of) for its serialization time, FIFO per
  /// link, so hot links back up and messages overtake each other
  /// across routes of different length. Intra-node messages never
  /// touch links and keep their uncontended timing exactly.
  contended,
};

/// Simulation knobs (trailing optional argument of simulate()).
struct des_options {
  fabric_mode fabric = fabric_mode::uncontended;
};

/// Fabric occupancy counters, populated only in fabric_mode::contended.
struct link_stat_block {
  std::uint64_t routed_messages = 0;  ///< inter-node messages routed
  std::uint64_t link_hops = 0;        ///< links traversed in total
  std::uint64_t contended_hops = 0;   ///< hops that found the link busy
  double wait_seconds = 0;      ///< total virtual time queued at links
  double max_link_busy_s = 0;   ///< busiest link's total occupancy
  int max_link = -1;            ///< its id (torus_placement::link_at)
};

/// Result of simulating one program.
struct des_result {
  std::vector<double> clocks;  ///< per-rank completion times

  link_stat_block links;  ///< fabric occupancy (contended mode only)

  // -- populated only for fault-plane runs --
  fault_stats stats;  ///< injection/retry counters (sender-side plans)
  std::vector<std::vector<delivery_record>> deliveries;  ///< per rank
  std::vector<int> crashed;  ///< ranks halted by crash/poison/cascade

  /// The collective's latency as IMB reports it: the maximum over
  /// ranks (time until the slowest rank finished).
  [[nodiscard]] double max_clock() const;
  [[nodiscard]] double min_clock() const;
  [[nodiscard]] double avg_clock() const;
};

/// Execute `prog` over the modeled network. `start_clocks`, if
/// non-empty, seeds each rank's clock (e.g. to chain iterations);
/// otherwise all ranks start at 0. `faults`, if non-null and active,
/// injects the same deterministic fault schedule the threaded runtime
/// would (crashed ranks halt and cascade instead of deadlocking).
/// `opts.fabric` selects the endpoint-only or the link-contention
/// fabric (docs/TOPOLOGY.md). Aborts on deadlock (malformed program),
/// which cannot happen for the generators in patterns.hpp.
des_result simulate(const sim_program& prog, const tofud_params& net,
                    const torus_placement& place,
                    std::vector<double> start_clocks = {},
                    const fault_plane* faults = nullptr,
                    des_options opts = {});

}  // namespace tfx::mpisim
