#pragma once

/// \file gemv.hpp
/// Type-generic Level-2 BLAS: matrix-vector operations.
///
/// The paper's § III-A.1 recalls the BLAS level structure (Level 1:
/// vector-vector, Level 2: matrix-vector, Level 3: matrix-matrix) and
/// benchmarks a Level-1 routine; these Level-2 kernels extend the
/// type-generic library to the next tier with the same one-template
/// discipline. Matrices are dense row-major views.

#include <cstddef>
#include <span>

#include "arch/roofline.hpp"
#include "core/contracts.hpp"
#include "kernels/generic.hpp"

namespace tfx::kernels {

/// Dense row-major matrix view (rows x cols, leading dimension = cols).
template <typename T>
class matrix_view {
 public:
  matrix_view(T* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  T& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] std::span<T> row(std::size_t i) const {
    return {data_ + i * cols_, cols_};
  }

 private:
  T* data_;
  std::size_t rows_, cols_;
};

/// y <- alpha * A x + beta * y  (dgemv, no-transpose).
template <typename T>
void gemv(T alpha, matrix_view<const T> a, std::span<const T> x, T beta,
          std::span<T> y) {
  TFX_EXPECTS(a.cols() == x.size());
  TFX_EXPECTS(a.rows() == y.size());
  using tfx::fp::muladd;
  using tfx::kernels::muladd;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T acc{};
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      acc = muladd(row[j], x[j], acc);
    }
    y[i] = muladd(alpha, acc, beta * y[i]);
  }
}

/// y <- alpha * A^T x + beta * y  (dgemv, transpose). Column-order
/// accumulation over the rows keeps the access pattern streaming.
template <typename T>
void gemv_transpose(T alpha, matrix_view<const T> a, std::span<const T> x,
                    T beta, std::span<T> y) {
  TFX_EXPECTS(a.rows() == x.size());
  TFX_EXPECTS(a.cols() == y.size());
  using tfx::fp::muladd;
  using tfx::kernels::muladd;
  for (std::size_t j = 0; j < a.cols(); ++j) y[j] = beta * y[j];
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T ax = alpha * x[i];
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      y[j] = muladd(ax, row[j], y[j]);
    }
  }
}

/// A <- alpha * x y^T + A  (dger, rank-1 update).
template <typename T>
void ger(T alpha, std::span<const T> x, std::span<const T> y,
         matrix_view<T> a) {
  TFX_EXPECTS(a.rows() == x.size());
  TFX_EXPECTS(a.cols() == y.size());
  using tfx::fp::muladd;
  using tfx::kernels::muladd;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T ax = alpha * x[i];
    auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      row[j] = muladd(ax, y[j], row[j]);
    }
  }
}

/// Machine-model profile of the no-transpose gemv: per element of A,
/// one load of A plus (amortized) x, one FMA; the matrix streams once.
inline arch::kernel_profile gemv_profile() {
  arch::kernel_profile p;
  p.name = "gemv";
  p.flops_per_elem = 2.0;
  p.loads_per_elem = 1.0;   // A dominates; x/y amortize over rows/cols
  p.stores_per_elem = 0.0;
  p.vector_bits = 512;
  p.simd_efficiency = 0.9;
  return p;
}

}  // namespace tfx::kernels
