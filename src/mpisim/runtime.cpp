#include "mpisim/runtime.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "core/contracts.hpp"

namespace tfx::mpisim {

recv_status request::wait() {
  if (kind_ == kind::recv) {
    status_ = comm_->recv_bytes(buffer_, src_, tag_);
    kind_ = kind::none;
  }
  return status_;
}

void waitall(std::span<request> requests) {
  for (auto& r : requests) r.wait();
}

int communicator::size() const { return world_->size(); }

const tofud_params& communicator::net() const { return world_->net(); }

const torus_placement& communicator::placement() const {
  return world_->placement();
}

void communicator::send_bytes(std::span<const std::byte> data, int dst,
                              int tag) {
  TFX_EXPECTS(dst >= 0 && dst < size());
  TFX_EXPECTS(tag >= 0);
  clock_ += world_->net().send_overhead_s;
  const double inject_start = std::max(clock_, send_port_free_);
  send_port_free_ =
      inject_start + serialization_seconds(world_->net(),
                                           world_->placement(), rank_, dst,
                                           data.size());
  world::message msg{rank_, tag, inject_start,
                     std::vector<std::byte>(data.begin(), data.end())};
  world_->deposit(dst, std::move(msg));
}

recv_status communicator::recv_bytes(std::span<std::byte> out, int src,
                                     int tag) {
  TFX_EXPECTS(src == any_source || (src >= 0 && src < size()));
  world::message msg = world_->collect(rank_, src, tag);
  TFX_EXPECTS(msg.payload.size() <= out.size());
  std::copy(msg.payload.begin(), msg.payload.end(), out.begin());

  const auto& net = world_->net();
  const auto& place = world_->placement();
  const double ready =
      msg.depart_vtime + transfer_latency_seconds(net, place, msg.source,
                                                  rank_, msg.payload.size());
  const double arrival =
      std::max(ready, recv_port_free_) +
      serialization_seconds(net, place, msg.source, rank_,
                            msg.payload.size());
  recv_port_free_ = arrival;
  clock_ = std::max(clock_, arrival) + net.recv_overhead_s;
  return recv_status{msg.source, msg.tag, msg.payload.size(), arrival};
}

recv_status communicator::sendrecv_bytes(std::span<const std::byte> out_data,
                                         int dst, int send_tag,
                                         std::span<std::byte> in_data, int src,
                                         int recv_tag) {
  send_bytes(out_data, dst, send_tag);
  return recv_bytes(in_data, src, recv_tag);
}

world::world(int ranks, tofud_params net)
    : world(torus_placement::line(ranks), net) {}

world::world(torus_placement place, tofud_params net)
    : net_(net), place_(place) {
  TFX_EXPECTS(place_.rank_count() > 0);
  mailboxes_.reserve(static_cast<std::size_t>(place_.rank_count()));
  for (int r = 0; r < place_.rank_count(); ++r) {
    mailboxes_.push_back(std::make_unique<mailbox>());
  }
}

void world::run(const std::function<void(communicator&)>& fn) {
  const int ranks = size();
  for (auto& box : mailboxes_) {
    const std::scoped_lock lock(box->mutex);
    box->queue.clear();
  }
  final_clocks_.assign(static_cast<std::size_t>(ranks), 0.0);

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      communicator comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      final_clocks_[static_cast<std::size_t>(r)] = comm.now();
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void world::deposit(int dst, message msg) {
  mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    const std::scoped_lock lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.arrived.notify_all();
}

world::message world::collect(int dst, int src, int tag) {
  mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      const bool src_ok = src == any_source || it->source == src;
      const bool tag_ok = tag == any_tag || it->tag == tag;
      if (src_ok && tag_ok) {
        message msg = std::move(*it);
        box.queue.erase(it);
        return msg;
      }
    }
    box.arrived.wait(lock);
  }
}

}  // namespace tfx::mpisim
