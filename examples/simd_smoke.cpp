// Build-matrix smoke check for the fixed-width SIMD layer: force-
// instantiates every kernel at every compile-time width (128/256/512)
// for every vectorizable element type, runs a small correctness pass
// against the generic oracles, and reports the host's detected CPU
// features and the width policy in effect. Exits nonzero on the first
// mismatch, so a CI matrix over -DTFX_SIMD_WIDTH={0,128,256,512} can
// use it as the gate.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arch/features.hpp"
#include "core/rng.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "kernels/batched.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/registry.hpp"
#include "kernels/simd.hpp"
#include "kernels/sweeps.hpp"

using namespace tfx;

namespace {

int failures = 0;

void expect(bool ok, const char* what, std::size_t bits) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s at width %zu\n", what, bits);
    ++failures;
  }
}

template <typename T>
std::vector<T> randv(std::size_t n, std::uint64_t seed) {
  xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = T(rng.uniform(-2.0, 2.0));
  return v;
}

template <std::size_t Bits, typename T>
void check_native(std::size_t n) {
  const auto x = randv<T>(n, 1);
  auto y = randv<T>(n, 2);
  auto y_ref = y;
  kernels::simd::axpy_fixed<Bits, T>(T(0.75), x, y);
  kernels::axpy<T>(T(0.75), x, y_ref);
  bool same = true;
  for (std::size_t i = 0; i < n; ++i) same = same && y[i] == y_ref[i];
  expect(same, "axpy_fixed bit-identical to generic", Bits);

  const T tree = kernels::simd::dot_fixed<Bits, T>(x, y);
  const T tree_ref = kernels::simd::dot_tree_reference<Bits, T>(x, y);
  expect(tree == tree_ref, "dot_fixed matches its reduction tree", Bits);
}

template <std::size_t Bits, typename T>
void check_widened(std::size_t n) {
  const auto x = randv<T>(n, 3);
  auto y = randv<T>(n, 4);
  auto y_ref = y;
  kernels::simd::axpy_widened<Bits, T>(T(0.5), x, y);
  kernels::axpy<T>(T(0.5), x, y_ref);
  bool same = true;
  for (std::size_t i = 0; i < n; ++i) {
    same = same && y[i].bits() == y_ref[i].bits();
  }
  expect(same, "axpy_widened bit-identical to generic", Bits);
}

template <std::size_t Bits>
void check_width() {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 257u}) {
    check_native<Bits, double>(n);
    check_native<Bits, float>(n);
    check_widened<Bits, fp::float16>(n);
    check_widened<Bits, fp::bfloat16>(n);
  }

  const kernels::gemm_batch_shape shape{8, 5, 6, 7};
  const auto a = randv<double>(shape.count * shape.a_elems(), 5);
  const auto b = randv<double>(shape.count * shape.b_elems(), 6);
  auto c = randv<double>(shape.count * shape.c_elems(), 7);
  auto c_ref = c;
  kernels::simd::gemm_batched_fixed<Bits, double>(shape, 1.25, a, b, 0.5, c);
  kernels::gemm_batched_generic<double>(shape, 1.25, a, b, 0.5, c_ref);
  bool same = true;
  for (std::size_t i = 0; i < c.size(); ++i) same = same && c[i] == c_ref[i];
  expect(same, "gemm_batched_fixed bit-identical to oracle", Bits);
}

}  // namespace

int main() {
  const auto& f = arch::host_features();
  std::printf("host isa: %s (max native width %zu bits)\n", f.isa.data(),
              f.max_vector_bits);
  std::printf("width policy: default %zu, current %zu\n",
              kernels::default_simd_width(), kernels::simd_width());
  std::printf("preferred backend: %s\n",
              std::string(
                  kernels::blas_registry::instance().preferred_vectorized())
                  .c_str());

  check_width<128>();
  check_width<256>();
  check_width<512>();

  if (failures == 0) {
    std::printf("simd smoke: all widths x types OK\n");
    return EXIT_SUCCESS;
  }
  std::fprintf(stderr, "simd smoke: %d failure(s)\n", failures);
  return EXIT_FAILURE;
}
