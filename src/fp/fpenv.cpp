#include "fp/fpenv.hpp"

namespace tfx::fp {

namespace {
thread_local ftz_mode g_ftz = ftz_mode::preserve;
thread_local fp_counters g_counters;
}  // namespace

ftz_mode current_ftz_mode() noexcept { return g_ftz; }

ftz_mode set_ftz_mode(ftz_mode mode) noexcept {
  const ftz_mode prev = g_ftz;
  g_ftz = mode;
  return prev;
}

fp_counters& counters() noexcept { return g_counters; }

}  // namespace tfx::fp
