#pragma once

/// \file tags.hpp
/// The complete message-tag space of the shallow-water application.
///
/// Every point-to-point channel the swm layer opens on the simulated
/// MPI lives in one of three disjoint bands, so a packed halo message
/// can never be matched by a checkpoint receive (or vice versa) no
/// matter how a fault-plane retry or a recovery round interleaves them:
///
/// | band                | tags                 | owner                  |
/// |---------------------|----------------------|------------------------|
/// | halo exchange       | 1000 – 1111          | swm/halo.hpp           |
/// | resilience protocol | 1<<18 – (1<<18)+16k  | swm/resilience.hpp     |
/// | collectives         | >= 1<<20             | mpisim/collectives.hpp |
///
/// Each halo channel uses a tag *pair*: `tag` carries the upward send
/// (my top row to rank r+1) and `tag + 1` the downward send, matching
/// the convention of `detail::exchange_halo`.

namespace tfx::swm::tags {

// -- legacy per-field halo exchanges (the bit-equality oracle path):
//    one tag pair per exchanged slab, in RHS evaluation order.
inline constexpr int halo_u = 1000;
inline constexpr int halo_v = 1010;
inline constexpr int halo_eta = 1020;
inline constexpr int halo_zeta = 1030;
inline constexpr int halo_ke = 1040;
inline constexpr int halo_lap_u = 1050;
inline constexpr int halo_lap_v = 1060;

// -- aggregated halo channels (swm::halo_exchanger): one tag pair per
//    phase; all fields of the phase ride in a single packed payload.
inline constexpr int halo_packed_prognostic = 1100;
inline constexpr int halo_packed_derived = 1110;

// -- resilience band: buddy checkpointing and rollback recovery
//    (resilience.hpp re-exports these under its historical names).
inline constexpr int checkpoint = 1 << 18;           ///< buddy prepare
inline constexpr int transfer = (1 << 18) + 1;       ///< buddy re-seed
inline constexpr int recovery = (1 << 18) + (1 << 14);  ///< survivor agreement

}  // namespace tfx::swm::tags
