#include "imb/benchmarks.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "core/stats.hpp"
#include "mpisim/patterns.hpp"
#include "mpisim/runtime.hpp"

namespace tfx::imb {

std::vector<std::size_t> power_of_two_sizes(unsigned lo, unsigned hi,
                                            bool include_zero) {
  TFX_EXPECTS(lo <= hi && hi < 64);
  std::vector<std::size_t> sizes;
  if (include_zero) sizes.push_back(0);
  for (unsigned e = lo; e <= hi; ++e) sizes.push_back(std::size_t{1} << e);
  return sizes;
}

std::vector<measurement> run_pingpong(const binding_profile& binding,
                                      const bench_config& config,
                                      const std::vector<std::size_t>& sizes) {
  std::vector<measurement> out;
  out.reserve(sizes.size());

  // Two ranks on two nodes, one hop apart - the paper's scheduler setup
  // `-L node=2 -mpi max-proc-per-node=1`.
  mpisim::world w(mpisim::torus_placement::line(2), config.net);

  for (const std::size_t bytes : sizes) {
    // IMB never sends truly zero bytes for the latency number; keep a
    // 1-byte floor so a transfer actually happens.
    const std::size_t payload = std::max<std::size_t>(bytes, 1);
    std::vector<double> samples;

    w.run([&](mpisim::communicator& comm) {
      std::vector<std::byte> buf(payload);
      const double cost =
          call_cost_seconds(config.machine, binding, config.net, payload);
      const int peer = 1 - comm.rank();
      const int total = config.warmup + config.repetitions;
      for (int it = 0; it < total; ++it) {
        const double t0 = comm.now();
        if (comm.rank() == 0) {
          comm.advance(cost);
          comm.send_bytes(buf, peer, 1);
          comm.advance(cost);
          comm.recv_bytes(buf, peer, 2);
          if (it >= config.warmup) {
            samples.push_back((comm.now() - t0) / 2.0);  // half RTT
          }
        } else {
          comm.advance(cost);
          comm.recv_bytes(buf, peer, 1);
          comm.advance(cost);
          comm.send_bytes(buf, peer, 2);
        }
      }
    });

    measurement m;
    m.bytes = bytes;
    m.latency_s = stats::median(samples);
    m.throughput_Bps = static_cast<double>(bytes) / m.latency_s;
    out.push_back(m);
  }
  return out;
}

std::vector<measurement> run_pingping(const binding_profile& binding,
                                      const bench_config& config,
                                      const std::vector<std::size_t>& sizes) {
  std::vector<measurement> out;
  out.reserve(sizes.size());
  mpisim::world w(mpisim::torus_placement::line(2), config.net);

  for (const std::size_t bytes : sizes) {
    const std::size_t payload = std::max<std::size_t>(bytes, 1);
    std::vector<double> samples;

    w.run([&](mpisim::communicator& comm) {
      std::vector<std::byte> buf(payload);
      const double cost =
          call_cost_seconds(config.machine, binding, config.net, payload);
      const int peer = 1 - comm.rank();
      const int total = config.warmup + config.repetitions;
      for (int it = 0; it < total; ++it) {
        const double t0 = comm.now();
        comm.advance(cost);
        comm.send_bytes(buf, peer, 1);  // both directions in flight...
        comm.advance(cost);
        comm.recv_bytes(buf, peer, 1);  // ...then drain
        if (comm.rank() == 0 && it >= config.warmup) {
          samples.push_back(comm.now() - t0);
        }
      }
    });

    measurement m;
    m.bytes = bytes;
    m.latency_s = stats::median(samples);
    m.throughput_Bps = static_cast<double>(bytes) / m.latency_s;
    out.push_back(m);
  }
  return out;
}

namespace {

/// Shared chain driver for Sendrecv (2 messages/rank) and Exchange
/// (4 messages/rank).
std::vector<measurement> run_chain(const binding_profile& binding,
                                   const bench_config& config, int ranks,
                                   const std::vector<std::size_t>& sizes,
                                   bool exchange) {
  std::vector<measurement> out;
  out.reserve(sizes.size());
  mpisim::world w(mpisim::torus_placement::line(ranks), config.net);

  for (const std::size_t bytes : sizes) {
    const std::size_t payload = std::max<std::size_t>(bytes, 1);
    std::vector<double> rank0_samples;

    w.run([&](mpisim::communicator& comm) {
      std::vector<std::byte> buf(payload);
      const double cost =
          call_cost_seconds(config.machine, binding, config.net, payload);
      const int right = (comm.rank() + 1) % comm.size();
      const int left = (comm.rank() - 1 + comm.size()) % comm.size();
      const int total = config.warmup + config.repetitions;
      for (int it = 0; it < total; ++it) {
        const double t0 = comm.now();
        comm.advance(cost);
        comm.send_bytes(buf, right, 1);
        if (exchange) {
          comm.advance(cost);
          comm.send_bytes(buf, left, 2);
        }
        comm.advance(cost);
        comm.recv_bytes(buf, left, 1);
        if (exchange) {
          comm.advance(cost);
          comm.recv_bytes(buf, right, 2);
        }
        if (comm.rank() == 0 && it >= config.warmup) {
          rank0_samples.push_back(comm.now() - t0);
        }
      }
    });

    measurement m;
    m.bytes = bytes;
    m.latency_s = stats::median(rank0_samples);
    const double moved = static_cast<double>(bytes) * (exchange ? 4.0 : 2.0);
    m.throughput_Bps = moved / m.latency_s;
    out.push_back(m);
  }
  return out;
}

}  // namespace

std::vector<measurement> run_sendrecv(const binding_profile& binding,
                                      const bench_config& config, int ranks,
                                      const std::vector<std::size_t>& sizes) {
  return run_chain(binding, config, ranks, sizes, /*exchange=*/false);
}

std::vector<measurement> run_exchange(const binding_profile& binding,
                                      const bench_config& config, int ranks,
                                      const std::vector<std::size_t>& sizes) {
  return run_chain(binding, config, ranks, sizes, /*exchange=*/true);
}

namespace {

mpisim::sim_program make_program(collective_kind kind,
                                 const mpisim::tofud_params& net, int p,
                                 std::size_t bytes,
                                 const mpisim::torus_placement& place,
                                 mpisim::coll_algorithm algo) {
  // All Fig. 3 benchmarks use 4-byte elements (MPI_FLOAT in IMB).
  constexpr std::size_t elem = 4;
  const std::size_t count = std::max<std::size_t>(bytes / elem, 1);
  switch (kind) {
    case collective_kind::allreduce:
      return mpisim::make_allreduce_program(net, p, count, elem, algo);
    case collective_kind::hierarchical_allreduce:
      return mpisim::make_hierarchical_allreduce_program(net, place, count,
                                                         elem, algo);
    case collective_kind::reduce:
      return mpisim::make_reduce_program(net, p, count, elem, 0);
    case collective_kind::gatherv:
      return mpisim::make_gatherv_program(p, count, elem, 0);
    case collective_kind::bcast:
      return mpisim::make_bcast_program(p, count, elem, 0);
    case collective_kind::barrier:
      return mpisim::make_barrier_program(p);
    case collective_kind::allgather:
      return mpisim::make_allgather_program(p, count, elem);
  }
  TFX_ASSERT(false && "unknown collective kind");
  return mpisim::sim_program(p);
}

}  // namespace

std::vector<measurement> run_collective(collective_kind kind,
                                        const binding_profile& binding,
                                        const bench_config& config,
                                        const mpisim::torus_placement& place,
                                        const std::vector<std::size_t>& sizes,
                                        mpisim::coll_algorithm algo,
                                        mpisim::des_options opts) {
  std::vector<measurement> out;
  out.reserve(sizes.size());
  const int p = place.rank_count();

  for (const std::size_t bytes : sizes) {
    const mpisim::sim_program base =
        make_program(kind, config.net, p, bytes, place, algo);

    // Harness cost: one dispatch + input-buffer touch per rank per call.
    const double cost =
        call_cost_seconds(config.machine, binding, config.net, bytes);

    // Concatenate `iters` repetitions into ONE program, exactly the
    // IMB timing loop (back-to-back calls, no barrier): port-contention
    // state then persists across iterations, which is what makes e.g.
    // the Gatherv root's drain port the steady-state bottleneck.
    auto repeated = [&](int iters) {
      mpisim::sim_program prog(p);
      for (int r = 0; r < p; ++r) {
        auto& ops = prog.rank(r);
        const auto& src = base.ranks[static_cast<std::size_t>(r)];
        ops.reserve(static_cast<std::size_t>(iters) * (src.size() + 1));
        for (int it = 0; it < iters; ++it) {
          ops.push_back(mpisim::sim_op::compute_for(cost));
          ops.insert(ops.end(), src.begin(), src.end());
        }
      }
      return prog;
    };

    const double t_warm = mpisim::simulate(repeated(config.warmup), config.net,
                                           place, {}, nullptr, opts)
                              .max_clock();
    const double t_end =
        mpisim::simulate(repeated(config.warmup + config.repetitions),
                         config.net, place, {}, nullptr, opts)
            .max_clock();

    measurement m;
    m.bytes = bytes;
    m.latency_s = (t_end - t_warm) / config.repetitions;
    m.throughput_Bps =
        m.latency_s > 0 ? static_cast<double>(bytes) / m.latency_s : 0.0;
    out.push_back(m);
  }
  return out;
}

mpisim::torus_placement fugaku_fig3_placement() {
  return mpisim::torus_placement({4, 6, 16}, 4);
}

}  // namespace tfx::imb
