#pragma once

/// \file job.hpp
/// Client-facing vocabulary of the ensemble scenario service
/// (docs/ENSEMBLE.md): what a member run looks like to a tenant —
/// precision personality, grid, seeds — and the typed results the
/// async submit/poll API hands back. The engine itself lives in
/// engine.hpp; nothing here depends on it, so result types can cross
/// module boundaries freely.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fp/fpenv.hpp"
#include "fp/scaling.hpp"
#include "swm/autopilot.hpp"
#include "swm/field.hpp"
#include "swm/perfmodel.hpp"

namespace tfx::ensemble {

/// The precision personalities a member can run at — the paper's
/// Fig. 5 configurations plus the compensated-native pairs the batched
/// Kahan kernels serve. Each maps to one model<T, Tprog>
/// instantiation + integration scheme (engine.cpp's switch).
enum class personality : std::uint8_t {
  float64,        ///< model<double>, standard RK4 (the reference)
  float64_comp,   ///< model<double>, Kahan-compensated
  float32,        ///< model<float>, standard
  float16,        ///< model<float16>, compensated (scaled, FTZ per cfg)
  float16_mixed,  ///< model<float16, float>: F16 RHS, F32 integration
  bfloat16,       ///< model<bfloat16>, compensated
};

inline constexpr personality all_personalities[] = {
    personality::float64,       personality::float64_comp,
    personality::float32,       personality::float16,
    personality::float16_mixed, personality::bfloat16,
};

constexpr const char* personality_name(personality p) {
  switch (p) {
    case personality::float64: return "Float64";
    case personality::float64_comp: return "Float64/comp";
    case personality::float32: return "Float32";
    case personality::float16: return "Float16";
    case personality::float16_mixed: return "Float16/32";
    case personality::bfloat16: return "BFloat16";
  }
  return "?";
}

/// The perfmodel configuration of a personality (what admission
/// control prices with swm::predict_time).
inline swm::precision_config precision_of(personality p) {
  switch (p) {
    case personality::float64: return swm::config_float64();
    case personality::float64_comp: {
      swm::precision_config c = swm::config_float64();
      c.compensated = true;
      c.name = "Float64/comp";
      return c;
    }
    case personality::float32: return swm::config_float32();
    case personality::float16: return swm::config_float16();
    case personality::float16_mixed: return swm::config_float16_32();
    case personality::bfloat16: {
      swm::precision_config c;
      c.elem_bytes = 2;
      c.prog_elem_bytes = 2;
      c.compensated = true;
      c.name = "BFloat16";
      return c;
    }
  }
  return swm::config_float64();
}

/// The precision-promotion ladder the autopilot escalates along:
/// f16 -> bf16 -> f32 -> f64 (the mixed personality promotes into its
/// own integration type, f32). The two Float64 personalities are the
/// top rung.
constexpr bool promotable(personality p) {
  switch (p) {
    case personality::float16:
    case personality::float16_mixed:
    case personality::bfloat16:
    case personality::float32:
      return true;
    case personality::float64:
    case personality::float64_comp:
      return false;
  }
  return false;
}

constexpr personality promoted(personality p) {
  switch (p) {
    case personality::float16: return personality::bfloat16;
    case personality::float16_mixed: return personality::float32;
    case personality::bfloat16: return personality::float32;
    case personality::float32: return personality::float64;
    case personality::float64:
    case personality::float64_comp:
      return p;
  }
  return p;
}

/// Admitted exponent range of a personality's *integration* format —
/// what the autopilot monitors the member's magnitudes against.
constexpr fp::format_range format_range_of(personality p) {
  switch (p) {
    case personality::float16: return fp::float16_range;
    case personality::float16_mixed: return fp::float16_range;
    case personality::bfloat16: return fp::bfloat16_range;
    case personality::float32: return fp::float32_range;
    case personality::float64:
    case personality::float64_comp:
      return fp::float64_range;
  }
  return fp::float64_range;
}

using job_id = std::uint64_t;
inline constexpr job_id invalid_job = 0;

/// Tenants are registered up front (engine::register_tenant) so their
/// obs counters exist before any member steps — the hot path then
/// only touches pre-resolved handles.
using tenant_id = std::uint16_t;
inline constexpr tenant_id default_tenant = 0;

/// The ensemble fault plane (the chaos-harness idea of docs/FAULTS.md
/// carried to members): deterministic, member-local faults tests use
/// to exercise the repair ladder. Each fault fires exactly once, just
/// before the member takes the step its counter names — and does NOT
/// re-fire when a repair rolls the member back past it, so an injected
/// upset costs one repair, not an infinite loop.
enum class fault_kind : std::uint8_t {
  scale_state,  ///< multiply the prognostic state by 2^log2_factor
                ///< (exact: models a range regime shift)
  poison_nan,   ///< write a quiet NaN into eta at flat `index`
};

struct member_fault {
  fault_kind kind = fault_kind::scale_state;
  int at_step = 0;      ///< fires before the member's step `at_step`
                        ///< (member-local, 0-based)
  int log2_factor = 0;  ///< scale_state only
  std::ptrdiff_t index = 0;  ///< poison_nan only (wrapped into range)
};

/// One member run. The trajectory this produces through the engine is
/// bit-identical to constructing the same model standalone, seeding /
/// restoring / perturbing it in this order, and calling run(steps) —
/// the engine's correctness oracle (tests/ensemble_engine_test).
struct member_config {
  personality prec = personality::float64;
  int nx = 32;
  int ny = 16;
  int steps = 1;  ///< RK4 steps to integrate past the initial state

  std::uint64_t seed = 42;          ///< seed_random_eddies stream
  double velocity_amplitude = 0.5;  ///< eddy amplitude
  int log2_scale = 0;               ///< Float16 scaling exponent (s = 2^k)

  /// Multiplicative IC perturbation after seeding/restoring: one
  /// xoshiro256(perturb_seed) stream across u, v, eta in that order,
  /// each element scaled by 1 + amplitude * U(-1, 1) — exactly the
  /// bench/ensemble_error recipe. perturb_seed == 0 disables it.
  std::uint64_t perturb_seed = 0;
  double perturb_amplitude = 0.0;

  /// Soft-float FTZ mode the member's arithmetic (including its
  /// submit-time initialization) runs under. Part of the batch key,
  /// so a whole batch shares one ftz_guard.
  fp::ftz_mode ftz = fp::ftz_mode::preserve;

  int health_every = 0;  ///< model health-sentinel interval (0: off)

  /// Record an unscaled double snapshot of the state every this many
  /// member steps (0: none) — the exact values model::unscaled() would
  /// produce at the same step.
  int record_every = 0;

  /// Optional restart: adopt this state (the exact double image of
  /// the *scaled* prognostic fields) instead of seeding eddies, with
  /// the step counter at `initial_steps`. Copied during submit; the
  /// pointer need not outlive the call.
  const swm::state<double>* initial = nullptr;
  int initial_steps = 0;

  /// Precision autopilot (swm/autopilot.hpp). check_every == 0 (the
  /// default) leaves the member exactly as before — no monitor, no
  /// repair, numerical_error fail-stops. With it on, range drift and
  /// sentinel trips walk the rescale -> promote -> permfail ladder
  /// (docs/AUTOPILOT.md).
  swm::autopilot_options autopilot;

  /// Injected faults, in firing order by at_step (tests only).
  std::vector<member_fault> faults;
};

enum class submit_error : std::uint8_t {
  none,              ///< accepted
  queue_full,        ///< member capacity (engine_options::max_members)
  backlog_exceeded,  ///< modeled backlog past max_backlog_seconds
  invalid_config,    ///< bad geometry/steps/tenant/initial-state shape
  shutdown,          ///< engine is stopping
};

constexpr const char* submit_error_name(submit_error e) {
  switch (e) {
    case submit_error::none: return "none";
    case submit_error::queue_full: return "queue_full";
    case submit_error::backlog_exceeded: return "backlog_exceeded";
    case submit_error::invalid_config: return "invalid_config";
    case submit_error::shutdown: return "shutdown";
  }
  return "?";
}

/// What submit() returns: a handle on acceptance, a typed reason
/// otherwise (never an exception — admission rejects are a normal
/// operating regime under load).
struct submit_ticket {
  job_id id = invalid_job;
  submit_error error = submit_error::none;

  [[nodiscard]] bool ok() const { return error == submit_error::none; }
  explicit operator bool() const { return ok(); }
};

enum class job_state : std::uint8_t {
  queued,     ///< admitted, no step taken yet
  running,    ///< being stepped
  done,       ///< completed all cfg.steps
  cancelled,  ///< cancel took effect at a step boundary
  failed,     ///< sentinel tripped with no repair left (see fail_reason)
};

constexpr const char* job_state_name(job_state s) {
  switch (s) {
    case job_state::queued: return "queued";
    case job_state::running: return "running";
    case job_state::done: return "done";
    case job_state::cancelled: return "cancelled";
    case job_state::failed: return "failed";
  }
  return "?";
}

enum class cancel_result : std::uint8_t {
  requested,  ///< will take effect at the member's next step boundary
  unknown_job,
  already_done,
  already_cancelled,
  already_failed,
};

/// Why a job ended in job_state::failed (none for any other state).
enum class fail_reason : std::uint8_t {
  none,
  numerical,           ///< sentinel tripped, no autopilot to repair it
  ladder_exhausted,    ///< escalation wanted a rung above the ladder
  retry_exhausted,     ///< tenant's per-member retry budget spent
  range_unrecoverable, ///< drift with no rescale left and promotion off
};

constexpr const char* fail_reason_name(fail_reason r) {
  switch (r) {
    case fail_reason::none: return "none";
    case fail_reason::numerical: return "numerical";
    case fail_reason::ladder_exhausted: return "ladder_exhausted";
    case fail_reason::retry_exhausted: return "retry_exhausted";
    case fail_reason::range_unrecoverable: return "range_unrecoverable";
  }
  return "?";
}

/// One repair action the autopilot took on a member, in order — the
/// deterministic repair transcript tests compare across pool sizes.
enum class repair_kind : std::uint8_t { rescale, promote, retry, permfail };

constexpr const char* repair_kind_name(repair_kind k) {
  switch (k) {
    case repair_kind::rescale: return "rescale";
    case repair_kind::promote: return "promote";
    case repair_kind::retry: return "retry";
    case repair_kind::permfail: return "permfail";
  }
  return "?";
}

struct repair_event {
  repair_kind kind = repair_kind::retry;
  swm::autopilot_cause cause = swm::autopilot_cause::none;
  int step = 0;          ///< member-local step count when decided
  personality prec = personality::float64;  ///< personality afterwards
  int log2_scale = 0;    ///< member scale afterwards
  int rollback_to = -1;  ///< member-local step restored to; -1 in place
  std::ptrdiff_t bad_index = -1;  ///< numerical_error's element, or -1
};

/// Poll snapshot of one job.
struct job_status {
  job_state state = job_state::queued;
  int steps_done = 0;    ///< member-local steps completed so far
  int failed_step = -1;  ///< last model step a sentinel named (-1: none)
  fail_reason reason = fail_reason::none;  ///< failed only
  int repairs = 0;       ///< autopilot actions taken so far
};

/// Final output of a member run, written before the job turns
/// terminal. Float conversions to double are exact for every
/// personality, so these are bit-exact images of the member's final
/// prognostic and Kahan-compensation fields (the oracle comparison in
/// the tests is EXPECT-on-bits).
struct job_result {
  swm::state<double> prognostic;    ///< scaled, in the Tprog domain
  swm::state<double> compensation;  ///< Kahan residuals (zero if unused)
  /// Unscaled double states every cfg.record_every steps, oldest
  /// first; exactly model::unscaled() at those steps.
  std::vector<swm::state<double>> snapshots;
  int steps_done = 0;
  double modeled_seconds = 0;  ///< the admission price this job carried
                               ///< (re-priced on promotion)
  fail_reason reason = fail_reason::none;  ///< failed only
  /// Every autopilot action, in the order taken. Identical across pool
  /// sizes and submission orders (the determinism contract).
  std::vector<repair_event> repairs;
  personality prec = personality::float64;  ///< final personality
  int log2_scale = 0;                       ///< final member scale
};

}  // namespace tfx::ensemble
