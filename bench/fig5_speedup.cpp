// Figure 5: speedups of low-precision ShallowWaters simulations over
// Float64 as a function of problem size, for Float16 (compensated),
// the mixed Float16/32 configuration, and Float32.
//
// The speedups come from the calibrated A64FX model driven by the
// per-step traffic accounting (swm::predict_step); the host wall-clock
// column measures real float-vs-double runs of the same model on the
// build machine as a shape sanity check (host float16 is software and
// would invert the result - exactly why the machine model exists,
// DESIGN.md § 2).

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "swm/model.hpp"
#include "swm/perfmodel.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

/// Host wall-clock seconds per step at element type T.
template <typename T>
double host_seconds_per_step(int nx, int ny, int steps) {
  swm_params p;
  p.nx = nx;
  p.ny = ny;
  model<T> m(p);
  m.seed_random_eddies(1, 0.4);
  m.step();  // warm
  stopwatch sw;
  m.run(steps);
  return sw.seconds() / steps;
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"host", "also measure host float/double wall-clock"},
            {"host-steps", "steps for the host measurement (default 6)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const int host_steps = static_cast<int>(args.get_int("host-steps", 6));

  std::puts("Reproduction of Fig. 5 (speedups over Float64 vs problem size).");
  std::puts("Expected shape: all curves start near 1x at small grids;");
  std::puts("Float32 ~2x over a wide range; Float16 grows towards ~4x at");
  std::puts("3000x1500; mixed Float16/32 sits between Float32 and Float16.");

  const auto& machine = arch::fugaku_node;
  const std::vector<std::pair<int, int>> grids{
      {32, 16},   {64, 32},    {128, 64},   {256, 128},  {512, 256},
      {768, 384}, {1024, 512}, {1500, 750}, {2048, 1024}, {3000, 1500}};

  table t({"grid", "cells", "Float32", "Float16/32", "Float16"});
  for (const auto& [nx, ny] : grids) {
    t.add_row({std::to_string(nx) + "x" + std::to_string(ny),
               std::to_string(static_cast<long long>(nx) * ny),
               format_fixed(speedup_vs_float64(machine, nx, ny,
                                               config_float32()), 2),
               format_fixed(speedup_vs_float64(machine, nx, ny,
                                               config_float16_32()), 2),
               format_fixed(speedup_vs_float64(machine, nx, ny,
                                               config_float16()), 2)});
  }
  std::puts("\n== Fig. 5: modeled speedup over Float64 ==");
  t.print(std::cout);

  // Compensation overhead headline (Fig. 5 caption: ~5 %).
  precision_config plain16 = config_float16();
  plain16.compensated = false;
  const double comp_overhead =
      predict_step(machine, 3000, 1500, config_float16()).seconds /
          predict_step(machine, 3000, 1500, plain16).seconds -
      1.0;
  std::printf("\nCompensated-integration overhead at 3000x1500: %.1f%% "
              "(paper: ~5%%)\n",
              100.0 * comp_overhead);

  if (!args.has("no-host")) {
    const int nx = 1024, ny = 512;  // large enough to stream from DRAM
    const double td = host_seconds_per_step<double>(nx, ny, host_steps);
    const double tf = host_seconds_per_step<float>(nx, ny, host_steps);
    std::printf(
        "\nHost sanity check (%dx%d, %d steps): double %s/step, float "
        "%s/step, ratio %.2fx. The float advantage direction carries over "
        "to the host; its magnitude depends on the build machine's "
        "compute/bandwidth balance, which is why the modeled numbers "
        "above are the instrument (DESIGN.md 2).\n",
        nx, ny, host_steps, format_seconds(td).c_str(),
        format_seconds(tf).c_str(), td / tf);
  }
  return 0;
}
