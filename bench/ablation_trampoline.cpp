// Ablation (§ III-A.1): libblastrampoline forwards BLAS calls "at
// runtime with near-zero overhead compared to the complexity of the
// routines invoked". Measure our registry's forwarding cost (atomic
// load + shared_ptr copy + virtual call) against a direct call, with
// google-benchmark, across vector lengths.
//
// Extended for the vectorized kernel layer: the same sweep through
// each fixed-width Vec backend (what does explicit vectorization buy
// per width on this host?), and the batched small-problem path vs a
// loop of per-problem dispatched calls (what does amortizing the
// trampoline hop buy at M,N,K <= 32?).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "kernels/batched.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/generic.hpp"
#include "kernels/registry.hpp"

using namespace tfx;

namespace {

void bench_direct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    kernels::axpy(1.0001, std::span<const double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bench_trampoline(benchmark::State& state) {
  kernels::blas_registry::instance().set_current("Julia");
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    kernels::axpy_dispatch(1.0001, std::span<const double>(x),
                           std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

/// axpy through a named backend (the Vec* fixed-width kernels or any
/// paper personality), double lanes.
template <typename T>
void bench_backend(benchmark::State& state, const std::string& name) {
  auto& reg = kernels::blas_registry::instance();
  const auto backend = reg.find(name);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<T> x(n, T(1.5)), y(n, T(0.5));
  for (auto _ : state) {
    backend->axpy(T(1.0001), std::span<const T>(x), std::span<T>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bench_backend_f64(benchmark::State& state, const std::string& name) {
  bench_backend<double>(state, name);
}
void bench_backend_f32(benchmark::State& state, const std::string& name) {
  bench_backend<float>(state, name);
}

/// One batched gemm dispatch for `count` small problems...
void bench_gemm_batched(benchmark::State& state) {
  kernels::blas_registry::instance().select_preferred_vectorized();
  const auto mnk = static_cast<std::size_t>(state.range(0));
  const kernels::gemm_batch_shape s{256, mnk, mnk, mnk};
  std::vector<double> a(s.count * s.a_elems(), 1.01);
  std::vector<double> b(s.count * s.b_elems(), 0.99);
  std::vector<double> c(s.count * s.c_elems(), 0.5);
  for (auto _ : state) {
    kernels::gemm_batched_dispatch<double>(s, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  kernels::blas_registry::instance().set_current("Julia");
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * s.count * mnk * mnk * mnk));
}

/// ...vs a dispatch per problem (the cost the batched API removes).
void bench_gemm_looped(benchmark::State& state) {
  kernels::blas_registry::instance().select_preferred_vectorized();
  const auto mnk = static_cast<std::size_t>(state.range(0));
  const kernels::gemm_batch_shape s{256, mnk, mnk, mnk};
  const kernels::gemm_batch_shape one{1, mnk, mnk, mnk};
  std::vector<double> a(s.count * s.a_elems(), 1.01);
  std::vector<double> b(s.count * s.b_elems(), 0.99);
  std::vector<double> c(s.count * s.c_elems(), 0.5);
  for (auto _ : state) {
    for (std::size_t p = 0; p < s.count; ++p) {
      kernels::gemm_batched_dispatch<double>(
          one, 1.0,
          std::span<const double>(a).subspan(p * s.a_elems(), s.a_elems()),
          std::span<const double>(b).subspan(p * s.b_elems(), s.b_elems()),
          0.0, std::span<double>(c).subspan(p * s.c_elems(), s.c_elems()));
    }
    benchmark::DoNotOptimize(c.data());
  }
  kernels::blas_registry::instance().set_current("Julia");
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * s.count * mnk * mnk * mnk));
}

void bench_axpy_batched(benchmark::State& state) {
  kernels::blas_registry::instance().select_preferred_vectorized();
  const std::size_t count = 256;
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(count, 0.999);
  std::vector<double> x(count * len, 1.5), y(count * len, 0.25);
  for (auto _ : state) {
    kernels::axpy_batched_dispatch<double>(a, x, y, len);
    benchmark::DoNotOptimize(y.data());
  }
  kernels::blas_registry::instance().set_current("Julia");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * len));
}

void bench_axpy_looped(benchmark::State& state) {
  kernels::blas_registry::instance().select_preferred_vectorized();
  const std::size_t count = 256;
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(count, 0.999);
  std::vector<double> x(count * len, 1.5), y(count * len, 0.25);
  for (auto _ : state) {
    for (std::size_t p = 0; p < count; ++p) {
      kernels::axpy_dispatch(a[p],
                             std::span<const double>(x).subspan(p * len, len),
                             std::span<double>(y).subspan(p * len, len));
    }
    benchmark::DoNotOptimize(y.data());
  }
  kernels::blas_registry::instance().set_current("Julia");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * len));
}

}  // namespace

BENCHMARK(bench_direct)->RangeMultiplier(8)->Range(8, 1 << 18);
BENCHMARK(bench_trampoline)->RangeMultiplier(8)->Range(8, 1 << 18);

BENCHMARK_CAPTURE(bench_backend_f64, Julia, "Julia")
    ->RangeMultiplier(8)
    ->Range(8, 1 << 18);
BENCHMARK_CAPTURE(bench_backend_f64, Vec128, "Vec128")
    ->RangeMultiplier(8)
    ->Range(8, 1 << 18);
BENCHMARK_CAPTURE(bench_backend_f64, Vec256, "Vec256")
    ->RangeMultiplier(8)
    ->Range(8, 1 << 18);
BENCHMARK_CAPTURE(bench_backend_f64, Vec512, "Vec512")
    ->RangeMultiplier(8)
    ->Range(8, 1 << 18);
BENCHMARK_CAPTURE(bench_backend_f32, Vec512, "Vec512")
    ->RangeMultiplier(8)
    ->Range(8, 1 << 18);

BENCHMARK(bench_gemm_batched)->DenseRange(4, 16, 4);
BENCHMARK(bench_gemm_looped)->DenseRange(4, 16, 4);
BENCHMARK(bench_axpy_batched)->RangeMultiplier(4)->Range(8, 128);
BENCHMARK(bench_axpy_looped)->RangeMultiplier(4)->Range(8, 128);

BENCHMARK_MAIN();
