// Ablation: what the channel layer costs in *wall-clock* time.
//
// Virtual time is a transport property the transport layer must NOT
// have: the same program over the simulated mailbox fabric, the shm
// channel store, or real loopback TCP produces identical virtual
// clocks and bit-identical payloads (tests/mpisim_transport_test
// enforces this). What differs is the host-side cost of moving the
// bytes. This ablation measures it per transport:
//
//   setup    - world construction (socket: the full TCP mesh handshake)
//   latency  - 8-byte ping-pong one-way wall latency between 2 ranks
//   bandwidth- 1 MiB ping-pong effective one-way bandwidth
//   allreduce- 32 KiB ring allreduce across 4 ranks, wall per op
//   swm      - wall ms per step of the 4-rank shallow-water model
//
// Every transport's SWM run is diffed bitwise against the simulated
// oracle and the virtual clocks are compared exactly, so each row in
// the table doubles as a conformance witness. Timing happens inside
// the rank lambdas (rank 0's stopwatch, after a warm-up exchange), so
// thread spawn and handshake are excluded from the per-op numbers and
// reported once in the setup column.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/transport.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::mpisim;

namespace {

constexpr int kRanks = 4;

struct row {
  std::string name;
  double setup_s = 0;      ///< world construction (handshake) wall time
  double latency_s = 0;    ///< 8 B one-way p2p latency
  double bandwidth = 0;    ///< 1 MiB one-way bandwidth, bytes/s
  double allreduce_s = 0;  ///< 32 KiB 4-rank allreduce, wall per op
  double swm_step_s = 0;   ///< 4-rank SWM, wall per step
  bool identical = false;  ///< SWM state bit-matches the simulated oracle
  bool vclock = false;     ///< virtual clocks equal the oracle's exactly
};

transport_options topt_for(transport_kind kind) {
  transport_options topt;
  topt.kind = kind;
  return topt;
}

/// Two ranks bounce a `bytes`-sized message `reps` times; returns the
/// one-way wall time per message measured on rank 0.
double pingpong(transport_kind kind, std::size_t bytes, int reps) {
  world w(2, {}, topt_for(kind));
  double one_way = 0;
  w.run([&](communicator& comm) {
    std::vector<std::byte> buf(bytes, std::byte{0x2a});
    const int peer = 1 - comm.rank();
    // Warm-up round: page in buffers, prime the TCP window.
    if (comm.rank() == 0) {
      comm.send_bytes(std::span<const std::byte>(buf), peer, 0);
      comm.recv_bytes(std::span<std::byte>(buf), peer, 0);
    } else {
      comm.recv_bytes(std::span<std::byte>(buf), peer, 0);
      comm.send_bytes(std::span<const std::byte>(buf), peer, 0);
    }
    stopwatch sw;
    for (int i = 0; i < reps; ++i) {
      if (comm.rank() == 0) {
        comm.send_bytes(std::span<const std::byte>(buf), peer, 1);
        comm.recv_bytes(std::span<std::byte>(buf), peer, 1);
      } else {
        comm.recv_bytes(std::span<std::byte>(buf), peer, 1);
        comm.send_bytes(std::span<const std::byte>(buf), peer, 1);
      }
    }
    if (comm.rank() == 0) {
      one_way = sw.seconds() / (2.0 * static_cast<double>(reps));
    }
  });
  return one_way;
}

/// `reps` chained 32 KiB allreduces over `kRanks` ranks; wall per op.
double allreduce_wall(world& w, int reps) {
  constexpr std::size_t count = 4096;  // 32 KiB of doubles
  double per_op = 0;
  w.run([&](communicator& comm) {
    std::vector<double> in(count);
    std::vector<double> res(count);
    for (std::size_t i = 0; i < count; ++i) {
      in[i] = (comm.rank() + 1) * 0.5 + static_cast<double>(i) * 0.01;
    }
    allreduce(comm, std::span<const double>(in), std::span<double>(res),
              ops::sum{});  // warm-up
    stopwatch sw;
    for (int i = 0; i < reps; ++i) {
      allreduce(comm, std::span<const double>(in), std::span<double>(res),
                ops::sum{});
    }
    if (comm.rank() == 0) per_op = sw.seconds() / reps;
  });
  return per_op;
}

swm::swm_params bench_params() {
  swm::swm_params p;
  p.nx = 64;
  p.ny = 32;
  return p;
}

struct swm_out {
  std::vector<std::vector<double>> packed;  ///< per-rank pack_state()
  std::vector<double> clocks;               ///< final virtual clocks
  double per_step_s = 0;                    ///< rank-0 wall per step
};

/// 4-rank distributed SWM under the given transport; the packed state
/// and virtual clocks are the conformance evidence, the rank-0 wall
/// time per step is the measurement.
swm_out swm_run(world& w, const swm::state<double>& init, int steps) {
  const swm::swm_params params = bench_params();
  swm_out out;
  out.packed.resize(static_cast<std::size_t>(kRanks));
  w.run([&](communicator& comm) {
    swm::distributed_model<double> dm(comm, params,
                                      swm::integration_scheme::compensated);
    dm.set_from_global(init);
    dm.run(1);  // warm-up step
    stopwatch sw;
    dm.run(steps);
    const double wall = sw.seconds();
    auto& mine = out.packed[static_cast<std::size_t>(comm.rank())];
    mine.resize(dm.packed_size());
    dm.pack_state(std::span<double>(mine));
    if (comm.rank() == 0) out.per_step_s = wall / steps;
  });
  out.clocks = w.final_clocks();
  return out;
}

bool bit_identical(const swm_out& got, const swm_out& want) {
  for (int r = 0; r < kRanks; ++r) {
    const auto& a = got.packed[static_cast<std::size_t>(r)];
    const auto& b = want.packed[static_cast<std::size_t>(r)];
    if (a.size() != b.size() ||
        std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void write_json(const std::string& path, int steps,
                const std::vector<row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_transport\",\n");
  std::fprintf(f, "  \"ranks\": %d,\n  \"swm_steps\": %d,\n  \"rows\": [\n",
               kRanks, steps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"transport\": \"%s\", \"setup_s\": %.6e, "
        "\"p2p_latency_s\": %.6e, \"p2p_bandwidth_Bps\": %.6e, "
        "\"allreduce_s\": %.6e, \"swm_step_s\": %.6e, "
        "\"bit_identical\": %s, \"vclock_equal\": %s}%s\n",
        r.name.c_str(), r.setup_s, r.latency_s, r.bandwidth, r.allreduce_s,
        r.swm_step_s, r.identical ? "true" : "false",
        r.vclock ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"steps", "SWM steps per timed run (default 10)"},
            {"reps", "ping-pong repetitions (default 2000)"},
            {"json", "output path (default BENCH_transport.json)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const int steps = static_cast<int>(args.get_int("steps", 10));
  const int reps = static_cast<int>(args.get_int("reps", 2000));
  const std::string json = args.get_string("json", "BENCH_transport.json");

  std::puts("Ablation: host-side cost of the pluggable channel layer.");
  std::puts("Same program, three transports; payloads and virtual clocks");
  std::puts("must agree bitwise - only the wall clock may differ.\n");

  std::vector<transport_kind> kinds = {transport_kind::simulated,
                                       transport_kind::shm};
  if (transport_manager::loopback_available()) {
    kinds.push_back(transport_kind::socket);
  } else {
    std::puts("note: loopback TCP unavailable in this sandbox - the socket");
    std::puts("row is omitted.");
  }

  swm::model<double> seeder(bench_params());
  seeder.seed_random_eddies(11, 0.5);
  const swm::state<double> init = seeder.prognostic();

  std::vector<row> rows;
  swm_out oracle;
  table t({"transport", "setup", "p2p 8B", "p2p 1MiB GB/s",
           "allreduce 32KiB", "swm ms/step", "bit-identical", "vclock"});
  for (const transport_kind kind : kinds) {
    row r;
    r.name = transport_manager::name_of(kind);

    stopwatch setup;
    world w(kRanks, {}, topt_for(kind));
    r.setup_s = setup.seconds();

    constexpr std::size_t mib = 1 << 20;
    r.latency_s = pingpong(kind, 8, reps);
    const double big = pingpong(kind, mib, std::max(reps / 10, 20));
    r.bandwidth = static_cast<double>(mib) / big;
    r.allreduce_s = allreduce_wall(w, std::max(reps / 10, 20));

    const swm_out got = swm_run(w, init, steps);
    if (kind == transport_kind::simulated) oracle = got;
    r.swm_step_s = got.per_step_s;
    r.identical = bit_identical(got, oracle);
    r.vclock = got.clocks == oracle.clocks;

    t.add_row({r.name, format_seconds(r.setup_s), format_seconds(r.latency_s),
               format_fixed(r.bandwidth / 1e9, 2),
               format_seconds(r.allreduce_s),
               format_fixed(r.swm_step_s * 1e3, 3),
               r.identical ? "yes" : "NO", r.vclock ? "==" : "DIFFERS"});
    rows.push_back(r);
    if (!r.identical || !r.vclock) {
      std::fprintf(stderr, "FATAL: transport %s diverged from the oracle\n",
                   r.name.c_str());
      t.print(std::cout);
      return 1;
    }
  }
  t.print(std::cout);
  write_json(json, steps, rows);
  return 0;
}
