// swm_cli: a complete command-line front end for the shallow-water
// model - the executable a downstream user actually runs.
//
//   ./swm_cli --precision float16 --nx 128 --ny 64 --steps 200
//             --scheme compensated --auto-scale --out run1
//
// Picks the precision at runtime (the CLI dispatches to the compiled
// template instantiations), optionally derives the Float16 scaling from
// a Sherlog32 pre-run, applies FZ16, reports diagnostics at a fixed
// cadence, writes vorticity snapshots and a checkpoint at the end.

#include <cstdio>
#include <optional>
#include <string>

#include "core/cli.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/checkpoint.hpp"
#include "swm/model.hpp"
#include "swm/output.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

struct run_config {
  swm_params params;
  int steps = 100;
  int report_every = 50;
  std::uint64_t seed = 42;
  double amplitude = 0.5;
  integration_scheme scheme = integration_scheme::standard;
  std::string out = "swm";
  bool ftz = false;
};

template <typename T>
int run(const run_config& cfg) {
  model<T> m(cfg.params, cfg.scheme);
  m.seed_random_eddies(cfg.seed, cfg.amplitude);

  std::printf("grid %dx%d, dt %.1f s, scale 2^%d, %s integration\n",
              cfg.params.nx, cfg.params.ny, cfg.params.dt(),
              cfg.params.log2_scale,
              cfg.scheme == integration_scheme::compensated ? "compensated"
                                                            : "standard");
  stopwatch wall;
  for (int done = 0; done < cfg.steps;) {
    const int chunk = std::min(cfg.report_every, cfg.steps - done);
    m.run(chunk);
    done += chunk;
    const auto d = m.diag();
    std::printf("step %6d  t=%9.0f s  energy %.4e  CFL %.3f  %s\n",
                m.steps_taken(), m.time(), d.energy, d.cfl,
                d.finite ? "ok" : "NOT FINITE");
    if (!d.finite) return 2;
  }
  std::printf("wall time: %s\n", format_seconds(wall.seconds()).c_str());

  const auto zeta = relative_vorticity(m.unscaled(), cfg.params);
  write_pgm(zeta, cfg.out + "_vorticity.pgm");
  write_csv(zeta, cfg.out + "_vorticity.csv");
  checkpoint_info info{cfg.params.nx, cfg.params.ny,
                       static_cast<std::uint64_t>(m.steps_taken()),
                       std::ldexp(1.0, cfg.params.log2_scale)};
  save_checkpoint(m.prognostic(), info, cfg.out + ".ckpt");
  std::printf("wrote %s_vorticity.{pgm,csv} and %s.ckpt\n",
              cfg.out.c_str(), cfg.out.c_str());
  return 0;
}

int choose_scale(const swm_params& params) {
  fp::sherlog_sink().reset();
  model<fp::sherlog32> dev(params);
  dev.seed_random_eddies(42, 0.5);
  dev.run(15);
  const auto choice =
      fp::choose_scaling(fp::sherlog_sink(), fp::float16_range);
  std::printf("auto-scale: Sherlog32 pre-run chose s = 2^%d\n",
              choice.log2_scale);
  return choice.log2_scale;
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"precision", "float64 | float32 | float16 | bfloat16 "
                          "| float16x32 (default float64)"},
            {"nx", "grid width (default 128)"},
            {"ny", "grid height (default 64); keep cells square"},
            {"steps", "time steps (default 100)"},
            {"scheme", "standard | compensated (default by precision)"},
            {"scale", "log2 of the prognostic scaling s (default 0)"},
            {"auto-scale", "derive s from a Sherlog32 pre-run"},
            {"ftz", "flush Float16 subnormals (A64FX FZ16 mode)"},
            {"seed", "initial-condition seed (default 42)"},
            {"report", "diagnostic cadence in steps (default 50)"},
            {"bc", "periodic | channel (default periodic)"},
            {"out", "output prefix (default swm)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }

  run_config cfg;
  cfg.params.nx = static_cast<int>(args.get_int("nx", 128));
  cfg.params.ny = static_cast<int>(args.get_int("ny", 64));
  cfg.params.log2_scale = static_cast<int>(args.get_int("scale", 0));
  cfg.steps = static_cast<int>(args.get_int("steps", 100));
  cfg.report_every = static_cast<int>(args.get_int("report", 50));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.out = args.get_string("out", "swm");
  if (args.get_string("bc", "periodic") == "channel") {
    cfg.params.bc = boundary::channel;
  }

  const std::string precision = args.get_string("precision", "float64");
  // Float16 defaults to the paper's production configuration.
  if (precision == "float16") {
    cfg.scheme = integration_scheme::compensated;
    cfg.ftz = true;
  }
  const std::string scheme = args.get_string("scheme", "");
  if (scheme == "standard") cfg.scheme = integration_scheme::standard;
  if (scheme == "compensated") cfg.scheme = integration_scheme::compensated;
  if (args.has("ftz")) cfg.ftz = true;

  if (args.has("auto-scale")) {
    cfg.params.log2_scale = choose_scale(cfg.params);
  }

  std::optional<fp::ftz_guard> ftz;
  if (cfg.ftz) ftz.emplace(fp::ftz_mode::flush);

  if (precision == "float64") return run<double>(cfg);
  if (precision == "float32") return run<float>(cfg);
  if (precision == "float16") return run<fp::float16>(cfg);
  if (precision == "bfloat16") return run<fp::bfloat16>(cfg);
  if (precision == "float16x32") {
    model<fp::float16, float> m(cfg.params);
    m.seed_random_eddies(cfg.seed, cfg.amplitude);
    m.run(cfg.steps);
    const auto d = m.diag();
    std::printf("mixed run: %d steps, energy %.4e, finite %d\n", cfg.steps,
                d.energy, static_cast<int>(d.finite));
    return d.finite ? 0 : 2;
  }
  std::fprintf(stderr, "unknown precision '%s'\n%s", precision.c_str(),
               args.help().c_str());
  return 1;
}
