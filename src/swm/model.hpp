#pragma once

/// \file model.hpp
/// The shallow-water model facade: ShallowWaters.jl's role in the
/// paper, written once and instantiated at any precision.
///
///   model<double>                       - the Float64 reference
///   model<float>                        - Float32
///   model<fp::float16>                  - Float16, compensated RK4
///   model<fp::float16, float>           - the mixed Float16/32 run
///   model<fp::sherlog<float>>           - the Sherlog32 analysis run
///
/// The first template parameter T is the *computation* type (all RHS
/// arithmetic); the second, Tprog, is the *time-integration* type the
/// prognostic fields are stored and accumulated in (defaults to T).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/diagnostics.hpp"
#include "swm/field.hpp"
#include "swm/health.hpp"
#include "swm/params.hpp"
#include "swm/perfmodel.hpp"
#include "swm/rhs.hpp"
#include "swm/timestep.hpp"

namespace tfx::swm {

template <typename T, typename Tprog = T>
class model {
 public:
  explicit model(swm_params params,
                 integration_scheme scheme = integration_scheme::standard)
      : params_(params),
        scheme_(scheme),
        rhs_(params),
        prog_(params.nx, params.ny),
        comp_(params.nx, params.ny),
        stage_(params.nx, params.ny),
        k1_(params.nx, params.ny),
        k2_(params.nx, params.ny),
        k3_(params.nx, params.ny),
        k4_(params.nx, params.ny) {
    prog_.fill(Tprog{});
    comp_.fill(Tprog{});
    ctx_.self = this;
    if constexpr (!std::is_same_v<T, Tprog>) {
      compute_state_ = state<T>(params.nx, params.ny);
    }
  }

  [[nodiscard]] const swm_params& params() const { return params_; }
  [[nodiscard]] integration_scheme scheme() const { return scheme_; }
  [[nodiscard]] int steps_taken() const { return steps_; }
  [[nodiscard]] double time() const { return steps_ * params_.dt(); }

  /// Select the update pipeline (default fused; see update_pipeline).
  /// Switching mid-run is safe: both pipelines advance the state - and
  /// the Kahan compensation - through identical per-element arithmetic.
  void set_pipeline(update_pipeline p) {
    pipeline_ = p;
    if (p == update_pipeline::unfused && inc_u_.size() == 0) {
      inc_u_ = field2d<Tprog>(params_.nx, params_.ny);
      inc_v_ = field2d<Tprog>(params_.nx, params_.ny);
      inc_eta_ = field2d<Tprog>(params_.nx, params_.ny);
    }
  }
  [[nodiscard]] update_pipeline pipeline() const { return pipeline_; }

  /// The prognostic (scaled) state in integration precision.
  [[nodiscard]] const state<Tprog>& prognostic() const { return prog_; }
  [[nodiscard]] state<Tprog>& prognostic() { return prog_; }

  /// Attach a thread pool: the RHS passes run row-parallel (results
  /// bit-identical to serial; see rhs_evaluator::attach_pool). The pool
  /// must outlive the model.
  void attach_pool(thread_pool* pool) { rhs_.attach_pool(pool); }

  /// Restart from a checkpointed state: adopts the fields and the step
  /// counter, clears the Kahan compensation (see checkpoint.hpp).
  void restore(const state<Tprog>& s, int steps_taken) {
    TFX_EXPECTS(s.nx() == params_.nx && s.ny() == params_.ny);
    prog_ = s;
    comp_.fill(Tprog{});
    steps_ = steps_taken;
  }

  /// Restart with the Kahan compensation residuals too (v2 checkpoints
  /// carry them): the compensated integrator resumes *bit-identically*
  /// instead of restarting its error accumulator from zero.
  void restore(const state<Tprog>& s, const state<Tprog>& compensation,
               int steps_taken) {
    TFX_EXPECTS(s.nx() == params_.nx && s.ny() == params_.ny);
    TFX_EXPECTS(compensation.nx() == params_.nx &&
                compensation.ny() == params_.ny);
    prog_ = s;
    comp_ = compensation;
    steps_ = steps_taken;
  }

  /// The Kahan compensation state (what v2 checkpoints persist).
  [[nodiscard]] const state<Tprog>& compensation() const { return comp_; }

  /// Scan eta every `every` steps inside step() and throw
  /// numerical_error on the first non-finite value (swm/health.hpp);
  /// 0 disables the sentinel (default - one integer-modulo branch, no
  /// allocation, step loop otherwise untouched).
  void set_health_interval(int every) { health_every_ = every; }

  /// The sentinel scan itself; rank is -1 (serial model).
  void check_health() const {
    require_finite(std::span<const Tprog>(prog_.eta.flat()), "eta", steps_,
                   -1);
  }

  /// Unscaled state in double precision, for diagnostics and output.
  [[nodiscard]] state<double> unscaled() const {
    state<double> out = convert_state<double>(prog_);
    const double inv_s = 1.0 / rhs_.coeffs().scale;
    for (auto& v : out.u.flat()) v *= inv_s;
    for (auto& v : out.v.flat()) v *= inv_s;
    for (auto& v : out.eta.flat()) v *= inv_s;
    return out;
  }

  /// Initialize with a balanced random eddy field: a band-limited
  /// random streamfunction, nondivergent velocities and a
  /// geostrophically balanced surface displacement. Produces the
  /// turbulent regime of Fig. 4 within a short spin-up.
  void seed_random_eddies(std::uint64_t seed, double velocity_amplitude) {
    xoshiro256 rng(seed);
    const int nx = params_.nx;
    const int ny = params_.ny;
    field2d<double> psi(nx, ny);
    psi.fill(0.0);

    // A handful of large-scale Fourier modes with random phases.
    constexpr int kmax = 4;
    for (int kx = 1; kx <= kmax; ++kx) {
      for (int ky = 1; ky <= kmax; ++ky) {
        const double amp = rng.uniform(-1.0, 1.0) /
                           std::sqrt(static_cast<double>(kx * kx + ky * ky));
        const double phx = rng.uniform(0.0, 2.0 * M_PI);
        const double phy = rng.uniform(0.0, 2.0 * M_PI);
        for (int j = 0; j < ny; ++j) {
          for (int i = 0; i < nx; ++i) {
            psi(i, j) += amp *
                         std::sin(2.0 * M_PI * kx * i / nx + phx) *
                         std::sin(2.0 * M_PI * ky * j / ny + phy);
          }
        }
      }
    }

    // Normalize so max |u| ~ velocity_amplitude, then derive fields.
    double max_grad = 0.0;
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double gx = (psi(psi.ip(i), j) - psi(i, j)) / params_.dx();
        const double gy = (psi(i, psi.jp(j)) - psi(i, j)) / params_.dy();
        max_grad = std::max({max_grad, std::abs(gx), std::abs(gy)});
      }
    }
    const double norm = max_grad > 0 ? velocity_amplitude / max_grad : 0.0;
    const double s = rhs_.coeffs().scale;
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double u = -(psi(i, psi.jp(j)) - psi(i, j)) / params_.dy() * norm;
        const double v = (psi(psi.ip(i), j) - psi(i, j)) / params_.dx() * norm;
        const double eta =
            params_.coriolis_f0 / params_.gravity * psi(i, j) * norm;
        prog_.u(i, j) = Tprog(s * u);
        prog_.v(i, j) = Tprog(s * v);
        prog_.eta(i, j) = Tprog(s * eta);
      }
    }
    if (params_.bc == boundary::channel) {
      // The j = 0 v-row is the solid wall (south and, via the wrap,
      // north): no flow through it, ever. The RHS keeps it at zero.
      for (int i = 0; i < nx; ++i) prog_.v(i, 0) = Tprog{};
    }
    comp_.fill(Tprog{});
  }

  /// Advance one RK4 step. When the observability plane is live the
  /// step is bracketed by a swm.step span and followed by a
  /// swm.update_bytes counter sample that carries the step's *measured*
  /// update-sweep traffic (value) against the perfmodel's prediction
  /// for the same configuration (aux) - the trace-level version of the
  /// docs/MODEL.md byte accounting. Tracing off (or compiled out):
  /// exactly the three statements of the tail branch, nothing else.
  void step() {
    if constexpr (obs::compiled) {
      if (obs::active()) {
        const double t0 = obs::host_now();
        obs::begin_at(obs::domain::swm, 0, "swm.step", t0,
                      static_cast<std::uint64_t>(steps_));
        if (pipeline_ == update_pipeline::fused) {
          step_fused();
        } else {
          step_unfused();
        }
        ++steps_;
        if (health_every_ > 0 && steps_ % health_every_ == 0) check_health();
        emit_step_obs(t0);
        return;
      }
    }
    if (pipeline_ == update_pipeline::fused) {
      step_fused();
    } else {
      step_unfused();
    }
    ++steps_;
    if (health_every_ > 0 && steps_ % health_every_ == 0) check_health();
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  // -- member-steppable facade (the ensemble engine, src/ensemble) ----
  //
  // The engine drives a member's step in parts so the apply sweep can
  // be batched across members: step_stages() runs the four RHS stages
  // of the *fused* pipeline, then either step_apply() finishes the
  // step standalone or the engine collects append_rk4_items() from the
  // whole batch and runs kernels::sweeps::rk4_update[_kahan]_batched —
  // the same per-element chains, one dispatch for the batch. Either
  // way finish_step() closes the step exactly like step()'s tail, so
  //   step_stages(); step_apply(); finish_step();
  // is the untraced step() verbatim, and the batched form is pinned
  // bit-identical to it by tests/ensemble_engine_test.

  /// True when the apply sweep can run through the batched kernels
  /// (native integration type, no mixed-precision down-cast in apply).
  static constexpr bool batchable_apply =
      std::is_same_v<T, Tprog> &&
      fp::vec_traits<Tprog>::kind == fp::vectorizability::native;

  /// The four fused RHS stages of one step: k1..k4 become valid.
  void step_stages() {
    TFX_EXPECTS(pipeline_ == update_pipeline::fused);
    const Tprog half = Tprog(0.5);
    const Tprog one = Tprog(1);
    fused_stage(nullptr, Tprog{}, k1_);
    fused_stage(&k1_, half, k2_);
    fused_stage(&k2_, half, k3_);
    fused_stage(&k3_, one, k4_);
  }

  /// The fused increment+apply sweep (the standalone finish of
  /// step_stages()).
  void step_apply() { fused_apply(); }

  /// Close the step: counter + health sentinel, identical to step().
  /// Throws numerical_error like step() when the sentinel trips.
  void finish_step() {
    ++steps_;
    if (health_every_ > 0 && steps_ % health_every_ == 0) check_health();
  }

  /// Append this member's three per-field apply problems for the
  /// batched kernels (u, v, eta — the apply_range field order).
  void append_rk4_items(
      std::vector<kernels::sweeps::rk4_batch_item<Tprog>>& out)
    requires(batchable_apply)
  {
    out.push_back({prog_.u.flat(), comp_.u.flat(), k1_.du.flat(),
                   k2_.du.flat(), k3_.du.flat(), k4_.du.flat()});
    out.push_back({prog_.v.flat(), comp_.v.flat(), k1_.dv.flat(),
                   k2_.dv.flat(), k3_.dv.flat(), k4_.dv.flat()});
    out.push_back({prog_.eta.flat(), comp_.eta.flat(), k1_.deta.flat(),
                   k2_.deta.flat(), k3_.deta.flat(), k4_.deta.flat()});
  }

  /// Diagnostics on the unscaled double-precision state.
  [[nodiscard]] diagnostics diag() const {
    return compute_diagnostics(unscaled(), params_);
  }

 private:
  /// The fused pipeline: per stage, ONE parallel region (one worker
  /// wake) runs the fused three-field stage combine, the mixed-
  /// precision down-cast when Tprog != T, and all five RHS passes -
  /// barriers between region tasks order the writes. The step then
  /// finishes with ONE fused increment+apply sweep per field (no
  /// increment arrays). Bit-identical to step_unfused at every
  /// precision and pool size.
  void step_fused() {
    const Tprog half = Tprog(0.5);
    const Tprog one = Tprog(1);
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 1);
      fused_stage(nullptr, Tprog{}, k1_);  // k1 = F(y)
    }
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 2);
      fused_stage(&k1_, half, k2_);  // k2 = F(y + k1/2)
    }
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 3);
      fused_stage(&k2_, half, k3_);  // k3 = F(y + k2/2)
    }
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 4);
      fused_stage(&k3_, one, k4_);  // k4 = F(y + k3)
    }
    TFX_OBS_SPAN(swm, 0, "rk4.apply");
    fused_apply();
  }

  /// The reference pipeline: separate serial element-wise sweeps
  /// (stage_combine x3 per stage, rk4_increment, apply_increment) with
  /// only the RHS row-parallel. Kept as the fusion ablation baseline.
  void step_unfused() {
    const Tprog half = Tprog(0.5);
    const Tprog one = Tprog(1);

    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 1);
      eval_stage(prog_, k1_);
    }
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 2);
      combine_stage(prog_, k1_, half);
      eval_stage(stage_, k2_);
    }
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 3);
      combine_stage(prog_, k2_, half);
      eval_stage(stage_, k3_);
    }
    {
      TFX_OBS_SPAN(swm, 0, "rk4.stage", 4);
      combine_stage(prog_, k3_, one);
      eval_stage(stage_, k4_);
    }
    TFX_OBS_SPAN(swm, 0, "rk4.apply");

    rk4_increment(inc_u_, k1_.du, k2_.du, k3_.du, k4_.du);
    rk4_increment(inc_v_, k1_.dv, k2_.dv, k3_.dv, k4_.dv);
    rk4_increment(inc_eta_, k1_.deta, k2_.deta, k3_.deta, k4_.deta);

    if (scheme_ == integration_scheme::compensated) {
      apply_increment_compensated(prog_.u, inc_u_, comp_.u);
      apply_increment_compensated(prog_.v, inc_v_, comp_.v);
      apply_increment_compensated(prog_.eta, inc_eta_, comp_.eta);
    } else {
      apply_increment(prog_.u, inc_u_);
      apply_increment(prog_.v, inc_v_);
      apply_increment(prog_.eta, inc_eta_);
    }
  }

  /// Region-task context: the trampolines receive it as const void*,
  /// with non-const access to the model through `self`.
  struct stage_ctx {
    model* self = nullptr;
    const tendencies<T>* k = nullptr;
    Tprog a{};
    const state<Tprog>* cast_src = nullptr;
  };

  static void run_combine(const void* c, int, std::size_t lo, std::size_t hi) {
    const auto& ctx = *static_cast<const stage_ctx*>(c);
    fused_stage_combine_range(ctx.self->stage_, ctx.self->prog_, *ctx.k,
                              ctx.a, lo, hi);
  }

  static void run_cast(const void* c, int, std::size_t lo, std::size_t hi) {
    const auto& ctx = *static_cast<const stage_ctx*>(c);
    const state<Tprog>& src = *ctx.cast_src;
    state<T>& dst = ctx.self->compute_state_;
    auto cast = [lo, hi](std::span<T> d, std::span<const Tprog> s) {
      if constexpr (fp::vec_traits<T>::kind == fp::vectorizability::native &&
                    fp::vec_traits<Tprog>::kind ==
                        fp::vectorizability::native) {
        // float <-> double down/up-cast through the dispatched vector
        // convert (per-lane rounding identical to the scalar cast).
        kernels::sweeps::convert<T, Tprog>(d, s, lo, hi);
        return;
      }
      for (std::size_t idx = lo; idx < hi; ++idx) {
        d[idx] = T(static_cast<double>(s[idx]));
      }
    };
    cast(dst.u.flat(), src.u.flat());
    cast(dst.v.flat(), src.v.flat());
    cast(dst.eta.flat(), src.eta.flat());
  }

  static void run_apply(const void* c, int, std::size_t lo, std::size_t hi) {
    static_cast<const stage_ctx*>(c)->self->apply_range(lo, hi);
  }

  /// One RK4 stage: stage_ = prog_ + a*k when k != nullptr (else the
  /// RHS evaluates at prog_ directly), the down-cast when mixed, then
  /// the RHS into `out` - all under one worker wake.
  void fused_stage(const tendencies<T>* k, Tprog a, tendencies<T>& out) {
    const std::size_t n = prog_.eta.size();
    const state<Tprog>& at = k != nullptr ? stage_ : prog_;
    ctx_.k = k;
    ctx_.a = a;
    ctx_.cast_src = &at;

    thread_pool::task tasks[2 + rhs_evaluator<T>::pass_count];
    std::size_t t = 0;
    if (k != nullptr) tasks[t++] = {n, &run_combine, &ctx_};
    if constexpr (!std::is_same_v<T, Tprog>) tasks[t++] = {n, &run_cast, &ctx_};
    t += rhs_.append_region_tasks(&tasks[t], rhs_input(at), out);

    if (rhs_.parallel_for_rows(params_.ny)) {
      ftz_worker_scope scope;
      rhs_.pool()->parallel_region({tasks, t}, &scope);
    } else {
      for (std::size_t i = 0; i < t; ++i) {
        tasks[i].fn(tasks[i].ctx, 0, 0, tasks[i].n);
      }
    }
  }

  /// The fused increment+apply: one element-wise sweep over all three
  /// fields (standard or Kahan-compensated), parallel when the RHS is.
  void fused_apply() {
    const std::size_t n = prog_.eta.size();
    if (rhs_.parallel_for_rows(params_.ny)) {
      const thread_pool::task t{n, &run_apply, &ctx_};
      ftz_worker_scope scope;
      rhs_.pool()->parallel_region({&t, 1}, &scope);
    } else {
      apply_range(0, n);
    }
  }

  void apply_range(std::size_t lo, std::size_t hi) {
    if (scheme_ == integration_scheme::compensated) {
      fused_rk4_update_compensated_range<Tprog, T>(
          prog_.u.flat(), comp_.u.flat(), k1_.du.flat(), k2_.du.flat(),
          k3_.du.flat(), k4_.du.flat(), lo, hi);
      fused_rk4_update_compensated_range<Tprog, T>(
          prog_.v.flat(), comp_.v.flat(), k1_.dv.flat(), k2_.dv.flat(),
          k3_.dv.flat(), k4_.dv.flat(), lo, hi);
      fused_rk4_update_compensated_range<Tprog, T>(
          prog_.eta.flat(), comp_.eta.flat(), k1_.deta.flat(),
          k2_.deta.flat(), k3_.deta.flat(), k4_.deta.flat(), lo, hi);
    } else {
      fused_rk4_update_range<Tprog, T>(prog_.u.flat(), k1_.du.flat(),
                                       k2_.du.flat(), k3_.du.flat(),
                                       k4_.du.flat(), lo, hi);
      fused_rk4_update_range<Tprog, T>(prog_.v.flat(), k1_.dv.flat(),
                                       k2_.dv.flat(), k3_.dv.flat(),
                                       k4_.dv.flat(), lo, hi);
      fused_rk4_update_range<Tprog, T>(prog_.eta.flat(), k1_.deta.flat(),
                                       k2_.deta.flat(), k3_.deta.flat(),
                                       k4_.deta.flat(), lo, hi);
    }
  }

  /// The state the RHS reads: the Tprog-precision state itself, or the
  /// preallocated down-cast copy when Tprog != T.
  const state<T>& rhs_input(const state<Tprog>& at) const {
    if constexpr (std::is_same_v<T, Tprog>) {
      return at;
    } else {
      return compute_state_;
    }
  }

  /// Evaluate the RHS at a (possibly wider-precision) state, casting
  /// down to the computation type when Tprog != T (unfused path).
  void eval_stage(const state<Tprog>& at, tendencies<T>& k) {
    if constexpr (std::is_same_v<T, Tprog>) {
      rhs_(at, k);
    } else {
      convert_state_into(compute_state_, at);
      rhs_(compute_state_, k);
    }
  }

  /// stage_ = y + a * k, in Tprog (unfused path: three serial sweeps).
  void combine_stage(const state<Tprog>& y, const tendencies<T>& k, Tprog a) {
    stage_combine(stage_.u, y.u, k.du, a);
    stage_combine(stage_.v, y.v, k.dv, a);
    stage_combine(stage_.eta, y.eta, k.deta, a);
  }

  /// Bytes the update sweeps of ONE step just moved, counted from the
  /// pipeline this model actually ran (the measurement half of the
  /// swm.update_bytes counter; perfmodel.cpp derives the same sweep
  /// counts independently from the source, so predicted == measured is
  /// a live cross-check of the docs/MODEL.md accounting):
  ///   combines:  3 stages x 3 fields x (y read + stage write in Tprog,
  ///              k read in T)
  ///   increment: 3 fields x 4 k reads in T; the unfused pipeline also
  ///              writes (and re-reads in apply) an increment array
  ///   apply:     fused 2 Tprog/field (4 compensated), unfused 3 (5)
  ///   mixed:     4 down-casts x 3 fields x (Tprog read + T write)
  [[nodiscard]] std::uint64_t measured_update_bytes() const {
    const double e = static_cast<double>(sizeof(T));
    const double p = static_cast<double>(sizeof(Tprog));
    const bool comp = scheme_ == integration_scheme::compensated;
    const double sweeps_T = 3.0 * 3.0 * 1.0 + 3.0 * 4.0;
    double sweeps_Tprog = 3.0 * 3.0 * 2.0;
    if (pipeline_ == update_pipeline::fused) {
      sweeps_Tprog += comp ? 3.0 * 4.0 : 3.0 * 2.0;
    } else {
      sweeps_Tprog += 3.0 * 1.0 + (comp ? 3.0 * 5.0 : 3.0 * 3.0);
    }
    double per_cell = sweeps_T * e + sweeps_Tprog * p;
    if constexpr (!std::is_same_v<T, Tprog>) {
      per_cell += 4.0 * 3.0 * (e + p);
    }
    const double cells = static_cast<double>(params_.nx) *
                         static_cast<double>(params_.ny);
    return static_cast<std::uint64_t>(per_cell * cells);
  }

  /// The perfmodel's precision_config for this instantiation.
  [[nodiscard]] precision_config obs_config() const {
    precision_config cfg;
    cfg.elem_bytes = sizeof(T);
    cfg.prog_elem_bytes = sizeof(Tprog);
    cfg.compensated = scheme_ == integration_scheme::compensated;
    cfg.fused = pipeline_ == update_pipeline::fused;
    return cfg;
  }

  /// Close the swm.step span: emit the measured-vs-predicted update
  /// traffic counter, feed the step-latency histogram and counters,
  /// then end the span. Only called while tracing is on.
  void emit_step_obs(double t0) {
    static constexpr double step_seconds_uppers[] = {
        1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1};
    const double t1 = obs::host_now();
    const std::uint64_t measured = measured_update_bytes();
    const std::uint64_t predicted =
        predict_step(arch::fugaku_node, params_.nx, params_.ny, obs_config())
            .update_bytes;
    obs::counter_at(obs::domain::swm, 0, "swm.update_bytes", t1, measured,
                    predicted);
    obs::metric_add("swm.steps");
    obs::metric_add("swm.update_bytes", measured);
    obs::metric_observe("swm.step_seconds", step_seconds_uppers, t1 - t0);
    obs::end_at(obs::domain::swm, 0, "swm.step", t1);
  }

  swm_params params_;
  integration_scheme scheme_;
  update_pipeline pipeline_ = update_pipeline::fused;
  rhs_evaluator<T> rhs_;
  state<Tprog> prog_;
  state<Tprog> comp_;   ///< Kahan compensation carried across steps
  state<Tprog> stage_;  ///< RK stage state
  state<T> compute_state_;  ///< down-cast stage (mixed precision only)
  field2d<Tprog> inc_u_, inc_v_, inc_eta_;  ///< unfused pipeline only
  tendencies<T> k1_, k2_, k3_, k4_;
  stage_ctx ctx_;
  int steps_ = 0;
  int health_every_ = 0;  ///< 0: sentinel off (default)
};

}  // namespace tfx::swm
