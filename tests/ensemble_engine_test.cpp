// Determinism suite of the ensemble scenario engine (docs/ENSEMBLE.md):
// every member's trajectory through the engine must be BIT-identical —
// including the Kahan compensation residuals — to the same
// member_config run standalone through swm::model, at every pool size,
// submission order and batching mode. Members share no mutable state
// and the batched RK4 apply performs the same per-element chains as
// the per-member apply, so scheduling must never show up in the bits.
// Also pins the control plane: cancellation keeps an oracle-exact
// trajectory prefix, and admission control rejects with typed errors
// (queue_full / backlog_exceeded / invalid_config) instead of
// blocking or throwing.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "core/rng.hpp"
#include "ensemble/engine.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "swm/model.hpp"
#include "swm/perfmodel.hpp"

using namespace tfx;
using namespace tfx::ensemble;

namespace {

// ---------------------------------------------------------------------------
// The standalone oracle: the exact initialization + stepping recipe
// the engine promises (job.hpp), run through the plain model API.
// ---------------------------------------------------------------------------

struct oracle_out {
  swm::state<double> prognostic;
  swm::state<double> compensation;
  std::vector<swm::state<double>> snapshots;
  int steps_done = 0;
  int failed_step = -1;
};

template <typename T, typename Tprog>
oracle_out run_oracle_as(const member_config& cfg,
                         swm::integration_scheme scheme) {
  swm::swm_params p;
  p.nx = cfg.nx;
  p.ny = cfg.ny;
  p.log2_scale = cfg.log2_scale;
  fp::ftz_guard guard(cfg.ftz);
  swm::model<T, Tprog> m(p, scheme);
  if (cfg.health_every > 0) m.set_health_interval(cfg.health_every);
  if (cfg.initial != nullptr) {
    m.restore(swm::convert_state<Tprog>(*cfg.initial), cfg.initial_steps);
  } else {
    m.seed_random_eddies(cfg.seed, cfg.velocity_amplitude);
  }
  if (cfg.perturb_seed != 0) {
    xoshiro256 rng(cfg.perturb_seed);
    auto& st = m.prognostic();
    for (auto* f : {&st.u, &st.v, &st.eta}) {
      for (auto& v : f->flat()) {
        v = Tprog(static_cast<double>(v) *
                  (1.0 + cfg.perturb_amplitude * rng.uniform(-1.0, 1.0)));
      }
    }
  }

  oracle_out out;
  out.prognostic = swm::state<double>(cfg.nx, cfg.ny);
  out.compensation = swm::state<double>(cfg.nx, cfg.ny);
  for (int s = 1; s <= cfg.steps; ++s) {
    try {
      m.step();
    } catch (const swm::numerical_error& err) {
      out.failed_step = err.step();
      break;
    }
    ++out.steps_done;
    if (cfg.record_every > 0 && s % cfg.record_every == 0) {
      out.snapshots.push_back(m.unscaled());
    }
  }
  swm::convert_state_into(out.prognostic, m.prognostic());
  swm::convert_state_into(out.compensation, m.compensation());
  return out;
}

oracle_out run_oracle(const member_config& cfg) {
  using swm::integration_scheme;
  switch (cfg.prec) {
    case personality::float64:
      return run_oracle_as<double, double>(cfg, integration_scheme::standard);
    case personality::float64_comp:
      return run_oracle_as<double, double>(cfg,
                                           integration_scheme::compensated);
    case personality::float32:
      return run_oracle_as<float, float>(cfg, integration_scheme::standard);
    case personality::float16:
      return run_oracle_as<fp::float16, fp::float16>(
          cfg, integration_scheme::compensated);
    case personality::float16_mixed:
      return run_oracle_as<fp::float16, float>(cfg,
                                               integration_scheme::standard);
    case personality::bfloat16:
      return run_oracle_as<fp::bfloat16, fp::bfloat16>(
          cfg, integration_scheme::compensated);
  }
  return {};
}

// Bit comparison (not operator==): distinguishes -0.0 from +0.0 and
// compares NaN payloads, which is what "bit-identical" means.
void expect_field_bits(std::span<const double> got, std::span<const double> want,
                       const char* field, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  int bad = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(got[i]) !=
        std::bit_cast<std::uint64_t>(want[i])) {
      if (bad == 0) first = i;
      ++bad;
    }
  }
  EXPECT_EQ(bad, 0) << what << "." << field << ": " << bad
                    << " elements differ, first at " << first << " ("
                    << got[first] << " vs " << want[first] << ")";
}

void expect_state_bits(const swm::state<double>& got,
                       const swm::state<double>& want, const char* what) {
  expect_field_bits(got.u.flat(), want.u.flat(), "u", what);
  expect_field_bits(got.v.flat(), want.v.flat(), "v", what);
  expect_field_bits(got.eta.flat(), want.eta.flat(), "eta", what);
}

// A mixed-precision suite: two members of every personality (one
// perturbed), plus an FTZ-flush Float16 pair that must land in its own
// batch group.
std::vector<member_config> mixed_suite() {
  std::vector<member_config> suite;
  for (const personality p : all_personalities) {
    member_config a;
    a.prec = p;
    a.nx = 16;
    a.ny = 8;
    a.steps = 8;
    a.seed = 7;
    suite.push_back(a);

    member_config b = a;
    b.nx = 12;
    b.ny = 6;
    b.steps = 5;
    b.seed = 11;
    b.perturb_seed = 1009;
    b.perturb_amplitude = 1e-2;
    suite.push_back(b);
  }
  member_config f;
  f.prec = personality::float16;
  f.nx = 16;
  f.ny = 8;
  f.steps = 6;
  f.log2_scale = 10;
  f.ftz = fp::ftz_mode::flush;
  suite.push_back(f);
  f.perturb_seed = 4242;
  f.perturb_amplitude = 1e-2;
  suite.push_back(f);
  return suite;
}

void check_suite_against_oracle(engine& eng,
                                const std::vector<member_config>& suite,
                                const std::vector<job_id>& ids) {
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const member_config& cfg = suite[i];
    SCOPED_TRACE(::testing::Message()
                 << "member " << i << " " << personality_name(cfg.prec) << " "
                 << cfg.nx << "x" << cfg.ny << " steps=" << cfg.steps);
    const auto status = eng.poll(ids[i]);
    ASSERT_TRUE(status.has_value());
    ASSERT_EQ(status->state, job_state::done);
    EXPECT_EQ(status->steps_done, cfg.steps);
    const job_result* got = eng.result(ids[i]);
    ASSERT_NE(got, nullptr);
    const oracle_out want = run_oracle(cfg);
    EXPECT_EQ(got->steps_done, want.steps_done);
    expect_state_bits(got->prognostic, want.prognostic, "prognostic");
    expect_state_bits(got->compensation, want.compensation, "compensation");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Determinism: pool sizes x submission orders x batching mode. Every
// combination must reproduce the oracle bits for every member.
// ---------------------------------------------------------------------------

class EnsembleDeterminism
    : public ::testing::TestWithParam<std::tuple<int, unsigned, bool>> {};

TEST_P(EnsembleDeterminism, MembersMatchStandaloneOracleBitwise) {
  const auto [threads, order_seed, batched] = GetParam();

  std::vector<member_config> suite = mixed_suite();
  std::mt19937 order(order_seed);
  std::shuffle(suite.begin(), suite.end(), order);

  engine_options opts;
  opts.threads = threads;
  opts.async = false;
  opts.batched_apply = batched;
  engine eng(opts);

  std::vector<job_id> ids;
  for (const member_config& cfg : suite) {
    const submit_ticket t = eng.submit(cfg);
    ASSERT_TRUE(t.ok()) << submit_error_name(t.error);
    ids.push_back(t.id);
  }
  eng.wait_all();
  EXPECT_EQ(eng.active_members(), 0u);
  EXPECT_EQ(eng.backlog_seconds(), 0.0);
  check_suite_against_oracle(eng, suite, ids);
}

INSTANTIATE_TEST_SUITE_P(
    PoolsOrdersBatching, EnsembleDeterminism,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(true, false)),
    [](const auto& info) {
      return "pool" + std::to_string(std::get<0>(info.param)) + "_order" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_batched" : "_oneatatime");
    });

// Forced tiny tiles exercise the ragged tile split (members not
// divisible by the tile) without changing any bits.
TEST(EnsembleEngine, TinyTilesMatchOracle) {
  std::vector<member_config> suite = mixed_suite();
  engine_options opts;
  opts.threads = 2;
  opts.async = false;
  opts.tile_members = 3;  // 14 members -> tiles of 3,3,3,3,2 per group mix
  opts.stride = 2;
  engine eng(opts);
  std::vector<job_id> ids;
  for (const member_config& cfg : suite) {
    const submit_ticket t = eng.submit(cfg);
    ASSERT_TRUE(t.ok());
    ids.push_back(t.id);
  }
  eng.wait_all();
  check_suite_against_oracle(eng, suite, ids);
}

// The async scheduler thread must produce the same bits as manual
// drive() — scheduling is invisible in the results.
TEST(EnsembleEngine, AsyncSchedulerMatchesOracle) {
  std::vector<member_config> suite = mixed_suite();
  engine_options opts;
  opts.threads = 4;
  opts.async = true;
  engine eng(opts);
  std::vector<job_id> ids;
  for (const member_config& cfg : suite) {
    const submit_ticket t = eng.submit(cfg);
    ASSERT_TRUE(t.ok());
    ids.push_back(t.id);
  }
  eng.wait(ids.front());
  {
    const auto st = eng.poll(ids.front());
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(st->state == job_state::done);
  }
  eng.wait_all();
  check_suite_against_oracle(eng, suite, ids);
}

// Snapshots recorded mid-flight must be the exact model::unscaled()
// images the standalone run produces at the same steps.
TEST(EnsembleEngine, RecordedSnapshotsMatchOracleBitwise) {
  engine_options opts;
  opts.threads = 2;
  opts.async = false;
  engine eng(opts);

  std::vector<member_config> suite;
  for (const personality p : all_personalities) {
    member_config cfg;
    cfg.prec = p;
    cfg.nx = 16;
    cfg.ny = 8;
    cfg.steps = 9;
    cfg.record_every = 3;
    if (p == personality::float16) cfg.log2_scale = 8;
    suite.push_back(cfg);
  }
  std::vector<job_id> ids;
  for (const member_config& cfg : suite) {
    const submit_ticket t = eng.submit(cfg);
    ASSERT_TRUE(t.ok());
    ids.push_back(t.id);
  }
  eng.wait_all();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    SCOPED_TRACE(personality_name(suite[i].prec));
    const job_result* got = eng.result(ids[i]);
    ASSERT_NE(got, nullptr);
    const oracle_out want = run_oracle(suite[i]);
    ASSERT_EQ(got->snapshots.size(), 3u);
    ASSERT_EQ(want.snapshots.size(), 3u);
    for (std::size_t s = 0; s < 3; ++s) {
      expect_state_bits(got->snapshots[s], want.snapshots[s], "snapshot");
    }
  }
}

// Restart members (initial state + step offset) follow the same
// oracle: snapshotting one engine's result into another member
// continues bit-exactly.
TEST(EnsembleEngine, RestartFromInitialStateMatchesOracle) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  engine eng(opts);

  member_config full;
  full.prec = personality::float64_comp;
  full.nx = 16;
  full.ny = 8;
  full.steps = 10;
  const submit_ticket t_full = eng.submit(full);
  ASSERT_TRUE(t_full.ok());
  eng.wait_all();
  const oracle_out want = run_oracle(full);

  // Re-run the last 4 steps from the oracle's step-6 state.
  member_config head = full;
  head.steps = 6;
  const oracle_out at6 = run_oracle(head);

  member_config tail = full;
  tail.steps = 4;
  tail.initial = &at6.prognostic;
  tail.initial_steps = 6;
  const submit_ticket t_tail = eng.submit(tail);
  ASSERT_TRUE(t_tail.ok());
  eng.wait_all();

  const job_result* got = eng.result(t_tail.id);
  ASSERT_NE(got, nullptr);
  // float64_comp restart via restore(state) resets compensation to
  // zero, so only the plain trajectory continues exactly when the
  // compensation was zero at the cut; compare against an oracle that
  // restarts the same way rather than the uncut run.
  member_config tail_oracle = tail;
  tail_oracle.initial = &at6.prognostic;
  const oracle_out want_tail = run_oracle(tail_oracle);
  expect_state_bits(got->prognostic, want_tail.prognostic, "prognostic");
  expect_state_bits(got->compensation, want_tail.compensation, "compensation");
  (void)want;
}

// ---------------------------------------------------------------------------
// Control plane: cancellation, typed admission errors, failure.
// ---------------------------------------------------------------------------

TEST(EnsembleControl, CancelKeepsOracleExactPrefix) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  opts.stride = 1;  // one member step per round: precise cut points
  engine eng(opts);

  member_config cfg;
  cfg.prec = personality::float32;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.steps = 50;
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());

  ASSERT_EQ(eng.drive(3), 3);  // 3 rounds x stride 1 = 3 member steps
  {
    const auto st = eng.poll(t.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->steps_done, 3);
  }
  EXPECT_EQ(eng.cancel(t.id), cancel_result::requested);
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::cancelled);
  EXPECT_EQ(st->steps_done, 3);

  // The cancelled trajectory prefix is the oracle's step-3 state.
  const job_result* got = eng.result(t.id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->steps_done, 3);
  member_config prefix = cfg;
  prefix.steps = 3;
  const oracle_out want = run_oracle(prefix);
  expect_state_bits(got->prognostic, want.prognostic, "prognostic");

  EXPECT_EQ(eng.cancel(t.id), cancel_result::already_cancelled);
  EXPECT_EQ(eng.cancel(job_id{999999}), cancel_result::unknown_job);
}

TEST(EnsembleControl, CancelFinishedJobReportsAlreadyDone) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  engine eng(opts);
  member_config cfg;
  cfg.steps = 2;
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();
  EXPECT_EQ(eng.cancel(t.id), cancel_result::already_done);
}

TEST(EnsembleControl, QueueFullIsTypedAndRecovers) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  opts.max_members = 2;
  engine eng(opts);

  member_config cfg;
  cfg.steps = 2;
  ASSERT_TRUE(eng.submit(cfg).ok());
  ASSERT_TRUE(eng.submit(cfg).ok());
  const submit_ticket rejected = eng.submit(cfg);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error, submit_error::queue_full);
  EXPECT_EQ(rejected.id, invalid_job);

  eng.wait_all();  // capacity frees when members finish
  EXPECT_TRUE(eng.submit(cfg).ok());
  eng.wait_all();
}

TEST(EnsembleControl, BacklogBoundIsTypedAndPricedByPerfmodel) {
  member_config cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.steps = 100;
  const double cost = swm::predict_time(arch::fugaku_node, cfg.nx, cfg.ny,
                                        precision_of(cfg.prec), cfg.steps);
  ASSERT_GT(cost, 0.0);

  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  opts.max_backlog_seconds = 1.5 * cost;  // room for one job, not two
  engine eng(opts);

  const submit_ticket first = eng.submit(cfg);
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(eng.backlog_seconds(), cost);
  const submit_ticket second = eng.submit(cfg);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error, submit_error::backlog_exceeded);

  eng.wait_all();
  EXPECT_EQ(eng.backlog_seconds(), 0.0);
  EXPECT_TRUE(eng.submit(cfg).ok());
  eng.wait_all();

  const job_result* r = eng.result(first.id);
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->modeled_seconds, cost);
}

TEST(EnsembleControl, InvalidConfigsAreTyped) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  engine eng(opts);

  member_config bad;
  bad.nx = 0;
  EXPECT_EQ(eng.submit(bad).error, submit_error::invalid_config);
  bad = member_config{};
  bad.steps = 0;
  EXPECT_EQ(eng.submit(bad).error, submit_error::invalid_config);
  bad = member_config{};
  bad.record_every = -1;
  EXPECT_EQ(eng.submit(bad).error, submit_error::invalid_config);

  const swm::state<double> wrong_shape(8, 4);
  bad = member_config{};
  bad.nx = 16;
  bad.ny = 8;
  bad.initial = &wrong_shape;
  EXPECT_EQ(eng.submit(bad).error, submit_error::invalid_config);

  // Unregistered tenant.
  member_config ok;
  ok.steps = 1;
  EXPECT_EQ(eng.submit(ok, tenant_id{7}).error, submit_error::invalid_config);
}

TEST(EnsembleControl, HealthSentinelFailureIsTerminalAndTyped) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  engine eng(opts);

  // A non-finite initial state trips the model's health sentinel on
  // the first checked step.
  swm::state<double> blowup(16, 8);
  for (auto& v : blowup.u.flat()) v = 1e300;  // -> inf in Float16
  member_config cfg;
  cfg.prec = personality::float16;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.steps = 5;
  cfg.health_every = 1;
  cfg.initial = &blowup;

  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::failed);
  EXPECT_EQ(st->failed_step, 1);
  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->steps_done, 1);

  // The oracle fails at the same step.
  const oracle_out want = run_oracle(cfg);
  EXPECT_EQ(want.failed_step, 1);

  // A failed job alongside healthy ones doesn't poison the round.
  member_config healthy;
  healthy.steps = 3;
  const submit_ticket h = eng.submit(healthy);
  ASSERT_TRUE(h.ok());
  eng.wait_all();
  const auto hs = eng.poll(h.id);
  ASSERT_TRUE(hs.has_value());
  EXPECT_EQ(hs->state, job_state::done);
}

TEST(EnsembleControl, PollAndResultLifecycle) {
  engine_options opts;
  opts.threads = 1;
  opts.async = false;
  engine eng(opts);

  EXPECT_FALSE(eng.poll(job_id{1}).has_value());
  EXPECT_EQ(eng.result(job_id{1}), nullptr);

  member_config cfg;
  cfg.steps = 2;
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  {
    const auto st = eng.poll(t.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, job_state::queued);
    EXPECT_EQ(st->steps_done, 0);
  }
  EXPECT_EQ(eng.result(t.id), nullptr);  // not terminal yet

  eng.wait(t.id);
  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::done);
  EXPECT_NE(eng.result(t.id), nullptr);
}

TEST(EnsembleControl, TileSizingIsPricedOrOverridden) {
  member_config cfg;
  cfg.nx = 16;
  cfg.ny = 8;
  {
    engine_options opts;
    opts.threads = 1;
    opts.async = false;
    engine eng(opts);
    EXPECT_GE(eng.tile_members_for(cfg), 1u);
  }
  {
    engine_options opts;
    opts.threads = 1;
    opts.async = false;
    opts.tile_members = 5;
    engine eng(opts);
    EXPECT_EQ(eng.tile_members_for(cfg), 5u);
  }
}
