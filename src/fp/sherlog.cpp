#include "fp/sherlog.hpp"

namespace tfx::fp {

namespace {
thread_local exponent_histogram g_sink;
}  // namespace

exponent_histogram& sherlog_sink() noexcept { return g_sink; }

int exponent_histogram::min_observed() const {
  for (int e = min_exponent; e <= max_exponent; ++e)
    if (count(e) != 0) return e;
  return 0;
}

int exponent_histogram::max_observed() const {
  for (int e = max_exponent; e >= min_exponent; --e)
    if (count(e) != 0) return e;
  return 0;
}

int exponent_histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int e = min_exponent; e <= max_exponent; ++e) {
    seen += count(e);
    if (seen > target) return e;
  }
  // q = 1 exactly: every sample lies at or below the largest observed
  // exponent, so answer that, not the clamp ceiling.
  return max_observed();
}

double exponent_histogram::fraction_below(int e) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (int i = min_exponent; i < e && i <= max_exponent; ++i)
    below += count(i);
  return static_cast<double>(below) / static_cast<double>(total_);
}

double exponent_histogram::fraction_at_or_above(int e) const {
  if (total_ == 0) return 0.0;
  return 1.0 - fraction_below(e);
}

void exponent_histogram::merge(const exponent_histogram& other) {
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
  zeros_ += other.zeros_;
  nonfinite_ += other.nonfinite_;
}

}  // namespace tfx::fp
