#pragma once

/// \file simd.hpp
/// Width-templated SIMD abstraction and the explicitly vectorized
/// Level-1 kernels built on it.
///
/// The paper's Fig. 1 hinges on the generic kernel actually filling the
/// A64FX's 512-bit SVE lanes; "A64FX — Your Compiler You Must Decide!"
/// (PAPERS.md) shows how often a compiler alone leaves that width on
/// the table. This layer removes the gamble: `pack<T, Bits>` is a
/// fixed-width vector register (GNU vector extensions, so it compiles
/// portably — the compiler synthesizes wide operations from narrower
/// ISA when needed), and the kernels below are hand-blocked over it at
/// compile-time widths of 128/256/512 bits. Which width actually runs
/// is a *runtime* decision (kernels/dispatch.hpp), made from CPU
/// features at registry init and hot-swappable under load, exactly like
/// the paper's libblastrampoline seam.
///
/// Numerical contracts (docs/KERNELS.md):
///  * element-wise kernels (axpy, scal, the SWM sweep kernels) perform
///    the same per-element operation chain as the scalar loops in
///    generic.hpp / swm/timestep.hpp, with `kernels::muladd`'s pinned
///    separately-rounded semantics, so every width is bit-identical to
///    the scalar code — remainder elements run the scalar loop itself;
///  * reductions (dot) use the documented lane-strided tree: `lanes`
///    partial sums advanced with muladd, folded left-to-right, with the
///    remainder appended sequentially. Deterministic per width, but a
///    different rounding order than the sequential scalar reduction —
///    the ULP policy in docs/KERNELS.md bounds the difference;
///  * soft-float lane types (float16, bfloat16) take the *widened* path
///    (fp::vec_traits): exact widen to their binary32 compute type,
///    vector arithmetic there, and a per-lane rounding narrow through
///    the type's converting constructor — which is the scalar
///    operators' own definition, so FTZ flushing and the subnormal
///    counters behave identically to the scalar loop.

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>

#include "core/contracts.hpp"
#include "fp/traits.hpp"
#include "kernels/generic.hpp"

namespace tfx::kernels::simd {

/// The compile-time widths the layer instantiates. `width_list[i]` is
/// also the order the dispatcher probes (widest profitable first).
inline constexpr std::size_t width_list[] = {512, 256, 128};
inline constexpr std::size_t min_width_bits = 128;
inline constexpr std::size_t max_width_bits = 512;

[[nodiscard]] constexpr bool valid_width(std::size_t bits) {
  return bits == 128 || bits == 256 || bits == 512;
}

/// A fixed-width vector of a native lane type. Loads and stores are
/// unaligned (memcpy lowers to the unaligned vector move); element
/// access is per-lane.
template <typename T, std::size_t Bits>
struct pack {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                "pack lanes must be a native float type; soft floats go "
                "through the widened path");
  static_assert(valid_width(Bits));

  static constexpr std::size_t lanes = Bits / 8 / sizeof(T);
  using vec [[gnu::vector_size(Bits / 8)]] = T;

  vec v;

  [[nodiscard]] static pack load(const T* p) {
    pack r;
    std::memcpy(&r.v, p, sizeof(vec));
    return r;
  }
  void store(T* p) const { std::memcpy(p, &v, sizeof(vec)); }

  [[nodiscard]] static pack broadcast(T s) {
    pack r;
    for (std::size_t l = 0; l < lanes; ++l) r.v[l] = s;
    return r;
  }
  [[nodiscard]] static pack zero() { return broadcast(T{}); }

  [[nodiscard]] T operator[](std::size_t l) const { return v[l]; }

  friend pack operator+(pack a, pack b) { return pack{a.v + b.v}; }
  friend pack operator-(pack a, pack b) { return pack{a.v - b.v}; }
  friend pack operator*(pack a, pack b) { return pack{a.v * b.v}; }
};

/// Per-lane muladd with the same pinned contract as the scalar
/// kernels::muladd: multiply rounded, then add rounded, never
/// contracted into an FMA. The scalar contract is enforced in-source
/// with __builtin_assoc_barrier; here the barrier is deliberately NOT
/// used — GCC lowers a vector assoc barrier lane-by-lane (a wall of
/// shufps/unpck on x86), which costs ~4x on the float kernels. Instead
/// the build pins -ffp-contract=off for the whole tree (top-level
/// CMakeLists), which forbids the mul+add -> FMA combine in vector
/// expressions too; the MuladdContract tests cross-check vector lanes
/// against the barrier-pinned scalar chain, so a build that fuses
/// behind our back fails loudly.
template <typename T, std::size_t Bits>
[[nodiscard]] inline pack<T, Bits> muladd(pack<T, Bits> a, pack<T, Bits> b,
                                          pack<T, Bits> c) {
  return pack<T, Bits>{a.v * b.v + c.v};
}

// ---------------------------------------------------------------------------
// Level-1 kernels, native lane types. All take the full span and handle
// the remainder with the scalar operation chain (identical rounding).
// ---------------------------------------------------------------------------

/// How many packs of width Bits the element-wise kernels process per
/// unrolled iteration: a constant 512-bit "virtual width", so narrow
/// packs get independent muladd chains for the FP pipes while wide
/// packs (which a narrow host already splits into several registers)
/// do not blow the register file and spill.
template <std::size_t Bits>
inline constexpr std::size_t unroll = max_width_bits / Bits;

/// y <- a*x + y at compile-time width Bits. Register blocking: `unroll`
/// independent muladd chains (512 virtual bits per iteration) keep both
/// FP pipes of the modeled machine (and any superscalar host) busy; no
/// accumulation crosses elements, so blocking cannot change results.
template <std::size_t Bits, typename T>
void axpy_fixed(T a, std::span<const T> x, std::span<T> y) {
  TFX_EXPECTS(x.size() == y.size());
  using P = pack<T, Bits>;
  constexpr std::size_t L = P::lanes;
  constexpr std::size_t U = unroll<Bits>;
  const std::size_t n = x.size();
  const P va = P::broadcast(a);
  std::size_t i = 0;
  for (; i + U * L <= n; i += U * L) {
    P xs[U];
    for (std::size_t u = 0; u < U; ++u) xs[u] = P::load(&x[i + u * L]);
    for (std::size_t u = 0; u < U; ++u) {
      muladd(va, xs[u], P::load(&y[i + u * L])).store(&y[i + u * L]);
    }
  }
  for (; i + L <= n; i += L) {
    muladd(va, P::load(&x[i]), P::load(&y[i])).store(&y[i]);
  }
  for (; i < n; ++i) y[i] = kernels::muladd(a, x[i], y[i]);
}

/// x <- a*x at compile-time width Bits (plain multiply per lane).
template <std::size_t Bits, typename T>
void scal_fixed(T a, std::span<T> x) {
  using P = pack<T, Bits>;
  constexpr std::size_t L = P::lanes;
  const std::size_t n = x.size();
  const P va = P::broadcast(a);
  std::size_t i = 0;
  for (; i + L <= n; i += L) (va * P::load(&x[i])).store(&x[i]);
  for (; i < n; ++i) x[i] = a * x[i];
}

/// dot <- x . y with the documented lane-strided reduction tree:
/// `lanes` partial sums (lane l accumulates elements l, l+L, l+2L, ...
/// via muladd), folded left-to-right after the main loop, remainder
/// elements appended sequentially. Deterministic for a given width;
/// reassociated relative to the sequential scalar dot (ULP policy in
/// docs/KERNELS.md).
template <std::size_t Bits, typename T>
[[nodiscard]] T dot_fixed(std::span<const T> x, std::span<const T> y) {
  TFX_EXPECTS(x.size() == y.size());
  using P = pack<T, Bits>;
  constexpr std::size_t L = P::lanes;
  const std::size_t n = x.size();
  P acc = P::zero();
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    acc = muladd(P::load(&x[i]), P::load(&y[i]), acc);
  }
  T s = acc[0];
  for (std::size_t l = 1; l < L; ++l) s += acc[l];
  for (; i < n; ++i) s = kernels::muladd(x[i], y[i], s);
  return s;
}

/// Scalar emulation of dot_fixed's reduction tree, for tests and for
/// pinning the tree itself (same rounding steps, no vector code).
template <std::size_t Bits, typename T>
[[nodiscard]] T dot_tree_reference(std::span<const T> x,
                                   std::span<const T> y) {
  TFX_EXPECTS(x.size() == y.size());
  constexpr std::size_t L = Bits / 8 / sizeof(T);
  const std::size_t n = x.size();
  T partial[L] = {};
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    for (std::size_t l = 0; l < L; ++l) {
      partial[l] = kernels::muladd(x[i + l], y[i + l], partial[l]);
    }
  }
  T s = partial[0];
  for (std::size_t l = 1; l < L; ++l) s += partial[l];
  for (; i < n; ++i) s = kernels::muladd(x[i], y[i], s);
  return s;
}

// ---------------------------------------------------------------------------
// Widened path: soft-float storage types whose arithmetic is *defined*
// as compute-in-binary32 (fp::vec_traits<T>::kind == widened). The
// widen is exact; the vector op runs on binary32 lanes; the narrowing
// re-round goes through T's converting constructor, i.e. the exact
// code path (rounding + FTZ canonicalization + event counters) the
// scalar operators use. Bit-identical to the scalar loop by
// construction.
// ---------------------------------------------------------------------------

/// y <- a*x + y for a widened type: per element, round(a*x) then
/// round(prod + y), matching T's muladd (two narrowing rounds).
template <std::size_t Bits, typename T>
void axpy_widened(T a, std::span<const T> x, std::span<T> y) {
  static_assert(fp::vec_traits<T>::kind == fp::vectorizability::widened);
  TFX_EXPECTS(x.size() == y.size());
  using W = typename fp::vec_traits<T>::lane_type;
  using P = pack<W, Bits>;
  constexpr std::size_t L = P::lanes;
  const std::size_t n = x.size();
  const P va = P::broadcast(static_cast<W>(a));
  W wide[L];
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    // widen x (exact), multiply in W lanes, narrow-round each product.
    for (std::size_t l = 0; l < L; ++l) wide[l] = static_cast<W>(x[i + l]);
    (va * P::load(wide)).store(wide);
    // prod + y in W lanes (the scalar operator+ computes in W too),
    // then the final narrowing round through T's constructor.
    W acc[L];
    for (std::size_t l = 0; l < L; ++l) {
      acc[l] = static_cast<W>(T(wide[l]));  // round(a*x), canonicalized
    }
    for (std::size_t l = 0; l < L; ++l) wide[l] = static_cast<W>(y[i + l]);
    (P::load(acc) + P::load(wide)).store(acc);
    for (std::size_t l = 0; l < L; ++l) y[i + l] = T(acc[l]);
  }
  for (; i < n; ++i) {
    using tfx::fp::muladd;
    y[i] = muladd(a, x[i], y[i]);
  }
}

}  // namespace tfx::kernels::simd
