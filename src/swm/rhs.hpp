#pragma once

/// \file rhs.hpp
/// Right-hand side of the shallow-water equations on the C-grid.
///
/// Vector-invariant form (the ShallowWaters.jl discretization family):
///
///   u_t = +(f + zeta) vbar - d/dx (g eta + KE) + Fx - r u + nu4 lap^2 u
///   v_t = -(f + zeta) ubar - d/dy (g eta + KE)      - r v + nu4 lap^2 v
///   eta_t = -d/dx (u h) - d/dy (v h),   h = h0 + eta
///
/// discretized with centered differences, 4-point stagger averages, a
/// corner-point relative vorticity, and biharmonic diffusion. The
/// evaluator produces per-step *increments* (dt folded into every
/// coefficient) of the *scaled* prognostic variables U = s u, V = s v,
/// H = s eta; see params.hpp for why both devices matter at Float16.
///
/// Requires square cells (dx == dy), which the default configurations
/// guarantee; the constructor checks it.
///
/// Boundary conditions: doubly periodic by default; the channel option
/// (params.hpp) places free-slip solid walls at y = 0 and y = Ly. On
/// this C-grid layout the north-wall v-points coincide with the wrapped
/// v(i, 0) row, so keeping that row at zero enforces no-flux through
/// BOTH walls with the periodic index arithmetic intact; the remaining
/// wall handling is (a) mirroring u across the walls (free slip:
/// du/dy = 0, which also zeroes the wall vorticity), (b) an
/// antisymmetric v ghost making lap_v vanish on the wall row, and (c)
/// forcing dv = 0 on the wall row.

#include <cmath>
#include <vector>

#include "core/contracts.hpp"
#include "core/threadpool.hpp"
#include "fp/fpenv.hpp"
#include "swm/field.hpp"
#include "swm/params.hpp"
#include "swm/sweep.hpp"

namespace tfx::swm {

/// Per-step increments of the three prognostic fields.
template <typename T>
struct tendencies {
  field2d<T> du, dv, deta;

  tendencies() = default;
  tendencies(int nx, int ny) : du(nx, ny), dv(nx, ny), deta(nx, ny) {}
};

template <typename T>
class rhs_evaluator {
 public:
  explicit rhs_evaluator(const swm_params& p)
      : coeffs_(coefficients<T>::make(p)),
        channel_(p.bc == boundary::channel),
        zeta_(p.nx, p.ny),
        ke_(p.nx, p.ny),
        lap_u_(p.nx, p.ny),
        lap_v_(p.nx, p.ny) {
    TFX_EXPECTS(std::abs(p.dx() - p.dy()) < 1e-9 * p.dx());
    const double dt = p.dt();
    const double dy = p.dy();
    dt_cor_u_.resize(static_cast<std::size_t>(p.ny));
    dt_cor_v_.resize(static_cast<std::size_t>(p.ny));
    wind_u_.resize(static_cast<std::size_t>(p.ny));
    const double s = coeffs_.scale;
    for (int j = 0; j < p.ny; ++j) {
      const double y_center = (j + 0.5) * dy - 0.5 * p.Ly;
      const double y_face = j * dy - 0.5 * p.Ly;
      dt_cor_u_[static_cast<std::size_t>(j)] =
          T(dt * (p.coriolis_f0 + p.coriolis_beta * y_center));
      dt_cor_v_[static_cast<std::size_t>(j)] =
          T(dt * (p.coriolis_f0 + p.coriolis_beta * y_face));
      // Double-gyre wind profile, periodic-compatible.
      wind_u_[static_cast<std::size_t>(j)] =
          T(-dt * s * p.wind_stress / (p.rho * p.depth) *
            std::cos(2.0 * M_PI * (j + 0.5) / p.ny));
    }
  }

  [[nodiscard]] const coefficients<T>& coeffs() const { return coeffs_; }

  /// Attach a thread pool: the evaluation then partitions each pass's
  /// rows over the workers, all five passes under one worker wake
  /// (thread_pool::parallel_region, with a barrier between passes).
  /// Row partitioning writes disjoint rows, so the result is
  /// bit-identical to the serial evaluation (tests/swm_parallel_test
  /// pins this).
  void attach_pool(thread_pool* pool) { pool_ = pool; }
  [[nodiscard]] thread_pool* pool() const { return pool_; }

  /// True when an attached pool will actually be used for `ny` rows
  /// (below two rows per worker the wake costs more than it saves -
  /// the same bound as thread_pool::serial_grain).
  [[nodiscard]] bool parallel_for_rows(int ny) const {
    return pool_ != nullptr && ny >= 2 * pool_->size();
  }

  /// Evaluate the increments for state `st` into `out`.
  void operator()(const state<T>& st, tendencies<T>& out) {
    if (parallel_for_rows(st.ny())) {
      thread_pool::task tasks[pass_count];
      append_region_tasks(tasks, st, out);
      ftz_worker_scope scope;
      pool_->parallel_region({tasks, pass_count}, &scope);
    } else {
      evaluate_serial(st, out);
    }
  }

  /// The five passes, serially, in dependency order.
  void evaluate_serial(const state<T>& st, tendencies<T>& out) {
    const int ny = st.ny();
    pass_vorticity_ke(st, 0, ny);
    pass_laplacians(st, 0, ny);
    pass_u_momentum(st, out, 0, ny);
    pass_v_momentum(st, out, 0, ny);
    pass_continuity(st, out, 0, ny);
  }

  /// Number of region tasks append_region_tasks emits.
  static constexpr std::size_t pass_count = 5;

  /// Append the five passes as parallel-region tasks (row-partitioned,
  /// a barrier between consecutive tasks orders the writes). The task
  /// contexts live in this evaluator: one evaluation in flight at a
  /// time, and `st`/`out` must outlive the region call. Returns the
  /// number of tasks written. This is how the model fuses the stage
  /// combine + down-cast + RHS into ONE worker wake per RK4 stage.
  std::size_t append_region_tasks(thread_pool::task* tasks,
                                  const state<T>& st, tendencies<T>& out) {
    ctx_ = pass_ctx{this, &st, &out};
    const auto n = static_cast<std::size_t>(st.ny());
    tasks[0] = {n, &run_pass<&rhs_evaluator::pass_vorticity_ke>, &ctx_};
    tasks[1] = {n, &run_pass<&rhs_evaluator::pass_laplacians>, &ctx_};
    tasks[2] = {n, &run_pass_out<&rhs_evaluator::pass_u_momentum>, &ctx_};
    tasks[3] = {n, &run_pass_out<&rhs_evaluator::pass_v_momentum>, &ctx_};
    tasks[4] = {n, &run_pass_out<&rhs_evaluator::pass_continuity>, &ctx_};
    return pass_count;
  }

  /// Array sweeps per evaluation (reads + writes of full fields), used
  /// by the performance model's traffic accounting. Derived from the
  /// five passes below: see perfmodel.hpp.
  static constexpr double array_reads = 19.0;
  static constexpr double array_writes = 7.0;

 private:
  struct pass_ctx {
    rhs_evaluator* self = nullptr;
    const state<T>* st = nullptr;
    tendencies<T>* out = nullptr;
  };

  template <void (rhs_evaluator::*Pass)(const state<T>&, int, int)>
  static void run_pass(const void* c, int, std::size_t lo, std::size_t hi) {
    const auto& ctx = *static_cast<const pass_ctx*>(c);
    (ctx.self->*Pass)(*ctx.st, static_cast<int>(lo), static_cast<int>(hi));
  }

  template <void (rhs_evaluator::*Pass)(const state<T>&, tendencies<T>&, int,
                                        int)>
  static void run_pass_out(const void* c, int, std::size_t lo,
                           std::size_t hi) {
    const auto& ctx = *static_cast<const pass_ctx*>(c);
    (ctx.self->*Pass)(*ctx.st, *ctx.out, static_cast<int>(lo),
                      static_cast<int>(hi));
  }

  // Pass 1: relative vorticity (grid units, scale s) at corner points
  // and kinetic energy at centres. The KE is kept at scale s (not
  // s^2): one factor of each square is pre-multiplied by the exact
  // inv_s so no intermediate overflows Float16 at large s.
  void pass_vorticity_ke(const state<T>& st, int j0, int j1) {
    const int nx = st.nx();
    const auto& U = st.u;
    const auto& V = st.v;
    const auto& H = st.eta;
    const coefficients<T>& c = coeffs_;
    for (int j = j0; j < j1; ++j) {
      const int jm = channel_ && j == 0 ? 0 : H.jm(j);  // u mirrored at wall
      const int jp = H.jp(j);
      for (int i = 0; i < nx; ++i) {
        const int im = H.im(i);
        const int ip = H.ip(i);
        zeta_(i, j) = (V(i, j) - V(im, j)) - (U(i, j) - U(i, jm));
        const T ubar = c.half * (U(i, j) + U(ip, j));
        const T vbar = c.half * (V(i, j) + V(i, jp));
        ke_(i, j) = c.half * (ubar * (c.inv_s * ubar) +
                              vbar * (c.inv_s * vbar));
      }
    }
  }

  // Pass 2: Laplacians (grid units) of both velocity components. In
  // the channel, u mirrors across the walls (free slip) and the
  // antisymmetric v ghost plus v = 0 on the wall row make lap_v
  // vanish there.
  void pass_laplacians(const state<T>& st, int j0, int j1) {
    const int nx = st.nx();
    const int ny = st.ny();
    const auto& U = st.u;
    const auto& V = st.v;
    for (int j = j0; j < j1; ++j) {
      const int jm = U.jm(j);
      const int jp = U.jp(j);
      const int jm_u = channel_ && j == 0 ? 0 : jm;
      const int jp_u = channel_ && j == ny - 1 ? j : jp;
      const bool wall_v = channel_ && j == 0;
      for (int i = 0; i < nx; ++i) {
        const int im = U.im(i);
        const int ip = U.ip(i);
        const T four = T(4);
        lap_u_(i, j) = U(ip, j) + U(im, j) + U(i, jp_u) + U(i, jm_u) -
                       four * U(i, j);
        lap_v_(i, j) = wall_v ? T{}
                              : V(ip, j) + V(im, j) + V(i, jp) + V(i, jm) -
                                    four * V(i, j);
      }
    }
  }

  // Pass 3: u-momentum increment.
  void pass_u_momentum(const state<T>& st, tendencies<T>& out, int j0,
                       int j1) {
    const int nx = st.nx();
    const int ny = st.ny();
    const auto& U = st.u;
    const auto& V = st.v;
    const auto& H = st.eta;
    const coefficients<T>& c = coeffs_;
    for (int j = j0; j < j1; ++j) {
      const int jp = U.jp(j);
      const int jm = channel_ && j == 0 ? 0 : U.jm(j);
      const int jp_u = channel_ && j == ny - 1 ? j : jp;
      const T dtf = dt_cor_u_[static_cast<std::size_t>(j)];
      const T wind = wind_u_[static_cast<std::size_t>(j)];
      for (int i = 0; i < nx; ++i) {
        const int im = U.im(i);
        const int ip = U.ip(i);
        // v averaged to the u-point; vorticity averaged to the u-point.
        const T vbar = c.quarter *
                       (V(im, j) + V(i, j) + V(im, jp) + V(i, jp));
        // De-scale the vorticity factor (exact) before the product so
        // zbar*vbar carries scale s, not s^2.
        const T zbar = c.inv_s * (c.half * (zeta_(i, j) + zeta_(i, jp)));
        const T biharm = lap_u_(ip, j) + lap_u_(im, j) + lap_u_(i, jp_u) +
                         lap_u_(i, jm) - T(4) * lap_u_(i, j);
        out.du(i, j) = dtf * vbar                        // linear Coriolis
                       + c.dtdx * (zbar * vbar)          // vorticity advection
                       - c.g_dtdx * (H(i, j) - H(im, j)) // pressure gradient
                       - c.dtdx * (ke_(i, j) - ke_(im, j))  // KE gradient
                       + wind                             // wind stress
                       - c.dt_drag * U(i, j)              // bottom drag
                       - c.dt_visc * biharm;              // biharmonic
      }
    }
  }

  // Pass 4: v-momentum increment. In the channel the j = 0 row IS
  // the wall (and, via the wrap, the north wall too): no flow ever.
  void pass_v_momentum(const state<T>& st, tendencies<T>& out, int j0,
                       int j1) {
    const int nx = st.nx();
    const auto& U = st.u;
    const auto& V = st.v;
    const auto& H = st.eta;
    const coefficients<T>& c = coeffs_;
    for (int j = j0; j < j1; ++j) {
      if (channel_ && j == 0) {
        for (int i = 0; i < nx; ++i) out.dv(i, j) = T{};
        continue;
      }
      const int jm = V.jm(j);
      const int jp = V.jp(j);
      const T dtf = dt_cor_v_[static_cast<std::size_t>(j)];
      for (int i = 0; i < nx; ++i) {
        const int im = V.im(i);
        const int ip = V.ip(i);
        const T ubar = c.quarter *
                       (U(i, jm) + U(i, j) + U(ip, jm) + U(ip, j));
        const T zbar = c.inv_s * (c.half * (zeta_(i, j) + zeta_(ip, j)));
        const T biharm = lap_v_(ip, j) + lap_v_(im, j) + lap_v_(i, jp) +
                         lap_v_(i, jm) - T(4) * lap_v_(i, j);
        out.dv(i, j) = -dtf * ubar
                       - c.dtdx * (zbar * ubar)
                       - c.g_dtdy * (H(i, j) - H(i, jm))
                       - c.dtdy * (ke_(i, j) - ke_(i, jm))
                       - c.dt_drag * V(i, j)
                       - c.dt_visc * biharm;
      }
    }
  }

  // Pass 5: continuity. Linear part with h0, nonlinear flux with the
  // scaled surface displacement (one exact /s via the coefficient).
  void pass_continuity(const state<T>& st, tendencies<T>& out, int j0,
                       int j1) {
    const int nx = st.nx();
    const auto& U = st.u;
    const auto& V = st.v;
    const auto& H = st.eta;
    const coefficients<T>& c = coeffs_;
    for (int j = j0; j < j1; ++j) {
      const int jm = H.jm(j);
      const int jp = H.jp(j);
      for (int i = 0; i < nx; ++i) {
        const int im = H.im(i);
        const int ip = H.ip(i);
        const T div =
            c.h0_dtdx * (U(ip, j) - U(i, j)) +
            c.h0_dtdy * (V(i, jp) - V(i, j));
        // Fluxes u*eta at faces: de-scale the interpolated eta (exact)
        // so U * etabar carries scale s, not s^2.
        const T fx_e = U(ip, j) * (c.inv_s * (c.half * (H(i, j) + H(ip, j))));
        const T fx_w = U(i, j) * (c.inv_s * (c.half * (H(im, j) + H(i, j))));
        const T fy_n = V(i, jp) * (c.inv_s * (c.half * (H(i, j) + H(i, jp))));
        const T fy_s = V(i, j) * (c.inv_s * (c.half * (H(i, jm) + H(i, j))));
        out.deta(i, j) = -div - c.dtdx * (fx_e - fx_w) -
                         c.dtdy * (fy_n - fy_s);
      }
    }
  }

  thread_pool* pool_ = nullptr;
  pass_ctx ctx_;
  coefficients<T> coeffs_;
  bool channel_ = false;
  std::vector<T> dt_cor_u_, dt_cor_v_, wind_u_;
  field2d<T> zeta_, ke_, lap_u_, lap_v_;
};

}  // namespace tfx::swm
