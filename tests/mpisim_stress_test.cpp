// Randomized stress tests of the message-passing runtime: seeded
// pseudo-random communication patterns whose outcome is checkable
// against a sequential oracle. These hunt for matching, ordering, and
// lifetime bugs that the structured collective tests cannot reach.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "core/rng.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/runtime.hpp"

using namespace tfx;
using namespace tfx::mpisim;

TEST(Stress, RandomizedManyToManyTotalsMatch) {
  // Every rank sends a random number of random-valued messages to
  // random destinations (plan derived from the seed, so every rank can
  // compute everyone's plan); each rank then receives exactly the
  // messages addressed to it and checks the total against the oracle.
  const int p = 6;
  const std::uint64_t seed = 987;

  // The deterministic plan: plan[src] = list of (dst, value).
  std::vector<std::vector<std::pair<int, long long>>> plan(
      static_cast<std::size_t>(p));
  xoshiro256 rng(seed);
  for (int src = 0; src < p; ++src) {
    const auto count = rng.bounded(40) + 1;
    for (std::uint64_t k = 0; k < count; ++k) {
      const int dst = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(p)));
      const auto value = static_cast<long long>(rng.bounded(1000));
      plan[static_cast<std::size_t>(src)].emplace_back(dst, value);
    }
  }
  // Oracle: per-destination totals and counts.
  std::vector<long long> expect_total(static_cast<std::size_t>(p), 0);
  std::vector<int> expect_count(static_cast<std::size_t>(p), 0);
  for (const auto& msgs : plan) {
    for (const auto& [dst, value] : msgs) {
      expect_total[static_cast<std::size_t>(dst)] += value;
      ++expect_count[static_cast<std::size_t>(dst)];
    }
  }

  world w(p);
  w.run([&](communicator& comm) {
    const int r = comm.rank();
    for (const auto& [dst, value] : plan[static_cast<std::size_t>(r)]) {
      comm.send_value(value, dst, 3);
    }
    long long total = 0;
    for (int k = 0; k < expect_count[static_cast<std::size_t>(r)]; ++k) {
      total += comm.recv_value<long long>(any_source, 3);
    }
    EXPECT_EQ(total, expect_total[static_cast<std::size_t>(r)]) << "rank " << r;
  });
}

TEST(Stress, PerSourceOrderSurvivesInterleaving) {
  // Two senders interleave many tagged messages at one receiver, which
  // drains them per-source: FIFO order per (source, tag) must hold
  // regardless of the thread schedule.
  const int rounds = 200;
  world w(3);
  w.run([&](communicator& comm) {
    if (comm.rank() != 2) {
      for (int k = 0; k < rounds; ++k) {
        comm.send_value(comm.rank() * 100000 + k, 2, 1);
      }
    } else {
      int next0 = 0, next1 = 0;
      for (int k = 0; k < 2 * rounds; ++k) {
        int v = 0;
        const auto st = comm.recv_bytes(
            std::as_writable_bytes(std::span<int>(&v, 1)), any_source, 1);
        if (st.source == 0) {
          EXPECT_EQ(v, next0++);
        } else {
          EXPECT_EQ(v, 100000 + next1++);
        }
      }
      EXPECT_EQ(next0, rounds);
      EXPECT_EQ(next1, rounds);
    }
  });
}

TEST(Stress, RepeatedCollectiveRoundsStayConsistent) {
  // Alternate different collectives many times on one world: tag-space
  // reuse across invocations must never cross-match.
  const int p = 5;
  world w(p);
  w.run([&](communicator& comm) {
    for (int round = 0; round < 50; ++round) {
      std::vector<double> in{static_cast<double>(comm.rank() + round)};
      std::vector<double> sum{0.0};
      allreduce(comm, std::span<const double>(in), std::span<double>(sum),
                ops::sum{}, coll_algorithm::recursive_doubling);
      const double expect = p * round + p * (p - 1) / 2.0;
      ASSERT_EQ(sum[0], expect) << "round " << round;

      std::vector<double> data{comm.rank() == round % p ? 7.0 : 0.0};
      bcast(comm, std::span<double>(data), round % p);
      ASSERT_EQ(data[0], 7.0) << "round " << round;

      barrier(comm);
    }
  });
}

TEST(Stress, LargePayloadIntegrity) {
  // A 4-MiB message must arrive byte-exact (rendezvous path).
  world w(2);
  const std::size_t n = 4 * 1024 * 1024 / 8;
  w.run([&](communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> data(n);
      std::iota(data.begin(), data.end(), 0x1234);
      comm.send(std::span<const std::uint64_t>(data), 1, 0);
    } else {
      std::vector<std::uint64_t> got(n);
      comm.recv(std::span<std::uint64_t>(got), 0, 0);
      bool ok = true;
      for (std::size_t i = 0; i < n; ++i) ok = ok && got[i] == 0x1234 + i;
      EXPECT_TRUE(ok);
    }
  });
}

TEST(Stress, ManyWorldsSequentially) {
  // Churn world construction/destruction: no leaked threads or state.
  for (int round = 0; round < 20; ++round) {
    world w(4);
    w.run([&](communicator& comm) {
      std::vector<int> in{comm.rank()}, out{0};
      allreduce(comm, std::span<const int>(in), std::span<int>(out),
                ops::max{}, coll_algorithm::recursive_doubling);
      EXPECT_EQ(out[0], 3);
    });
  }
}
