// Example: a realistic reduced-precision production workflow,
// assembling most of the library:
//
//   1. spin the model up at Float64,
//   2. checkpoint,
//   3. analyse the dynamic range with a short Sherlog32 continuation,
//   4. restart the production run at Float16 (scaled, FZ16,
//      compensated) from the checkpoint,
//   5. carry a passive tracer through the Float16 flow,
//   6. verify the physics: spectra and tracer conservation vs a
//      Float64 control run.
//
// This is the § III-B development story of the paper stretched into
// the deployment shape an operational centre would use.

#include <cmath>
#include <cstdio>

#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/checkpoint.hpp"
#include "swm/model.hpp"
#include "swm/tracer.hpp"

using namespace tfx;
using namespace tfx::swm;
using tfx::fp::float16;

int main() {
  swm_params p;
  p.nx = 64;
  p.ny = 32;
  const int spinup_steps = 80;
  const int production_steps = 60;
  const char* ckpt = "climate_spinup.ckpt";

  // -- 1. Float64 spin-up ---------------------------------------------
  model<double> spinup(p);
  spinup.seed_random_eddies(77, 0.5);
  spinup.run(spinup_steps);
  std::printf("spin-up:   %d steps at Float64, energy %.3e\n", spinup_steps,
              spinup.diag().energy);

  // -- 2. checkpoint ----------------------------------------------------
  checkpoint_info info{p.nx, p.ny,
                       static_cast<std::uint64_t>(spinup.steps_taken()), 1.0};
  if (!save_checkpoint(spinup.prognostic(), info, ckpt)) {
    std::fprintf(stderr, "cannot write %s\n", ckpt);
    return 1;
  }
  std::printf("checkpoint: wrote %s\n", ckpt);

  // -- 3. range analysis on a Sherlog32 continuation -------------------
  fp::sherlog_sink().reset();
  {
    model<fp::sherlog32> probe(p);
    probe.restore(convert_state<fp::sherlog32>(spinup.prognostic()),
                  spinup.steps_taken());
    probe.run(10);
  }
  const auto choice =
      fp::choose_scaling(fp::sherlog_sink(), fp::float16_range);
  std::printf("analysis:  exponents [%d, %d] -> s = 2^%d\n",
              fp::sherlog_sink().min_observed(),
              fp::sherlog_sink().max_observed(), choice.log2_scale);

  // -- 4. Float16 production restart ------------------------------------
  const auto loaded = load_checkpoint<double>(ckpt);
  if (!loaded) {
    std::fprintf(stderr, "cannot read %s\n", ckpt);
    return 1;
  }
  swm_params p16 = p;
  p16.log2_scale = choice.log2_scale;
  state<double> scaled = loaded->first;
  const double s = std::ldexp(1.0, p16.log2_scale);
  for (auto* f : {&scaled.u, &scaled.v, &scaled.eta}) {
    for (auto& v : f->flat()) v *= s;
  }
  fp::ftz_guard ftz(fp::ftz_mode::flush);
  model<float16> prod(p16, integration_scheme::compensated);
  prod.restore(convert_state<float16>(scaled),
               static_cast<int>(loaded->second.steps_taken));

  // Float64 control continuing from the same checkpoint.
  model<double> control(p);
  control.restore(loaded->first,
                  static_cast<int>(loaded->second.steps_taken));

  // -- 5. tracer through the Float16 flow --------------------------------
  const auto coeffs16 = coefficients<float16>::make(p16);
  auto tracer = gaussian_blob<float16>(p16, 32, 16, 4.0);
  field2d<float16> tracer_next(p.nx, p.ny);
  const double tracer_before = tracer_total(tracer);

  for (int step = 0; step < production_steps; ++step) {
    prod.step();
    control.step();
    advect_tracer_upwind(prod.prognostic(), coeffs16, tracer, tracer_next);
    std::swap(tracer, tracer_next);
  }
  std::printf("production: %d steps at Float16 (+tracer), energy %.3e\n",
              production_steps, prod.diag().energy);

  // -- 6. verification -----------------------------------------------------
  const auto z16 = relative_vorticity(prod.unscaled(), p16);
  const auto z64 = relative_vorticity(control.unscaled(), p);
  std::printf("\nvorticity corr(F16, F64):   %.5f\n", correlation(z64, z16));
  std::printf("relative RMSE:              %.5f\n",
              rmse(z64, z16) / rms(z64));

  const auto s16 = zonal_power_spectrum(z16);
  const auto s64 = zonal_power_spectrum(z64);
  double worst = 0;
  for (std::size_t k = 1; k < s16.size(); ++k) {
    if (s64[k] > 1e-12) {
      worst = std::max(worst, std::abs(s16[k] / s64[k] - 1.0));
    }
  }
  std::printf("spectral energy per mode:   within %.2f%% of Float64\n",
              100.0 * worst);

  const double drift =
      std::abs(tracer_total(tracer) - tracer_before) / tracer_before;
  const auto [qlo, qhi] = tracer_range(tracer);
  std::printf("tracer mass drift:          %.3e (roundoff-level)\n", drift);
  std::printf("tracer range:               [%.4f, %.4f] (monotone: no "
              "over/undershoot)\n",
              qlo, qhi);
  return 0;
}
