#pragma once

/// \file parallel.hpp
/// Thread-parallel variants of the Level-1 kernels.
///
/// Same type-flexibility as generic.hpp, partitioned over a
/// thread_pool with *deterministic* static blocks: the axpy result is
/// bit-identical to the serial kernel (disjoint writes), and the dot
/// reduction combines per-block partials in a fixed order so it is
/// reproducible for a given pool size (the classic HPC trade-off: the
/// result may differ from the serial sum by reassociation, but never
/// run-to-run).

#include <span>

#include "core/threadpool.hpp"
#include "kernels/gemm.hpp"
#include "kernels/generic.hpp"

namespace tfx::kernels {

/// y <- a*x + y over the pool; bit-identical to the serial axpy.
template <typename T>
void axpy_parallel(thread_pool& pool, T a, std::span<const T> x,
                   std::span<T> y) {
  TFX_EXPECTS(x.size() == y.size());
  pool.parallel_for(x.size(), [&](std::size_t lo, std::size_t hi) {
    axpy(a, x.subspan(lo, hi - lo), y.subspan(lo, hi - lo));
  });
}

namespace detail {

/// Shared skeleton of the parallel reductions: per-block partials
/// (serial kernel each, placed by worker index), combined in block
/// order on the calling thread - reproducible for a given pool size.
/// `partials` may be caller-provided; by default the pool's reusable
/// scratch is used, so the reduction allocates nothing after the
/// pool's first use (the measurement-path requirement).
template <typename T, typename BlockFn>
[[nodiscard]] T reduce_blocks(thread_pool& pool, std::size_t n,
                              std::span<T> partials, const BlockFn& block) {
  std::span<T> part =
      partials.empty() ? pool.scratch<T>(static_cast<std::size_t>(pool.size()))
                       : partials;
  TFX_EXPECTS(part.size() >= static_cast<std::size_t>(pool.size()));
  for (int w = 0; w < pool.size(); ++w) part[static_cast<std::size_t>(w)] = T{};
  pool.parallel_for_indexed(n, [&](int w, std::size_t lo, std::size_t hi) {
    part[static_cast<std::size_t>(w)] = block(lo, hi);
  });
  T acc{};
  for (int w = 0; w < pool.size(); ++w) acc += part[static_cast<std::size_t>(w)];
  return acc;
}

}  // namespace detail

/// Parallel dot. The optional `partials` span (>= pool.size()) lets a
/// caller own the scratch; otherwise pool-owned scratch is reused.
template <typename T>
[[nodiscard]] T dot_parallel(thread_pool& pool, std::span<const T> x,
                             std::span<const T> y,
                             std::span<T> partials = {}) {
  TFX_EXPECTS(x.size() == y.size());
  return detail::reduce_blocks<T>(
      pool, x.size(), partials, [&](std::size_t lo, std::size_t hi) {
        return dot(x.subspan(lo, hi - lo), y.subspan(lo, hi - lo));
      });
}

/// Parallel asum (sum of |x_i|), same partial-combination contract as
/// dot_parallel.
template <typename T>
[[nodiscard]] T asum_parallel(thread_pool& pool, std::span<const T> x,
                              std::span<T> partials = {}) {
  return detail::reduce_blocks<T>(
      pool, x.size(), partials,
      [&](std::size_t lo, std::size_t hi) { return asum(x.subspan(lo, hi - lo)); });
}

/// Parallel scal (disjoint writes: bit-identical to serial).
template <typename T>
void scal_parallel(thread_pool& pool, T a, std::span<T> x) {
  pool.parallel_for(x.size(), [&](std::size_t lo, std::size_t hi) {
    scal(a, x.subspan(lo, hi - lo));
  });
}

/// Parallel blocked GEMM: C-rows are partitioned over the workers
/// (disjoint writes: bit-identical to the serial blocked kernel with
/// the same block size, because each row's k-loop order is unchanged).
template <typename T>
void gemm_parallel(thread_pool& pool, T alpha, matrix_view<const T> a,
                   matrix_view<const T> b, T beta, matrix_view<T> c,
                   std::size_t block = 64) {
  TFX_EXPECTS(a.cols() == b.rows());
  TFX_EXPECTS(c.rows() == a.rows() && c.cols() == b.cols());
  using tfx::fp::muladd;
  using tfx::kernels::muladd;
  pool.parallel_for(c.rows(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t j = 0; j < c.cols(); ++j) c(i, j) = beta * c(i, j);
    }
    const std::size_t n = c.cols(), kk = a.cols();
    for (std::size_t k0 = 0; k0 < kk; k0 += block) {
      const std::size_t k1 = std::min(k0 + block, kk);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(j0 + block, n);
        for (std::size_t i = r0; i < r1; ++i) {
          for (std::size_t k = k0; k < k1; ++k) {
            const T aik = alpha * a(i, k);
            for (std::size_t j = j0; j < j1; ++j) {
              c(i, j) = muladd(aik, b(k, j), c(i, j));
            }
          }
        }
      }
    }
  });
}

/// Parallel triad (BabelStream's headline kernel).
template <typename T>
void triad_parallel(thread_pool& pool, T s, std::span<const T> b,
                    std::span<const T> c, std::span<T> a) {
  TFX_EXPECTS(a.size() == b.size() && b.size() == c.size());
  pool.parallel_for(a.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      a[i] = b[i] + s * c[i];
    }
  });
}

}  // namespace tfx::kernels
