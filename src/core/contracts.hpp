#pragma once

/// \file contracts.hpp
/// Lightweight precondition/assertion support in the spirit of the
/// C++ Core Guidelines' `Expects`/`Ensures`. Violations abort with a
/// message; checks stay on in release builds because every caller of
/// this library is a benchmark or test where correctness beats the
/// nanoseconds saved.

#include <cstdio>
#include <cstdlib>

namespace tfx::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "tfx: %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace tfx::detail

#define TFX_EXPECTS(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : ::tfx::detail::contract_violation("precondition", #cond,        \
                                              __FILE__, __LINE__))

#define TFX_ENSURES(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : ::tfx::detail::contract_violation("postcondition", #cond,       \
                                              __FILE__, __LINE__))

#define TFX_ASSERT(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                            \
          : ::tfx::detail::contract_violation("assertion", #cond, __FILE__, \
                                              __LINE__))
