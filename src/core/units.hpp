#pragma once

/// \file units.hpp
/// Formatting of byte sizes, times, and rates the way the paper's
/// figures label their axes (KiB/MiB, µs, GFLOPS, GB/s).

#include <cstdint>
#include <string>

namespace tfx {

/// "64 B", "4 KiB", "1 MiB", ... (binary prefixes, exact when possible).
std::string format_bytes(std::uint64_t bytes);

/// "123 ns", "4.56 µs", "7.89 ms", "1.23 s".
std::string format_seconds(double seconds);

/// "12.34" with fixed precision; helper for table cells.
std::string format_fixed(double value, int digits = 2);

/// GFLOPS from a flop count and elapsed seconds.
constexpr double gflops(double flops, double seconds) {
  return flops / seconds / 1e9;
}

/// GB/s (decimal gigabytes, as IMB reports) from bytes and seconds.
constexpr double gb_per_s(double bytes, double seconds) {
  return bytes / seconds / 1e9;
}

/// MiB/s (binary, as some IMB variants report).
constexpr double mib_per_s(double bytes, double seconds) {
  return bytes / seconds / (1024.0 * 1024.0);
}

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

}  // namespace tfx
