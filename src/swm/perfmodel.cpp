#include "swm/perfmodel.hpp"

#include <algorithm>
#include <vector>

#include "arch/roofline.hpp"
#include "core/contracts.hpp"

namespace tfx::swm {

precision_config config_float64() { return {8, 8, false, "Float64"}; }
precision_config config_float32() { return {4, 4, false, "Float32"}; }
precision_config config_float16() { return {2, 2, true, "Float16"}; }
precision_config config_float16_32() { return {2, 4, false, "Float16/32"}; }

namespace {

// Array sweeps per cell per RK4 step, matching the implementation in
// rhs.hpp / model.hpp pass for pass:
//   4 RHS evaluations x (19 reads + 7 writes) of T
//   3 stage combinations x 3 fields x (2 Tprog reads/writes + 1 T read)
//   increment reduction: 3 fields x 4 T reads, plus - UNFUSED ONLY -
//   1 Tprog increment-array write per field and its re-read in the
//   apply sweep. The fused pipeline (update_pipeline::fused) forms the
//   increment in registers, so the apply touches only y (and the Kahan
//   arrays when compensated): 2 Tprog per field instead of 4, 4
//   instead of 6 compensated.
//   mixed precision: 4 down-casts x 3 fields x (Tprog read + T write)
constexpr double rhs_sweeps_T = 4.0 * (19.0 + 7.0);
constexpr double stage_sweeps_Tprog = 3.0 * 3.0 * 2.0;
constexpr double stage_sweeps_T = 3.0 * 3.0 * 1.0;
constexpr double inc_sweeps_T = 3.0 * 4.0;
constexpr double inc_sweeps_Tprog_unfused = 3.0 * 1.0;
constexpr double update_sweeps_plain_unfused = 3.0 * 3.0;
constexpr double update_sweeps_comp_unfused = 3.0 * 5.0;
constexpr double update_sweeps_plain_fused = 3.0 * 2.0;
constexpr double update_sweeps_comp_fused = 3.0 * 4.0;
constexpr double cast_sweeps = 4.0 * 3.0;  // each: 1 Tprog + 1 T

// Element-wise update LOOPS per step (the dispatch/fusion metric the
// ablation reports; docs/MODEL.md "Per-step memory traffic"):
//   unfused: 9 stage combines + 3 rk4_increment + 3 apply (+12 per-
//   field down-cast loops when mixed);
//   fused:   3 three-field combines + 1 three-field apply (+4 fused
//   down-cast loops when mixed).
constexpr std::uint64_t update_loops_unfused = 15;
constexpr std::uint64_t update_loops_fused = 4;
constexpr std::uint64_t cast_loops_unfused = 12;
constexpr std::uint64_t cast_loops_fused = 4;

/// Arithmetic per cell per step (4 RHS evaluations of the 5-pass
/// stencil plus the RK4 combination), counted from the source.
constexpr double flops_per_cell = 440.0;

/// Fraction of peak SIMD FMA throughput a real stencil loop sustains.
constexpr double stencil_efficiency = 0.8;

/// Fixed per-step cost independent of the grid (loop launches, scalar
/// sections, halo bookkeeping) - this is what collapses the speedups
/// toward 1x at small grids in Fig. 5.
constexpr double fixed_step_overhead_s = 40e-6;

/// Live arrays during a step (3 prognostic + compensation + stage +
/// 4 tendency sets + RHS scratch; the unfused pipeline adds the 3
/// increment arrays), for the working-set estimate that selects the
/// bandwidth regime.
constexpr double live_arrays_T = 4.0 * 3.0 + 4.0;  // tendencies + scratch
constexpr double live_arrays_Tprog = 3.0 + 3.0;    // prog + stage

}  // namespace

step_cost predict_step(const arch::a64fx_params& machine, int nx, int ny,
                       const precision_config& config) {
  step_cost out;
  const double cells = static_cast<double>(nx) * static_cast<double>(ny);
  const auto e = static_cast<double>(config.elem_bytes);
  const auto p = static_cast<double>(config.prog_elem_bytes);

  const double inc_Tprog = config.fused ? 0.0 : inc_sweeps_Tprog_unfused;
  const double apply_Tprog =
      config.fused
          ? (config.compensated ? update_sweeps_comp_fused
                                : update_sweeps_plain_fused)
          : (config.compensated ? update_sweeps_comp_unfused
                                : update_sweeps_plain_unfused);

  double update_bytes_per_cell =
      (stage_sweeps_T + inc_sweeps_T) * e +
      (stage_sweeps_Tprog + inc_Tprog + apply_Tprog) * p;
  if (config.mixed()) update_bytes_per_cell += cast_sweeps * (e + p);
  const double bytes_per_cell = rhs_sweeps_T * e + update_bytes_per_cell;

  double ws_per_cell = live_arrays_T * e + live_arrays_Tprog * p;
  if (!config.fused) ws_per_cell += 3.0 * p;  // increment arrays
  if (config.compensated) ws_per_cell += 3.0 * p;

  out.update_sweeps = config.fused ? update_loops_fused : update_loops_unfused;
  if (config.mixed()) {
    out.update_sweeps += config.fused ? cast_loops_fused : cast_loops_unfused;
  }
  out.update_bytes = static_cast<std::uint64_t>(update_bytes_per_cell * cells);
  out.bytes_moved = static_cast<std::uint64_t>(bytes_per_cell * cells);
  out.working_set_bytes = static_cast<std::uint64_t>(ws_per_cell * cells);

  // ShallowWaters runs occupy a whole CMG, so one process sees only its
  // 1/12 share of the 8-MiB L2 (the Fig. 1 kernel benchmarks, by
  // contrast, are single-core and get the full L2). Without this the
  // model grows an L2-residency bump in the Float16 curve that the
  // paper's Fig. 5 does not show.
  arch::a64fx_params shared = machine;
  shared.l2.size_bytes = machine.l2.size_bytes / 12;
  const double bw_gbs =
      arch::effective_bandwidth_gbs(shared, out.working_set_bytes);
  out.memory_seconds = static_cast<double>(out.bytes_moved) / (bw_gbs * 1e9);

  // Compute: vectorized at the element width (the paper's § III-B runs
  // enable hardware Float16, so all three widths get full SVE lanes).
  double flops = flops_per_cell * cells;
  if (config.compensated) flops *= 1.05;  // Kahan arithmetic
  const double gflops = machine.peak_gflops(config.elem_bytes) *
                        stencil_efficiency;
  out.compute_seconds = flops / (gflops * 1e9);

  out.overhead_seconds = fixed_step_overhead_s;
  out.seconds = std::max(out.memory_seconds, out.compute_seconds) +
                out.overhead_seconds;
  return out;
}

double speedup_vs_float64(const arch::a64fx_params& machine, int nx, int ny,
                          const precision_config& config) {
  const double base = predict_step(machine, nx, ny, config_float64()).seconds;
  return base / predict_step(machine, nx, ny, config).seconds;
}

namespace {

/// Walk the up/down halo messages of one RK4 step, calling
/// `message(bytes, up)` for each send the rank posts - the single
/// source of message structure for both predict_halo overloads.
///
/// Per RK4 stage: a 3-field prognostic phase and a 4-field derived
/// phase, each shipping one up and one down message per rank -
/// packed under aggregation, per-field otherwise. Overlap changes
/// *when* the time is paid, not how much traffic exists, so the
/// aggregated modes share one prediction.
template <typename Fn>
void for_each_halo_message(int nx, std::size_t elem_bytes, halo_mode mode,
                           Fn&& message) {
  const std::size_t row = static_cast<std::size_t>(nx) * elem_bytes;
  constexpr std::size_t phase_fields[2] = {3, 4};
  for (int stage = 0; stage < 4; ++stage) {
    for (const std::size_t fields : phase_fields) {
      if (mode == halo_mode::per_field) {
        for (std::size_t f = 0; f < fields; ++f) {
          message(row, true);   // up
          message(row, false);  // down
        }
      } else {
        message(fields * row, true);
        message(fields * row, false);
      }
    }
  }
}

}  // namespace

halo_cost predict_halo(const mpisim::tofud_params& net, int nx,
                       std::size_t elem_bytes, int ranks, halo_mode mode) {
  halo_cost out;
  if (ranks <= 1) return out;  // the periodic wrap is local: no traffic
  for_each_halo_message(nx, elem_bytes, mode, [&](std::size_t bytes, bool) {
    out.messages += 1;
    out.bytes += bytes;
    double latency = net.alpha_s + net.per_hop_s;
    if (bytes > net.eager_threshold) latency += net.rendezvous_extra_s;
    out.seconds += net.send_overhead_s + net.recv_overhead_s + latency +
                   static_cast<double>(bytes) / net.link_bandwidth_Bps;
  });
  out.contended_seconds = out.seconds;  // no placement: assume no links shared
  return out;
}

halo_cost predict_halo(const mpisim::tofud_params& net,
                       const mpisim::torus_placement& place, int rank,
                       int nx, std::size_t elem_bytes, int ranks,
                       halo_mode mode) {
  halo_cost out;
  TFX_EXPECTS(ranks <= place.rank_count());
  TFX_EXPECTS(rank >= 0 && rank < ranks);
  if (ranks <= 1) return out;

  // Flow census: how many (rank, direction) halo flows cross each
  // directed link. Every rank sends up and down each phase; the census
  // is placement geometry only, so one pass covers all phases.
  std::vector<std::uint32_t> flows(
      static_cast<std::size_t>(place.link_count()), 0);
  for (int s = 0; s < ranks; ++s) {
    const int node_s = place.node_of(s);
    for (const int peer : {(s + 1) % ranks, (s - 1 + ranks) % ranks}) {
      const int node_p = place.node_of(peer);
      if (node_s == node_p) continue;
      place.for_each_route_link(node_s, node_p,
                                [&](int link) { ++flows[static_cast<std::size_t>(link)]; });
    }
  }

  const int node = place.node_of(rank);
  const int up = (rank + 1) % ranks;
  const int down = (rank - 1 + ranks) % ranks;
  for_each_halo_message(nx, elem_bytes, mode, [&](std::size_t bytes,
                                                  bool is_up) {
    out.messages += 1;
    out.bytes += bytes;
    const int peer = is_up ? up : down;
    const int node_peer = place.node_of(peer);
    const double overheads = net.send_overhead_s + net.recv_overhead_s;
    const double rendezvous =
        bytes > net.eager_threshold ? net.rendezvous_extra_s : 0.0;
    if (node == node_peer) {
      const double t = overheads + net.intra_alpha_s + rendezvous +
                       static_cast<double>(bytes) / net.intra_bandwidth_Bps;
      out.seconds += t;
      out.contended_seconds += t;  // shared memory: no links to share
      return;
    }
    const int h = place.hops(node, node_peer);
    const double ser = static_cast<double>(bytes) / net.link_bandwidth_Bps;
    const double base = overheads + net.alpha_s +
                        static_cast<double>(h) * net.per_hop_s + rendezvous +
                        ser;
    out.seconds += base;
    // Contended: the message re-serializes on each of its h links
    // (store-and-forward) and queues one serialization behind every
    // other flow on the hottest link of its route.
    std::uint32_t fmax = 0;
    place.for_each_route_link(node, node_peer, [&](int link) {
      fmax = std::max(fmax, flows[static_cast<std::size_t>(link)]);
    });
    out.max_link_flows = std::max<std::uint64_t>(out.max_link_flows, fmax);
    const double queue = fmax > 0 ? (fmax - 1) * ser : 0.0;
    out.link_wait_seconds += queue;
    out.contended_seconds += base + static_cast<double>(h) * ser + queue;
  });
  return out;
}

double predict_time(const arch::a64fx_params& machine, int nx, int ny,
                    const precision_config& config, int steps, int ranks,
                    const mpisim::tofud_params& net) {
  double per_step = predict_step(machine, nx, ny, config).seconds;
  if (ranks > 1) {
    per_step += predict_halo(net, nx, config.prog_elem_bytes, ranks,
                             halo_mode::aggregated_overlap)
                    .seconds;
  }
  return per_step * steps;
}

}  // namespace tfx::swm
