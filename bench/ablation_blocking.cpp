// Ablation (design-choice): what cache blocking buys a Level-3 kernel
// on the modeled A64FX - the locality story behind the tuned libraries
// of Fig. 1, quantified with the library's own trace-driven cache
// simulator (no analytic hand-waving: these are simulated LRU caches
// with the A64FX geometry).

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "kernels/gemm.hpp"

using namespace tfx;
using namespace tfx::kernels;

namespace {

const char* variant_name(gemm_variant v) {
  switch (v) {
    case gemm_variant::naive: return "naive (ijk)";
    case gemm_variant::reordered: return "reordered (ikj)";
    case gemm_variant::blocked: return "blocked 32";
  }
  return "?";
}

}  // namespace

int main() {
  std::puts("Ablation: GEMM loop structure vs simulated A64FX caches");
  std::puts("(128x128 doubles; each matrix 128 KiB: 2x the L1, well");
  std::puts("inside the 8-MiB L2).\n");

  const std::size_t n = 128;
  table t({"variant", "L1 accesses", "L1 miss rate", "L2 miss rate",
           "bytes from L2", "bytes from HBM"});
  for (const auto v : {gemm_variant::naive, gemm_variant::reordered,
                       gemm_variant::blocked}) {
    const auto sim = trace_gemm(v, n, 8, 32);
    const auto traffic = sim.traffic();
    char l1rate[32], l2rate[32];
    std::snprintf(l1rate, sizeof l1rate, "%.2f%%",
                  100.0 * sim.l1().stats().miss_rate());
    std::snprintf(l2rate, sizeof l2rate, "%.2f%%",
                  100.0 * sim.l2().stats().miss_rate());
    t.add_row({variant_name(v), std::to_string(sim.l1().stats().accesses),
               l1rate, l2rate, format_bytes(traffic.l2_bytes),
               format_bytes(traffic.mem_bytes)});
  }
  t.print(std::cout);

  std::puts("\nBlock-size sweep (blocked variant, L1 miss rate):");
  table t2({"block", "working set (3 blocks)", "L1 miss rate"});
  for (const std::size_t block : {8u, 16u, 32u, 48u, 64u, 128u}) {
    const auto sim = trace_gemm(gemm_variant::blocked, n, 8, block);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.3f%%",
                  100.0 * sim.l1().stats().miss_rate());
    t2.add_row({std::to_string(block),
                format_bytes(3 * block * block * 8), rate});
  }
  t2.print(std::cout);

  std::puts("\nThe sweet spot sits where three blocks fit the 64-KiB L1 -");
  std::puts("the same arithmetic every BLAS tuning guide walks through.");
  return 0;
}
