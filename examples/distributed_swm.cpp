// Example: the distributed shallow-water model - ShallowWaters physics
// over the mpisim fabric, the combination a production weather model
// on Fugaku would be.
//
// The ranks decompose the grid into y-slabs and exchange halo rows
// every RK4 stage. The *transport* underneath is selectable
// (docs/TRANSPORTS.md): the same binary runs all ranks as threads over
// the simulated network, over in-process shared-memory channels, over
// real loopback TCP - or as one process per rank:
//
//   distributed_swm                               # classic 8-rank demo
//   distributed_swm --transport=shm --ranks=4
//   distributed_swm --transport=socket --ranks=4 --out=/tmp/sock
//   # separate processes, one per rank, agreeing on a coordinator port:
//   for r in 0 1 2 3; do
//     distributed_swm --transport=socket --ranks=4 --rank=$r \
//                     --port=47731 --out=/tmp/proc &
//   done; wait
//
// With --out=PREFIX every local rank writes its packed integration
// state (prognostic u,v,eta plus the Kahan compensation slabs - the
// exact bits needed to resume bit-identically) to PREFIX.rank<r>.
// Identical runs over different transports, or threads-vs-processes,
// produce byte-identical files; tests/mpisim_transport_test diffs
// them.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mpisim/runtime.hpp"
#include "mpisim/transport.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

struct options {
  mpisim::transport_options transport;
  int ranks = 8;
  int steps = 50;
  integration_scheme scheme = integration_scheme::standard;
  std::string out;  ///< packed-state file prefix (empty: don't write)
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--transport=simulated|shm|socket] [--ranks=N] [--steps=N]\n"
      "          [--scheme=standard|compensated] [--out=PREFIX]\n"
      "          [--rank=R --port=P [--host=H]]   # socket process mode\n",
      argv0);
  std::exit(2);
}

options parse_args(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string{} : arg.substr(eq + 1);
    if (key == "--transport") {
      opt.transport.kind = mpisim::transport_manager::parse(val);
    } else if (key == "--ranks") {
      opt.ranks = std::atoi(val.c_str());
    } else if (key == "--steps") {
      opt.steps = std::atoi(val.c_str());
    } else if (key == "--rank") {
      opt.transport.socket.rank = std::atoi(val.c_str());
    } else if (key == "--port") {
      opt.transport.socket.port = std::atoi(val.c_str());
    } else if (key == "--host") {
      opt.transport.socket.host = val;
    } else if (key == "--scheme") {
      if (val == "standard") {
        opt.scheme = integration_scheme::standard;
      } else if (val == "compensated") {
        opt.scheme = integration_scheme::compensated;
      } else {
        usage(argv[0]);
      }
    } else if (key == "--out") {
      opt.out = val;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.ranks < 1 || opt.steps < 1) usage(argv[0]);
  if (opt.transport.socket.rank >= 0 &&
      opt.transport.kind != mpisim::transport_kind::socket) {
    usage(argv[0]);  // process mode only exists on the socket transport
  }
  return opt;
}

void write_packed(const std::string& prefix, int rank,
                  const std::vector<double>& packed) {
  const std::string path = prefix + ".rank" + std::to_string(rank);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(packed.data(), sizeof(double), packed.size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const options opt = parse_args(argc, argv);

  swm_params p;
  p.nx = 64;
  p.ny = 32;

  // Seed once, serially, so every deployment of the run is
  // reproducible from the same initial state.
  model<double> seeder(p);
  seeder.seed_random_eddies(11, 0.5);
  const state<double> init = seeder.prognostic();

  // Ranks on the modeled torus: 2 ranks per node (the classic 8-rank
  // demo shape) when the count allows, else a line of 1-rank nodes.
  const mpisim::torus_placement place =
      opt.ranks % 2 == 0
          ? mpisim::torus_placement({opt.ranks / 2, 1, 1}, 2)
          : mpisim::torus_placement::line(opt.ranks);
  mpisim::world w(place, {}, opt.transport);
  const bool chatty = w.rank_is_local(0);

  state<double> gathered(p.nx, p.ny);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, p, opt.scheme);
    dm.set_from_global(init);
    dm.run(opt.steps);
    if (comm.rank() == 0) {
      std::printf("transport %s: rank 0 owns rows [%d, %d) of %d\n",
                  w.transport_name(), dm.global_j0(),
                  dm.global_j0() + dm.local_ny(), p.ny);
    }
    const double vmax = dm.global_max_speed();  // collective diagnostic
    if (comm.rank() == 0) {
      std::printf("global max speed after %d steps: %.6f m/s\n", opt.steps,
                  vmax);
    }
    if (!opt.out.empty()) {
      std::vector<double> packed(dm.packed_size());
      dm.pack_state(std::span<double>(packed));
      write_packed(opt.out, comm.rank(), packed);
    }
    auto global = dm.gather_global();
    if (comm.rank() == 0) gathered = global;
  });

  // Serial reference comparison - only where rank 0 (and its gathered
  // state) lives.
  if (chatty) {
    model<double> serial(p, opt.scheme);
    serial.prognostic() = init;
    serial.run(opt.steps);

    double max_diff = 0;
    for (std::size_t k = 0; k < gathered.eta.size(); ++k) {
      max_diff =
          std::max(max_diff, std::abs(gathered.eta.flat()[k] -
                                      serial.prognostic().eta.flat()[k]));
    }
    std::printf("serial max speed:                  %.6f m/s\n",
                serial.diag().max_speed);
    std::printf("max |eta_distributed - eta_serial| = %.3e (bit-equal: %s)\n",
                max_diff, max_diff == 0.0 ? "yes" : "no");

    std::puts("\nper-rank simulated communication time (TofuD model):");
    for (int r = 0; r < opt.ranks; ++r) {
      if (!w.rank_is_local(r)) continue;
      std::printf("  rank %d: %.1f us across %d steps (halo exchanges + "
                  "collectives)\n",
                  r, w.final_clocks()[static_cast<std::size_t>(r)] * 1e6,
                  opt.steps);
    }
  }
  return 0;
}
