#pragma once

/// \file sweeps.hpp
/// Vectorized forms of the SWM element-wise update sweeps, routed
/// through the runtime width policy (dispatch.hpp).
///
/// These are the hot loops of the paper's ShallowWaters.jl experiment:
/// the fused RK4 increment+apply (standard and Kahan-compensated), the
/// three-field stage combine, and the mixed-precision down-cast. The
/// scalar loops live in swm/timestep.hpp / swm/model.hpp and remain the
/// oracle; timestep routes native element types (double / float with
/// T == Tprog) here, and tests/swm_fused_test pins that the dispatched
/// sweeps stay bit-identical to the unfused scalar pipeline.
///
/// Bit-identity argument (docs/KERNELS.md): each vector statement below
/// performs, per lane, exactly the operation chain of the corresponding
/// scalar statement, in the same order — and remainder elements run a
/// scalar loop with that exact chain. No reductions occur in any sweep
/// (every element is independent), so vector width cannot reassociate
/// anything.

#include <cstddef>
#include <cstring>
#include <span>

#include "core/contracts.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/simd.hpp"

namespace tfx::kernels::sweeps {

// ---------------------------------------------------------------------------
// Scalar reference chains (identical to the loops swm/timestep.hpp ran
// before routing; used for remainders and the width-0 policy).
// ---------------------------------------------------------------------------

template <typename T>
inline void rk4_update_scalar(std::span<T> y, std::span<const T> k1,
                              std::span<const T> k2, std::span<const T> k3,
                              std::span<const T> k4, std::size_t lo,
                              std::size_t hi) {
  const T two{2};
  const T sixth = T(1.0 / 6.0);
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const T sum = k1[idx] + two * k2[idx] + two * k3[idx] + k4[idx];
    y[idx] += sixth * sum;
  }
}

template <typename T>
inline void rk4_update_kahan_scalar(std::span<T> y, std::span<T> comp,
                                    std::span<const T> k1,
                                    std::span<const T> k2,
                                    std::span<const T> k3,
                                    std::span<const T> k4, std::size_t lo,
                                    std::size_t hi) {
  const T two{2};
  const T sixth = T(1.0 / 6.0);
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const T sum = k1[idx] + two * k2[idx] + two * k3[idx] + k4[idx];
    const T inc = sixth * sum;
    const T adjusted = inc - comp[idx];
    const T t = y[idx] + adjusted;
    comp[idx] = (t - y[idx]) - adjusted;
    y[idx] = t;
  }
}

template <typename T>
inline void combine_scalar(std::span<T> out, std::span<const T> y,
                           std::span<const T> k, T a, std::size_t lo,
                           std::size_t hi) {
  for (std::size_t idx = lo; idx < hi; ++idx) {
    out[idx] = y[idx] + a * k[idx];
  }
}

// ---------------------------------------------------------------------------
// Fixed-width forms. Per lane: the scalar chains above, verbatim.
// ---------------------------------------------------------------------------

/// y[i] += (k1 + 2 k2 + 2 k3 + k4) / 6, vector main loop + scalar tail.
template <std::size_t Bits, typename T>
void rk4_update_fixed(std::span<T> y, std::span<const T> k1,
                      std::span<const T> k2, std::span<const T> k3,
                      std::span<const T> k4, std::size_t lo, std::size_t hi) {
  using P = simd::pack<T, Bits>;
  constexpr std::size_t L = P::lanes;
  const P vtwo = P::broadcast(T{2});
  const P vsixth = P::broadcast(T(1.0 / 6.0));
  std::size_t i = lo;
  for (; i + L <= hi; i += L) {
    // ((k1 + 2*k2) + 2*k3) + k4 — the scalar expression's association.
    const P sum = ((P::load(&k1[i]) + vtwo * P::load(&k2[i])) +
                   vtwo * P::load(&k3[i])) +
                  P::load(&k4[i]);
    (P::load(&y[i]) + vsixth * sum).store(&y[i]);
  }
  rk4_update_scalar(y, k1, k2, k3, k4, i, hi);
}

/// The Kahan-compensated update: inc formed in registers, the
/// compensation recurrence per lane in the scalar order.
template <std::size_t Bits, typename T>
void rk4_update_kahan_fixed(std::span<T> y, std::span<T> comp,
                            std::span<const T> k1, std::span<const T> k2,
                            std::span<const T> k3, std::span<const T> k4,
                            std::size_t lo, std::size_t hi) {
  using P = simd::pack<T, Bits>;
  constexpr std::size_t L = P::lanes;
  const P vtwo = P::broadcast(T{2});
  const P vsixth = P::broadcast(T(1.0 / 6.0));
  std::size_t i = lo;
  for (; i + L <= hi; i += L) {
    const P sum = ((P::load(&k1[i]) + vtwo * P::load(&k2[i])) +
                   vtwo * P::load(&k3[i])) +
                  P::load(&k4[i]);
    const P inc = vsixth * sum;
    const P vy = P::load(&y[i]);
    const P adjusted = inc - P::load(&comp[i]);
    const P t = vy + adjusted;
    ((t - vy) - adjusted).store(&comp[i]);
    t.store(&y[i]);
  }
  rk4_update_kahan_scalar(y, comp, k1, k2, k3, k4, i, hi);
}

/// out = y + a*k (one field; the three-field SWM combine calls this per
/// field — same per-element arithmetic as the interleaved scalar loop,
/// since elements are independent).
template <std::size_t Bits, typename T>
void combine_fixed(std::span<T> out, std::span<const T> y,
                   std::span<const T> k, T a, std::size_t lo, std::size_t hi) {
  using P = simd::pack<T, Bits>;
  constexpr std::size_t L = P::lanes;
  const P va = P::broadcast(a);
  std::size_t i = lo;
  for (; i + L <= hi; i += L) {
    (P::load(&y[i]) + va * P::load(&k[i])).store(&out[i]);
  }
  combine_scalar(out, y, k, a, i, hi);
}

/// d[i] = To(double(s[i])) for native float/double pairs:
/// __builtin_convertvector converts per lane with the same rounding as
/// the scalar cast chain (float->double widening is exact, so the
/// intermediate double changes nothing).
template <std::size_t Bits, typename To, typename From>
void convert_fixed(std::span<To> d, std::span<const From> s, std::size_t lo,
                   std::size_t hi) {
  using PS = simd::pack<From, Bits>;
  using vec_to [[gnu::vector_size(PS::lanes * sizeof(To))]] = To;
  constexpr std::size_t L = PS::lanes;
  std::size_t i = lo;
  for (; i + L <= hi; i += L) {
    const vec_to v = __builtin_convertvector(PS::load(&s[i]).v, vec_to);
    std::memcpy(&d[i], &v, sizeof(v));
  }
  for (; i < hi; ++i) d[i] = To(static_cast<double>(s[i]));
}

// ---------------------------------------------------------------------------
// Policy-routed entry points (what swm/timestep.hpp calls for native
// element types). Width 0: the scalar reference chain.
// ---------------------------------------------------------------------------

template <typename T>
void rk4_update(std::span<T> y, std::span<const T> k1, std::span<const T> k2,
                std::span<const T> k3, std::span<const T> k4, std::size_t lo,
                std::size_t hi) {
  const std::size_t w = simd_width();
  if (w == 0) {
    rk4_update_scalar(y, k1, k2, k3, k4, lo, hi);
    return;
  }
  with_simd_width(w, [&](auto bits) {
    rk4_update_fixed<bits(), T>(y, k1, k2, k3, k4, lo, hi);
  });
}

template <typename T>
void rk4_update_kahan(std::span<T> y, std::span<T> comp,
                      std::span<const T> k1, std::span<const T> k2,
                      std::span<const T> k3, std::span<const T> k4,
                      std::size_t lo, std::size_t hi) {
  const std::size_t w = simd_width();
  if (w == 0) {
    rk4_update_kahan_scalar(y, comp, k1, k2, k3, k4, lo, hi);
    return;
  }
  with_simd_width(w, [&](auto bits) {
    rk4_update_kahan_fixed<bits(), T>(y, comp, k1, k2, k3, k4, lo, hi);
  });
}

template <typename T>
void combine(std::span<T> out, std::span<const T> y, std::span<const T> k, T a,
             std::size_t lo, std::size_t hi) {
  const std::size_t w = simd_width();
  if (w == 0) {
    combine_scalar(out, y, k, a, lo, hi);
    return;
  }
  with_simd_width(w, [&](auto bits) {
    combine_fixed<bits(), T>(out, y, k, a, lo, hi);
  });
}

template <typename To, typename From>
void convert(std::span<To> d, std::span<const From> s, std::size_t lo,
             std::size_t hi) {
  const std::size_t w = simd_width();
  if (w == 0) {
    for (std::size_t i = lo; i < hi; ++i) d[i] = To(static_cast<double>(s[i]));
    return;
  }
  with_simd_width(w, [&](auto bits) {
    convert_fixed<bits(), To, From>(d, s, lo, hi);
  });
}

// ---------------------------------------------------------------------------
// Batched forms (the ensemble engine's apply path, src/ensemble).
// Each item is one member-field problem over that member's own storage;
// members are independent, so batching amortizes the width-policy read
// and dispatch across the whole batch while every element runs exactly
// the per-element chain of the non-batched entry point above. A batch
// is therefore bit-identical to looping rk4_update[_kahan] over the
// items — at every width, including the compensation residuals.
// ---------------------------------------------------------------------------

/// One member-field apply problem of a batched RK4 update. `comp` is
/// only read/written by the Kahan kernel and may be empty otherwise.
template <typename T>
struct rk4_batch_item {
  std::span<T> y;
  std::span<T> comp;
  std::span<const T> k1, k2, k3, k4;
};

template <typename T>
void rk4_update_batched(std::span<const rk4_batch_item<T>> items) {
  const std::size_t w = simd_width();
  if (w == 0) {
    for (const auto& it : items) {
      rk4_update_scalar(it.y, it.k1, it.k2, it.k3, it.k4, 0, it.y.size());
    }
    return;
  }
  with_simd_width(w, [&](auto bits) {
    for (const auto& it : items) {
      rk4_update_fixed<bits(), T>(it.y, it.k1, it.k2, it.k3, it.k4, 0,
                                  it.y.size());
    }
  });
}

template <typename T>
void rk4_update_kahan_batched(std::span<const rk4_batch_item<T>> items) {
  const std::size_t w = simd_width();
  if (w == 0) {
    for (const auto& it : items) {
      rk4_update_kahan_scalar(it.y, it.comp, it.k1, it.k2, it.k3, it.k4, 0,
                              it.y.size());
    }
    return;
  }
  with_simd_width(w, [&](auto bits) {
    for (const auto& it : items) {
      rk4_update_kahan_fixed<bits(), T>(it.y, it.comp, it.k1, it.k2, it.k3,
                                        it.k4, 0, it.y.size());
    }
  });
}

}  // namespace tfx::kernels::sweeps
