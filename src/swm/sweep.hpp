#pragma once

/// \file sweep.hpp
/// Shared machinery for the model's thread-parallel sweeps: an FTZ
/// mode propagator for parallel regions.
///
/// The FTZ mode (fp/fpenv.hpp) is thread-local; a Float16 run with
/// flush-to-zero enabled must see the SAME flushing behaviour on every
/// pool worker or results would depend on the pool size. This scope
/// captures the calling thread's mode at construction and installs /
/// restores it around each helper thread's participation in a region
/// (the caller keeps its own environment). The event *counters*
/// remain per-thread diagnostics and may spread across workers.

#include "core/threadpool.hpp"
#include "fp/fpenv.hpp"

namespace tfx::swm {

class ftz_worker_scope final : public thread_pool::worker_scope {
 public:
  ftz_worker_scope() : mode_(fp::current_ftz_mode()) {}

  void enter(int) override { saved() = fp::set_ftz_mode(mode_); }
  void exit(int) override { fp::set_ftz_mode(saved()); }

 private:
  /// enter/exit run on the same worker thread, so the saved mode can
  /// live in thread-local storage - no allocation, any pool size.
  static fp::ftz_mode& saved() {
    thread_local fp::ftz_mode s = fp::ftz_mode::preserve;
    return s;
  }

  fp::ftz_mode mode_;
};

}  // namespace tfx::swm
