// Ablation (§ III-A.1): libblastrampoline forwards BLAS calls "at
// runtime with near-zero overhead compared to the complexity of the
// routines invoked". Measure our registry's forwarding cost (atomic
// load + shared_ptr copy + virtual call) against a direct call, with
// google-benchmark, across vector lengths.

#include <benchmark/benchmark.h>

#include <vector>

#include "kernels/generic.hpp"
#include "kernels/registry.hpp"

using namespace tfx;

namespace {

void bench_direct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    kernels::axpy(1.0001, std::span<const double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bench_trampoline(benchmark::State& state) {
  kernels::blas_registry::instance().set_current("Julia");
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    kernels::axpy_dispatch(1.0001, std::span<const double>(x),
                           std::span<double>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(bench_direct)->RangeMultiplier(8)->Range(8, 1 << 18);
BENCHMARK(bench_trampoline)->RangeMultiplier(8)->Range(8, 1 << 18);

BENCHMARK_MAIN();
