// The thread pool and the parallel kernel variants.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "arch/a64fx.hpp"
#include "core/threadpool.hpp"
#include "fp/float16.hpp"
#include "kernels/parallel.hpp"

using namespace tfx;
using tfx::fp::float16;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  thread_pool pool(4);
  const std::size_t n = 10007;  // prime: uneven blocks
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, StaticBlocksAreContiguousAndComplete) {
  const std::size_t n = 100;
  std::size_t expect = 0;
  for (int w = 0; w < 7; ++w) {
    const auto [lo, hi] = thread_pool::block(n, 7, w);
    EXPECT_EQ(lo, expect);
    expect = hi;
  }
  EXPECT_EQ(expect, n);
}

TEST(ThreadPool, SingleThreadDegenerates) {
  thread_pool pool(1);
  int calls = 0;
  pool.parallel_for(50, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 50u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  thread_pool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  thread_pool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(64, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<long>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 6400);
}

TEST(ParallelKernels, AxpyBitIdenticalToSerial) {
  thread_pool pool(4);
  const std::size_t n = 5000;
  std::vector<double> x(n), y1(n), y2(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.1 * static_cast<double>(i));
    y1[i] = y2[i] = std::cos(0.1 * static_cast<double>(i));
  }
  kernels::axpy(1.7, std::span<const double>(x), std::span<double>(y1));
  kernels::axpy_parallel(pool, 1.7, std::span<const double>(x),
                         std::span<double>(y2));
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y1[i], y2[i]);
}

TEST(ParallelKernels, DotDeterministicAndAccurate) {
  thread_pool pool(4);
  const std::size_t n = 4001;
  std::vector<double> x(n, 0.5), y(n, 2.0);
  const double d1 = kernels::dot_parallel(pool, std::span<const double>(x),
                                          std::span<const double>(y));
  const double d2 = kernels::dot_parallel(pool, std::span<const double>(x),
                                          std::span<const double>(y));
  EXPECT_EQ(d1, d2);  // reproducible for fixed pool size
  EXPECT_NEAR(d1, static_cast<double>(n), 1e-9);
}

TEST(ParallelKernels, Float16VariantsWork) {
  thread_pool pool(3);
  const std::size_t n = 333;
  std::vector<float16> x(n, float16(1.0)), y(n, float16(2.0));
  kernels::axpy_parallel(pool, float16(3.0), std::span<const float16>(x),
                         std::span<float16>(y));
  EXPECT_EQ(static_cast<double>(y[111]), 5.0);
  kernels::scal_parallel(pool, float16(0.5), std::span<float16>(y));
  EXPECT_EQ(static_cast<double>(y[222]), 2.5);
}

TEST(ParallelKernels, Triad) {
  thread_pool pool(4);
  const std::size_t n = 1024;
  std::vector<double> a(n), b(n, 3.0), c(n, 2.0);
  kernels::triad_parallel(pool, 0.5, std::span<const double>(b),
                          std::span<const double>(c), std::span<double>(a));
  EXPECT_EQ(a[512], 4.0);
}

TEST(CmgView, ResourceScalingAndSaturation) {
  using namespace tfx::arch;
  const auto one = cmg_view(fugaku_node, 1);
  EXPECT_EQ(one.mem_bandwidth_gbs, fugaku_node.mem_bandwidth_gbs);

  const auto four = cmg_view(fugaku_node, 4);
  EXPECT_EQ(four.fp_pipes, 8);
  EXPECT_DOUBLE_EQ(four.peak_gflops(8), 4 * fugaku_node.peak_gflops(8));
  EXPECT_DOUBLE_EQ(four.mem_bandwidth_gbs, 228.0);  // 4 x 57, below cap

  const auto twelve = cmg_view(fugaku_node, cmg_compute_cores);
  EXPECT_DOUBLE_EQ(twelve.mem_bandwidth_gbs, cmg_mem_bandwidth_gbs);  // capped
  EXPECT_DOUBLE_EQ(twelve.l2_bandwidth_gbs, cmg_l2_bandwidth_gbs);
  // Shared L2: capacity does not grow with cores.
  EXPECT_EQ(twelve.l2.size_bytes, fugaku_node.l2.size_bytes);
  EXPECT_EQ(twelve.l1.size_bytes, 12 * fugaku_node.l1.size_bytes);
}

#include "core/rng.hpp"
#include "kernels/gemm.hpp"

TEST(ThreadPool, RegionBarrierOrdersConsecutiveLoops) {
  // Loop 1 of a region may read ANY element loop 0 wrote, including
  // those of other workers' blocks - the inter-loop barrier is what
  // makes the fused RK4 stage (combine -> cast -> RHS passes) legal.
  thread_pool pool(4);
  const std::size_t n = 1013;  // prime: uneven blocks
  std::vector<std::size_t> x(n, 0), y(n, 0);
  const auto fill = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) x[i] = i + 1;
  };
  const auto mirror = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) y[i] = x[n - 1 - i];
  };
  const thread_pool::task tasks[] = {thread_pool::task::over(n, fill),
                                     thread_pool::task::over(n, mirror)};
  for (int round = 0; round < 50; ++round) {
    std::fill(x.begin(), x.end(), 0);
    std::fill(y.begin(), y.end(), 0);
    pool.parallel_region({tasks, 2});
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(y[i], n - i) << "round " << round << " i " << i;
    }
  }
}

TEST(ThreadPool, RegionSkipsEmptyLoopsButStaysSynchronized) {
  thread_pool pool(3);
  const std::size_t n = 256;
  std::vector<int> x(n, 0);
  const auto bump = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++x[i];
  };
  const auto noop = [](std::size_t, std::size_t) { FAIL(); };
  const thread_pool::task tasks[] = {thread_pool::task::over(n, bump),
                                     thread_pool::task::over(0, noop),
                                     thread_pool::task::over(n, bump)};
  pool.parallel_region({tasks, 3});
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(x[i], 2) << i;
}

TEST(ThreadPool, RegionRunsInlineOnSingleThreadPool) {
  thread_pool pool(1);
  int order = 0;
  const auto first = [&](std::size_t, std::size_t) { EXPECT_EQ(order++, 0); };
  const auto second = [&](std::size_t, std::size_t) { EXPECT_EQ(order++, 1); };
  const thread_pool::task tasks[] = {thread_pool::task::over(8, first),
                                     thread_pool::task::over(8, second)};
  pool.parallel_region({tasks, 2});
  EXPECT_EQ(order, 2);
}

namespace {

struct counting_scope final : tfx::thread_pool::worker_scope {
  std::atomic<int> enters{0};
  std::atomic<int> exits{0};
  std::atomic<int> bad_worker{0};
  void enter(int worker) override {
    enters.fetch_add(1);
    if (worker < 1) bad_worker.fetch_add(1);  // caller never enters
  }
  void exit(int worker) override {
    exits.fetch_add(1);
    if (worker < 1) bad_worker.fetch_add(1);
  }
};

}  // namespace

TEST(ThreadPool, WorkerScopeWrapsEachHelperOncePerRegion) {
  thread_pool pool(4);
  counting_scope scope;
  const auto body = [](std::size_t, std::size_t) {};
  const thread_pool::task tasks[] = {thread_pool::task::over(64, body),
                                     thread_pool::task::over(64, body)};
  pool.parallel_region({tasks, 2}, &scope);
  EXPECT_EQ(scope.enters.load(), 3);  // helpers 1..3, once each
  EXPECT_EQ(scope.exits.load(), 3);
  EXPECT_EQ(scope.bad_worker.load(), 0);
}

TEST(ThreadPool, IndexedBlocksMatchStaticPartition) {
  thread_pool pool(4);
  const std::size_t n = 777;
  std::vector<int> owner(n, -1);
  pool.parallel_for_indexed(n, [&](int w, std::size_t lo, std::size_t hi) {
    const auto [elo, ehi] = thread_pool::block(n, 4, w);
    EXPECT_EQ(lo, elo);
    EXPECT_EQ(hi, ehi);
    for (std::size_t i = lo; i < hi; ++i) owner[i] = w;
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_NE(owner[i], -1) << i;
}

TEST(ThreadPool, SerialGrainFallsThroughInline) {
  thread_pool pool(4);
  ASSERT_EQ(pool.serial_grain(), 8u);  // documented default: 2 * size()
  int calls = 0;
  pool.parallel_for_indexed(7, [&](int w, std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(w, 0);  // below the grain: caller runs the whole range
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 7u);
  });
  EXPECT_EQ(calls, 1);

  pool.set_serial_grain(0);  // opt out: even tiny ranges dispatch
  std::atomic<int> workers{0};
  pool.parallel_for_indexed(7, [&](int, std::size_t lo, std::size_t hi) {
    if (lo < hi) workers.fetch_add(1);
  });
  EXPECT_GT(workers.load(), 1);
}

TEST(ParallelKernels, DotAcceptsCallerProvidedPartials) {
  thread_pool pool(4);
  const std::size_t n = 2053;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.01 * static_cast<double>(i));
    y[i] = std::cos(0.02 * static_cast<double>(i));
  }
  std::vector<double> partials(static_cast<std::size_t>(pool.size()), -1.0);
  const double with_scratch = kernels::dot_parallel(
      pool, std::span<const double>(x), std::span<const double>(y));
  const double with_partials =
      kernels::dot_parallel(pool, std::span<const double>(x),
                            std::span<const double>(y),
                            std::span<double>(partials));
  EXPECT_EQ(with_scratch, with_partials);  // same blocks, same order
  double recombined = 0;
  for (const double p : partials) recombined += p;
  EXPECT_EQ(recombined, with_partials);
}

TEST(ParallelKernels, AsumMatchesSerial) {
  thread_pool pool(3);
  const std::size_t n = 1501;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i % 2 == 0 ? 1.0 : -1.0) * 0.25;
  }
  const double s = kernels::asum_parallel(pool, std::span<const double>(x));
  EXPECT_DOUBLE_EQ(s, 0.25 * static_cast<double>(n));
}

TEST(ThreadPool, ScratchIsReusedAcrossCalls) {
  thread_pool pool(2);
  const auto a = pool.scratch<double>(16);
  a[0] = 42.0;
  const auto b = pool.scratch<double>(16);
  EXPECT_EQ(a.data(), b.data());  // no reallocation at the same size
  const auto c = pool.scratch<double>(8);
  EXPECT_EQ(b.data(), c.data());  // smaller requests reuse too
}

TEST(ParallelKernels, GemmBitIdenticalToSerialBlocked) {
  thread_pool pool(4);
  const std::size_t n = 96;
  xoshiro256 rng(77);
  std::vector<double> a(n * n), b(n * n), c1(n * n, 0.5), c2(n * n, 0.5);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  kernels::gemm_blocked(1.25, kernels::matrix_view<const double>(a.data(), n, n),
                        kernels::matrix_view<const double>(b.data(), n, n),
                        0.75, kernels::matrix_view<double>(c1.data(), n, n),
                        32);
  kernels::gemm_parallel(pool, 1.25,
                         kernels::matrix_view<const double>(a.data(), n, n),
                         kernels::matrix_view<const double>(b.data(), n, n),
                         0.75, kernels::matrix_view<double>(c2.data(), n, n),
                         32);
  for (std::size_t k = 0; k < c1.size(); ++k) {
    ASSERT_EQ(c1[k], c2[k]) << k;
  }
}
