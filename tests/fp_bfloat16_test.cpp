// bfloat16: same operational semantics as float16 but with binary32's
// exponent range and an 8-bit significand.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.hpp"
#include "fp/bfloat16.hpp"

using tfx::fp::bfloat16;

namespace {
bfloat16 b(double v) { return bfloat16(v); }
}  // namespace

TEST(BFloat16, BasicValues) {
  EXPECT_EQ(b(1.0).bits(), 0x3f80u);
  EXPECT_EQ(b(-1.0).bits(), 0xbf80u);
  EXPECT_EQ(b(0.0).bits(), 0x0000u);
  EXPECT_EQ(static_cast<double>(b(2.0)), 2.0);
  EXPECT_EQ(static_cast<double>(b(1.0) + b(1.0)), 2.0);
}

TEST(BFloat16, CoarsePrecisionFineRange) {
  // epsilon = 2^-7: adding 2^-9 to 1 disappears, 2^-7 survives.
  EXPECT_EQ(static_cast<double>(b(1.0) + b(std::ldexp(1.0, -9))), 1.0);
  EXPECT_EQ(static_cast<double>(b(1.0) + b(std::ldexp(1.0, -7))),
            1.0 + std::ldexp(1.0, -7));
  // Range: 1e30 is finite (float16 would overflow).
  EXPECT_TRUE(b(1e30).isfinite());
  EXPECT_TRUE(b(1e39).isinf());
}

TEST(BFloat16, ArithmeticMatchesDoubleReference) {
  tfx::xoshiro256 rng(5);
  for (int trial = 0; trial < 50000; ++trial) {
    const bfloat16 x = bfloat16(rng.uniform(-1e4, 1e4));
    const bfloat16 y = bfloat16(rng.uniform(-1e4, 1e4));
    const double dx = static_cast<double>(x);
    const double dy = static_cast<double>(y);
    // Exact in double; single rounding via the f64 path must agree with
    // the operator's f32 path (2p+2: 24 >= 2*8+2).
    EXPECT_EQ((x + y).bits(), bfloat16(dx + dy).bits());
    EXPECT_EQ((x - y).bits(), bfloat16(dx - dy).bits());
    EXPECT_EQ((x * y).bits(), bfloat16(dx * dy).bits());
  }
}

TEST(BFloat16, ComparisonsAndClassification) {
  const bfloat16 nan = std::numeric_limits<bfloat16>::quiet_NaN();
  EXPECT_TRUE(nan.isnan());
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(b(0.0) == b(-0.0));
  EXPECT_TRUE(b(1.0) < b(2.0));
  EXPECT_TRUE((-b(1.0)).signbit());
  EXPECT_EQ(tfx::fp::abs(b(-3.0)).bits(), b(3.0).bits());
}

TEST(BFloat16, NumericLimits) {
  using lim = std::numeric_limits<bfloat16>;
  EXPECT_EQ(static_cast<double>(lim::epsilon()), std::ldexp(1.0, -7));
  EXPECT_EQ(static_cast<double>(lim::min()), std::ldexp(1.0, -126));
  EXPECT_NEAR(static_cast<double>(lim::max()), 3.3895e38, 1e34);
  EXPECT_TRUE(lim::infinity().isinf());
  EXPECT_EQ(lim::digits, 8);
}

TEST(BFloat16, FmaSingleRounding) {
  // 1+2^-7 squared = 1 + 2^-6 + 2^-14; rounds to 1+2^-6. With addend
  // -(1+2^-6): muladd -> 0, fma -> 2^-14.
  const bfloat16 a = bfloat16::from_bits(0x3f81);
  const bfloat16 c = -(b(1.0) + bfloat16(std::ldexp(1.0, -6)));
  EXPECT_EQ(static_cast<double>(muladd(a, a, c)), 0.0);
  EXPECT_EQ(static_cast<double>(fma(a, a, c)), std::ldexp(1.0, -14));
}
