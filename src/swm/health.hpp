#pragma once

/// \file health.hpp
/// The NaN/Inf health sentinel of the shallow-water step loop.
///
/// The paper's Float16 runs sit one overflow away from a silent NaN
/// integration - exactly the failure mode the Sherlog scaling analysis
/// (PAPER.md) exists to prevent. The sentinel is a cheap periodic scan
/// of the surface-height field that turns "silently integrating NaNs
/// for another thousand steps" into a typed numerical_error naming the
/// step, rank, and field. The rollback-recovery layer
/// (swm/resilience.hpp) treats a sentinel hit like a rank crash: the
/// detecting rank fail-stops and is restored from its buddy checkpoint,
/// so a transient bit-flip costs a rollback instead of the campaign.

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

namespace tfx::swm {

/// Typed report of non-finite model state: which field went bad, at
/// which step, on which rank (-1 for the serial model), and — when the
/// detector knows it — the flat index of the first bad element, so
/// repair logs and traces can name the cell instead of just the field.
class numerical_error : public std::runtime_error {
 public:
  numerical_error(const char* field, int step, int rank,
                  std::ptrdiff_t index = -1)
      : std::runtime_error(
            std::string("non-finite value in field '") + field +
            "' at step " + std::to_string(step) +
            (rank >= 0 ? " on rank " + std::to_string(rank) : "") +
            (index >= 0 ? ", element " + std::to_string(index) : "")),
        field_(field), step_(step), rank_(rank), index_(index) {}

  [[nodiscard]] const char* field() const { return field_; }
  [[nodiscard]] int step() const { return step_; }
  [[nodiscard]] int rank() const { return rank_; }
  /// Flat index of the first non-finite element; -1 when unknown.
  [[nodiscard]] std::ptrdiff_t index() const { return index_; }

 private:
  const char* field_;
  int step_;
  int rank_;
  std::ptrdiff_t index_;
};

/// True when every element is finite. Works for every element type of
/// the model (double/float/float16/bfloat16): all of them convert to
/// double, and non-finite values stay non-finite under widening.
template <typename T>
[[nodiscard]] bool all_finite(std::span<const T> xs) {
  for (const T& x : xs) {
    if (!std::isfinite(static_cast<double>(x))) return false;
  }
  return true;
}

/// Flat index of the first non-finite element, or -1 when all finite.
template <typename T>
[[nodiscard]] std::ptrdiff_t first_non_finite(std::span<const T> xs) {
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (!std::isfinite(static_cast<double>(xs[k]))) {
      return static_cast<std::ptrdiff_t>(k);
    }
  }
  return -1;
}

/// Scan one field and raise the typed error on the first bad value,
/// naming its flat index.
template <typename T>
void require_finite(std::span<const T> xs, const char* field, int step,
                    int rank) {
  const std::ptrdiff_t bad = first_non_finite(xs);
  if (bad >= 0) throw numerical_error(field, step, rank, bad);
}

}  // namespace tfx::swm
