#pragma once

/// \file model.hpp
/// The shallow-water model facade: ShallowWaters.jl's role in the
/// paper, written once and instantiated at any precision.
///
///   model<double>                       - the Float64 reference
///   model<float>                        - Float32
///   model<fp::float16>                  - Float16, compensated RK4
///   model<fp::float16, float>           - the mixed Float16/32 run
///   model<fp::sherlog<float>>           - the Sherlog32 analysis run
///
/// The first template parameter T is the *computation* type (all RHS
/// arithmetic); the second, Tprog, is the *time-integration* type the
/// prognostic fields are stored and accumulated in (defaults to T).

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/rng.hpp"
#include "swm/diagnostics.hpp"
#include "swm/field.hpp"
#include "swm/params.hpp"
#include "swm/rhs.hpp"
#include "swm/timestep.hpp"

namespace tfx::swm {

template <typename T, typename Tprog = T>
class model {
 public:
  explicit model(swm_params params,
                 integration_scheme scheme = integration_scheme::standard)
      : params_(params),
        scheme_(scheme),
        rhs_(params),
        prog_(params.nx, params.ny),
        comp_(params.nx, params.ny),
        stage_(params.nx, params.ny),
        inc_u_(params.nx, params.ny),
        inc_v_(params.nx, params.ny),
        inc_eta_(params.nx, params.ny),
        k1_(params.nx, params.ny),
        k2_(params.nx, params.ny),
        k3_(params.nx, params.ny),
        k4_(params.nx, params.ny) {
    prog_.fill(Tprog{});
    comp_.fill(Tprog{});
  }

  [[nodiscard]] const swm_params& params() const { return params_; }
  [[nodiscard]] integration_scheme scheme() const { return scheme_; }
  [[nodiscard]] int steps_taken() const { return steps_; }
  [[nodiscard]] double time() const { return steps_ * params_.dt(); }

  /// The prognostic (scaled) state in integration precision.
  [[nodiscard]] const state<Tprog>& prognostic() const { return prog_; }
  [[nodiscard]] state<Tprog>& prognostic() { return prog_; }

  /// Attach a thread pool: the RHS passes run row-parallel (results
  /// bit-identical to serial; see rhs_evaluator::attach_pool). The pool
  /// must outlive the model.
  void attach_pool(thread_pool* pool) { rhs_.attach_pool(pool); }

  /// Restart from a checkpointed state: adopts the fields and the step
  /// counter, clears the Kahan compensation (see checkpoint.hpp).
  void restore(const state<Tprog>& s, int steps_taken) {
    TFX_EXPECTS(s.nx() == params_.nx && s.ny() == params_.ny);
    prog_ = s;
    comp_.fill(Tprog{});
    steps_ = steps_taken;
  }

  /// Unscaled state in double precision, for diagnostics and output.
  [[nodiscard]] state<double> unscaled() const {
    state<double> out = convert_state<double>(prog_);
    const double inv_s = 1.0 / rhs_.coeffs().scale;
    for (auto& v : out.u.flat()) v *= inv_s;
    for (auto& v : out.v.flat()) v *= inv_s;
    for (auto& v : out.eta.flat()) v *= inv_s;
    return out;
  }

  /// Initialize with a balanced random eddy field: a band-limited
  /// random streamfunction, nondivergent velocities and a
  /// geostrophically balanced surface displacement. Produces the
  /// turbulent regime of Fig. 4 within a short spin-up.
  void seed_random_eddies(std::uint64_t seed, double velocity_amplitude) {
    xoshiro256 rng(seed);
    const int nx = params_.nx;
    const int ny = params_.ny;
    field2d<double> psi(nx, ny);
    psi.fill(0.0);

    // A handful of large-scale Fourier modes with random phases.
    constexpr int kmax = 4;
    for (int kx = 1; kx <= kmax; ++kx) {
      for (int ky = 1; ky <= kmax; ++ky) {
        const double amp = rng.uniform(-1.0, 1.0) /
                           std::sqrt(static_cast<double>(kx * kx + ky * ky));
        const double phx = rng.uniform(0.0, 2.0 * M_PI);
        const double phy = rng.uniform(0.0, 2.0 * M_PI);
        for (int j = 0; j < ny; ++j) {
          for (int i = 0; i < nx; ++i) {
            psi(i, j) += amp *
                         std::sin(2.0 * M_PI * kx * i / nx + phx) *
                         std::sin(2.0 * M_PI * ky * j / ny + phy);
          }
        }
      }
    }

    // Normalize so max |u| ~ velocity_amplitude, then derive fields.
    double max_grad = 0.0;
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double gx = (psi(psi.ip(i), j) - psi(i, j)) / params_.dx();
        const double gy = (psi(i, psi.jp(j)) - psi(i, j)) / params_.dy();
        max_grad = std::max({max_grad, std::abs(gx), std::abs(gy)});
      }
    }
    const double norm = max_grad > 0 ? velocity_amplitude / max_grad : 0.0;
    const double s = rhs_.coeffs().scale;
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double u = -(psi(i, psi.jp(j)) - psi(i, j)) / params_.dy() * norm;
        const double v = (psi(psi.ip(i), j) - psi(i, j)) / params_.dx() * norm;
        const double eta =
            params_.coriolis_f0 / params_.gravity * psi(i, j) * norm;
        prog_.u(i, j) = Tprog(s * u);
        prog_.v(i, j) = Tprog(s * v);
        prog_.eta(i, j) = Tprog(s * eta);
      }
    }
    if (params_.bc == boundary::channel) {
      // The j = 0 v-row is the solid wall (south and, via the wrap,
      // north): no flow through it, ever. The RHS keeps it at zero.
      for (int i = 0; i < nx; ++i) prog_.v(i, 0) = Tprog{};
    }
    comp_.fill(Tprog{});
  }

  /// Advance one RK4 step.
  void step() {
    const Tprog half = Tprog(0.5);
    const Tprog one = Tprog(1);

    // k1 = F(y)
    eval_stage(prog_, k1_);
    // k2 = F(y + k1/2)
    combine_stage(prog_, k1_, half);
    eval_stage(stage_, k2_);
    // k3 = F(y + k2/2)
    combine_stage(prog_, k2_, half);
    eval_stage(stage_, k3_);
    // k4 = F(y + k3)
    combine_stage(prog_, k3_, one);
    eval_stage(stage_, k4_);

    rk4_increment(inc_u_, k1_.du, k2_.du, k3_.du, k4_.du);
    rk4_increment(inc_v_, k1_.dv, k2_.dv, k3_.dv, k4_.dv);
    rk4_increment(inc_eta_, k1_.deta, k2_.deta, k3_.deta, k4_.deta);

    if (scheme_ == integration_scheme::compensated) {
      apply_increment_compensated(prog_.u, inc_u_, comp_.u);
      apply_increment_compensated(prog_.v, inc_v_, comp_.v);
      apply_increment_compensated(prog_.eta, inc_eta_, comp_.eta);
    } else {
      apply_increment(prog_.u, inc_u_);
      apply_increment(prog_.v, inc_v_);
      apply_increment(prog_.eta, inc_eta_);
    }
    ++steps_;
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  /// Diagnostics on the unscaled double-precision state.
  [[nodiscard]] diagnostics diag() const {
    return compute_diagnostics(unscaled(), params_);
  }

 private:
  /// Evaluate the RHS at a (possibly wider-precision) state, casting
  /// down to the computation type when Tprog != T.
  void eval_stage(const state<Tprog>& at, tendencies<T>& k) {
    if constexpr (std::is_same_v<T, Tprog>) {
      rhs_(at, k);
    } else {
      compute_state_ = convert_state<T>(at);
      rhs_(compute_state_, k);
    }
  }

  /// stage_ = y + a * k, in Tprog.
  void combine_stage(const state<Tprog>& y, const tendencies<T>& k, Tprog a) {
    stage_combine(stage_.u, y.u, k.du, a);
    stage_combine(stage_.v, y.v, k.dv, a);
    stage_combine(stage_.eta, y.eta, k.deta, a);
  }

  swm_params params_;
  integration_scheme scheme_;
  rhs_evaluator<T> rhs_;
  state<Tprog> prog_;
  state<Tprog> comp_;   ///< Kahan compensation carried across steps
  state<Tprog> stage_;  ///< RK stage state
  state<T> compute_state_;  ///< down-cast stage (mixed precision only)
  field2d<Tprog> inc_u_, inc_v_, inc_eta_;
  tendencies<T> k1_, k2_, k3_, k4_;
  int steps_ = 0;
};

}  // namespace tfx::swm
