// Core utilities: statistics, tables, units, RNG, CLI, timers.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/cli.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"

using namespace tfx;

TEST(Stats, BasicMoments) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_EQ(stats::min(xs), 1);
  EXPECT_EQ(stats::max(xs), 5);
  EXPECT_EQ(stats::mean(xs), 3);
  EXPECT_EQ(stats::median(xs), 3);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, MedianEvenCountInterpolates) {
  const std::vector<double> xs{1, 2, 3, 10};
  EXPECT_EQ(stats::median(xs), 2.5);
}

TEST(Stats, PercentileEndpointsAndMidpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_EQ(stats::percentile(xs, 0), 10);
  EXPECT_EQ(stats::percentile(xs, 100), 40);
  EXPECT_NEAR(stats::percentile(xs, 50), 25.0, 1e-12);
}

TEST(Stats, GeomeanAndSummary) {
  const std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(stats::geomean(xs), 4.0, 1e-12);
  const auto s = stats::summarize(xs);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 16);
}

TEST(Stats, SingleElement) {
  const std::vector<double> xs{7};
  EXPECT_EQ(stats::median(xs), 7);
  EXPECT_EQ(stats::stddev(xs), 0);
}

TEST(Table, AlignsAndEmitsCsv) {
  table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22,5"});
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(text.str().find("-----"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"22,5\""), std::string::npos);
  EXPECT_EQ(csv.str().substr(0, 10), "name,value");
}

TEST(Units, ByteFormatting) {
  EXPECT_EQ(format_bytes(64), "64 B");
  EXPECT_EQ(format_bytes(4 * KiB), "4 KiB");
  EXPECT_EQ(format_bytes(MiB), "1 MiB");
  EXPECT_EQ(format_bytes(3 * GiB / 2), "1.50 GiB");
}

TEST(Units, TimeFormatting) {
  EXPECT_EQ(format_seconds(5e-9), "5.0 ns");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
  EXPECT_EQ(format_seconds(3e-3), "3.00 ms");
  EXPECT_EQ(format_seconds(1.5), "1.50 s");
}

TEST(Units, Rates) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gb_per_s(1e9, 1.0), 1.0);
}

TEST(Rng, DeterministicAndUniform) {
  xoshiro256 a(1), b(1), c(2);
  EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());
  double sum = 0;
  xoshiro256 r(42);
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange) {
  xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.bounded(17), 17u);
  }
}

TEST(Cli, ParsesFlagsValuesAndEquals) {
  const char* argv[] = {"prog", "--csv", "--n", "128", "--name=axpy"};
  cli c(5, argv, {{"csv", ""}, {"n", ""}, {"name", ""}});
  EXPECT_FALSE(c.wants_help());
  EXPECT_TRUE(c.has("csv"));
  EXPECT_EQ(c.get_int("n", 0), 128);
  EXPECT_EQ(c.get_string("name", ""), "axpy");
  EXPECT_EQ(c.get_int("missing", 7), 7);
}

TEST(Cli, RejectsUnknownOptions) {
  const char* argv[] = {"prog", "--bogus"};
  cli c(2, argv, {{"n", ""}});
  EXPECT_TRUE(c.wants_help());
}

TEST(Cli, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  cli c(2, argv, {{"n", "count"}});
  EXPECT_TRUE(c.wants_help());
  EXPECT_NE(c.help().find("--n"), std::string::npos);
}

TEST(Timer, MeasuresAndBatches) {
  volatile double sink = 0;
  const auto result = tfx::measure(
      [&] {
        double acc = 0;
        for (int i = 0; i < 1000; ++i) acc += i * 0.5;
        sink = acc;
      },
      3, 1e-4);
  EXPECT_EQ(result.samples.size(), 3u);
  EXPECT_GT(result.min(), 0.0);
  EXPECT_LE(result.min(), result.max());
  EXPECT_GE(result.inner_iters, 1u);
}

TEST(Stopwatch, AdvancesMonotonically) {
  stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_GE(sw.nanoseconds(), 0);
}
