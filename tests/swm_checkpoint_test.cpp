// Checkpoint/restart and the spectral diagnostic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "swm/checkpoint.hpp"
#include "swm/diagnostics.hpp"
#include "swm/model.hpp"

using namespace tfx::swm;
using tfx::fp::bfloat16;
using tfx::fp::float16;

namespace {

swm_params small_params() {
  swm_params p;
  p.nx = 32;
  p.ny = 16;
  return p;
}

const char* tmp_path() { return "/tmp/tfx_checkpoint_test.bin"; }

}  // namespace

TEST(Checkpoint, RoundTripFloat64) {
  const swm_params p = small_params();
  model<double> m(p);
  m.seed_random_eddies(5, 0.5);
  m.run(30);

  checkpoint_info info{p.nx, p.ny,
                       static_cast<std::uint64_t>(m.steps_taken()), 1.0};
  ASSERT_TRUE(save_checkpoint(m.prognostic(), info, tmp_path()));

  const auto loaded = load_checkpoint<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->second.nx, p.nx);
  EXPECT_EQ(loaded->second.steps_taken, 30u);
  for (std::size_t k = 0; k < loaded->first.eta.size(); ++k) {
    ASSERT_EQ(loaded->first.eta.flat()[k], m.prognostic().eta.flat()[k]);
    ASSERT_EQ(loaded->first.u.flat()[k], m.prognostic().u.flat()[k]);
  }
}

TEST(Checkpoint, RestartContinuesTheTrajectoryExactly) {
  // run 40 straight == run 20, checkpoint, restore into a fresh model,
  // run 20 more (standard scheme: no compensation state to lose).
  const swm_params p = small_params();
  model<double> straight(p);
  straight.seed_random_eddies(6, 0.5);
  straight.run(40);

  model<double> first(p);
  first.seed_random_eddies(6, 0.5);
  first.run(20);
  checkpoint_info info{p.nx, p.ny, 20, 1.0};
  ASSERT_TRUE(save_checkpoint(first.prognostic(), info, tmp_path()));

  const auto loaded = load_checkpoint<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  model<double> resumed(p);
  resumed.restore(loaded->first, static_cast<int>(loaded->second.steps_taken));
  resumed.run(20);
  EXPECT_EQ(resumed.steps_taken(), 40);

  for (std::size_t k = 0; k < straight.prognostic().eta.size(); ++k) {
    ASSERT_EQ(resumed.prognostic().eta.flat()[k],
              straight.prognostic().eta.flat()[k]);
  }
}

TEST(Checkpoint, Float16BitsSurviveExactly) {
  swm_params p = small_params();
  p.log2_scale = 12;
  model<float16> m(p, integration_scheme::compensated);
  m.seed_random_eddies(7, 0.5);
  m.run(10);
  checkpoint_info info{p.nx, p.ny, 10, std::ldexp(1.0, 12)};
  ASSERT_TRUE(save_checkpoint(m.prognostic(), info, tmp_path()));
  const auto loaded = load_checkpoint<float16>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->second.scale, 4096.0);
  for (std::size_t k = 0; k < loaded->first.u.size(); ++k) {
    ASSERT_EQ(loaded->first.u.flat()[k].bits(),
              m.prognostic().u.flat()[k].bits());
  }
}

TEST(Checkpoint, ElementSizeMismatchRejected) {
  const swm_params p = small_params();
  model<double> m(p);
  m.seed_random_eddies(8, 0.5);
  checkpoint_info info{p.nx, p.ny, 0, 1.0};
  ASSERT_TRUE(save_checkpoint(m.prognostic(), info, tmp_path()));
  EXPECT_FALSE(load_checkpoint<float>(tmp_path()).has_value());
  EXPECT_FALSE(load_checkpoint<float16>(tmp_path()).has_value());
}

TEST(Checkpoint, MissingOrCorruptFileRejected) {
  EXPECT_FALSE(load_checkpoint<double>("/tmp/tfx_no_such_file").has_value());
  // Corrupt the magic.
  FILE* f = std::fopen(tmp_path(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTACKPT", f);
  std::fclose(f);
  EXPECT_FALSE(load_checkpoint<double>(tmp_path()).has_value());
}

TEST(Checkpoint, CrossPrecisionHandoff) {
  // The deployment pattern: spin up at Float64, hand off to Float16.
  swm_params p = small_params();
  model<double> spinup(p);
  spinup.seed_random_eddies(9, 0.5);
  spinup.run(25);
  checkpoint_info info{p.nx, p.ny, 25, 1.0};
  ASSERT_TRUE(save_checkpoint(spinup.prognostic(), info, tmp_path()));

  const auto loaded = load_checkpoint<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  swm_params p16 = p;
  p16.log2_scale = 12;
  // Scale while converting: the Float16 model stores s * state.
  state<double> scaled = loaded->first;
  const double s = std::ldexp(1.0, p16.log2_scale);
  for (auto* f : {&scaled.u, &scaled.v, &scaled.eta}) {
    for (auto& v : f->flat()) v *= s;
  }
  model<float16> prod(p16, integration_scheme::compensated);
  prod.restore(convert_state<float16>(scaled),
               static_cast<int>(loaded->second.steps_taken));
  prod.run(15);
  EXPECT_TRUE(prod.diag().finite);
  EXPECT_EQ(prod.steps_taken(), 40);
}

namespace {

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(static_cast<bool>(in));
  std::vector<char> buf(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  return buf;
}

void write_file(const std::string& path, const std::vector<char>& buf) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

/// A deterministic state with non-trivial bit patterns at any element
/// type (including values half precision rounds: the stored bits, not
/// the intended reals, are what must round-trip).
template <typename T>
state<T> patterned_state(int nx, int ny) {
  state<T> s(nx, ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      s.u(i, j) = T(0.001 * i - 0.002 * j);
      s.v(i, j) = T(1.0 / (1 + i + j));
      s.eta(i, j) = T(std::sin(0.1 * i) * std::cos(0.2 * j));
    }
  }
  return s;
}

template <typename T>
void expect_state_bits_equal(const state<T>& a, const state<T>& b) {
  ASSERT_EQ(a.u.size(), b.u.size());
  for (const auto& [fa, fb] : {std::pair{&a.u, &b.u}, std::pair{&a.v, &b.v},
                               std::pair{&a.eta, &b.eta}}) {
    ASSERT_EQ(0, std::memcmp(fa->flat().data(), fb->flat().data(),
                             fa->flat().size() * sizeof(T)));
  }
}

/// Save/load at element type T and require a bit-exact round trip of
/// fields, compensation, and metadata.
template <typename T>
void round_trip_with_compensation() {
  const int nx = 12, ny = 6;
  const state<T> fields = patterned_state<T>(nx, ny);
  state<T> comp = patterned_state<T>(nx, ny);
  for (auto& x : comp.eta.flat()) x = T(static_cast<double>(x) * 0.125);
  const checkpoint_info info{nx, ny, 77, 2.5};
  ASSERT_TRUE(save_checkpoint(fields, comp, info, tmp_path()));

  const auto loaded = load_checkpoint_full<T>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->info.nx, nx);
  EXPECT_EQ(loaded->info.ny, ny);
  EXPECT_EQ(loaded->info.steps_taken, 77u);
  EXPECT_EQ(loaded->info.scale, 2.5);
  EXPECT_TRUE(loaded->info.has_compensation);
  expect_state_bits_equal(loaded->fields, fields);
  expect_state_bits_equal(loaded->compensation, comp);
}

}  // namespace

TEST(CheckpointV2, RoundTripAllElementTypes) {
  round_trip_with_compensation<double>();
  round_trip_with_compensation<float>();
  round_trip_with_compensation<float16>();
  round_trip_with_compensation<bfloat16>();
}

TEST(CheckpointV2, MagicIsTfxswm2AndNoTmpFileSurvives) {
  const state<double> s = patterned_state<double>(8, 4);
  ASSERT_TRUE(save_checkpoint(s, checkpoint_info{8, 4, 1, 1.0}, tmp_path()));
  const auto buf = read_file(tmp_path());
  ASSERT_GE(buf.size(), 8u);
  EXPECT_EQ(0, std::memcmp(buf.data(), "TFXSWM2\0", 8));
  EXPECT_FALSE(file_exists(std::string(tmp_path()) + ".tmp"));
}

TEST(CheckpointV2, FailedSaveLeavesPreviousCheckpointIntact) {
  const state<double> good = patterned_state<double>(8, 4);
  ASSERT_TRUE(
      save_checkpoint(good, checkpoint_info{8, 4, 11, 1.0}, tmp_path()));
  // A save into a nonexistent directory must fail loudly...
  EXPECT_FALSE(save_checkpoint(good, checkpoint_info{8, 4, 12, 1.0},
                               "/tmp/tfx_no_such_dir_xyz/ckpt.bin"));
  // ...and the earlier file must still load (atomic-rename discipline).
  const auto loaded = load_checkpoint_full<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->info.steps_taken, 11u);
}

TEST(CheckpointV2, TruncationRejectedAtEveryLength) {
  const state<double> s = patterned_state<double>(8, 4);
  ASSERT_TRUE(save_checkpoint(s, checkpoint_info{8, 4, 3, 1.0}, tmp_path()));
  const auto full = read_file(tmp_path());
  const std::string cut = std::string(tmp_path()) + ".cut";
  for (const std::size_t keep :
       {full.size() - 1, full.size() - 8, full.size() - 9, full.size() / 2,
        std::size_t{44}, std::size_t{7}}) {
    write_file(cut, {full.begin(), full.begin() + static_cast<long>(keep)});
    EXPECT_FALSE(load_checkpoint_full<double>(cut).has_value())
        << "accepted a file truncated to " << keep << " bytes";
  }
  // A padded file is just as wrong as a truncated one.
  auto padded = full;
  padded.push_back('\0');
  write_file(cut, padded);
  EXPECT_FALSE(load_checkpoint_full<double>(cut).has_value());
  std::remove(cut.c_str());
}

TEST(CheckpointV2, BitFlipAnywhereRejected) {
  const state<double> s = patterned_state<double>(8, 4);
  ASSERT_TRUE(save_checkpoint(s, checkpoint_info{8, 4, 3, 1.0}, tmp_path()));
  const auto full = read_file(tmp_path());
  const std::string bad = std::string(tmp_path()) + ".flip";
  // Flip one bit in the payload, in the header metadata, and in the
  // CRC footer itself: all must be caught.
  for (const std::size_t at :
       {full.size() / 2, std::size_t{16}, full.size() - 4}) {
    auto flipped = full;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x10);
    write_file(bad, flipped);
    EXPECT_FALSE(load_checkpoint_full<double>(bad).has_value())
        << "accepted a bit flip at offset " << at;
  }
  std::remove(bad.c_str());
}

TEST(CheckpointV2, WrongMagicAndWrongElementSizeRejected) {
  const state<double> s = patterned_state<double>(8, 4);
  ASSERT_TRUE(save_checkpoint(s, checkpoint_info{8, 4, 3, 1.0}, tmp_path()));
  auto buf = read_file(tmp_path());
  buf[6] = '3';  // "TFXSWM3" - a future version is not silently loaded
  const std::string bad = std::string(tmp_path()) + ".magic";
  write_file(bad, buf);
  EXPECT_FALSE(load_checkpoint_full<double>(bad).has_value());
  std::remove(bad.c_str());
  // Element-size mismatch through the full loader, too.
  EXPECT_FALSE(load_checkpoint_full<float>(tmp_path()).has_value());
  EXPECT_FALSE(load_checkpoint_full<bfloat16>(tmp_path()).has_value());
}

TEST(CheckpointV2, V1FilesStillLoadAndTruncatedV1Rejected) {
  // Hand-write a v1 file (no flags, no CRC) byte for byte.
  const int nx = 6, ny = 4;
  const state<float> s = patterned_state<float>(nx, ny);
  std::vector<char> buf;
  auto put = [&](const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf.insert(buf.end(), c, c + n);
  };
  put("TFXSWM1\0", 8);
  const std::uint32_t elem = 4, unx = 6, uny = 4;
  const std::uint64_t steps = 9;
  const double scale = 1.5;
  put(&elem, 4);
  put(&unx, 4);
  put(&uny, 4);
  put(&steps, 8);
  put(&scale, 8);
  for (const auto* f : {&s.u, &s.v, &s.eta}) {
    put(f->flat().data(), f->flat().size() * sizeof(float));
  }
  const std::string v1 = std::string(tmp_path()) + ".v1";
  write_file(v1, buf);

  const auto loaded = load_checkpoint_full<float>(v1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->info.steps_taken, 9u);
  EXPECT_EQ(loaded->info.scale, 1.5);
  EXPECT_FALSE(loaded->info.has_compensation);
  expect_state_bits_equal(loaded->fields, s);
  // Compensation defaults to zero when the file carries none.
  for (const auto& x : loaded->compensation.eta.flat()) {
    EXPECT_EQ(static_cast<double>(x), 0.0);
  }

  // The v1 silent-truncation hole is closed: a short v1 file is
  // rejected, never zero-filled.
  write_file(v1, {buf.begin(), buf.end() - 12});
  EXPECT_FALSE(load_checkpoint_full<float>(v1).has_value());
  std::remove(v1.c_str());
}

TEST(CheckpointV2, CompensatedRestartContinuesBitExactly) {
  // The reason compensation is persisted at all: a Kahan-compensated
  // integration restarted without its residuals drifts off the
  // straight-through trajectory; with them it is bit-identical.
  const swm_params p = small_params();
  model<double> straight(p, integration_scheme::compensated);
  straight.seed_random_eddies(6, 0.5);
  straight.run(40);

  model<double> first(p, integration_scheme::compensated);
  first.seed_random_eddies(6, 0.5);
  first.run(20);
  const checkpoint_info info{p.nx, p.ny, 20, 1.0};
  ASSERT_TRUE(
      save_checkpoint(first.prognostic(), first.compensation(), info,
                      tmp_path()));

  const auto loaded = load_checkpoint_full<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->info.has_compensation);
  model<double> resumed(p, integration_scheme::compensated);
  resumed.restore(loaded->fields, loaded->compensation,
                  static_cast<int>(loaded->info.steps_taken));
  resumed.run(20);
  expect_state_bits_equal(resumed.prognostic(), straight.prognostic());
}

TEST(Spectrum, PureModeHasSinglePeak) {
  field2d<double> f(32, 4);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 32; ++i) {
      f(i, j) = std::sin(2.0 * M_PI * 5 * i / 32.0);
    }
  }
  const auto power = zonal_power_spectrum(f);
  ASSERT_EQ(power.size(), 17u);
  // All the energy at k=5.
  for (std::size_t k = 0; k < power.size(); ++k) {
    if (k == 5) {
      EXPECT_GT(power[k], 1.0);
    } else {
      EXPECT_NEAR(power[k], 0.0, 1e-9);
    }
  }
}

TEST(Spectrum, ParsevalHolds) {
  // Sum of |f|^2 equals (roughly, with the one-sided folding) the
  // spectral sum: check for a deterministic random field via the exact
  // two-sided relation sum|F_k|^2 = n * sum|f_i|^2.
  field2d<double> f(16, 2);
  tfx::xoshiro256 rng(4);
  double ss = 0;
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 16; ++i) {
      f(i, j) = rng.uniform(-1.0, 1.0);
      ss += f(i, j) * f(i, j);
    }
  }
  const auto power = zonal_power_spectrum(f);
  // Reconstruct the two-sided total: k=0 and k=n/2 appear once, the
  // rest twice.
  double total = power[0] + power[8];
  for (std::size_t k = 1; k < 8; ++k) total += 2.0 * power[k];
  EXPECT_NEAR(total, ss, 1e-9 * (ss + 1.0));
}

TEST(Spectrum, Float16PreservesTheEnergyCascade) {
  // Beyond point-wise RMSE: the spectral shape (where the turbulence
  // keeps its energy) must survive the Float16 run - the spectral
  // version of Fig. 4.
  swm_params p;
  p.nx = 48;
  p.ny = 24;
  model<double> ref(p);
  ref.seed_random_eddies(42, 0.5);
  ref.run(100);

  swm_params p16 = p;
  p16.log2_scale = 13;
  tfx::fp::ftz_guard ftz(tfx::fp::ftz_mode::flush);
  model<float16> half(p16, integration_scheme::compensated);
  half.seed_random_eddies(42, 0.5);
  half.run(100);

  const auto sr = zonal_power_spectrum(
      relative_vorticity(ref.unscaled(), p));
  const auto sh = zonal_power_spectrum(
      relative_vorticity(half.unscaled(), p16));
  ASSERT_EQ(sr.size(), sh.size());
  for (std::size_t k = 1; k < sr.size(); ++k) {
    if (sr[k] > 1e-12) {
      EXPECT_NEAR(sh[k] / sr[k], 1.0, 0.05) << "wavenumber " << k;
    }
  }
}
