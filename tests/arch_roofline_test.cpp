// The analytic A64FX model: peak rates, bandwidth regimes, and the
// qualitative properties Fig. 1 depends on.

#include <gtest/gtest.h>

#include "arch/cache.hpp"
#include "arch/roofline.hpp"

using namespace tfx::arch;

TEST(A64FXParams, PeakGflopsByPrecision) {
  // 2 pipes x lanes x 2 flops x 2.0 GHz = 64 GF/core at Float64
  // (48 cores x 64 GF = the 3.072 TF/node of Fugaku's normal mode),
  // doubling at each halving of the element - the 4x Float16 promise
  // of § I.
  EXPECT_DOUBLE_EQ(fugaku_node.peak_gflops(8), 64.0);
  EXPECT_DOUBLE_EQ(fugaku_node.peak_gflops(4), 128.0);
  EXPECT_DOUBLE_EQ(fugaku_node.peak_gflops(2), 256.0);
  EXPECT_DOUBLE_EQ(fugaku_node.peak_gflops(2) / fugaku_node.peak_gflops(8),
                   4.0);
}

TEST(EffectiveBandwidth, RegimePlateaus) {
  // Small working sets see ~L1 bandwidth, huge ones ~memory bandwidth.
  const double small = effective_bandwidth_gbs(fugaku_node, 8 * 1024);
  const double mid = effective_bandwidth_gbs(fugaku_node, 2 * 1024 * 1024);
  const double huge =
      effective_bandwidth_gbs(fugaku_node, 512ull * 1024 * 1024);
  EXPECT_NEAR(small, fugaku_node.l1_bandwidth_gbs, 1.0);
  EXPECT_LT(mid, fugaku_node.l2_bandwidth_gbs * 1.35);
  EXPECT_GT(mid, fugaku_node.mem_bandwidth_gbs);
  EXPECT_NEAR(huge, fugaku_node.mem_bandwidth_gbs, 3.0);
}

TEST(EffectiveBandwidth, MonotoneNonIncreasing) {
  double prev = effective_bandwidth_gbs(fugaku_node, 1024);
  for (std::size_t ws = 2048; ws <= (1ull << 30); ws *= 2) {
    const double bw = effective_bandwidth_gbs(fugaku_node, ws);
    EXPECT_LE(bw, prev * 1.0000001) << "ws=" << ws;
    prev = bw;
  }
}

namespace {

kernel_profile axpy_profile_sve() {
  kernel_profile p;
  p.vector_bits = 512;
  return p;
}

}  // namespace

TEST(Roofline, LargeAxpyIsMemoryBound) {
  // 2^24 doubles: working set 256 MiB, traffic 3 bytes/elem moved at
  // memory bandwidth.
  const std::size_t n = 1 << 24;
  const auto t = predict(fugaku_node, axpy_profile_sve(), n, 8, 2 * n * 8);
  EXPECT_GT(t.memory_seconds, t.compute_seconds);
  EXPECT_GT(t.memory_seconds, t.lsu_seconds);
  const double expected = 3.0 * 8.0 * static_cast<double>(n) /
                          (fugaku_node.mem_bandwidth_gbs * 1e9);
  EXPECT_NEAR(t.memory_seconds, expected, expected * 0.1);
}

TEST(Roofline, SmallAxpyIsLsuBound) {
  // 1024 doubles: everything in L1; axpy needs 2 loads + 1 store per
  // vector, which binds before the single FMA does.
  const auto t = predict(fugaku_node, axpy_profile_sve(), 1024, 8,
                         2 * 1024 * 8);
  EXPECT_GT(t.lsu_seconds, t.compute_seconds);
  EXPECT_GE(t.lsu_seconds, t.memory_seconds * 0.5);
}

TEST(Roofline, GflopsBelowPeakAlways) {
  for (std::size_t elem : {2u, 4u, 8u}) {
    for (std::size_t n = 16; n <= (1u << 22); n *= 8) {
      const auto t =
          predict(fugaku_node, axpy_profile_sve(), n, elem, 2 * n * elem);
      EXPECT_LT(t.gflops, fugaku_node.peak_gflops(elem) * 1.0001)
          << "n=" << n << " elem=" << elem;
      EXPECT_GT(t.gflops, 0.0);
    }
  }
}

TEST(Roofline, GflopsCurveHasCachePeakAndMemoryPlateau) {
  // The Fig. 1 shape: rises with n (overhead amortization), peaks while
  // resident in cache, drops to the bandwidth plateau.
  const auto at = [&](std::size_t n) {
    return predict(fugaku_node, axpy_profile_sve(), n, 4, 2 * n * 4).gflops;
  };
  const double tiny = at(32);
  const double cached = at(4096);      // 32 KiB working set: L1
  const double huge = at(1 << 24);     // 128 MiB: HBM
  EXPECT_LT(tiny, cached);
  EXPECT_LT(huge, cached);
}

TEST(Roofline, NeonHalvesPeakButNotMemoryPlateau) {
  kernel_profile neon = axpy_profile_sve();
  neon.vector_bits = 128;
  const std::size_t n_cached = 2048;
  const auto sve_c = predict(fugaku_node, axpy_profile_sve(), n_cached, 4,
                             2 * n_cached * 4);
  const auto neon_c = predict(fugaku_node, neon, n_cached, 4,
                              2 * n_cached * 4);
  EXPECT_GT(sve_c.gflops, neon_c.gflops * 2.0);  // 4x fewer lanes

  // At huge n SVE is memory-bound, but NEON's quarter-width accesses
  // keep the LSU ports from ever saturating HBM on one core - the
  // model agrees with Fig. 1, where OpenBLAS/ARMPL trail at *every*
  // size, not only in cache.
  const std::size_t n_big = 1 << 24;
  const auto sve_b = predict(fugaku_node, axpy_profile_sve(), n_big, 4,
                             2 * n_big * 4);
  const auto neon_b = predict(fugaku_node, neon, n_big, 4, 2 * n_big * 4);
  EXPECT_GT(sve_b.gflops, neon_b.gflops);                // NEON still behind
  EXPECT_LT(sve_b.gflops / neon_b.gflops, 2.0);          // but far closer
  EXPECT_GT(neon_b.lsu_seconds, neon_b.memory_seconds);  // LSU-bound
  EXPECT_GT(sve_b.memory_seconds, sve_b.lsu_seconds);    // BW-bound
}

TEST(Roofline, SubnormalTrapPenaltyDominatesWhenPresent) {
  const std::size_t n = 4096;
  const auto clean = predict(fugaku_node, axpy_profile_sve(), n, 2,
                             2 * n * 2, 0);
  const auto trapped = predict(fugaku_node, axpy_profile_sve(), n, 2,
                               2 * n * 2, n);  // every op traps
  EXPECT_GT(trapped.seconds, clean.seconds * 10.0);
}

TEST(Roofline, ScalarSoftFloatProfile) {
  kernel_profile soft = axpy_profile_sve();
  soft.vector_bits = 0;  // scalar
  soft.soft_float_cycles = 20.0;
  const std::size_t n = 4096;
  const auto hard = predict(fugaku_node, axpy_profile_sve(), n, 2, 2 * n * 2);
  const auto emul = predict(fugaku_node, soft, n, 2, 2 * n * 2);
  EXPECT_GT(emul.seconds, hard.seconds * 20.0);
}

TEST(Roofline, CrossValidateLevelMixAgainstCacheSim) {
  // The analytic residency fractions should agree qualitatively with
  // the trace-driven simulator for a streaming 2-array working set.
  for (const std::size_t n : {2048u, 65536u, 1u << 21}) {
    const std::size_t ws = 2 * n * 8;
    cache_hierarchy sim;
    // Two streaming passes (x read, y read+write), repeated to steady
    // state.
    for (int pass = 0; pass < 2; ++pass) {
      sim.reset_stats();
      sim.stream(0, n * 8, 256, false);
      sim.stream(1ull << 32, n * 8, 256, true);
    }
    const double l1_hit = sim.l1().stats().hit_rate();
    const double analytic_l1_fraction =
        std::min(1.0, 0.8 * 64 * 1024 / static_cast<double>(ws));
    // Same regime call: both near 1 in L1, both near 0 beyond.
    if (analytic_l1_fraction > 0.9) {
      EXPECT_GT(l1_hit, 0.9) << "ws=" << ws;
    }
    if (analytic_l1_fraction < 0.1) {
      EXPECT_LT(l1_hit, 0.1) << "ws=" << ws;
    }
  }
}
