#pragma once

/// \file resilience.hpp
/// Rollback recovery for the distributed shallow-water model: buddy
/// checkpoints, crash-tolerant agreement, and deterministic replay.
///
/// At the paper's 384-node scale a rank failure is an operational
/// fact; the PR-2 fault plane injects exactly such failures, and this
/// layer survives them. The discipline is classic in-memory
/// checkpoint/restart with buddy replication:
///
///  * Every K steps each rank serializes its full integration state
///    (prognostic slabs + Kahan compensation + step counter) and
///    ships it to its *buddy*, rank (r+1) % p. The exchange plus a
///    commit-vote allreduce forms a two-phase commit: the vote cannot
///    complete anywhere until every rank holds both its own and its
///    left neighbour's prepared snapshot, so "any rank committed
///    epoch e" implies "every rank prepared epoch e" - the invariant
///    recovery leans on (resilient_session::promote_to).
///
///  * When the step loop raises comm_error (dead neighbour, exhausted
///    retries) or numerical_error (the health sentinel, treated like a
///    crash), every rank converges on the world's recovery_board
///    (mpisim/runtime.hpp) - a shared control plane that agrees on the
///    casualty set via generation-keyed abortable barriers, tolerating
///    further deaths at any point of the round. Survivors then run the
///    agreement collective (agree_max over a survivors_of
///    sub-communicator) for the newest globally committed epoch, each
///    casualty is re-seeded with its slab from its buddy's replica,
///    everyone rolls back, re-replicates, and re-executes.
///
///  * Replay is bit-deterministic: the fault plane's draws are pure
///    functions of (seed, channel, sequence, attempt), sequence
///    counters never rewind, and every interruption point is itself a
///    deterministic function of the schedule (sends are eager, so the
///    messages a rank deposited before dying do not depend on thread
///    timing). tests/swm_recovery_test pins the recovered final state
///    bit-for-bit against the fault-free oracle.
///
/// Unrecoverable situations surface as comm_error with
/// reason::unrecoverable on every rank (never a hang): a rank and its
/// buddy dying together (the replica died with its holder), no
/// committed epoch surviving, or the round budget running out.
/// Scheduled crashes, health-sentinel hits, and exhausted retry
/// budgets are recovered; tune retry_policy generously when chaos
/// probabilities are on, since a retry failure fail-stops the sender.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/patterns.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/subcomm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/distributed.hpp"
#include "swm/health.hpp"
#include "swm/tags.hpp"

namespace tfx::swm {

/// Tag space of the resilience layer (swm/tags.hpp band table: below
/// the collectives' 1<<20, above the model's halo tags).
inline constexpr int checkpoint_tag = tags::checkpoint;    ///< buddy prepare
inline constexpr int transfer_tag = tags::transfer;        ///< buddy re-seed
inline constexpr int recovery_tag_offset = tags::recovery;

/// Transient-corruption injection for tests: right after completing
/// `step`, rank `rank` has a NaN written into its surface height -
/// once per session, so the post-rollback replay runs clean.
struct soft_fault {
  int step = -1;
  int rank = -1;
  [[nodiscard]] bool enabled() const { return step >= 0 && rank >= 0; }
};

/// Knobs of a resilient run.
struct resilience_options {
  int checkpoint_interval = 8;  ///< K: commit every K steps (>= 1)
  int health_interval = 0;      ///< H: sentinel scan cadence (0 = off;
                                ///< K % H must be 0 so no poisoned
                                ///< state can reach a commit)
  soft_fault inject;            ///< test-only NaN injection
  int max_rounds = 64;          ///< recovery rounds before giving up
};

/// What a resilient run did, per rank.
struct recovery_report {
  int rounds = 0;          ///< successful recovery rounds
  int aborted_rounds = 0;  ///< round attempts aborted by further deaths
  std::vector<int> casualties;  ///< every death reported (history)
  int replayed_steps = 0;       ///< steps re-executed after rollbacks
  std::uint64_t commits = 0;    ///< committed epochs (incl. initial)
  std::uint64_t final_epoch = 0;
  /// sends_posted() at the entry of each commit; probe runs use these
  /// to aim a crash *inside* a commit's message window.
  std::vector<std::uint64_t> commit_marks;
  /// sends_posted() when this rank first entered recovery; probe runs
  /// use it to aim a second crash *inside* a recovery round.
  std::uint64_t recovery_entry_mark = 0;
};

/// The checkpoint commit restated as a DES event program (buddy-ring
/// exchange of `message_bytes` + the 1-byte commit-vote allreduce),
/// mirroring resilient_session::checkpoint_commit operation for
/// operation; tests/swm_recovery_test pins the virtual clocks of the
/// two against each other, the same discipline as mpisim/patterns.hpp.
mpisim::sim_program make_checkpoint_program(const mpisim::tofud_params& net,
                                            int p,
                                            std::size_t message_bytes);

/// One resilient integration: drives a distributed_model through
/// `total_steps` RK4 steps, surviving fault-plane crashes, exhausted
/// retry budgets, and health-sentinel hits via buddy-checkpoint
/// rollback. Requires an active fault plane when p > 1 (the recovery
/// wire protocol rides on crash notices).
template <typename T>
class resilient_session {
 public:
  static constexpr std::size_t header_bytes = 16;  ///< u64 epoch, i64 steps

  resilient_session(mpisim::communicator& comm, distributed_model<T>& model,
                    resilience_options opt)
      : comm_(comm), model_(model), opt_(opt) {
    TFX_EXPECTS(opt_.checkpoint_interval >= 1);
    TFX_EXPECTS(opt_.max_rounds >= 1);
    // K-boundaries must be a subset of H-boundaries: the sentinel then
    // provably runs before every commit, so a non-finite state can
    // never enter a prepared checkpoint.
    TFX_EXPECTS(opt_.health_interval == 0 ||
                opt_.checkpoint_interval % opt_.health_interval == 0);
  }

  /// Wire size of one snapshot message (header + packed slab image).
  /// Snapshots travel between ranks whose slab heights can differ
  /// under an uneven decomposition, so the size follows the image's
  /// *owner* - the rank whose state the snapshot captures.
  [[nodiscard]] std::size_t message_bytes_of(int owner) const {
    return header_bytes + model_.packed_size_of(owner) * sizeof(T);
  }

  /// Wire size of this rank's own snapshot message.
  [[nodiscard]] std::size_t message_bytes() const {
    return message_bytes_of(comm_.rank());
  }

  /// Run to `total_steps`, recovering as needed; collective.
  recovery_report run(int total_steps) {
    TFX_EXPECTS(total_steps >= 0);
    const int p = comm_.size();
    // The recovery wire protocol needs crash notices, which only the
    // fault-plane path produces; single-rank runs have no peers and
    // recover purely locally.
    TFX_EXPECTS(p == 1 || comm_.fault_plane_active());
    report_ = recovery_report{};

    for (;;) {
      if (p > 1 && board().abandoned()) {
        throw unrecoverable("a peer abandoned recovery");
      }
      try {
        if (!initialized_) {
          checkpoint_commit();  // epoch 1: replicate the initial state
          initialized_ = true;
        }
        while (model_.steps_taken() < total_steps) {
          model_.step();
          const int s = model_.steps_taken();
          maybe_inject(s);
          if (opt_.health_interval > 0 && s % opt_.health_interval == 0) {
            model_.check_health();
          }
          if (s % opt_.checkpoint_interval == 0) checkpoint_commit();
        }
        if (p == 1) break;
        if (board().park() == mpisim::recovery_board::park_result::all_done) {
          break;
        }
        run_recovery();
      } catch (const numerical_error&) {
        trace("err:numerical");
        if (p == 1) {
          TFX_EXPECTS(committed_local_.valid);
          restore_committed();
          continue;
        }
        // The sentinel treats corruption like a crash: fail-stop (the
        // notice wakes the peers), report the death, forget the
        // poisoned state - the buddy re-seeds us.
        comm_.fail_stop();
        board().report_death(comm_.rank());
        wipe();
        run_recovery();
      } catch (const mpisim::comm_error& e) {
        trace("err:comm", comm_.self_fail_stopped() ? 1 : 0);
        if (e.why() == mpisim::comm_error::reason::unrecoverable) throw;
        if (comm_.self_fail_stopped()) {
          // Scheduled crash or own send's retries exhausted: this rank
          // is the casualty. Its memory is gone by definition.
          board().report_death(comm_.rank());
          wipe();
        }
        run_recovery();
      }
    }
    report_.casualties = p > 1 ? board().casualties() : std::vector<int>{};
    report_.final_epoch = next_epoch_ - 1;
    return report_;
  }

  /// One two-phase buddy checkpoint commit at the current state;
  /// collective. Public so the DES cross-pin test can drive a bare
  /// commit and compare virtual clocks with make_checkpoint_program.
  void checkpoint_commit() {
    // The two-phase commit as a resil-domain span on the virtual
    // clock: a = the epoch being committed, b = the model step it
    // snapshots. Closes during unwinding too, so a commit a casualty
    // dies inside still leaves balanced B/E pairs in the trace.
    const obs::scoped_vspan commit_span(
        obs::domain::resil, static_cast<std::uint16_t>(comm_.rank()),
        "ckpt.commit", [this] { return comm_.now(); }, next_epoch_,
        static_cast<std::uint64_t>(model_.steps_taken()));
    trace("commit:enter", next_epoch_, comm_.sends_posted());
    report_.commit_marks.push_back(comm_.sends_posted());
    snapshot snap;
    snap.valid = true;
    snap.epoch = next_epoch_;
    snap.steps = model_.steps_taken();
    snap.data.resize(model_.packed_size());
    model_.pack_state(std::span<T>(snap.data));

    const int p = comm_.size();
    if (p == 1) {
      committed_local_ = std::move(snap);
      ++next_epoch_;
      ++report_.commits;
      return;
    }
    const int r = comm_.rank();
    // Phase 1 (prepare): ring exchange - my snapshot to my buddy, my
    // left neighbour's snapshot to me.
    pending_local_ = std::move(snap);
    send_snapshot(pending_local_, (r + 1) % p, checkpoint_tag);
    pending_remote_ =
        recv_snapshot((r - 1 + p) % p, checkpoint_tag, (r - 1 + p) % p);
    TFX_EXPECTS(pending_remote_.epoch == next_epoch_);
    // Phase 2 (vote): the allreduce doubles as the commit decision. It
    // cannot complete on any rank until every rank contributed, and a
    // rank only contributes after finishing its prepare - so "anyone
    // committed e" implies "everyone prepared e".
    std::uint8_t ready = 1, all_ready = 0;
    mpisim::allreduce(comm_, std::span<const std::uint8_t>(&ready, 1),
                      std::span<std::uint8_t>(&all_ready, 1),
                      mpisim::ops::min{},
                      mpisim::coll_algorithm::recursive_doubling);
    committed_local_ = std::move(pending_local_);
    pending_local_.valid = false;
    committed_remote_ = std::move(pending_remote_);
    pending_remote_.valid = false;
    ++next_epoch_;
    ++report_.commits;
  }

 private:
  struct snapshot {
    bool valid = false;
    std::uint64_t epoch = 0;
    std::int64_t steps = 0;
    std::vector<T> data;
  };

  [[nodiscard]] mpisim::recovery_board& board() { return comm_.board(); }

  /// Protocol trace: every session-level protocol step becomes a
  /// resil-domain instant on the rank's virtual clock when the
  /// observability plane is live (the `what` strings double as event
  /// names - all string literals, so the no-ownership contract of
  /// obs::event holds), and TFX_RECOVERY_TRACE=1 additionally streams
  /// it to stderr for debugging hangs.
  void trace(const char* what, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (obs::active()) {
      obs::instant_at(obs::domain::resil,
                      static_cast<std::uint16_t>(comm_.rank()), what,
                      comm_.now(), a, b);
      obs::metric_add("resil.events");
    }
    static const bool on = std::getenv("TFX_RECOVERY_TRACE") != nullptr;
    if (!on) return;
    std::fprintf(stderr, "[rank %d] %s %llu %llu\n", comm_.rank(), what,
                 static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b));
  }

  [[nodiscard]] static mpisim::comm_error unrecoverable(
      const std::string& what) {
    return mpisim::comm_error(mpisim::comm_error::reason::unrecoverable, -1,
                              "recovery: " + what);
  }

  void send_snapshot(const snapshot& s, int dst, int tag) {
    const std::size_t payload = s.data.size() * sizeof(T);
    std::vector<std::byte> buf(header_bytes + payload);
    std::memcpy(buf.data(), &s.epoch, 8);
    std::memcpy(buf.data() + 8, &s.steps, 8);
    std::memcpy(buf.data() + header_bytes, s.data.data(), payload);
    comm_.send_bytes(buf, dst, tag);
  }

  /// Receive `owner`'s snapshot from `src` (owner != src during a
  /// recovery transfer, where the buddy returns MY snapshot to me).
  [[nodiscard]] snapshot recv_snapshot(int src, int tag, int owner) {
    const std::size_t elems = model_.packed_size_of(owner);
    std::vector<std::byte> buf(header_bytes + elems * sizeof(T));
    comm_.recv_bytes(buf, src, tag);
    snapshot s;
    s.valid = true;
    std::memcpy(&s.epoch, buf.data(), 8);
    std::memcpy(&s.steps, buf.data() + 8, 8);
    s.data.resize(elems);
    std::memcpy(s.data.data(), buf.data() + header_bytes,
                elems * sizeof(T));
    return s;
  }

  void maybe_inject(int step_just_done) {
    if (!opt_.inject.enabled() || injected_) return;
    if (comm_.rank() != opt_.inject.rank) return;
    if (step_just_done != opt_.inject.step) return;
    injected_ = true;  // once per session: the replay runs clean
    model_.prognostic_slabs().eta(0, 0) =
        T(std::numeric_limits<double>::quiet_NaN());
  }

  /// Roll the model back to the newest committed epoch.
  void restore_committed() {
    TFX_EXPECTS(committed_local_.valid);
    const int back = static_cast<int>(committed_local_.steps);
    const int cur = model_.steps_taken();
    trace("rollback", static_cast<std::uint64_t>(back),
          static_cast<std::uint64_t>(cur > back ? cur - back : 0));
    if (cur > back) report_.replayed_steps += cur - back;
    model_.restore_packed(std::span<const T>(committed_local_.data), back);
  }

  /// This rank died: its process memory is gone. Zero the model state
  /// and drop every snapshot it held (its own *and* the replica it
  /// kept for its left neighbour), so recovery must genuinely re-seed
  /// it over the wire.
  void wipe() {
    const std::vector<T> zeros(model_.packed_size(), T{});
    model_.restore_packed(std::span<const T>(zeros), 0);
    committed_local_.valid = false;
    pending_local_.valid = false;
    committed_remote_.valid = false;
    pending_remote_.valid = false;
  }

  /// Lift `epoch` from prepared to committed on this rank. Safe by the
  /// commit-vote invariant: the agreement only ever names an epoch
  /// whose vote completed somewhere, hence one this rank prepared.
  void promote_to(std::uint64_t epoch) {
    auto lift = [&](snapshot& committed, snapshot& pending,
                    const char* which) {
      if (committed.valid && committed.epoch == epoch) return;
      if (pending.valid && pending.epoch == epoch) {
        committed = std::move(pending);
        pending.valid = false;
        return;
      }
      throw unrecoverable(std::string("epoch ") + std::to_string(epoch) +
                          " was never prepared here (" + which +
                          "): two-phase-commit invariant broken");
    };
    lift(committed_local_, pending_local_, "own slab");
    lift(committed_remote_, pending_remote_, "buddy replica");
  }

  /// Converge with every other rank on one recovery round and see it
  /// through; returns after a round completes. Further deaths abort
  /// the round (a barrier fails or recovery messaging throws) and it
  /// restarts under the grown casualty set.
  void run_recovery() {
    if (report_.recovery_entry_mark == 0) {
      report_.recovery_entry_mark = comm_.sends_posted();
    }
    for (;;) {
      if (board().abandoned()) {
        throw unrecoverable("a peer abandoned recovery");
      }
      if (report_.rounds + report_.aborted_rounds >= opt_.max_rounds) {
        throw unrecoverable("round budget exhausted after " +
                            std::to_string(report_.aborted_rounds) +
                            " aborts");
      }
      const auto round = board().begin_round();
      trace("round:begin", round.generation, round.dead.size());
      // Wake peers blocked in receives; everyone converges here.
      comm_.announce_recovery();
      if (!board().arrive(0, round.generation)) {
        trace("round:abort-barrier0", round.generation);
        ++report_.aborted_rounds;
        continue;
      }
      // All ranks are inside the round: stale traffic (undelivered
      // halo rows, crash notices, poisons) can be discarded safely.
      comm_.drain_mailbox();
      if (!board().arrive(1, round.generation)) {
        trace("round:abort-barrier1", round.generation);
        ++report_.aborted_rounds;
        continue;
      }
      // Nobody sends recovery messages until every mailbox is clean.
      try {
        recover_round(round);
      } catch (const mpisim::comm_error& e) {
        trace("round:abort-error", round.generation,
              comm_.self_fail_stopped() ? 1 : 0);
        if (e.why() == mpisim::comm_error::reason::unrecoverable) throw;
        ++report_.aborted_rounds;
        if (comm_.self_fail_stopped()) {
          board().report_death(comm_.rank());
          wipe();
        } else {
          // A mid-round failure implies a real death whose report is
          // on its way (or already landed); wait for the generation to
          // move before re-entering, so this rank cannot double-arrive
          // at the barriers of the generation it already joined.
          board().await_generation_past(round.generation);
        }
        continue;
      }
      if (!board().complete_round(round.generation)) {
        trace("round:abort-complete", round.generation);
        ++report_.aborted_rounds;
        continue;
      }
      trace("round:done", round.generation);
      comm_.mark_recovered();
      ++report_.rounds;
      return;
    }
  }

  /// The body of one recovery round (both barriers already passed).
  void recover_round(const mpisim::recovery_board::round_info& round) {
    const int p = comm_.size();
    const std::vector<int>& dead = round.dead;
    auto contains = [&](int r) {
      return std::find(dead.begin(), dead.end(), r) != dead.end();
    };
    // A casualty and its buddy dying together lose the replica: every
    // rank knows the same casualty set, so every rank throws the same
    // verdict - a consistent, loud failure instead of a hang.
    for (const int d : dead) {
      if (contains((d + 1) % p)) {
        throw unrecoverable("rank " + std::to_string(d) + " and its buddy " +
                            std::to_string((d + 1) % p) +
                            " died together: the buddy replica is lost");
      }
    }
    const bool i_am_dead = contains(comm_.rank());
    std::uint64_t target = 0;
    if (!i_am_dead) {
      // Crash-tolerant agreement over the survivors: the newest epoch
      // any survivor committed. Deaths mid-agreement raise comm_error
      // ("agree: ...") and abort the round.
      trace("agree:enter", committed_local_.valid ? committed_local_.epoch : 0);
      auto survivors = mpisim::survivors_of(
          comm_, std::span<const int>(dead), recovery_tag_offset);
      target = mpisim::agree_max(
          survivors, committed_local_.valid ? committed_local_.epoch : 0);
      trace("agree:done", target);
      if (target == 0) {
        throw unrecoverable("no globally committed epoch survives");
      }
      promote_to(target);
    }
    // Re-seed each casualty from its buddy's replica (the casualty
    // itself learns the target epoch from the message header).
    for (const int d : dead) {
      const int buddy = (d + 1) % p;
      if (comm_.rank() == buddy) {
        TFX_EXPECTS(committed_remote_.valid &&
                    committed_remote_.epoch == target);
        trace("xfer:send", static_cast<std::uint64_t>(d));
        send_snapshot(committed_remote_, d, transfer_tag);
      } else if (comm_.rank() == d) {
        trace("xfer:wait", static_cast<std::uint64_t>(buddy));
        committed_local_ = recv_snapshot(buddy, transfer_tag, comm_.rank());
        target = committed_local_.epoch;
        trace("xfer:got", target);
      }
    }
    // Everyone rolls back to the agreed epoch and immediately
    // re-replicates it as a fresh epoch: the casualties' wiped stores
    // are rebuilt, closing the window where a second failure would
    // find no replica. (Deterministic: a re-replicated epoch's content
    // is a pure function of the committed epoch it was rolled back
    // to, so retries of an aborted round rebuild identical bits.)
    restore_committed();
    next_epoch_ = target + 1;
    checkpoint_commit();
  }

  mpisim::communicator& comm_;
  distributed_model<T>& model_;
  resilience_options opt_;
  recovery_report report_;
  snapshot committed_local_, pending_local_;    ///< my own state
  snapshot committed_remote_, pending_remote_;  ///< left neighbour's
  std::uint64_t next_epoch_ = 1;  ///< 0 is reserved for "nothing committed"
  bool initialized_ = false;
  bool injected_ = false;
};

/// Convenience wrapper: run a resilient integration, poisoning the
/// recovery board on an unrecoverable exit so no peer waits forever.
template <typename T>
recovery_report run_resilient(mpisim::communicator& comm,
                              distributed_model<T>& model, int total_steps,
                              const resilience_options& opt = {}) {
  resilient_session<T> session(comm, model, opt);
  try {
    return session.run(total_steps);
  } catch (...) {
    if (comm.size() > 1) comm.board().abandon();
    throw;
  }
}

}  // namespace tfx::swm
