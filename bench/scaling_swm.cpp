// Scalability study (the § III-A theme applied to the § III-B
// application): strong scaling of the distributed shallow-water model
// on the modeled fabric.
//
// Each rank executes the real decomposed model (halo exchanges over
// mpisim carry real data and accrue virtual network time) and charges
// its slab's modeled A64FX compute time to the same virtual clock, so
// the per-step time is compute + communication on the modeled machine.
// As ranks are added the slabs shrink: compute scales down, the halo
// and collective costs do not - the classic strong-scaling rollover,
// shown per precision (Float16's 4x compute advantage makes it hit the
// communication wall earlier, a well-known reduced-precision caveat).

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/table.hpp"
#include "core/units.hpp"
#include "mpisim/runtime.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"
#include "swm/perfmodel.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

/// Virtual seconds per step at a given rank count and precision config.
double step_seconds(int ranks, int nx, int ny,
                    const precision_config& config) {
  const int steps = 4;
  swm_params p;
  p.nx = nx;
  p.ny = ny;

  mpisim::world w(mpisim::torus_placement({ranks, 1, 1}, 1), {});
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, p);  // physics carrier
    model<double> seeder(p);
    seeder.seed_random_eddies(3, 0.4);
    dm.set_from_global(seeder.prognostic());
    const double compute_per_step =
        predict_step(arch::fugaku_node, nx, ny / ranks, config).seconds;
    // Charge the modeled compute through the model itself (a quarter
    // per RHS evaluation): the default overlapped halo engine then
    // hides the interior share of each evaluation under the exchange,
    // exactly as a production code would.
    dm.set_modeled_rhs_seconds(compute_per_step / 4.0);
    dm.run(steps);
  });
  double max_clock = 0;
  for (const double c : w.final_clocks()) max_clock = std::max(max_clock, c);
  return max_clock / steps;
}

}  // namespace

int main() {
  std::puts("Strong scaling of the distributed shallow-water model");
  std::puts("(modeled A64FX compute + simulated TofuD halo exchange).\n");

  const int nx = 512, ny = 256;
  std::printf("grid %dx%d, y-slab decomposition\n\n", nx, ny);

  table t({"ranks", "Float64/step", "speedup", "Float16/step", "speedup",
           "f16/f64"});
  double base64 = 0, base16 = 0;
  for (const int ranks : {1, 2, 4, 8, 16}) {
    const double t64 = step_seconds(ranks, nx, ny, config_float64());
    const double t16 = step_seconds(ranks, nx, ny, config_float16());
    if (ranks == 1) {
      base64 = t64;
      base16 = t16;
    }
    t.add_row({std::to_string(ranks), format_seconds(t64),
               format_fixed(base64 / t64, 2), format_seconds(t16),
               format_fixed(base16 / t16, 2), format_fixed(t64 / t16, 2)});
  }
  t.print(std::cout);

  std::puts("\nFloat16 keeps its advantage while compute dominates, but");
  std::puts("the fixed communication cost erodes it at high rank counts -");
  std::puts("reduced precision shifts the strong-scaling limit earlier.");
  return 0;
}
