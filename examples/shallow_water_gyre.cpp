// Example: the full precision-engineering workflow of the paper's
// § III-B on a wind-driven double gyre.
//
//   develop at Sherlog32  ->  read the exponent histogram
//   choose the scaling s  ->  run the same model at Float16
//   compare against Float64, write the vorticity field to a PGM image.
//
// This is ShallowWaters.jl's "identical code base dynamically
// dispatched to any number format" demonstrated in C++ templates: the
// model class below is instantiated with four different element types
// in ~40 lines of driver code.

#include <cstdio>

#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/model.hpp"
#include "swm/output.hpp"

using namespace tfx;
using namespace tfx::swm;
using tfx::fp::float16;

int main() {
  swm_params p;
  p.nx = 128;
  p.ny = 64;
  const int steps = 60;

  std::puts("Wind-driven gyre, one code base, four number formats.\n");

  // -- development: Sherlog32 records every intermediate's exponent --
  fp::sherlog_sink().reset();
  {
    model<fp::sherlog32> dev(p);
    dev.seed_random_eddies(2024, 0.4);
    dev.run(10);
  }
  const auto& hist = fp::sherlog_sink();
  std::printf("Sherlog32 development run: %.1fM samples, exponents in "
              "[2^%d, 2^%d]\n",
              static_cast<double>(hist.total()) / 1e6, hist.min_observed(),
              hist.max_observed());
  std::printf("  %.2f%% of samples below Float16's normal range\n",
              100.0 * hist.fraction_below(-14));

  const auto choice = fp::choose_scaling(hist, fp::float16_range);
  std::printf("  chosen scaling: s = 2^%d (subnormal tail %.2e -> %.2e)\n\n",
              choice.log2_scale, choice.subnormal_fraction_before,
              choice.subnormal_fraction_after);

  // -- reference run at Float64 --------------------------------------
  model<double> f64(p);
  f64.seed_random_eddies(2024, 0.4);
  f64.run(steps);
  const auto d64 = f64.diag();
  std::printf("Float64 : energy %.4e, CFL %.3f\n", d64.energy, d64.cfl);

  // -- Float32 --------------------------------------------------------
  model<float> f32(p);
  f32.seed_random_eddies(2024, 0.4);
  f32.run(steps);
  std::printf("Float32 : energy %.4e\n", f32.diag().energy);

  // -- Float16 with the chosen scale, FZ16, compensated RK4 ----------
  swm_params p16 = p;
  p16.log2_scale = choice.log2_scale;
  fp::ftz_guard ftz(fp::ftz_mode::flush);
  model<float16> f16(p16, integration_scheme::compensated);
  f16.seed_random_eddies(2024, 0.4);
  f16.run(steps);
  std::printf("Float16 : energy %.4e (scale 2^%d, compensated)\n",
              f16.diag().energy, p16.log2_scale);

  // -- mixed Float16/32 ------------------------------------------------
  model<float16, float> mixed(p16);
  mixed.seed_random_eddies(2024, 0.4);
  mixed.run(steps);
  std::printf("F16/F32 : energy %.4e (mixed-precision integration)\n\n",
              mixed.diag().energy);

  // -- compare and dump -------------------------------------------------
  const auto z64 = relative_vorticity(f64.unscaled(), p);
  const auto z16 = relative_vorticity(f16.unscaled(), p16);
  std::printf("Float16 vs Float64 vorticity: correlation %.5f, relative "
              "RMSE %.5f\n",
              correlation(z64, z16), rmse(z64, z16) / rms(z64));

  write_pgm(z64, "gyre_vorticity_float64.pgm");
  write_pgm(z16, "gyre_vorticity_float16.pgm");
  std::puts("Vorticity images: gyre_vorticity_float{64,16}.pgm");
  return 0;
}
