#pragma once

/// \file stochastic.hpp
/// Stochastic rounding to the 16-bit formats.
///
/// The paper's Float16 configuration fights systematic rounding error
/// with compensated summation (§ III-B). The reduced-precision climate
/// literature it builds on (Klower et al.) explores the alternative:
/// *stochastic* rounding, where a value between two representable
/// neighbours rounds up with probability proportional to its position
/// in the gap, making the rounding error zero-mean. This header
/// provides deterministic-seeded SR conversions and an SR accumulator,
/// used by bench/ablation_rounding to compare the two cures on the
/// same drift problem.
///
/// Implementation: for binary16 we exploit that every binary32 value
/// splits exactly into (binary16 neighbour + residual); rounding draws
/// a 13-bit uniform integer and adds it below the kept mantissa bits
/// before truncating - the textbook construction, exact because the
/// discarded field is exactly 13 bits wide for normal results.

#include <cstdint>

#include "core/rng.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/rounding.hpp"

namespace tfx::fp {

/// A stochastic-rounding context: owns the RNG stream so results are
/// reproducible run-to-run for a fixed seed.
class stochastic_rounder {
 public:
  explicit stochastic_rounder(std::uint64_t seed = 0x5eed) : rng_(seed) {}

  /// Round a binary32 value to binary16 stochastically.
  float16 round_f16(float value) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t absx = bits & 0x7fffffffu;
    if (absx >= 0x7f800000u) {  // inf/NaN: nothing to dither
      return float16::from_bits(f32_bits_to_f16_bits(bits));
    }
    const std::int32_t exp16 =
        static_cast<std::int32_t>(absx >> 23) - 127 + 15;
    if (exp16 < 1 || exp16 >= 31) {
      // Subnormal or overflow region: fall back to RN-even. (SR into
      // gradual underflow is possible but the applications here scale
      // away from that region anyway.)
      return float16::from_bits(f32_bits_to_f16_bits(bits));
    }
    // Normal result: the discarded field is exactly the low 13 bits.
    const auto dither = static_cast<std::uint32_t>(rng_() & 0x1fffu);
    const std::uint32_t dithered = bits + dither;
    // Adding the dither may carry into the exponent; that is exactly
    // the "round up to the next binade" case and is correct. Truncate
    // the discarded field and convert (now exact).
    const std::uint32_t truncated = dithered & ~0x1fffu;
    return float16::from_bits(f32_bits_to_f16_bits(truncated));
  }

  /// Round a binary32 value to bfloat16 stochastically (16-bit gap).
  bfloat16 round_bf16(float value) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
    if ((bits & 0x7fffffffu) >= 0x7f800000u) {
      return bfloat16::from_bits(f32_bits_to_bf16_bits(bits));
    }
    const auto dither = static_cast<std::uint32_t>(rng_() & 0xffffu);
    return bfloat16::from_bits(
        static_cast<std::uint16_t>((bits + dither) >> 16));
  }

  /// Stochastically rounded add: extend, add in binary32, SR-truncate.
  float16 add(float16 a, float16 b) {
    return round_f16(static_cast<float>(a) + static_cast<float>(b));
  }
  float16 mul(float16 a, float16 b) {
    return round_f16(static_cast<float>(a) * static_cast<float>(b));
  }
  float16 muladd(float16 a, float16 b, float16 c) {
    return add(mul(a, b), c);
  }

 private:
  xoshiro256 rng_;
};

/// Accumulator that adds terms with stochastic rounding - the
/// zero-mean-drift alternative to kahan_accumulator<float16>.
class sr_accumulator {
 public:
  explicit sr_accumulator(float16 initial = float16{},
                          std::uint64_t seed = 0x5eed)
      : rounder_(seed), sum_(initial) {}

  void add(float16 x) { sum_ = rounder_.add(sum_, x); }
  [[nodiscard]] float16 value() const { return sum_; }

 private:
  stochastic_rounder rounder_;
  float16 sum_;
};

}  // namespace tfx::fp
