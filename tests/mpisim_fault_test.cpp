// Chaos harness for the mpisim fault plane (faultplane.hpp).
//
// The contract under test: with a seeded fault plane, the reliability
// layer (seq numbers, checksums, timeout-retry-backoff, receive-side
// dedup) makes collectives complete *bit-identically* to a fault-free
// oracle as long as retries drain - and when they cannot (crash
// schedules, exhausted retry budgets), every involved rank raises a
// typed comm_error instead of hanging. All of it replayable: the same
// (seed, schedule) reproduces the identical event trace, and the
// threaded runtime agrees with the discrete-event engine field for
// field.

// The replacement operator new/delete below route through malloc/free;
// GCC's heuristic cannot see that the pair matches and warns at every
// inlined delete site in this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/des.hpp"
#include "mpisim/faultplane.hpp"
#include "mpisim/patterns.hpp"
#include "mpisim/runtime.hpp"

using namespace tfx;
using namespace tfx::mpisim;

// ---------------------------------------------------------------------------
// Global allocation counter: the zero-probability plane must leave the
// runtime not just bit-identical but *allocation-identical* to the
// vanilla path (no hidden bookkeeping on the hot path).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

fault_config chaos_config(std::uint64_t seed) {
  fault_config cfg;
  cfg.seed = seed;
  cfg.probs.drop = 0.08;
  cfg.probs.duplicate = 0.05;
  cfg.probs.corrupt = 0.04;
  cfg.probs.reorder = 0.06;
  cfg.probs.delay = 0.05;
  cfg.retry.max_retries = 30;  // deep enough that chaos always drains
  return cfg;
}

std::vector<double> rank_vector(int rank, std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(rank + 1) * 0.5 +
           static_cast<double>(i) * 0.01;
  }
  return v;
}

enum class coll { barrier, bcast, allreduce, allgather };

const char* coll_name(coll c) {
  switch (c) {
    case coll::barrier: return "barrier";
    case coll::bcast: return "bcast";
    case coll::allreduce: return "allreduce";
    case coll::allgather: return "allgather";
  }
  return "?";
}

/// Run one collective on every rank; returns each rank's result buffer
/// (empty for barrier) so chaos and oracle runs can be diffed bitwise.
std::vector<std::vector<double>> run_collective(world& w, coll which,
                                                std::size_t count) {
  const int p = w.size();
  std::vector<std::vector<double>> out(static_cast<std::size_t>(p));
  w.run([&](communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    switch (which) {
      case coll::barrier:
        barrier(comm);
        break;
      case coll::bcast: {
        std::vector<double> data =
            comm.rank() == 0 ? rank_vector(0, count)
                             : std::vector<double>(count, 0.0);
        bcast(comm, std::span<double>(data), 0);
        out[r] = std::move(data);
        break;
      }
      case coll::allreduce: {
        const auto in = rank_vector(comm.rank(), count);
        std::vector<double> res(count);
        allreduce(comm, std::span<const double>(in), std::span<double>(res),
                  ops::sum{});
        out[r] = std::move(res);
        break;
      }
      case coll::allgather: {
        const auto in = rank_vector(comm.rank(), count);
        std::vector<double> res(count * static_cast<std::size_t>(p));
        allgather(comm, std::span<const double>(in), std::span<double>(res));
        out[r] = std::move(res);
        break;
      }
    }
  });
  return out;
}

/// A deterministic pairwise-exchange program (the shape of the fuzz
/// harness, but directed) for cross-engine chaos comparison.
sim_program pairwise_program(int p, std::uint64_t seed, int rounds) {
  xoshiro256 rng(seed);
  sim_program prog(p);
  for (int round = 0; round < rounds; ++round) {
    for (int a = 0; a + 1 < p; a += 2) {
      const int b = a + 1;
      const std::size_t bytes = 1 + rng.bounded(4096);
      prog.rank(a).push_back(sim_op::send_to(b, bytes));
      prog.rank(b).push_back(sim_op::send_to(a, bytes));
      prog.rank(a).push_back(sim_op::recv_from(b, bytes));
      prog.rank(b).push_back(sim_op::recv_from(a, bytes));
    }
    // Neighbour shift so traffic crosses pair boundaries too.
    for (int a = 0; a < p; ++a) {
      const int b = (a + 1) % p;
      if (p < 3) break;
      prog.rank(a).push_back(sim_op::send_to(b, 256));
    }
    for (int a = 0; a < p; ++a) {
      const int b = (a + p - 1) % p;
      if (p < 3) break;
      prog.rank(a).push_back(sim_op::recv_from(b, 256));
    }
  }
  return prog;
}

/// Execute a sim_program on the threaded runtime under `w`'s fault
/// plane. Sends use tag 0 to match the DES delivery records.
void run_threaded_program(world& w, const sim_program& prog) {
  w.run([&](communicator& comm) {
    const auto& ops = prog.ranks[static_cast<std::size_t>(comm.rank())];
    std::vector<std::byte> buf(1 << 13);
    for (const auto& op : ops) {
      switch (op.what) {
        case sim_op::kind::send:
          comm.send_bytes(std::span<const std::byte>(buf.data(), op.bytes),
                          op.peer, 0);
          break;
        case sim_op::kind::recv:
          comm.recv_bytes(std::span<std::byte>(buf.data(), op.bytes),
                          op.peer, 0);
          break;
        case sim_op::kind::compute:
          comm.advance(op.seconds);
          break;
      }
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Tentpole property: chaos results are bit-identical to the fault-free
// oracle whenever the retry budget drains the injected faults.
// ---------------------------------------------------------------------------

class ChaosCollectives
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, coll>> {};

TEST_P(ChaosCollectives, BitIdenticalToFaultFreeOracle) {
  const auto [seed, p, which] = GetParam();
  SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " ranks " +
               std::to_string(p) + " " + coll_name(which));
  const std::size_t count = 37;

  world oracle(p);
  const auto want = run_collective(oracle, which, count);

  world chaotic(p);
  chaotic.set_faults(chaos_config(seed));
  const auto got = run_collective(chaotic, which, count);

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    // Bitwise equality, not tolerance: the payload survived the wire.
    ASSERT_EQ(want[r], got[r]) << "rank " << r;
  }
  const auto& report = chaotic.last_fault_report();
  EXPECT_TRUE(report.crashed.empty());
  EXPECT_EQ(report.stats.failed_sends, 0u);
  EXPECT_GT(report.stats.sends, 0u);
  EXPECT_EQ(report.stats.attempts,
            report.stats.sends + report.stats.retries);
  // Every drop and corruption costs exactly one retransmission (no
  // send failed, so no final attempt went unanswered), and the only
  // receive-side discards are corrupt or replayed copies - some of
  // which may still sit unread in a mailbox after the last recv.
  EXPECT_EQ(report.stats.retries,
            report.stats.drops + report.stats.corruptions);
  EXPECT_LE(report.rx_discards,
            report.stats.corruptions + report.stats.duplicates);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsRanksColls, ChaosCollectives,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2026, 0xA64F),
                       ::testing::Values(2, 5, 8),
                       ::testing::Values(coll::barrier, coll::bcast,
                                         coll::allreduce, coll::allgather)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_p" +
             std::to_string(std::get<1>(param_info.param)) + "_" +
             coll_name(std::get<2>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Zero-probability plane: inert by construction - the vanilla path
// must run bit- AND allocation-identically.
// ---------------------------------------------------------------------------

namespace {

/// Single-rank self-messaging loop: fully deterministic (one thread),
/// so allocation counts are exactly reproducible.
std::pair<double, std::vector<double>> self_send_run(world& w) {
  std::vector<double> data;
  w.run([&](communicator& comm) {
    std::vector<double> buf(64);
    std::iota(buf.begin(), buf.end(), 1.0);
    for (int i = 0; i < 20; ++i) {
      comm.send(std::span<const double>(buf), 0, i);
      comm.advance(1e-7);
      comm.recv(std::span<double>(buf), 0, i);
      buf[0] += 1.0;
    }
    data = buf;
  });
  return {w.final_clocks()[0], data};
}

}  // namespace

TEST(ZeroProbPlane, InactiveByConstruction) {
  const fault_plane plane{fault_config{}};  // all probabilities zero
  EXPECT_FALSE(plane.active());

  fault_config armed;
  armed.probs.drop = 0.1;
  EXPECT_TRUE(fault_plane{armed}.active());
  fault_config crashy;
  crashy.crashes.push_back({1, 0});
  EXPECT_TRUE(fault_plane{crashy}.active());
}

TEST(ZeroProbPlane, BitAndAllocationIdenticalToVanilla) {
  // Warm both paths once so lazy one-time allocations (gtest, locale,
  // thread bootstrap) don't pollute the measured counts.
  {
    world warm(1);
    self_send_run(warm);
    warm.set_faults(fault_config{});
    self_send_run(warm);
  }

  world vanilla(1);
  const std::uint64_t before_vanilla = g_allocs.load();
  const auto [clock_vanilla, data_vanilla] = self_send_run(vanilla);
  const std::uint64_t count_vanilla = g_allocs.load() - before_vanilla;

  world zeroed(1);
  zeroed.set_faults(fault_config{});  // attached but inert
  ASSERT_NE(zeroed.faults(), nullptr);
  ASSERT_FALSE(zeroed.faults()->active());
  const std::uint64_t before_zeroed = g_allocs.load();
  const auto [clock_zeroed, data_zeroed] = self_send_run(zeroed);
  const std::uint64_t count_zeroed = g_allocs.load() - before_zeroed;

  EXPECT_EQ(clock_vanilla, clock_zeroed);  // bit-identical virtual time
  EXPECT_EQ(data_vanilla, data_zeroed);
  EXPECT_EQ(count_vanilla, count_zeroed)
      << "inert fault plane changed the allocation profile";
}

// ---------------------------------------------------------------------------
// Seed replay: one (seed, schedule) pair reproduces the identical
// event trace - stats, per-rank delivery orders, discards, clocks.
// ---------------------------------------------------------------------------

TEST(SeedReplay, IdenticalEventTraceTwice) {
  const int p = 6;
  fault_config cfg = chaos_config(99);
  cfg.stalls.push_back({2, 1, 5e-6});

  const auto once = [&] {
    world w(p);
    w.set_faults(cfg);
    // Allgather's ring moves p*(p-1) messages - enough traffic that
    // the 8% drop rate injects with near certainty.
    run_collective(w, coll::allgather, 64);
    return std::make_pair(w.last_fault_report(), w.final_clocks());
  };
  const auto [report1, clocks1] = once();
  const auto [report2, clocks2] = once();

  EXPECT_EQ(report1.stats, report2.stats);
  EXPECT_EQ(report1.rx_discards, report2.rx_discards);
  EXPECT_EQ(report1.crashed, report2.crashed);
  ASSERT_EQ(report1.deliveries.size(), report2.deliveries.size());
  for (std::size_t r = 0; r < report1.deliveries.size(); ++r) {
    EXPECT_EQ(report1.deliveries[r], report2.deliveries[r]) << "rank " << r;
  }
  EXPECT_EQ(clocks1, clocks2);  // bitwise: no tolerance
  EXPECT_GT(report1.stats.retries, 0u) << "schedule injected nothing";
  EXPECT_EQ(report1.stats.stalls, 1u);
}

// ---------------------------------------------------------------------------
// Cross-engine agreement: the threaded runtime and the DES execute the
// same chaos schedule with identical delivery orders, retry counters,
// and virtual clocks.
// ---------------------------------------------------------------------------

class EngineChaosAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineChaosAgreement, ClocksStatsDeliveriesMatch) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));
  const int p = 6;
  const auto prog = pairwise_program(p, seed, 4);
  const tofud_params net;
  const torus_placement place = torus_placement::line(p);
  const fault_config cfg = chaos_config(seed * 31 + 7);
  const fault_plane plane(cfg);

  world w(place, net);
  w.set_faults(cfg);
  run_threaded_program(w, prog);
  const auto& threaded = w.last_fault_report();

  const auto des = simulate(prog, net, place, {}, &plane);

  EXPECT_EQ(threaded.stats, des.stats);
  EXPECT_TRUE(des.crashed.empty());
  EXPECT_TRUE(threaded.crashed.empty());
  ASSERT_EQ(des.deliveries.size(), w.final_clocks().size());
  for (std::size_t r = 0; r < des.deliveries.size(); ++r) {
    EXPECT_EQ(threaded.deliveries[r], des.deliveries[r]) << "rank " << r;
    EXPECT_NEAR(w.final_clocks()[r], des.clocks[r],
                1e-15 + 1e-9 * des.clocks[r])
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineChaosAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Failure paths: crash schedules and exhausted retry budgets must fail
// loudly on every endpoint, never hang.
// ---------------------------------------------------------------------------

TEST(CrashSchedule, EveryRankFailsLoudly) {
  const int p = 4;
  world w(p);
  fault_config cfg;
  cfg.crashes.push_back({1, 0});  // rank 1 dies before its first send
  w.set_faults(cfg);
  try {
    run_collective(w, coll::allreduce, 32);
    FAIL() << "expected comm_error";
  } catch (const comm_error& e) {
    EXPECT_TRUE(e.why() == comm_error::reason::peer_crashed ||
                e.why() == comm_error::reason::retries_exhausted)
        << e.what();
    // Collectives annotate the failure with their name.
    EXPECT_NE(std::string(e.what()).find("allreduce"), std::string::npos)
        << e.what();
  }
  const auto& report = w.last_fault_report();
  // Rank 1 crashed by schedule; the cascade kills everyone blocked on
  // it (allreduce couples all ranks), so nobody is left hanging.
  ASSERT_FALSE(report.crashed.empty());
  EXPECT_NE(std::find(report.crashed.begin(), report.crashed.end(), 1),
            report.crashed.end());
}

TEST(CrashSchedule, EnginesAgreeOnCasualties) {
  const int p = 6;
  const auto prog = pairwise_program(p, 11, 3);
  const tofud_params net;
  const torus_placement place = torus_placement::line(p);
  fault_config cfg;
  cfg.crashes.push_back({3, 2});  // mid-program death
  const fault_plane plane(cfg);

  world w(place, net);
  w.set_faults(cfg);
  EXPECT_THROW(run_threaded_program(w, prog), comm_error);

  const auto des = simulate(prog, net, place, {}, &plane);
  EXPECT_EQ(w.last_fault_report().crashed, des.crashed);
  EXPECT_FALSE(des.crashed.empty());
  EXPECT_EQ(w.last_fault_report().stats, des.stats);
}

TEST(RetryBudget, ExhaustionRaisesTypedError) {
  world w(2);
  fault_config cfg;
  cfg.probs.drop = 1.0;  // nothing ever gets through
  cfg.retry.max_retries = 2;
  w.set_faults(cfg);
  try {
    w.run([](communicator& comm) {
      const double v = 42.0;
      double in = 0;
      if (comm.rank() == 0) {
        comm.send_value(v, 1, 5);
      } else {
        comm.recv(std::span<double>(&in, 1), 0, 5);
      }
    });
    FAIL() << "expected comm_error";
  } catch (const comm_error& e) {
    EXPECT_EQ(e.why(), comm_error::reason::retries_exhausted) << e.what();
  }
  const auto& st = w.last_fault_report().stats;
  EXPECT_EQ(st.failed_sends, 1u);
  EXPECT_EQ(st.attempts, 3u);  // first try + max_retries
  EXPECT_EQ(st.drops, 3u);
}

TEST(StallSchedule, ChargesVirtualTimeOnly) {
  const int p = 2;
  const double stall_s = 1e-3;

  world quiet(p);
  fault_config inert;
  inert.stalls.push_back({0, 1u << 30, 0.0});  // activates, never fires
  quiet.set_faults(inert);
  run_collective(quiet, coll::bcast, 16);
  const double base = quiet.final_clocks()[1];

  world stalled(p);
  fault_config cfg;
  cfg.stalls.push_back({0, 0, stall_s});
  stalled.set_faults(cfg);
  const auto got = run_collective(stalled, coll::bcast, 16);
  EXPECT_EQ(got[1], rank_vector(0, 16));
  EXPECT_EQ(stalled.last_fault_report().stats.stalls, 1u);
  // The root's stall delays the broadcast end-to-end.
  EXPECT_NEAR(stalled.final_clocks()[1], base + stall_s, 1e-12);
}

// ---------------------------------------------------------------------------
// Building blocks.
// ---------------------------------------------------------------------------

TEST(FaultPlaneUnits, DecisionsAreDeterministic) {
  const fault_plane plane(chaos_config(7));
  for (int src = 0; src < 3; ++src) {
    for (int dst = 0; dst < 3; ++dst) {
      for (std::uint64_t m = 0; m < 50; ++m) {
        const auto a = plane.decide(src, dst, m, 0);
        const auto b = plane.decide(src, dst, m, 0);
        EXPECT_EQ(a.drop, b.drop);
        EXPECT_EQ(a.corrupt, b.corrupt);
        EXPECT_EQ(a.duplicate, b.duplicate);
        EXPECT_EQ(a.reorder, b.reorder);
        EXPECT_EQ(a.extra_delay_s, b.extra_delay_s);
        EXPECT_EQ(a.flip, b.flip);
      }
    }
  }
}

TEST(FaultPlaneUnits, ChecksumCatchesEverySingleBitFlip) {
  std::vector<std::byte> payload(96);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 37 + 11);
  }
  const std::uint64_t good = fault_plane::checksum(payload);
  for (std::size_t at = 0; at < payload.size(); at += 7) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = payload;
      bad[at] ^= static_cast<std::byte>(1 << bit);
      EXPECT_NE(fault_plane::checksum(bad), good)
          << "byte " << at << " bit " << bit;
    }
  }
}

TEST(FaultPlaneUnits, BackoffGrowsGeometrically) {
  const double t0 = 3e-6;
  EXPECT_EQ(backoff_delay_seconds(t0, 2.0, 0), t0);
  EXPECT_EQ(backoff_delay_seconds(t0, 2.0, 1), t0 * 2.0);
  EXPECT_EQ(backoff_delay_seconds(t0, 2.0, 2), t0 * 2.0 * 2.0);
  EXPECT_EQ(backoff_delay_seconds(t0, 1.0, 9), t0);
}
