#include "kernels/dispatch.hpp"

namespace tfx::kernels {

namespace {

std::atomic<std::size_t>& width_policy() {
  static std::atomic<std::size_t> width{default_simd_width()};
  return width;
}

}  // namespace

std::size_t default_simd_width() {
#ifdef TFX_SIMD_WIDTH
  static_assert(TFX_SIMD_WIDTH == 0 || TFX_SIMD_WIDTH == 128 ||
                    TFX_SIMD_WIDTH == 256 || TFX_SIMD_WIDTH == 512,
                "TFX_SIMD_WIDTH must be 0, 128, 256 or 512");
  return TFX_SIMD_WIDTH;
#else
  return arch::preferred_vector_bits();
#endif
}

std::size_t simd_width() {
  return width_policy().load(std::memory_order_relaxed);
}

bool set_simd_width(std::size_t bits) {
  if (bits != 0 && !simd::valid_width(bits)) return false;
  width_policy().store(bits, std::memory_order_relaxed);
  return true;
}

void reset_simd_width() {
  width_policy().store(default_simd_width(), std::memory_order_relaxed);
}

}  // namespace tfx::kernels
