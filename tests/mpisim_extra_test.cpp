// Nonblocking p2p and the extended collectives (reduce_scatter_block,
// scan, exscan).

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/runtime.hpp"

using namespace tfx::mpisim;

TEST(Nonblocking, IsendIrecvBasic) {
  world w(2);
  w.run([](communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      auto req = comm.isend(std::span<const int>(data), 1, 9);
      EXPECT_TRUE(req.done());  // eager
      req.wait();               // idempotent
    } else {
      std::vector<int> got(3);
      auto req = comm.irecv(std::span<int>(got), 0, 9);
      EXPECT_FALSE(req.done());
      const auto st = req.wait();
      EXPECT_TRUE(req.done());
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
      EXPECT_EQ(st.bytes, 12u);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(Nonblocking, ExchangeWithWaitall) {
  // Symmetric halo exchange posted as irecv/isend pairs + waitall: the
  // canonical nonblocking pattern.
  const int p = 5;
  world w(p);
  w.run([p](communicator& comm) {
    const int r = comm.rank();
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    int from_left = -1, from_right = -1;
    std::vector<request> reqs;
    reqs.push_back(comm.irecv(std::span<int>(&from_left, 1), left, 1));
    reqs.push_back(comm.irecv(std::span<int>(&from_right, 1), right, 2));
    int me = r;
    reqs.push_back(comm.isend(std::span<const int>(&me, 1), right, 1));
    reqs.push_back(comm.isend(std::span<const int>(&me, 1), left, 2));
    waitall(reqs);
    EXPECT_EQ(from_left, left);
    EXPECT_EQ(from_right, right);
  });
}

TEST(Nonblocking, IrecvDefersClockUpdate) {
  world w(2);
  w.run([](communicator& comm) {
    if (comm.rank() == 0) {
      comm.advance(50e-6);
      comm.send_value(1, 1, 0);
    } else {
      int v = 0;
      auto req = comm.irecv(std::span<int>(&v, 1), 0, 0);
      const double before = comm.now();
      EXPECT_EQ(before, 0.0);  // posting costs nothing
      req.wait();
      EXPECT_GT(comm.now(), 50e-6);  // the wait absorbed the arrival
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Nonblocking, WaitAllMemberOverlapsComputeWithTransfers) {
  // The member form comm.wait_all + the overlap clock rule: compute
  // advanced between the posts and the wait hides the transfer, so the
  // receiver's clock lands at max(compute_end, arrival) + o_recv - not
  // at compute_end + transfer.
  world w(2);
  w.run([&w](communicator& comm) {
    const auto& net = w.net();
    if (comm.rank() == 0) {
      comm.advance(50e-6);
      comm.send_value(7, 1, 3);
    } else {
      int v = 0;
      std::array<request, 1> reqs{
          comm.irecv(std::span<int>(&v, 1), 0, 3)};
      EXPECT_EQ(reqs[0].post_vtime(), 0.0);
      comm.advance(100e-6);  // arrival (~50.9us) lands inside this
      comm.wait_all(std::span<request>(reqs));
      EXPECT_DOUBLE_EQ(comm.now(), 100e-6 + net.recv_overhead_s);
      EXPECT_EQ(v, 7);
      EXPECT_TRUE(reqs[0].done());
    }
  });
}

class ExtraCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ExtraCollectives, ReduceScatterBlock) {
  const int p = GetParam();
  world w(p);
  w.run([p](communicator& comm) {
    const int r = comm.rank();
    const std::size_t count = 3;
    // in[owner*count + j] = (r+1) * (owner*10 + j)
    std::vector<double> in(count * static_cast<std::size_t>(p));
    for (int owner = 0; owner < p; ++owner) {
      for (std::size_t j = 0; j < count; ++j) {
        in[static_cast<std::size_t>(owner) * count + j] =
            (r + 1) * (owner * 10.0 + static_cast<double>(j));
      }
    }
    std::vector<double> out(count);
    reduce_scatter_block(comm, std::span<const double>(in),
                         std::span<double>(out), ops::sum{});
    const double rank_sum = p * (p + 1) / 2.0;  // sum of (r+1)
    for (std::size_t j = 0; j < count; ++j) {
      EXPECT_NEAR(out[j], rank_sum * (r * 10.0 + static_cast<double>(j)),
                  1e-9);
    }
  });
}

TEST_P(ExtraCollectives, InclusiveScan) {
  const int p = GetParam();
  world w(p);
  w.run([](communicator& comm) {
    const int r = comm.rank();
    const std::vector<double> in{static_cast<double>(r + 1), 1.0};
    std::vector<double> out(2);
    scan(comm, std::span<const double>(in), std::span<double>(out),
         ops::sum{});
    EXPECT_NEAR(out[0], (r + 1) * (r + 2) / 2.0, 1e-12);  // 1+2+...+(r+1)
    EXPECT_NEAR(out[1], r + 1.0, 1e-12);
  });
}

TEST_P(ExtraCollectives, ExclusiveScan) {
  const int p = GetParam();
  world w(p);
  w.run([](communicator& comm) {
    const int r = comm.rank();
    const std::vector<double> in{static_cast<double>(r + 1)};
    std::vector<double> out{-999.0};
    exscan(comm, std::span<const double>(in), std::span<double>(out),
           ops::sum{});
    if (r == 0) {
      EXPECT_EQ(out[0], -999.0);  // rank 0 output untouched, like MPI
    } else {
      EXPECT_NEAR(out[0], r * (r + 1) / 2.0, 1e-12);  // 1+...+r
    }
  });
}

TEST_P(ExtraCollectives, ScanWithMax) {
  const int p = GetParam();
  world w(p);
  w.run([p](communicator& comm) {
    const int r = comm.rank();
    // Values zig-zag so the running max is not simply the last element.
    const std::vector<double> in{static_cast<double>((r * 7) % p)};
    std::vector<double> out(1);
    scan(comm, std::span<const double>(in), std::span<double>(out),
         ops::max{});
    double expect = 0;
    for (int k = 0; k <= r; ++k) {
      expect = std::max(expect, static_cast<double>((k * 7) % p));
    }
    EXPECT_EQ(out[0], expect);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ExtraCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

#include "fp/float16.hpp"

TEST(TypedCollectives, AllreduceOverFloat16) {
  // The template collectives work over the soft-float types directly -
  // the "custom reduction operators on ARM" limitation of § IV-B does
  // not exist here because the reduction runs in the rank's own code.
  using tfx::fp::float16;
  world w(4);
  w.run([](communicator& comm) {
    const std::vector<float16> in{float16(comm.rank() + 1),
                                  float16(0.25)};
    std::vector<float16> out(2);
    allreduce(comm, std::span<const float16>(in), std::span<float16>(out),
              ops::sum{}, coll_algorithm::recursive_doubling);
    EXPECT_EQ(static_cast<double>(out[0]), 10.0);  // 1+2+3+4
    EXPECT_EQ(static_cast<double>(out[1]), 1.0);
  });
}

TEST(TypedCollectives, BcastPreservesFloat16Bits) {
  using tfx::fp::float16;
  world w(3);
  w.run([](communicator& comm) {
    std::vector<float16> data(4);
    if (comm.rank() == 0) {
      data = {float16(1.5), float16::from_bits(0x3c01), float16(-0.0),
              std::numeric_limits<float16>::denorm_min()};
    }
    bcast(comm, std::span<float16>(data), 0);
    EXPECT_EQ(data[1].bits(), 0x3c01);
    EXPECT_EQ(data[2].bits(), 0x8000);  // -0 survives as bits
    EXPECT_EQ(data[3].bits(), 0x0001);
  });
}
