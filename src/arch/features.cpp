#include "arch/features.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_SVE
#define HWCAP_SVE (1 << 22)
#endif
#endif

namespace tfx::arch {

namespace {

cpu_features detect() {
  cpu_features f;
#if defined(__x86_64__) || defined(_M_X64)
  f.sse2 = true;  // x86-64 baseline
  f.max_vector_bits = 128;
  f.isa = "sse2";
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) {
    f.avx2 = true;
    f.max_vector_bits = 256;
    f.isa = "avx2";
  }
  if (__builtin_cpu_supports("avx512f")) {
    f.avx512f = true;
    f.max_vector_bits = 512;
    f.isa = "avx512f";
  }
#endif
#elif defined(__aarch64__)
  f.neon = true;  // AArch64 baseline ASIMD
  f.max_vector_bits = 128;
  f.isa = "neon";
#if defined(__linux__)
  if ((getauxval(AT_HWCAP) & HWCAP_SVE) != 0) {
    f.sve = true;
    // The granule actually implemented varies (A64FX: 512); without a
    // prctl probe we credit the A64FX width only when compiled for it.
#if defined(__ARM_FEATURE_SVE_BITS) && __ARM_FEATURE_SVE_BITS >= 512
    f.max_vector_bits = 512;
#else
    f.max_vector_bits = 256;
#endif
    f.isa = "sve";
  }
#endif
#else
  f.max_vector_bits = 128;
  f.isa = "portable";
#endif
  return f;
}

}  // namespace

const cpu_features& host_features() {
  static const cpu_features cached = detect();
  return cached;
}

std::size_t preferred_vector_bits() {
  const std::size_t bits = host_features().max_vector_bits;
  if (bits >= 512) return 512;
  if (bits >= 256) return 256;
  return 128;
}

}  // namespace tfx::arch
