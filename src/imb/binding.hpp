#pragma once

/// \file binding.hpp
/// The two benchmark-harness personalities of Figs. 2-3.
///
/// The paper compares the Intel MPI Benchmarks (C) against
/// MPIBenchmarks.jl (Julia) over the *same* MPI library, so the deltas
/// between the two curves come from the harnesses themselves. Two
/// mechanisms, both quoted in § III-A.2:
///
///  1. "MPI.jl typically showed very small overhead [...] but slightly
///     larger overhead for messages of smaller sizes": a fixed per-call
///     dispatch cost (Julia wrapper, argument marshalling) that decays
///     in relative importance as messages grow.
///  2. "contrary to IMB, at the present time MPIBenchmarks.jl does not
///     implement a cache-avoidance mechanism, which may explain why
///     MPI.jl appears to show better latency than IMB for messages with
///     size up to 64 KiB, which corresponds to the size of the L1
///     cache": IMB rotates through a buffer pool larger than the cache
///     so every iteration touches cold memory; MPIBenchmarks.jl reuses
///     one hot buffer.
///
/// We model (1) as `dispatch_overhead_s` charged per MPI call and (2)
/// as a buffer-touch cost evaluated at the bandwidth of the cache level
/// the buffer actually lives in (A64FX hierarchy via arch::). The
/// touch cost applies to the eager protocol only - large (rendezvous)
/// messages are moved zero-copy by the network DMA engine, which is why
/// the two harnesses agree within 1 % at peak throughput.

#include <cstddef>
#include <string_view>

#include "arch/a64fx.hpp"
#include "arch/roofline.hpp"
#include "mpisim/network.hpp"

namespace tfx::imb {

struct binding_profile {
  std::string_view name;
  double dispatch_overhead_s = 0;  ///< per MPI call
  bool cache_avoidance = false;    ///< rotate buffers out of cache (IMB)
};

/// The IMB suite in C: negligible call overhead, cache-avoiding.
inline constexpr binding_profile imb_c{"IMB (C)", 0.01e-6, true};

/// MPIBenchmarks.jl over MPI.jl: small fixed dispatch cost, hot buffers.
inline constexpr binding_profile mpi_jl{"MPI.jl", 0.08e-6, false};

/// Host-side cost of touching a message buffer of `bytes` once (read on
/// send, write on recv), given where the harness's buffer discipline
/// leaves it in the cache hierarchy. Charged only on the eager path.
double buffer_touch_seconds(const arch::a64fx_params& machine,
                            const binding_profile& binding,
                            const mpisim::tofud_params& net,
                            std::size_t bytes);

/// Total harness-side cost per MPI call moving `bytes`.
double call_cost_seconds(const arch::a64fx_params& machine,
                         const binding_profile& binding,
                         const mpisim::tofud_params& net, std::size_t bytes);

}  // namespace tfx::imb
