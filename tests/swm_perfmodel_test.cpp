// The Fig. 5 instrument: modeled per-step cost and speedups over
// Float64 across problem sizes and precision configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>

#include "swm/perfmodel.hpp"

using namespace tfx::swm;
using tfx::arch::fugaku_node;

TEST(PerfModel, ConfigsDescribeThePaperVariants) {
  EXPECT_EQ(config_float64().elem_bytes, 8u);
  EXPECT_FALSE(config_float64().mixed());
  EXPECT_TRUE(config_float16().compensated);
  EXPECT_TRUE(config_float16_32().mixed());
  EXPECT_EQ(config_float16_32().prog_elem_bytes, 4u);
}

TEST(PerfModel, Float16ApproachesFourXAtPaperSize) {
  // "approaches 4x speedups over Float64 for large problems (3000x1500
  // grid points)" - Fig. 5 / § III-B; the measured figure was 3.6x
  // (Fig. 4 caption).
  const double s = speedup_vs_float64(fugaku_node, 3000, 1500,
                                      config_float16());
  EXPECT_GE(s, 3.2);
  EXPECT_LE(s, 4.0);
}

TEST(PerfModel, Float32AboutTwoXOverWideRange) {
  for (const auto& [nx, ny] : {std::pair{500, 250}, std::pair{1000, 500},
                              std::pair{3000, 1500}}) {
    const double s = speedup_vs_float64(fugaku_node, nx, ny,
                                        config_float32());
    EXPECT_GE(s, 1.6) << nx << "x" << ny;
    EXPECT_LE(s, 2.3) << nx << "x" << ny;
  }
}

TEST(PerfModel, MixedPrecisionSitsBetweenFloat32AndFloat16) {
  // Fig. 5: the Float16/32 curve lies above Float32 but below pure
  // Float16 (the compensated variant "clearly outperforms" mixed).
  const int nx = 3000, ny = 1500;
  const double s16 = speedup_vs_float64(fugaku_node, nx, ny, config_float16());
  const double s32 = speedup_vs_float64(fugaku_node, nx, ny, config_float32());
  const double smx =
      speedup_vs_float64(fugaku_node, nx, ny, config_float16_32());
  EXPECT_GT(smx, s32);
  EXPECT_GT(s16, smx);
}

TEST(PerfModel, SpeedupCollapsesAtSmallGrids) {
  // Fixed per-step overheads dominate tiny problems: Fig. 5's curves
  // start near 1x.
  const double s = speedup_vs_float64(fugaku_node, 32, 16, config_float16());
  EXPECT_LT(s, 1.5);
  EXPECT_GE(s, 0.9);
}

TEST(PerfModel, Float16SpeedupGrowsWithProblemSize) {
  double prev = 0.0;
  for (const auto& [nx, ny] :
       {std::pair{32, 16}, std::pair{128, 64}, std::pair{512, 256},
        std::pair{1500, 750}, std::pair{3000, 1500}}) {
    const double s = speedup_vs_float64(fugaku_node, nx, ny,
                                        config_float16());
    EXPECT_GE(s, prev * 0.95) << nx << "x" << ny;
    prev = s;
  }
}

TEST(PerfModel, CompensationCostsAboutFivePercent) {
  // "Float16 has by default a compensated time integration [...] which
  // causes an about 5% overhead in runtime" (Fig. 5 caption).
  precision_config plain = config_float16();
  plain.compensated = false;
  const auto with = predict_step(fugaku_node, 3000, 1500, config_float16());
  const auto without = predict_step(fugaku_node, 3000, 1500, plain);
  const double overhead = with.seconds / without.seconds - 1.0;
  EXPECT_GE(overhead, 0.01);
  EXPECT_LE(overhead, 0.10);
}

TEST(PerfModel, TrafficScalesWithElementSize) {
  const auto t64 = predict_step(fugaku_node, 1000, 500, config_float64());
  const auto t32 = predict_step(fugaku_node, 1000, 500, config_float32());
  const auto t16 = predict_step(fugaku_node, 1000, 500, config_float16());
  EXPECT_NEAR(static_cast<double>(t64.bytes_moved) /
                  static_cast<double>(t32.bytes_moved),
              2.0, 0.05);
  // Compensation adds a little traffic on top of the pure 4x.
  EXPECT_GT(static_cast<double>(t64.bytes_moved) /
                static_cast<double>(t16.bytes_moved),
            3.5);
}

TEST(PerfModel, LargeProblemIsMemoryBound) {
  // The premise of the whole Fig. 5 story (§ III-B: "As
  // ShallowWaters.jl is a memory-bound application...").
  for (const auto& config : {config_float64(), config_float32(),
                             config_float16(), config_float16_32()}) {
    const auto t = predict_step(fugaku_node, 3000, 1500, config);
    EXPECT_GT(t.memory_seconds, t.compute_seconds) << config.name;
  }
}

TEST(PerfModel, Fig4RuntimeRatioNearMeasured) {
  // Fig. 4's caption: "The equivalent Float64 simulation [...] ran
  // 3.6x slower" at 3000x1500. Our model should land in that decade.
  const double ratio =
      predict_step(fugaku_node, 3000, 1500, config_float64()).seconds /
      predict_step(fugaku_node, 3000, 1500, config_float16()).seconds;
  EXPECT_NEAR(ratio, 3.6, 0.5);
}

// ---------------------------------------------------------------------------
// Comm-aware scaling model: the placement-aware predict_halo overload
// (docs/TOPOLOGY.md). Traffic is a property of the decomposition, not
// the placement - messages/bytes must be bit-equal to the flat
// overload (and therefore to the swm.halo_* obs counters the flat
// overload is pinned against in swm_halo_test) - while the placement
// changes only the modeled costs.
// ---------------------------------------------------------------------------

TEST(HaloTopology, PlacementOverloadKeepsTrafficExact) {
  const tfx::mpisim::tofud_params net;
  for (const auto mode : {halo_mode::per_field, halo_mode::aggregated,
                          halo_mode::aggregated_overlap}) {
    for (const auto& place :
         {tfx::mpisim::torus_placement::line(8),
          tfx::mpisim::torus_placement({2, 2, 2}, 4),
          tfx::mpisim::torus_placement({4, 4, 1}, 2)}) {
      const int ranks = place.rank_count();
      const auto flat = predict_halo(net, 96, 8, ranks, mode);
      for (int r = 0; r < ranks; ++r) {
        const auto placed = predict_halo(net, place, r, 96, 8, ranks, mode);
        EXPECT_EQ(placed.messages, flat.messages) << "rank " << r;
        EXPECT_EQ(placed.bytes, flat.bytes) << "rank " << r;
        EXPECT_GE(placed.contended_seconds, placed.seconds) << "rank " << r;
        EXPECT_GE(placed.link_wait_seconds, 0.0) << "rank " << r;
      }
    }
  }
}

TEST(HaloTopology, BlockPlacedRingHaloIsCongestionFree) {
  // The headline finding the docs record: under the block placement
  // the ring halo's dimension-ordered routes never share a directed
  // link (neighbouring ranks share a node or sit on adjacent nodes),
  // so the contention term is pure store-and-forward - no queueing.
  const tfx::mpisim::tofud_params net;
  for (const auto& place : {tfx::mpisim::torus_placement::line(8),
                            tfx::mpisim::torus_placement({4, 4, 1}, 4)}) {
    const int ranks = place.rank_count();
    for (int r = 0; r < ranks; ++r) {
      const auto placed = predict_halo(net, place, r, 64, 8, ranks,
                                       halo_mode::aggregated);
      EXPECT_LE(placed.max_link_flows, 1u) << "rank " << r;
      EXPECT_EQ(placed.link_wait_seconds, 0.0) << "rank " << r;
    }
  }
}

TEST(HaloTopology, IntraNodeNeighboursAreCheaperThanTorusNeighbours) {
  // 4 ranks/node: rank 1's both neighbours share its node, rank 3's up
  // neighbour crosses a link. The placement overload must price them
  // differently; the flat overload cannot.
  const tfx::mpisim::tofud_params net;
  const tfx::mpisim::torus_placement place({4, 1, 1}, 4);
  const auto inner = predict_halo(net, place, 1, 96, 8, 16,
                                  halo_mode::aggregated);
  const auto border = predict_halo(net, place, 3, 96, 8, 16,
                                   halo_mode::aggregated);
  EXPECT_EQ(inner.messages, border.messages);
  EXPECT_EQ(inner.bytes, border.bytes);
  EXPECT_LT(inner.seconds, border.seconds);
}

TEST(HaloTopology, FlatOverloadReportsNoContentionByConstruction) {
  const tfx::mpisim::tofud_params net;
  const auto flat = predict_halo(net, 128, 8, 16, halo_mode::aggregated);
  EXPECT_EQ(flat.contended_seconds, flat.seconds);
  EXPECT_EQ(flat.link_wait_seconds, 0.0);
  EXPECT_EQ(flat.max_link_flows, 0u);
}

TEST(HaloTopology, ScatteredPlacementShowsTheContentionTerm) {
  // A deliberately bad layout - ring neighbours far apart - shares
  // links between flows, so the queueing term fires for some rank and
  // contended strictly exceeds the uncontended bound. Using every
  // fourth rank of a wide allocation spreads neighbours three nodes
  // apart along x with size-4 wrap ties.
  const tfx::mpisim::tofud_params net;
  const tfx::mpisim::torus_placement place({2, 2, 1}, 1);
  // ranks == node_count: ring over 4 nodes; the size-2 dimensions
  // tie-break both directions to +1, so up and down flows collide.
  std::uint64_t worst = 0;
  double wait = 0;
  for (int r = 0; r < place.rank_count(); ++r) {
    const auto placed = predict_halo(net, place, r, 96, 8,
                                     place.rank_count(),
                                     halo_mode::aggregated);
    worst = std::max(worst, placed.max_link_flows);
    wait += placed.link_wait_seconds;
    EXPECT_GE(placed.contended_seconds, placed.seconds);
  }
  EXPECT_GE(worst, 2u);
  EXPECT_GT(wait, 0.0);
}
