// The precision-engineering pipeline of § III-B: Sherlog development
// run -> scaling choice -> Float16 production run with FTZ +
// compensated integration, validated against the Float64 reference.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/diagnostics.hpp"
#include "swm/model.hpp"

using namespace tfx::swm;
using tfx::fp::float16;
namespace fp = tfx::fp;

namespace {

swm_params base_params() {
  swm_params p;
  p.nx = 48;
  p.ny = 24;
  return p;
}

int choose_model_scale(const swm_params& p, int steps = 20) {
  fp::sherlog_sink().reset();
  model<fp::sherlog32> dev(p);
  dev.seed_random_eddies(42, 0.5);
  dev.run(steps);
  const auto choice =
      fp::choose_scaling(fp::sherlog_sink(), fp::float16_range);
  return choice.log2_scale;
}

}  // namespace

TEST(PrecisionPipeline, SherlogRunYieldsUsableScale) {
  const int k = choose_model_scale(base_params());
  // The development run sees increments ~1e-4 and states ~1; the scale
  // that centres that range in Float16 is a large power of two.
  EXPECT_GE(k, 8);
  EXPECT_LE(k, 20);
}

TEST(PrecisionPipeline, ScaledFloat16RunAvoidsSubnormalsAndOverflow) {
  swm_params p = base_params();
  p.log2_scale = choose_model_scale(p);

  fp::ftz_guard ftz(fp::ftz_mode::flush);
  fp::counters().reset();
  model<float16> m(p, integration_scheme::compensated);
  m.seed_random_eddies(42, 0.5);
  m.run(150);

  EXPECT_TRUE(m.diag().finite);
  EXPECT_EQ(fp::counters().f16_overflows, 0u);
  EXPECT_EQ(fp::counters().f16_nans, 0u);
  // A small subnormal tail is expected and flushed; it must stay tiny.
  const auto& c = fp::counters();
  const double total_ops =
      440.0 * 150 * p.nx * p.ny;  // rough op count, for the ratio only
  EXPECT_LT(static_cast<double>(c.f16_subnormal_results), 2e-3 * total_ops);
}

TEST(PrecisionPipeline, UnscaledFloat16RunIsDegraded) {
  // Without the scaling, the per-step increments (~1e-4..1e-6) sink
  // into Float16's subnormal range: with FTZ they flush to zero and the
  // dynamics visibly degrade relative to the scaled run. This is the
  // *reason* the paper scales the equations.
  fp::ftz_guard ftz(fp::ftz_mode::flush);

  swm_params p = base_params();
  model<double> ref(p);
  ref.seed_random_eddies(42, 0.5);
  ref.run(120);
  const auto zref = relative_vorticity(ref.unscaled(), p);

  fp::counters().reset();
  model<float16> unscaled(p, integration_scheme::compensated);
  unscaled.seed_random_eddies(42, 0.5);
  unscaled.run(120);
  const auto flushed_unscaled = fp::counters().f16_flushed_results;
  const auto zu = relative_vorticity(unscaled.unscaled(), p);

  swm_params ps = p;
  ps.log2_scale = choose_model_scale(p);
  fp::counters().reset();
  model<float16> scaled(ps, integration_scheme::compensated);
  scaled.seed_random_eddies(42, 0.5);
  scaled.run(120);
  const auto flushed_scaled = fp::counters().f16_flushed_results;
  const auto zs = relative_vorticity(scaled.unscaled(), ps);

  // Scaling slashes the number of flushed (lost) results...
  EXPECT_LT(flushed_scaled * 10, flushed_unscaled);
  // ...and the scaled run matches the reference better.
  EXPECT_GT(correlation(zref, zs), correlation(zref, zu));
  EXPECT_LT(rmse(zref, zs), rmse(zref, zu));
}

TEST(PrecisionPipeline, Fig4Float16IndistinguishableFromFloat64) {
  // The Fig. 4 claim, made quantitative: scaled+compensated Float16
  // vorticity correlates > 0.999 with the Float64 field and the
  // relative RMSE stays below 1 %.
  swm_params p = base_params();
  p.log2_scale = choose_model_scale(p);

  model<double> ref(base_params());
  ref.seed_random_eddies(42, 0.5);
  ref.run(200);

  fp::ftz_guard ftz(fp::ftz_mode::flush);
  model<float16> half(p, integration_scheme::compensated);
  half.seed_random_eddies(42, 0.5);
  half.run(200);

  const auto zr = relative_vorticity(ref.unscaled(), base_params());
  const auto zh = relative_vorticity(half.unscaled(), p);
  EXPECT_GT(correlation(zr, zh), 0.999);
  EXPECT_LT(rmse(zr, zh), 0.01 * rms(zr));
}

TEST(PrecisionPipeline, CompensationImprovesFloat16) {
  // The compensated time integration exists because plain Float16
  // accumulation strands small increments (§ III-B). Compare both
  // variants against the Float64 reference.
  swm_params p = base_params();
  p.log2_scale = choose_model_scale(p);

  model<double> ref(base_params());
  ref.seed_random_eddies(42, 0.5);
  ref.run(250);
  const auto zr = relative_vorticity(ref.unscaled(), base_params());

  fp::ftz_guard ftz(fp::ftz_mode::flush);
  model<float16> comp(p, integration_scheme::compensated);
  comp.seed_random_eddies(42, 0.5);
  comp.run(250);
  model<float16> plain(p, integration_scheme::standard);
  plain.seed_random_eddies(42, 0.5);
  plain.run(250);

  const auto zc = relative_vorticity(comp.unscaled(), p);
  const auto zp = relative_vorticity(plain.unscaled(), p);
  EXPECT_LE(rmse(zr, zc), rmse(zr, zp));
  EXPECT_TRUE(comp.diag().finite);
  EXPECT_TRUE(plain.diag().finite);
}

TEST(PrecisionPipeline, MixedPrecisionRunsAndTracksReference) {
  // The Float16/32 configuration of Fig. 5: RHS in Float16,
  // integration in Float32.
  swm_params p = base_params();
  p.log2_scale = choose_model_scale(p);

  model<double> ref(base_params());
  ref.seed_random_eddies(42, 0.5);
  ref.run(150);

  fp::ftz_guard ftz(fp::ftz_mode::flush);
  model<float16, float> mixed(p);
  mixed.seed_random_eddies(42, 0.5);
  mixed.run(150);

  EXPECT_TRUE(mixed.diag().finite);
  const auto zr = relative_vorticity(ref.unscaled(), base_params());
  const auto zm = relative_vorticity(mixed.unscaled(), p);
  EXPECT_GT(correlation(zr, zm), 0.999);
}

TEST(PrecisionPipeline, BFloat16NeedsNoScalingButIsNoisier) {
  // bfloat16 has float32's range (no subnormal trouble at scale 1) but
  // only 8 significand bits: it runs unscaled yet tracks the reference
  // worse than properly scaled float16 (11 bits).
  const swm_params p = base_params();
  model<double> ref(p);
  ref.seed_random_eddies(42, 0.5);
  ref.run(100);
  const auto zr = relative_vorticity(ref.unscaled(), p);

  model<tfx::fp::bfloat16> bf(p, integration_scheme::compensated);
  bf.seed_random_eddies(42, 0.5);
  bf.run(100);
  EXPECT_TRUE(bf.diag().finite);
  const auto zb = relative_vorticity(bf.unscaled(), p);

  swm_params ph = p;
  ph.log2_scale = choose_model_scale(p);
  fp::ftz_guard ftz(fp::ftz_mode::flush);
  model<float16> half(ph, integration_scheme::compensated);
  half.seed_random_eddies(42, 0.5);
  half.run(100);
  const auto zh = relative_vorticity(half.unscaled(), ph);

  EXPECT_LT(rmse(zr, zh), rmse(zr, zb));
}
