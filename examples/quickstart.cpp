// Quickstart: the library in one file.
//
// 1. One generic axpy template runs at Float64, Float32, Float16 and
//    BFloat16 (the paper's productivity claim).
// 2. The blas_registry (libblastrampoline analogue) swaps tuned
//    backends at runtime - and only the generic kernel has Float16.
// 3. The A64FX machine model predicts what each combination would do
//    on the paper's hardware.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "arch/roofline.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/traits.hpp"
#include "kernels/generic.hpp"
#include "kernels/registry.hpp"

using namespace tfx;
using tfx::fp::bfloat16;
using tfx::fp::float16;

namespace {

template <typename T>
void demo_axpy() {
  std::vector<T> x(8), y(8);
  for (int i = 0; i < 8; ++i) {
    x[static_cast<std::size_t>(i)] = T(i + 1);
    y[static_cast<std::size_t>(i)] = T(0.5);
  }
  kernels::axpy(T(2.0), std::span<const T>(x), std::span<T>(y));
  std::printf("  %-9s y[7] = 2*8 + 0.5 = %g\n",
              std::string(fp::precision_traits<T>::name).c_str(),
              static_cast<double>(y[7]));
}

}  // namespace

int main() {
  std::puts("== 1. One generic kernel, four number formats ==");
  demo_axpy<double>();
  demo_axpy<float>();
  demo_axpy<float16>();
  demo_axpy<bfloat16>();

  std::puts("\n== 2. Runtime backend swapping (libblastrampoline) ==");
  auto& reg = kernels::blas_registry::instance();
  std::vector<double> x{1, 2, 3}, y{0, 0, 0};
  for (const auto name : reg.names()) {
    reg.set_current(std::string(name));
    std::vector<double> yy = y;
    kernels::axpy_dispatch(1.0, std::span<const double>(x),
                           std::span<double>(yy));
    std::printf("  via %-12s -> y = {%g, %g, %g}\n",
                std::string(name).c_str(), yy[0], yy[1], yy[2]);
  }
  reg.set_current("Julia");

  std::puts("\n== 3. Only the generic kernel exists at Float16 ==");
  std::vector<float16> hx{float16(1.0)}, hy{float16(1.0)};
  try {
    reg.find("OpenBLAS")->axpy(float16(1.0), std::span<const float16>(hx),
                               std::span<float16>(hy));
  } catch (const kernels::unsupported_routine& e) {
    std::printf("  OpenBLAS: %s\n", e.what());
  }

  std::puts("\n== 4. Modeled A64FX throughput (n = 4096, in L1) ==");
  for (const std::size_t elem : {8u, 4u, 2u}) {
    const auto profile = reg.find("Julia")->axpy_profile(elem);
    const auto m = arch::predict(arch::fugaku_node, profile, 4096, elem,
                                 2 * 4096 * elem);
    std::printf("  %zu-byte elements: %.1f GFLOPS (peak %.0f)\n", elem,
                m.gflops, arch::fugaku_node.peak_gflops(elem));
  }
  return 0;
}
