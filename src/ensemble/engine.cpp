/// \file engine.cpp
/// Batch-grouped member stepping behind the async submit/poll API —
/// see engine.hpp for the scheduling model and docs/ENSEMBLE.md for
/// the contracts. Layout of this file:
///
///   group_impl<T, Tprog>  one batch group: members of one
///                         (personality, nx, ny, ftz) key, stepped
///                         tile-by-tile with the batched apply
///   engine::impl          the service: job table, admission, rounds
///                         over the thread pool, tenant obs plane
///
/// Concurrency shape. All client-facing state (job table, groups map,
/// admission gauges) lives under one mutex. Stepping happens in
/// *rounds*: between regions the driving thread — alone, under the
/// mutex — compacts finished members, splices admissions and builds a
/// claim list of (group, member-range) tiles; during the region,
/// workers grab claims off an atomic cursor and step disjoint member
/// ranges with no shared mutable state (per-worker scratch for the
/// batch items and the tenant tallies). Determinism needs no more
/// than that: members never read each other, so claim interleaving
/// cannot reach the arithmetic.
///
/// Member repair rides the same shape. In-group repairs (retry,
/// rescale) happen inside the worker's claim: the worker owns the
/// member, so rebuilding its model in place races nothing. Promotions
/// cross group types, so the worker only *queues* a promotion request
/// on its per-worker list; the driving thread drains the lists —
/// sorted by job id, so arrival order into the new group is identical
/// for every pool size — under the mutex between rounds. Repair
/// *decisions* read only member-local state (the member's autopilot
/// window and counters, its fault cursor, its job's retry budget), so
/// the repair transcript is deterministic too.

#include "ensemble/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "fp/bfloat16.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "kernels/batched.hpp"
#include "kernels/sweeps.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/autopilot.hpp"
#include "swm/health.hpp"
#include "swm/model.hpp"
#include "swm/params.hpp"
#include "swm/perfmodel.hpp"

namespace tfx::ensemble {

namespace {

/// One admitted member run. Owned by the job table for the engine's
/// lifetime (poll/result pointers stay valid); the stepping side holds
/// a raw pointer. Atomics are the poll-plane: workers publish, client
/// threads read without taking the round into account.
struct job_record {
  job_id id = invalid_job;
  tenant_id tenant = default_tenant;
  member_config cfg;
  std::atomic<job_state> state{job_state::queued};
  std::atomic<int> steps_done{0};
  std::atomic<int> failed_step{-1};
  std::atomic<bool> cancel_requested{false};
  std::atomic<fail_reason> reason{fail_reason::none};
  std::atomic<int> repairs{0};  ///< autopilot actions taken (poll plane)
  /// Reactive repairs this member may still consume, resolved from
  /// its tenant at admission. Stepping-side fields below are only
  /// touched by the worker that owns the member in a round (the
  /// round's dispatch/join fences order cross-round access).
  int retry_budget = 0;
  int reactive_repairs = 0;
  /// Unscaled double image of a restored member's initial state, kept
  /// (autopilot members only) so a rollback can reach step 0 even
  /// after the member's scale has moved away from the admitted one.
  std::unique_ptr<swm::state<double>> initial_unscaled;
  job_result result;
};

constexpr bool is_terminal(job_state s) {
  return s == job_state::done || s == job_state::cancelled ||
         s == job_state::failed;
}

/// What one tile claim reports back to the round accounting.
struct advance_stats {
  std::size_t member_steps = 0;
  std::size_t finished = 0;
  double finished_seconds = 0;  ///< modeled backlog released
  std::size_t rescales = 0;     ///< autopilot actions this claim took
  std::size_t retries = 0;
  std::size_t promotes = 0;     ///< promotion requests queued
  std::size_t permfails = 0;
};

/// A member leaving its batch group for the next precision rung. The
/// worker captures everything the target group needs to resume the
/// run; the driving thread re-admits between rounds, sorted by job id
/// so arrival order into the new group is pool-size independent.
struct promotion {
  job_record* job = nullptr;
  swm::state<double> unscaled;  ///< resume state, unscaled double
  int at_taken = 0;      ///< member-local step the state belongs to
  int step = 0;          ///< member-local step the decision was made at
  std::size_t snap_next = 0;   ///< snapshot cursor to resume with
  std::size_t fault_next = 0;  ///< fault cursor carries across rungs
  std::unique_ptr<swm::autopilot> pilot;
  swm::autopilot_cause cause = swm::autopilot_cause::none;
  int rollback_to = -1;
  std::ptrdiff_t bad_index = -1;
};

class group_base {
 public:
  virtual ~group_base() = default;

  /// Build + initialize a member for `job` (model construction,
  /// seeding/restore, perturbation — under the member's ftz mode) and
  /// queue it for the next round. Caller holds the engine mutex.
  virtual void admit(job_record* job) = 0;

  /// Between-rounds maintenance under the engine mutex: compact
  /// finished members out, splice admissions in, size the per-worker
  /// scratch. Returns the steppable member count.
  virtual std::size_t prepare_round() = 0;

  /// Re-admit a member promoted out of another group (job->cfg
  /// already updated to this group's personality/scale). Caller holds
  /// the engine mutex.
  virtual void admit_promoted(promotion&& pr) = 0;

  /// Advance members [begin, end) by up to `stride` steps. Ranges of
  /// concurrent calls never overlap, so the only shared state is the
  /// per-worker scratch selected by `worker` and each member's own
  /// job_record atomics; promotion requests go to `promotions`, the
  /// calling worker's own list. Called without the engine mutex.
  virtual advance_stats advance(int worker, int stride, std::size_t begin,
                                std::size_t end,
                                std::span<std::uint64_t> tenant_steps,
                                std::span<std::uint64_t> tenant_jobs,
                                std::vector<promotion>& promotions) = 0;

  [[nodiscard]] virtual std::size_t tile() const = 0;
  [[nodiscard]] virtual std::size_t active() const = 0;
};

template <typename T, typename Tprog>
class group_impl final : public group_base {
 public:
  group_impl(swm::integration_scheme scheme, fp::ftz_mode ftz,
             std::size_t tile, bool batched_apply, int workers)
      : scheme_(scheme),
        ftz_(ftz),
        tile_(tile),
        batched_(batched_apply),
        items_(static_cast<std::size_t>(workers)) {}

  void admit(job_record* job) override {
    const member_config& cfg = job->cfg;
    // Initialization runs under the member's ftz mode, exactly like a
    // standalone run constructed inside an ftz_guard (the oracle).
    fp::ftz_guard guard(ftz_);
    auto m = std::make_unique<member>(job, params_for(cfg, cfg.log2_scale),
                                      scheme_);
    if (cfg.health_every > 0) m->model->set_health_interval(cfg.health_every);
    if (cfg.initial != nullptr) {
      m->model->restore(swm::convert_state<Tprog>(*cfg.initial),
                        cfg.initial_steps);
    } else {
      m->model->seed_random_eddies(cfg.seed, cfg.velocity_amplitude);
    }
    if (cfg.perturb_seed != 0) perturb(*m);
    if (cfg.autopilot.check_every > 0) {
      m->pilot = std::make_unique<swm::autopilot>(
          cfg.autopilot, format_range_of(cfg.prec),
          params_for(cfg, cfg.log2_scale));
      if (cfg.initial != nullptr) {
        // Restored members cannot re-run a seed recipe on rollback to
        // start; keep their post-init image (unscaled, so it survives
        // scale changes) as the step-`initial_steps` restart point.
        job->initial_unscaled =
            std::make_unique<swm::state<double>>(m->model->unscaled());
      }
    }
    pending_.push_back(std::move(m));
  }

  void admit_promoted(promotion&& pr) override {
    job_record* job = pr.job;
    const member_config& cfg = job->cfg;  // already at this group's rung
    fp::ftz_guard guard(ftz_);
    auto m = std::make_unique<member>(job, params_for(cfg, cfg.log2_scale),
                                      scheme_);
    if (cfg.health_every > 0) m->model->set_health_interval(cfg.health_every);
    restore_unscaled(*m, pr.unscaled, pr.at_taken);
    m->taken = pr.at_taken;
    m->remaining = cfg.steps - pr.at_taken;
    m->snap_next = pr.snap_next;
    m->fault_next = pr.fault_next;
    m->pilot = std::move(pr.pilot);
    job->steps_done.store(pr.at_taken, std::memory_order_relaxed);
    pending_.push_back(std::move(m));
  }

  std::size_t prepare_round() override {
    compact();
    for (auto& m : pending_) members_.push_back(std::move(m));
    pending_.clear();
    const std::size_t batch = 3 * std::min(tile_, members_.size());
    for (auto& scratch : items_) {
      if (scratch.capacity() < batch) scratch.reserve(batch);
    }
    return members_.size();
  }

  advance_stats advance(int worker, int stride, std::size_t begin,
                        std::size_t end,
                        std::span<std::uint64_t> tenant_steps,
                        std::span<std::uint64_t> tenant_jobs,
                        std::vector<promotion>& promotions) override {
    advance_stats st{};
    fp::ftz_guard guard(ftz_);
    end = std::min(end, members_.size());
    auto& scratch = items_[static_cast<std::size_t>(worker)];
    for (int s = 0; s < stride; ++s) {
      if (!step_range_once(begin, end, scratch, st, tenant_steps,
                           tenant_jobs, promotions)) {
        break;
      }
    }
    return st;
  }

  [[nodiscard]] std::size_t tile() const override { return tile_; }

  [[nodiscard]] std::size_t active() const override {
    return members_.size() + pending_.size();
  }

 private:
  struct member {
    job_record* job;
    /// optional<> so repair can rebuild the model in place: model pins
    /// a self-pointer in its region context, so it cannot be assigned,
    /// only emplaced.
    std::optional<swm::model<T, Tprog>> model;
    int remaining;
    int taken = 0;  ///< member-local steps completed
    std::size_t snap_next = 0;
    bool live = true;
    std::unique_ptr<swm::autopilot> pilot;  ///< null: autopilot off
    std::size_t fault_next = 0;  ///< next injected fault to fire

    member(job_record* j, const swm::swm_params& p,
           swm::integration_scheme s)
        : job(j), remaining(j->cfg.steps) {
      model.emplace(p, s);
    }
  };

  using batch_items = std::vector<kernels::sweeps::rk4_batch_item<Tprog>>;

  /// One step of every live member in [lo, hi): stage-major stages,
  /// one batched apply dispatch (native types), then the step close.
  /// Returns false once the range has no live members left.
  bool step_range_once(std::size_t lo, std::size_t hi, batch_items& scratch,
                       advance_stats& st,
                       std::span<std::uint64_t> tenant_steps,
                       std::span<std::uint64_t> tenant_jobs,
                       std::vector<promotion>& promotions) {
    bool any = false;
    for (std::size_t i = lo; i < hi; ++i) {
      member& m = *members_[i];
      if (!m.live) continue;
      if (m.job->cancel_requested.load(std::memory_order_relaxed)) {
        finalize(m, job_state::cancelled, st, tenant_jobs);
        continue;
      }
      m.job->state.store(job_state::running, std::memory_order_relaxed);
      if (!m.job->cfg.faults.empty()) inject_faults(m);
      m.model->step_stages();
      any = true;
    }
    if (!any) return false;

    if constexpr (swm::model<T, Tprog>::batchable_apply) {
      if (batched_) {
        scratch.clear();
        for (std::size_t i = lo; i < hi; ++i) {
          if (members_[i]->live) members_[i]->model->append_rk4_items(scratch);
        }
        if (scheme_ == swm::integration_scheme::compensated) {
          kernels::sweeps::rk4_update_kahan_batched<Tprog>(scratch);
        } else {
          kernels::sweeps::rk4_update_batched<Tprog>(scratch);
        }
      } else {
        for (std::size_t i = lo; i < hi; ++i) {
          if (members_[i]->live) members_[i]->model->step_apply();
        }
      }
    } else {
      for (std::size_t i = lo; i < hi; ++i) {
        if (members_[i]->live) members_[i]->model->step_apply();
      }
    }

    for (std::size_t i = lo; i < hi; ++i) {
      member& m = *members_[i];
      if (!m.live) continue;
      bool failed = false;
      std::ptrdiff_t bad_index = -1;
      try {
        m.model->finish_step();
      } catch (const swm::numerical_error& err) {
        m.job->failed_step.store(err.step(), std::memory_order_relaxed);
        bad_index = err.index();
        failed = true;
      }
      ++m.taken;
      --m.remaining;
      m.job->steps_done.store(m.taken, std::memory_order_relaxed);
      ++st.member_steps;
      tenant_steps[m.job->tenant] += 1;
      if (failed) {
        repair_after_error(m, bad_index, st, tenant_jobs, promotions);
        continue;
      }
      record_snapshot_if_due(m);
      if (m.pilot != nullptr && m.remaining > 0 &&
          m.taken % m.job->cfg.autopilot.check_every == 0) {
        autopilot_check(m, st, tenant_jobs, promotions);
        if (!m.live) continue;
      }
      if (m.remaining == 0) finalize(m, job_state::done, st, tenant_jobs);
    }
    return true;
  }

  void record_snapshot_if_due(member& m) {
    const member_config& cfg = m.job->cfg;
    if (cfg.record_every <= 0 || m.taken % cfg.record_every != 0) return;
    if (m.snap_next >= m.job->result.snapshots.size()) return;
    swm::state<double>& out = m.job->result.snapshots[m.snap_next++];
    swm::convert_state_into(out, m.model->prognostic());
    // Same arithmetic as model::unscaled(): exact double conversion,
    // then a power-of-two descale (cfg.log2_scale follows rescales).
    const double inv_s = 1.0 / std::ldexp(1.0, cfg.log2_scale);
    for (auto& v : out.u.flat()) v *= inv_s;
    for (auto& v : out.v.flat()) v *= inv_s;
    for (auto& v : out.eta.flat()) v *= inv_s;
  }

  /// Publish the member's result and terminal state. The release
  /// store on `state` is what poll()/result() acquire against.
  void finalize(member& m, job_state final_state, advance_stats& st,
                std::span<std::uint64_t> tenant_jobs) {
    job_record& job = *m.job;
    swm::convert_state_into(job.result.prognostic, m.model->prognostic());
    swm::convert_state_into(job.result.compensation, m.model->compensation());
    job.result.steps_done = m.taken;
    job.result.prec = job.cfg.prec;
    job.result.log2_scale = job.cfg.log2_scale;
    if (job.result.snapshots.size() > m.snap_next) {
      job.result.snapshots.resize(m.snap_next);
    }
    m.live = false;
    ++st.finished;
    st.finished_seconds += job.result.modeled_seconds;
    tenant_jobs[job.tenant] += 1;
    job.state.store(final_state, std::memory_order_release);
    TFX_OBS_INSTANT(ens, job.tenant, "ens.job.done", job.id,
                    static_cast<std::uint64_t>(m.taken));
  }

  /// Swap-free stable compaction (between rounds, under the engine
  /// mutex): finished members release their model storage —
  /// deallocation only, the steady state stays allocation-free.
  void compact() {
    std::size_t w = 0;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (!members_[i]->live) continue;
      if (w != i) members_[w] = std::move(members_[i]);
      ++w;
    }
    members_.resize(w);
  }

  // -- member repair (docs/AUTOPILOT.md) ------------------------------

  static swm::swm_params params_for(const member_config& cfg,
                                    int log2_scale) {
    swm::swm_params p;
    p.nx = cfg.nx;
    p.ny = cfg.ny;
    p.log2_scale = log2_scale;
    return p;
  }

  /// The bench/ensemble_error IC perturbation: ONE stream across
  /// u, v, eta — identical re-run on rollback-to-start, so a repaired
  /// member restarts from the exact admitted state.
  void perturb(member& m) {
    const member_config& cfg = m.job->cfg;
    xoshiro256 rng(cfg.perturb_seed);
    auto& st = m.model->prognostic();
    for (auto* f : {&st.u, &st.v, &st.eta}) {
      for (auto& v : f->flat()) {
        v = Tprog(static_cast<double>(v) *
                  (1.0 + cfg.perturb_amplitude * rng.uniform(-1.0, 1.0)));
      }
    }
  }

  /// Restore the member from an unscaled double image recorded at
  /// member-local step `at_taken`, scaling by the model's *current*
  /// 2^k (exact for in-range values).
  void restore_unscaled(member& m, const swm::state<double>& src,
                        int at_taken) {
    const member_config& cfg = m.job->cfg;
    const double s = std::ldexp(1.0, m.model->params().log2_scale);
    swm::state<Tprog> scaled(cfg.nx, cfg.ny);
    const auto conv = [s](std::span<Tprog> dst, std::span<const double> in) {
      for (std::size_t k = 0; k < in.size(); ++k) {
        dst[k] = Tprog(in[k] * s);
      }
    };
    conv(scaled.u.flat(), src.u.flat());
    conv(scaled.v.flat(), src.v.flat());
    conv(scaled.eta.flat(), src.eta.flat());
    m.model->restore(scaled, cfg.initial_steps + at_taken);
  }

  /// Fire every due injected fault, exactly once each (the cursor
  /// never rewinds, so a rollback past a fault does not re-arm it).
  void inject_faults(member& m) {
    const member_config& cfg = m.job->cfg;
    while (m.fault_next < cfg.faults.size() &&
           cfg.faults[m.fault_next].at_step <= m.taken) {
      const member_fault& f = cfg.faults[m.fault_next++];
      auto& st = m.model->prognostic();
      if (f.kind == fault_kind::scale_state) {
        const double factor = std::ldexp(1.0, f.log2_factor);
        for (auto* fld : {&st.u, &st.v, &st.eta}) {
          for (auto& v : fld->flat()) {
            v = Tprog(static_cast<double>(v) * factor);
          }
        }
      } else {
        auto eta = st.eta.flat();
        const auto n = static_cast<std::ptrdiff_t>(eta.size());
        const std::ptrdiff_t at = ((f.index % n) + n) % n;
        eta[static_cast<std::size_t>(at)] =
            Tprog(std::numeric_limits<double>::quiet_NaN());
      }
    }
  }

  static bool finite_state(const swm::state<double>& s) {
    return swm::all_finite(std::span<const double>(s.u.flat())) &&
           swm::all_finite(std::span<const double>(s.v.flat())) &&
           swm::all_finite(std::span<const double>(s.eta.flat()));
  }

  /// Append the repair transcript entry + the poll counter + the obs
  /// instant for an action just taken. `decided_at` is the member
  /// step the decision was made at (pre-rollback).
  void note_repair(member& m, repair_kind kind, swm::autopilot_cause cause,
                   int decided_at, int rollback_to,
                   std::ptrdiff_t bad_index) {
    job_record& job = *m.job;
    job.result.repairs.push_back({kind, cause, decided_at, job.cfg.prec,
                                  job.cfg.log2_scale, rollback_to,
                                  bad_index});
    job.repairs.fetch_add(1, std::memory_order_relaxed);
    const auto aux = static_cast<std::uint64_t>(decided_at);
    switch (kind) {
      case repair_kind::rescale:
        TFX_OBS_INSTANT(ens, job.tenant, "ens.autopilot.rescale", job.id,
                        aux);
        break;
      case repair_kind::retry:
        TFX_OBS_INSTANT(ens, job.tenant, "ens.autopilot.retry", job.id, aux);
        break;
      case repair_kind::promote:
        TFX_OBS_INSTANT(ens, job.tenant, "ens.autopilot.promote", job.id,
                        aux);
        break;
      case repair_kind::permfail:
        TFX_OBS_INSTANT(ens, job.tenant, "ens.autopilot.permfail", job.id,
                        aux);
        break;
    }
  }

  /// The typed dead end of the ladder.
  void permfail(member& m, swm::autopilot_cause cause, fail_reason why,
                std::ptrdiff_t bad_index, advance_stats& st,
                std::span<std::uint64_t> tenant_jobs) {
    job_record& job = *m.job;
    job.result.reason = why;
    job.reason.store(why, std::memory_order_relaxed);
    note_repair(m, repair_kind::permfail, cause, m.taken, -1, bad_index);
    ++st.permfails;
    finalize(m, job_state::failed, st, tenant_jobs);
  }

  /// Exact in-place restate at a new scale: prognostic and Kahan
  /// compensation multiply by the power-of-two scale ratio (no
  /// mantissa bits move for in-range values), the model rebuilds its
  /// coefficients at the new scale, and the run resumes mid-flight.
  void restate_in_place(member& m, int new_log2_scale) {
    const member_config& cfg = m.job->cfg;
    const int steps = m.model->steps_taken();
    const double factor =
        std::ldexp(1.0, new_log2_scale - m.model->params().log2_scale);
    swm::state<Tprog> prog = m.model->prognostic();
    swm::state<Tprog> comp = m.model->compensation();
    for (auto* s : {&prog, &comp}) {
      for (auto* f : {&s->u, &s->v, &s->eta}) {
        for (auto& x : f->flat()) {
          x = Tprog(static_cast<double>(x) * factor);
        }
      }
    }
    m.model.emplace(params_for(cfg, new_log2_scale), scheme_);
    if (cfg.health_every > 0) m.model->set_health_interval(cfg.health_every);
    m.model->restore(prog, comp, steps);
  }

  /// Roll the member back: rebuild the model at the given scale and
  /// restart from `src` (an unscaled image at member step `rb`), or
  /// from the submit-time seed recipe when src is null (rb == 0).
  void rebuild_at(member& m, int new_log2_scale, int rb,
                  const swm::state<double>* src, std::size_t rb_snap) {
    member_config& cfg = m.job->cfg;
    m.model.emplace(params_for(cfg, new_log2_scale), scheme_);
    if (cfg.health_every > 0) m.model->set_health_interval(cfg.health_every);
    if (src != nullptr) {
      restore_unscaled(m, *src, rb);
    } else {
      m.model->seed_random_eddies(cfg.seed, cfg.velocity_amplitude);
      if (cfg.perturb_seed != 0) perturb(m);
    }
    m.taken = rb;
    m.remaining = cfg.steps - rb;
    m.snap_next = rb_snap;
    m.job->steps_done.store(rb, std::memory_order_relaxed);
  }

  /// Execute a retry / rescale / promote verdict. Rollback verdicts
  /// restart from the latest all-finite snapshot (else the initial
  /// image / seed recipe); in-place verdicts keep the live state.
  void apply_verdict(member& m, const swm::autopilot_verdict& v,
                     std::ptrdiff_t bad_index, advance_stats& st,
                     std::vector<promotion>& promotions) {
    job_record& job = *m.job;
    member_config& cfg = job.cfg;
    const int decided_at = m.taken;

    int rb = -1;
    std::size_t rb_snap = m.snap_next;
    const swm::state<double>* src = nullptr;
    if (v.rollback) {
      rb = 0;
      rb_snap = 0;
      src = job.initial_unscaled.get();
      for (std::size_t idx = m.snap_next; idx-- > 0;) {
        const swm::state<double>& s = job.result.snapshots[idx];
        if (finite_state(s)) {
          rb = static_cast<int>(idx + 1) * cfg.record_every;
          rb_snap = idx + 1;
          src = &s;
          break;
        }
      }
    }

    switch (v.action) {
      case swm::autopilot_action::retry:
      case swm::autopilot_action::rescale: {
        const bool rescale = v.action == swm::autopilot_action::rescale;
        const int new_k = rescale ? v.log2_scale : cfg.log2_scale;
        if (v.rollback) {
          rebuild_at(m, new_k, rb, src, rb_snap);
        } else {
          restate_in_place(m, new_k);
        }
        if (rescale) {
          cfg.log2_scale = new_k;
          m.pilot->note_rescale(new_k);
          ++st.rescales;
          note_repair(m, repair_kind::rescale, v.cause, decided_at, rb,
                      bad_index);
        } else {
          ++st.retries;
          note_repair(m, repair_kind::retry, v.cause, decided_at, rb,
                      bad_index);
        }
        break;
      }
      case swm::autopilot_action::promote: {
        promotion pr;
        pr.job = &job;
        pr.at_taken = v.rollback ? rb : m.taken;
        pr.step = decided_at;
        pr.snap_next = v.rollback ? rb_snap : m.snap_next;
        pr.fault_next = m.fault_next;
        pr.cause = v.cause;
        pr.rollback_to = v.rollback ? rb : -1;
        pr.bad_index = bad_index;
        if (!v.rollback) {
          pr.unscaled = m.model->unscaled();
        } else if (src != nullptr) {
          pr.unscaled = *src;
        } else {
          // No finite restart image survived: re-run the seed recipe
          // on this rung just to capture its step-0 state.
          rebuild_at(m, cfg.log2_scale, 0, nullptr, 0);
          pr.unscaled = m.model->unscaled();
        }
        pr.pilot = std::move(m.pilot);
        promotions.push_back(std::move(pr));
        m.live = false;
        ++st.promotes;
        break;
      }
      default:
        break;  // none/fail are handled by the callers
    }
  }

  /// Reactive repair: the health sentinel threw in finish_step.
  /// Without a pilot this is the fail-stop of old; with one, walk the
  /// ladder from the rolled-back state, metered by the tenant budget.
  void repair_after_error(member& m, std::ptrdiff_t bad_index,
                          advance_stats& st,
                          std::span<std::uint64_t> tenant_jobs,
                          std::vector<promotion>& promotions) {
    job_record& job = *m.job;
    if (m.pilot == nullptr) {
      job.result.reason = fail_reason::numerical;
      job.reason.store(fail_reason::numerical, std::memory_order_relaxed);
      finalize(m, job_state::failed, st, tenant_jobs);
      return;
    }
    if (job.reactive_repairs >= job.retry_budget) {
      permfail(m, swm::autopilot_cause::numerical_error,
               fail_reason::retry_exhausted, bad_index, st, tenant_jobs);
      return;
    }
    const swm::autopilot_verdict v =
        m.pilot->on_numerical_error(job.cfg.log2_scale);
    if (v.action == swm::autopilot_action::fail ||
        (v.action == swm::autopilot_action::promote &&
         !promotable(job.cfg.prec))) {
      permfail(m, v.cause, fail_reason::ladder_exhausted, bad_index, st,
               tenant_jobs);
      return;
    }
    job.reactive_repairs += 1;
    apply_verdict(m, v, bad_index, st, promotions);
  }

  /// Proactive range check: shadow-stripe sample + assessment against
  /// the member's admitted range, then act on the verdict.
  void autopilot_check(member& m, advance_stats& st,
                       std::span<std::uint64_t> tenant_jobs,
                       std::vector<promotion>& promotions) {
    job_record& job = *m.job;
    {
      TFX_OBS_SPAN(ens, job.tenant, "ens.autopilot.check", job.id);
      m.pilot->sample(m.model->prognostic());
    }
    const swm::autopilot_verdict v = m.pilot->assess(job.cfg.log2_scale);
    if (v.action == swm::autopilot_action::none) return;
    if (v.action == swm::autopilot_action::fail) {
      permfail(m, v.cause, fail_reason::range_unrecoverable, -1, st,
               tenant_jobs);
      return;
    }
    if (v.action == swm::autopilot_action::promote &&
        !promotable(job.cfg.prec)) {
      permfail(m, v.cause, fail_reason::ladder_exhausted, -1, st,
               tenant_jobs);
      return;
    }
    apply_verdict(m, v, -1, st, promotions);
  }

  swm::integration_scheme scheme_;
  fp::ftz_mode ftz_;
  std::size_t tile_;
  bool batched_;
  std::vector<std::unique_ptr<member>> members_;
  std::vector<std::unique_ptr<member>> pending_;  ///< engine mutex only
  std::vector<batch_items> items_;  ///< per-worker apply scratch
};

/// Batch key: members stepping together must share model types,
/// geometry and ftz mode (one guard per batch). Scheme is implied by
/// the personality.
using group_key = std::tuple<std::uint8_t, int, int, std::uint8_t>;

group_key key_of(const member_config& cfg) {
  return {static_cast<std::uint8_t>(cfg.prec), cfg.nx, cfg.ny,
          static_cast<std::uint8_t>(cfg.ftz)};
}

}  // namespace

struct engine::impl {
  explicit impl(engine_options o)
      : opts(o),
        pool(o.threads),
        worker_stats(static_cast<std::size_t>(o.threads)),
        worker_tenant_steps(
            static_cast<std::size_t>(o.threads),
            std::vector<std::uint64_t>(
                static_cast<std::size_t>(o.max_tenants), 0)),
        worker_tenant_jobs(
            static_cast<std::size_t>(o.threads),
            std::vector<std::uint64_t>(
                static_cast<std::size_t>(o.max_tenants), 0)),
        worker_promotions(static_cast<std::size_t>(o.threads)),
        tenants(new tenant_slot[static_cast<std::size_t>(o.max_tenants)]) {}

  engine_options opts;
  thread_pool pool;

  mutable std::mutex mu;
  std::condition_variable work_cv;  ///< wakes the scheduler thread
  std::condition_variable done_cv;  ///< wakes wait()/wait_all()
  std::atomic<bool> stop{false};

  std::unordered_map<job_id, std::unique_ptr<job_record>> jobs;  // mu
  std::map<group_key, std::unique_ptr<group_base>> groups;       // mu
  job_id next_id = 1;                                            // mu
  std::size_t active = 0;   ///< members queued+running (mu)
  double backlog = 0;       ///< modeled seconds admitted (mu)

  /// One claimable unit of a round: a tile of one group. Distinct
  /// claims never share members, so a uniform ensemble (one big
  /// group) still spreads across every worker.
  struct claim {
    group_base* group = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Round scratch: written by the driving thread between regions,
  /// read by workers inside the region (the pool's dispatch/join
  /// fences order the accesses).
  std::vector<claim> round;
  std::atomic<std::size_t> round_next{0};
  std::vector<advance_stats> worker_stats;
  std::vector<std::vector<std::uint64_t>> worker_tenant_steps;
  std::vector<std::vector<std::uint64_t>> worker_tenant_jobs;
  /// Per-worker promotion requests, drained (sorted by job id) by the
  /// driving thread between rounds.
  std::vector<std::vector<promotion>> worker_promotions;

  struct tenant_slot {
    std::string name;
    obs::metric_counter* steps = nullptr;
    obs::metric_counter* jobs = nullptr;
    std::atomic<std::uint64_t> cum_steps{0};
    int retry_budget = 2;  ///< reactive repairs per member
  };
  std::unique_ptr<tenant_slot[]> tenants;  ///< fixed array: no realloc
  std::atomic<int> tenant_count{0};

  std::thread scheduler;

  // -- tenant obs plane ------------------------------------------------

  tenant_id add_tenant(std::string name, int retry_budget) {
    std::lock_guard lock(mu);
    const int idx = tenant_count.load(std::memory_order_relaxed);
    TFX_EXPECTS(idx < opts.max_tenants && "tenant capacity exhausted");
    TFX_EXPECTS(retry_budget >= 0);
    tenant_slot& slot = tenants[static_cast<std::size_t>(idx)];
    slot.name = std::move(name);
    slot.retry_budget = retry_budget;
    if constexpr (obs::compiled) {
      auto& reg = obs::metrics_registry::instance();
      slot.steps = &reg.get_counter("ens.steps." + slot.name);
      slot.jobs = &reg.get_counter("ens.jobs." + slot.name);
    }
    tenant_count.store(idx + 1, std::memory_order_release);
    return static_cast<tenant_id>(idx);
  }

  void note_tenant(tenant_id t, std::uint64_t steps,
                   std::uint64_t jobs_done) {
    tenant_slot& slot = tenants[t];
    const std::uint64_t total =
        slot.cum_steps.fetch_add(steps, std::memory_order_relaxed) + steps;
    if (obs::active()) {
      if (slot.steps != nullptr && steps != 0) slot.steps->add(steps);
      if (slot.jobs != nullptr && jobs_done != 0) slot.jobs->add(jobs_done);
      TFX_OBS_COUNTER(ens, t, "ens.tenant.steps", total);
    }
  }

  // -- rounds ----------------------------------------------------------

  static void run_worker(const void* ctx, int worker, std::size_t,
                         std::size_t) {
    auto& self = *static_cast<impl*>(const_cast<void*>(ctx));
    const auto w = static_cast<std::size_t>(worker);
    advance_stats& st = self.worker_stats[w];
    for (;;) {
      const std::size_t ci =
          self.round_next.fetch_add(1, std::memory_order_relaxed);
      if (ci >= self.round.size()) return;
      const claim& c = self.round[ci];
      TFX_OBS_SPAN(ens, static_cast<std::uint16_t>(worker), "ens.batch",
                   static_cast<std::uint64_t>(c.end - c.begin));
      const advance_stats got =
          c.group->advance(worker, self.opts.stride, c.begin, c.end,
                           self.worker_tenant_steps[w],
                           self.worker_tenant_jobs[w],
                           self.worker_promotions[w]);
      st.member_steps += got.member_steps;
      st.finished += got.finished;
      st.finished_seconds += got.finished_seconds;
      st.rescales += got.rescales;
      st.retries += got.retries;
      st.promotes += got.promotes;
      st.permfails += got.permfails;
    }
  }

  /// Re-admit a promoted member into the next rung's batch group:
  /// update the job's personality/scale, re-price the backlog, record
  /// the transcript entry, and hand the captured state to the new
  /// group. Caller holds the engine mutex.
  void promote_member(promotion&& pr) {
    job_record& job = *pr.job;
    member_config& cfg = job.cfg;
    const personality from = cfg.prec;
    cfg.prec = promoted(from);
    cfg.log2_scale = 0;  // wider rungs need no scaling by default

    const double old_cost = job.result.modeled_seconds;
    const double new_cost = swm::predict_time(
        opts.machine, cfg.nx, cfg.ny, precision_of(cfg.prec), cfg.steps);
    job.result.modeled_seconds = new_cost;
    backlog += new_cost - old_cost;
    if (backlog < 0) backlog = 0;

    pr.pilot->note_promotion(format_range_of(cfg.prec), 0);
    job.result.repairs.push_back({repair_kind::promote, pr.cause, pr.step,
                                  cfg.prec, 0, pr.rollback_to, pr.bad_index});
    job.repairs.fetch_add(1, std::memory_order_relaxed);
    TFX_OBS_INSTANT(ens, job.tenant, "ens.autopilot.promote", job.id,
                    static_cast<std::uint64_t>(pr.step));

    auto& group = groups[key_of(cfg)];
    if (!group) group = make_group(cfg);
    group->admit_promoted(std::move(pr));
  }

  /// One scheduling round: compact + splice every group, carve the
  /// members into tile claims, fan the claims out over the pool,
  /// account the results. Returns false (and does nothing) when no
  /// member is active.
  bool run_round() {
    {
      std::lock_guard lock(mu);
      round.clear();
      for (auto& [key, g] : groups) {
        const std::size_t n = g->prepare_round();
        const std::size_t tile = g->tile();
        for (std::size_t lo = 0; lo < n; lo += tile) {
          round.push_back({g.get(), lo, std::min(lo + tile, n)});
        }
      }
    }
    if (round.empty()) return false;

    for (auto& st : worker_stats) st = advance_stats{};
    for (auto& t : worker_tenant_steps) std::fill(t.begin(), t.end(), 0u);
    for (auto& t : worker_tenant_jobs) std::fill(t.begin(), t.end(), 0u);
    round_next.store(0, std::memory_order_relaxed);
    {
      TFX_OBS_SPAN(ens, 0, "ens.round", round.size());
      const thread_pool::task t{static_cast<std::size_t>(pool.size()),
                                &run_worker, this};
      pool.parallel_region({&t, 1});
    }

    std::size_t steps = 0;
    std::size_t finished = 0;
    std::size_t rescales = 0;
    std::size_t retries = 0;
    std::size_t promotes = 0;
    std::size_t permfails = 0;
    {
      std::lock_guard lock(mu);
      for (const advance_stats& st : worker_stats) {
        steps += st.member_steps;
        finished += st.finished;
        backlog -= st.finished_seconds;
        rescales += st.rescales;
        retries += st.retries;
        permfails += st.permfails;
      }
      active -= finished;
      // Drain promotion requests sorted by job id: arrival order into
      // the target groups is then identical for every pool size and
      // claim interleaving (the determinism contract).
      std::vector<promotion> promos;
      for (auto& per : worker_promotions) {
        for (auto& pr : per) promos.push_back(std::move(pr));
        per.clear();
      }
      std::sort(promos.begin(), promos.end(),
                [](const promotion& a, const promotion& b) {
                  return a.job->id < b.job->id;
                });
      promotes = promos.size();
      for (auto& pr : promos) promote_member(std::move(pr));
      // The gauge is a float sum updated in admission order and
      // drained in completion order; pin it to exactly zero at idle
      // so rounding residue never leaks into admission decisions.
      if (backlog < 0 || active == 0) backlog = 0;
    }
    const int nt = tenant_count.load(std::memory_order_acquire);
    for (std::size_t t = 0; t < static_cast<std::size_t>(nt); ++t) {
      std::uint64_t ts = 0;
      std::uint64_t tj = 0;
      for (const auto& per : worker_tenant_steps) ts += per[t];
      for (const auto& per : worker_tenant_jobs) tj += per[t];
      if (ts != 0 || tj != 0) note_tenant(static_cast<tenant_id>(t), ts, tj);
    }
    if (obs::active()) {
      obs::metric_add("ens.rounds");
      obs::metric_add("ens.member_steps", steps);
      if (finished != 0) obs::metric_add("ens.jobs_done", finished);
      if (rescales != 0) obs::metric_add("ens.autopilot.rescale", rescales);
      if (retries != 0) obs::metric_add("ens.autopilot.retry", retries);
      if (promotes != 0) obs::metric_add("ens.autopilot.promote", promotes);
      if (permfails != 0) {
        obs::metric_add("ens.autopilot.permfail", permfails);
      }
    }
    if (finished != 0) done_cv.notify_all();
    return true;
  }

  void scheduler_loop() {
    for (;;) {
      {
        std::unique_lock lock(mu);
        work_cv.wait(lock, [&] {
          return stop.load(std::memory_order_relaxed) || active > 0;
        });
        if (stop.load(std::memory_order_relaxed)) return;
      }
      while (!stop.load(std::memory_order_relaxed) && run_round()) {
      }
    }
  }

  // -- admission -------------------------------------------------------

  std::size_t tile_for(const member_config& cfg) const {
    if (opts.tile_members != 0) return opts.tile_members;
    const std::uint64_t ws =
        swm::predict_step(opts.machine, cfg.nx, cfg.ny,
                          precision_of(cfg.prec))
            .working_set_bytes;
    return kernels::problems_per_tile(static_cast<std::size_t>(ws),
                                      opts.machine.l2.size_bytes);
  }

  std::unique_ptr<group_base> make_group(const member_config& cfg) const {
    using swm::integration_scheme;
    const std::size_t tile = tile_for(cfg);
    const bool batched = opts.batched_apply;
    const int w = opts.threads;
    switch (cfg.prec) {
      case personality::float64:
        return std::make_unique<group_impl<double, double>>(
            integration_scheme::standard, cfg.ftz, tile, batched, w);
      case personality::float64_comp:
        return std::make_unique<group_impl<double, double>>(
            integration_scheme::compensated, cfg.ftz, tile, batched, w);
      case personality::float32:
        return std::make_unique<group_impl<float, float>>(
            integration_scheme::standard, cfg.ftz, tile, batched, w);
      case personality::float16:
        return std::make_unique<group_impl<fp::float16, fp::float16>>(
            integration_scheme::compensated, cfg.ftz, tile, batched, w);
      case personality::float16_mixed:
        return std::make_unique<group_impl<fp::float16, float>>(
            integration_scheme::standard, cfg.ftz, tile, batched, w);
      case personality::bfloat16:
        return std::make_unique<group_impl<fp::bfloat16, fp::bfloat16>>(
            integration_scheme::compensated, cfg.ftz, tile, batched, w);
    }
    return nullptr;
  }

  submit_ticket admit(const member_config& cfg, tenant_id tenant) {
    if (cfg.nx <= 0 || cfg.ny <= 0 || cfg.steps <= 0 ||
        cfg.record_every < 0 || cfg.perturb_amplitude < 0 ||
        cfg.autopilot.check_every < 0 ||
        (cfg.autopilot.check_every > 0 && cfg.autopilot.stripe_rows <= 0) ||
        (cfg.initial != nullptr &&
         (cfg.initial->nx() != cfg.nx || cfg.initial->ny() != cfg.ny))) {
      return {invalid_job, submit_error::invalid_config};
    }
    const double cost = swm::predict_time(opts.machine, cfg.nx, cfg.ny,
                                          precision_of(cfg.prec), cfg.steps);

    std::lock_guard lock(mu);
    if (stop.load(std::memory_order_relaxed)) {
      return {invalid_job, submit_error::shutdown};
    }
    if (tenant >= tenant_count.load(std::memory_order_relaxed)) {
      return {invalid_job, submit_error::invalid_config};
    }
    if (active >= opts.max_members) {
      return {invalid_job, submit_error::queue_full};
    }
    if (backlog + cost > opts.max_backlog_seconds) {
      return {invalid_job, submit_error::backlog_exceeded};
    }

    auto& group = groups[key_of(cfg)];
    if (!group) group = make_group(cfg);

    auto job = std::make_unique<job_record>();
    job->id = next_id++;
    job->tenant = tenant;
    job->cfg = cfg;
    job->cfg.initial = nullptr;  // copied into the member below
    job->retry_budget = tenants[tenant].retry_budget;
    job->result.modeled_seconds = cost;
    job->result.prognostic = swm::state<double>(cfg.nx, cfg.ny);
    job->result.compensation = swm::state<double>(cfg.nx, cfg.ny);
    if (cfg.record_every > 0) {
      const auto snaps =
          static_cast<std::size_t>(cfg.steps / cfg.record_every);
      job->result.snapshots.reserve(snaps);
      for (std::size_t s = 0; s < snaps; ++s) {
        job->result.snapshots.emplace_back(cfg.nx, cfg.ny);
      }
    }

    job_record* raw = job.get();
    const job_id id = raw->id;
    jobs.emplace(id, std::move(job));
    // admit() reads the caller's cfg (with `initial` still set).
    raw->cfg.initial = cfg.initial;
    group->admit(raw);
    raw->cfg.initial = nullptr;
    active += 1;
    backlog += cost;
    if (opts.async) work_cv.notify_one();
    return {id, submit_error::none};
  }
};

engine::engine(engine_options opts) {
  TFX_EXPECTS(opts.threads >= 1);
  TFX_EXPECTS(opts.stride >= 1);
  TFX_EXPECTS(opts.max_tenants >= 1 && opts.max_tenants <= 65535);
  impl_ = std::make_unique<impl>(opts);
  impl_->add_tenant("default", 2);
  if (opts.async) {
    impl_->scheduler = std::thread([e = impl_.get()] { e->scheduler_loop(); });
  }
}

engine::~engine() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->work_cv.notify_all();
  if (impl_->scheduler.joinable()) impl_->scheduler.join();
  {
    std::lock_guard lock(impl_->mu);
    for (auto& [id, job] : impl_->jobs) {
      const job_state s = job->state.load(std::memory_order_relaxed);
      if (!is_terminal(s)) {
        job->state.store(job_state::cancelled, std::memory_order_release);
      }
    }
  }
  impl_->done_cv.notify_all();
}

tenant_id engine::register_tenant(std::string name, int retry_budget) {
  return impl_->add_tenant(std::move(name), retry_budget);
}

submit_ticket engine::submit(const member_config& cfg, tenant_id tenant) {
  return impl_->admit(cfg, tenant);
}

std::optional<job_status> engine::poll(job_id id) const {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return std::nullopt;
  const job_record& j = *it->second;
  job_status s;
  s.state = j.state.load(std::memory_order_acquire);
  s.steps_done = j.steps_done.load(std::memory_order_relaxed);
  s.failed_step = j.failed_step.load(std::memory_order_relaxed);
  s.reason = j.reason.load(std::memory_order_relaxed);
  s.repairs = j.repairs.load(std::memory_order_relaxed);
  return s;
}

cancel_result engine::cancel(job_id id) {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return cancel_result::unknown_job;
  job_record& j = *it->second;
  switch (j.state.load(std::memory_order_acquire)) {
    case job_state::done: return cancel_result::already_done;
    case job_state::cancelled: return cancel_result::already_cancelled;
    case job_state::failed: return cancel_result::already_failed;
    default: break;
  }
  j.cancel_requested.store(true, std::memory_order_relaxed);
  return cancel_result::requested;
}

void engine::wait(job_id id) {
  impl& e = *impl_;
  if (!e.opts.async) {
    for (;;) {
      const auto st = poll(id);
      if (!st || is_terminal(st->state)) return;
      if (drive(1) == 0) return;  // nothing left to drive
    }
  }
  std::unique_lock lock(e.mu);
  e.done_cv.wait(lock, [&] {
    if (e.stop.load(std::memory_order_relaxed)) return true;
    const auto it = e.jobs.find(id);
    if (it == e.jobs.end()) return true;
    return is_terminal(it->second->state.load(std::memory_order_acquire));
  });
}

void engine::wait_all() {
  impl& e = *impl_;
  if (!e.opts.async) {
    while (e.run_round()) {
    }
    return;
  }
  std::unique_lock lock(e.mu);
  e.done_cv.wait(lock, [&] {
    return e.stop.load(std::memory_order_relaxed) || e.active == 0;
  });
}

const job_result* engine::result(job_id id) const {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return nullptr;
  if (!is_terminal(it->second->state.load(std::memory_order_acquire))) {
    return nullptr;
  }
  return &it->second->result;
}

int engine::drive(int max_rounds) {
  TFX_EXPECTS(!impl_->opts.async &&
              "drive() races the scheduler thread in async mode");
  int rounds = 0;
  while (rounds < max_rounds && impl_->run_round()) ++rounds;
  return rounds;
}

std::size_t engine::active_members() const {
  std::lock_guard lock(impl_->mu);
  return impl_->active;
}

double engine::backlog_seconds() const {
  std::lock_guard lock(impl_->mu);
  return impl_->backlog;
}

std::size_t engine::tile_members_for(const member_config& cfg) const {
  return impl_->tile_for(cfg);
}

const engine_options& engine::options() const { return impl_->opts; }

}  // namespace tfx::ensemble
