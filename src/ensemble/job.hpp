#pragma once

/// \file job.hpp
/// Client-facing vocabulary of the ensemble scenario service
/// (docs/ENSEMBLE.md): what a member run looks like to a tenant —
/// precision personality, grid, seeds — and the typed results the
/// async submit/poll API hands back. The engine itself lives in
/// engine.hpp; nothing here depends on it, so result types can cross
/// module boundaries freely.

#include <cstdint>
#include <vector>

#include "fp/fpenv.hpp"
#include "swm/field.hpp"
#include "swm/perfmodel.hpp"

namespace tfx::ensemble {

/// The precision personalities a member can run at — the paper's
/// Fig. 5 configurations plus the compensated-native pairs the batched
/// Kahan kernels serve. Each maps to one model<T, Tprog>
/// instantiation + integration scheme (engine.cpp's switch).
enum class personality : std::uint8_t {
  float64,        ///< model<double>, standard RK4 (the reference)
  float64_comp,   ///< model<double>, Kahan-compensated
  float32,        ///< model<float>, standard
  float16,        ///< model<float16>, compensated (scaled, FTZ per cfg)
  float16_mixed,  ///< model<float16, float>: F16 RHS, F32 integration
  bfloat16,       ///< model<bfloat16>, compensated
};

inline constexpr personality all_personalities[] = {
    personality::float64,       personality::float64_comp,
    personality::float32,       personality::float16,
    personality::float16_mixed, personality::bfloat16,
};

constexpr const char* personality_name(personality p) {
  switch (p) {
    case personality::float64: return "Float64";
    case personality::float64_comp: return "Float64/comp";
    case personality::float32: return "Float32";
    case personality::float16: return "Float16";
    case personality::float16_mixed: return "Float16/32";
    case personality::bfloat16: return "BFloat16";
  }
  return "?";
}

/// The perfmodel configuration of a personality (what admission
/// control prices with swm::predict_time).
inline swm::precision_config precision_of(personality p) {
  switch (p) {
    case personality::float64: return swm::config_float64();
    case personality::float64_comp: {
      swm::precision_config c = swm::config_float64();
      c.compensated = true;
      c.name = "Float64/comp";
      return c;
    }
    case personality::float32: return swm::config_float32();
    case personality::float16: return swm::config_float16();
    case personality::float16_mixed: return swm::config_float16_32();
    case personality::bfloat16: {
      swm::precision_config c;
      c.elem_bytes = 2;
      c.prog_elem_bytes = 2;
      c.compensated = true;
      c.name = "BFloat16";
      return c;
    }
  }
  return swm::config_float64();
}

using job_id = std::uint64_t;
inline constexpr job_id invalid_job = 0;

/// Tenants are registered up front (engine::register_tenant) so their
/// obs counters exist before any member steps — the hot path then
/// only touches pre-resolved handles.
using tenant_id = std::uint16_t;
inline constexpr tenant_id default_tenant = 0;

/// One member run. The trajectory this produces through the engine is
/// bit-identical to constructing the same model standalone, seeding /
/// restoring / perturbing it in this order, and calling run(steps) —
/// the engine's correctness oracle (tests/ensemble_engine_test).
struct member_config {
  personality prec = personality::float64;
  int nx = 32;
  int ny = 16;
  int steps = 1;  ///< RK4 steps to integrate past the initial state

  std::uint64_t seed = 42;          ///< seed_random_eddies stream
  double velocity_amplitude = 0.5;  ///< eddy amplitude
  int log2_scale = 0;               ///< Float16 scaling exponent (s = 2^k)

  /// Multiplicative IC perturbation after seeding/restoring: one
  /// xoshiro256(perturb_seed) stream across u, v, eta in that order,
  /// each element scaled by 1 + amplitude * U(-1, 1) — exactly the
  /// bench/ensemble_error recipe. perturb_seed == 0 disables it.
  std::uint64_t perturb_seed = 0;
  double perturb_amplitude = 0.0;

  /// Soft-float FTZ mode the member's arithmetic (including its
  /// submit-time initialization) runs under. Part of the batch key,
  /// so a whole batch shares one ftz_guard.
  fp::ftz_mode ftz = fp::ftz_mode::preserve;

  int health_every = 0;  ///< model health-sentinel interval (0: off)

  /// Record an unscaled double snapshot of the state every this many
  /// member steps (0: none) — the exact values model::unscaled() would
  /// produce at the same step.
  int record_every = 0;

  /// Optional restart: adopt this state (the exact double image of
  /// the *scaled* prognostic fields) instead of seeding eddies, with
  /// the step counter at `initial_steps`. Copied during submit; the
  /// pointer need not outlive the call.
  const swm::state<double>* initial = nullptr;
  int initial_steps = 0;
};

enum class submit_error : std::uint8_t {
  none,              ///< accepted
  queue_full,        ///< member capacity (engine_options::max_members)
  backlog_exceeded,  ///< modeled backlog past max_backlog_seconds
  invalid_config,    ///< bad geometry/steps/tenant/initial-state shape
  shutdown,          ///< engine is stopping
};

constexpr const char* submit_error_name(submit_error e) {
  switch (e) {
    case submit_error::none: return "none";
    case submit_error::queue_full: return "queue_full";
    case submit_error::backlog_exceeded: return "backlog_exceeded";
    case submit_error::invalid_config: return "invalid_config";
    case submit_error::shutdown: return "shutdown";
  }
  return "?";
}

/// What submit() returns: a handle on acceptance, a typed reason
/// otherwise (never an exception — admission rejects are a normal
/// operating regime under load).
struct submit_ticket {
  job_id id = invalid_job;
  submit_error error = submit_error::none;

  [[nodiscard]] bool ok() const { return error == submit_error::none; }
  explicit operator bool() const { return ok(); }
};

enum class job_state : std::uint8_t {
  queued,     ///< admitted, no step taken yet
  running,    ///< being stepped
  done,       ///< completed all cfg.steps
  cancelled,  ///< cancel took effect at a step boundary
  failed,     ///< health sentinel tripped (numerical_error)
};

constexpr const char* job_state_name(job_state s) {
  switch (s) {
    case job_state::queued: return "queued";
    case job_state::running: return "running";
    case job_state::done: return "done";
    case job_state::cancelled: return "cancelled";
    case job_state::failed: return "failed";
  }
  return "?";
}

enum class cancel_result : std::uint8_t {
  requested,  ///< will take effect at the member's next step boundary
  unknown_job,
  already_done,
  already_cancelled,
  already_failed,
};

/// Poll snapshot of one job.
struct job_status {
  job_state state = job_state::queued;
  int steps_done = 0;    ///< member-local steps completed so far
  int failed_step = -1;  ///< failed only: model step the sentinel named
};

/// Final output of a member run, written before the job turns
/// terminal. Float conversions to double are exact for every
/// personality, so these are bit-exact images of the member's final
/// prognostic and Kahan-compensation fields (the oracle comparison in
/// the tests is EXPECT-on-bits).
struct job_result {
  swm::state<double> prognostic;    ///< scaled, in the Tprog domain
  swm::state<double> compensation;  ///< Kahan residuals (zero if unused)
  /// Unscaled double states every cfg.record_every steps, oldest
  /// first; exactly model::unscaled() at those steps.
  std::vector<swm::state<double>> snapshots;
  int steps_done = 0;
  double modeled_seconds = 0;  ///< the admission price this job carried
};

}  // namespace tfx::ensemble
