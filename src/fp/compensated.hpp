#pragma once

/// \file compensated.hpp
/// Compensated (error-free-transformation) accumulation.
///
/// ShallowWaters.jl's Float16 configuration uses a compensated time
/// integration: the rounding error of each time-step update is carried
/// into the next step (paper Fig. 4 caption and Fig. 5; measured cost
/// ~5 % of runtime). This header provides the two classic schemes as
/// drop-in accumulator objects usable with any of the library's number
/// types (double, float, float16, bfloat16, sherlog<T>).

#include <cstddef>
#include <span>

namespace tfx::fp {

/// Kahan compensated accumulator: tracks a running compensation term
/// `c` such that (sum + c) is a far more accurate value of the true sum
/// than `sum` alone. Error bound O(eps) instead of O(n*eps).
template <typename T>
class kahan_accumulator {
 public:
  constexpr kahan_accumulator() = default;
  explicit constexpr kahan_accumulator(T initial) : sum_(initial) {}

  /// Add one term.
  constexpr void add(T x) {
    const T y = x - c_;
    const T t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }

  /// Current compensated estimate of the sum.
  [[nodiscard]] constexpr T value() const { return sum_; }

  /// The pending compensation (for diagnostics).
  [[nodiscard]] constexpr T compensation() const { return c_; }

  /// Reset to a given value, clearing the compensation.
  constexpr void reset(T v = T{}) {
    sum_ = v;
    c_ = T{};
  }

 private:
  T sum_{};
  T c_{};
};

/// Neumaier (improved Kahan-Babuska) accumulator: also correct when the
/// next term is larger in magnitude than the running sum, which Kahan
/// mishandles.
template <typename T>
class neumaier_accumulator {
 public:
  constexpr neumaier_accumulator() = default;
  explicit constexpr neumaier_accumulator(T initial) : sum_(initial) {}

  constexpr void add(T x) {
    const T t = sum_ + x;
    const T big = abs_(sum_) >= abs_(x) ? sum_ : x;
    const T small = abs_(sum_) >= abs_(x) ? x : sum_;
    c_ += (big - t) + small;
    sum_ = t;
  }

  /// The compensation is folded in on read, unlike Kahan.
  [[nodiscard]] constexpr T value() const { return sum_ + c_; }
  [[nodiscard]] constexpr T compensation() const { return c_; }

  constexpr void reset(T v = T{}) {
    sum_ = v;
    c_ = T{};
  }

 private:
  static constexpr T abs_(T v) { return v < T{} ? -v : v; }
  T sum_{};
  T c_{};
};

/// Naive left-to-right sum (the baseline the compensated schemes beat).
template <typename T>
constexpr T naive_sum(std::span<const T> xs) {
  T acc{};
  for (const T& x : xs) acc += x;
  return acc;
}

/// Kahan-compensated sum of a range.
template <typename T>
constexpr T compensated_sum(std::span<const T> xs) {
  kahan_accumulator<T> acc;
  for (const T& x : xs) acc.add(x);
  return acc.value();
}

/// Neumaier-compensated sum of a range.
template <typename T>
constexpr T neumaier_sum(std::span<const T> xs) {
  neumaier_accumulator<T> acc;
  for (const T& x : xs) acc.add(x);
  return acc.value();
}

/// Compensated dot product (Kahan accumulation of the products; the
/// products themselves are rounded once in T, as in the paper's
/// software-Float16 semantics).
template <typename T>
constexpr T compensated_dot(std::span<const T> xs, std::span<const T> ys) {
  kahan_accumulator<T> acc;
  const std::size_t n = xs.size() < ys.size() ? xs.size() : ys.size();
  for (std::size_t i = 0; i < n; ++i) acc.add(xs[i] * ys[i]);
  return acc.value();
}

}  // namespace tfx::fp
