#include "swm/halo.hpp"

namespace tfx::swm {

rhs_compute_split split_rhs_compute(double seconds_per_eval, int local_ny) {
  rhs_compute_split out;
  if (seconds_per_eval <= 0) return out;
  // All four terms are pure functions of (s, local_ny) evaluated only
  // here, so the threaded model and the DES program charge
  // bit-identical doubles (EXPECT_DOUBLE_EQ in the cross-pin test).
  const double interior_frac = static_cast<double>(local_ny - 2) /
                               static_cast<double>(local_ny);
  const double prognostic_share = 0.4 * seconds_per_eval;
  const double derived_share = 0.6 * seconds_per_eval;
  out.interior_prognostic = prognostic_share * interior_frac;
  out.boundary_prognostic = prognostic_share - out.interior_prognostic;
  out.interior_derived = derived_share * interior_frac;
  out.boundary_derived = derived_share - out.interior_derived;
  return out;
}

mpisim::sim_program make_halo_program(int p, int nx, std::size_t elem_bytes,
                                      halo_mode mode, int steps,
                                      double rhs_seconds_per_eval,
                                      int local_ny) {
  mpisim::sim_program prog(p);
  const rhs_compute_split cs =
      split_rhs_compute(rhs_seconds_per_eval, local_ny);
  const std::size_t row = static_cast<std::size_t>(nx) * elem_bytes;
  for (int r = 0; r < p; ++r) {
    auto& ops = prog.rank(r);
    const int up = (r + 1) % p;
    const int down = (r - 1 + p) % p;
    // Mirrors distributed_model::charge: a zero charge is not emitted
    // (and advance(0) does not move a clock), so the guards agree.
    auto charge = [&ops](double s) {
      if (s > 0) ops.push_back(mpisim::sim_op::compute_for(s));
    };
    auto blocking_exchange = [&](std::size_t bytes) {
      ops.push_back(mpisim::sim_op::send_to(up, bytes));
      ops.push_back(mpisim::sim_op::send_to(down, bytes));
      ops.push_back(mpisim::sim_op::recv_from(down, bytes));
      ops.push_back(mpisim::sim_op::recv_from(up, bytes));
    };
    auto phase = [&](std::size_t fields, double interior, double boundary) {
      const std::size_t packed = fields * row;
      if (p == 1) {  // local wrap: no messages, compute still charged
        charge(interior);
        charge(boundary);
        return;
      }
      switch (mode) {
        case halo_mode::per_field:
          for (std::size_t f = 0; f < fields; ++f) blocking_exchange(row);
          charge(interior);
          charge(boundary);
          break;
        case halo_mode::aggregated:
          blocking_exchange(packed);
          charge(interior);
          charge(boundary);
          break;
        case halo_mode::aggregated_overlap:
          // start(): sends post eagerly; the interior charge runs with
          // the payloads in flight; finish() waits down then up.
          ops.push_back(mpisim::sim_op::send_to(up, packed));
          ops.push_back(mpisim::sim_op::send_to(down, packed));
          charge(interior);
          ops.push_back(mpisim::sim_op::recv_from(down, packed));
          ops.push_back(mpisim::sim_op::recv_from(up, packed));
          charge(boundary);
          break;
      }
    };
    for (int s = 0; s < steps; ++s) {
      for (int stage = 0; stage < 4; ++stage) {
        phase(3, cs.interior_prognostic, cs.boundary_prognostic);
        phase(4, cs.interior_derived, cs.boundary_derived);
      }
    }
  }
  return prog;
}

}  // namespace tfx::swm
