#pragma once

/// \file stream.hpp
/// BabelStream-style memory-bandwidth kernels.
///
/// The paper's § IV-A cites Lin & McIntosh-Smith [ref 20], who compared
/// Julia against C/C++ performance-portability frameworks with
/// BabelStream-like kernels on several machines including A64FX, and
/// found Julia close to C/C++ (markedly closer after Julia v1.7 /
/// LLVM 12). This header supplies the five classic kernels as generic
/// templates plus their machine-model resource profiles; the
/// `bench/portability_stream` binary reproduces the comparison with
/// code-generation profiles for C/C++, Julia v1.7 (LLVM 12) and Julia
/// v1.6 (LLVM 11).

#include <cstddef>
#include <span>
#include <string_view>

#include "arch/roofline.hpp"
#include "core/contracts.hpp"

namespace tfx::kernels {

/// c <- a
template <typename T>
void stream_copy(std::span<const T> a, std::span<T> c) {
  TFX_EXPECTS(a.size() == c.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i];
}

/// b <- s * c
template <typename T>
void stream_mul(T s, std::span<const T> c, std::span<T> b) {
  TFX_EXPECTS(c.size() == b.size());
  for (std::size_t i = 0; i < c.size(); ++i) b[i] = s * c[i];
}

/// c <- a + b
template <typename T>
void stream_add(std::span<const T> a, std::span<const T> b, std::span<T> c) {
  TFX_EXPECTS(a.size() == b.size() && b.size() == c.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
}

/// a <- b + s * c
template <typename T>
void stream_triad(T s, std::span<const T> b, std::span<const T> c,
                  std::span<T> a) {
  TFX_EXPECTS(a.size() == b.size() && b.size() == c.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] + s * c[i];
}

/// sum(a .* b)
template <typename T>
[[nodiscard]] T stream_dot(std::span<const T> a, std::span<const T> b) {
  TFX_EXPECTS(a.size() == b.size());
  T acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Which of the five kernels (for profile lookup / reporting).
enum class stream_kernel { copy, mul, add, triad, dot };

inline constexpr std::string_view stream_kernel_name(stream_kernel k) {
  switch (k) {
    case stream_kernel::copy: return "Copy";
    case stream_kernel::mul: return "Mul";
    case stream_kernel::add: return "Add";
    case stream_kernel::triad: return "Triad";
    case stream_kernel::dot: return "Dot";
  }
  return "?";
}

/// Resource usage per element for each kernel (BabelStream's own
/// accounting: Copy/Mul move 2 elements, Add/Triad 3, Dot reads 2).
struct stream_resources {
  double loads;
  double stores;
  double flops;
  int arrays;  ///< arrays in the working set
};

inline constexpr stream_resources stream_kernel_resources(stream_kernel k) {
  switch (k) {
    case stream_kernel::copy: return {1, 1, 0, 2};
    case stream_kernel::mul: return {1, 1, 1, 2};
    case stream_kernel::add: return {2, 1, 1, 3};
    case stream_kernel::triad: return {2, 1, 2, 3};
    case stream_kernel::dot: return {2, 0, 2, 2};
  }
  return {0, 0, 0, 0};
}

/// A "language/toolchain" code-generation personality for the stream
/// kernels, mirroring what ref [20] compared.
struct stream_impl_profile {
  std::string_view name;
  std::size_t vector_bits;
  double simd_efficiency;
  double loop_overhead_cycles;
};

/// C/C++ with the vendor compiler: the reference.
inline constexpr stream_impl_profile stream_cxx{"C/C++", 512, 1.0, 0.2};
/// Julia v1.7 (LLVM 12, -aarch64-sve-vector-bits-min=512): close to C.
inline constexpr stream_impl_profile stream_julia17{"Julia v1.7", 512, 0.95,
                                                    0.25};
/// Julia v1.6 (LLVM 11): the configuration ref [20] found "sensibly"
/// slower before the LLVM 12 upgrade.
inline constexpr stream_impl_profile stream_julia16{"Julia v1.6", 128, 0.85,
                                                    0.5};

/// Build the arch::kernel_profile of one kernel under one personality.
arch::kernel_profile make_stream_profile(stream_kernel kernel,
                                         const stream_impl_profile& impl);

/// Modeled sustained bandwidth (GB/s) for one kernel/personality at a
/// given array length and element size.
double modeled_stream_gbs(const arch::a64fx_params& machine,
                          stream_kernel kernel,
                          const stream_impl_profile& impl, std::size_t n,
                          std::size_t elem_bytes);

}  // namespace tfx::kernels
