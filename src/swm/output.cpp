#include "swm/output.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace tfx::swm {

bool write_pgm(const field2d<double>& f, const std::string& path,
               double amplitude) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  double amp = amplitude;
  if (amp <= 0.0) {
    for (const double v : f.flat()) amp = std::max(amp, std::abs(v));
    if (amp == 0.0) amp = 1.0;
  }
  out << "P5\n" << f.nx() << ' ' << f.ny() << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(f.nx()));
  for (int j = f.ny() - 1; j >= 0; --j) {  // north at the top
    for (int i = 0; i < f.nx(); ++i) {
      const double norm = std::clamp(f(i, j) / amp, -1.0, 1.0);
      row[static_cast<std::size_t>(i)] =
          static_cast<unsigned char>(std::lround((norm + 1.0) * 127.5));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  return static_cast<bool>(out);
}

bool write_csv(const field2d<double>& f, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (int j = 0; j < f.ny(); ++j) {
    for (int i = 0; i < f.nx(); ++i) {
      if (i) out << ',';
      out << f(i, j);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace tfx::swm
