#pragma once

/// \file subcomm.hpp
/// Sub-communicators (MPI_Comm_split) over the simulated runtime.
///
/// A sub-communicator is a light view on the parent communicator: a
/// sorted member list plus rank translation. All the collective
/// templates in collectives.hpp run on it unchanged, which is what
/// enables topology-aware composition - the hierarchical allreduce in
/// hierarchical.hpp splits by node exactly the way a Fugaku-tuned MPI
/// exploits TofuD's intra-node shared memory under the 4-ranks-per-node
/// placement of the paper's Fig. 3.
///
/// Tag isolation: each split level offsets the tag space by a hash of
/// the color so two concurrent sub-communicators of the same parent
/// cannot alias each other's collective traffic.

#include <algorithm>
#include <span>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/runtime.hpp"

namespace tfx::mpisim {

/// The color value meaning "I am not a member of any new communicator"
/// (MPI_UNDEFINED).
inline constexpr int undefined_color = -1;

class sub_communicator {
 public:
  /// Usually built via split(); constructible directly from an
  /// explicit, sorted member list (global ranks) for tests.
  sub_communicator(communicator& parent, std::vector<int> members,
                   int tag_offset = 0)
      : parent_(&parent), members_(std::move(members)),
        tag_offset_(tag_offset) {
    const auto it =
        std::find(members_.begin(), members_.end(), parent_->rank());
    local_rank_ = it == members_.end()
                      ? -1
                      : static_cast<int>(it - members_.begin());
  }

  /// True when the calling rank belongs to this communicator; all
  /// other operations require membership.
  [[nodiscard]] bool member() const { return local_rank_ >= 0; }

  [[nodiscard]] int rank() const {
    TFX_EXPECTS(member());
    return local_rank_;
  }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  /// Global (parent) rank of a local rank.
  [[nodiscard]] int global_rank(int local) const {
    TFX_EXPECTS(local >= 0 && local < size());
    return members_[static_cast<std::size_t>(local)];
  }

  // -- the communicator interface the collective templates use -------

  [[nodiscard]] double now() const { return parent_->now(); }
  void advance(double seconds) { parent_->advance(seconds); }
  [[nodiscard]] const tofud_params& net() const { return parent_->net(); }
  [[nodiscard]] const torus_placement& placement() const {
    return parent_->placement();
  }

  void send_bytes(std::span<const std::byte> data, int dst, int tag) {
    TFX_EXPECTS(member());
    parent_->send_bytes(data, global_rank(dst), tag + tag_offset_);
  }

  recv_status recv_bytes(std::span<std::byte> out, int src, int tag) {
    TFX_EXPECTS(member());
    const int global_src = src == any_source ? any_source : global_rank(src);
    const int shifted = tag == any_tag ? any_tag : tag + tag_offset_;
    recv_status st = parent_->recv_bytes(out, global_src, shifted);
    st.tag -= tag_offset_;
    st.source = local_of(st.source);
    return st;
  }

  template <typename T>
  void send(std::span<const T> data, int dst, int tag = 0) {
    send_bytes(std::as_bytes(data), dst, tag);
  }
  template <typename T>
  recv_status recv(std::span<T> out, int src, int tag = 0) {
    return recv_bytes(std::as_writable_bytes(out), src, tag);
  }
  template <typename T>
  void send_value(const T& v, int dst, int tag = 0) {
    send(std::span<const T>(&v, 1), dst, tag);
  }
  template <typename T>
  T recv_value(int src, int tag = 0) {
    T v{};
    recv(std::span<T>(&v, 1), src, tag);
    return v;
  }

 private:
  [[nodiscard]] int local_of(int global) const {
    const auto it = std::find(members_.begin(), members_.end(), global);
    return it == members_.end() ? -1
                                : static_cast<int>(it - members_.begin());
  }

  communicator* parent_;
  std::vector<int> members_;
  int tag_offset_;
  int local_rank_;
};

/// MPI_Comm_split: collectively partition the parent by `color`;
/// member order (= new ranks) follows (key, parent rank). Ranks passing
/// undefined_color receive a non-member view (like MPI_COMM_NULL).
inline sub_communicator split(communicator& comm, int color, int key) {
  // Allgather the (color, key) pairs - itself a collective on the
  // parent, so split() is collective like MPI_Comm_split.
  struct entry {
    int color, key, rank;
  };
  std::vector<entry> mine{{color, key, comm.rank()}};
  std::vector<entry> all(static_cast<std::size_t>(comm.size()));
  allgather(comm, std::span<const entry>(mine), std::span<entry>(all));

  std::vector<entry> same;
  for (const auto& e : all) {
    if (e.color == color && color != undefined_color) same.push_back(e);
  }
  std::sort(same.begin(), same.end(), [](const entry& a, const entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });
  std::vector<int> members;
  members.reserve(same.size());
  for (const auto& e : same) members.push_back(e.rank);

  // Tag-space isolation per color (bounded so tags stay positive).
  const int offset =
      color == undefined_color ? 0 : (1 + (color & 0xff)) * (1 << 12);
  return sub_communicator(comm, std::move(members), offset);
}

/// Split by node of the placement: the "CMG/node communicator".
inline sub_communicator split_by_node(communicator& comm) {
  return split(comm, comm.placement().node_of(comm.rank()), comm.rank());
}

/// The shrunk communicator of rollback recovery (swm/resilience.hpp):
/// every rank of the parent world except the ones in `dead` (sorted
/// ascending). Built locally from the agreed casualty set - no
/// collective required, because the recovery board already gave every
/// survivor the same `dead` view. Dead ranks receive a non-member view.
inline sub_communicator survivors_of(communicator& comm,
                                     std::span<const int> dead,
                                     int tag_offset) {
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(comm.size()));
  for (int r = 0; r < comm.size(); ++r) {
    if (std::find(dead.begin(), dead.end(), r) == dead.end()) {
      members.push_back(r);
    }
  }
  return sub_communicator(comm, std::move(members), tag_offset);
}

}  // namespace tfx::mpisim
