// Ablation: what the observability plane costs the hot loop.
//
// Three regimes of the fused RK4 step (tests/obs_overhead_test pins
// the allocation-freeness; this bench puts numbers on the time):
//  * off    - the plane is compiled in but runtime-disabled; every
//             instrumentation site is one relaxed load and a branch.
//             This is the regime production runs pay by default.
//  * active - tracing on, every step recording spans, stage spans and
//             the traffic counter into the per-thread rings.
//  * drain  - tracing on with a deliberately tiny ring, so the steady
//             state exercises the drop-and-count path.
//
// The contract (ROADMAP: observability): `off` stays within noise of a
// TFX_OBS=OFF build - the JSON records the compiled flag so a CI run of
// both builds can diff the medians directly.
//
// Results also go to a machine-readable JSON file (--json, default
// BENCH_obs.json) for the CI trend line.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/threadpool.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

struct regime_result {
  std::string regime;
  double median_step_s = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;

  [[nodiscard]] double overhead_vs(const regime_result& base) const {
    return median_step_s / base.median_step_s - 1.0;
  }
};

/// Median per-step time of `steps` fused RK4 steps, best behaviour of
/// `reps` repetitions (median-of-medians keeps the figure stable under
/// machine noise, same instrument discipline as ablation_fusion).
double median_step_seconds(swm_params p, thread_pool* pool, int steps,
                           int reps) {
  std::vector<double> medians;
  for (int rep = 0; rep < reps; ++rep) {
    model<double> m(p);
    if (pool != nullptr) m.attach_pool(pool);
    m.seed_random_eddies(11, 0.4);
    m.step();  // warm: faults the arrays, registers rings, spins pool up
    std::vector<double> per_step;
    per_step.reserve(static_cast<std::size_t>(steps));
    for (int s = 0; s < steps; ++s) {
      stopwatch sw;
      m.step();
      per_step.push_back(sw.seconds());
    }
    std::nth_element(per_step.begin(),
                     per_step.begin() + per_step.size() / 2, per_step.end());
    medians.push_back(per_step[per_step.size() / 2]);
  }
  return *std::min_element(medians.begin(), medians.end());
}

regime_result measure(const std::string& regime, swm_params p,
                      thread_pool* pool, int steps, int reps) {
  regime_result r;
  r.regime = regime;
  if (regime == "off") {
    r.median_step_s = median_step_seconds(p, pool, steps, reps);
    return r;
  }
  obs::metrics_registry::instance().clear();
  // "drain" uses a ring small enough that steady state is all drops, so
  // the measured cost includes the overflow path, not just the append.
  obs::start(regime == "drain" ? 64 : (1u << 20));
  r.median_step_s = median_step_seconds(p, pool, steps, reps);
  obs::stop();
  r.events = obs::collect().size();
  r.dropped = obs::dropped();
  return r;
}

void write_json(const std::string& path, int threads, int nx, int ny,
                int steps, const std::vector<regime_result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_obs\",\n");
  std::fprintf(f, "  \"obs_compiled\": %s,\n", obs::compiled ? "true" : "false");
  std::fprintf(f, "  \"threads\": %d,\n  \"nx\": %d,\n  \"ny\": %d,\n", threads,
               nx, ny);
  std::fprintf(f, "  \"steps\": %d,\n  \"regimes\": [\n", steps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"regime\": \"%s\", \"median_step_seconds\": %.6e, "
                 "\"overhead_vs_off\": %.6f, \"events\": %llu, "
                 "\"dropped\": %llu}%s\n",
                 r.regime.c_str(), r.median_step_s, r.overhead_vs(results[0]),
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.dropped),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"nx", "grid width (default 1024)"},
            {"ny", "grid height (default 512)"},
            {"steps", "RK4 steps per repetition (default 24)"},
            {"reps", "repetitions per regime (default 3)"},
            {"threads", "thread-pool size (default: hardware concurrency)"},
            {"serial", "skip the thread pool (single-thread hot loop)"},
            {"json", "output path (default BENCH_obs.json)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  swm_params p;
  p.nx = static_cast<int>(args.get_int("nx", 1024));
  p.ny = static_cast<int>(args.get_int("ny", 512));
  const int steps = static_cast<int>(args.get_int("steps", 24));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const int threads = static_cast<int>(args.get_int("threads", hw));
  const std::string json = args.get_string("json", "BENCH_obs.json");

  std::printf("Ablation: observability-plane cost on the fused RK4 step.\n");
  std::printf("Plane compiled %s; trajectories are unperturbed either way\n",
              obs::compiled ? "IN (TFX_OBS=ON)" : "OUT (TFX_OBS=OFF)");
  std::puts("(tests/obs_overhead_test pins bit-identity and zero allocs).");

  std::vector<regime_result> results;
  {
    thread_pool pool(threads);
    thread_pool* use = args.has("serial") ? nullptr : &pool;
    for (const char* regime : {"off", "active", "drain"}) {
      results.push_back(measure(regime, p, use, steps, reps));
    }
  }

  std::printf("\n== Fused step, %dx%d, %d threads, %d steps x %d reps ==\n",
              p.nx, p.ny, args.has("serial") ? 1 : threads, steps, reps);
  table t({"regime", "median step", "overhead", "events", "dropped"});
  for (const auto& r : results) {
    t.add_row({r.regime, format_seconds(r.median_step_s),
               format_fixed(100.0 * r.overhead_vs(results[0]), 2) + "%",
               std::to_string(r.events), std::to_string(r.dropped)});
  }
  t.print(std::cout);

  std::puts("\n== Metrics registry after the active regimes ==");
  obs::metrics_registry::instance().to_table().print(std::cout);

  write_json(json, args.has("serial") ? 1 : threads, p.nx, p.ny, steps,
             results);
  return 0;
}
