// The wider IMB suite over the simulated fabric: every collective the
// library implements, at a small and the paper's rank count, both
// harness personalities, three representative message sizes. A compact
// overview complementing the per-figure deep dives (fig2/fig3).

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "imb/benchmarks.hpp"

using namespace tfx;
using namespace tfx::imb;

namespace {

const char* kind_name(collective_kind k) {
  switch (k) {
    case collective_kind::allreduce: return "Allreduce";
    case collective_kind::reduce: return "Reduce";
    case collective_kind::gatherv: return "Gatherv";
    case collective_kind::bcast: return "Bcast";
    case collective_kind::barrier: return "Barrier";
    case collective_kind::allgather: return "Allgather";
    case collective_kind::hierarchical_allreduce: return "HierAllreduce";
  }
  return "?";
}

void suite(const mpisim::torus_placement& place) {
  const bench_config config;
  std::printf("\n== IMB suite at %d ranks (%d nodes) ==\n",
              place.rank_count(), place.node_count());
  const std::vector<std::size_t> sizes{64, 16 * 1024, 1024 * 1024};
  table t({"benchmark", "64 B (jl)", "64 B (imb)", "16 KiB (jl)",
           "16 KiB (imb)", "1 MiB (jl)", "1 MiB (imb)"});
  for (const auto kind :
       {collective_kind::allreduce, collective_kind::reduce,
        collective_kind::bcast, collective_kind::gatherv,
        collective_kind::allgather, collective_kind::barrier}) {
    const auto jl = run_collective(kind, mpi_jl, config, place, sizes);
    const auto ic = run_collective(kind, imb_c, config, place, sizes);
    t.add_row({kind_name(kind), format_seconds(jl[0].latency_s),
               format_seconds(ic[0].latency_s),
               format_seconds(jl[1].latency_s),
               format_seconds(ic[1].latency_s),
               format_seconds(jl[2].latency_s),
               format_seconds(ic[2].latency_s)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  std::puts("IMB-style suite, MPI.jl vs IMB (C) personalities.");
  suite(mpisim::torus_placement({4, 4, 4}, 1));  // 64 ranks
  suite(fugaku_fig3_placement());                // 1536 ranks (Fig. 3)
  std::puts("\n(Barrier moves no payload, so its columns are size-"
            "independent.)");
  return 0;
}
