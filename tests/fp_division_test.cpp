// Deep cross-validation of float16 division and sqrt: the binary32
// compute path (what the operators use) against the binary64 +
// round-to-odd path, over a dense grid of operand pairs. Both are
// correctly rounded by the 2p+2 theorem, so they must agree bit for
// bit; any divergence would expose a rounding bug in one pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/float16.hpp"

using tfx::fp::float16;

namespace {

bool special(float16 x) { return x.isnan() || x.isinf() || x.iszero(); }

}  // namespace

TEST(Float16Division, DenseGridCrossCheck) {
  // Stride through the positive normal patterns for both operands:
  // ~1900 x 1900 = 3.6M division pairs.
  for (std::uint32_t na = 0x0400; na <= 0x7bff; na += 16) {
    const auto a = float16::from_bits(static_cast<std::uint16_t>(na));
    for (std::uint32_t nb = 0x0400; nb <= 0x7bff; nb += 16) {
      const auto b = float16::from_bits(static_cast<std::uint16_t>(nb));
      const float16 via_f32 = a / b;
      // Independent reference: binary64 division (correctly rounded to
      // 53 bits) narrowed once via the round-to-odd path. 53 >= 2*11+2
      // makes the composition exactly the correctly rounded quotient.
      const float16 via_f64 =
          float16(static_cast<double>(a) / static_cast<double>(b));
      ASSERT_EQ(via_f32.bits(), via_f64.bits())
          << std::hex << na << " / " << nb;
    }
  }
}

TEST(Float16Division, SubnormalOperandsAndResults) {
  // Division with subnormal operands or subnormal quotients.
  for (std::uint32_t na = 1; na <= 0x03ff; na += 7) {    // subnormal a
    const auto a = float16::from_bits(static_cast<std::uint16_t>(na));
    for (std::uint32_t nb : {0x3c00u, 0x4400u, 0x7bffu, 0x0010u}) {
      const auto b = float16::from_bits(static_cast<std::uint16_t>(nb));
      const float16 q1 = a / b;
      const float16 q2 =
          float16(static_cast<double>(a) / static_cast<double>(b));
      ASSERT_EQ(q1.bits(), q2.bits()) << std::hex << na << " / " << nb;
    }
  }
}

TEST(Float16Division, SpecialValues) {
  const float16 one(1.0), zero(0.0), inf = std::numeric_limits<float16>::infinity();
  EXPECT_TRUE((one / zero).isinf());
  EXPECT_TRUE((-one / zero).isinf());
  EXPECT_TRUE((-one / zero).signbit());
  EXPECT_TRUE((zero / zero).isnan());
  EXPECT_TRUE((inf / inf).isnan());
  EXPECT_TRUE((one / inf).iszero());
}

TEST(Float16Sqrt, ExhaustiveCrossCheck) {
  // sqrt over every positive finite pattern: binary32 sqrt (correctly
  // rounded) + truncation vs binary64 sqrt + round-to-odd narrowing.
  for (std::uint32_t n = 1; n <= 0x7bff; ++n) {
    const auto x = float16::from_bits(static_cast<std::uint16_t>(n));
    if (special(x)) continue;
    const float16 via_f32 = tfx::fp::sqrt(x);
    const float16 via_f64 = float16(std::sqrt(static_cast<double>(x)));
    ASSERT_EQ(via_f32.bits(), via_f64.bits()) << std::hex << n;
  }
}

TEST(Float16Sqrt, ExactSquares) {
  for (int v = 1; v <= 255; ++v) {
    const float16 sq(static_cast<double>(v) * v);
    if (!sq.isfinite()) break;
    EXPECT_EQ(static_cast<double>(tfx::fp::sqrt(sq)), v) << v;
  }
}
