// Cross-engine fuzzing: random (seeded) communication programs are
// executed on BOTH the threaded runtime and the discrete-event engine;
// virtual clocks must agree exactly. This covers arbitrary interleaved
// patterns the structured collective tests never produce.
//
// The transport is a fuzz dimension too: each seed draws the channel
// layer the threaded runtime uses (simulated mailbox / shm channels /
// real loopback TCP), and the DES parity must hold over every one -
// virtual time is not a transport property (transport.hpp).

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "mpisim/des.hpp"
#include "mpisim/patterns.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/transport.hpp"

using namespace tfx;
using namespace tfx::mpisim;

namespace {

/// Generate a random deadlock-free program: a sequence of global
/// rounds; in each round a random perfect/partial pairing of ranks
/// exchanges messages of random sizes, and random ranks do local
/// compute. Within a rank the ops are ordered (sends before recvs per
/// round), which the threaded engine can always execute.
sim_program random_program(int p, std::uint64_t seed, int rounds) {
  xoshiro256 rng(seed);
  sim_program prog(p);
  for (int round = 0; round < rounds; ++round) {
    // Random permutation pairing: shuffle ranks, pair adjacent ones.
    std::vector<int> order(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) order[static_cast<std::size_t>(r)] = r;
    for (int i = p - 1; i > 0; --i) {
      const auto j = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(i + 1)));
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(j)]);
    }
    for (int k = 0; k + 1 < p; k += 2) {
      const int a = order[static_cast<std::size_t>(k)];
      const int b = order[static_cast<std::size_t>(k + 1)];
      if (rng.bounded(4) == 0) continue;  // some pairs idle this round
      const std::size_t bytes = 1 + rng.bounded(200000);
      // Both send first, then both receive: never blocks.
      prog.rank(a).push_back(sim_op::send_to(b, bytes));
      prog.rank(b).push_back(sim_op::send_to(a, bytes));
      prog.rank(a).push_back(sim_op::recv_from(b, bytes));
      prog.rank(b).push_back(sim_op::recv_from(a, bytes));
    }
    for (int r = 0; r < p; ++r) {
      if (rng.bounded(3) == 0) {
        prog.rank(r).push_back(
            sim_op::compute_for(rng.uniform(0.0, 5e-6)));
      }
    }
  }
  return prog;
}

/// Execute a sim_program on (an already configured) world. `tag` is 7
/// for the vanilla fuzz (any fixed tag works) but 0 for fault-plane
/// runs, whose delivery records are compared against the DES (which
/// logs tag 0 - sim_ops carry no tag).
void run_program(world& w, const sim_program& prog, int tag) {
  w.run([&](communicator& comm) {
    const auto& ops = prog.ranks[static_cast<std::size_t>(comm.rank())];
    std::vector<std::byte> buf(1 << 18);
    for (const auto& op : ops) {
      switch (op.what) {
        case sim_op::kind::send:
          comm.send_bytes(std::span<const std::byte>(buf.data(), op.bytes),
                          op.peer, tag);
          break;
        case sim_op::kind::recv:
          comm.recv_bytes(std::span<std::byte>(buf.data(), op.bytes),
                          op.peer, tag);
          break;
        case sim_op::kind::compute:
          comm.advance(op.seconds);
          break;
      }
    }
  });
}

/// Execute a sim_program on the threaded runtime, returning the final
/// virtual clocks.
std::vector<double> run_threaded(const sim_program& prog,
                                 const torus_placement& place,
                                 const tofud_params& net,
                                 const transport_options& topt) {
  world w(place, net, topt);
  run_program(w, prog, 7);
  return w.final_clocks();
}

/// Draw the threaded runtime's transport for this seed. Socket falls
/// back to shm when the sandbox forbids loopback TCP, so the parity
/// checks stay green everywhere.
transport_options fuzz_transport(xoshiro256& rng) {
  transport_options topt;
  switch (rng.bounded(3)) {
    case 0: topt.kind = transport_kind::simulated; break;
    case 1: topt.kind = transport_kind::shm; break;
    default:
      topt.kind = transport_manager::loopback_available()
                      ? transport_kind::socket
                      : transport_kind::shm;
      break;
  }
  return topt;
}

}  // namespace

class FuzzEngines : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEngines, ThreadedAndDesClocksAgree) {
  const std::uint64_t seed = GetParam();
  xoshiro256 meta(seed);
  const int p = 2 + static_cast<int>(meta.bounded(9));       // 2..10 ranks
  const int rounds = 3 + static_cast<int>(meta.bounded(10)); // 3..12 rounds
  const int per_node = 1 + static_cast<int>(meta.bounded(3));
  const int nodes = (p + per_node - 1) / per_node;
  const torus_placement place({nodes, 1, 1}, per_node);
  const transport_options topt = fuzz_transport(meta);
  // Pad the program to the placement's full rank count.
  const int total = place.rank_count();
  SCOPED_TRACE("seed " + std::to_string(seed) + " ranks " +
               std::to_string(total) + " rounds " + std::to_string(rounds) +
               " per_node " + std::to_string(per_node) + " transport " +
               transport_manager::name_of(topt.kind));
  auto prog = random_program(total, seed * 7919 + 13, rounds);

  const tofud_params net;
  const auto threaded = run_threaded(prog, place, net, topt);
  const auto des = simulate(prog, net, place).clocks;
  ASSERT_EQ(threaded.size(), des.size());
  for (std::size_t r = 0; r < des.size(); ++r) {
    ASSERT_NEAR(threaded[r], des[r], 1e-15 + 1e-9 * des[r])
        << "seed " << seed << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEngines,
                         ::testing::Range<std::uint64_t>(1, 26));

// Same fuzz, now with a seeded fault plane: both engines must agree on
// the virtual clocks AND on the chaos bookkeeping - per-rank delivery
// orders, retry/drop/duplicate counters, nobody crashed (the retry
// budget is deep enough to always drain).
class FuzzEnginesFaulty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEnginesFaulty, ChaosClocksStatsAndDeliveriesAgree) {
  const std::uint64_t seed = GetParam();
  xoshiro256 meta(seed * 0x9e3779b97f4a7c15ULL + 1);
  const int p = 2 + static_cast<int>(meta.bounded(7));      // 2..8 ranks
  const int rounds = 2 + static_cast<int>(meta.bounded(6)); // 2..7 rounds
  const torus_placement place({p, 1, 1}, 1);
  const transport_options topt = fuzz_transport(meta);
  SCOPED_TRACE("seed " + std::to_string(seed) + " ranks " +
               std::to_string(p) + " rounds " + std::to_string(rounds) +
               " transport " + transport_manager::name_of(topt.kind));
  const auto prog = random_program(p, seed * 6271 + 5, rounds);

  fault_config cfg;
  cfg.seed = seed * 131 + 17;
  cfg.probs.drop = 0.1;
  cfg.probs.duplicate = 0.06;
  cfg.probs.corrupt = 0.05;
  cfg.probs.reorder = 0.08;
  cfg.probs.delay = 0.06;
  cfg.retry.max_retries = 40;
  const fault_plane plane(cfg);

  const tofud_params net;
  world w(place, net, topt);
  w.set_faults(cfg);
  run_program(w, prog, /*tag=*/0);
  const auto& threaded = w.last_fault_report();

  const auto des = simulate(prog, net, place, {}, &plane);

  EXPECT_TRUE(threaded.crashed.empty());
  EXPECT_TRUE(des.crashed.empty());
  EXPECT_EQ(threaded.stats, des.stats);
  ASSERT_EQ(des.deliveries.size(), des.clocks.size());
  for (std::size_t r = 0; r < des.clocks.size(); ++r) {
    EXPECT_EQ(threaded.deliveries[r], des.deliveries[r]) << "rank " << r;
    ASSERT_NEAR(w.final_clocks()[r], des.clocks[r],
                1e-15 + 1e-9 * des.clocks[r])
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEnginesFaulty,
                         ::testing::Range<std::uint64_t>(1, 17));
