// The strided (full BLAS calling convention) Level-1 kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fp/float16.hpp"
#include "kernels/generic.hpp"
#include "kernels/strided.hpp"

using namespace tfx::kernels;
using tfx::fp::float16;

namespace {

template <typename T>
strided_view<const T> cview(const std::vector<T>& v, std::size_t n,
                            std::ptrdiff_t inc) {
  return {v.data(), n, inc};
}
template <typename T>
strided_view<T> view(std::vector<T>& v, std::size_t n, std::ptrdiff_t inc) {
  return {v.data(), n, inc};
}

}  // namespace

TEST(Strided, UnitStrideMatchesContiguous) {
  std::vector<double> x{1, 2, 3, 4}, y{10, 20, 30, 40}, y2 = y;
  axpy_strided(2.0, cview(x, 4, 1), view(y, 4, 1));
  axpy(2.0, std::span<const double>(x), std::span<double>(y2));
  EXPECT_EQ(y, y2);
  EXPECT_DOUBLE_EQ(dot_strided(cview(x, 4, 1), cview(y, 4, 1)),
                   dot<double>(x, y));
}

TEST(Strided, PositiveStrideSkipsElements) {
  std::vector<double> x{1, -9, 2, -9, 3};    // logical {1,2,3} at inc 2
  std::vector<double> y{10, 77, 20, 77, 30};  // logical {10,20,30}
  axpy_strided(1.0, cview(x, 3, 2), view(y, 3, 2));
  EXPECT_EQ(y, (std::vector<double>{11, 77, 22, 77, 33}));
}

TEST(Strided, NegativeStrideWalksBackwards) {
  // BLAS semantics: with inc = -1 the logical element 0 is the
  // physical last. axpy(a, x inc=1, y inc=-1) adds x reversed.
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{0, 0, 0};
  axpy_strided(1.0, cview(x, 3, 1), view(y, 3, -1));
  EXPECT_EQ(y, (std::vector<double>{3, 2, 1}));
}

TEST(Strided, DotWithMixedStrides) {
  std::vector<double> x{1, 0, 2, 0, 3};  // {1,2,3} at inc 2
  std::vector<double> y{4, 5, 6};        // {6,5,4} at inc -1
  EXPECT_DOUBLE_EQ(dot_strided(cview(x, 3, 2), cview(y, 3, -1)),
                   1 * 6 + 2 * 5 + 3 * 4);
}

TEST(Strided, ScalCopySwap) {
  std::vector<double> x{1, 2, 3, 4};
  scal_strided(3.0, view(x, 2, 2));  // scales elements 0 and 2
  EXPECT_EQ(x, (std::vector<double>{3, 2, 9, 4}));

  std::vector<double> y(4, 0.0);
  copy_strided(cview(x, 4, 1), view(y, 4, 1));
  EXPECT_EQ(y, x);

  std::vector<double> a{1, 2}, b{3, 4};
  swap_strided(view(a, 2, 1), view(b, 2, 1));
  EXPECT_EQ(a, (std::vector<double>{3, 4}));
  EXPECT_EQ(b, (std::vector<double>{1, 2}));
}

TEST(Strided, GivensRotationRotates) {
  const double theta = 0.3;
  const double c = std::cos(theta), s = std::sin(theta);
  std::vector<double> x{1, 0}, y{0, 1};
  rot_strided(view(x, 2, 1), view(y, 2, 1), c, s);
  EXPECT_NEAR(x[0], c, 1e-15);
  EXPECT_NEAR(y[0], -s, 1e-15);
  EXPECT_NEAR(x[1], s, 1e-15);
  EXPECT_NEAR(y[1], c, 1e-15);
  // Rotations preserve the 2-norm of each (x_i, y_i) pair.
  EXPECT_NEAR(x[0] * x[0] + y[0] * y[0], 1.0, 1e-14);
}

TEST(Strided, RotgAnnihilatesSecondComponent) {
  double a = 3.0, b = 4.0, c = 0.0, s = 0.0;
  rotg(a, b, c, s);
  EXPECT_NEAR(a, 5.0, 1e-14);            // r = hypot(3,4), sign of larger
  EXPECT_NEAR(c * c + s * s, 1.0, 1e-14);
  // Applying (c, s) to the original pair must zero the second entry.
  EXPECT_NEAR(-s * 3.0 + c * 4.0, 0.0, 1e-14);
  EXPECT_NEAR(c * 3.0 + s * 4.0, 5.0, 1e-14);
}

TEST(Strided, RotgEdgeCases) {
  double a = 0.0, b = 0.0, c = -1.0, s = -1.0;
  rotg(a, b, c, s);
  EXPECT_EQ(c, 1.0);  // b == 0: identity rotation
  EXPECT_EQ(s, 0.0);

  a = 0.0;
  b = 2.0;
  rotg(a, b, c, s);
  EXPECT_EQ(c, 0.0);  // a == 0: quarter turn
  EXPECT_EQ(s, 1.0);
  EXPECT_EQ(a, 2.0);
}

TEST(Strided, Float16Instantiation) {
  std::vector<float16> x{float16(1.0), float16(2.0)};
  std::vector<float16> y{float16(0.5), float16(0.5)};
  axpy_strided(float16(2.0), strided_view<const float16>(x.data(), 2, 1),
               strided_view<float16>(y.data(), 2, 1));
  EXPECT_EQ(static_cast<double>(y[0]), 2.5);
  EXPECT_EQ(static_cast<double>(y[1]), 4.5);
}
