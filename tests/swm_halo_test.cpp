// The aggregated, overlapped halo engine (swm/halo.hpp): packed
// exchanges move the right rows, every halo mode reproduces the
// per-field oracle bit-for-bit (standard, compensated, Float16,
// uneven decompositions, under chaos, and through crash/rollback
// recovery), the threaded virtual clocks pin against the DES twin,
// the perfmodel's halo term matches the measured obs counters
// exactly, and the engine is allocation-free after warmup.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/des.hpp"
#include "mpisim/faultplane.hpp"
#include "mpisim/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swm/distributed.hpp"
#include "swm/halo.hpp"
#include "swm/model.hpp"
#include "swm/resilience.hpp"
#include "swm/tags.hpp"

using namespace tfx;
using namespace tfx::swm;
using tfx::fp::float16;

// -- global allocation counter for the warmup test --------------------
// Counting only: every operator still defers to malloc/free, so the
// rest of the binary is unaffected.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#define REQUIRE_OBS_COMPILED()                                          \
  if (!obs::compiled) {                                                 \
    GTEST_SKIP() << "observability plane compiled out (TFX_OBS=OFF)";   \
  }                                                                     \
  static_assert(true, "")

namespace {

constexpr halo_mode all_modes[] = {halo_mode::per_field,
                                   halo_mode::aggregated,
                                   halo_mode::aggregated_overlap};

const char* mode_name(halo_mode m) {
  switch (m) {
    case halo_mode::per_field: return "per_field";
    case halo_mode::aggregated: return "aggregated";
    case halo_mode::aggregated_overlap: return "aggregated_overlap";
  }
  return "?";
}

swm_params small_params() {
  swm_params p;
  p.nx = 32;
  p.ny = 16;
  return p;
}

template <typename T>
state<T> serial_trajectory(const swm_params& p, int steps,
                           integration_scheme scheme) {
  model<T> m(p, scheme);
  m.seed_random_eddies(7, 0.5);
  m.run(steps);
  return m.prognostic();
}

template <typename T>
state<T> initial_state(const swm_params& p) {
  model<T> m(p);
  m.seed_random_eddies(7, 0.5);
  return m.prognostic();
}

/// Distributed trajectory under `mode`, gathered to a global state.
template <typename T>
state<T> distributed_trajectory(const swm_params& params, int p, int steps,
                                integration_scheme scheme, halo_mode mode) {
  const auto init = initial_state<T>(params);
  state<T> out(params.nx, params.ny);
  mpisim::world w(p);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<T> dm(comm, params, scheme);
    dm.set_halo_mode(mode);
    dm.set_from_global(init);
    dm.run(steps);
    auto global = dm.gather_global();
    if (comm.rank() == 0) out = std::move(global);
  });
  return out;
}

template <typename T>
void expect_states_bitwise(const state<T>& got, const state<T>& want,
                           const std::string& label) {
  for (int j = 0; j < want.ny(); ++j) {
    for (int i = 0; i < want.nx(); ++i) {
      ASSERT_EQ(got.u(i, j), want.u(i, j)) << label << " u " << i << "," << j;
      ASSERT_EQ(got.v(i, j), want.v(i, j)) << label << " v " << i << "," << j;
      ASSERT_EQ(got.eta(i, j), want.eta(i, j))
          << label << " eta " << i << "," << j;
    }
  }
}

/// RAII tracing session (the obs_trace_test discipline).
struct obs_session {
  obs_session() {
    obs::metrics_registry::instance().clear();
    obs::start();
  }
  ~obs_session() { obs::stop(); }
  obs_session(const obs_session&) = delete;
  obs_session& operator=(const obs_session&) = delete;
};

std::uint64_t counter_value(std::string_view name) {
  return obs::metrics_registry::instance().get_counter(name).value();
}

}  // namespace

// ---------------------------------------------------------------------------
// Mechanics: the packed engine moves the right rows to the right halos.
// ---------------------------------------------------------------------------

TEST(HaloEngine, PackedExchangeMovesNeighbourRows) {
  mpisim::world w(3);
  w.run([](mpisim::communicator& comm) {
    const int r = comm.rank();
    const int p = comm.size();
    // Three fields with distinguishable contents: field f on rank r
    // holds 100*f + 10*r + row.
    slab<double> a(4, 3), b(4, 3), c(4, 3);
    slab<double>* fields[] = {&a, &b, &c};
    for (int f = 0; f < 3; ++f) {
      for (int j = 0; j < 3; ++j) {
        for (int i = 0; i < 4; ++i) {
          (*fields[f])(i, j) = 100.0 * f + 10.0 * r + j;
        }
      }
    }
    halo_exchanger<double> ex(comm, 4);
    ex.start(halo_exchanger<double>::phase::prognostic, {&a, &b, &c});
    EXPECT_TRUE(ex.in_flight());
    ex.finish();
    EXPECT_FALSE(ex.in_flight());
    const int up = (r + 1) % p;
    const int down = (r - 1 + p) % p;
    for (int f = 0; f < 3; ++f) {
      // My lower halo is my down-neighbour's top row (j = 2), my upper
      // halo its up-neighbour's bottom row (j = 0).
      EXPECT_EQ((*fields[f])(1, -1), 100.0 * f + 10.0 * down + 2) << f;
      EXPECT_EQ((*fields[f])(1, 3), 100.0 * f + 10.0 * up + 0) << f;
      EXPECT_EQ((*fields[f])(1, 0), 100.0 * f + 10.0 * r + 0) << f;
    }
    EXPECT_EQ(ex.messages_sent(), 2u);
    EXPECT_EQ(ex.bytes_sent(), 2u * 3u * 4u * sizeof(double));
  });
}

TEST(HaloEngine, SingleRankWrapsPeriodically) {
  mpisim::world w(1);
  w.run([](mpisim::communicator& comm) {
    slab<double> a(4, 3), b(4, 3);
    for (int j = 0; j < 3; ++j) {
      for (int i = 0; i < 4; ++i) {
        a(i, j) = 10 + j;
        b(i, j) = 20 + j;
      }
    }
    halo_exchanger<double> ex(comm, 4);
    ex.start(halo_exchanger<double>::phase::derived, {&a, &b});
    ex.finish();
    EXPECT_EQ(a(0, -1), 12.0);  // wrap: top row
    EXPECT_EQ(a(0, 3), 10.0);   // wrap: bottom row
    EXPECT_EQ(b(0, -1), 22.0);
    EXPECT_EQ(b(0, 3), 20.0);
    EXPECT_EQ(ex.messages_sent(), 0u);  // the wrap is local
  });
}

// ---------------------------------------------------------------------------
// Tentpole property: every halo mode is bit-identical to the per-field
// oracle (which itself is bit-identical to the serial model).
// ---------------------------------------------------------------------------

class HaloModeRanks : public ::testing::TestWithParam<int> {};

TEST_P(HaloModeRanks, AllModesBitEqualToSerialFloat64) {
  const int p = GetParam();
  const swm_params params = small_params();
  const int steps = 20;
  const auto serial =
      serial_trajectory<double>(params, steps, integration_scheme::standard);
  for (const halo_mode mode : all_modes) {
    const auto got = distributed_trajectory<double>(
        params, p, steps, integration_scheme::standard, mode);
    expect_states_bitwise(got, serial, mode_name(mode));
  }
}

TEST_P(HaloModeRanks, CompensatedSchemeAlsoBitEqual) {
  const int p = GetParam();
  const swm_params params = small_params();
  const int steps = 12;
  const auto serial = serial_trajectory<double>(
      params, steps, integration_scheme::compensated);
  for (const halo_mode mode : all_modes) {
    const auto got = distributed_trajectory<double>(
        params, p, steps, integration_scheme::compensated, mode);
    expect_states_bitwise(got, serial, mode_name(mode));
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HaloModeRanks,
                         ::testing::Values(1, 2, 4, 8));

TEST(HaloModes, Float16CompensatedIdenticalAcrossModes) {
  // Float16 has no serial bit-oracle in this suite; instead pin the
  // aggregated engines against the per-field oracle directly.
  swm_params params = small_params();
  params.log2_scale = 12;
  const int p = 4;
  const int steps = 10;
  auto run_mode = [&](halo_mode mode) {
    const auto init = initial_state<float16>(params);
    state<float16> out(params.nx, params.ny);
    mpisim::world w(p);
    w.run([&](mpisim::communicator& comm) {
      fp::ftz_guard ftz(fp::ftz_mode::flush);
      distributed_model<float16> dm(comm, params,
                                    integration_scheme::compensated);
      dm.set_halo_mode(mode);
      dm.set_from_global(init);
      dm.run(steps);
      auto global = dm.gather_global();
      if (comm.rank() == 0) out = std::move(global);
    });
    return out;
  };
  const auto oracle = run_mode(halo_mode::per_field);
  for (const halo_mode mode :
       {halo_mode::aggregated, halo_mode::aggregated_overlap}) {
    const auto got = run_mode(mode);
    for (int j = 0; j < params.ny; ++j) {
      for (int i = 0; i < params.nx; ++i) {
        ASSERT_EQ(got.eta(i, j).bits(), oracle.eta(i, j).bits())
            << mode_name(mode) << " " << i << "," << j;
      }
    }
  }
}

// (nx, ny, p): uneven slab heights and odd widths.
class HaloUneven
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HaloUneven, UnevenDecompositionBitEqualAcrossModes) {
  const auto [nx, ny, p] = GetParam();
  swm_params params;
  params.nx = nx;
  params.ny = ny;
  params.Ly = params.Lx * ny / nx;  // keep the cells square (dx == dy)
  const int steps = 8;
  const auto serial =
      serial_trajectory<double>(params, steps, integration_scheme::standard);
  for (const halo_mode mode : all_modes) {
    const auto got = distributed_trajectory<double>(
        params, p, steps, integration_scheme::standard, mode);
    expect_states_bitwise(got, serial, mode_name(mode));
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, HaloUneven,
                         ::testing::Values(std::make_tuple(31, 18, 4),
                                           std::make_tuple(33, 11, 3),
                                           std::make_tuple(32, 17, 5)));

// ---------------------------------------------------------------------------
// Fault-plane compatibility of the packed channels.
// ---------------------------------------------------------------------------

TEST(HaloFaults, CrashAnnotatesPackedPhase) {
  const swm_params params = small_params();
  const auto init = initial_state<double>(params);
  mpisim::world w(4);
  mpisim::fault_config cfg;
  cfg.crashes.push_back({1, 0});
  w.set_faults(cfg);
  try {
    w.run([&](mpisim::communicator& comm) {
      distributed_model<double> dm(comm, params);  // default: overlap
      dm.set_from_global(init);
      dm.run(5);
    });
    FAIL() << "expected comm_error, got a completed run";
  } catch (const mpisim::comm_error& e) {
    EXPECT_EQ(e.why(), mpisim::comm_error::reason::peer_crashed) << e.what();
    const std::string what = e.what();
    EXPECT_NE(what.find("halo exchange"), std::string::npos) << what;
    EXPECT_NE(what.find("packed"), std::string::npos) << what;
  }
}

TEST(HaloFaults, ChaosRunBitEqualToCleanOracle) {
  // Recoverable chaos (drops, duplicates, corruption - with a retry
  // budget deep enough to drain it) on the packed overlapped channels
  // must not change a single bit of the trajectory.
  const swm_params params = small_params();
  const int p = 4;
  const int steps = 10;
  const auto oracle = distributed_trajectory<double>(
      params, p, steps, integration_scheme::standard, halo_mode::per_field);

  const auto init = initial_state<double>(params);
  state<double> got(params.nx, params.ny);
  mpisim::world w(p);
  mpisim::fault_config cfg;
  cfg.seed = 77;
  cfg.probs.drop = 0.05;
  cfg.probs.duplicate = 0.04;
  cfg.probs.corrupt = 0.03;
  cfg.probs.reorder = 0.04;
  cfg.retry.max_retries = 40;
  w.set_faults(cfg);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, params);
    dm.set_halo_mode(halo_mode::aggregated_overlap);
    dm.set_from_global(init);
    dm.run(steps);
    auto global = dm.gather_global();
    if (comm.rank() == 0) got = std::move(global);
  });
  expect_states_bitwise(got, oracle, "chaos overlap");
  EXPECT_GT(w.last_fault_report().stats.retries, 0u)
      << "the chaos schedule must actually have injected";
}

TEST(HaloFaults, RecoveryReplaysOverPackedChannels) {
  // A mid-run crash with buddy-checkpoint recovery, halos on the
  // packed overlapped engine end to end: the recovered trajectory must
  // match the fault-free one bit for bit.
  const swm_params params = small_params();
  const int p = 4;
  const int steps = 12;
  const auto init = initial_state<double>(params);

  auto run_one = [&](const mpisim::fault_config& cfg, bool resilient) {
    std::vector<std::vector<double>> packed(static_cast<std::size_t>(p));
    mpisim::world w(p);
    w.set_faults(cfg);
    w.run([&](mpisim::communicator& comm) {
      distributed_model<double> dm(comm, params);
      dm.set_halo_mode(halo_mode::aggregated_overlap);
      dm.set_from_global(init);
      if (resilient) {
        resilience_options opt;
        opt.checkpoint_interval = 4;
        const auto report = run_resilient(comm, dm, steps, opt);
        EXPECT_GE(report.rounds, 1) << "the crash must trigger recovery";
      } else {
        dm.run(steps);
      }
      auto& mine = packed[static_cast<std::size_t>(comm.rank())];
      mine.resize(dm.packed_size());
      dm.pack_state(std::span<double>(mine));
    });
    return packed;
  };

  mpisim::fault_config quiet;
  quiet.crashes.push_back({3, 1u << 30});  // fault plane on, never fires
  const auto want = run_one(quiet, false);

  mpisim::fault_config cfg;
  cfg.seed = 41;
  cfg.crashes.push_back({1, 120});
  const auto got = run_one(cfg, true);

  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(),
              want[static_cast<std::size_t>(r)].size());
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              want[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Virtual-time accounting: DES twin, overlap benefit, perfmodel pin.
// ---------------------------------------------------------------------------

namespace {

/// Threaded virtual clocks of a `steps`-step run under `mode` with the
/// modeled-compute knob at `rhs_seconds`.
std::vector<double> threaded_clocks(const swm_params& params, int p,
                                    int steps, halo_mode mode,
                                    double rhs_seconds) {
  const auto init = initial_state<double>(params);
  mpisim::world w(p);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, params);
    dm.set_halo_mode(mode);
    dm.set_modeled_rhs_seconds(rhs_seconds);
    dm.set_from_global(init);
    dm.run(steps);
  });
  return w.final_clocks();
}

}  // namespace

// (ranks, mode index)
class HaloDes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HaloDes, ThreadedClocksMatchDesTwin) {
  const auto [p, mode_idx] = GetParam();
  const halo_mode mode = all_modes[mode_idx];
  const swm_params params = small_params();
  ASSERT_EQ(params.ny % p, 0) << "the DES twin assumes uniform slabs";
  const int steps = 3;
  const double rhs_seconds = 3e-6;

  const auto threaded =
      threaded_clocks(params, p, steps, mode, rhs_seconds);

  mpisim::world w(p);  // only for net()/placement()
  const auto prog =
      make_halo_program(p, params.nx, sizeof(double), mode, steps,
                        rhs_seconds, params.ny / p);
  const auto des = mpisim::simulate(prog, w.net(), w.placement());
  ASSERT_EQ(des.clocks.size(), threaded.size());
  for (std::size_t r = 0; r < threaded.size(); ++r) {
    EXPECT_DOUBLE_EQ(threaded[r], des.clocks[r])
        << mode_name(mode) << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, HaloDes,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(0, 1, 2)));

TEST(HaloTime, AggregationHalvesVirtualHaloTime) {
  // With no modeled compute the step loop's virtual time is pure halo
  // cost; aggregation must cut it by at least 2x at this small grid
  // (the BENCH_halo.json acceptance criterion, pinned here).
  const swm_params params = small_params();
  const int p = 4;
  const int steps = 5;
  const auto per_field =
      threaded_clocks(params, p, steps, halo_mode::per_field, 0.0);
  const auto aggregated =
      threaded_clocks(params, p, steps, halo_mode::aggregated, 0.0);
  for (std::size_t r = 0; r < per_field.size(); ++r) {
    EXPECT_GE(per_field[r], 2.0 * aggregated[r]) << "rank " << r;
  }
}

TEST(HaloTime, OverlapHidesComputeInVirtualTime) {
  // With a real compute charge, the overlapped engine finishes earlier
  // than the non-overlapped aggregated one: the interior share of the
  // charge runs while the payloads are in flight.
  const swm_params params = small_params();
  const int p = 4;
  const int steps = 5;
  const double rhs_seconds = 20e-6;
  const auto aggregated =
      threaded_clocks(params, p, steps, halo_mode::aggregated, rhs_seconds);
  const auto overlap = threaded_clocks(params, p, steps,
                                       halo_mode::aggregated_overlap,
                                       rhs_seconds);
  for (std::size_t r = 0; r < overlap.size(); ++r) {
    EXPECT_LT(overlap[r], aggregated[r]) << "rank " << r;
  }
}

TEST(HaloPerfmodel, PredictionMatchesMeasuredCounters) {
  REQUIRE_OBS_COMPILED();
  // predict_halo's messages/bytes must equal the measured obs counters
  // exactly - per mode. Totals aggregate over p ranks and `steps`
  // steps.
  const swm_params params = small_params();
  const int p = 4;
  const int steps = 5;
  const auto init = initial_state<double>(params);
  for (const halo_mode mode : all_modes) {
    obs_session session;
    mpisim::world w(p);
    w.run([&](mpisim::communicator& comm) {
      distributed_model<double> dm(comm, params);
      dm.set_halo_mode(mode);
      dm.set_from_global(init);
      dm.run(steps);
    });
    mpisim::world probe(p);  // a fresh world's net params (identical)
    const halo_cost pred =
        predict_halo(probe.net(), params.nx, sizeof(double), p, mode);
    const std::uint64_t scale =
        static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(steps);
    EXPECT_EQ(counter_value("swm.halo_messages"), scale * pred.messages)
        << mode_name(mode);
    EXPECT_EQ(counter_value("swm.halo_bytes"), scale * pred.bytes)
        << mode_name(mode);
    EXPECT_EQ(counter_value("swm.dist_steps"), scale) << mode_name(mode);
  }
}

TEST(HaloPerfmodel, PlacementAwarePredictionMatchesMeasuredCounters) {
  REQUIRE_OBS_COMPILED();
  // The comm-aware overload (docs/TOPOLOGY.md) must not drift from the
  // measured traffic either: summing the per-rank placement-aware
  // predictions over a real torus run reproduces swm.halo_messages /
  // swm.halo_bytes exactly, placement or no placement. Only the cost
  // fields may differ from the flat overload.
  const swm_params params = small_params();
  const int steps = 5;
  const mpisim::torus_placement place({2, 2, 1}, 1);
  const int p = place.rank_count();
  const auto init = initial_state<double>(params);
  for (const halo_mode mode : all_modes) {
    obs_session session;
    mpisim::world w(place, mpisim::tofud_params{});
    w.run([&](mpisim::communicator& comm) {
      distributed_model<double> dm(comm, params);
      dm.set_halo_mode(mode);
      dm.set_from_global(init);
      dm.run(steps);
    });
    const mpisim::tofud_params net;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    for (int r = 0; r < p; ++r) {
      const halo_cost placed =
          predict_halo(net, place, r, params.nx, sizeof(double), p, mode);
      messages += placed.messages;
      bytes += placed.bytes;
      EXPECT_GE(placed.contended_seconds, placed.seconds)
          << mode_name(mode) << " rank " << r;
    }
    const auto scale = static_cast<std::uint64_t>(steps);
    EXPECT_EQ(counter_value("swm.halo_messages"), scale * messages)
        << mode_name(mode);
    EXPECT_EQ(counter_value("swm.halo_bytes"), scale * bytes)
        << mode_name(mode);
  }
}

TEST(HaloPerfmodel, MessageArithmetic) {
  mpisim::world w(2);
  const auto& net = w.net();
  // Per step: 4 stages x (3 + 4 fields) x 2 directions = 56 per-field
  // messages; aggregated: 4 x 2 phases x 2 directions = 16. Bytes are
  // identical: aggregation repackages rows, it does not change volume.
  const auto pf = predict_halo(net, 32, 8, 2, halo_mode::per_field);
  const auto ag = predict_halo(net, 32, 8, 2, halo_mode::aggregated);
  const auto ov = predict_halo(net, 32, 8, 2, halo_mode::aggregated_overlap);
  EXPECT_EQ(pf.messages, 56u);
  EXPECT_EQ(ag.messages, 16u);
  EXPECT_EQ(ov.messages, 16u);
  EXPECT_EQ(pf.bytes, 56u * 32u * 8u);
  EXPECT_EQ(ag.bytes, pf.bytes);
  EXPECT_GT(pf.seconds, ag.seconds);
  EXPECT_EQ(ag.seconds, ov.seconds);  // overlap moves time, not traffic
  // Single rank: the wrap is local.
  const auto solo = predict_halo(net, 32, 8, 1, halo_mode::aggregated);
  EXPECT_EQ(solo.messages, 0u);
  EXPECT_EQ(solo.bytes, 0u);
  EXPECT_EQ(solo.seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Allocation discipline: steady-state steps allocate nothing on a
// single rank (pure wrap path) and a constant amount with neighbours
// (mpisim message payloads only - the engine's own buffers are warm).
// ---------------------------------------------------------------------------

TEST(HaloAlloc, SingleRankStepsAllocationFreeAfterWarmup) {
  const swm_params params = small_params();
  const auto init = initial_state<double>(params);
  mpisim::world w(1);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, params);
    dm.set_from_global(init);
    dm.run(2);  // warmup
    const std::uint64_t before =
        g_alloc_count.load(std::memory_order_relaxed);
    dm.run(5);
    const std::uint64_t after =
        g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "steady-state steps must not allocate";
  });
}

TEST(HaloAlloc, MultiRankStepsAllocateSteadyState) {
  // With neighbours, a step inherently allocates (mpisim copies each
  // payload into the mailbox), but the per-step count must be steady
  // once the engine's buffers are warm. Whole-run totals are compared;
  // they carry bounded timing noise (mailbox deques grow by blocks to
  // the peak queue depth, which depends on the thread interleaving,
  // and the delivery log doubles amortized), so the windows are made
  // wide - 24 steps each - and the tolerance covers only that bounded
  // term. A per-message (linear) leak would scale with the window and
  // blow far past it. The halo engine's own zero-allocation property
  // is pinned exactly by the single-rank test above.
  const swm_params params = small_params();
  const auto init = initial_state<double>(params);
  auto total_allocs = [&](int steps) {
    mpisim::world w(4);
    const std::uint64_t before =
        g_alloc_count.load(std::memory_order_relaxed);
    w.run([&](mpisim::communicator& comm) {
      distributed_model<double> dm(comm, params);
      dm.set_from_global(init);
      dm.run(steps);
    });
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  const std::uint64_t a2 = total_allocs(2);
  const std::uint64_t a26 = total_allocs(26);
  const std::uint64_t a50 = total_allocs(50);
  const std::uint64_t lo = std::min(a50 - a26, a26 - a2);
  const std::uint64_t hi = std::max(a50 - a26, a26 - a2);
  EXPECT_LE(hi - lo, 96u) << "per-step allocations must be steady: "
                          << (a26 - a2) << " vs " << (a50 - a26);
  EXPECT_GT(a26, a2) << "messages do allocate payload copies";
}
