#pragma once

/// \file rounding.hpp
/// Bit-exact conversions between IEEE-754 binary64/binary32 and the
/// 16-bit formats (binary16, bfloat16), all in round-to-nearest-even.
///
/// Correctness notes (these are the properties the tests pin down):
///
/// * binary32 -> binary16 is implemented directly on the bit pattern
///   with a guard/sticky rounding step, including gradual underflow to
///   binary16 subnormals and rounding-induced overflow to infinity
///   (values >= 65520 round to +inf).
/// * binary64 -> binary16 cannot simply go through binary32 with two
///   round-to-nearest steps: that double rounding is wrong for values
///   that are ties at binary16 precision but not at binary32 precision.
///   We instead convert binary64 -> binary32 with *round-to-odd* (keep
///   a sticky bit in the binary32 LSB) and then round once to binary16.
///   Because binary32 carries more than 2*11+2 significand bits, this
///   composition is exactly a single correctly-rounded conversion
///   [Boldo & Melquiond, "When double rounding is odd", 2005].
/// * binary32 arithmetic on binary16 operands followed by truncation to
///   binary16 is *bit-identical* to native binary16 arithmetic for
///   + - * / and sqrt, again by the 2p+2 theorem. This is why Julia's
///   software Float16 (the fpext/fptrunc scheme quoted in § IV-C of the
///   paper) agrees with A64FX hardware, and why this library's results
///   are faithful to the machine we are simulating.

#include <bit>
#include <cstdint>

namespace tfx::fp {

/// Convert binary32 bits to binary16 bits, round-to-nearest-even.
constexpr std::uint16_t f32_bits_to_f16_bits(std::uint32_t x) {
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t absx = x & 0x7fffffffu;

  if (absx >= 0x7f800000u) {  // infinity or NaN
    if (absx > 0x7f800000u) {
      // NaN: preserve the top payload bits, force quiet.
      const auto payload = static_cast<std::uint16_t>((absx & 0x7fffffu) >> 13);
      return static_cast<std::uint16_t>(sign | 0x7e00u | payload);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  const std::int32_t exp32 = static_cast<std::int32_t>(absx >> 23);
  const std::int32_t exp16 = exp32 - 127 + 15;
  const std::uint32_t man = absx & 0x7fffffu;

  if (exp16 >= 31) {  // overflows even before rounding
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exp16 >= 1) {
    // Normal result (modulo rounding carry). Keep the top 10 mantissa
    // bits; round on the discarded 13.
    std::uint32_t base =
        (static_cast<std::uint32_t>(exp16) << 10) | (man >> 13);
    const std::uint32_t rem = man & 0x1fffu;
    base += (rem > 0x1000u) || (rem == 0x1000u && (base & 1u));
    // A carry out of the mantissa propagates into the exponent field;
    // reaching the infinity encoding is exactly rounding-to-overflow.
    if (base >= 0x7c00u) return static_cast<std::uint16_t>(sign | 0x7c00u);
    return static_cast<std::uint16_t>(sign | base);
  }

  // Subnormal or zero result. The significand (with implicit bit if the
  // input is a binary32 normal) must be shifted right by 14 - exp16
  // bits; everything shifted out feeds guard/sticky.
  if (exp32 == 0) {
    // binary32 subnormals are < 2^-126, far below the smallest binary16
    // subnormal midpoint (2^-25): they all round to signed zero.
    return sign;
  }
  // With exp16 <= 0 the result is value / 2^-24 rounded to an integer
  // count of binary16 subnormal ulps: full * 2^-shift for the 24-bit
  // significand `full` and shift = 14 - exp16 >= 14.
  const std::int32_t shift = 14 - exp16;
  if (shift > 25) return sign;  // value < 2^-26: far below the 0/ulp tie
  const std::uint64_t full = (static_cast<std::uint64_t>(man) | 0x800000u);
  std::uint64_t base = full >> shift;
  const std::uint64_t rem = full & ((1ULL << shift) - 1);
  const std::uint64_t half = 1ULL << (shift - 1);
  base += (rem > half) || (rem == half && (base & 1));
  // base may carry into the smallest normal (exponent field becomes 1):
  // that encoding is already correct.
  return static_cast<std::uint16_t>(sign | static_cast<std::uint16_t>(base));
}

/// Convert binary16 bits to binary32 bits (always exact).
constexpr std::uint32_t f16_bits_to_f32_bits(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t man = h & 0x3ffu;

  if (exp == 0x1fu) {  // infinity or NaN
    return sign | 0x7f800000u | (man << 13) | (man ? 0x400000u : 0u);
  }
  if (exp == 0) {
    if (man == 0) return sign;  // signed zero
    // Subnormal: normalize.
    int e = -1;
    std::uint32_t m = man;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return sign | (exp32 << 23) | ((m & 0x3ffu) << 13);
  }
  return sign | ((exp + 127 - 15) << 23) | (man << 13);
}

/// Convert binary32 bits to bfloat16 bits, round-to-nearest-even.
/// bfloat16 shares binary32's exponent range, so this is a pure
/// mantissa truncation with rounding; no gradual-underflow special case
/// is needed beyond what binary32 already encodes.
constexpr std::uint16_t f32_bits_to_bf16_bits(std::uint32_t x) {
  if ((x & 0x7fffffffu) > 0x7f800000u) {
    // NaN: keep sign + top payload bits, force quiet.
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  const std::uint32_t lsb = (x >> 16) & 1u;
  const std::uint32_t rounded = x + 0x7fffu + lsb;
  return static_cast<std::uint16_t>(rounded >> 16);
}

/// Convert bfloat16 bits to binary32 bits (always exact).
constexpr std::uint32_t bf16_bits_to_f32_bits(std::uint16_t b) {
  return static_cast<std::uint32_t>(b) << 16;
}

/// binary64 -> binary32 with round-to-odd (sticky LSB). Used as the
/// inner step of the correctly-rounded binary64 -> 16-bit conversions.
inline float f64_to_f32_round_to_odd(double d) {
  float f = static_cast<float>(d);  // round-to-nearest-even
  const double back = static_cast<double>(f);
  if (back == d || f != f) return f;  // exact, or NaN
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  // If RN rounded away from zero, step back to the truncated value. The
  // IEEE bit patterns of same-signed floats are ordered by magnitude,
  // so +-1 on the pattern moves one ULP. (bits cannot encode +-0 here
  // when it rounded away, since rounding away from zero from a nonzero
  // value never lands on zero.)
  const double absd = d < 0 ? -d : d;
  double absf = back < 0 ? -back : back;
  if (absf > absd) {
    --bits;
  }
  bits |= 1u;  // sticky: make the result odd
  return std::bit_cast<float>(bits);
}

/// Correctly rounded binary64 -> binary16 (round-to-nearest-even).
inline std::uint16_t f64_to_f16_bits(double d) {
  if (d != d) {  // NaN: route through the binary32 payload logic
    return f32_bits_to_f16_bits(
        std::bit_cast<std::uint32_t>(static_cast<float>(d)));
  }
  const float odd = f64_to_f32_round_to_odd(d);
  return f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(odd));
}

/// Correctly rounded binary64 -> bfloat16 (round-to-nearest-even).
inline std::uint16_t f64_to_bf16_bits(double d) {
  if (d != d) {
    return f32_bits_to_bf16_bits(
        std::bit_cast<std::uint32_t>(static_cast<float>(d)));
  }
  const float odd = f64_to_f32_round_to_odd(d);
  return f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(odd));
}

}  // namespace tfx::fp
