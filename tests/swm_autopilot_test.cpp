// Unit suite of the precision autopilot (swm/autopilot.hpp,
// docs/AUTOPILOT.md): the Sherlog shadow-stripe monitor must read the
// member state without side effects (sink saved/restored, no state
// mutation), and the escalation ladder must be a pure deterministic
// function of the observed window and the pilot's own counters —
// rescale (an exact power-of-two shift) while rescales remain,
// promote when they are spent, typed failure when promotion is off.
// tests/ensemble_repair_test drives the same ladder end to end inside
// the engine.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/autopilot.hpp"
#include "swm/field.hpp"
#include "swm/params.hpp"

using namespace tfx;
using swm::autopilot;
using swm::autopilot_action;
using swm::autopilot_cause;
using swm::autopilot_options;
using swm::autopilot_verdict;

namespace {

swm::swm_params member_params(int nx = 16, int ny = 8, int log2_scale = 0) {
  swm::swm_params p;
  p.nx = nx;
  p.ny = ny;
  p.log2_scale = log2_scale;
  return p;
}

swm::state<double> uniform_state(int nx, int ny, double value) {
  swm::state<double> s(nx, ny);
  for (auto* f : {&s.u, &s.v, &s.eta}) {
    for (auto& v : f->flat()) v = value;
  }
  return s;
}

}  // namespace

TEST(Autopilot, SampleSavesAndRestoresTheSherlogSink) {
  fp::sherlog_sink().reset();
  fp::sherlog_sink().record(2.0);
  fp::sherlog_sink().record(0.25);
  const std::uint64_t total_before = fp::sherlog_sink().total();

  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  const swm::state<double> s = uniform_state(16, 8, 1.0);
  pilot.sample(s);

  // The caller's own Sherlog analysis is untouched...
  EXPECT_EQ(fp::sherlog_sink().total(), total_before);
  EXPECT_EQ(fp::sherlog_sink().count(1), 1u);
  EXPECT_EQ(fp::sherlog_sink().count(-2), 1u);
  // ...while the pilot's window holds the stripe values plus the
  // shadow RHS results.
  EXPECT_GT(pilot.window().total(), 0u);
  EXPECT_EQ(pilot.checks(), 1);
  fp::sherlog_sink().reset();
}

TEST(Autopilot, HealthyWindowAssessesNoneAndResets) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  const swm::state<double> s = uniform_state(16, 8, 1.0);
  pilot.sample(s);
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.action, autopilot_action::none);
  EXPECT_EQ(v.cause, autopilot_cause::none);
  EXPECT_FALSE(v.rollback);
  EXPECT_LE(v.subnormal_fraction, opt.max_subnormal_fraction);
  EXPECT_LE(v.overflow_fraction, opt.max_overflow_fraction);
  // Each assessment judges only the samples since the previous one.
  EXPECT_EQ(pilot.window().total(), 0u);
}

TEST(Autopilot, SubnormalDriftRescalesUpByAPowerOfTwo) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  // The whole window sits 30 binary orders below 1: far under
  // float16's normal floor of 2^-14.
  for (int i = 0; i < 1000; ++i) pilot.observe(std::ldexp(1.0, -30));
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.action, autopilot_action::rescale);
  EXPECT_EQ(v.cause, autopilot_cause::subnormal_drift);
  EXPECT_FALSE(v.rollback);  // drift: the live state is still good
  EXPECT_DOUBLE_EQ(v.subnormal_fraction, 1.0);
  // The shift must lift the cluster well inside [-14, 15].
  EXPECT_GE(v.log2_scale, 20);
  EXPECT_LE(v.log2_scale, 45);

  pilot.note_rescale(v.log2_scale);
  EXPECT_EQ(pilot.rescales(), 1);
}

TEST(Autopilot, RescaleShiftAddsToTheCurrentScale) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot a(opt, fp::float16_range, member_params(16, 8, 0));
  autopilot b(opt, fp::float16_range, member_params(16, 8, 7));
  for (int i = 0; i < 100; ++i) {
    a.observe(std::ldexp(1.0, -25));
    b.observe(std::ldexp(1.0, -25));
  }
  // The window holds *scaled* magnitudes, so the same picture demands
  // the same additional shift on top of whatever scale is current.
  const autopilot_verdict va = a.assess(0);
  const autopilot_verdict vb = b.assess(7);
  ASSERT_EQ(va.action, autopilot_action::rescale);
  ASSERT_EQ(vb.action, autopilot_action::rescale);
  EXPECT_EQ(vb.log2_scale - va.log2_scale, 7);
}

TEST(Autopilot, RescaleLiftStopsBelowTheUnclippedWindowTop) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  // Bulk far below the floor, plus a rare heavy tail near 2^10 — the
  // shape a biharmonic stencil leaves: choose_scaling clips the tail
  // and would centre the bulk with a ~+17 shift, but the tail still
  // has to fit after the restate. The lift must stop rescale_headroom
  // binades short of the ceiling: 15 - 2 - 10 = 3.
  for (int i = 0; i < 100000; ++i) pilot.observe(std::ldexp(1.0, -20));
  for (int i = 0; i < 3; ++i) pilot.observe(std::ldexp(1.0, 10));
  const autopilot_verdict v = pilot.assess(0);
  ASSERT_EQ(v.action, autopilot_action::rescale);
  EXPECT_EQ(v.cause, autopilot_cause::subnormal_drift);
  EXPECT_EQ(v.log2_scale, 3);
}

TEST(Autopilot, LiftOfZeroEscalatesInsteadOfRescaling) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  // Subnormal mass below the floor AND outliers already at the
  // ceiling: no upward shift is safe, so the ladder must skip the
  // pointless rescale and promote.
  for (int i = 0; i < 100000; ++i) pilot.observe(std::ldexp(1.0, -20));
  for (int i = 0; i < 3; ++i) pilot.observe(std::ldexp(1.0, 14));
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.action, autopilot_action::promote);
  EXPECT_EQ(v.cause, autopilot_cause::subnormal_drift);
}

TEST(Autopilot, OverflowDriftRescalesDown) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  // Mass at/above 2^15 grazes float16's overflow ceiling (the default
  // overflow_guard = 1 fires at exponent 16 - 1 = 15).
  for (int i = 0; i < 1000; ++i) pilot.observe(std::ldexp(1.0, 15));
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.action, autopilot_action::rescale);
  EXPECT_EQ(v.cause, autopilot_cause::overflow_drift);
  EXPECT_DOUBLE_EQ(v.overflow_fraction, 1.0);
  EXPECT_LT(v.log2_scale, 0);
}

TEST(Autopilot, RescaleExhaustionEscalatesToPromotion) {
  autopilot_options opt;
  opt.check_every = 1;
  opt.max_rescales = 0;  // ladder starts with promotion
  autopilot pilot(opt, fp::float16_range, member_params());
  for (int i = 0; i < 100; ++i) pilot.observe(std::ldexp(1.0, -30));
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.action, autopilot_action::promote);
  EXPECT_EQ(v.cause, autopilot_cause::subnormal_drift);

  pilot.note_promotion(fp::bfloat16_range, 0);
  EXPECT_EQ(pilot.promotions(), 1);
  EXPECT_EQ(pilot.target().min_normal_exponent,
            fp::bfloat16_range.min_normal_exponent);
  // The same magnitudes are healthy on the wider rung.
  for (int i = 0; i < 100; ++i) pilot.observe(std::ldexp(1.0, -30));
  EXPECT_EQ(pilot.assess(0).action, autopilot_action::none);
}

TEST(Autopilot, PromotionDisabledIsTypedFailure) {
  autopilot_options opt;
  opt.check_every = 1;
  opt.max_rescales = 0;
  opt.allow_promote = false;
  autopilot pilot(opt, fp::float16_range, member_params());
  for (int i = 0; i < 100; ++i) pilot.observe(std::ldexp(1.0, -30));
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.action, autopilot_action::fail);
  EXPECT_EQ(v.cause, autopilot_cause::subnormal_drift);
}

TEST(Autopilot, NonfiniteShadowDemandsRollback) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  pilot.observe(std::numeric_limits<double>::quiet_NaN());
  const autopilot_verdict v = pilot.assess(0);
  EXPECT_EQ(v.cause, autopilot_cause::nonfinite_shadow);
  EXPECT_TRUE(v.rollback);  // the live state is already poisoned
  // No range picture -> no shift to try: straight to promotion.
  EXPECT_EQ(v.action, autopilot_action::promote);
}

TEST(Autopilot, ReactiveLadderRetriesThenPromotes) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());

  // First sentinel trip with no range picture: a plain rollback+retry.
  const autopilot_verdict first = pilot.on_numerical_error(0);
  EXPECT_EQ(first.action, autopilot_action::retry);
  EXPECT_EQ(first.cause, autopilot_cause::numerical_error);
  EXPECT_TRUE(first.rollback);
  EXPECT_EQ(pilot.failures(), 1);

  // A second trip on the same rung escalates.
  const autopilot_verdict second = pilot.on_numerical_error(0);
  EXPECT_EQ(second.action, autopilot_action::promote);
  EXPECT_TRUE(second.rollback);

  // A fresh rung gets a fresh reactive ladder.
  pilot.note_promotion(fp::bfloat16_range, 0);
  EXPECT_EQ(pilot.failures(), 0);
  EXPECT_EQ(pilot.on_numerical_error(0).action, autopilot_action::retry);
}

TEST(Autopilot, ReactivePathUsesTheLatestRangePicture) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot pilot(opt, fp::float16_range, member_params());
  // A healthy-but-off-centre window: exponent -10 is inside float16's
  // normal range, so assess() answers none — but it remembers the
  // centring shift choose_scaling would apply.
  for (int i = 0; i < 1000; ++i) pilot.observe(std::ldexp(1.0, -10));
  ASSERT_EQ(pilot.assess(0).action, autopilot_action::none);

  // When the sentinel trips before the next check, the first repair
  // uses that picture: rescale instead of a blind retry.
  const autopilot_verdict v = pilot.on_numerical_error(0);
  EXPECT_EQ(v.action, autopilot_action::rescale);
  EXPECT_TRUE(v.rollback);
  EXPECT_GT(v.log2_scale, 0);
}

TEST(Autopilot, VerdictsAreDeterministic) {
  autopilot_options opt;
  opt.check_every = 1;
  autopilot a(opt, fp::float16_range, member_params());
  autopilot b(opt, fp::float16_range, member_params());
  const swm::state<double> s = uniform_state(16, 8, std::ldexp(1.0, -20));
  for (int round = 0; round < 3; ++round) {
    a.sample(s);
    b.sample(s);
    const autopilot_verdict va = a.assess(0);
    const autopilot_verdict vb = b.assess(0);
    EXPECT_EQ(va.action, vb.action);
    EXPECT_EQ(va.cause, vb.cause);
    EXPECT_EQ(va.log2_scale, vb.log2_scale);
    EXPECT_DOUBLE_EQ(va.subnormal_fraction, vb.subnormal_fraction);
    if (va.action == autopilot_action::rescale) {
      a.note_rescale(va.log2_scale);
      b.note_rescale(vb.log2_scale);
    }
  }
  EXPECT_EQ(a.checks(), b.checks());
  EXPECT_EQ(a.rescales(), b.rescales());
}

TEST(Autopilot, StripeRotatesThroughTheGrid) {
  autopilot_options opt;
  opt.check_every = 1;
  opt.stripe_rows = 3;  // does not divide ny = 8: rotation wraps
  autopilot pilot(opt, fp::float16_range, member_params(16, 8));

  // Mark one row with a magnitude far outside the rest; the rotating
  // stripe must eventually include it.
  swm::state<double> s = uniform_state(16, 8, 1.0);
  for (int i = 0; i < 16; ++i) s.eta(i, 5) = std::ldexp(1.0, -40);
  bool seen = false;
  for (int check = 0; check < 8 && !seen; ++check) {
    pilot.sample(s);
    seen = pilot.window().count(-40) > 0;
    (void)pilot.assess(0);
  }
  EXPECT_TRUE(seen);
}

TEST(Autopilot, StripeRowsClampToTheMemberGrid) {
  autopilot_options opt;
  opt.check_every = 1;
  opt.stripe_rows = 64;  // > ny: clamps to the whole grid
  autopilot pilot(opt, fp::float16_range, member_params(16, 8));
  const swm::state<double> s = uniform_state(16, 8, 1.0);
  pilot.sample(s);  // must not read out of bounds
  EXPECT_EQ(pilot.checks(), 1);
  EXPECT_GE(pilot.window().total(), 3u * 16u * 8u);
}
