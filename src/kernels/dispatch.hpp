#pragma once

/// \file dispatch.hpp
/// Runtime width policy and the dispatched entry points that tie the
/// fixed-width SIMD layer (simd.hpp, batched.hpp) to callers.
///
/// Two independent runtime choices exist:
///
///  * which *backend* the trampoline forwards to (registry.hpp — the
///    libblastrampoline analogue, selectable by name), and
///  * which *vector width* the width-generic entry points below run at
///    (this file). The policy is a single atomic: initialized once from
///    the host's CPU features (arch::preferred_vector_bits(), or the
///    TFX_SIMD_WIDTH build override), readable from any thread, and
///    hot-swappable under load — concurrent sweeps simply pick up the
///    new width on their next call, exactly like a trampoline retarget.
///
/// Width 0 means "scalar": the generic kernels run unvectorized. Every
/// nonzero width produces bit-identical results for element-wise
/// kernels (docs/KERNELS.md), so swapping mid-run never changes a
/// trajectory; reductions are deterministic *per width*.

#include <atomic>
#include <cstddef>
#include <span>
#include <type_traits>

#include "arch/features.hpp"
#include "fp/traits.hpp"
#include "kernels/batched.hpp"
#include "kernels/registry.hpp"

namespace tfx::kernels {

/// The width (bits) the dispatched kernels currently run at: 0
/// (scalar) or 128/256/512.
[[nodiscard]] std::size_t simd_width();

/// Retarget the width policy; false (and no change) unless bits is one
/// of 0/128/256/512. Safe under load from any thread.
bool set_simd_width(std::size_t bits);

/// The width the policy starts at: the TFX_SIMD_WIDTH build override
/// if set, else the widest the host executes natively.
[[nodiscard]] std::size_t default_simd_width();

/// Reset the policy to default_simd_width().
void reset_simd_width();

/// Run `f` with the compile-time width matching runtime `bits`
/// (which must be nonzero; callers handle scalar before switching).
template <typename F>
decltype(auto) with_simd_width(std::size_t bits, F&& f) {
  switch (bits) {
    case 512:
      return f(std::integral_constant<std::size_t, 512>{});
    case 256:
      return f(std::integral_constant<std::size_t, 256>{});
    default:
      return f(std::integral_constant<std::size_t, 128>{});
  }
}

// ---------------------------------------------------------------------------
// Batched trampolines. double/float forward to the *selected backend*
// (registry), so the batched path hot-swaps with set_current like the
// single-call path; soft-float and analysis types route by
// fp::vec_traits — widened types vectorize at the policy width, scalar
// types run the generic oracle.
// ---------------------------------------------------------------------------

template <typename T>
void axpy_batched_dispatch(std::span<const T> a, std::span<const T> x,
                           std::span<T> y, std::size_t n) {
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    blas_registry::instance().current()->axpy_batched(a, x, y, n);
  } else if constexpr (fp::vec_traits<T>::kind ==
                       fp::vectorizability::widened) {
    const std::size_t w = simd_width();
    if (w == 0) {
      axpy_batched_generic(a, x, y, n);
    } else {
      with_simd_width(w, [&](auto bits) {
        for (std::size_t b = 0; b < a.size(); ++b) {
          simd::axpy_widened<bits(), T>(a[b], x.subspan(b * n, n),
                                        y.subspan(b * n, n));
        }
      });
    }
  } else {
    axpy_batched_generic(a, x, y, n);
  }
}

template <typename T>
void dot_batched_dispatch(std::span<const T> x, std::span<const T> y,
                          std::span<T> out, std::size_t n) {
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    blas_registry::instance().current()->dot_batched(x, y, out, n);
  } else {
    dot_batched_generic(x, y, out, n);
  }
}

template <typename T>
void gemm_batched_dispatch(const gemm_batch_shape& s, T alpha,
                           std::span<const T> a, std::span<const T> b, T beta,
                           std::span<T> c) {
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    blas_registry::instance().current()->gemm_batched(s, alpha, a, b, beta, c);
  } else {
    gemm_batched_generic(s, alpha, a, b, beta, c);
  }
}

}  // namespace tfx::kernels
