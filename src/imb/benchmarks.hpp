#pragma once

/// \file benchmarks.hpp
/// IMB-style benchmark drivers over the simulated MPI.
///
/// These reproduce the measurement methodology of the Intel MPI
/// Benchmarks (and of MPIBenchmarks.jl, which mimics it): sweep message
/// sizes in powers of two, run many repetitions per size, report the
/// per-iteration latency; PingPong reports half the round-trip time and
/// the derived throughput. The harness personality (dispatch overhead,
/// cache avoidance) is injected through a binding_profile.
///
/// PingPong runs on the threaded runtime (2 ranks, real messages);
/// collectives run through the discrete-event engine so the paper's
/// 1536-rank configuration is reachable.

#include <cstddef>
#include <vector>

#include "arch/a64fx.hpp"
#include "imb/binding.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/des.hpp"
#include "mpisim/network.hpp"

namespace tfx::imb {

/// One point of a latency curve.
struct measurement {
  std::size_t bytes = 0;
  double latency_s = 0;
  double throughput_Bps = 0;  ///< bytes / latency (PingPong only)
};

/// Message sizes 2^lo .. 2^hi inclusive, plus 0 if `include_zero`.
std::vector<std::size_t> power_of_two_sizes(unsigned lo, unsigned hi,
                                            bool include_zero = false);

/// Which collective to drive (the three panels of Fig. 3 plus extras).
enum class collective_kind {
  allreduce,
  reduce,
  gatherv,
  bcast,
  barrier,
  allgather,
  /// Node-leader composition (hierarchical.hpp); `algo` selects the
  /// leader-phase algorithm.
  hierarchical_allreduce,
};

/// Everything a benchmark run needs to know about the machine/fabric.
struct bench_config {
  arch::a64fx_params machine{};
  mpisim::tofud_params net{};
  int warmup = 2;
  int repetitions = 6;
};

/// IMB PingPong between ranks 0 and 1 placed on two distinct nodes.
/// Latency is half the round trip, as IMB defines it.
std::vector<measurement> run_pingpong(const binding_profile& binding,
                                      const bench_config& config,
                                      const std::vector<std::size_t>& sizes);

/// IMB PingPing: both ranks send simultaneously, then receive; the
/// latency is a full (overlapped) exchange. Stresses the duplex path -
/// with the LogGP port model each direction has its own wire, so
/// PingPing latency stays close to PingPong's despite double traffic.
std::vector<measurement> run_pingping(const binding_profile& binding,
                                      const bench_config& config,
                                      const std::vector<std::size_t>& sizes);

/// IMB Sendrecv over a periodic chain of `ranks`: everyone sends right
/// and receives from the left each iteration; reported latency is the
/// per-iteration time of the slowest rank, throughput counts 2x the
/// payload per rank as IMB does.
std::vector<measurement> run_sendrecv(const binding_profile& binding,
                                      const bench_config& config, int ranks,
                                      const std::vector<std::size_t>& sizes);

/// IMB Exchange: every rank exchanges with BOTH chain neighbours each
/// iteration (4 messages per rank: 2 sends + 2 receives).
std::vector<measurement> run_exchange(const binding_profile& binding,
                                      const bench_config& config, int ranks,
                                      const std::vector<std::size_t>& sizes);

/// Collective latency (t_max over ranks per iteration, IMB's headline
/// number) on an arbitrary placement via the discrete-event engine.
/// `opts` selects the fabric model (uncontended endpoint ports vs
/// per-link contention, docs/TOPOLOGY.md).
std::vector<measurement> run_collective(
    collective_kind kind, const binding_profile& binding,
    const bench_config& config, const mpisim::torus_placement& place,
    const std::vector<std::size_t>& sizes,
    mpisim::coll_algorithm algo = mpisim::coll_algorithm::automatic,
    mpisim::des_options opts = {});

/// The Fig. 3 allocation: 384 nodes as a 4x6x16 torus, 4 ranks per
/// node = 1536 ranks ("-L node=4x6x16:torus -mpi proc=1536").
mpisim::torus_placement fugaku_fig3_placement();

}  // namespace tfx::imb
