// Figure 3: latency of collective operations - Allreduce (top),
// Gatherv (middle), Reduce (bottom) - MPI.jl vs IMB (C) at 1536 ranks
// on 384 nodes in a 4x6x16 torus allocation, via the discrete-event
// engine (the threaded runtime cross-validates it in the tests).

#include <cstdio>
#include <iostream>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "imb/benchmarks.hpp"

using namespace tfx;
using namespace tfx::imb;

namespace {

void panel(const char* title, collective_kind kind,
           const bench_config& config, unsigned hi) {
  const auto place = fugaku_fig3_placement();
  const auto sizes = power_of_two_sizes(2, hi);
  const auto jl = run_collective(kind, mpi_jl, config, place, sizes);
  const auto ic = run_collective(kind, imb_c, config, place, sizes);

  table t({"bytes", "MPI.jl", "IMB (C)", "jl/imb"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.add_row({format_bytes(sizes[i]), format_seconds(jl[i].latency_s),
               format_seconds(ic[i].latency_s),
               format_fixed(jl[i].latency_s / ic[i].latency_s, 3)});
  }
  std::printf("\n== Fig. 3 panel: %s, 1536 ranks / 384 nodes ==\n", title);
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv, {{"max-log2", "largest message exponent (default 22)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const auto hi = static_cast<unsigned>(args.get_int("max-log2", 22));

  std::puts(
      "Reproduction of Fig. 3 (collectives on the 4x6x16 torus, 1536 ranks).");
  std::puts("Expected shape: MPI.jl overhead visible only at small sizes,");
  std::puts("vanishing (ratio -> 1) for large messages; no Allreduce");
  std::puts("performance drop at large sizes.");

  const bench_config config;
  panel("MPI_Allreduce", collective_kind::allreduce, config, hi);
  panel("MPI_Gatherv", collective_kind::gatherv, config, hi);
  panel("MPI_Reduce", collective_kind::reduce, config, hi);
  return 0;
}
