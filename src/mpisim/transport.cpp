#include "mpisim/transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/contracts.hpp"
#include "mpisim/socket_transport.hpp"

namespace tfx::mpisim {

// ---------------------------------------------------------------------------
// channel_store - per-source FIFO channels with per-destination wakeup
// (the layout of a real shared-memory ring transport; shared by the
// shm and socket protocols).
// ---------------------------------------------------------------------------

namespace detail {

void channel_store::configure(int ranks) {
  const std::scoped_lock lock(mutex_);
  chan_.resize(static_cast<std::size_t>(ranks));
}

void channel_store::purge_below(std::uint32_t epoch) {
  {
    const std::scoped_lock lock(mutex_);
    for (auto& q : chan_) {
      std::erase_if(q, [epoch](const wire_message& m) {
        return m.epoch < epoch;
      });
    }
  }
  arrived_.notify_all();
}

void channel_store::raise_floor(std::uint32_t epoch) {
  {
    const std::scoped_lock lock(mutex_);
    floor_ = std::max(floor_, epoch);
    for (auto& q : chan_) {
      std::erase_if(q, [this](const wire_message& m) {
        return m.epoch < floor_;
      });
    }
  }
  arrived_.notify_all();
}

void channel_store::deposit(wire_message msg, bool front) {
  {
    const std::scoped_lock lock(mutex_);
    if (msg.epoch < floor_) return;  // stale straggler: fenced off
    auto& q = chan_[static_cast<std::size_t>(msg.source)];
    if (front) {
      q.push_front(std::move(msg));
    } else {
      q.push_back(std::move(msg));
    }
  }
  arrived_.notify_all();
}

wire_message channel_store::collect(int src, int tag) {
  std::unique_lock lock(mutex_);
  const std::size_t lo = src == any_source ? 0
                                                    : static_cast<std::size_t>(src);
  const std::size_t hi =
      src == any_source ? chan_.size() : static_cast<std::size_t>(src) + 1;
  for (;;) {
    for (std::size_t s = lo; s < hi; ++s) {
      auto& q = chan_[s];
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->kind != msg_kind::payload) continue;
        if (tag != any_tag && it->tag != tag) continue;
        wire_message msg = std::move(*it);
        q.erase(it);
        return msg;
      }
    }
    // No payload matches: a dead channel from the awaited source ends
    // the wait (the notice stays queued - the channel will not heal).
    for (std::size_t s = lo; s < hi; ++s) {
      for (const auto& m : chan_[s]) {
        if (m.kind == msg_kind::transport_down) return m;
      }
    }
    arrived_.wait(lock);
  }
}

wire_message channel_store::collect_faulty(int src, int tag) {
  std::unique_lock lock(mutex_);
  const std::size_t lo = src == any_source ? 0
                                                    : static_cast<std::size_t>(src);
  const std::size_t hi =
      src == any_source ? chan_.size() : static_cast<std::size_t>(src) + 1;
  for (;;) {
    // Pass 1: real traffic, lowest sequence number first (ties: lowest
    // source) so a reordered queue still delivers per-stream in order.
    std::deque<wire_message>* best_q = nullptr;
    std::deque<wire_message>::iterator best;
    for (std::size_t s = lo; s < hi; ++s) {
      auto& q = chan_[s];
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->kind == msg_kind::crash_notice ||
            it->kind == msg_kind::transport_down) {
          continue;
        }
        if (tag != any_tag && it->tag != tag) continue;
        if (best_q == nullptr || it->seq < best->seq ||
            (it->seq == best->seq && it->source < best->source)) {
          best_q = &q;
          best = it;
        }
      }
    }
    if (best_q != nullptr) {
      wire_message msg = std::move(*best);
      best_q->erase(best);
      return msg;
    }
    // Pass 2: only when no real message matches may a notice fire -
    // the awaited message will never arrive. Left in the queue: it
    // poisons every later collect too.
    for (std::size_t s = lo; s < hi; ++s) {
      for (const auto& m : chan_[s]) {
        if (m.kind == msg_kind::crash_notice ||
            m.kind == msg_kind::transport_down) {
          return m;
        }
      }
    }
    arrived_.wait(lock);
  }
}

}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// simulated - the historical mailbox fabric, verbatim: one FIFO deque
// per destination, arrival-order scan. The deterministic bit-level
// oracle every other transport is pinned against.
// ---------------------------------------------------------------------------

class sim_transport final : public transport {
 public:
  explicit sim_transport(int ranks) : ranks_(ranks) {
    boxes_.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      boxes_.push_back(std::make_unique<mailbox>());
    }
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "simulated";
  }
  [[nodiscard]] int ranks() const noexcept override { return ranks_; }

  void reset() override {
    for (auto& box : boxes_) {
      const std::scoped_lock lock(box->mutex);
      box->queue.clear();
    }
  }

  void deposit(int dst, wire_message msg, bool front) override {
    mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
    {
      const std::scoped_lock lock(box.mutex);
      if (front) {
        box.queue.push_front(std::move(msg));
      } else {
        box.queue.push_back(std::move(msg));
      }
    }
    box.arrived.notify_all();
  }

  [[nodiscard]] wire_message collect(int dst, int src, int tag) override {
    mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
    std::unique_lock lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->kind != msg_kind::payload) continue;
        const bool src_ok = src == any_source || it->source == src;
        const bool tag_ok = tag == any_tag || it->tag == tag;
        if (src_ok && tag_ok) {
          wire_message msg = std::move(*it);
          box.queue.erase(it);
          return msg;
        }
      }
      for (const auto& m : box.queue) {
        if (m.kind == msg_kind::transport_down &&
            (src == any_source || m.source == src)) {
          return m;  // stays queued: the channel will not heal
        }
      }
      box.arrived.wait(lock);
    }
  }

  [[nodiscard]] wire_message collect_faulty(int dst, int src,
                                            int tag) override {
    mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
    std::unique_lock lock(box.mutex);
    for (;;) {
      // Pass 1: real traffic, lowest sequence number first so a
      // reordered queue still delivers per-stream in order.
      auto best = box.queue.end();
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->kind == msg_kind::crash_notice ||
            it->kind == msg_kind::transport_down) {
          continue;
        }
        const bool src_ok = src == any_source || it->source == src;
        const bool tag_ok = tag == any_tag || it->tag == tag;
        if (!src_ok || !tag_ok) continue;
        if (best == box.queue.end() || it->seq < best->seq ||
            (it->seq == best->seq && it->source < best->source)) {
          best = it;
        }
      }
      if (best != box.queue.end()) {
        wire_message msg = std::move(*best);
        box.queue.erase(best);
        return msg;
      }
      // Pass 2: only when no real message matches may a notice fire -
      // the awaited message will never arrive.
      for (auto& m : box.queue) {
        if (m.kind != msg_kind::crash_notice &&
            m.kind != msg_kind::transport_down) {
          continue;
        }
        if (src == any_source || m.source == src) {
          return m;  // left in the queue: it poisons every later recv
        }
      }
      box.arrived.wait(lock);
    }
  }

  void broadcast_crash(int source, double vtime) override {
    for (int dst = 0; dst < ranks_; ++dst) {
      if (dst == source) continue;
      deposit(dst,
              wire_message{source, 0, vtime, {}, 0, 0,
                           msg_kind::crash_notice},
              false);
    }
  }

  void drain(int dst) override {
    mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
    const std::scoped_lock lock(box.mutex);
    box.queue.clear();
  }

 private:
  struct mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<wire_message> queue;
  };

  int ranks_;
  std::vector<std::unique_ptr<mailbox>> boxes_;
};

// ---------------------------------------------------------------------------
// shm - per-(src,dst) FIFO channels (channel_store). Same matching
// contract as the oracle, different storage geometry: senders lock
// only their target and each stream has its own queue.
// ---------------------------------------------------------------------------

class shm_transport final : public transport {
 public:
  explicit shm_transport(int ranks) : ranks_(ranks) {
    stores_.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      stores_.push_back(std::make_unique<detail::channel_store>());
      stores_.back()->configure(ranks);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "shm"; }
  [[nodiscard]] int ranks() const noexcept override { return ranks_; }

  void reset() override {
    for (auto& s : stores_) s->clear();
  }

  void deposit(int dst, wire_message msg, bool front) override {
    stores_[static_cast<std::size_t>(dst)]->deposit(std::move(msg), front);
  }

  [[nodiscard]] wire_message collect(int dst, int src, int tag) override {
    return stores_[static_cast<std::size_t>(dst)]->collect(src, tag);
  }

  [[nodiscard]] wire_message collect_faulty(int dst, int src,
                                            int tag) override {
    return stores_[static_cast<std::size_t>(dst)]->collect_faulty(src, tag);
  }

  void broadcast_crash(int source, double vtime) override {
    for (int dst = 0; dst < ranks_; ++dst) {
      if (dst == source) continue;
      deposit(dst,
              wire_message{source, 0, vtime, {}, 0, 0,
                           msg_kind::crash_notice},
              false);
    }
  }

  void drain(int dst) override {
    stores_[static_cast<std::size_t>(dst)]->clear();
  }

 private:
  int ranks_;
  std::vector<std::unique_ptr<detail::channel_store>> stores_;
};

}  // namespace

// ---------------------------------------------------------------------------
// transport_manager
// ---------------------------------------------------------------------------

transport_kind transport_manager::parse(std::string_view name) {
  if (name == "simulated" || name == "sim") return transport_kind::simulated;
  if (name == "shm") return transport_kind::shm;
  if (name == "socket" || name == "tcp") return transport_kind::socket;
  throw std::invalid_argument("unknown transport '" + std::string(name) +
                              "' (expected simulated|shm|socket)");
}

const char* transport_manager::name_of(transport_kind kind) noexcept {
  switch (kind) {
    case transport_kind::simulated: return "simulated";
    case transport_kind::shm: return "shm";
    case transport_kind::socket: return "socket";
  }
  return "?";
}

std::unique_ptr<transport> transport_manager::make(
    int ranks, const transport_options& options) {
  TFX_EXPECTS(ranks > 0);
  switch (options.kind) {
    case transport_kind::simulated:
      return std::make_unique<sim_transport>(ranks);
    case transport_kind::shm:
      return std::make_unique<shm_transport>(ranks);
    case transport_kind::socket:
      return make_socket_transport(ranks, options.socket);
  }
  TFX_EXPECTS(false && "unreachable transport kind");
  return nullptr;
}

bool transport_manager::loopback_available() noexcept {
  return socket_loopback_available();
}

}  // namespace tfx::mpisim
