// Figure 3: latency of collective operations - Allreduce (top),
// Gatherv (middle), Reduce (bottom) - MPI.jl vs IMB (C) at 1536 ranks
// on 384 nodes in a 4x6x16 torus allocation, via the discrete-event
// engine (the threaded runtime cross-validates it in the tests).
//
// The extra "contended" column prices the same IMB run on the
// per-link store-and-forward fabric (docs/TOPOLOGY.md); the paper's
// machine is uncontended at these message sizes for Allreduce but the
// single-sink Gatherv shows the congestion cliff.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "imb/benchmarks.hpp"

using namespace tfx;
using namespace tfx::imb;

namespace {

struct json_row {
  const char* panel = "";
  std::size_t bytes = 0;
  double mpi_jl_s = 0;
  double imb_c_s = 0;
  double imb_c_contended_s = 0;
};

void panel(const char* title, collective_kind kind,
           const bench_config& config, unsigned hi,
           std::vector<json_row>& json_rows) {
  const auto place = fugaku_fig3_placement();
  const auto sizes = power_of_two_sizes(2, hi);
  const auto jl = run_collective(kind, mpi_jl, config, place, sizes);
  const auto ic = run_collective(kind, imb_c, config, place, sizes);
  mpisim::des_options contended;
  contended.fabric = mpisim::fabric_mode::contended;
  const auto cc =
      run_collective(kind, imb_c, config, place, sizes,
                     mpisim::coll_algorithm::automatic, contended);

  table t({"bytes", "MPI.jl", "IMB (C)", "jl/imb", "contended", "cont/imb"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.add_row({format_bytes(sizes[i]), format_seconds(jl[i].latency_s),
               format_seconds(ic[i].latency_s),
               format_fixed(jl[i].latency_s / ic[i].latency_s, 3),
               format_seconds(cc[i].latency_s),
               format_fixed(cc[i].latency_s / ic[i].latency_s, 2)});
    json_rows.push_back({title, sizes[i], jl[i].latency_s, ic[i].latency_s,
                         cc[i].latency_s});
  }
  std::printf("\n== Fig. 3 panel: %s, 1536 ranks / 384 nodes ==\n", title);
  t.print(std::cout);
}

void write_json(const std::string& path, const std::vector<json_row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig3_collectives\",\n");
  std::fprintf(f, "  \"ranks\": 1536,\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"panel\": \"%s\", \"bytes\": %zu, "
                 "\"mpi_jl_s\": %.6e, \"imb_c_s\": %.6e, "
                 "\"imb_c_contended_s\": %.6e}%s\n",
                 r.panel, r.bytes, r.mpi_jl_s, r.imb_c_s, r.imb_c_contended_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"max-log2", "largest message exponent (default 22)"},
            {"json", "output path (default BENCH_topology_fig3.json)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const auto hi = static_cast<unsigned>(args.get_int("max-log2", 22));
  const std::string json =
      args.get_string("json", "BENCH_topology_fig3.json");

  std::puts(
      "Reproduction of Fig. 3 (collectives on the 4x6x16 torus, 1536 ranks).");
  std::puts("Expected shape: MPI.jl overhead visible only at small sizes,");
  std::puts("vanishing (ratio -> 1) for large messages; no Allreduce");
  std::puts("performance drop at large sizes. The contended column shows");
  std::puts("the link-level fabric model: near 1x for Allreduce, a cliff");
  std::puts("for the single-sink Gatherv.");

  std::vector<json_row> rows;
  const bench_config config;
  panel("MPI_Allreduce", collective_kind::allreduce, config, hi, rows);
  panel("MPI_Gatherv", collective_kind::gatherv, config, hi, rows);
  panel("MPI_Reduce", collective_kind::reduce, config, hi, rows);
  write_json(json, rows);
  return 0;
}
