#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace tfx::stats {

double min(std::span<const double> xs) {
  TFX_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  TFX_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double mean(std::span<const double> xs) {
  TFX_EXPECTS(!xs.empty());
  double acc = 0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  TFX_EXPECTS(!xs.empty());
  TFX_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double geomean(std::span<const double> xs) {
  TFX_EXPECTS(!xs.empty());
  double acc = 0;
  for (double x : xs) {
    TFX_EXPECTS(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

summary summarize(std::span<const double> xs) {
  summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.min = min(xs);
  s.max = max(xs);
  s.mean = mean(xs);
  s.median = median(xs);
  s.stddev = stddev(xs);
  return s;
}

}  // namespace tfx::stats
