#pragma once

/// \file des.hpp
/// Discrete-event execution of sim_programs.
///
/// Walks the per-rank op lists with the *same* clock-update rules the
/// threaded runtime applies (runtime.hpp header comment), using
/// per-(src,dst) FIFO message queues instead of real data. This is how
/// the Fig. 3 benchmarks time collectives at 1536 ranks in
/// milliseconds of host time.

#include <vector>

#include "mpisim/network.hpp"
#include "mpisim/patterns.hpp"

namespace tfx::mpisim {

/// Result of simulating one program.
struct des_result {
  std::vector<double> clocks;  ///< per-rank completion times

  /// The collective's latency as IMB reports it: the maximum over
  /// ranks (time until the slowest rank finished).
  [[nodiscard]] double max_clock() const;
  [[nodiscard]] double min_clock() const;
  [[nodiscard]] double avg_clock() const;
};

/// Execute `prog` over the modeled network. `start_clocks`, if
/// non-empty, seeds each rank's clock (e.g. to chain iterations);
/// otherwise all ranks start at 0. Aborts on deadlock (malformed
/// program), which cannot happen for the generators in patterns.hpp.
des_result simulate(const sim_program& prog, const tofud_params& net,
                    const torus_placement& place,
                    std::vector<double> start_clocks = {});

}  // namespace tfx::mpisim
