#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/table.hpp"

namespace tfx::obs {

namespace {

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string format_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void metrics_registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void metrics_registry::clear() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

tfx::table metrics_registry::to_table() const {
  const std::scoped_lock lock(mutex_);
  tfx::table t({"metric", "type", "value"});
  for (const auto& [name, c] : counters_)
    t.add_row({name, "counter", format_u64(c->value())});
  for (const auto& [name, g] : gauges_)
    t.add_row({name, "gauge", format_f64(g->value())});
  for (const auto& [name, h] : histograms_) {
    for (std::size_t i = 0; i + 1 < h->buckets(); ++i) {
      t.add_row({name + "[le=" + format_f64(h->upper(i)) + "]", "histogram",
                 format_u64(h->count(i))});
    }
    t.add_row({name + "[le=+inf]", "histogram",
               format_u64(h->count(h->buckets() - 1))});
  }
  return t;
}

}  // namespace tfx::obs
