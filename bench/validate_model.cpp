// Model validation: the analytic bandwidth blend of arch::predict
// against the trace-driven LRU cache simulator, on the axpy access
// pattern (2 streaming reads + 1 streaming write over 2 arrays).
//
// For each working-set size the simulator reports where the traffic
// was actually served (L1 / L2 / memory, in bytes); the analytic model
// asserts residency fractions f1/f2/fm. The two must tell the same
// story at every regime and disagree only in the transition bands -
// this bench prints both side by side so the claim is inspectable.

#include <cstdio>
#include <iostream>

#include "arch/cache.hpp"
#include "arch/roofline.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

using namespace tfx;
using namespace tfx::arch;

int main() {
  std::puts("Analytic residency fractions vs trace-driven cache simulation");
  std::puts("(axpy pattern: x read, y read+write, steady state).\n");

  table t({"n (doubles)", "working set", "sim L1 share", "sim L2 share",
           "sim mem share", "model f1", "model f2", "model fm",
           "model BW GB/s"});

  for (std::size_t n = 512; n <= (1u << 21); n *= 4) {
    const std::size_t ws = 2 * n * 8;

    // Steady state: two passes, stats from the second.
    cache_hierarchy sim;
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 1) sim.reset_stats();
      sim.stream(0, n * 8, 256, false);          // x read
      sim.stream(1ull << 33, n * 8, 256, false); // y read
      sim.stream(1ull << 33, n * 8, 256, true);  // y write
    }
    const auto traffic = sim.traffic();
    const double total = static_cast<double>(
        traffic.l1_bytes + traffic.l2_bytes + traffic.mem_bytes);
    const double s1 = static_cast<double>(traffic.l1_bytes) / total;
    const double s2 = static_cast<double>(traffic.l2_bytes) / total;
    const double sm = static_cast<double>(traffic.mem_bytes) / total;

    // The analytic fractions used by effective_bandwidth_gbs.
    const double wsd = static_cast<double>(ws);
    const double e1 = 0.80 * static_cast<double>(fugaku_node.l1.size_bytes);
    const double e2 = 0.85 * static_cast<double>(fugaku_node.l2.size_bytes);
    const double f1 = std::min(1.0, e1 / wsd);
    const double f2 = std::min(1.0 - f1, std::max(0.0, (e2 - e1) / wsd));
    const double fm = std::max(0.0, 1.0 - f1 - f2);

    t.add_row({std::to_string(n), format_bytes(ws), format_fixed(s1, 3),
               format_fixed(s2, 3), format_fixed(sm, 3), format_fixed(f1, 3),
               format_fixed(f2, 3), format_fixed(fm, 3),
               format_fixed(effective_bandwidth_gbs(fugaku_node, ws), 1)});
  }
  t.print(std::cout);

  std::puts("\nBoth instruments agree on the regime at every size: all-L1");
  std::puts("below 50 KiB, all-L2 between ~100 KiB and ~7 MiB, memory");
  std::puts("beyond. The analytic blend smooths the transitions (partial");
  std::puts("residency), which is the behaviour real caches show between");
  std::puts("regimes; the simulator's line-granular counts bracket it.");
  return 0;
}
