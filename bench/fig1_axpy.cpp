// Figure 1: axpy GFLOPS vs vector length for Float16/Float32/Float64,
// Julia's generic kernel vs Fujitsu BLAS, BLIS, OpenBLAS and ARMPL on
// one A64FX core.
//
// The modeled machine (arch::) supplies the A64FX numbers; a host
// wall-clock column for the generic kernel at Float32/Float64 is
// printed as a sanity check of the *shape* (it shows the same
// cache-cliff structure on the build machine). Per the paper, only the
// generic kernel has a Float16 implementation at all.

#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/roofline.hpp"
#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "fp/float16.hpp"
#include "fp/traits.hpp"
#include "kernels/generic.hpp"
#include "kernels/registry.hpp"

using namespace tfx;
using tfx::fp::float16;

namespace {

/// Host wall-clock GFLOPS of the generic axpy at type T.
template <typename T>
double host_gflops(std::size_t n) {
  std::vector<T> x(n, T(1.5)), y(n, T(0.25));
  const T a = T(0.999);
  const auto t = measure([&] {
    kernels::axpy(a, std::span<const T>(x), std::span<T>(y));
  });
  return gflops(2.0 * static_cast<double>(n), t.min());
}

template <typename T>
void panel(bool with_host, std::size_t max_log2) {
  const auto& machine = arch::fugaku_node;
  auto& reg = kernels::blas_registry::instance();
  const auto names = reg.names();

  std::vector<std::string> header{"n", "bytes"};
  for (const auto& name : names) header.emplace_back(name);
  if (with_host) header.emplace_back("host(Julia)");
  table t(header);

  for (std::size_t e = 4; e <= max_log2; e += 1) {
    const std::size_t n = std::size_t{1} << e;
    std::vector<std::string> row{std::to_string(n),
                                 format_bytes(n * sizeof(T))};
    for (const auto& name : names) {
      const auto backend = reg.find(name);
      if constexpr (std::is_same_v<T, float16>) {
        if (!backend->supports_float16()) {
          // "half-precision implementations of axpy are not available
          // for the other binary libraries" (Fig. 1 caption).
          row.emplace_back("n/a");
          continue;
        }
      }
      const auto profile = backend->axpy_profile(sizeof(T));
      const auto m = arch::predict(machine, profile, n, sizeof(T),
                                   2 * n * sizeof(T));
      row.push_back(format_fixed(m.gflops, 2));
    }
    if (with_host) {
      if constexpr (std::is_same_v<T, float16>) {
        row.emplace_back("-");  // soft-float wall clock is meaningless
      } else {
        row.push_back(format_fixed(host_gflops<T>(n), 2));
      }
    }
    t.add_row(std::move(row));
  }
  std::printf("\n== Fig. 1 panel: %s axpy, modeled A64FX GFLOPS ==\n",
              std::string(fp::precision_traits<T>::name).c_str());
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"host", "also measure host wall-clock for the generic kernel"},
            {"max-log2", "largest vector length exponent (default 22)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const bool host = !args.has("no-host");
  const auto max_log2 =
      static_cast<std::size_t>(args.get_int("max-log2", 22));

  std::puts("Reproduction of Fig. 1 (axpy on one A64FX core).");
  std::puts("Expected shape: Julia best peak everywhere; Fujitsu BLAS");
  std::puts("competitive; BLIS behind; OpenBLAS/ARMPL (NEON path) last;");
  std::puts("Float16 only exists for Julia; cache cliffs at L1/L2.");

  panel<float16>(false, max_log2);
  panel<float>(host, max_log2);
  panel<double>(host, max_log2);

  // The headline ratios the paper's text quotes.
  const auto& machine = arch::fugaku_node;
  auto julia16 = arch::predict(
      machine,
      kernels::blas_registry::instance().find("Julia")->axpy_profile(2),
      1 << 12, 2, 2 * (1 << 12) * 2);
  auto julia64 = arch::predict(
      machine,
      kernels::blas_registry::instance().find("Julia")->axpy_profile(8),
      1 << 12, 8, 2 * (1 << 12) * 8);
  std::printf("\nIn-cache Float16/Float64 throughput ratio (Julia): %.2fx\n",
              julia16.gflops / julia64.gflops);
  return 0;
}
