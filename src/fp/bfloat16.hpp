#pragma once

/// \file bfloat16.hpp
/// Software bfloat16 (1+8+7) with the same extend-compute-truncate
/// semantics as tfx::fp::float16.
///
/// The paper (§ I) contrasts binary16 with bfloat16 as the two 16-bit
/// formats supported by modern accelerators; A64FX implements only
/// binary16, so bfloat16 is provided here for the cross-format studies
/// (range vs precision trade-off in the examples and tests) and is not
/// wired into the A64FX machine model's fast paths.

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <type_traits>

#include "fp/rounding.hpp"

namespace tfx::fp {

class bfloat16 {
 public:
  constexpr bfloat16() = default;

  explicit bfloat16(float f)
      : bits_(f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(f))) {}
  explicit bfloat16(double d) : bits_(f64_to_bf16_bits(d)) {}

  template <typename Int, typename = std::enable_if_t<std::is_integral_v<Int>>>
  explicit bfloat16(Int i) : bfloat16(static_cast<double>(i)) {}

  static constexpr bfloat16 from_bits(std::uint16_t bits) {
    bfloat16 b;
    b.bits_ = bits;
    return b;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  explicit operator float() const {
    return std::bit_cast<float>(bf16_bits_to_f32_bits(bits_));
  }
  explicit operator double() const { return static_cast<float>(*this); }

  [[nodiscard]] constexpr bool isnan() const {
    return ((bits_ & 0x7f80u) == 0x7f80u) && (bits_ & 0x7fu) != 0;
  }
  [[nodiscard]] constexpr bool isinf() const {
    return (bits_ & 0x7fffu) == 0x7f80u;
  }
  [[nodiscard]] constexpr bool isfinite() const {
    return (bits_ & 0x7f80u) != 0x7f80u;
  }
  [[nodiscard]] constexpr bool iszero() const {
    return (bits_ & 0x7fffu) == 0;
  }
  [[nodiscard]] constexpr bool signbit() const { return (bits_ & 0x8000u) != 0; }

  friend bfloat16 operator+(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) + static_cast<float>(b));
  }
  friend bfloat16 operator-(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) - static_cast<float>(b));
  }
  friend bfloat16 operator*(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) * static_cast<float>(b));
  }
  friend bfloat16 operator/(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) / static_cast<float>(b));
  }
  friend constexpr bfloat16 operator-(bfloat16 a) {
    return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u));
  }

  bfloat16& operator+=(bfloat16 o) { return *this = *this + o; }
  bfloat16& operator-=(bfloat16 o) { return *this = *this - o; }
  bfloat16& operator*=(bfloat16 o) { return *this = *this * o; }
  bfloat16& operator/=(bfloat16 o) { return *this = *this / o; }

  friend bool operator==(bfloat16 a, bfloat16 b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator!=(bfloat16 a, bfloat16 b) { return !(a == b); }
  friend bool operator<(bfloat16 a, bfloat16 b) {
    return static_cast<float>(a) < static_cast<float>(b);
  }
  friend bool operator>(bfloat16 a, bfloat16 b) { return b < a; }
  friend bool operator<=(bfloat16 a, bfloat16 b) {
    return static_cast<float>(a) <= static_cast<float>(b);
  }
  friend bool operator>=(bfloat16 a, bfloat16 b) { return b <= a; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bfloat16) == 2);
static_assert(std::is_trivially_copyable_v<bfloat16>);

inline bfloat16 muladd(bfloat16 x, bfloat16 y, bfloat16 z) {
  return x * y + z;
}
inline bfloat16 fma(bfloat16 x, bfloat16 y, bfloat16 z) {
  return bfloat16(std::fma(static_cast<double>(x), static_cast<double>(y),
                           static_cast<double>(z)));
}
inline bfloat16 abs(bfloat16 x) {
  return bfloat16::from_bits(static_cast<std::uint16_t>(x.bits() & 0x7fffu));
}
inline bfloat16 sqrt(bfloat16 x) {
  return bfloat16(std::sqrt(static_cast<float>(x)));
}
inline bfloat16 min(bfloat16 a, bfloat16 b) { return b < a ? b : a; }
inline bfloat16 max(bfloat16 a, bfloat16 b) { return a < b ? b : a; }
inline bool isnan(bfloat16 x) { return x.isnan(); }
inline bool isfinite(bfloat16 x) { return x.isfinite(); }

std::ostream& operator<<(std::ostream& os, bfloat16 b);

}  // namespace tfx::fp

template <>
class std::numeric_limits<tfx::fp::bfloat16> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr bool is_iec559 = true;
  static constexpr bool is_bounded = true;
  static constexpr bool is_modulo = false;
  static constexpr int digits = 8;
  static constexpr int digits10 = 2;
  static constexpr int max_digits10 = 4;
  static constexpr int radix = 2;
  static constexpr int min_exponent = -125;
  static constexpr int max_exponent = 128;
  static constexpr bool traps = false;

  static constexpr tfx::fp::bfloat16 min() noexcept {
    return tfx::fp::bfloat16::from_bits(0x0080);
  }
  static constexpr tfx::fp::bfloat16 max() noexcept {
    return tfx::fp::bfloat16::from_bits(0x7f7f);
  }
  static constexpr tfx::fp::bfloat16 lowest() noexcept {
    return tfx::fp::bfloat16::from_bits(0xff7f);
  }
  static constexpr tfx::fp::bfloat16 epsilon() noexcept {
    return tfx::fp::bfloat16::from_bits(0x3c00);  // 2^-7
  }
  static constexpr tfx::fp::bfloat16 infinity() noexcept {
    return tfx::fp::bfloat16::from_bits(0x7f80);
  }
  static constexpr tfx::fp::bfloat16 quiet_NaN() noexcept {
    return tfx::fp::bfloat16::from_bits(0x7fc0);
  }
  static constexpr tfx::fp::bfloat16 denorm_min() noexcept {
    return tfx::fp::bfloat16::from_bits(0x0001);
  }
};
