#pragma once

/// \file diagnostics.hpp
/// Conserved quantities and precision-comparison metrics, always
/// evaluated in double on the unscaled state (diagnosis is not part of
/// the precision experiment).

#include <cstddef>
#include <vector>

#include "swm/field.hpp"
#include "swm/params.hpp"

namespace tfx::swm {

struct diagnostics {
  double mass = 0;       ///< volume anomaly: sum(eta) dA  (conserved)
  double energy = 0;     ///< 0.5 sum(h0 (u^2+v^2) + g eta^2) dA
  double enstrophy = 0;  ///< 0.5 sum(zeta^2) dA
  double max_speed = 0;  ///< max(|u|, |v|)
  double cfl = 0;        ///< max_speed * dt / dx
  bool finite = true;    ///< no NaN/Inf anywhere
};

/// Evaluate all diagnostics for an unscaled double state.
diagnostics compute_diagnostics(const state<double>& s, const swm_params& p);

/// Relative vorticity zeta = dv/dx - du/dy at corner points (1/s).
field2d<double> relative_vorticity(const state<double>& s,
                                   const swm_params& p);

/// Root-mean-square difference of two same-shaped fields.
double rmse(const field2d<double>& a, const field2d<double>& b);

/// RMS of a field.
double rms(const field2d<double>& a);

/// Pearson correlation of two same-shaped fields (the Fig. 4
/// "qualitatively indistinguishable" check, made quantitative).
double correlation(const field2d<double>& a, const field2d<double>& b);

/// Zonal (x-direction) power spectrum, averaged over all rows: entry k
/// holds |DFT_k|^2 / nx summed over j, for k = 0 .. nx/2. Direct O(n^2)
/// evaluation - grids here are small, and it keeps the library free of
/// an FFT dependency. Used to compare the turbulence energy cascade
/// across precisions beyond point-wise error norms.
std::vector<double> zonal_power_spectrum(const field2d<double>& f);

}  // namespace tfx::swm
