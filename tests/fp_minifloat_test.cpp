// The generic minifloat template: exhaustive cross-validation against
// the dedicated float16 pipeline, plus the 8-bit formats.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "fp/float16.hpp"
#include "fp/minifloat.hpp"

using namespace tfx::fp;

TEST(Minifloat16, ExhaustiveWideningMatchesFloat16) {
  // minifloat<5,10> and float16 are the same format with independent
  // implementations; their widenings must agree on every bit pattern.
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto m = minifloat16::from_bits(static_cast<std::uint16_t>(bits));
    const auto h = float16::from_bits(static_cast<std::uint16_t>(bits));
    if (h.isnan()) {
      EXPECT_TRUE(m.isnan()) << std::hex << bits;
      continue;
    }
    EXPECT_EQ(static_cast<double>(m), static_cast<double>(h))
        << std::hex << bits;
  }
}

TEST(Minifloat16, RandomizedNarrowingMatchesFloat16) {
  // Two completely different rounding implementations (bit-twiddling +
  // round-to-odd vs ldexp/nearbyint) must produce identical RN-even
  // results for random doubles.
  tfx::xoshiro256 rng(2718);
  for (int trial = 0; trial < 300000; ++trial) {
    const double mag = std::ldexp(1.0, static_cast<int>(rng.bounded(50)) - 28);
    const double x = rng.uniform(-1.0, 1.0) * mag;
    const auto m = minifloat16(x);
    const auto h = float16(x);
    ASSERT_EQ(m.bits(), h.bits()) << "x=" << x;
  }
}

TEST(Minifloat16, CriticalBoundariesMatchFloat16) {
  for (const double x :
       {65504.0, 65519.999, 65520.0, 65536.0, std::ldexp(1.0, -24),
        std::ldexp(1.0, -25), std::ldexp(1.0, -14), 0.0, -0.0,
        1.0 + std::ldexp(1.0, -11), 1.0 + std::ldexp(1.0, -11) +
        std::ldexp(1.0, -30)}) {
    EXPECT_EQ(minifloat16(x).bits(), float16(x).bits()) << x;
    EXPECT_EQ(minifloat16(-x).bits(), float16(-x).bits()) << -x;
  }
}

TEST(Float8E5M2, FormatProperties) {
  // e5m2: bias 15, max = 1.75 * 2^15 = 57344, min normal 2^-14,
  // denorm min 2^-16.
  EXPECT_EQ(static_cast<double>(float8_e5m2::from_bits(0x7B)),  // 0 11110 11
            57344.0);
  EXPECT_EQ(static_cast<double>(float8_e5m2::from_bits(0x04)),  // 0 00001 00
            std::ldexp(1.0, -14));
  EXPECT_EQ(static_cast<double>(float8_e5m2::from_bits(0x01)),
            std::ldexp(1.0, -16));
  EXPECT_TRUE(float8_e5m2::from_bits(0x7C).isinf());
  EXPECT_TRUE(float8_e5m2::from_bits(0x7E).isnan());
}

TEST(Float8E4M3, FormatProperties) {
  // e4m3 (IEEE-style with infinities, unlike the OCP variant): bias 7,
  // max finite = 1.875 * 2^7 = 240, min normal 2^-6, denorm min 2^-9.
  EXPECT_EQ(static_cast<double>(float8_e4m3::from_bits(0x77)),  // 0 1110 111
            240.0);
  EXPECT_EQ(static_cast<double>(float8_e4m3::from_bits(0x08)),
            std::ldexp(1.0, -6));
  EXPECT_EQ(static_cast<double>(float8_e4m3::from_bits(0x01)),
            std::ldexp(1.0, -9));
  EXPECT_TRUE(float8_e4m3(300.0).isinf());  // overflow
}

TEST(Float8, ExhaustiveRoundTrip) {
  auto roundtrip = [](auto tag) {
    using F = decltype(tag);
    for (std::uint32_t bits = 0; bits < (1u << F::total_bits); ++bits) {
      const auto f = F::from_bits(static_cast<std::uint16_t>(bits));
      if (f.isnan()) continue;
      const auto back = F(static_cast<double>(f));
      EXPECT_EQ(back.bits(), f.bits()) << std::hex << bits;
    }
  };
  roundtrip(float8_e5m2{});
  roundtrip(float8_e4m3{});
}

TEST(Float8, ArithmeticAndOrdering) {
  const float8_e4m3 a(2.0), b(3.0);
  EXPECT_EQ(static_cast<double>(a + b), 5.0);
  EXPECT_EQ(static_cast<double>(a * b), 6.0);
  EXPECT_TRUE(a < b);
  EXPECT_EQ(static_cast<double>(-a), -2.0);
  EXPECT_EQ(static_cast<double>(abs(-a)), 2.0);
  // Coarse mantissa: 2.0 + 0.0625 stays 2.0 at e4m3 (ulp at 2 is 0.25).
  EXPECT_EQ(static_cast<double>(float8_e4m3(2.0) + float8_e4m3(0.0625)), 2.0);
}

TEST(Float8, TiesToEven) {
  // e4m3 around 1.0: ulp 2^-3. 1 + 2^-4 is a tie -> 1.0 (even);
  // 1 + 3*2^-4 is a tie -> 1.25 (even mantissa 010).
  EXPECT_EQ(static_cast<double>(float8_e4m3(1.0 + 0.0625)), 1.0);
  EXPECT_EQ(static_cast<double>(float8_e4m3(1.0 + 3 * 0.0625)), 1.25);
}

TEST(Minifloat, GenericKernelInstantiation) {
  // The type-flexibility claim extended to 8 bits: the same arithmetic
  // interface drives a tiny dot product.
  float8_e4m3 acc(0.0);
  for (int i = 1; i <= 4; ++i) {
    acc += float8_e4m3(i) * float8_e4m3(0.5);
  }
  EXPECT_EQ(static_cast<double>(acc), 5.0);  // 0.5+1+1.5+2
}

TEST(Float8, ExhaustiveArithmeticAgainstDoubleReference) {
  // Every finite e4m3 pair, all four operations: the operator (which
  // computes in double and rounds once through from_double) must equal
  // the independently-computed correctly rounded result. This is an
  // end-to-end audit of the generic conversion pipeline: 2 * ~57k
  // pairs * 4 ops.
  std::vector<float8_e4m3> finite;
  for (std::uint32_t bits = 0; bits < (1u << 8); ++bits) {
    const auto f = float8_e4m3::from_bits(static_cast<std::uint16_t>(bits));
    if (f.isfinite()) finite.push_back(f);
  }
  for (const auto a : finite) {
    const double da = static_cast<double>(a);
    for (const auto b : finite) {
      const double db = static_cast<double>(b);
      // Sums/differences/products of e4m3 values are exact in double,
      // so float8(exact) is the correctly rounded result by
      // construction; quotients are correctly rounded in double and
      // 53 >= 2*4+2 makes the second rounding innocuous.
      ASSERT_EQ((a + b).bits(), float8_e4m3(da + db).bits());
      ASSERT_EQ((a - b).bits(), float8_e4m3(da - db).bits());
      ASSERT_EQ((a * b).bits(), float8_e4m3(da * db).bits());
      if (db != 0.0) {
        ASSERT_EQ((a / b).bits(), float8_e4m3(da / db).bits());
      }
    }
  }
}
