// Cross-transport conformance suite for the pluggable channel layer
// (mpisim/transport.hpp, mpisim/socket_transport.hpp).
//
// The contract under test: everything above the transport seam -
// tagged matching, virtual time, the reliability protocol, the fault
// plane, rollback recovery, the halo engine - behaves *bit-identically*
// over every transport. The simulated mailbox fabric (the historical
// engine, pinned against the DES elsewhere) is the oracle; the shm and
// socket transports must reproduce its payloads, packed model states
// (Kahan compensation bits included), virtual clocks, chaos
// bookkeeping, and typed errors exactly. The socket transport must
// additionally turn real network failures - refused connects, peer
// death mid-message, truncated frames - into comm_error{transport_lost}
// within the retry/backoff budget instead of hanging, and a 4-rank
// model run split across four separate processes must produce the same
// bytes as the in-process oracle.
//
// Socket cases self-skip when the sandbox forbids loopback TCP.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/faultplane.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/socket_transport.hpp"
#include "mpisim/transport.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"
#include "swm/resilience.hpp"

using namespace tfx;
using namespace tfx::mpisim;

namespace {

transport_options topt_for(transport_kind kind) {
  transport_options topt;
  topt.kind = kind;
  return topt;
}

/// Socket scenarios self-skip where loopback TCP is forbidden.
#define SKIP_WITHOUT_LOOPBACK(kind)                                  \
  do {                                                               \
    if ((kind) == transport_kind::socket &&                          \
        !transport_manager::loopback_available()) {                  \
      GTEST_SKIP() << "loopback TCP unavailable in this sandbox";    \
    }                                                                \
  } while (0)

// ---------------------------------------------------------------------------
// Manager + wire-format units.
// ---------------------------------------------------------------------------

TEST(TransportManager, ParsesEveryRegisteredName) {
  EXPECT_EQ(transport_manager::parse("simulated"), transport_kind::simulated);
  EXPECT_EQ(transport_manager::parse("sim"), transport_kind::simulated);
  EXPECT_EQ(transport_manager::parse("shm"), transport_kind::shm);
  EXPECT_EQ(transport_manager::parse("socket"), transport_kind::socket);
  EXPECT_EQ(transport_manager::parse("tcp"), transport_kind::socket);
  EXPECT_THROW((void)transport_manager::parse("carrier-pigeon"),
               std::invalid_argument);
  EXPECT_THROW((void)transport_manager::parse(""), std::invalid_argument);
}

TEST(TransportManager, NamesRoundTripThroughParse) {
  for (const auto kind : {transport_kind::simulated, transport_kind::shm,
                          transport_kind::socket}) {
    EXPECT_EQ(transport_manager::parse(transport_manager::name_of(kind)),
              kind);
  }
}

TEST(TransportManager, InProcessProtocolsHostEveryRank) {
  for (const auto kind : {transport_kind::simulated, transport_kind::shm}) {
    const auto t = transport_manager::make(3, topt_for(kind));
    EXPECT_STREQ(t->name(), transport_manager::name_of(kind));
    EXPECT_EQ(t->ranks(), 3);
    EXPECT_EQ(t->local_rank_count(), 3);
    for (int r = 0; r < 3; ++r) EXPECT_TRUE(t->is_local(r));
  }
}

TEST(SockWire, FrameHeaderRoundTripsLittleEndian) {
  sockwire::frame_header h;
  h.kind = static_cast<std::uint8_t>(msg_kind::crash_notice);
  h.flags = sockwire::flag_front;
  h.source = 5;
  h.tag = -1;
  h.seq = 0x0123456789abcdefULL;
  h.checksum = 0xfeedfacecafef00dULL;
  h.depart_vtime = 3.5e-6;
  h.epoch = 7;
  h.payload_bytes = 4096;

  std::byte buf[sockwire::frame_header_bytes];
  sockwire::encode_header(h, buf);
  sockwire::frame_header back;
  ASSERT_TRUE(sockwire::decode_header(buf, back));
  EXPECT_EQ(back.magic, sockwire::frame_magic);
  EXPECT_EQ(back.version, sockwire::wire_version);
  EXPECT_EQ(back.kind, h.kind);
  EXPECT_EQ(back.flags, h.flags);
  EXPECT_EQ(back.source, h.source);
  EXPECT_EQ(back.tag, h.tag);
  EXPECT_EQ(back.seq, h.seq);
  EXPECT_EQ(back.checksum, h.checksum);
  EXPECT_EQ(back.depart_vtime, h.depart_vtime);
  EXPECT_EQ(back.epoch, h.epoch);
  EXPECT_EQ(back.payload_bytes, h.payload_bytes);
}

TEST(SockWire, RejectsForeignMagicAndVersion) {
  sockwire::frame_header h;
  std::byte buf[sockwire::frame_header_bytes];
  sockwire::encode_header(h, buf);
  sockwire::frame_header back;
  ASSERT_TRUE(sockwire::decode_header(buf, back));

  std::byte corrupt[sockwire::frame_header_bytes];
  std::memcpy(corrupt, buf, sizeof(buf));
  corrupt[0] = std::byte{0x00};  // magic
  EXPECT_FALSE(sockwire::decode_header(corrupt, back));

  std::memcpy(corrupt, buf, sizeof(buf));
  corrupt[4] = std::byte{0x7f};  // version
  EXPECT_FALSE(sockwire::decode_header(corrupt, back));
}

TEST(ChannelStore, EpochPurgeDropsOnlyStaleMessages) {
  tfx::mpisim::detail::channel_store store;
  store.configure(2);

  wire_message stale;
  stale.source = 1;
  stale.tag = 4;
  stale.seq = 1;
  stale.epoch = 1;
  wire_message fresh = stale;
  fresh.seq = 2;
  fresh.epoch = 2;
  fresh.payload.resize(8, std::byte{0x5a});
  store.deposit(stale, /*front=*/false);
  store.deposit(fresh, /*front=*/false);

  store.purge_below(2);  // the reset() fence
  const wire_message got = store.collect(1, 4);
  EXPECT_EQ(got.epoch, 2u);
  EXPECT_EQ(got.seq, 2u);
  EXPECT_EQ(got.payload, fresh.payload);

  // clear() empties everything: a re-deposited message is the only
  // one left to match.
  store.deposit(stale, false);
  store.clear();
  wire_message only = fresh;
  only.seq = 9;
  store.deposit(only, false);
  EXPECT_EQ(store.collect(1, 4).seq, 9u);
}

// ---------------------------------------------------------------------------
// The conformance matrix: transport x world size, every scenario
// bit-identical to the simulated oracle.
// ---------------------------------------------------------------------------

/// Deterministic ring exchange with per-message payload fingerprints;
/// returns every rank's concatenated received data. Rank counts of 1
/// degenerate to self-messaging, which must also conform.
std::vector<std::vector<double>> ring_run(world& w, int rounds) {
  const int p = w.size();
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  w.run([&](communicator& comm) {
    const int r = comm.rank();
    const int to = (r + 1) % p;
    const int from = (r + p - 1) % p;
    std::vector<double> acc;
    for (int round = 0; round < rounds; ++round) {
      std::vector<double> out(24 + static_cast<std::size_t>(r));
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = r * 1000.0 + round * 10.0 + static_cast<double>(i) * 0.25;
      }
      comm.send(std::span<const double>(out), to, round);
      std::vector<double> in(24 + static_cast<std::size_t>(from));
      comm.recv(std::span<double>(in), from, round);
      acc.insert(acc.end(), in.begin(), in.end());
      comm.advance(1e-7);
    }
    got[static_cast<std::size_t>(r)] = std::move(acc);
  });
  return got;
}

/// Chained allreduces (each round feeds the next); the final buffers
/// diffed bitwise. Several rounds so small worlds still carry enough
/// traffic for the chaos plane to fire.
std::vector<std::vector<double>> allreduce_run(world& w, std::size_t count,
                                               int rounds = 1) {
  const int p = w.size();
  std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
  w.run([&](communicator& comm) {
    std::vector<double> in(count);
    for (std::size_t i = 0; i < count; ++i) {
      in[i] = (comm.rank() + 1) * 0.5 + static_cast<double>(i) * 0.01;
    }
    std::vector<double> res(count);
    for (int round = 0; round < rounds; ++round) {
      allreduce(comm, std::span<const double>(in), std::span<double>(res),
                ops::sum{});
      for (std::size_t i = 0; i < count; ++i) in[i] = res[i] * 0.25;
    }
    got[static_cast<std::size_t>(comm.rank())] = std::move(res);
  });
  return got;
}

swm::swm_params small_params() {
  swm::swm_params p;
  p.nx = 32;
  p.ny = 16;
  return p;
}

struct rank_state {
  std::vector<double> packed;
  int steps = 0;
  swm::recovery_report report;
};

/// Distributed model run: halo exchanges every RK4 stage plus the
/// max-speed collective; packed state captures the Kahan bits.
std::vector<rank_state> halo_run(world& w, int steps) {
  const swm::swm_params params = small_params();
  swm::model<double> seeder(params);
  seeder.seed_random_eddies(7, 0.5);
  const swm::state<double> init = seeder.prognostic();
  std::vector<rank_state> out(static_cast<std::size_t>(w.size()));
  w.run([&](communicator& comm) {
    swm::distributed_model<double> dm(comm, params,
                                      swm::integration_scheme::compensated);
    dm.set_from_global(init);
    dm.run(steps);
    (void)dm.global_max_speed();
    auto& mine = out[static_cast<std::size_t>(comm.rank())];
    mine.packed.resize(dm.packed_size());
    dm.pack_state(std::span<double>(mine.packed));
    mine.steps = dm.steps_taken();
  });
  return out;
}

/// Resilient run under a crash schedule (swm/resilience.hpp).
std::vector<rank_state> recovery_run(world& w, int steps,
                                     const swm::resilience_options& opt) {
  const swm::swm_params params = small_params();
  swm::model<double> seeder(params);
  seeder.seed_random_eddies(7, 0.5);
  const swm::state<double> init = seeder.prognostic();
  std::vector<rank_state> out(static_cast<std::size_t>(w.size()));
  w.run([&](communicator& comm) {
    swm::distributed_model<double> dm(comm, params);
    dm.set_from_global(init);
    auto& mine = out[static_cast<std::size_t>(comm.rank())];
    mine.report = swm::run_resilient(comm, dm, steps, opt);
    mine.packed.resize(dm.packed_size());
    dm.pack_state(std::span<double>(mine.packed));
    mine.steps = dm.steps_taken();
  });
  return out;
}

void expect_ranks_match(const std::vector<rank_state>& got,
                        const std::vector<rank_state>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got[r].steps, want[r].steps) << "rank " << r;
    ASSERT_EQ(got[r].packed.size(), want[r].packed.size()) << "rank " << r;
    EXPECT_EQ(0, std::memcmp(got[r].packed.data(), want[r].packed.data(),
                             got[r].packed.size() * sizeof(double)))
        << "rank " << r << ": packed state differs from the oracle";
  }
}

fault_config chaos_config(std::uint64_t seed) {
  fault_config cfg;
  cfg.seed = seed;
  cfg.probs.drop = 0.08;
  cfg.probs.duplicate = 0.05;
  cfg.probs.corrupt = 0.04;
  cfg.probs.reorder = 0.06;
  cfg.probs.delay = 0.05;
  cfg.retry.max_retries = 30;
  return cfg;
}

class TransportConformance
    : public ::testing::TestWithParam<std::tuple<transport_kind, int>> {
 protected:
  void SetUp() override {
    std::tie(kind_, ranks_) = GetParam();
    SKIP_WITHOUT_LOOPBACK(kind_);
  }

  transport_kind kind_ = transport_kind::simulated;
  int ranks_ = 1;
};

TEST_P(TransportConformance, P2PPayloadsAndClocksMatchOracle) {
  world oracle(ranks_);
  const auto want = ring_run(oracle, /*rounds=*/6);

  world w(ranks_, {}, topt_for(kind_));
  const auto got = ring_run(w, /*rounds=*/6);

  EXPECT_EQ(got, want);  // bitwise: the payload survived the wire
  EXPECT_EQ(w.final_clocks(), oracle.final_clocks());
}

TEST_P(TransportConformance, CollectivesMatchOracle) {
  world oracle(ranks_);
  const auto want = allreduce_run(oracle, 37);

  world w(ranks_, {}, topt_for(kind_));
  const auto got = allreduce_run(w, 37);

  EXPECT_EQ(got, want);
  EXPECT_EQ(w.final_clocks(), oracle.final_clocks());
}

TEST_P(TransportConformance, HaloExchangeBitIdenticalKahanIncluded) {
  world oracle(ranks_);
  const auto want = halo_run(oracle, /*steps=*/6);

  world w(ranks_, {}, topt_for(kind_));
  const auto got = halo_run(w, /*steps=*/6);

  expect_ranks_match(got, want);
  EXPECT_EQ(w.final_clocks(), oracle.final_clocks());
}

TEST_P(TransportConformance, ChaosTraceMatchesOracleExactly) {
  if (ranks_ < 2) GTEST_SKIP() << "chaos needs a peer";

  // Seed 1 injects at every world size in this matrix (retries > 0).
  world oracle(ranks_);
  oracle.set_faults(chaos_config(1));
  const auto want = allreduce_run(oracle, 37, /*rounds=*/12);

  world w(ranks_, {}, topt_for(kind_));
  w.set_faults(chaos_config(1));
  const auto got = allreduce_run(w, 37, /*rounds=*/12);

  // Results, clocks, AND the whole chaos event trace agree: per-channel
  // sequence numbers are assigned in deposit order, every transport
  // preserves per-channel FIFO, and the matcher takes the lowest
  // sequence first - so delivery orders are independent of real-time
  // arrival interleaving.
  EXPECT_EQ(got, want);
  EXPECT_EQ(w.final_clocks(), oracle.final_clocks());
  const auto& a = w.last_fault_report();
  const auto& b = oracle.last_fault_report();
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.rx_discards, b.rx_discards);
  EXPECT_TRUE(a.crashed.empty());
  EXPECT_TRUE(b.crashed.empty());
  EXPECT_GT(a.stats.retries, 0u);  // chaos actually fired
}

TEST_P(TransportConformance, CrashSchedulesRaiseIdenticalTypedErrors) {
  if (ranks_ < 2) GTEST_SKIP() << "a crash needs a surviving peer";

  fault_config cfg;
  cfg.seed = 11;
  cfg.crashes.push_back({1, 3});  // rank 1 dies mid-ring
  cfg.retry.max_retries = 4;      // keep the cascade bounded

  const auto crash_reason = [&](world& w) {
    try {
      (void)ring_run(w, 6);
      ADD_FAILURE() << "expected comm_error";
      return comm_error::reason::unrecoverable;
    } catch (const comm_error& e) {
      return e.why();
    }
  };

  world oracle(ranks_);
  oracle.set_faults(cfg);
  const auto want_reason = crash_reason(oracle);

  world w(ranks_, {}, topt_for(kind_));
  w.set_faults(cfg);
  const auto got_reason = crash_reason(w);

  // Typed-error parity: the same crash schedule fells the same ranks
  // with the same reason category on every transport.
  EXPECT_EQ(w.last_fault_report().crashed,
            oracle.last_fault_report().crashed);
  EXPECT_FALSE(w.last_fault_report().crashed.empty());
  for (const auto why : {got_reason, want_reason}) {
    EXPECT_TRUE(why == comm_error::reason::peer_crashed ||
                why == comm_error::reason::retries_exhausted)
        << "unexpected reason " << static_cast<int>(why);
  }
}

TEST_P(TransportConformance, CrashRecoveryBitIdenticalToOracle) {
  if (ranks_ < 2) GTEST_SKIP() << "recovery needs a buddy";

  const int steps = 12;
  fault_config cfg;
  cfg.seed = 40;
  cfg.crashes.push_back({1, 120});  // one mid-run death
  swm::resilience_options opt;
  opt.checkpoint_interval = 4;

  world oracle(ranks_);
  oracle.set_faults(cfg);
  const auto want = recovery_run(oracle, steps, opt);

  world w(ranks_, {}, topt_for(kind_));
  w.set_faults(cfg);
  const auto got = recovery_run(w, steps, opt);

  expect_ranks_match(got, want);
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got[r].report.rounds, want[r].report.rounds) << "rank " << r;
    EXPECT_EQ(got[r].report.casualties, want[r].report.casualties)
        << "rank " << r;
    EXPECT_EQ(got[r].report.replayed_steps, want[r].report.replayed_steps)
        << "rank " << r;
    EXPECT_EQ(got[r].report.commits, want[r].report.commits) << "rank " << r;
  }
  EXPECT_GT(got[0].report.rounds, 0);  // the crash actually happened
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TransportConformance,
    ::testing::Combine(::testing::Values(transport_kind::simulated,
                                         transport_kind::shm,
                                         transport_kind::socket),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& param_info) {
      return std::string(
                 transport_manager::name_of(std::get<0>(param_info.param))) +
             "_p" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace

// ---------------------------------------------------------------------------
// Socket failure injection: a spoofed peer speaks just enough of the
// wire protocol to complete the handshake, then misbehaves. Every
// failure must surface as a typed transport_down/comm_error within the
// handshake budget - never a hang.
// ---------------------------------------------------------------------------

namespace {

/// Reserve a loopback port: bind, read the number, close. The race
/// window (someone else grabbing it) is acceptable in tests.
int free_port() {
  const int fd = sockwire::listen_on("127.0.0.1", 0);
  const int port = sockwire::listen_port(fd);
  ::close(fd);
  return port;
}

/// Complete the coordinator handshake as fake rank 1 of a 2-rank
/// world: connect, hello, swallow the port table. Returns the
/// connected fd (the 0<->1 mesh link).
int spoofed_peer_handshake(int port) {
  const retry_policy patient{0.05, 1.5, 10};
  const int fd = sockwire::connect_to("127.0.0.1", port, patient, 0);
  // Advertised listen port is never dialed for a 2-rank world (the
  // mesh pairs i<j with i>=1 are empty), so any value works.
  sockwire::write_hello(fd, {1, 2, 1}, 0);
  std::byte table[4 + 2 + 2 * 2];  // magic + version + two ports
  sockwire::read_all(fd, table, sizeof(table), 0, /*eof_ok=*/false);
  return fd;
}

/// Build a process-mode rank-0 transport for a 2-rank world while a
/// spoofed peer runs `misbehave(fd)` on the other end; returns the
/// transport_down notice rank 0's matcher surfaces.
wire_message provoke_transport_down(void (*misbehave)(int fd)) {
  const int port = free_port();
  std::thread peer([port, misbehave] {
    const int fd = spoofed_peer_handshake(port);
    misbehave(fd);
    ::close(fd);
  });
  socket_options sopt;
  sopt.rank = 0;
  sopt.port = port;
  auto t = make_socket_transport(2, sopt);
  const wire_message down = t->collect(0, 1, 0);
  peer.join();
  // The channel is gone: depositing toward the dead peer is a typed
  // error too (possibly delayed one send by TCP buffering).
  wire_message probe;
  probe.source = 0;
  probe.payload.resize(1 << 16);
  try {
    for (int i = 0; i < 64; ++i) t->deposit(1, probe);
    ADD_FAILURE() << "send to dead channel did not fail";
  } catch (const comm_error& e) {
    EXPECT_EQ(e.why(), comm_error::reason::transport_lost);
  }
  return down;
}

}  // namespace

TEST(SocketFailure, RefusedConnectRaisesTypedErrorWithinBudget) {
  if (!transport_manager::loopback_available()) {
    GTEST_SKIP() << "loopback TCP unavailable in this sandbox";
  }
  const int dead_port = free_port();  // bound once, closed: now refuses
  const retry_policy quick{0.01, 1.5, 3};
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)sockwire::connect_to("127.0.0.1", dead_port, quick, 1);
    FAIL() << "expected comm_error";
  } catch (const comm_error& e) {
    EXPECT_EQ(e.why(), comm_error::reason::transport_lost);
    EXPECT_EQ(e.peer(), 1);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Bounded by the backoff schedule, not a TCP timeout.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(SocketFailure, PeerDeathMidMessageBecomesTransportDown) {
  if (!transport_manager::loopback_available()) {
    GTEST_SKIP() << "loopback TCP unavailable in this sandbox";
  }
  const wire_message down = provoke_transport_down(+[](int fd) {
    // Half a frame header, then gone.
    sockwire::frame_header h;
    std::byte buf[sockwire::frame_header_bytes];
    sockwire::encode_header(h, buf);
    sockwire::write_all(fd, buf, sockwire::frame_header_bytes / 2, 0);
  });
  EXPECT_EQ(down.kind, msg_kind::transport_down);
  EXPECT_EQ(down.source, 1);
}

TEST(SocketFailure, TruncatedFrameBecomesTransportDown) {
  if (!transport_manager::loopback_available()) {
    GTEST_SKIP() << "loopback TCP unavailable in this sandbox";
  }
  const wire_message down = provoke_transport_down(+[](int fd) {
    // A full header promising 64 payload bytes, then only 16.
    sockwire::frame_header h;
    h.source = 1;
    h.payload_bytes = 64;
    h.epoch = 1;
    std::byte buf[sockwire::frame_header_bytes];
    sockwire::encode_header(h, buf);
    sockwire::write_all(fd, buf, sizeof(buf), 0);
    const std::byte partial[16] = {};
    sockwire::write_all(fd, partial, sizeof(partial), 0);
  });
  EXPECT_EQ(down.kind, msg_kind::transport_down);
  EXPECT_EQ(down.source, 1);
}

TEST(SocketFailure, CleanPeerExitStillPoisonsTheChannel) {
  if (!transport_manager::loopback_available()) {
    GTEST_SKIP() << "loopback TCP unavailable in this sandbox";
  }
  // EOF at a frame boundary (peer simply exits): no truncation to
  // report, but the channel is still gone and a blocked receiver must
  // learn that instead of hanging.
  const wire_message down = provoke_transport_down(+[](int) {});
  EXPECT_EQ(down.kind, msg_kind::transport_down);
  EXPECT_EQ(down.source, 1);
}

// ---------------------------------------------------------------------------
// The headline acceptance test: the same SWM binary, four separate
// processes over real TCP, bit-identical to the in-process oracle.
// ---------------------------------------------------------------------------

#ifdef TFX_DISTRIBUTED_SWM_BIN
namespace {

/// Launch the distributed_swm example with the given arguments, stdout
/// silenced. All allocation happens before fork() - the child only
/// dup2s and execs (async-signal-safe).
pid_t spawn_swm(const std::vector<std::string>& extra_args) {
  static std::string bin = TFX_DISTRIBUTED_SWM_BIN;
  std::vector<std::string> args = extra_args;  // keep storage alive
  std::vector<char*> argv;
  argv.push_back(bin.data());
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::close(devnull);
  }
  ::execv(argv[0], argv.data());
  std::_Exit(127);
}

bool wait_ok(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

std::vector<char> slurp(const std::string& path) {
  std::vector<char> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

TEST(TransportProcessMode, FourProcessTcpRunBitIdenticalToOracle) {
  if (!transport_manager::loopback_available()) {
    GTEST_SKIP() << "loopback TCP unavailable in this sandbox";
  }
  const std::string dir = ::testing::TempDir();
  const std::string oracle_prefix = dir + "swm_transport_oracle";
  const std::string proc_prefix = dir + "swm_transport_proc";
  const std::string steps = "--steps=8";
  const std::string scheme = "--scheme=compensated";

  // In-process oracle over the simulated fabric.
  ASSERT_TRUE(wait_ok(spawn_swm({"--transport=simulated", "--ranks=4", steps,
                                 scheme, "--out=" + oracle_prefix})));

  // The same binary, once per rank, agreeing on a coordinator port.
  const std::string port_arg = "--port=" + std::to_string(free_port());
  std::vector<pid_t> pids;
  for (int r = 0; r < 4; ++r) {
    pids.push_back(spawn_swm({"--transport=socket", "--ranks=4", steps,
                              scheme, "--rank=" + std::to_string(r), port_arg,
                              "--out=" + proc_prefix}));
  }
  bool all_ok = true;
  for (const pid_t pid : pids) all_ok = wait_ok(pid) && all_ok;
  ASSERT_TRUE(all_ok) << "a rank process failed";

  for (int r = 0; r < 4; ++r) {
    const auto want = slurp(oracle_prefix + ".rank" + std::to_string(r));
    const auto got = slurp(proc_prefix + ".rank" + std::to_string(r));
    ASSERT_FALSE(want.empty()) << "oracle rank " << r << " wrote nothing";
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), want.size()))
        << "rank " << r
        << ": process-mode state differs from the in-process oracle";
  }
}
#endif  // TFX_DISTRIBUTED_SWM_BIN
