#pragma once

/// \file version.hpp
/// Library version constants.

namespace tfx {

inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

/// Human-readable version string, e.g. "1.0.0".
inline constexpr const char* version_string = "1.0.0";

}  // namespace tfx
