// Example: writing an "MPI" program against the simulated runtime.
//
// A classic ring pipeline plus collectives, with the virtual clocks
// reported at the end - the same machinery the Fig. 2/3 reproductions
// use, driven like an ordinary message-passing program. The network is
// the modeled TofuD torus, so the printed times are *simulated Fugaku
// time*, not host time.

#include <cstdio>
#include <numeric>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/runtime.hpp"

using namespace tfx::mpisim;

int main() {
  // 8 ranks on 4 nodes, 2 per node, in a 4x1x1 torus line.
  world w(torus_placement({4, 1, 1}, 2), tofud_params{});
  const int p = w.size();
  std::printf("world: %d ranks on %d nodes\n\n", p, w.placement().node_count());

  std::vector<double> ring_sums(static_cast<std::size_t>(p));
  w.run([&](communicator& comm) {
    const int r = comm.rank();
    const int right = (r + 1) % comm.size();
    const int left = (r - 1 + comm.size()) % comm.size();

    // -- ring accumulation: pass a token around, adding our rank ----
    double token = 0.0;
    if (r == 0) {
      comm.send_value(token, right, 1);
      token = comm.recv_value<double>(left, 1);
    } else {
      token = comm.recv_value<double>(left, 1);
      token += r;
      comm.send_value(token, right, 1);
    }
    // rank 0 now holds 1 + 2 + ... + (p-1).

    // -- broadcast the result and verify everywhere -----------------
    bcast(comm, std::span<double>(&token, 1), 0);

    // -- allreduce a per-rank vector ---------------------------------
    std::vector<double> mine(4, static_cast<double>(r));
    std::vector<double> sum(4);
    allreduce(comm, std::span<const double>(mine), std::span<double>(sum),
              ops::sum{});
    ring_sums[static_cast<std::size_t>(r)] = sum[0];

    barrier(comm);
    if (r == 0) {
      std::printf("ring token at rank 0: %.0f (expected %d)\n", token,
                  (p - 1) * p / 2);
      std::printf("allreduce of ranks:   %.0f (expected %d)\n", sum[0],
                  (p - 1) * p / 2);
    }
  });

  std::puts("\nper-rank simulated completion times (TofuD model):");
  for (int r = 0; r < p; ++r) {
    std::printf("  rank %d on node %d: %.2f us\n", r, w.placement().node_of(r),
                w.final_clocks()[static_cast<std::size_t>(r)] * 1e6);
  }
  return 0;
}
