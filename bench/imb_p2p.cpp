// The IMB point-to-point family beyond PingPong: PingPing (duplex),
// Sendrecv (periodic chain), Exchange (both neighbours). Complements
// fig2_pingpong with the patterns the full IMB suite reports.

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "imb/benchmarks.hpp"

using namespace tfx;
using namespace tfx::imb;

int main() {
  std::puts("IMB point-to-point family over the modeled TofuD fabric");
  std::puts("(MPI.jl personality; Sendrecv/Exchange on an 8-rank chain).\n");

  const bench_config config;
  const auto sizes = power_of_two_sizes(0, 22);

  const auto pong = run_pingpong(mpi_jl, config, sizes);
  const auto ping = run_pingping(mpi_jl, config, sizes);
  const auto srv = run_sendrecv(mpi_jl, config, 8, sizes);
  const auto exch = run_exchange(mpi_jl, config, 8, sizes);

  table t({"bytes", "PingPong", "PingPing", "Sendrecv", "Exchange",
           "Exch GB/s"});
  for (std::size_t i = 0; i < sizes.size(); i += 2) {
    t.add_row({format_bytes(sizes[i]), format_seconds(pong[i].latency_s),
               format_seconds(ping[i].latency_s),
               format_seconds(srv[i].latency_s),
               format_seconds(exch[i].latency_s),
               format_fixed(exch[i].throughput_Bps / 1e9, 2)});
  }
  t.print(std::cout);

  std::puts("\nPingPing matches PingPong's half-RTT: the port model is");
  std::puts("full duplex, so the simultaneous sends overlap perfectly.");
  std::puts("Exchange moves twice Sendrecv's bytes for less than twice");
  std::puts("the time for small payloads (latency overlap) and about");
  std::puts("twice for large ones (each direction's drain serializes).");
  return 0;
}
