// The fused RK4 update pipeline: bit-equality with the unfused
// reference path for all four Fig. 5 precision configurations, across
// pool sizes (including serial), plus the kernel-level identities and
// the perfmodel's fused traffic accounting.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "swm/model.hpp"
#include "swm/perfmodel.hpp"

using namespace tfx;
using namespace tfx::swm;
using tfx::fp::float16;

namespace {

swm_params params_for(int nx, int ny, int log2_scale = 0) {
  swm_params p;
  p.nx = nx;
  p.ny = ny;
  if (log2_scale != 0) p.log2_scale = log2_scale;
  return p;
}

/// Run `steps` of a model at each pipeline (unfused serial reference
/// vs fused, optionally pooled) and require bit-equal prognostic
/// fields. Comparison goes through double, which is exact for every
/// library format.
template <typename T, typename Tprog = T>
void expect_fused_matches_unfused(const swm_params& p,
                                  integration_scheme scheme, int steps,
                                  thread_pool* pool) {
  model<T, Tprog> reference(p, scheme);
  reference.set_pipeline(update_pipeline::unfused);
  reference.seed_random_eddies(31, 0.5);
  reference.run(steps);

  model<T, Tprog> fused(p, scheme);
  ASSERT_EQ(fused.pipeline(), update_pipeline::fused);  // the default
  if (pool != nullptr) fused.attach_pool(pool);
  fused.seed_random_eddies(31, 0.5);
  fused.run(steps);

  const auto& a = reference.prognostic();
  const auto& b = fused.prognostic();
  for (std::size_t k = 0; k < a.eta.size(); ++k) {
    ASSERT_EQ(static_cast<double>(a.u.flat()[k]),
              static_cast<double>(b.u.flat()[k]))
        << "u @" << k;
    ASSERT_EQ(static_cast<double>(a.v.flat()[k]),
              static_cast<double>(b.v.flat()[k]))
        << "v @" << k;
    ASSERT_EQ(static_cast<double>(a.eta.flat()[k]),
              static_cast<double>(b.eta.flat()[k]))
        << "eta @" << k;
  }
}

}  // namespace

// --- trajectories: the four Fig. 5 configurations x pool sizes -------------

class FusedPipeline : public ::testing::TestWithParam<int> {
 protected:
  /// Pool size 0 means "no pool attached" (pure serial fused path).
  thread_pool* pool() {
    if (GetParam() == 0) return nullptr;
    pool_ = std::make_unique<thread_pool>(GetParam());
    return pool_.get();
  }

 private:
  std::unique_ptr<thread_pool> pool_;
};

TEST_P(FusedPipeline, Float64BitIdentical) {
  expect_fused_matches_unfused<double>(params_for(48, 24),
                                       integration_scheme::standard, 20,
                                       pool());
}

TEST_P(FusedPipeline, Float32BitIdentical) {
  expect_fused_matches_unfused<float>(params_for(48, 24),
                                      integration_scheme::standard, 20,
                                      pool());
}

TEST_P(FusedPipeline, Float16CompensatedBitIdenticalWithFtz) {
  // The paper's Float16 configuration: compensated integration, FTZ on
  // (A64FX FZ16). The fused parallel sweeps must propagate the flush
  // mode into the workers or this would diverge from serial.
  fp::ftz_guard ftz(fp::ftz_mode::flush);
  expect_fused_matches_unfused<float16>(params_for(32, 16, 12),
                                        integration_scheme::compensated, 12,
                                        pool());
}

TEST_P(FusedPipeline, MixedFloat16_32BitIdentical) {
  fp::ftz_guard ftz(fp::ftz_mode::flush);
  expect_fused_matches_unfused<float16, float>(
      params_for(32, 16, 12), integration_scheme::standard, 12, pool());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, FusedPipeline,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(FusedPipeline, SwitchingPipelinesMidRunIsSeamless) {
  // Both pipelines advance state and compensation identically, so a
  // fused run that switches to unfused half way lands on the same bits
  // as either pipeline run start to finish.
  const swm_params p = params_for(32, 16);
  model<double> whole(p, integration_scheme::compensated);
  whole.seed_random_eddies(7, 0.4);
  whole.run(16);

  model<double> switched(p, integration_scheme::compensated);
  switched.seed_random_eddies(7, 0.4);
  switched.run(8);
  switched.set_pipeline(update_pipeline::unfused);
  switched.run(8);

  const auto& a = whole.prognostic();
  const auto& b = switched.prognostic();
  for (std::size_t k = 0; k < a.eta.size(); ++k) {
    ASSERT_EQ(a.eta.flat()[k], b.eta.flat()[k]) << k;
  }
}

// --- kernel-level identities ----------------------------------------------

TEST(FusedKernels, UpdateMatchesIncrementPlusApplyDouble) {
  const int nx = 37, ny = 19;
  xoshiro256 rng(99);
  field2d<double> y1(nx, ny), y2(nx, ny), inc(nx, ny);
  field2d<double> k1(nx, ny), k2(nx, ny), k3(nx, ny), k4(nx, ny);
  for (auto* f : {&y1, &k1, &k2, &k3, &k4}) {
    for (auto& v : f->flat()) v = rng.uniform(-1.0, 1.0);
  }
  for (std::size_t i = 0; i < y1.size(); ++i) y2.flat()[i] = y1.flat()[i];

  rk4_increment(inc, k1, k2, k3, k4);
  apply_increment(y1, inc);
  fused_rk4_update(y2, k1, k2, k3, k4);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    ASSERT_EQ(y1.flat()[i], y2.flat()[i]) << i;
  }
}

TEST(FusedKernels, CompensatedUpdateMatchesUnfusedFloat16) {
  fp::ftz_guard ftz(fp::ftz_mode::flush);
  const int nx = 23, ny = 11;
  xoshiro256 rng(5);
  field2d<float16> y1(nx, ny), y2(nx, ny), c1(nx, ny), c2(nx, ny);
  field2d<float16> inc(nx, ny);
  field2d<float16> k1(nx, ny), k2(nx, ny), k3(nx, ny), k4(nx, ny);
  for (auto* f : {&y1, &k1, &k2, &k3, &k4}) {
    for (auto& v : f->flat()) v = float16(rng.uniform(-2.0, 2.0));
  }
  for (std::size_t i = 0; i < y1.size(); ++i) y2.flat()[i] = y1.flat()[i];
  c1.fill(float16{});
  c2.fill(float16{});

  // Two consecutive steps so the carried compensation is exercised.
  for (int s = 0; s < 2; ++s) {
    rk4_increment(inc, k1, k2, k3, k4);
    apply_increment_compensated(y1, inc, c1);
    fused_rk4_update_compensated(y2, c2, k1, k2, k3, k4);
  }
  for (std::size_t i = 0; i < y1.size(); ++i) {
    ASSERT_EQ(y1.flat()[i].bits(), y2.flat()[i].bits()) << i;
    ASSERT_EQ(c1.flat()[i].bits(), c2.flat()[i].bits()) << i;
  }
}

TEST(FusedKernels, StageCombineRangeMatchesPerField) {
  const int nx = 16, ny = 8;
  xoshiro256 rng(3);
  state<float> y(nx, ny), out1(nx, ny), out2(nx, ny);
  tendencies<float> k(nx, ny);
  for (auto* f : {&y.u, &y.v, &y.eta, &k.du, &k.dv, &k.deta}) {
    for (auto& v : f->flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  stage_combine(out1.u, y.u, k.du, 0.5f);
  stage_combine(out1.v, y.v, k.dv, 0.5f);
  stage_combine(out1.eta, y.eta, k.deta, 0.5f);
  fused_stage_combine_range(out2, y, k, 0.5f, 0, y.eta.size());
  for (std::size_t i = 0; i < out1.eta.size(); ++i) {
    ASSERT_EQ(out1.u.flat()[i], out2.u.flat()[i]);
    ASSERT_EQ(out1.v.flat()[i], out2.v.flat()[i]);
    ASSERT_EQ(out1.eta.flat()[i], out2.eta.flat()[i]);
  }
}

// --- perfmodel accounting --------------------------------------------------

TEST(FusedTraffic, SweepCountDropsAtLeastThirtyPercent) {
  for (auto config : {config_float64(), config_float32(), config_float16(),
                      config_float16_32()}) {
    precision_config unfused = config;
    unfused.fused = false;
    const auto f = predict_step(arch::fugaku_node, 1000, 500, config);
    const auto u = predict_step(arch::fugaku_node, 1000, 500, unfused);
    EXPECT_LE(static_cast<double>(f.update_sweeps),
              0.7 * static_cast<double>(u.update_sweeps))
        << config.name;
    EXPECT_LT(f.update_bytes, u.update_bytes) << config.name;
    EXPECT_LT(f.bytes_moved, u.bytes_moved) << config.name;
    EXPECT_LT(f.seconds, u.seconds) << config.name;
  }
}

TEST(FusedTraffic, UpdateBytesAreTheDifference) {
  // The RHS traffic is pipeline-independent: the full-step byte delta
  // must equal the update-portion delta.
  precision_config fused = config_float64();
  precision_config unfused = fused;
  unfused.fused = false;
  const auto f = predict_step(arch::fugaku_node, 2000, 1000, fused);
  const auto u = predict_step(arch::fugaku_node, 2000, 1000, unfused);
  EXPECT_EQ(u.bytes_moved - f.bytes_moved, u.update_bytes - f.update_bytes);
  const std::uint64_t rhs_f = f.bytes_moved - f.update_bytes;
  const std::uint64_t rhs_u = u.bytes_moved - u.update_bytes;
  EXPECT_EQ(rhs_f, rhs_u);
}
