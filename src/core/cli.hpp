#pragma once

/// \file cli.hpp
/// Minimal command-line option parsing for the bench/example binaries.
///
/// Supports `--flag`, `--key value` and `--key=value`. Unknown options
/// are an error so typos do not silently run the default workload.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tfx {

class cli {
 public:
  /// Parse argv. `spec` maps option name (without "--") to a help
  /// string; only listed options are accepted.
  cli(int argc, const char* const* argv,
      std::map<std::string, std::string> spec);

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// The value of `--name value` / `--name=value`, if present.
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;

  /// True when parsing failed or `--help` was requested; main() should
  /// print `help()` and exit.
  [[nodiscard]] bool wants_help() const { return help_; }

  /// Usage text generated from the spec.
  [[nodiscard]] std::string help() const;

 private:
  std::string program_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace tfx
