#pragma once

/// \file trace.hpp
/// The observability plane's core: structured trace events recorded
/// into per-thread bounded buffers, with a process-wide controller.
///
/// Design constraints (tests/obs_trace_test, tests/obs_overhead_test):
///
///  * deterministic - events carry an explicit timestamp, so the
///    mpisim runtimes stamp events with their *virtual* clocks and the
///    DES engine's traces are bit-reproducible for a fixed seed;
///  * low overhead - the disabled fast path is one relaxed atomic load
///    and a branch per instrumentation site; recording is a bounded
///    append into a thread-owned buffer (no locks, no allocation after
///    the thread's first event of a session);
///  * compile-time removable - configure with -DTFX_OBS=OFF and every
///    TFX_OBS_* macro expands to nothing (arguments unevaluated) while
///    the helper functions below become empty inlines, leaving the
///    instrumented hot loops bit- and allocation-identical to an
///    uninstrumented build.
///
/// Concurrency contract: emit() may be called from any thread at any
/// time while the plane is active. start(), stop() and drain() are
/// *quiescent* operations - call them only while no instrumented code
/// runs concurrently (between world::run calls, with the thread pool
/// idle). Ring contents are published with release stores and read
/// with acquire loads, so a drain that races a late event sees a clean
/// prefix, but the session discipline above is what the tests (and
/// TSan) enforce.
///
/// Event model (docs/TRACING.md): a flat record of
///   (kind, domain, track, name, ts, a, b)
/// where `kind` is span begin/end, instant, or counter sample;
/// `domain` selects a subsystem (thread pool, simulated network,
/// shallow-water model, resilience) and with it a clock base - pool
/// and swm(serial) events use host seconds since start(), net and
/// resil events use the emitting rank's virtual clock; `track` is the
/// worker or rank index; `name` must be a string with static storage
/// duration (no ownership, no allocation); `a`/`b` are free payload
/// words (byte counts, sequence numbers, epochs).

#ifndef TFX_OBS_ENABLED
#define TFX_OBS_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace tfx::obs {

/// True when the observability plane is compiled in (TFX_OBS=ON).
inline constexpr bool compiled = TFX_OBS_ENABLED != 0;

enum class kind : std::uint8_t {
  begin,    ///< span open (matched by an `end` with the same track+name)
  end,      ///< span close
  instant,  ///< point event
  counter,  ///< counter sample; `a` is the value
};

enum class domain : std::uint8_t {
  pool,   ///< thread pool (host clock, track = worker index)
  net,    ///< mpisim runtime/DES (virtual clock, track = rank)
  swm,    ///< shallow-water step loop (serial: host clock, track 0;
          ///< distributed: virtual clock, track = rank)
  resil,  ///< resilience protocol (virtual clock, track = rank)
  ens,    ///< ensemble engine (host clock; spans: track = worker,
          ///< tenant counters/instants: track = tenant id) — one
          ///< domain per tenant-visible plane keeps a tenant's rows
          ///< disjoint from every other tenant's (docs/ENSEMBLE.md)
};

inline constexpr int domain_count = 5;

/// Human-readable domain name (also the thread-name prefix in the
/// Chrome export).
constexpr const char* domain_name(domain d) {
  switch (d) {
    case domain::pool: return "pool";
    case domain::net: return "net";
    case domain::swm: return "swm";
    case domain::resil: return "resil";
    case domain::ens: return "ens";
  }
  return "?";
}

/// One trace record. Trivially copyable; `name` must point at a string
/// with static storage duration.
struct event {
  double ts = 0;               ///< seconds (host-relative or virtual)
  const char* name = nullptr;  ///< static string
  std::uint64_t a = 0;         ///< payload (bytes, seq, value, ...)
  std::uint64_t b = 0;         ///< payload
  kind what = kind::instant;
  domain dom = domain::pool;
  std::uint16_t track = 0;  ///< worker or rank index
};

/// Bounded single-producer event buffer: the owning thread appends,
/// the controller reads after quiescence. Full buffers drop the
/// *newest* events (dropping oldest would orphan span begins) and
/// count the loss.
class event_ring {
 public:
  explicit event_ring(std::size_t capacity) : slots_(capacity) {}

  /// Owner-thread append. Returns false (and counts) when full.
  bool push(const event& e) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[n] = e;
    count_.store(n + 1, std::memory_order_release);
    return true;
  }

  /// Reader side: the published prefix (acquire pairs with push's
  /// release, so every slot below the count is fully written).
  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const event& at(std::size_t i) const { return slots_[i]; }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<event> slots_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide trace controller: owns every thread's ring and the
/// enabled flag. Header-only so core headers (threadpool.hpp) can emit
/// without a link dependency.
class trace_plane {
 public:
  static constexpr std::size_t default_capacity = std::size_t{1} << 16;

  static trace_plane& instance() {
    static trace_plane plane;
    return plane;
  }

  /// Begin a tracing session: discards previous rings, re-bases the
  /// host clock, and enables recording. Quiescent operation.
  void start(std::size_t ring_capacity = default_capacity) {
    const std::scoped_lock lock(mutex_);
    rings_.clear();
    capacity_ = ring_capacity;
    t0_ = std::chrono::steady_clock::now();
    // Epoch first, then enabled (release): a thread that observes
    // enabled == true is guaranteed to re-register rather than push
    // into a ring freed by the clear() above.
    epoch_.fetch_add(1, std::memory_order_release);
    enabled_.store(true, std::memory_order_release);
  }

  /// Stop recording. Quiescent operation; drain() afterwards.
  void stop() { enabled_.store(false, std::memory_order_release); }

  [[nodiscard]] bool active() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Seconds since start() on the host's monotonic clock.
  [[nodiscard]] double host_now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

  /// Every event recorded since start(), concatenated per ring in
  /// registration order (per-thread program order is preserved).
  /// Quiescent operation; does not clear (start() does).
  [[nodiscard]] std::vector<event> collect() {
    const std::scoped_lock lock(mutex_);
    std::vector<event> out;
    std::size_t total = 0;
    for (const auto& r : rings_) total += r->size();
    out.reserve(total);
    for (const auto& r : rings_) {
      const std::size_t n = r->size();
      for (std::size_t i = 0; i < n; ++i) out.push_back(r->at(i));
    }
    return out;
  }

  /// Events dropped on full rings since start().
  [[nodiscard]] std::uint64_t dropped() {
    const std::scoped_lock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& r : rings_) total += r->dropped();
    return total;
  }

  /// Hot path: append to this thread's ring, registering it lazily on
  /// the thread's first event of the session (the one "warm-up"
  /// allocation the zero-overhead tests permit).
  void emit(const event& e) {
    thread_slot& slot = this_thread();
    const std::uint64_t ep = epoch_.load(std::memory_order_acquire);
    if (slot.epoch != ep) {
      slot.ring = register_thread();
      slot.epoch = ep;
    }
    slot.ring->push(e);
  }

 private:
  struct thread_slot {
    std::uint64_t epoch = 0;
    event_ring* ring = nullptr;
  };

  trace_plane() = default;

  static thread_slot& this_thread() {
    thread_local thread_slot slot;
    return slot;
  }

  event_ring* register_thread() {
    const std::scoped_lock lock(mutex_);
    rings_.push_back(std::make_unique<event_ring>(capacity_));
    return rings_.back().get();
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{1};
  std::mutex mutex_;
  std::vector<std::unique_ptr<event_ring>> rings_;
  std::size_t capacity_ = default_capacity;
  std::chrono::steady_clock::time_point t0_{};
};

// -- free-function surface (all no-ops when TFX_OBS=OFF) --------------------

/// True when tracing is compiled in *and* currently enabled.
inline bool active() {
  if constexpr (!compiled) {
    return false;
  } else {
    return trace_plane::instance().active();
  }
}

inline void start(std::size_t ring_capacity = trace_plane::default_capacity) {
  if constexpr (compiled) trace_plane::instance().start(ring_capacity);
}

inline void stop() {
  if constexpr (compiled) trace_plane::instance().stop();
}

/// All events of the session so far (empty when compiled out).
inline std::vector<event> collect() {
  if constexpr (!compiled) {
    return {};
  } else {
    return trace_plane::instance().collect();
  }
}

inline std::uint64_t dropped() {
  if constexpr (!compiled) {
    return 0;
  } else {
    return trace_plane::instance().dropped();
  }
}

/// Host seconds since the session started.
inline double host_now() {
  if constexpr (!compiled) {
    return 0.0;
  } else {
    return trace_plane::instance().host_now();
  }
}

/// Emit with an explicit timestamp (the virtual-clock entry point).
inline void emit_at(kind k, domain d, std::uint16_t track, const char* name,
                    double ts, std::uint64_t a = 0, std::uint64_t b = 0) {
  if constexpr (compiled) {
    trace_plane& plane = trace_plane::instance();
    if (!plane.active()) return;
    plane.emit(event{ts, name, a, b, k, d, track});
  }
}

inline void begin_at(domain d, std::uint16_t track, const char* name,
                     double ts, std::uint64_t a = 0, std::uint64_t b = 0) {
  emit_at(kind::begin, d, track, name, ts, a, b);
}
inline void end_at(domain d, std::uint16_t track, const char* name, double ts,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
  emit_at(kind::end, d, track, name, ts, a, b);
}
inline void instant_at(domain d, std::uint16_t track, const char* name,
                       double ts, std::uint64_t a = 0, std::uint64_t b = 0) {
  emit_at(kind::instant, d, track, name, ts, a, b);
}
inline void counter_at(domain d, std::uint16_t track, const char* name,
                       double ts, std::uint64_t value, std::uint64_t b = 0) {
  emit_at(kind::counter, d, track, name, ts, value, b);
}

/// Host-clock variants (the clock is only read when tracing is on).
inline void instant(domain d, std::uint16_t track, const char* name,
                    std::uint64_t a = 0, std::uint64_t b = 0) {
  if constexpr (compiled) {
    trace_plane& plane = trace_plane::instance();
    if (!plane.active()) return;
    plane.emit(
        event{plane.host_now(), name, a, b, kind::instant, d, track});
  }
}
inline void counter(domain d, std::uint16_t track, const char* name,
                    std::uint64_t value, std::uint64_t b = 0) {
  if constexpr (compiled) {
    trace_plane& plane = trace_plane::instance();
    if (!plane.active()) return;
    plane.emit(
        event{plane.host_now(), name, value, b, kind::counter, d, track});
  }
}

/// RAII host-clock span. Records nothing when tracing was off at
/// construction (and closes even if tracing stops mid-span, so B/E
/// pairs in a drained session stay balanced).
class scoped_span {
 public:
  scoped_span(domain d, std::uint16_t track, const char* name,
              std::uint64_t a = 0, std::uint64_t b = 0)
      : dom_(d), track_(track), name_(name) {
    if constexpr (compiled) {
      trace_plane& plane = trace_plane::instance();
      if (!plane.active()) return;
      live_ = true;
      plane.emit(
          event{plane.host_now(), name, a, b, kind::begin, d, track});
    }
  }
  ~scoped_span() {
    if constexpr (compiled) {
      if (!live_) return;
      trace_plane& plane = trace_plane::instance();
      plane.emit(event{plane.host_now(), name_, 0, 0, kind::end, dom_,
                       track_});
    }
  }
  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

 private:
  domain dom_;
  std::uint16_t track_;
  const char* name_;
  bool live_ = false;
};

/// RAII span on a caller-supplied clock (the virtual-time analogue of
/// scoped_span): `clock()` is invoked at open and at close. Used for
/// mpisim collective spans and resilience commit phases, where the
/// timestamp is the rank's virtual clock.
template <typename ClockFn>
class scoped_vspan {
 public:
  scoped_vspan(domain d, std::uint16_t track, const char* name, ClockFn clock,
               std::uint64_t a = 0, std::uint64_t b = 0)
      : dom_(d), track_(track), name_(name), clock_(std::move(clock)) {
    if constexpr (compiled) {
      if (!trace_plane::instance().active()) return;
      live_ = true;
      begin_at(dom_, track_, name_, clock_(), a, b);
    }
  }
  ~scoped_vspan() {
    if constexpr (compiled) {
      if (live_) end_at(dom_, track_, name_, clock_());
    }
  }
  scoped_vspan(const scoped_vspan&) = delete;
  scoped_vspan& operator=(const scoped_vspan&) = delete;

 private:
  domain dom_;
  std::uint16_t track_;
  const char* name_;
  ClockFn clock_;
  bool live_ = false;
};

}  // namespace tfx::obs

// -- instrumentation macros -------------------------------------------------
// The macro layer exists so TFX_OBS=OFF removes the instrumentation
// textually: arguments are not evaluated at all. `dom` is a bare
// domain enumerator (pool, net, swm, resil).

#if TFX_OBS_ENABLED

#define TFX_OBS_CAT2(a, b) a##b
#define TFX_OBS_CAT(a, b) TFX_OBS_CAT2(a, b)

/// Host-clock RAII span over the rest of the enclosing scope.
#define TFX_OBS_SPAN(dom, track, name, ...)                              \
  ::tfx::obs::scoped_span TFX_OBS_CAT(tfx_obs_span_, __LINE__)(          \
      ::tfx::obs::domain::dom, static_cast<std::uint16_t>(track),        \
      name __VA_OPT__(, ) __VA_ARGS__)

/// Host-clock instant event.
#define TFX_OBS_INSTANT(dom, track, name, ...)                        \
  ::tfx::obs::instant(::tfx::obs::domain::dom,                        \
                      static_cast<std::uint16_t>(track),              \
                      name __VA_OPT__(, ) __VA_ARGS__)

/// Host-clock counter sample.
#define TFX_OBS_COUNTER(dom, track, name, value)       \
  ::tfx::obs::counter(::tfx::obs::domain::dom,         \
                      static_cast<std::uint16_t>(track), name, value)

/// Explicit-timestamp (virtual clock) variants.
#define TFX_OBS_INSTANT_AT(dom, track, name, ts, ...)                  \
  ::tfx::obs::instant_at(::tfx::obs::domain::dom,                      \
                         static_cast<std::uint16_t>(track), name,      \
                         ts __VA_OPT__(, ) __VA_ARGS__)
#define TFX_OBS_BEGIN_AT(dom, track, name, ts, ...)                    \
  ::tfx::obs::begin_at(::tfx::obs::domain::dom,                        \
                       static_cast<std::uint16_t>(track), name,        \
                       ts __VA_OPT__(, ) __VA_ARGS__)
#define TFX_OBS_END_AT(dom, track, name, ts)                           \
  ::tfx::obs::end_at(::tfx::obs::domain::dom,                          \
                     static_cast<std::uint16_t>(track), name, ts)
#define TFX_OBS_COUNTER_AT(dom, track, name, ts, value, ...)           \
  ::tfx::obs::counter_at(::tfx::obs::domain::dom,                      \
                         static_cast<std::uint16_t>(track), name, ts,  \
                         value __VA_OPT__(, ) __VA_ARGS__)

#else  // TFX_OBS_ENABLED == 0: macros expand to nothing.

#define TFX_OBS_SPAN(...) ((void)0)
#define TFX_OBS_INSTANT(...) ((void)0)
#define TFX_OBS_COUNTER(...) ((void)0)
#define TFX_OBS_INSTANT_AT(...) ((void)0)
#define TFX_OBS_BEGIN_AT(...) ((void)0)
#define TFX_OBS_END_AT(...) ((void)0)
#define TFX_OBS_COUNTER_AT(...) ((void)0)

#endif  // TFX_OBS_ENABLED
