// Stochastic rounding: exactness on representable values, unbiasedness
// in the mean, the drift cure on the stuck-accumulator problem.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/stochastic.hpp"

using namespace tfx::fp;

TEST(StochasticRounding, RepresentableValuesPassThrough) {
  stochastic_rounder sr(1);
  for (std::uint32_t bits = 0x0400; bits <= 0x7bff; bits += 37) {
    const auto h = float16::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    // A value that IS a binary16 value has a zero discarded field: the
    // dither can flip it up only if all 13 bits... adding dither < 8192
    // to a zero tail never carries. Must be exact every time.
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(sr.round_f16(f).bits(), h.bits()) << std::hex << bits;
    }
  }
}

TEST(StochasticRounding, RoundsToOneOfTheNeighbours) {
  stochastic_rounder sr(2);
  const float lo = 1.0f;
  const float hi = 1.0f + std::ldexp(1.0f, -10);
  const float x = 1.0f + std::ldexp(1.0f, -12);  // 1/4 of the gap up
  for (int k = 0; k < 100; ++k) {
    const float got = static_cast<float>(sr.round_f16(x));
    EXPECT_TRUE(got == lo || got == hi) << got;
  }
}

TEST(StochasticRounding, ProbabilityProportionalToPosition) {
  // x sits 1/4 of the way up the gap: ~25% of roundings must go up.
  stochastic_rounder sr(3);
  const float x = 1.0f + std::ldexp(1.0f, -12);
  int ups = 0;
  constexpr int trials = 40000;
  for (int k = 0; k < trials; ++k) {
    if (static_cast<float>(sr.round_f16(x)) > 1.0f) ++ups;
  }
  const double frac = static_cast<double>(ups) / trials;
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(StochasticRounding, UnbiasedInTheMean) {
  stochastic_rounder sr(4);
  const float x = 2.7182818f;
  double acc = 0;
  constexpr int trials = 100000;
  for (int k = 0; k < trials; ++k) {
    acc += static_cast<double>(sr.round_f16(x));
  }
  const double mean = acc / trials;
  // RN-even would give a fixed value off by up to half an ulp (~6.6e-4
  // at this magnitude); the SR mean must sit much closer than that.
  EXPECT_NEAR(mean, static_cast<double>(x), 2e-4);
}

TEST(StochasticRounding, CuresTheStuckAccumulator) {
  // 1.0 + 4096 * 2^-13 = 1.5. Plain float16 accumulation is stuck at
  // 1.0 (increment below the ulp); the SR accumulator drifts to the
  // right answer in expectation.
  const float16 inc(std::ldexp(1.0, -13));
  float16 plain(1.0);
  sr_accumulator sr(float16(1.0), /*seed=*/5);
  for (int i = 0; i < 4096; ++i) {
    plain += inc;
    sr.add(inc);
  }
  EXPECT_EQ(static_cast<double>(plain), 1.0);
  EXPECT_NEAR(static_cast<double>(sr.value()), 1.5, 0.05);
}

TEST(StochasticRounding, DeterministicForFixedSeed) {
  stochastic_rounder a(42), b(42), c(43);
  const float x = 1.0f + std::ldexp(1.0f, -12);
  bool diverged = false;
  for (int k = 0; k < 64; ++k) {
    const auto ra = a.round_f16(x).bits();
    EXPECT_EQ(ra, b.round_f16(x).bits());
    diverged = diverged || (ra != c.round_f16(x).bits());
  }
  EXPECT_TRUE(diverged);  // different seed, different stream
}

TEST(StochasticRounding, BFloat16PathWorks) {
  stochastic_rounder sr(6);
  const float x = 1.0f + std::ldexp(1.0f, -9);  // 1/4 gap at bf16
  int ups = 0;
  constexpr int trials = 40000;
  for (int k = 0; k < trials; ++k) {
    if (static_cast<float>(sr.round_bf16(x)) > 1.0f) ++ups;
  }
  EXPECT_NEAR(static_cast<double>(ups) / trials, 0.25, 0.02);
  EXPECT_EQ(sr.round_bf16(2.0f).bits(), bfloat16(2.0f).bits());
}

TEST(StochasticRounding, InfAndNanUnchanged) {
  stochastic_rounder sr(7);
  EXPECT_TRUE(sr.round_f16(std::numeric_limits<float>::infinity()).isinf());
  EXPECT_TRUE(sr.round_f16(std::nanf("")).isnan());
  EXPECT_TRUE(sr.round_f16(1e9f).isinf());  // overflow region: RN fallback
}
