// Self-healing ensemble members (docs/AUTOPILOT.md): under injected
// range-drift and NaN faults, autopiloted members must complete via
// the rescale -> promote ladder (zero non-finite results), repair
// transcripts must be identical across pool sizes and submission
// orders, retry budgets must be typed, and — the zero-cost contract —
// an autopilot that never fires must leave the member's bits exactly
// equal to the unmonitored standalone oracle, Kahan compensation
// included.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "ensemble/engine.hpp"
#include "fp/float16.hpp"
#include "fp/fpenv.hpp"
#include "swm/health.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::ensemble;

namespace {

void expect_state_bits(const swm::state<double>& got,
                       const swm::state<double>& want, const char* what) {
  const auto cmp = [&](std::span<const double> g, std::span<const double> w,
                       const char* field) {
    ASSERT_EQ(g.size(), w.size());
    int bad = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (std::bit_cast<std::uint64_t>(g[i]) !=
          std::bit_cast<std::uint64_t>(w[i])) {
        ++bad;
      }
    }
    EXPECT_EQ(bad, 0) << what << "." << field;
  };
  cmp(got.u.flat(), want.u.flat(), "u");
  cmp(got.v.flat(), want.v.flat(), "v");
  cmp(got.eta.flat(), want.eta.flat(), "eta");
}

void expect_all_finite(const swm::state<double>& s, const char* what) {
  EXPECT_TRUE(swm::all_finite(std::span<const double>(s.u.flat()))) << what;
  EXPECT_TRUE(swm::all_finite(std::span<const double>(s.v.flat()))) << what;
  EXPECT_TRUE(swm::all_finite(std::span<const double>(s.eta.flat())))
      << what;
}

engine_options manual_opts(int threads) {
  engine_options opts;
  opts.threads = threads;
  opts.async = false;
  return opts;
}

/// A healthy Float16 production member with the autopilot riding
/// along (the paper's scaled-f16 configuration).
member_config f16_member() {
  member_config cfg;
  cfg.prec = personality::float16;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.steps = 10;
  cfg.seed = 7;
  cfg.log2_scale = 8;
  cfg.health_every = 1;
  cfg.record_every = 2;
  cfg.autopilot.check_every = 2;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// The zero-cost contract: an armed autopilot that never fires is
// invisible in the bits.
// ---------------------------------------------------------------------------

TEST(EnsembleRepair, AutopilotOnNoDriftIsBitIdenticalToUnmonitoredRun) {
  member_config cfg = f16_member();

  engine eng(manual_opts(2));
  const submit_ticket monitored = eng.submit(cfg);
  ASSERT_TRUE(monitored.ok());
  member_config plain = cfg;
  plain.autopilot = swm::autopilot_options{};  // check_every = 0: off
  const submit_ticket bare = eng.submit(plain);
  ASSERT_TRUE(bare.ok());
  eng.wait_all();

  const job_result* got = eng.result(monitored.id);
  const job_result* want = eng.result(bare.id);
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_TRUE(got->repairs.empty());
  EXPECT_EQ(got->prec, personality::float16);
  EXPECT_EQ(got->log2_scale, cfg.log2_scale);
  // Bit-identical including the Kahan compensation residuals: the
  // monitor only reads.
  expect_state_bits(got->prognostic, want->prognostic, "prognostic");
  expect_state_bits(got->compensation, want->compensation, "compensation");
  const auto st = eng.poll(monitored.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->repairs, 0);
  EXPECT_EQ(st->reason, fail_reason::none);
}

// ---------------------------------------------------------------------------
// The proactive ladder: injected range drift is repaired online.
// ---------------------------------------------------------------------------

TEST(EnsembleRepair, RangeDriftFaultRecoversViaOnlineRescale) {
  member_config cfg = f16_member();
  // Collapse the state by 2^-18 before step 3: the shadow stripe sees
  // the subnormal drift at the next check and restates in place. The
  // member tolerates a 5% tail (the SWM increment spectrum is wide),
  // so the single recentring rescale settles the range.
  cfg.autopilot.max_subnormal_fraction = 0.05;
  cfg.autopilot.max_overflow_fraction = 0.05;
  cfg.faults.push_back({fault_kind::scale_state, 3, -18, 0});

  engine eng(manual_opts(2));
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::done);
  EXPECT_EQ(st->steps_done, cfg.steps);
  EXPECT_GE(st->repairs, 1);

  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  expect_all_finite(r->prognostic, "prognostic");
  ASSERT_FALSE(r->repairs.empty());
  EXPECT_EQ(r->repairs.front().kind, repair_kind::rescale);
  EXPECT_EQ(r->repairs.front().cause, swm::autopilot_cause::subnormal_drift);
  EXPECT_EQ(r->repairs.front().rollback_to, -1);  // applied in place
  EXPECT_NE(r->log2_scale, cfg.log2_scale);       // the scale moved
  EXPECT_EQ(r->prec, personality::float16);       // no promotion needed
}

TEST(EnsembleRepair, RescalesExhaustedPromotesToNextRung) {
  member_config cfg = f16_member();
  cfg.autopilot.max_rescales = 0;  // ladder starts at promotion
  cfg.faults.push_back({fault_kind::scale_state, 3, -18, 0});

  engine eng(manual_opts(2));
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::done);
  EXPECT_EQ(st->steps_done, cfg.steps);

  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  expect_all_finite(r->prognostic, "prognostic");
  ASSERT_FALSE(r->repairs.empty());
  EXPECT_EQ(r->repairs.front().kind, repair_kind::promote);
  // f16's compensated rung promotes to bf16, at scale 0.
  EXPECT_EQ(r->prec, personality::bfloat16);
  EXPECT_EQ(r->log2_scale, 0);
  EXPECT_EQ(eng.active_members(), 0u);
  EXPECT_EQ(eng.backlog_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// The reactive ladder: a NaN upset rolls back to the last finite
// snapshot and re-runs.
// ---------------------------------------------------------------------------

TEST(EnsembleRepair, NaNFaultRollsBackToLastSnapshotAndCompletes) {
  member_config cfg = f16_member();
  cfg.faults.push_back({fault_kind::poison_nan, 4, 0, 37});

  engine eng(manual_opts(2));
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::done);
  EXPECT_EQ(st->steps_done, cfg.steps);
  EXPECT_EQ(st->reason, fail_reason::none);

  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  expect_all_finite(r->prognostic, "prognostic");
  ASSERT_FALSE(r->repairs.empty());
  const repair_event& e = r->repairs.front();
  EXPECT_EQ(e.cause, swm::autopilot_cause::numerical_error);
  EXPECT_EQ(e.step, 5);          // the sentinel tripped on step 5
  EXPECT_EQ(e.rollback_to, 4);   // back to the step-4 snapshot
  EXPECT_GE(e.bad_index, 0);     // satellite: the offending element
  // Every recorded snapshot of the completed run is finite: the
  // poisoned trajectory segment was rolled back, not published.
  for (const auto& snap : r->snapshots) expect_all_finite(snap, "snapshot");
}

TEST(EnsembleRepair, SeededMemberRollsBackToStartWithoutSnapshots) {
  member_config cfg = f16_member();
  cfg.record_every = 0;  // no snapshots: rollback re-runs the recipe
  cfg.faults.push_back({fault_kind::poison_nan, 4, 0, 3});

  engine eng(manual_opts(1));
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::done);
  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  expect_all_finite(r->prognostic, "prognostic");
  ASSERT_FALSE(r->repairs.empty());
  EXPECT_EQ(r->repairs.front().rollback_to, 0);
}

TEST(EnsembleRepair, RestoredMemberRollsBackToItsInitialImage) {
  // Build a finite restart image from a short clean run.
  member_config head = f16_member();
  head.steps = 4;
  head.faults.clear();
  engine eng(manual_opts(1));
  const submit_ticket th = eng.submit(head);
  ASSERT_TRUE(th.ok());
  eng.wait_all();
  const job_result* head_r = eng.result(th.id);
  ASSERT_NE(head_r, nullptr);

  member_config tail = f16_member();
  tail.steps = 6;
  tail.record_every = 0;
  tail.initial = &head_r->prognostic;
  tail.initial_steps = 4;
  tail.faults.push_back({fault_kind::poison_nan, 2, 0, 11});
  const submit_ticket tt = eng.submit(tail);
  ASSERT_TRUE(tt.ok());
  eng.wait_all();

  const auto st = eng.poll(tt.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::done);
  const job_result* r = eng.result(tt.id);
  ASSERT_NE(r, nullptr);
  expect_all_finite(r->prognostic, "prognostic");
  ASSERT_FALSE(r->repairs.empty());
  EXPECT_EQ(r->repairs.front().rollback_to, 0);  // the initial image
}

// ---------------------------------------------------------------------------
// Typed permanent failures: budgets and ladder tops.
// ---------------------------------------------------------------------------

TEST(EnsembleRepair, RetryBudgetExhaustionIsTyped) {
  engine eng(manual_opts(1));
  const tenant_id frugal = eng.register_tenant("frugal", 0);

  member_config cfg = f16_member();
  cfg.faults.push_back({fault_kind::poison_nan, 4, 0, 5});
  const submit_ticket t = eng.submit(cfg, frugal);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::failed);
  EXPECT_EQ(st->reason, fail_reason::retry_exhausted);
  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->reason, fail_reason::retry_exhausted);
  ASSERT_FALSE(r->repairs.empty());
  EXPECT_EQ(r->repairs.back().kind, repair_kind::permfail);
}

TEST(EnsembleRepair, TopRungHasNoPromotionLeft) {
  member_config cfg = f16_member();
  cfg.prec = personality::float64;  // already the top of the ladder
  cfg.log2_scale = 0;
  cfg.record_every = 1;
  // Arm the pilot but keep proactive checks out of the window: with
  // no range picture the first repair is a plain retry.
  cfg.autopilot.check_every = 50;
  // Two separate upsets: the first is retried, the second wants a
  // promotion that does not exist.
  cfg.faults.push_back({fault_kind::poison_nan, 2, 0, 1});
  cfg.faults.push_back({fault_kind::poison_nan, 5, 0, 2});

  engine eng(manual_opts(1));
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::failed);
  EXPECT_EQ(st->reason, fail_reason::ladder_exhausted);
  const job_result* r = eng.result(t.id);
  ASSERT_NE(r, nullptr);
  ASSERT_GE(r->repairs.size(), 2u);
  EXPECT_EQ(r->repairs.front().kind, repair_kind::retry);
  EXPECT_EQ(r->repairs.back().kind, repair_kind::permfail);
}

TEST(EnsembleRepair, NoAutopilotStillFailsStop) {
  member_config cfg = f16_member();
  cfg.autopilot = swm::autopilot_options{};  // off
  cfg.faults.push_back({fault_kind::poison_nan, 4, 0, 0});

  engine eng(manual_opts(1));
  const submit_ticket t = eng.submit(cfg);
  ASSERT_TRUE(t.ok());
  eng.wait_all();

  const auto st = eng.poll(t.id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, job_state::failed);
  EXPECT_EQ(st->reason, fail_reason::numerical);
  EXPECT_EQ(st->repairs, 0);
}

TEST(EnsembleRepair, AutopilotConfigIsValidated) {
  engine eng(manual_opts(1));
  member_config bad = f16_member();
  bad.autopilot.check_every = -1;
  EXPECT_EQ(eng.submit(bad).error, submit_error::invalid_config);
  bad = f16_member();
  bad.autopilot.stripe_rows = 0;
  EXPECT_EQ(eng.submit(bad).error, submit_error::invalid_config);
}

// ---------------------------------------------------------------------------
// Determinism: the repair transcript and the repaired bits are
// identical across pool sizes and submission orders.
// ---------------------------------------------------------------------------

namespace {

/// A faulted mixed cohort: drift-rescale, drift-promote, NaN-retry
/// members plus clean controls, at two grid shapes.
std::vector<member_config> faulted_suite() {
  std::vector<member_config> suite;
  {
    member_config cfg = f16_member();
    cfg.faults.push_back({fault_kind::scale_state, 3, -18, 0});
    suite.push_back(cfg);
  }
  {
    member_config cfg = f16_member();
    cfg.seed = 11;
    cfg.autopilot.max_rescales = 0;
    cfg.faults.push_back({fault_kind::scale_state, 5, -18, 0});
    suite.push_back(cfg);
  }
  {
    member_config cfg = f16_member();
    cfg.seed = 13;
    cfg.faults.push_back({fault_kind::poison_nan, 4, 0, 21});
    suite.push_back(cfg);
  }
  {
    member_config clean = f16_member();
    clean.seed = 17;
    suite.push_back(clean);
  }
  {
    member_config wide = f16_member();
    wide.nx = 32;
    wide.ny = 16;
    wide.seed = 19;
    wide.autopilot.max_rescales = 0;
    wide.faults.push_back({fault_kind::poison_nan, 3, 0, 40});
    wide.faults.push_back({fault_kind::poison_nan, 6, 0, 41});
    suite.push_back(wide);
  }
  return suite;
}

struct run_out {
  std::vector<repair_event> repairs;
  swm::state<double> prognostic;
  swm::state<double> compensation;
  personality prec = personality::float64;
  int log2_scale = 0;
  job_state state = job_state::queued;
};

std::vector<run_out> run_suite(int threads, unsigned order_seed) {
  std::vector<member_config> suite = faulted_suite();
  std::vector<std::size_t> order(suite.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937 rng(order_seed);
  std::shuffle(order.begin(), order.end(), rng);

  engine eng(manual_opts(threads));
  std::vector<job_id> ids(suite.size());
  for (const std::size_t i : order) {
    const submit_ticket t = eng.submit(suite[i]);
    EXPECT_TRUE(t.ok());
    ids[i] = t.id;
  }
  eng.wait_all();

  std::vector<run_out> out;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const job_result* r = eng.result(ids[i]);
    EXPECT_NE(r, nullptr);
    run_out o;
    o.repairs = r->repairs;
    o.prognostic = r->prognostic;
    o.compensation = r->compensation;
    o.prec = r->prec;
    o.log2_scale = r->log2_scale;
    const auto st = eng.poll(ids[i]);
    if (st.has_value()) o.state = st->state;
    out.push_back(std::move(o));
  }
  return out;
}

void expect_same_transcript(const run_out& got, const run_out& want,
                            std::size_t member) {
  EXPECT_EQ(got.state, want.state) << "member " << member;
  EXPECT_EQ(got.prec, want.prec) << "member " << member;
  EXPECT_EQ(got.log2_scale, want.log2_scale) << "member " << member;
  ASSERT_EQ(got.repairs.size(), want.repairs.size()) << "member " << member;
  for (std::size_t k = 0; k < got.repairs.size(); ++k) {
    const repair_event& g = got.repairs[k];
    const repair_event& w = want.repairs[k];
    EXPECT_EQ(g.kind, w.kind) << "member " << member << " event " << k;
    EXPECT_EQ(g.cause, w.cause) << "member " << member << " event " << k;
    EXPECT_EQ(g.step, w.step) << "member " << member << " event " << k;
    EXPECT_EQ(g.prec, w.prec) << "member " << member << " event " << k;
    EXPECT_EQ(g.log2_scale, w.log2_scale)
        << "member " << member << " event " << k;
    EXPECT_EQ(g.rollback_to, w.rollback_to)
        << "member " << member << " event " << k;
    EXPECT_EQ(g.bad_index, w.bad_index)
        << "member " << member << " event " << k;
  }
  expect_state_bits(got.prognostic, want.prognostic, "prognostic");
  expect_state_bits(got.compensation, want.compensation, "compensation");
}

}  // namespace

TEST(EnsembleRepairDeterminism, TranscriptIdenticalAcrossPoolsAndOrders) {
  const std::vector<run_out> reference = run_suite(1, 1u);
  // Every faulted member completed and every f16 member stayed f16 or
  // promoted — none may end non-finite or failed.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].state, job_state::done) << "member " << i;
    expect_all_finite(reference[i].prognostic, "prognostic");
  }
  for (const int threads : {2, 4, 8}) {
    for (const unsigned order : {1u, 2u, 3u}) {
      SCOPED_TRACE(::testing::Message()
                   << "pool " << threads << " order " << order);
      const std::vector<run_out> got = run_suite(threads, order);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same_transcript(got[i], reference[i], i);
      }
    }
  }
}
