// Cross-module integration: distributed programs over the simulated
// MPI exercising the kernels and the model end-to-end.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "fp/float16.hpp"
#include "kernels/generic.hpp"
#include "kernels/registry.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/runtime.hpp"
#include "swm/model.hpp"

using namespace tfx;
using tfx::fp::float16;

TEST(Integration, DistributedDotProduct) {
  // Split a dot product across 4 ranks; allreduce the partials. The
  // distributed result must match the serial one.
  const std::size_t n = 4096;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.01 * static_cast<double>(i));
    y[i] = std::cos(0.01 * static_cast<double>(i));
  }
  const double serial = kernels::dot<double>(x, y);

  const int p = 4;
  mpisim::world w(p);
  std::vector<double> results(static_cast<std::size_t>(p));
  w.run([&](mpisim::communicator& comm) {
    const std::size_t chunk = n / static_cast<std::size_t>(p);
    const std::size_t off = chunk * static_cast<std::size_t>(comm.rank());
    const double partial = kernels::dot<double>(
        std::span<const double>(x.data() + off, chunk),
        std::span<const double>(y.data() + off, chunk));
    std::vector<double> in{partial}, out{0.0};
    mpisim::allreduce(comm, std::span<const double>(in),
                      std::span<double>(out), mpisim::ops::sum{},
                      mpisim::coll_algorithm::recursive_doubling);
    results[static_cast<std::size_t>(comm.rank())] = out[0];
  });
  for (const double r : results) EXPECT_NEAR(r, serial, 1e-9);
}

TEST(Integration, HaloExchangeDiffusionMatchesSerial) {
  // 1-D explicit diffusion distributed over 4 ranks with ring halo
  // exchange, compared against the serial stencil - the communication
  // skeleton of any distributed version of the shallow-water model.
  const int p = 4;
  const std::size_t local = 32;
  const std::size_t n = local * static_cast<std::size_t>(p);
  const int steps = 25;
  const double alpha = 0.2;

  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) {
    serial[i] = std::sin(2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(n));
  }
  for (int s = 0; s < steps; ++s) {
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double left = serial[(i + n - 1) % n];
      const double right = serial[(i + 1) % n];
      next[i] = serial[i] + alpha * (left - 2.0 * serial[i] + right);
    }
    serial.swap(next);
  }

  std::vector<double> gathered(n);
  mpisim::world w(p);
  w.run([&](mpisim::communicator& comm) {
    const int r = comm.rank();
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    std::vector<double> u(local + 2);  // with halo cells
    for (std::size_t i = 0; i < local; ++i) {
      const std::size_t gi = local * static_cast<std::size_t>(r) + i;
      u[i + 1] = std::sin(2.0 * M_PI * static_cast<double>(gi) /
                          static_cast<double>(n));
    }
    for (int s = 0; s < steps; ++s) {
      // Exchange halos: send my edges, receive neighbours' edges.
      comm.send_value(u[local], right, 10);
      comm.send_value(u[1], left, 11);
      u[0] = comm.recv_value<double>(left, 10);
      u[local + 1] = comm.recv_value<double>(right, 11);
      std::vector<double> next(local + 2);
      for (std::size_t i = 1; i <= local; ++i) {
        next[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
      }
      u.swap(next);
    }
    mpisim::gather(comm, std::span<const double>(u.data() + 1, local),
                   std::span<double>(gathered), 0);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(gathered[i], serial[i], 1e-12) << "i=" << i;
  }
}

TEST(Integration, DistributedFloat16AxpyThroughRegistry) {
  // The whole stack at once: the trampoline registry dispatches a
  // Float16 axpy inside simulated MPI ranks, each working on its
  // shard, with results gathered and checked against serial.
  auto& reg = kernels::blas_registry::instance();
  ASSERT_TRUE(reg.set_current("Julia"));

  const int p = 4;
  const std::size_t local = 64;
  const std::size_t n = local * static_cast<std::size_t>(p);
  std::vector<float16> x(n), y_serial(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = float16(0.01 * static_cast<double>(i % 100));
    y_serial[i] = float16(1.0);
  }
  auto y_dist = y_serial;
  kernels::axpy_dispatch(float16(2.0), std::span<const float16>(x),
                         std::span<float16>(y_serial));

  mpisim::world w(p);
  w.run([&](mpisim::communicator& comm) {
    const std::size_t off = local * static_cast<std::size_t>(comm.rank());
    kernels::axpy_dispatch(float16(2.0),
                           std::span<const float16>(x.data() + off, local),
                           std::span<float16>(y_dist.data() + off, local));
    mpisim::barrier(comm);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(y_dist[i].bits(), y_serial[i].bits()) << "i=" << i;
  }
}

TEST(Integration, ModelRunsUnderSimulatedRanks) {
  // Ensemble pattern: each rank runs an independent small model (the
  // thread-local FP environment must isolate the ranks), then the
  // energies are allreduced for an ensemble mean.
  const int p = 3;
  mpisim::world w(p);
  std::vector<double> means(static_cast<std::size_t>(p));
  w.run([&](mpisim::communicator& comm) {
    tfx::fp::ftz_guard ftz(tfx::fp::ftz_mode::flush);  // per-thread
    swm::swm_params params;
    params.nx = 32;
    params.ny = 16;
    params.log2_scale = 12;
    swm::model<float16> m(params, swm::integration_scheme::compensated);
    m.seed_random_eddies(static_cast<std::uint64_t>(comm.rank()) + 1, 0.4);
    m.run(30);
    const double e = m.diag().energy;
    EXPECT_TRUE(m.diag().finite);
    std::vector<double> in{e}, out{0.0};
    mpisim::allreduce(comm, std::span<const double>(in),
                      std::span<double>(out), mpisim::ops::sum{},
                      mpisim::coll_algorithm::recursive_doubling);
    means[static_cast<std::size_t>(comm.rank())] =
        out[0] / static_cast<double>(p);
  });
  EXPECT_GT(means[0], 0.0);
  EXPECT_DOUBLE_EQ(means[0], means[1]);
  EXPECT_DOUBLE_EQ(means[1], means[2]);
}
