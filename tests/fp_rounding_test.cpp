// Bit-exact conversion tests for the 16-bit formats (fp/rounding.hpp).
//
// The exhaustive suites walk all 65536 binary16 patterns; the rounding
// suites check round-to-nearest-even at every representable boundary
// via exactly-representable midpoints.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "fp/rounding.hpp"

namespace fp = tfx::fp;

namespace {

float f16_to_f32(std::uint16_t h) {
  return std::bit_cast<float>(fp::f16_bits_to_f32_bits(h));
}

std::uint16_t f32_to_f16(float f) {
  return fp::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(f));
}

bool is_f16_nan(std::uint16_t h) { return (h & 0x7fffu) > 0x7c00u; }

}  // namespace

TEST(Fp16Conversion, ExhaustiveRoundTrip) {
  // Every non-NaN binary16 value must survive the f16 -> f32 -> f16
  // round trip bit-exactly (the widening is exact, the narrowing of an
  // exactly-representable value must not move).
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if (is_f16_nan(h)) continue;
    EXPECT_EQ(f32_to_f16(f16_to_f32(h)), h) << "pattern 0x" << std::hex << bits;
  }
}

TEST(Fp16Conversion, ExhaustiveWideningMatchesValue) {
  // Check the widening against an independent construction: sign *
  // mantissa * 2^exp assembled with std::ldexp.
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if (is_f16_nan(h)) continue;
    const bool neg = (h & 0x8000u) != 0;
    const int exp = (h >> 10) & 0x1f;
    const int man = h & 0x3ff;
    double expected;
    if (exp == 0x1f) {
      expected = std::numeric_limits<double>::infinity();
    } else if (exp == 0) {
      expected = std::ldexp(man, -24);  // subnormal: man * 2^-24
    } else {
      expected = std::ldexp(1024 + man, exp - 15 - 10);
    }
    if (neg) expected = -expected;
    EXPECT_EQ(static_cast<double>(f16_to_f32(h)), expected)
        << "pattern 0x" << std::hex << bits;
  }
}

TEST(Fp16Conversion, ExhaustiveOrderingPreserved) {
  // Positive finite binary16 values are ordered like their bit
  // patterns; the widened floats must preserve that strict order.
  float prev = f16_to_f32(0);
  for (std::uint32_t bits = 1; bits <= 0x7c00u; ++bits) {
    const float cur = f16_to_f32(static_cast<std::uint16_t>(bits));
    EXPECT_LT(prev, cur) << "pattern 0x" << std::hex << bits;
    prev = cur;
  }
}

TEST(Fp16Rounding, TiesToEvenAtEveryBoundary) {
  // For every adjacent pair of positive finite binary16 values (a, b),
  // their midpoint is exactly representable in binary32 (12 significant
  // bits). RN-even must send the midpoint to whichever of a/b has an
  // even mantissa, and anything strictly beyond the midpoint to b.
  for (std::uint32_t bits = 0; bits < 0x7bffu; ++bits) {
    const auto a = static_cast<std::uint16_t>(bits);
    const auto b = static_cast<std::uint16_t>(bits + 1);
    const float fa = f16_to_f32(a);
    const float fb = f16_to_f32(b);
    const float mid = 0.5f * (fa + fb);  // exact: both are 11-bit values
    const std::uint16_t even = (a & 1u) == 0 ? a : b;
    EXPECT_EQ(f32_to_f16(mid), even) << "midpoint of 0x" << std::hex << bits;
    EXPECT_EQ(f32_to_f16(std::nextafterf(mid, 4.0f * fb + 1.0f)), b);
    if (fa > 0.0f) {
      EXPECT_EQ(f32_to_f16(std::nextafterf(mid, 0.0f)), a);
    }
  }
}

TEST(Fp16Rounding, OverflowThreshold) {
  // Largest finite binary16 is 65504; values >= 65520 (the midpoint to
  // the next would-be value 65536) round to infinity, RN-even sends
  // exactly 65520 to infinity too (65504 has odd mantissa... check:
  // 0x7bff mantissa 0x3ff odd, so the tie goes UP to infinity).
  EXPECT_EQ(f32_to_f16(65504.0f), 0x7bffu);
  EXPECT_EQ(f32_to_f16(65519.996f), 0x7bffu);
  EXPECT_EQ(f32_to_f16(65520.0f), 0x7c00u);
  EXPECT_EQ(f32_to_f16(65536.0f), 0x7c00u);
  EXPECT_EQ(f32_to_f16(1e30f), 0x7c00u);
  EXPECT_EQ(f32_to_f16(-65520.0f), 0xfc00u);
  EXPECT_EQ(f32_to_f16(std::numeric_limits<float>::infinity()), 0x7c00u);
}

TEST(Fp16Rounding, SubnormalBoundaries) {
  // Smallest subnormal is 2^-24. The tie between 0 and 2^-24 sits at
  // 2^-25: RN-even sends it to 0 (even).
  EXPECT_EQ(f32_to_f16(std::ldexp(1.0f, -24)), 0x0001u);
  EXPECT_EQ(f32_to_f16(std::ldexp(1.0f, -25)), 0x0000u);
  EXPECT_EQ(f32_to_f16(std::nextafterf(std::ldexp(1.0f, -25), 1.0f)), 0x0001u);
  // Largest subnormal 1023 * 2^-24; smallest normal 2^-14.
  EXPECT_EQ(f32_to_f16(1023.0f * std::ldexp(1.0f, -24)), 0x03ffu);
  EXPECT_EQ(f32_to_f16(std::ldexp(1.0f, -14)), 0x0400u);
  // binary32 subnormals are all far below 2^-25: signed zero.
  EXPECT_EQ(f32_to_f16(std::numeric_limits<float>::denorm_min()), 0x0000u);
  EXPECT_EQ(f32_to_f16(-std::numeric_limits<float>::denorm_min()), 0x8000u);
}

TEST(Fp16Rounding, NanAndSignHandling) {
  EXPECT_TRUE(is_f16_nan(f32_to_f16(std::nanf(""))));
  EXPECT_TRUE(is_f16_nan(f32_to_f16(-std::nanf(""))));
  EXPECT_EQ(f32_to_f16(0.0f), 0x0000u);
  EXPECT_EQ(f32_to_f16(-0.0f), 0x8000u);
  EXPECT_EQ(f32_to_f16(-1.0f), 0xbc00u);
}

TEST(Fp16FromDouble, AgreesWithFloatPathWhenExact) {
  // When the double is exactly a binary32 value, the round-to-odd inner
  // step is a no-op and both paths must agree.
  for (float f : {0.0f, 1.0f, -2.5f, 1024.0f, 65504.0f, 1e-7f, 3.14159f}) {
    EXPECT_EQ(fp::f64_to_f16_bits(static_cast<double>(f)), f32_to_f16(f));
  }
}

TEST(Fp16FromDouble, DoubleRoundingTrapAvoided) {
  // value = 1 + 2^-11 + 2^-30: exactly between binary16 neighbours
  // 1.0 and 1+2^-10, nudged up by 2^-30 (invisible at binary32
  // precision around 1+2^-11). Naive double->float->half would round
  // 1+2^-11+2^-30 -> 1+2^-11 (f32) -> tie-to-even -> 1.0: WRONG.
  // Correct single rounding gives 1+2^-10.
  const double trap = 1.0 + std::ldexp(1.0, -11) + std::ldexp(1.0, -30);
  EXPECT_EQ(fp::f64_to_f16_bits(trap), 0x3c01u);  // 1 + 2^-10

  // Mirror case below the midpoint: 1 + 2^-11 - 2^-30 must go DOWN.
  const double trap_down = 1.0 + std::ldexp(1.0, -11) - std::ldexp(1.0, -30);
  EXPECT_EQ(fp::f64_to_f16_bits(trap_down), 0x3c00u);  // 1.0

  // The exact tie stays a tie: to even (1.0).
  EXPECT_EQ(fp::f64_to_f16_bits(1.0 + std::ldexp(1.0, -11)), 0x3c00u);
}

TEST(Fp16FromDouble, RandomizedAgainstExactComparison) {
  // For random doubles, the correctly rounded binary16 is the candidate
  // (among the two bracketing halves) closer to the value, ties to
  // even - checked via exact double arithmetic.
  std::uint64_t state = 12345;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200000; ++trial) {
    const double mag = std::ldexp(1.0, static_cast<int>(next() % 45) - 26);
    const double x =
        (static_cast<double>(next() % (1u << 24)) / (1u << 24) * 2.0 - 1.0) *
        mag;
    const std::uint16_t got = fp::f64_to_f16_bits(x);
    ASSERT_FALSE(is_f16_nan(got));
    if ((got & 0x7c00u) == 0x7c00u) {
      // Rounded to infinity: must be at/beyond the overflow threshold
      // 65520 (max + half ulp); closest-value logic does not apply.
      EXPECT_GE(std::abs(x), 65520.0);
      continue;
    }
    const double gv = static_cast<double>(f16_to_f32(got));
    // Neighbours of the result:
    const std::uint16_t lo = static_cast<std::uint16_t>(got - 1);
    const std::uint16_t hi = static_cast<std::uint16_t>(got + 1);
    if (!is_f16_nan(lo) && (got & 0x7fffu) != 0 && (lo & 0x7c00u) != 0x7c00u) {
      const double lv = static_cast<double>(f16_to_f32(lo));
      EXPECT_LE(std::abs(gv - x), std::abs(lv - x))
          << "x=" << x << " got=" << std::hex << got;
    }
    if ((hi & 0x7c00u) != 0x7c00u) {
      const double hv = static_cast<double>(f16_to_f32(hi));
      EXPECT_LE(std::abs(gv - x), std::abs(hv - x))
          << "x=" << x << " got=" << std::hex << got;
    }
  }
}

TEST(Bf16Conversion, RoundTripAndBasicValues) {
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto b = static_cast<std::uint16_t>(bits);
    const bool nan = ((b & 0x7f80u) == 0x7f80u) && (b & 0x7fu) != 0;
    if (nan) continue;
    const float f = std::bit_cast<float>(fp::bf16_bits_to_f32_bits(b));
    EXPECT_EQ(fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(f)), b);
  }
  EXPECT_EQ(fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(1.0f)),
            0x3f80u);
  EXPECT_EQ(fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(-2.0f)),
            0xc000u);
}

TEST(Bf16Conversion, RoundToNearestEven) {
  // 1 + 2^-8 is the midpoint between bf16 neighbours 1.0 (mantissa 0,
  // even) and 1 + 2^-7: the tie must go to 1.0.
  const float tie = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(tie)),
            0x3f80u);
  const float above = std::nextafterf(tie, 2.0f);
  EXPECT_EQ(fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(above)),
            0x3f81u);
  // Next midpoint (between 1+2^-7 and 1+2^-6) must go UP to even.
  const float tie2 = 1.0f + std::ldexp(3.0f, -8);
  EXPECT_EQ(fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(tie2)),
            0x3f82u);
}

TEST(Bf16Conversion, BigRangeNoOverflowWhereFloat16Overflows) {
  // The paper's motivation for comparing the formats: bfloat16 keeps
  // binary32's exponent range.
  EXPECT_EQ(fp::f64_to_bf16_bits(1e30),
            fp::f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(1e30f)));
  const std::uint16_t b = fp::f64_to_bf16_bits(1e30);
  EXPECT_NE(b & 0x7f80u, 0x7f80u);  // finite
  EXPECT_EQ(fp::f64_to_f16_bits(1e30), 0x7c00u);  // f16: infinity
}
