#include "swm/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace tfx::swm {

diagnostics compute_diagnostics(const state<double>& s, const swm_params& p) {
  diagnostics d;
  const double dA = p.dx() * p.dy();
  double mass = 0, energy = 0, vmax = 0;
  bool finite = true;
  for (int j = 0; j < s.ny(); ++j) {
    for (int i = 0; i < s.nx(); ++i) {
      const double u = s.u(i, j);
      const double v = s.v(i, j);
      const double eta = s.eta(i, j);
      finite = finite && std::isfinite(u) && std::isfinite(v) &&
               std::isfinite(eta);
      mass += eta;
      energy += 0.5 * (p.depth * (u * u + v * v) + p.gravity * eta * eta);
      vmax = std::max({vmax, std::abs(u), std::abs(v)});
    }
  }
  d.mass = mass * dA;
  d.energy = energy * dA;
  d.max_speed = vmax;
  d.cfl = vmax * p.dt() / p.dx();
  d.finite = finite;

  const auto zeta = relative_vorticity(s, p);
  double ens = 0;
  for (const double z : zeta.flat()) ens += 0.5 * z * z;
  d.enstrophy = ens * dA;
  return d;
}

field2d<double> relative_vorticity(const state<double>& s,
                                   const swm_params& p) {
  field2d<double> zeta(s.nx(), s.ny());
  for (int j = 0; j < s.ny(); ++j) {
    const int jm = zeta.jm(j);
    for (int i = 0; i < s.nx(); ++i) {
      const int im = zeta.im(i);
      zeta(i, j) = (s.v(i, j) - s.v(im, j)) / p.dx() -
                   (s.u(i, j) - s.u(i, jm)) / p.dy();
    }
  }
  return zeta;
}

double rmse(const field2d<double>& a, const field2d<double>& b) {
  TFX_EXPECTS(a.size() == b.size());
  auto fa = a.flat();
  auto fb = b.flat();
  double acc = 0;
  for (std::size_t k = 0; k < fa.size(); ++k) {
    const double d = fa[k] - fb[k];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(fa.size()));
}

double rms(const field2d<double>& a) {
  auto fa = a.flat();
  double acc = 0;
  for (const double v : fa) acc += v * v;
  return std::sqrt(acc / static_cast<double>(fa.size()));
}

std::vector<double> zonal_power_spectrum(const field2d<double>& f) {
  const int nx = f.nx();
  const int ny = f.ny();
  std::vector<double> power(static_cast<std::size_t>(nx / 2 + 1), 0.0);
  for (int j = 0; j < ny; ++j) {
    for (int k = 0; k <= nx / 2; ++k) {
      double re = 0, im = 0;
      for (int i = 0; i < nx; ++i) {
        const double phase = -2.0 * M_PI * k * i / nx;
        re += f(i, j) * std::cos(phase);
        im += f(i, j) * std::sin(phase);
      }
      power[static_cast<std::size_t>(k)] += (re * re + im * im) / nx;
    }
  }
  return power;
}

double correlation(const field2d<double>& a, const field2d<double>& b) {
  TFX_EXPECTS(a.size() == b.size() && a.size() > 1);
  auto fa = a.flat();
  auto fb = b.flat();
  const auto n = static_cast<double>(fa.size());
  double ma = 0, mb = 0;
  for (std::size_t k = 0; k < fa.size(); ++k) {
    ma += fa[k];
    mb += fb[k];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t k = 0; k < fa.size(); ++k) {
    const double da = fa[k] - ma;
    const double db = fb[k] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0 || vb == 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace tfx::swm
