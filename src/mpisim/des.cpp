#include "mpisim/des.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "core/contracts.hpp"
#include "mpisim/obs_events.hpp"
#include "obs/metrics.hpp"

namespace tfx::mpisim {

double des_result::max_clock() const {
  TFX_EXPECTS(!clocks.empty());
  return *std::max_element(clocks.begin(), clocks.end());
}

double des_result::min_clock() const {
  TFX_EXPECTS(!clocks.empty());
  return *std::min_element(clocks.begin(), clocks.end());
}

double des_result::avg_clock() const {
  TFX_EXPECTS(!clocks.empty());
  double acc = 0;
  for (double c : clocks) acc += c;
  return acc / static_cast<double>(clocks.size());
}

namespace {

// In-flight messages live in one shared pool of singly-linked nodes;
// each channel holds a FIFO as (head, tail) indices into the pool.
// This replaces the seed's unordered_map<uint64, deque> wire state,
// whose hashing and per-deque block allocations dominated DES host
// time at thousand-rank scale (docs/TOPOLOGY.md has the numbers).
struct wire_node {
  double depart;
  std::uint64_t seq;
  std::int32_t next;
  bool poison;  ///< the sender exhausted its retries
};

// One (src,dst) pair that the program actually uses. next_seq and
// tx_bytes fold the seed's chan_seq map and dense p*p byte-counter
// matrix (128 MB at 4096 ranks) into the same cache line as the FIFO.
struct channel_state {
  std::int32_t head = -1;
  std::int32_t tail = -1;
  std::uint64_t next_seq = 0;
  std::uint64_t tx_bytes = 0;
};

}  // namespace

des_result simulate(const sim_program& prog, const tofud_params& net,
                    const torus_placement& place,
                    std::vector<double> start_clocks,
                    const fault_plane* faults, des_options opts) {
  const int p = prog.size();
  TFX_EXPECTS(p == place.rank_count());
  const bool faulty = faults != nullptr && faults->active();
  const bool contended = opts.fabric == fabric_mode::contended;

  des_result result;
  if (start_clocks.empty()) {
    result.clocks.assign(static_cast<std::size_t>(p), 0.0);
  } else {
    TFX_EXPECTS(static_cast<int>(start_clocks.size()) == p);
    result.clocks = std::move(start_clocks);
  }
  if (faulty) result.deliveries.resize(static_cast<std::size_t>(p));

  // ---- program pre-scan: build the flat channel table --------------
  // Every (src,dst) pair referenced by a send OR a recv gets one dense
  // channel index; per-op indices are resolved once here so the hot
  // loop never hashes or searches. Scanning recvs too guarantees a
  // receiver blocked on a crashed sender still finds its channel.
  const auto up = static_cast<std::uint64_t>(p);
  std::vector<std::size_t> op_base(static_cast<std::size_t>(p) + 1, 0);
  std::size_t total_ops = 0;
  std::size_t total_sends = 0;
  for (int r = 0; r < p; ++r) {
    op_base[static_cast<std::size_t>(r)] = total_ops;
    total_ops += prog.ranks[static_cast<std::size_t>(r)].size();
  }
  op_base[static_cast<std::size_t>(p)] = total_ops;

  std::vector<std::uint64_t> chan_keys;
  for (int r = 0; r < p; ++r) {
    const auto ur = static_cast<std::uint64_t>(r);
    // Collective programs address the same few peers thousands of
    // times (the ring talks to 2); a small recently-seen window drops
    // the duplicates so the global sort below stays near-linear in the
    // *channel* count, not the op count.
    std::array<std::uint64_t, 8> recent;
    recent.fill(~std::uint64_t{0});
    std::size_t cursor = 0;
    const auto note = [&](std::uint64_t key) {
      for (const std::uint64_t seen : recent) {
        if (seen == key) return;
      }
      recent[cursor] = key;
      cursor = (cursor + 1) % recent.size();
      chan_keys.push_back(key);
    };
    for (const sim_op& op : prog.ranks[static_cast<std::size_t>(r)]) {
      if (op.what == sim_op::kind::send) {
        note(ur * up + static_cast<std::uint64_t>(op.peer));
        ++total_sends;
      } else if (op.what == sim_op::kind::recv) {
        note(static_cast<std::uint64_t>(op.peer) * up + ur);
      }
    }
  }
  std::sort(chan_keys.begin(), chan_keys.end());
  chan_keys.erase(std::unique(chan_keys.begin(), chan_keys.end()),
                  chan_keys.end());
  const auto chan_of = [&chan_keys](std::uint64_t key) {
    const auto it =
        std::lower_bound(chan_keys.begin(), chan_keys.end(), key);
    return static_cast<std::int32_t>(it - chan_keys.begin());
  };

  // Per-op channel index, flattened across ranks (compute ops keep -1).
  // The same recently-seen trick caches resolved (key, index) pairs so
  // the binary search runs per *distinct* peer, not per op.
  std::vector<std::int32_t> op_chan(total_ops, -1);
  for (int r = 0; r < p; ++r) {
    const auto ur = static_cast<std::uint64_t>(r);
    const auto& ops = prog.ranks[static_cast<std::size_t>(r)];
    std::int32_t* slot = op_chan.data() + op_base[static_cast<std::size_t>(r)];
    std::array<std::uint64_t, 8> ckey;
    std::array<std::int32_t, 8> cidx{};
    ckey.fill(~std::uint64_t{0});
    std::size_t cursor = 0;
    const auto resolve = [&](std::uint64_t key) {
      for (std::size_t k = 0; k < ckey.size(); ++k) {
        if (ckey[k] == key) return cidx[k];
      }
      const std::int32_t idx = chan_of(key);
      ckey[cursor] = key;
      cidx[cursor] = idx;
      cursor = (cursor + 1) % ckey.size();
      return idx;
    };
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const sim_op& op = ops[i];
      if (op.what == sim_op::kind::send) {
        slot[i] = resolve(ur * up + static_cast<std::uint64_t>(op.peer));
      } else if (op.what == sim_op::kind::recv) {
        slot[i] = resolve(static_cast<std::uint64_t>(op.peer) * up + ur);
      }
    }
  }

  std::vector<channel_state> channels(chan_keys.size());
  std::vector<wire_node> pool;
  pool.reserve(total_sends);  // one entry per send op, good or poisoned
  std::int32_t free_head = -1;
  const auto wire_push = [&](std::int32_t chan, double depart,
                             std::uint64_t seq, bool poison) {
    std::int32_t idx;
    if (free_head >= 0) {
      idx = free_head;
      free_head = pool[static_cast<std::size_t>(idx)].next;
    } else {
      idx = static_cast<std::int32_t>(pool.size());
      pool.push_back({});
    }
    pool[static_cast<std::size_t>(idx)] = {depart, seq, -1, poison};
    channel_state& c = channels[static_cast<std::size_t>(chan)];
    if (c.tail < 0) {
      c.head = c.tail = idx;
    } else {
      pool[static_cast<std::size_t>(c.tail)].next = idx;
      c.tail = idx;
    }
  };
  const auto wire_pop = [&](std::int32_t chan) {
    channel_state& c = channels[static_cast<std::size_t>(chan)];
    const std::int32_t idx = c.head;
    wire_node node = pool[static_cast<std::size_t>(idx)];
    c.head = node.next;
    if (c.head < 0) c.tail = -1;
    pool[static_cast<std::size_t>(idx)].next = free_head;
    free_head = idx;
    return node;
  };

  // ---- contended fabric state --------------------------------------
  // Per directed link: when it frees up, and its lifetime occupancy.
  std::vector<double> link_free;
  std::vector<double> link_busy;
  if (contended) {
    link_free.assign(static_cast<std::size_t>(place.link_count()), 0.0);
    link_busy.assign(static_cast<std::size_t>(place.link_count()), 0.0);
  }
  // Store-and-forward: the message re-serializes on every link of its
  // dimension-ordered route, waiting whenever the link is still busy
  // with earlier traffic. Returns the depart time off the last link.
  const auto route_depart = [&](int src_rank, int dst_rank,
                                std::size_t bytes, double inject_start) {
    const int node_src = place.node_of(src_rank);
    const int node_dst = place.node_of(dst_rank);
    if (node_src == node_dst) return inject_start;  // never touches links
    const double ser =
        static_cast<double>(bytes) / net.link_bandwidth_Bps;
    double t = inject_start;
    double waited = 0;
    ++result.links.routed_messages;
    place.for_each_route_link(node_src, node_dst, [&](int link) {
      const auto li = static_cast<std::size_t>(link);
      ++result.links.link_hops;
      if (link_free[li] > t) {
        waited += link_free[li] - t;
        t = link_free[li];
        ++result.links.contended_hops;
      }
      t += ser;
      link_free[li] = t;
      link_busy[li] += ser;
    });
    if (waited > 0) {
      result.links.wait_seconds += waited;
      obs_ev::emit_link_wait(src_rank, dst_rank, inject_start, waited);
    }
    return t;
  };

  std::vector<std::uint64_t> sends_total(static_cast<std::size_t>(p), 0);
  std::vector<std::uint8_t> crashed(static_cast<std::size_t>(p), 0);

  std::vector<std::size_t> pc(static_cast<std::size_t>(p), 0);
  std::vector<double> send_port_free(static_cast<std::size_t>(p), 0.0);
  std::vector<double> recv_port_free(static_cast<std::size_t>(p), 0.0);

  // Observability: all ranks are simulated on this one host thread,
  // but events carry track == rank and the *virtual* clock, so the DES
  // trace is bit-reproducible and comparable record-for-record with
  // the threaded runtime's (tests/obs_trace_test.cpp). tx byte
  // counters flush from the channel table at the end.
  const bool traced = tfx::obs::active();
  std::size_t done = 0;
  for (int r = 0; r < p; ++r) {
    if (prog.ranks[static_cast<std::size_t>(r)].empty()) ++done;
  }
  auto halt = [&](int r) {
    // A crashed (or poisoned, or cascade-starved) rank stops executing
    // its remaining ops - the threaded analogue of comm_error.
    if (crashed[static_cast<std::size_t>(r)] == 0) {
      crashed[static_cast<std::size_t>(r)] = 1;
      ++done;
    }
  };

  while (done < static_cast<std::size_t>(p)) {
    bool progressed = false;
    for (int r = 0; r < p; ++r) {
      if (crashed[static_cast<std::size_t>(r)] != 0) continue;
      const auto& ops = prog.ranks[static_cast<std::size_t>(r)];
      const std::int32_t* chans =
          op_chan.data() + op_base[static_cast<std::size_t>(r)];
      auto& i = pc[static_cast<std::size_t>(r)];
      double& clock = result.clocks[static_cast<std::size_t>(r)];
      while (i < ops.size()) {
        const sim_op& op = ops[i];
        if (op.what == sim_op::kind::compute) {
          clock += op.seconds;
        } else if (op.what == sim_op::kind::send) {
          double& port = send_port_free[static_cast<std::size_t>(r)];
          const std::int32_t chan = chans[i];
          if (faulty) {
            const std::uint64_t sidx =
                sends_total[static_cast<std::size_t>(r)]++;
            const double stall = faults->stall_seconds(r, sidx);
            if (stall > 0) {
              clock += stall;
              ++result.stats.stalls;
              obs_ev::emit_stall(r, op.peer, clock, sidx);
            }
            if (faults->crashes_before(r, sidx)) {
              obs_ev::emit_casualty(r, r, clock);
              halt(r);
              progressed = true;
              break;
            }
            clock += net.send_overhead_s;
            const std::uint64_t seq =
                channels[static_cast<std::size_t>(chan)].next_seq++;
            const transmit_plan tp =
                faults->plan(net, place, r, op.peer, op.bytes, seq, clock,
                             port, result.stats);
            port = tp.port_free;
            obs_ev::emit_transmit_plan(r, op.peer, seq, op.bytes, tp);
            if (tp.failed) {
              wire_push(chan, tp.attempts.back().depart, seq, true);
              obs_ev::emit_casualty(r, op.peer, clock);
              halt(r);
              progressed = true;
              break;
            }
            if (traced) {
              channels[static_cast<std::size_t>(chan)].tx_bytes += op.bytes;
            }
            // The delivered copy is the one that occupies the fabric;
            // lost attempts died at the injection port.
            const double depart =
                contended
                    ? route_depart(r, op.peer, op.bytes, tp.good_depart)
                    : tp.good_depart;
            wire_push(chan, depart, seq, false);
          } else {
            clock += net.send_overhead_s;
            const double inject_start = std::max(clock, port);
            port = inject_start +
                   serialization_seconds(net, place, r, op.peer, op.bytes);
            obs_ev::emit_vanilla_send(r, op.peer, inject_start, op.bytes);
            if (traced) {
              channels[static_cast<std::size_t>(chan)].tx_bytes += op.bytes;
            }
            const double depart =
                contended ? route_depart(r, op.peer, op.bytes, inject_start)
                          : inject_start;
            wire_push(chan, depart, 0, false);
          }
        } else {  // recv
          const std::int32_t chan = chans[i];
          if (channels[static_cast<std::size_t>(chan)].head < 0) {
            break;  // blocked
          }
          const wire_node entry = wire_pop(chan);
          if (entry.poison) {
            obs_ev::emit_casualty(r, op.peer, clock);
            halt(r);
            progressed = true;
            break;
          }
          const double ready =
              entry.depart +
              transfer_latency_seconds(net, place, op.peer, r, op.bytes);
          double& port = recv_port_free[static_cast<std::size_t>(r)];
          const double arrival =
              std::max(ready, port) +
              serialization_seconds(net, place, op.peer, r, op.bytes);
          port = arrival;
          clock = std::max(clock, arrival) + net.recv_overhead_s;
          obs_ev::emit_recv(r, op.peer, clock, op.bytes);
          if (faulty) {
            result.deliveries[static_cast<std::size_t>(r)].push_back(
                {op.peer, 0, entry.seq});
          }
        }
        ++i;
        progressed = true;
        if (i == ops.size()) ++done;
      }
    }
    if (!progressed && faulty) {
      // Cascade: a rank starved on a channel whose sender crashed will
      // never be served - it fails too, exactly like the threaded
      // runtime's crash-notice path.
      for (int r = 0; r < p; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        const auto& ops = prog.ranks[ri];
        if (crashed[ri] != 0 || pc[ri] >= ops.size()) continue;
        const sim_op& op = ops[pc[ri]];
        if (op.what != sim_op::kind::recv) continue;
        const std::int32_t chan = (op_chan.data() + op_base[ri])[pc[ri]];
        const bool starved =
            channels[static_cast<std::size_t>(chan)].head < 0;
        if (starved && crashed[static_cast<std::size_t>(op.peer)] != 0) {
          obs_ev::emit_casualty(r, op.peer,
                                result.clocks[static_cast<std::size_t>(r)]);
          halt(r);
          progressed = true;
        }
      }
    }
    TFX_ASSERT(progressed && "sim_program deadlocked");
  }
  if (contended) {
    for (std::size_t li = 0; li < link_busy.size(); ++li) {
      if (link_busy[li] > result.links.max_link_busy_s) {
        result.links.max_link_busy_s = link_busy[li];
        result.links.max_link = static_cast<int>(li);
      }
    }
  }
  if (faulty) {
    for (int r = 0; r < p; ++r) {
      if (crashed[static_cast<std::size_t>(r)] != 0) {
        result.crashed.push_back(r);
      }
    }
  }
  if (traced) {
    // Same metric names as communicator::flush_obs, so a threaded run
    // and its DES twin produce comparable registry contents. chan_keys
    // is sorted by src*p+dst, i.e. the same (src,dst)-lexicographic
    // order the seed's dense double loop emitted.
    char name[48];
    for (std::size_t c = 0; c < chan_keys.size(); ++c) {
      const std::uint64_t bytes = channels[c].tx_bytes;
      if (bytes == 0) continue;
      const int src = static_cast<int>(chan_keys[c] / up);
      const int dst = static_cast<int>(chan_keys[c] % up);
      std::snprintf(name, sizeof name, "net.tx_bytes.%d->%d", src, dst);
      tfx::obs::metric_add(name, bytes);
    }
    tfx::obs::metric_add("net.sends", result.stats.sends);
    tfx::obs::metric_add("net.attempts", result.stats.attempts);
    tfx::obs::metric_add("net.retries", result.stats.retries);
    tfx::obs::metric_add("net.drops", result.stats.drops);
    tfx::obs::metric_add("net.corruptions", result.stats.corruptions);
    tfx::obs::metric_add("net.duplicates", result.stats.duplicates);
    tfx::obs::metric_add("net.reorders", result.stats.reorders);
    tfx::obs::metric_add("net.delays", result.stats.delays);
    tfx::obs::metric_add("net.stalls", result.stats.stalls);
    tfx::obs::metric_add("net.failed_sends", result.stats.failed_sends);
  }
  return result;
}

}  // namespace tfx::mpisim
