// Level-2 BLAS (gemv / gemv_transpose / ger) and the float16 ulp
// utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "fp/float16.hpp"
#include "kernels/gemv.hpp"

using namespace tfx;
using namespace tfx::kernels;
using tfx::fp::float16;

namespace {

template <typename T>
matrix_view<const T> cmat(const std::vector<T>& v, std::size_t r,
                          std::size_t c) {
  return {v.data(), r, c};
}

}  // namespace

TEST(Gemv, SmallKnownValues) {
  // A = [1 2; 3 4; 5 6], x = (1, 1): A x = (3, 7, 11).
  const std::vector<double> a{1, 2, 3, 4, 5, 6};
  const std::vector<double> x{1, 1};
  std::vector<double> y{100, 100, 100};
  gemv(1.0, cmat(a, 3, 2), std::span<const double>(x), 0.0,
       std::span<double>(y));
  EXPECT_EQ(y, (std::vector<double>{3, 7, 11}));

  // alpha/beta blend: y <- 2*A*x + 3*y.
  std::vector<double> y2{1, 1, 1};
  gemv(2.0, cmat(a, 3, 2), std::span<const double>(x), 3.0,
       std::span<double>(y2));
  EXPECT_EQ(y2, (std::vector<double>{9, 17, 25}));
}

TEST(Gemv, TransposeAgreesWithExplicitTranspose) {
  xoshiro256 rng(17);
  const std::size_t m = 13, n = 7;
  std::vector<double> a(m * n), x(m), y1(n, 0.5), y2;
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : x) v = rng.uniform(-1, 1);
  y2 = y1;

  gemv_transpose(1.5, cmat(a, m, n), std::span<const double>(x), 0.25,
                 std::span<double>(y1));

  // Build A^T explicitly and use the plain gemv.
  std::vector<double> at(n * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) at[j * m + i] = a[i * n + j];
  }
  gemv(1.5, cmat(at, n, m), std::span<const double>(x), 0.25,
       std::span<double>(y2));
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(y1[j], y2[j], 1e-14);
  }
}

TEST(Gemv, IdentityMatrixIsIdentity) {
  const std::size_t n = 9;
  std::vector<double> eye(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eye[i * n + i] = 1.0;
  std::vector<double> x(n), y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i) - 4.0;
  gemv(1.0, cmat(eye, n, n), std::span<const double>(x), 0.0,
       std::span<double>(y));
  EXPECT_EQ(y, x);
}

TEST(Gemv, Float16Instantiation) {
  const std::vector<float16> a{float16(1.0), float16(2.0), float16(3.0),
                               float16(4.0)};
  const std::vector<float16> x{float16(1.0), float16(0.5)};
  std::vector<float16> y{float16(0.0), float16(0.0)};
  gemv(float16(1.0), cmat(a, 2, 2), std::span<const float16>(x),
       float16(0.0), std::span<float16>(y));
  EXPECT_EQ(static_cast<double>(y[0]), 2.0);
  EXPECT_EQ(static_cast<double>(y[1]), 5.0);
}

TEST(Ger, RankOneUpdate) {
  std::vector<double> a(6, 1.0);  // 2x3 of ones
  const std::vector<double> x{1, 2};
  const std::vector<double> y{10, 20, 30};
  matrix_view<double> av(a.data(), 2, 3);
  ger(0.1, std::span<const double>(x), std::span<const double>(y), av);
  EXPECT_NEAR(av(0, 0), 2.0, 1e-14);   // 1 + 0.1*1*10
  EXPECT_NEAR(av(1, 2), 7.0, 1e-14);   // 1 + 0.1*2*30
}

TEST(GemvModel, ProfileIsComputeRicherThanAxpy) {
  // gemv has 2 flops per 1 element loaded (vs axpy's 2 per 3 moved):
  // in-cache it should clearly out-throughput axpy in GFLOPS.
  const std::size_t n = 128;  // 128x128 matrix: 128 KiB, fits L2
  const auto m = arch::predict(arch::fugaku_node, gemv_profile(), n * n, 8,
                               n * n * 8);
  arch::kernel_profile axpy;  // defaults = axpy shape
  const auto ax = arch::predict(arch::fugaku_node, axpy, n * n, 8,
                                2 * n * n * 8);
  EXPECT_GT(m.gflops, ax.gflops);
}

TEST(Float16Ulp, NextafterWalksTheGrid) {
  using tfx::fp::nextafter;
  const float16 one(1.0);
  const float16 up = nextafter(one, float16(2.0));
  EXPECT_EQ(up.bits(), 0x3c01);
  EXPECT_EQ(nextafter(up, float16(0.0)).bits(), 0x3c00);
  // Through zero: -denorm_min -> -0/0 -> +denorm_min.
  const float16 neg_min = float16::from_bits(0x8001);
  const float16 z = nextafter(neg_min, float16(1.0));
  EXPECT_TRUE(z.iszero());
  EXPECT_EQ(nextafter(z, float16(1.0)).bits(), 0x0001);
  // Saturation into infinity.
  const float16 max = std::numeric_limits<float16>::max();
  EXPECT_TRUE(nextafter(max, std::numeric_limits<float16>::infinity())
                  .isinf());
}

TEST(Float16Ulp, DistanceCountsRepresentables) {
  using tfx::fp::ulp_distance;
  EXPECT_EQ(ulp_distance(float16(1.0), float16(1.0)), 0);
  EXPECT_EQ(ulp_distance(float16(1.0), float16::from_bits(0x3c01)), 1);
  EXPECT_EQ(ulp_distance(float16(1.0), float16(2.0)), 1024);  // one binade
  EXPECT_EQ(ulp_distance(float16(-1.0), float16(1.0)),
            2 * (0x3c00));  // symmetric through zero
  EXPECT_GT(ulp_distance(std::numeric_limits<float16>::quiet_NaN(),
                         float16(1.0)),
            1u << 20);
}
