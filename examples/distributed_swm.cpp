// Example: the distributed shallow-water model - ShallowWaters physics
// over the simulated MPI fabric, the combination a production weather
// model on Fugaku would be.
//
// Eight ranks decompose the grid into y-slabs, exchange halo rows every
// RK4 stage, and the result is compared against a single-rank run of
// the same code (they agree bit-for-bit at Float64; see
// tests/swm_distributed_test).

#include <cstdio>

#include "mpisim/runtime.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"

using namespace tfx;
using namespace tfx::swm;

int main() {
  swm_params p;
  p.nx = 64;
  p.ny = 32;
  const int steps = 50;
  const int ranks = 8;

  // Seed once, serially, so the distributed run is reproducible.
  model<double> seeder(p);
  seeder.seed_random_eddies(11, 0.5);
  const state<double> init = seeder.prognostic();

  // Serial reference.
  model<double> serial(p);
  serial.prognostic() = init;
  serial.run(steps);
  const auto serial_diag = serial.diag();

  // Distributed run: 8 ranks on 4 nodes of the modeled torus.
  mpisim::world w(mpisim::torus_placement({4, 1, 1}, 2), {});
  state<double> gathered(p.nx, p.ny);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, p);
    dm.set_from_global(init);
    dm.run(steps);
    if (comm.rank() == 0) {
      std::printf("rank 0 owns rows [%d, %d) of %d\n", dm.global_j0(),
                  dm.global_j0() + dm.local_ny(), p.ny);
    }
    const double vmax = dm.global_max_speed();  // collective diagnostic
    if (comm.rank() == 0) {
      std::printf("global max speed after %d steps: %.6f m/s\n", steps, vmax);
    }
    auto global = dm.gather_global();
    if (comm.rank() == 0) gathered = global;
  });

  // Compare against the serial run.
  double max_diff = 0;
  for (std::size_t k = 0; k < gathered.eta.size(); ++k) {
    max_diff = std::max(max_diff, std::abs(gathered.eta.flat()[k] -
                                           serial.prognostic().eta.flat()[k]));
  }
  std::printf("serial max speed:                  %.6f m/s\n",
              serial_diag.max_speed);
  std::printf("max |eta_distributed - eta_serial| = %.3e (bit-equal: %s)\n",
              max_diff, max_diff == 0.0 ? "yes" : "no");

  std::puts("\nper-rank simulated communication time (TofuD model):");
  for (int r = 0; r < ranks; ++r) {
    std::printf("  rank %d: %.1f us across %d steps (halo exchanges + "
                "collectives)\n",
                r, w.final_clocks()[static_cast<std::size_t>(r)] * 1e6,
                steps);
  }
  return 0;
}
