// Ablation: what rollback recovery costs in virtual time.
//
// A 4-rank distributed shallow-water run (swm/distributed.hpp) executes
// under the resilience session (swm/resilience.hpp) while the fault
// plane kills ranks at seeded send indices. The sweep crosses the
// buddy-checkpoint interval K with the number of injected crashes and
// reports the virtual-clock inflation against the unprotected step
// loop, plus the replay/commit/round counters. Every recovered run is
// checked bit-identical to the fault-free oracle before its row is
// printed - a row in the table doubles as a correctness witness.
//
// Checkpoint commits and recovery transfers ride the same LogGP-costed
// channels as the halo exchange, so the overhead column is the real
// virtual-time price of protection (the recovery board itself is
// control plane only and costs nothing). Everything is seeded and
// exactly reproducible on any host; BENCH_recovery.json carries the
// machine-readable trend line for docs/RESILIENCE.md.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "mpisim/faultplane.hpp"
#include "mpisim/runtime.hpp"
#include "swm/distributed.hpp"
#include "swm/model.hpp"
#include "swm/resilience.hpp"

using namespace tfx;
using namespace tfx::swm;

namespace {

constexpr int kRanks = 4;

struct row {
  int interval = 0;       ///< checkpoint interval K (steps)
  int crashes = 0;        ///< injected rank crashes
  double clock_s = 0;     ///< max final virtual clock
  double overhead = 0;    ///< clock / unprotected baseline clock
  int replayed = 0;       ///< max steps re-executed on any rank
  std::uint64_t commits = 0;  ///< committed checkpoint epochs
  int rounds = 0;             ///< completed recovery rounds
  bool identical = false;     ///< final state bit-matches the oracle
};

swm_params bench_params() {
  swm_params p;
  p.nx = 32;
  p.ny = 16;
  return p;
}

state<double> initial_state(const swm_params& p) {
  model<double> m(p);
  m.seed_random_eddies(7, 0.5);
  return m.prognostic();
}

struct run_out {
  std::vector<std::vector<double>> packed;  ///< per-rank pack_state()
  double clock_s = 0;
  int replayed = 0;
  std::uint64_t commits = 0;
  int rounds = 0;
};

/// Unprotected plain run: no fault plane, no session. The baseline and
/// the bit-exactness oracle.
run_out plain_run(const swm_params& params, int steps) {
  const auto init = initial_state(params);
  run_out out;
  out.packed.resize(kRanks);
  mpisim::world w(kRanks);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, params);
    dm.set_from_global(init);
    dm.run(steps);
    auto& mine = out.packed[static_cast<std::size_t>(comm.rank())];
    mine.resize(dm.packed_size());
    dm.pack_state(std::span<double>(mine));
  });
  const auto& clocks = w.final_clocks();
  out.clock_s = *std::max_element(clocks.begin(), clocks.end());
  return out;
}

/// Resilient run with `crashes` ranks killed at seeded send indices.
/// Zero crashes still activates the fault plane (a sentinel event no
/// rank ever reaches) so the row isolates pure checkpoint overhead.
run_out resilient_run(const swm_params& params, int steps, int interval,
                      int crashes, std::uint64_t seed) {
  const auto init = initial_state(params);
  mpisim::fault_config cfg;
  cfg.seed = seed;
  cfg.crashes = {{0, std::uint64_t{1} << 40}};  // plane-activating sentinel
  if (crashes >= 1) cfg.crashes.push_back({1, 80});
  if (crashes >= 2) cfg.crashes.push_back({0, 400});

  resilience_options opt;
  opt.checkpoint_interval = interval;

  run_out out;
  out.packed.resize(kRanks);
  mpisim::world w(kRanks);
  w.set_faults(cfg);
  w.run([&](mpisim::communicator& comm) {
    distributed_model<double> dm(comm, params);
    dm.set_from_global(init);
    const recovery_report rep = run_resilient(comm, dm, steps, opt);
    auto& mine = out.packed[static_cast<std::size_t>(comm.rank())];
    mine.resize(dm.packed_size());
    dm.pack_state(std::span<double>(mine));
    if (comm.rank() == 0) out.commits = rep.commits;
    out.replayed = std::max(out.replayed, rep.replayed_steps);
    out.rounds = std::max(out.rounds, rep.rounds);
  });
  const auto& clocks = w.final_clocks();
  out.clock_s = *std::max_element(clocks.begin(), clocks.end());
  return out;
}

bool bit_identical(const run_out& got, const run_out& want) {
  for (int r = 0; r < kRanks; ++r) {
    const auto& a = got.packed[static_cast<std::size_t>(r)];
    const auto& b = want.packed[static_cast<std::size_t>(r)];
    if (a.size() != b.size() ||
        std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void write_json(const std::string& path, std::uint64_t seed, int steps,
                const std::vector<row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_recovery\",\n");
  std::fprintf(f, "  \"ranks\": %d,\n  \"seed\": %llu,\n", kRanks,
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"steps\": %d,\n  \"rows\": [\n", steps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"interval\": %d, \"crashes\": %d, \"clock_s\": %.6e, "
        "\"overhead\": %.4f, \"replayed_steps\": %d, \"commits\": %llu, "
        "\"rounds\": %d, \"bit_identical\": %s}%s\n",
        r.interval, r.crashes, r.clock_s, r.overhead, r.replayed,
        static_cast<unsigned long long>(r.commits), r.rounds,
        r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"steps", "model steps per run (default 20)"},
            {"seed", "fault-plane seed (default 1)"},
            {"json", "output path (default BENCH_recovery.json)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const int steps = static_cast<int>(args.get_int("steps", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string json = args.get_string("json", "BENCH_recovery.json");

  std::puts("Ablation: buddy-checkpoint and rollback-recovery overhead.");
  std::puts("4-rank shallow-water run in virtual time; crashes injected at");
  std::puts("seeded send indices; every row is verified bit-identical to");
  std::puts("the fault-free oracle before it is printed.");

  const swm_params params = bench_params();
  const run_out oracle = plain_run(params, steps);

  const int intervals[] = {2, 5, 10};
  const int crash_counts[] = {0, 1, 2};

  std::vector<row> rows;
  table t({"K", "crashes", "clock", "overhead", "replayed", "commits",
           "rounds", "bit-identical"});
  for (const int interval : intervals) {
    for (const int crashes : crash_counts) {
      const run_out got =
          resilient_run(params, steps, interval, crashes, seed);
      row r;
      r.interval = interval;
      r.crashes = crashes;
      r.clock_s = got.clock_s;
      r.overhead = got.clock_s / oracle.clock_s;
      r.replayed = got.replayed;
      r.commits = got.commits;
      r.rounds = got.rounds;
      r.identical = bit_identical(got, oracle);
      t.add_row({std::to_string(r.interval), std::to_string(r.crashes),
                 format_seconds(r.clock_s), format_fixed(r.overhead, 3),
                 std::to_string(r.replayed), std::to_string(r.commits),
                 std::to_string(r.rounds), r.identical ? "yes" : "NO"});
      rows.push_back(r);
      if (!r.identical) {
        std::fprintf(stderr,
                     "FATAL: K=%d crashes=%d diverged from the oracle\n",
                     r.interval, r.crashes);
        t.print(std::cout);
        return 1;
      }
    }
  }
  t.print(std::cout);
  write_json(json, seed, steps, rows);
  return 0;
}
