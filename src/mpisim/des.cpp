#include "mpisim/des.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_map>

#include "core/contracts.hpp"
#include "mpisim/obs_events.hpp"
#include "obs/metrics.hpp"

namespace tfx::mpisim {

double des_result::max_clock() const {
  TFX_EXPECTS(!clocks.empty());
  return *std::max_element(clocks.begin(), clocks.end());
}

double des_result::min_clock() const {
  TFX_EXPECTS(!clocks.empty());
  return *std::min_element(clocks.begin(), clocks.end());
}

double des_result::avg_clock() const {
  TFX_EXPECTS(!clocks.empty());
  double acc = 0;
  for (double c : clocks) acc += c;
  return acc / static_cast<double>(clocks.size());
}

des_result simulate(const sim_program& prog, const tofud_params& net,
                    const torus_placement& place,
                    std::vector<double> start_clocks,
                    const fault_plane* faults) {
  const int p = prog.size();
  TFX_EXPECTS(p == place.rank_count());
  const bool faulty = faults != nullptr && faults->active();

  des_result result;
  if (start_clocks.empty()) {
    result.clocks.assign(static_cast<std::size_t>(p), 0.0);
  } else {
    TFX_EXPECTS(static_cast<int>(start_clocks.size()) == p);
    result.clocks = std::move(start_clocks);
  }
  if (faulty) result.deliveries.resize(static_cast<std::size_t>(p));

  // In-flight messages: per (src,dst) pair, FIFO - exactly the
  // matching discipline of the threaded runtime for a deterministic
  // program (under faults the threaded mailbox re-sorts by sequence
  // number, which restores this same order).
  struct wire_entry {
    double depart;
    std::uint64_t seq;
    bool poison;  ///< the sender exhausted its retries
  };
  std::unordered_map<std::uint64_t, std::deque<wire_entry>> wire;
  auto channel = [p](int src, int dst) {
    return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(p) +
           static_cast<std::uint64_t>(dst);
  };
  // Per-channel message counters and per-rank send counters drive the
  // same fault-plane streams as the threaded runtime.
  std::unordered_map<std::uint64_t, std::uint64_t> chan_seq;
  std::vector<std::uint64_t> sends_total(static_cast<std::size_t>(p), 0);
  std::vector<std::uint8_t> crashed(static_cast<std::size_t>(p), 0);

  std::vector<std::size_t> pc(static_cast<std::size_t>(p), 0);
  std::vector<double> send_port_free(static_cast<std::size_t>(p), 0.0);
  std::vector<double> recv_port_free(static_cast<std::size_t>(p), 0.0);

  // Observability: all ranks are simulated on this one host thread,
  // but events carry track == rank and the *virtual* clock, so the DES
  // trace is bit-reproducible and comparable record-for-record with
  // the threaded runtime's (tests/obs_trace_test.cpp). tx byte
  // counters flush into the metrics registry at the end.
  const bool traced = tfx::obs::active();
  std::vector<std::uint64_t> obs_tx;
  if (traced) {
    obs_tx.assign(static_cast<std::size_t>(p) * static_cast<std::size_t>(p),
                  0);
  }
  std::size_t done = 0;
  for (int r = 0; r < p; ++r) {
    if (prog.ranks[static_cast<std::size_t>(r)].empty()) ++done;
  }
  auto halt = [&](int r) {
    // A crashed (or poisoned, or cascade-starved) rank stops executing
    // its remaining ops - the threaded analogue of comm_error.
    if (crashed[static_cast<std::size_t>(r)] == 0) {
      crashed[static_cast<std::size_t>(r)] = 1;
      ++done;
    }
  };

  while (done < static_cast<std::size_t>(p)) {
    bool progressed = false;
    for (int r = 0; r < p; ++r) {
      if (crashed[static_cast<std::size_t>(r)] != 0) continue;
      const auto& ops = prog.ranks[static_cast<std::size_t>(r)];
      auto& i = pc[static_cast<std::size_t>(r)];
      double& clock = result.clocks[static_cast<std::size_t>(r)];
      while (i < ops.size()) {
        const sim_op& op = ops[i];
        if (op.what == sim_op::kind::compute) {
          clock += op.seconds;
        } else if (op.what == sim_op::kind::send) {
          double& port = send_port_free[static_cast<std::size_t>(r)];
          if (faulty) {
            const std::uint64_t sidx =
                sends_total[static_cast<std::size_t>(r)]++;
            const double stall = faults->stall_seconds(r, sidx);
            if (stall > 0) {
              clock += stall;
              ++result.stats.stalls;
              obs_ev::emit_stall(r, op.peer, clock, sidx);
            }
            if (faults->crashes_before(r, sidx)) {
              obs_ev::emit_casualty(r, r, clock);
              halt(r);
              progressed = true;
              break;
            }
            clock += net.send_overhead_s;
            const std::uint64_t seq = chan_seq[channel(r, op.peer)]++;
            const transmit_plan tp =
                faults->plan(net, place, r, op.peer, op.bytes, seq, clock,
                             port, result.stats);
            port = tp.port_free;
            obs_ev::emit_transmit_plan(r, op.peer, seq, op.bytes, tp);
            if (tp.failed) {
              wire[channel(r, op.peer)].push_back(
                  {tp.attempts.back().depart, seq, true});
              obs_ev::emit_casualty(r, op.peer, clock);
              halt(r);
              progressed = true;
              break;
            }
            if (traced) obs_tx[channel(r, op.peer)] += op.bytes;
            wire[channel(r, op.peer)].push_back({tp.good_depart, seq, false});
          } else {
            clock += net.send_overhead_s;
            const double inject_start = std::max(clock, port);
            port = inject_start +
                   serialization_seconds(net, place, r, op.peer, op.bytes);
            obs_ev::emit_vanilla_send(r, op.peer, inject_start, op.bytes);
            if (traced) obs_tx[channel(r, op.peer)] += op.bytes;
            wire[channel(r, op.peer)].push_back({inject_start, 0, false});
          }
        } else {  // recv
          auto it = wire.find(channel(op.peer, r));
          if (it == wire.end() || it->second.empty()) break;  // blocked
          const wire_entry entry = it->second.front();
          it->second.pop_front();
          if (entry.poison) {
            obs_ev::emit_casualty(r, op.peer, clock);
            halt(r);
            progressed = true;
            break;
          }
          const double ready =
              entry.depart +
              transfer_latency_seconds(net, place, op.peer, r, op.bytes);
          double& port = recv_port_free[static_cast<std::size_t>(r)];
          const double arrival =
              std::max(ready, port) +
              serialization_seconds(net, place, op.peer, r, op.bytes);
          port = arrival;
          clock = std::max(clock, arrival) + net.recv_overhead_s;
          obs_ev::emit_recv(r, op.peer, clock, op.bytes);
          if (faulty) {
            result.deliveries[static_cast<std::size_t>(r)].push_back(
                {op.peer, 0, entry.seq});
          }
        }
        ++i;
        progressed = true;
        if (i == ops.size()) ++done;
      }
    }
    if (!progressed && faulty) {
      // Cascade: a rank starved on a channel whose sender crashed will
      // never be served - it fails too, exactly like the threaded
      // runtime's crash-notice path.
      for (int r = 0; r < p; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        const auto& ops = prog.ranks[ri];
        if (crashed[ri] != 0 || pc[ri] >= ops.size()) continue;
        const sim_op& op = ops[pc[ri]];
        if (op.what != sim_op::kind::recv) continue;
        auto it = wire.find(channel(op.peer, r));
        const bool starved = it == wire.end() || it->second.empty();
        if (starved && crashed[static_cast<std::size_t>(op.peer)] != 0) {
          obs_ev::emit_casualty(r, op.peer,
                                result.clocks[static_cast<std::size_t>(r)]);
          halt(r);
          progressed = true;
        }
      }
    }
    TFX_ASSERT(progressed && "sim_program deadlocked");
  }
  if (faulty) {
    for (int r = 0; r < p; ++r) {
      if (crashed[static_cast<std::size_t>(r)] != 0) {
        result.crashed.push_back(r);
      }
    }
  }
  if (traced) {
    // Same metric names as communicator::flush_obs, so a threaded run
    // and its DES twin produce comparable registry contents.
    char name[48];
    for (int src = 0; src < p; ++src) {
      for (int dst = 0; dst < p; ++dst) {
        const std::uint64_t bytes = obs_tx[channel(src, dst)];
        if (bytes == 0) continue;
        std::snprintf(name, sizeof name, "net.tx_bytes.%d->%d", src, dst);
        tfx::obs::metric_add(name, bytes);
      }
    }
    tfx::obs::metric_add("net.sends", result.stats.sends);
    tfx::obs::metric_add("net.attempts", result.stats.attempts);
    tfx::obs::metric_add("net.retries", result.stats.retries);
    tfx::obs::metric_add("net.drops", result.stats.drops);
    tfx::obs::metric_add("net.corruptions", result.stats.corruptions);
    tfx::obs::metric_add("net.duplicates", result.stats.duplicates);
    tfx::obs::metric_add("net.reorders", result.stats.reorders);
    tfx::obs::metric_add("net.delays", result.stats.delays);
    tfx::obs::metric_add("net.stalls", result.stats.stalls);
    tfx::obs::metric_add("net.failed_sends", result.stats.failed_sends);
  }
  return result;
}

}  // namespace tfx::mpisim
