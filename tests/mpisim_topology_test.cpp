// Topology layer tests: dimension-ordered routing on the torus, the
// golden-clock oracle pinning the uncontended DES bit-for-bit, the
// contended (store-and-forward) fabric's semantics, and the
// scaled-rank-count smoke with a host-time budget (the witness that
// the flat channel table keeps 1k-4k simulated ranks ctest-friendly).
//
// The golden hashes pin the *exact* virtual clocks of the pre-topology
// DES: any change to the send/recv arithmetic - however reasonable -
// must be a conscious re-baselining, not an accident.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "mpisim/des.hpp"
#include "mpisim/network.hpp"
#include "mpisim/patterns.hpp"

using namespace tfx;
using namespace tfx::mpisim;

namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool under_tsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool under_tsan = true;
#else
constexpr bool under_tsan = false;
#endif
#else
constexpr bool under_tsan = false;
#endif

des_options contended_fabric() {
  des_options opts;
  opts.fabric = fabric_mode::contended;
  return opts;
}

// ---------------------------------------------------------------------------
// Dimension-ordered routing.
// ---------------------------------------------------------------------------

TEST(TorusRoute, NeighborWrapsAroundEveryDimension) {
  const torus_placement place({4, 6, 16}, 1);
  // Node 0 sits at (0,0,0): the negative neighbour in each dimension
  // is the wraparound node at coordinate n-1.
  EXPECT_EQ(place.neighbor_of(0, 0, +1), place.node_at({1, 0, 0}));
  EXPECT_EQ(place.neighbor_of(0, 0, -1), place.node_at({3, 0, 0}));
  EXPECT_EQ(place.neighbor_of(0, 1, -1), place.node_at({0, 5, 0}));
  EXPECT_EQ(place.neighbor_of(0, 2, -1), place.node_at({0, 0, 15}));
  // Walking +1 n times in a dimension returns home.
  for (int dim = 0; dim < 3; ++dim) {
    int node = 17;
    const int n = place.shape()[static_cast<std::size_t>(dim)];
    for (int s = 0; s < n; ++s) node = place.neighbor_of(node, dim, +1);
    EXPECT_EQ(node, 17) << "dim " << dim;
  }
}

TEST(TorusRoute, RouteLengthEqualsHopsEverywhere) {
  const torus_placement place({4, 6, 16}, 1);
  for (int a = 0; a < place.node_count(); a += 7) {
    for (int b = 0; b < place.node_count(); b += 11) {
      const auto route = place.route_of(a, b);
      EXPECT_EQ(static_cast<int>(route.size()), place.hops(a, b))
          << "route " << a << " -> " << b;
      for (const int id : route) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, place.link_count());
      }
    }
  }
}

TEST(TorusRoute, SelfRouteIsEmpty) {
  const torus_placement place({4, 6, 16}, 1);
  EXPECT_TRUE(place.route_of(5, 5).empty());
  EXPECT_EQ(place.hops(5, 5), 0);
}

TEST(TorusRoute, TakesShorterWayAroundAndBreaksTiesPositive) {
  // One dimension of size 6: distance 2 forward beats 4 backward;
  // distance 3 is a tie and must resolve to the positive direction.
  const torus_placement place({6, 1, 1}, 1);
  {
    const auto route = place.route_of(0, 2);
    ASSERT_EQ(route.size(), 2u);
    for (const int id : route) {
      EXPECT_EQ(place.link_at(id).dir, +1);
    }
  }
  {
    const auto route = place.route_of(0, 4);  // 2 hops backward, not 4
    ASSERT_EQ(route.size(), 2u);
    for (const int id : route) {
      EXPECT_EQ(place.link_at(id).dir, -1);
    }
  }
  {
    const auto route = place.route_of(1, 4);  // tie: 3 either way
    ASSERT_EQ(route.size(), 3u);
    for (const int id : route) {
      EXPECT_EQ(place.link_at(id).dir, +1) << "tie must go positive";
    }
  }
}

TEST(TorusRoute, IsDimensionOrderedAndContiguous) {
  const torus_placement place({4, 6, 16}, 1);
  const int a = place.node_at({3, 1, 14});
  const int b = place.node_at({1, 4, 2});
  const auto route = place.route_of(a, b);
  int cur = a;
  int last_dim = 0;
  for (const int id : route) {
    const torus_link l = place.link_at(id);
    EXPECT_GE(l.dim, last_dim) << "x, then y, then z - never backtrack";
    last_dim = l.dim;
    EXPECT_EQ(l.node, cur) << "each link leaves the node the walk is at";
    cur = place.neighbor_of(cur, l.dim, l.dir);
  }
  EXPECT_EQ(cur, b);
}

TEST(TorusRoute, ReverseRouteNeedNotMirrorButLengthsAgree) {
  const torus_placement place({4, 6, 16}, 1);
  const int a = place.node_at({0, 1, 3});
  const int b = place.node_at({2, 5, 9});
  EXPECT_EQ(place.route_of(a, b).size(), place.route_of(b, a).size());
}

TEST(TorusRoute, LinkIdsRoundTripThroughLinkAt) {
  const torus_placement place({3, 4, 5}, 1);
  EXPECT_EQ(place.link_count(), place.node_count() * 6);
  for (int node = 0; node < place.node_count(); node += 3) {
    for (int dim = 0; dim < 3; ++dim) {
      for (const int dir : {+1, -1}) {
        const int id = place.link_id(node, dim, dir);
        const torus_link l = place.link_at(id);
        EXPECT_EQ(l.node, node);
        EXPECT_EQ(l.dim, dim);
        EXPECT_EQ(l.dir, dir);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Golden clocks: the uncontended DES is the bit-exact oracle.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const std::vector<double>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : v) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, 8);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct golden_case {
  const char* name;
  std::uint64_t hash;
};

TEST(DesGolden, UncontendedClocksMatchPreTopologyBaseline) {
  const tofud_params net;

  const auto check = [&](const golden_case& want, const sim_program& prog,
                         const torus_placement& place) {
    const auto res = simulate(prog, net, place);
    EXPECT_EQ(fnv1a(res.clocks), want.hash) << want.name;
    // The explicit uncontended option is the same code path.
    des_options opts;
    opts.fabric = fabric_mode::uncontended;
    const auto res2 = simulate(prog, net, place, {}, nullptr, opts);
    EXPECT_EQ(res2.clocks, res.clocks) << want.name;
  };

  {
    const torus_placement place({4, 6, 16}, 4);  // Fig. 3: 1536 ranks
    const int p = place.rank_count();
    check({"fig3 allreduce rdbl 64B", 0x40d622af6d0ae913ull},
          make_allreduce_program(net, p, 8, 8,
                                 coll_algorithm::recursive_doubling),
          place);
    check({"fig3 allreduce rab 512KiB", 0xfc542e03a7471eabull},
          make_allreduce_program(net, p, 65536, 8,
                                 coll_algorithm::rabenseifner),
          place);
    check({"fig3 gatherv 4KiB", 0xfd9c7f2dc69c57ffull},
          make_gatherv_program(p, 512, 8, 0), place);
    check({"fig3 bcast 64KiB", 0x257a3b8502238011ull},
          make_bcast_program(p, 8192, 8, 0), place);
    check({"fig3 barrier", 0x2b7ef9563637cea3ull}, make_barrier_program(p),
          place);
  }
  {
    const torus_placement place({8, 8, 4}, 4);  // 1024 ranks
    const int p = place.rank_count();
    check({"1024 allreduce ring 64KiB", 0xd197d65eec7206a3ull},
          make_allreduce_program(net, p, 8192, 8, coll_algorithm::ring),
          place);
    check({"1024 reduce 32KiB", 0x91d2a300461c067eull},
          make_reduce_program(net, p, 4096, 8, 3), place);
    check({"1024 allgather 1KiB", 0xfb327e66acf0b283ull},
          make_allgather_program(p, 128, 8), place);
  }
}

// ---------------------------------------------------------------------------
// Contended-fabric semantics.
// ---------------------------------------------------------------------------

TEST(DesContention, UncontendedRunsLeaveLinkStatsEmpty) {
  const tofud_params net;
  const torus_placement place({4, 4, 1}, 4);
  const auto prog =
      make_allreduce_program(net, place.rank_count(), 1024, 8,
                             coll_algorithm::ring);
  const auto res = simulate(prog, net, place);
  EXPECT_EQ(res.links.routed_messages, 0u);
  EXPECT_EQ(res.links.link_hops, 0u);
  EXPECT_EQ(res.links.wait_seconds, 0.0);
  EXPECT_EQ(res.links.max_link, -1);
}

TEST(DesContention, ContendedNeverBeatsUncontendedAndFillsStats) {
  const tofud_params net;
  const torus_placement place({4, 4, 4}, 4);  // 256 ranks
  for (const auto algo : {coll_algorithm::ring, coll_algorithm::rabenseifner,
                          coll_algorithm::recursive_doubling}) {
    const auto prog =
        make_allreduce_program(net, place.rank_count(), 4096, 8, algo);
    const auto plain = simulate(prog, net, place);
    const auto cont = simulate(prog, net, place, {}, nullptr,
                               contended_fabric());
    ASSERT_EQ(cont.clocks.size(), plain.clocks.size());
    for (std::size_t r = 0; r < cont.clocks.size(); ++r) {
      EXPECT_GE(cont.clocks[r], plain.clocks[r]) << "rank " << r;
    }
    EXPECT_GT(cont.links.routed_messages, 0u);
    EXPECT_GE(cont.links.link_hops, cont.links.routed_messages);
    EXPECT_GE(cont.links.max_link, 0);
    EXPECT_GT(cont.links.max_link_busy_s, 0.0);
  }
}

TEST(DesContention, IntraNodeTrafficIsImmuneToTheFabricMode) {
  // Everything on one node: no message ever touches a torus link, so
  // the contended clocks are bit-identical to the uncontended ones.
  const tofud_params net;
  const torus_placement place({1, 1, 1}, 16);
  for (const auto algo :
       {coll_algorithm::ring, coll_algorithm::recursive_doubling}) {
    const auto prog =
        make_allreduce_program(net, place.rank_count(), 2048, 8, algo);
    const auto plain = simulate(prog, net, place);
    const auto cont =
        simulate(prog, net, place, {}, nullptr, contended_fabric());
    EXPECT_EQ(cont.clocks, plain.clocks);
    EXPECT_EQ(cont.links.routed_messages, 0u);
    EXPECT_EQ(cont.links.wait_seconds, 0.0);
  }
}

TEST(DesContention, SingleSinkIncastQueuesOnTheRootLinks) {
  // 1535 ranks funnel into rank 0: the contended fabric must observe
  // real queueing (hops that found their link busy) even though the
  // cold-op makespan stays bounded by the root's ejection port.
  const tofud_params net;
  const torus_placement place({4, 6, 16}, 4);
  const auto prog = make_gatherv_program(place.rank_count(), 512, 8, 0);
  const auto cont =
      simulate(prog, net, place, {}, nullptr, contended_fabric());
  EXPECT_EQ(cont.links.routed_messages, 1532u);  // 1535 minus 3 local
  EXPECT_GT(cont.links.contended_hops, 0u);
  EXPECT_GT(cont.links.wait_seconds, 0.0);
}

TEST(DesContention, FaultPlaneComposesWithTheContendedFabric) {
  // Chaos + contention: the delivered copy of every retried message is
  // routed over the links; clocks stay >= the uncontended chaos run.
  const tofud_params net;
  const torus_placement place({4, 2, 1}, 4);
  const auto prog = make_allreduce_program(net, place.rank_count(), 512, 8,
                                           coll_algorithm::ring);
  fault_config cfg;
  cfg.seed = 5;
  cfg.probs.drop = 0.05;
  cfg.probs.delay = 0.05;
  cfg.retry.max_retries = 30;
  fault_plane faults(cfg);
  const auto plain = simulate(prog, net, place, {}, &faults);
  const auto cont =
      simulate(prog, net, place, {}, &faults, contended_fabric());
  ASSERT_EQ(cont.clocks.size(), plain.clocks.size());
  for (std::size_t r = 0; r < cont.clocks.size(); ++r) {
    EXPECT_GE(cont.clocks[r], plain.clocks[r]) << "rank " << r;
  }
  EXPECT_EQ(cont.stats.sends, plain.stats.sends);
  EXPECT_EQ(cont.stats.retries, plain.stats.retries);
  EXPECT_TRUE(cont.crashed.empty());
}

// ---------------------------------------------------------------------------
// Scale smoke: the refactor's host-time budget, ctest-friendly.
// ---------------------------------------------------------------------------

double run_and_time_ms(const sim_program& prog, const tofud_params& net,
                       const torus_placement& place, des_options opts = {}) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = simulate(prog, net, place, {}, nullptr, opts);
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_GT(res.max_clock(), 0.0);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

TEST(DesScale, Fig3RankCountSimulatesWithinBudget) {
  const tofud_params net;
  const torus_placement place({4, 6, 16}, 4);  // 1536 ranks
  const auto prog =
      make_allreduce_program(net, place.rank_count(), 8, 8,
                             coll_algorithm::recursive_doubling);
  const double ms = run_and_time_ms(prog, net, place);
  const double cont_ms =
      run_and_time_ms(prog, net, place, contended_fabric());
  // Release builds run this in ~3-6 ms; the budget leaves room for
  // debug/sanitizer builds without tolerating a complexity regression.
  const double budget_ms = under_tsan ? 30000.0 : 5000.0;
  EXPECT_LT(ms, budget_ms);
  EXPECT_LT(cont_ms, budget_ms);
}

TEST(DesScale, FourThousandRanksSimulateWithinBudget) {
  const tofud_params net;
  const torus_placement place({8, 8, 16}, 4);  // 4096 ranks
  const int p = place.rank_count();
  ASSERT_EQ(p, 4096);
  const double small_ms = run_and_time_ms(
      make_allreduce_program(net, p, 8, 8, coll_algorithm::recursive_doubling),
      net, place);
  const double large_ms = run_and_time_ms(
      make_allreduce_program(net, p, 1 << 17, 8, coll_algorithm::rabenseifner),
      net, place);
  // Release: ~14 ms / ~25 ms (the pre-refactor engine took ~96 ms /
  // ~85 ms and scaled super-linearly with rank count).
  const double budget_ms = under_tsan ? 60000.0 : 10000.0;
  EXPECT_LT(small_ms, budget_ms);
  EXPECT_LT(large_ms, budget_ms);
}

TEST(DesScale, HierarchicalProgramSimulatesAtScale) {
  const tofud_params net;
  const torus_placement place({8, 8, 16}, 4);
  const auto prog = make_hierarchical_allreduce_program(net, place, 1024, 8);
  const auto res = simulate(prog, net, place);
  ASSERT_EQ(static_cast<int>(res.clocks.size()), place.rank_count());
  EXPECT_GT(res.max_clock(), 0.0);
  const auto cont =
      simulate(prog, net, place, {}, nullptr, contended_fabric());
  EXPECT_GE(cont.max_clock(), res.max_clock());
}

}  // namespace
