#include "imb/binding.hpp"

#include <algorithm>

namespace tfx::imb {

double buffer_touch_seconds(const arch::a64fx_params& machine,
                            const binding_profile& binding,
                            const mpisim::tofud_params& net,
                            std::size_t bytes) {
  if (bytes == 0) return 0.0;
  if (bytes > net.eager_threshold) return 0.0;  // rendezvous: zero-copy DMA

  // A cache-avoiding harness cycles through a pool sized to defeat the
  // whole hierarchy (IMB's -off_cache uses a multiple of the LLC):
  // model its buffers as part of a pool-sized working set. A reusing
  // harness's working set is just the message itself.
  const std::size_t pool = 4 * machine.l2.size_bytes;  // IMB rotation pool
  const std::size_t working_set =
      binding.cache_avoidance ? std::max(bytes, pool) : bytes;
  const double bw_gbs = arch::effective_bandwidth_gbs(machine, working_set);
  return static_cast<double>(bytes) / (bw_gbs * 1e9);
}

double call_cost_seconds(const arch::a64fx_params& machine,
                         const binding_profile& binding,
                         const mpisim::tofud_params& net, std::size_t bytes) {
  return binding.dispatch_overhead_s +
         buffer_touch_seconds(machine, binding, net, bytes);
}

}  // namespace tfx::imb
