#include "mpisim/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "mpisim/network.hpp"

namespace tfx::mpisim {

namespace sockwire {

namespace {

[[noreturn]] void throw_lost(int peer, const std::string& what) {
  throw comm_error(comm_error::reason::transport_lost, peer, what);
}

std::string errno_text() { return std::strerror(errno); }

template <class T>
void put(std::byte*& out, T v) {
  std::memcpy(out, &v, sizeof v);  // little-endian hosts (x86-64, aarch64)
  out += sizeof v;
}

template <class T>
void get(const std::byte*& in, T& v) {
  std::memcpy(&v, in, sizeof v);
  in += sizeof v;
}

void set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

sockaddr_in resolve(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw_lost(-1, "bad transport address '" + host + "'");
  }
  return addr;
}

}  // namespace

void encode_header(const frame_header& h, std::byte* out) {
  put(out, h.magic);
  put(out, h.version);
  put(out, h.kind);
  put(out, h.flags);
  put(out, h.source);
  put(out, h.tag);
  put(out, h.seq);
  put(out, h.checksum);
  put(out, h.depart_vtime);
  put(out, h.epoch);
  put(out, h.payload_bytes);
}

bool decode_header(const std::byte* in, frame_header& h) {
  get(in, h.magic);
  get(in, h.version);
  get(in, h.kind);
  get(in, h.flags);
  get(in, h.source);
  get(in, h.tag);
  get(in, h.seq);
  get(in, h.checksum);
  get(in, h.depart_vtime);
  get(in, h.epoch);
  get(in, h.payload_bytes);
  return h.magic == frame_magic && h.version == wire_version &&
         h.kind <= static_cast<std::uint8_t>(msg_kind::transport_down);
}

int listen_on(const std::string& host, int port) {
  const sockaddr_in addr = resolve(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_lost(-1, "socket(): " + errno_text());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    throw_lost(-1, "bind " + host + ":" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    throw_lost(-1, "listen: " + err);
  }
  return fd;
}

int listen_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_lost(-1, "getsockname: " + errno_text());
  }
  return ntohs(addr.sin_port);
}

int accept_one(int fd, double timeout_s) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1000.0));
    if (rc > 0) break;
    if (rc == 0) {
      throw_lost(-1, "handshake accept timed out after " +
                         std::to_string(timeout_s) + "s waiting for a peer");
    }
    if (errno != EINTR) throw_lost(-1, "poll(accept): " + errno_text());
  }
  const int cfd = ::accept4(fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (cfd < 0) throw_lost(-1, "accept: " + errno_text());
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return cfd;
}

int connect_to(const std::string& host, int port, const retry_policy& policy,
               int peer) {
  const sockaddr_in addr = resolve(host, port);
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_lost(peer, "socket(): " + errno_text());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    const std::string err = errno_text();
    ::close(fd);
    if (attempt >= policy.max_retries) {
      throw_lost(peer, "connect to " + host + ":" + std::to_string(port) +
                           " failed after " + std::to_string(attempt + 1) +
                           " attempts: " + err);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        backoff_delay_seconds(policy.timeout_s, policy.backoff, attempt)));
  }
}

void write_all(int fd, const void* data, std::size_t n, int peer) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_lost(peer, "send to rank " + std::to_string(peer) + ": " +
                           errno_text());
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_all(int fd, void* data, std::size_t n, int peer, bool eof_ok) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw_lost(peer, "truncated frame from rank " + std::to_string(peer) +
                           ": peer closed mid-message (" +
                           std::to_string(got) + "/" + std::to_string(n) +
                           " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw_lost(peer, "handshake read from rank " + std::to_string(peer) +
                             " timed out");
      }
      throw_lost(peer, "recv from rank " + std::to_string(peer) + ": " +
                           errno_text());
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_frame(int fd, const wire_message& msg, bool front, int peer) {
  frame_header h;
  h.kind = static_cast<std::uint8_t>(msg.kind);
  h.flags = front ? flag_front : std::uint8_t{0};
  h.source = msg.source;
  h.tag = msg.tag;
  h.seq = msg.seq;
  h.checksum = msg.checksum;
  h.depart_vtime = msg.depart_vtime;
  h.epoch = msg.epoch;
  h.payload_bytes = msg.payload.size();
  std::byte buf[frame_header_bytes];
  encode_header(h, buf);
  write_all(fd, buf, sizeof buf, peer);
  if (!msg.payload.empty()) {
    write_all(fd, msg.payload.data(), msg.payload.size(), peer);
  }
}

bool read_frame(int fd, wire_message& out, bool& front, int peer) {
  std::byte buf[frame_header_bytes];
  if (!read_all(fd, buf, sizeof buf, peer, /*eof_ok=*/true)) return false;
  frame_header h;
  if (!decode_header(buf, h)) {
    throw_lost(peer, "bad frame header from rank " + std::to_string(peer) +
                         " (magic/version/kind mismatch)");
  }
  if (h.payload_bytes > (std::uint64_t{1} << 31)) {
    throw_lost(peer, "oversized frame from rank " + std::to_string(peer) +
                         " (" + std::to_string(h.payload_bytes) + " bytes)");
  }
  out.source = h.source;
  out.tag = h.tag;
  out.depart_vtime = h.depart_vtime;
  out.seq = h.seq;
  out.checksum = h.checksum;
  out.kind = static_cast<msg_kind>(h.kind);
  out.epoch = h.epoch;
  out.payload.resize(static_cast<std::size_t>(h.payload_bytes));
  if (!out.payload.empty()) {
    read_all(fd, out.payload.data(), out.payload.size(), peer,
             /*eof_ok=*/false);
  }
  front = (h.flags & flag_front) != 0;
  return true;
}

void write_hello(int fd, const hello& h, int peer) {
  std::byte buf[hello_bytes];
  std::byte* out = buf;
  put(out, frame_magic);
  put(out, wire_version);
  put(out, h.rank);
  put(out, h.ranks);
  put(out, h.port);
  write_all(fd, buf, sizeof buf, peer);
}

hello read_hello(int fd, int expect_ranks, int peer, double timeout_s) {
  set_recv_timeout(fd, timeout_s);
  std::byte buf[hello_bytes];
  read_all(fd, buf, sizeof buf, peer, /*eof_ok=*/false);
  set_recv_timeout(fd, 0);
  const std::byte* in = buf;
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  hello h;
  get(in, magic);
  get(in, version);
  get(in, h.rank);
  get(in, h.ranks);
  get(in, h.port);
  if (magic != frame_magic || version != wire_version ||
      h.ranks != expect_ranks || h.rank < 0 || h.rank >= expect_ranks) {
    throw_lost(peer, "bad handshake hello (magic/version/world mismatch)");
  }
  return h;
}

}  // namespace sockwire

namespace {

// Port-table reply of the coordinator: magic, version, p x u16.
void write_table(int fd, const std::vector<int>& ports, int peer) {
  std::vector<std::byte> buf(4 + 2 + 2 * ports.size());
  std::byte* out = buf.data();
  sockwire::put(out, sockwire::frame_magic);
  sockwire::put(out, sockwire::wire_version);
  for (const int p : ports) {
    sockwire::put(out, static_cast<std::uint16_t>(p));
  }
  sockwire::write_all(fd, buf.data(), buf.size(), peer);
}

std::vector<int> read_table(int fd, int ranks, int peer, double timeout_s) {
  sockwire::set_recv_timeout(fd, timeout_s);
  std::vector<std::byte> buf(4 + 2 + 2 * static_cast<std::size_t>(ranks));
  sockwire::read_all(fd, buf.data(), buf.size(), peer, /*eof_ok=*/false);
  sockwire::set_recv_timeout(fd, 0);
  const std::byte* in = buf.data();
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  sockwire::get(in, magic);
  sockwire::get(in, version);
  if (magic != sockwire::frame_magic || version != sockwire::wire_version) {
    throw comm_error(comm_error::reason::transport_lost, peer,
                     "bad handshake port table (magic/version mismatch)");
  }
  std::vector<int> ports(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    std::uint16_t p = 0;
    sockwire::get(in, p);
    ports[static_cast<std::size_t>(r)] = p;
  }
  return ports;
}

/// Total real-time budget of a connect policy; the handshake's accept
/// and read deadlines are derived from it so a missing peer surfaces
/// as a typed error, never a hang.
double connect_budget_seconds(const retry_policy& policy) {
  double total = 0;
  for (int n = 0; n <= policy.max_retries; ++n) {
    total += backoff_delay_seconds(policy.timeout_s, policy.backoff, n);
  }
  return total;
}

class socket_transport final : public transport {
 public:
  socket_transport(int ranks, const socket_options& opt)
      : ranks_(ranks), my_rank_(opt.rank), host_(opt.host) {
    TFX_EXPECTS(ranks > 0);
    TFX_EXPECTS(opt.rank < ranks);
    in_process_ = opt.rank < 0;
    // Separate processes have no shared ephemeral-port table: they
    // must agree on the coordinator port up front.
    TFX_EXPECTS(in_process_ || ranks == 1 || opt.port != 0);

    const int locals = local_rank_count();
    stores_.reserve(static_cast<std::size_t>(locals));
    for (int i = 0; i < locals; ++i) {
      stores_.push_back(std::make_unique<detail::channel_store>());
      stores_.back()->configure(ranks_);
    }
    eps_.resize(static_cast<std::size_t>(ranks_) * static_cast<std::size_t>(ranks_));
    for (auto& e : eps_) e = std::make_unique<endpoint>();
    epochs_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        static_cast<std::size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) {
      epochs_[static_cast<std::size_t>(r)].store(1, std::memory_order_relaxed);
    }

    try {
      handshake(opt);
      start_rx();
    } catch (...) {
      stop_and_close();
      throw;
    }
  }

  ~socket_transport() override { stop_and_close(); }

  [[nodiscard]] const char* name() const noexcept override {
    return "socket";
  }
  [[nodiscard]] int ranks() const noexcept override { return ranks_; }
  [[nodiscard]] bool is_local(int rank) const noexcept override {
    return in_process_ ? (rank >= 0 && rank < ranks_) : rank == my_rank_;
  }
  [[nodiscard]] int local_rank_count() const noexcept override {
    return in_process_ ? ranks_ : 1;
  }

  void reset() override {
    // Advance every destination's fence in lockstep: frames of the
    // previous run still in flight on a wire carry the old epoch and
    // are dropped by the receiving rx loop.
    for (int r = 0; r < ranks_; ++r) {
      epochs_[static_cast<std::size_t>(r)].fetch_add(
          1, std::memory_order_acq_rel);
    }
    for (int r = 0; r < ranks_; ++r) {
      if (!is_local(r)) continue;
      stores_[static_cast<std::size_t>(local_index(r))]->raise_floor(
          epochs_[static_cast<std::size_t>(r)].load(
              std::memory_order_acquire));
    }
  }

  void deposit(int dst, wire_message msg, bool front) override {
    TFX_EXPECTS(dst >= 0 && dst < ranks_);
    TFX_EXPECTS(is_local(msg.source));
    msg.epoch = epochs_[static_cast<std::size_t>(dst)].load(
        std::memory_order_acquire);
    if (dst == msg.source) {  // self-sends never touch the wire
      stores_[static_cast<std::size_t>(local_index(dst))]->deposit(
          std::move(msg), front);
      return;
    }
    endpoint& e = ep(msg.source, dst);
    const std::scoped_lock lock(e.write_mutex);
    if (e.fd < 0 || e.down.load(std::memory_order_acquire)) {
      throw comm_error(comm_error::reason::transport_lost, dst,
                       "send to rank " + std::to_string(dst) +
                           ": connection lost");
    }
    try {
      sockwire::write_frame(e.fd, msg, front, dst);
    } catch (...) {
      // Let the rx side observe the loss too (EOF after shutdown).
      e.down.store(true, std::memory_order_release);
      ::shutdown(e.fd, SHUT_RDWR);
      throw;
    }
  }

  [[nodiscard]] wire_message collect(int dst, int src, int tag) override {
    TFX_EXPECTS(is_local(dst));
    return stores_[static_cast<std::size_t>(local_index(dst))]->collect(src,
                                                                        tag);
  }

  [[nodiscard]] wire_message collect_faulty(int dst, int src,
                                            int tag) override {
    TFX_EXPECTS(is_local(dst));
    return stores_[static_cast<std::size_t>(local_index(dst))]
        ->collect_faulty(src, tag);
  }

  void broadcast_crash(int source, double vtime) override {
    for (int dst = 0; dst < ranks_; ++dst) {
      if (dst == source) continue;
      wire_message m{source, 0, vtime, {}, 0, 0, msg_kind::crash_notice, 0};
      try {
        deposit(dst, std::move(m), false);
      } catch (const comm_error&) {
        // A dead channel cannot carry the notice; the peer's own rx
        // loop already marked the stream down.
      }
    }
  }

  void drain(int dst) override {
    TFX_EXPECTS(is_local(dst));
    // Unlike the in-process transports, a deposit here is *not*
    // synchronous: a frame sent before this drain can still sit in a
    // TCP buffer and would otherwise be delivered into the freshly
    // drained mailbox (and, matched lowest-seq-first, consumed in
    // place of a post-recovery message - a deadlock). Bumping the
    // destination's epoch fences those stragglers: senders stamp the
    // epoch at deposit time, so everything already on the wire is
    // stale by definition and the mailbox's epoch floor rejects it
    // (atomically with the purge - see raise_floor). The recovery
    // protocol guarantees nobody deposits between its drain barrier
    // and the next round's traffic, so no live message can carry the
    // old epoch. (Process mode: the bump is process-local, which is
    // fine - rollback recovery is in-process only; see
    // docs/TRANSPORTS.md § limitations.)
    const std::uint32_t e = epochs_[static_cast<std::size_t>(dst)].fetch_add(
                                1, std::memory_order_acq_rel) +
                            1;
    stores_[static_cast<std::size_t>(local_index(dst))]->raise_floor(e);
  }

 private:
  struct endpoint {
    std::mutex write_mutex;
    int fd = -1;
    std::atomic<bool> down{false};
  };

  struct stop_pipe {
    int rd = -1;
    int wr = -1;
  };

  [[nodiscard]] int local_index(int rank) const noexcept {
    return in_process_ ? rank : 0;
  }

  [[nodiscard]] endpoint& ep(int i, int j) {
    return *eps_[static_cast<std::size_t>(i) * static_cast<std::size_t>(ranks_) +
                 static_cast<std::size_t>(j)];
  }

  void handshake(const socket_options& opt) {
    budget_s_ = connect_budget_seconds(opt.connect) + 5.0;
    ports_.assign(static_cast<std::size_t>(ranks_), 0);
    lfds_.assign(static_cast<std::size_t>(ranks_), -1);
    if (in_process_) {
      for (int r = 0; r < ranks_; ++r) {
        lfds_[static_cast<std::size_t>(r)] =
            sockwire::listen_on(host_, r == 0 ? opt.port : 0);
        ports_[static_cast<std::size_t>(r)] =
            sockwire::listen_port(lfds_[static_cast<std::size_t>(r)]);
      }
      if (ranks_ > 1) {
        std::vector<std::thread> setup;
        std::vector<std::exception_ptr> errs(
            static_cast<std::size_t>(ranks_));
        setup.reserve(static_cast<std::size_t>(ranks_));
        for (int r = 0; r < ranks_; ++r) {
          setup.emplace_back([this, r, &errs, &opt] {
            try {
              handshake_rank(r, opt);
            } catch (...) {
              errs[static_cast<std::size_t>(r)] = std::current_exception();
            }
          });
        }
        for (auto& t : setup) t.join();
        for (const auto& e : errs) {
          if (e) std::rethrow_exception(e);
        }
      }
    } else {
      lfds_[static_cast<std::size_t>(my_rank_)] =
          sockwire::listen_on(host_, my_rank_ == 0 ? opt.port : 0);
      ports_[static_cast<std::size_t>(my_rank_)] =
          sockwire::listen_port(lfds_[static_cast<std::size_t>(my_rank_)]);
      handshake_rank(my_rank_, opt);
    }
    for (int& fd : lfds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }

  void handshake_rank(int r, const socket_options& opt) {
    if (r == 0) {
      // Phase 1 (coordinator): collect every hello, then answer each
      // connection with the full port table; the connection itself
      // stays as the 0<->j mesh link.
      for (int k = 1; k < ranks_; ++k) {
        const int fd =
            sockwire::accept_one(lfds_[0], budget_s_);
        sockwire::hello h;
        try {
          h = sockwire::read_hello(fd, ranks_, -1, budget_s_);
        } catch (...) {
          ::close(fd);
          throw;
        }
        if (h.rank < 1 || ep(0, h.rank).fd >= 0) {
          ::close(fd);
          throw comm_error(comm_error::reason::transport_lost, h.rank,
                           "duplicate or invalid hello from rank " +
                               std::to_string(h.rank));
        }
        ep(0, h.rank).fd = fd;
        if (!in_process_) ports_[static_cast<std::size_t>(h.rank)] = h.port;
      }
      for (int j = 1; j < ranks_; ++j) write_table(ep(0, j).fd, ports_, j);
    } else {
      const int coord_port =
          in_process_ ? ports_[0] : opt.port;
      const int fd0 = sockwire::connect_to(host_, coord_port, opt.connect, 0);
      ep(r, 0).fd = fd0;
      sockwire::write_hello(
          fd0,
          {r, ranks_,
           static_cast<std::uint16_t>(ports_[static_cast<std::size_t>(r)])},
          0);
      const std::vector<int> table = read_table(fd0, ranks_, 0, budget_s_);
      if (!in_process_) ports_ = table;
      // Phase 2 (mesh): connect to every lower rank's listener, then
      // accept the higher ranks; hellos identify who arrived.
      for (int i = 1; i < r; ++i) {
        const int fd = sockwire::connect_to(
            host_, ports_[static_cast<std::size_t>(i)], opt.connect, i);
        ep(r, i).fd = fd;
        sockwire::write_hello(
            fd,
            {r, ranks_,
             static_cast<std::uint16_t>(ports_[static_cast<std::size_t>(r)])},
            i);
      }
      for (int j = r + 1; j < ranks_; ++j) {
        const int fd = sockwire::accept_one(
            lfds_[static_cast<std::size_t>(r)], budget_s_);
        sockwire::hello h;
        try {
          h = sockwire::read_hello(fd, ranks_, -1, budget_s_);
        } catch (...) {
          ::close(fd);
          throw;
        }
        if (h.rank <= r || ep(r, h.rank).fd >= 0) {
          ::close(fd);
          throw comm_error(comm_error::reason::transport_lost, h.rank,
                           "duplicate or invalid mesh hello from rank " +
                               std::to_string(h.rank));
        }
        ep(r, h.rank).fd = fd;
      }
    }
  }

  void start_rx() {
    const int locals = local_rank_count();
    stop_pipes_.resize(static_cast<std::size_t>(locals));
    for (auto& sp : stop_pipes_) {
      int p[2];
      if (::pipe2(p, O_CLOEXEC) != 0) {
        throw comm_error(comm_error::reason::transport_lost, -1,
                         "pipe2: " + std::string(std::strerror(errno)));
      }
      sp.rd = p[0];
      sp.wr = p[1];
    }
    rx_threads_.reserve(static_cast<std::size_t>(locals));
    for (int li = 0; li < locals; ++li) {
      const int rank = in_process_ ? li : my_rank_;
      rx_threads_.emplace_back([this, rank] { rx_loop(rank); });
    }
  }

  /// One TCP stream feeding one destination: the fd plus the partial
  /// frame being reassembled. rx never blocks inside a frame - bytes
  /// accumulate here across poll rounds until a whole frame arrived.
  struct peer_link {
    int fd = -1;
    int peer = -1;
    std::vector<std::byte> acc;  ///< unparsed bytes, oldest first
  };

  /// Extract every complete frame buffered for this peer and deposit
  /// the live ones; an incomplete tail stays buffered for the next
  /// recv. Returns false (with `reason` set) on a protocol violation.
  bool parse_frames(int r, peer_link& p, std::string& reason) {
    std::size_t off = 0;
    while (p.acc.size() - off >= sockwire::frame_header_bytes) {
      sockwire::frame_header h;
      if (!sockwire::decode_header(p.acc.data() + off, h)) {
        reason = "bad frame header from rank " + std::to_string(p.peer) +
                 " (magic/version/kind mismatch)";
        return false;
      }
      if (h.payload_bytes > (std::uint64_t{1} << 31)) {
        reason = "oversized frame from rank " + std::to_string(p.peer) +
                 " (" + std::to_string(h.payload_bytes) + " bytes)";
        return false;
      }
      const std::size_t total = sockwire::frame_header_bytes +
                                static_cast<std::size_t>(h.payload_bytes);
      if (p.acc.size() - off < total) break;
      if (h.source < 0 || h.source >= ranks_) {
        reason = "frame with out-of-world source rank " +
                 std::to_string(h.source);
        return false;
      }
      wire_message msg;
      msg.source = h.source;
      msg.tag = h.tag;
      msg.depart_vtime = h.depart_vtime;
      msg.seq = h.seq;
      msg.checksum = h.checksum;
      msg.kind = static_cast<msg_kind>(h.kind);
      msg.epoch = h.epoch;
      msg.payload.assign(p.acc.data() + off + sockwire::frame_header_bytes,
                         p.acc.data() + off + total);
      off += total;
      // No epoch check here: the store's epoch floor (raise_floor)
      // drops stale frames atomically with any concurrent reset/drain.
      stores_[static_cast<std::size_t>(local_index(r))]->deposit(
          std::move(msg), (h.flags & sockwire::flag_front) != 0);
    }
    p.acc.erase(p.acc.begin(),
                p.acc.begin() + static_cast<std::ptrdiff_t>(off));
    return true;
  }

  void rx_loop(int r) {
    std::vector<peer_link> peers;
    for (int q = 0; q < ranks_; ++q) {
      if (q == r) continue;
      if (ep(r, q).fd >= 0) {
        peer_link p;
        p.fd = ep(r, q).fd;
        p.peer = q;
        peers.push_back(std::move(p));
      }
    }
    const int stop_fd = stop_pipes_[static_cast<std::size_t>(local_index(r))].rd;
    std::vector<pollfd> pfds;
    for (;;) {
      pfds.clear();
      pfds.push_back({stop_fd, POLLIN, 0});
      for (const auto& p : peers) pfds.push_back({p.fd, POLLIN, 0});
      const int rc = ::poll(pfds.data(), pfds.size(), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if ((pfds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return;
      for (std::size_t i = 0; i < peers.size();) {
        const short re = pfds[i + 1].revents;
        if ((re & (POLLIN | POLLERR | POLLHUP)) == 0) {
          ++i;
          continue;
        }
        peer_link& p = peers[i];
        bool alive = true;
        std::string reason;
        // MSG_DONTWAIT: one non-blocking read per poll round. A frame
        // split across TCP segments is reassembled over several
        // rounds; the loop never parks inside recv, so the stop pipe
        // always gets through and one slow peer cannot starve the
        // others (poll is level-triggered - leftover bytes re-arm it).
        std::byte chunk[1 << 16];
        const ssize_t got = ::recv(p.fd, chunk, sizeof chunk, MSG_DONTWAIT);
        if (got > 0) {
          p.acc.insert(p.acc.end(), chunk, chunk + got);
          alive = parse_frames(r, p, reason);
        } else if (got == 0) {
          alive = false;
          reason = p.acc.empty()
                       ? "peer closed the connection"
                       : "truncated frame from rank " +
                             std::to_string(p.peer) +
                             ": peer closed mid-message (" +
                             std::to_string(p.acc.size()) +
                             " bytes buffered)";
        } else if (errno != EINTR && errno != EAGAIN &&
                   errno != EWOULDBLOCK) {
          alive = false;
          reason = "recv from rank " + std::to_string(p.peer) + ": " +
                   std::strerror(errno);
        }
        if (alive) {
          ++i;
        } else {
          channel_down(r, p.peer, reason);
          peers.erase(peers.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    }
  }

  void channel_down(int r, int q, const std::string& reason) {
    endpoint& e = ep(r, q);
    e.down.store(true, std::memory_order_release);
    if (stopping_.load(std::memory_order_acquire)) return;
    wire_message m;
    m.source = q;
    m.kind = msg_kind::transport_down;
    m.epoch = epochs_[static_cast<std::size_t>(r)].load(
        std::memory_order_acquire);
    m.payload.resize(reason.size());
    std::memcpy(m.payload.data(), reason.data(), reason.size());
    stores_[static_cast<std::size_t>(local_index(r))]->deposit(std::move(m),
                                                               false);
  }

  void stop_and_close() {
    stopping_.store(true, std::memory_order_release);
    for (const auto& sp : stop_pipes_) {
      if (sp.wr < 0) continue;
      const char b = 1;
      const ssize_t ignored = ::write(sp.wr, &b, 1);
      (void)ignored;
    }
    for (auto& t : rx_threads_) {
      if (t.joinable()) t.join();
    }
    rx_threads_.clear();
    for (auto& e : eps_) {
      if (e && e->fd >= 0) {
        ::close(e->fd);
        e->fd = -1;
      }
    }
    for (int& fd : lfds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    for (auto& sp : stop_pipes_) {
      if (sp.rd >= 0) ::close(sp.rd);
      if (sp.wr >= 0) ::close(sp.wr);
      sp.rd = sp.wr = -1;
    }
    stop_pipes_.clear();
  }

  int ranks_;
  int my_rank_;
  bool in_process_ = true;
  std::string host_;
  double budget_s_ = 10.0;
  std::vector<int> ports_;
  std::vector<int> lfds_;
  std::vector<std::unique_ptr<endpoint>> eps_;
  std::vector<std::unique_ptr<detail::channel_store>> stores_;
  std::vector<stop_pipe> stop_pipes_;
  std::vector<std::thread> rx_threads_;
  /// Per-destination run/recovery fence; deposits stamp the target's
  /// current epoch and the target mailbox rejects anything below its
  /// floor. Shared array in-process; process-local in process mode.
  std::unique_ptr<std::atomic<std::uint32_t>[]> epochs_;
  std::atomic<bool> stopping_{false};
};

}  // namespace

std::unique_ptr<transport> make_socket_transport(int ranks,
                                                 const socket_options& opt) {
  return std::make_unique<socket_transport>(ranks, opt);
}

bool socket_loopback_available() noexcept {
  static const bool ok = [] {
    int lfd = -1;
    int cfd = -1;
    int afd = -1;
    try {
      lfd = sockwire::listen_on("127.0.0.1", 0);
      const int port = sockwire::listen_port(lfd);
      const retry_policy quick{0.01, 1.5, 3};
      cfd = sockwire::connect_to("127.0.0.1", port, quick, -1);
      afd = sockwire::accept_one(lfd, 2.0);
      const char out = 42;
      sockwire::write_all(cfd, &out, 1, -1);
      char in = 0;
      sockwire::read_all(afd, &in, 1, -1, /*eof_ok=*/false);
      ::close(afd);
      ::close(cfd);
      ::close(lfd);
      return in == 42;
    } catch (...) {
      if (afd >= 0) ::close(afd);
      if (cfd >= 0) ::close(cfd);
      if (lfd >= 0) ::close(lfd);
      return false;
    }
  }();
  return ok;
}

}  // namespace tfx::mpisim
