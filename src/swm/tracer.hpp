#pragma once

/// \file tracer.hpp
/// Passive tracer advection on the model's C-grid.
///
/// Weather/climate models carry tracers (moisture, chemistry) alongside
/// the dynamics; their advection schemes are where precision issues
/// surface as *conservation* errors rather than noise, so a tracer is
/// the natural companion experiment to the paper's § III-B. The scheme
/// here is first-order upwind in flux form, which has two properties
/// the tests pin down at every precision:
///
///  * exact conservation of the tracer total (up to roundoff): the
///    flux leaving one cell enters its neighbour;
///  * a discrete min/max principle (monotonicity): no new extrema,
///    CFL permitting - so a Float16 run can lose accuracy but can
///    never produce unphysical over/undershoots.

#include "core/contracts.hpp"
#include "swm/field.hpp"
#include "swm/params.hpp"

namespace tfx::swm {

/// One forward-Euler upwind advection step of tracer `q` by the
/// (scaled) velocity field of `st`, writing into `q_next`. `coeffs`
/// must come from the same parameters the state was produced with.
template <typename T>
void advect_tracer_upwind(const state<T>& st, const coefficients<T>& coeffs,
                          const field2d<T>& q, field2d<T>& q_next) {
  TFX_EXPECTS(q.nx() == st.nx() && q.ny() == st.ny());
  TFX_EXPECTS(q_next.nx() == q.nx() && q_next.ny() == q.ny());
  const int nx = q.nx();
  const int ny = q.ny();
  const T zero{};

  // dt/dx * u = dtdx * (inv_s * U): de-scale the velocity exactly.
  for (int j = 0; j < ny; ++j) {
    const int jp = q.jp(j);
    const int jm = q.jm(j);
    for (int i = 0; i < nx; ++i) {
      const int ip = q.ip(i);
      const int im = q.im(i);

      // Face Courant numbers (dt u / dx), upwind flux per face.
      const T cw = coeffs.dtdx * (coeffs.inv_s * st.u(i, j));    // west face
      const T ce = coeffs.dtdx * (coeffs.inv_s * st.u(ip, j));   // east face
      const T cs = coeffs.dtdy * (coeffs.inv_s * st.v(i, j));    // south
      const T cn = coeffs.dtdy * (coeffs.inv_s * st.v(i, jp));   // north

      const T flux_w = cw > zero ? cw * q(im, j) : cw * q(i, j);
      const T flux_e = ce > zero ? ce * q(i, j) : ce * q(ip, j);
      const T flux_s = cs > zero ? cs * q(i, jm) : cs * q(i, j);
      const T flux_n = cn > zero ? cn * q(i, j) : cn * q(i, jp);

      q_next(i, j) = q(i, j) + (flux_w - flux_e) + (flux_s - flux_n);
    }
  }
}

/// Total tracer content (sum over cells), in double for diagnostics.
template <typename T>
double tracer_total(const field2d<T>& q) {
  double acc = 0;
  for (const auto& v : q.flat()) acc += static_cast<double>(v);
  return acc;
}

/// Min and max tracer values, in double.
template <typename T>
std::pair<double, double> tracer_range(const field2d<T>& q) {
  double lo = static_cast<double>(q.flat()[0]);
  double hi = lo;
  for (const auto& v : q.flat()) {
    const double d = static_cast<double>(v);
    lo = d < lo ? d : lo;
    hi = d > hi ? d : hi;
  }
  return {lo, hi};
}

/// A Gaussian blob initial condition (the standard advection test).
template <typename T>
field2d<T> gaussian_blob(const swm_params& p, double center_x,
                         double center_y, double radius_cells,
                         double amplitude = 1.0) {
  field2d<T> q(p.nx, p.ny);
  for (int j = 0; j < p.ny; ++j) {
    for (int i = 0; i < p.nx; ++i) {
      const double dx = i - center_x;
      const double dy = j - center_y;
      q(i, j) = T(amplitude *
                  std::exp(-(dx * dx + dy * dy) /
                           (2.0 * radius_cells * radius_cells)));
    }
  }
  return q;
}

}  // namespace tfx::swm
