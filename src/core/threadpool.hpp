#pragma once

/// \file threadpool.hpp
/// A work-sharing thread pool with a parallel_for, in the spirit of an
/// OpenMP `parallel for schedule(static)`.
///
/// The paper's kernel benchmarks are single-threaded (Fig. 1 caption),
/// but the application side of an A64FX node runs 12 cores per CMG;
/// the parallel kernel variants (kernels/parallel.hpp) and the
/// multi-core machine-model queries use this pool. Design points:
///
///  * fixed worker count, created once (thread creation is never on
///    the measurement path);
///  * static blocked partitioning - deterministic assignment of index
///    ranges to workers, so numerical results are reproducible
///    run-to-run (no atomic work stealing that would reorder
///    reductions);
///  * the calling thread participates as worker 0, so a pool of size 1
///    degenerates to a plain loop with no synchronization cost.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/contracts.hpp"

namespace tfx {

class thread_pool {
 public:
  /// A pool with `threads` workers total (including the caller).
  explicit thread_pool(int threads)
      : total_(threads) {
    TFX_EXPECTS(threads >= 1);
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int w = 1; w < threads; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~thread_pool() {
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] int size() const { return total_; }

  /// Run body(begin, end) over [0, n) split into `size()` contiguous
  /// blocks, one per worker, caller included. Blocks until all done.
  /// Nested parallel_for calls are not supported.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    if (total_ == 1 || n == 1) {
      body(0, n);
      return;
    }
    {
      const std::scoped_lock lock(mutex_);
      TFX_EXPECTS(job_ == nullptr && "nested parallel_for");
      job_ = &body;
      job_n_ = n;
      ++generation_;
      pending_ = total_ - 1;
    }
    wake_.notify_all();
    run_block(0, body, n);  // caller is worker 0
    std::unique_lock lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

  /// Static block boundaries for worker w of `workers` over n items.
  static std::pair<std::size_t, std::size_t> block(std::size_t n, int workers,
                                                   int w) {
    const auto uw = static_cast<std::size_t>(workers);
    const auto k = static_cast<std::size_t>(w);
    return {n * k / uw, n * (k + 1) / uw};
  }

 private:
  void run_block(int w,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t n) const {
    const auto [lo, hi] = block(n, total_, w);
    if (lo < hi) body(lo, hi);
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t, std::size_t)>* job = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
        n = job_n_;
      }
      run_block(w, *job, n);
      {
        const std::scoped_lock lock(mutex_);
        --pending_;
      }
      done_.notify_one();
    }
  }

  int total_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace tfx
