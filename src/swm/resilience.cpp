#include "swm/resilience.hpp"

#include "mpisim/patterns.hpp"

namespace tfx::swm {

mpisim::sim_program make_checkpoint_program(const mpisim::tofud_params& net,
                                            int p,
                                            std::size_t message_bytes) {
  TFX_EXPECTS(p >= 1);
  mpisim::sim_program prog(p);
  if (p == 1) return prog;  // single rank commits purely locally
  // Phase 1: buddy-ring prepare - each rank ships its snapshot to
  // (r+1)%p and receives its left neighbour's.
  for (int r = 0; r < p; ++r) {
    prog.rank(r).push_back(mpisim::sim_op::send_to((r + 1) % p, message_bytes));
    prog.rank(r).push_back(
        mpisim::sim_op::recv_from((r - 1 + p) % p, message_bytes));
  }
  // Phase 2: the one-byte commit vote, exactly the allreduce the
  // session issues (recursive doubling, count 1, elem 1).
  const mpisim::sim_program vote = mpisim::make_allreduce_program(
      net, p, 1, 1, mpisim::coll_algorithm::recursive_doubling);
  for (int r = 0; r < p; ++r) {
    for (const auto& op : vote.ranks[static_cast<std::size_t>(r)]) {
      prog.rank(r).push_back(op);
    }
  }
  return prog;
}

}  // namespace tfx::swm
