#pragma once

/// \file network.hpp
/// Network performance model: Tofu Interconnect D as seen by MPI.
///
/// Fugaku's nodes are connected by TofuD, a 6-D torus [paper ref 4];
/// job allocations are requested as 3-D torus shapes (the paper's
/// Fig. 3 runs used `node=4x6x16:torus`). We model the allocation as a
/// 3-D torus of nodes with a Hockney (alpha-beta) cost per message plus
/// a per-hop term, with distinct intra-node parameters and a
/// rendezvous-handshake surcharge for large messages. The constants are
/// calibrated so a 2-node ping-pong lands on the R-CCS numbers quoted
/// in the paper (sub-microsecond small-message latency, ~6.8 GB/s peak
/// throughput; Fig. 2).

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace tfx::mpisim {

/// Calibration constants of the modeled interconnect.
struct tofud_params {
  // -- inter-node (TofuD link) --
  double alpha_s = 0.70e-6;        ///< base one-way latency, seconds
  double per_hop_s = 0.04e-6;      ///< added latency per torus hop
  double link_bandwidth_Bps = 6.8e9;  ///< sustained injection bandwidth

  // -- intra-node (shared memory) --
  double intra_alpha_s = 0.25e-6;
  double intra_bandwidth_Bps = 18.0e9;

  // -- protocol --
  /// Eager/rendezvous switchover. 64 KiB, matching the A64FX L1 size
  /// the paper identifies as the end of the harness-dependent regime.
  std::size_t eager_threshold = 64 * 1024;
  double rendezvous_extra_s = 1.0e-6;       ///< RTS/CTS handshake cost

  // -- software (MPI library) per-call costs, charged by the runtime --
  double send_overhead_s = 0.10e-6;  ///< o_send in LogP terms
  double recv_overhead_s = 0.10e-6;  ///< o_recv

  // -- reduction compute cost (per byte combined at a rank) --
  double reduce_compute_s_per_byte = 0.012e-9;  ///< ~80 GB/s combine rate
};

/// One directed torus link: the exit of `node` along dimension `dim`
/// in direction `dir` (+1 or -1). Every node owns 6 directed links
/// (degenerate 1-wide dimensions included, for a dense id space); the
/// contention-aware DES tracks occupancy per link id.
struct torus_link {
  int node = 0;  ///< source node of the directed link
  int dim = 0;   ///< 0, 1 or 2
  int dir = 0;   ///< +1 or -1

  bool operator==(const torus_link&) const = default;
};

/// A 3-D torus allocation of nodes, with ranks block-assigned to nodes.
class torus_placement {
 public:
  /// `shape` = nodes per dimension (e.g. {4, 6, 16} for Fig. 3);
  /// `ranks_per_node` = MPI processes per node (paper: 4).
  torus_placement(std::array<int, 3> shape, int ranks_per_node);

  /// Convenience: a linear chain of `nodes` nodes, 1 rank each
  /// (Fig. 2's 2-node ping-pong uses {2, 1, 1} x 1).
  static torus_placement line(int nodes, int ranks_per_node = 1);

  [[nodiscard]] int node_count() const { return shape_[0] * shape_[1] * shape_[2]; }
  [[nodiscard]] int rank_count() const { return node_count() * ranks_per_node_; }
  [[nodiscard]] int ranks_per_node() const { return ranks_per_node_; }
  [[nodiscard]] const std::array<int, 3>& shape() const { return shape_; }

  /// Node index hosting a rank (block distribution).
  [[nodiscard]] int node_of(int rank) const { return rank / ranks_per_node_; }

  /// Torus coordinates of a node.
  [[nodiscard]] std::array<int, 3> coords_of(int node) const;

  /// Inverse of coords_of: the node at the given torus coordinates.
  [[nodiscard]] int node_at(const std::array<int, 3>& coords) const {
    for (int d = 0; d < 3; ++d) {
      TFX_EXPECTS(coords[static_cast<std::size_t>(d)] >= 0 &&
                  coords[static_cast<std::size_t>(d)] < shape_[static_cast<std::size_t>(d)]);
    }
    return node_index(coords);
  }

  /// Minimal hop count between two nodes (per-dimension wraparound
  /// Manhattan distance).
  [[nodiscard]] int hops(int node_a, int node_b) const;

  // -- dimension-ordered routing (docs/TOPOLOGY.md) -------------------

  /// Number of directed links in the torus (6 per node).
  [[nodiscard]] int link_count() const { return node_count() * 6; }

  /// Dense id in [0, link_count()) of the directed link leaving `node`
  /// along `dim` towards `dir`.
  [[nodiscard]] int link_id(int node, int dim, int dir) const {
    return node * 6 + dim * 2 + (dir > 0 ? 0 : 1);
  }

  /// Inverse of link_id.
  [[nodiscard]] torus_link link_at(int id) const {
    TFX_EXPECTS(id >= 0 && id < link_count());
    return {id / 6, (id % 6) / 2, (id % 6) % 2 == 0 ? +1 : -1};
  }

  /// Neighbour of `node` one hop along `dim`,`dir` (with wraparound).
  [[nodiscard]] int neighbor_of(int node, int dim, int dir) const;

  /// Dimension-ordered minimal route between two nodes as the ordered
  /// sequence of directed link ids: all x hops first, then y, then z.
  /// Each dimension travels the shorter way around; on a tie (distance
  /// exactly half an even-sized dimension) the POSITIVE direction wins,
  /// so the route - and therefore the contention charge - is
  /// deterministic. route_of(a, b).size() == hops(a, b) always, and
  /// route_of(b, a) is NOT generally the reverse (tie-broken hops use
  /// +1 both ways).
  [[nodiscard]] std::vector<int> route_of(int node_a, int node_b) const;

  /// Allocation-free route walk for the DES hot path: calls
  /// `fn(link_id)` for every directed link of route_of(a, b) in order.
  template <typename Fn>
  void for_each_route_link(int node_a, int node_b, Fn&& fn) const {
    const auto a = coords_of(node_a);
    const auto b = coords_of(node_b);
    std::array<int, 3> cur = a;
    for (int d = 0; d < 3; ++d) {
      const int n = shape_[d];
      const int fwd = ((b[d] - a[d]) % n + n) % n;  // steps going +1
      const int back = n - fwd;                     // steps going -1
      const int dir = fwd <= back ? +1 : -1;        // tie -> positive
      const int steps = fwd <= back ? fwd : back;
      for (int s = 0; s < steps; ++s) {
        const int node = node_index(cur);
        fn(link_id(node, d, dir));
        cur[d] = ((cur[d] + dir) % n + n) % n;
      }
    }
  }

 private:
  [[nodiscard]] int node_index(const std::array<int, 3>& c) const {
    return c[0] + shape_[0] * (c[1] + shape_[1] * c[2]);
  }

  std::array<int, 3> shape_;
  int ranks_per_node_;
};

/// Transit time of one message from rank `src` to rank `dst` (not
/// including sender/receiver software overheads, which the runtime
/// charges to the per-rank clocks). Equal to
/// transfer_latency_seconds + serialization_seconds: the uncontended
/// end-to-end time.
double transfer_seconds(const tofud_params& net, const torus_placement& place,
                        int src, int dst, std::size_t bytes);

/// The latency part only: time until the first byte reaches the
/// destination (alpha + hop terms + rendezvous handshake).
double transfer_latency_seconds(const tofud_params& net,
                                const torus_placement& place, int src,
                                int dst, std::size_t bytes);

/// The bandwidth part only: time one endpoint's port is occupied
/// streaming the payload (bytes / link or intra-node bandwidth). The
/// runtime serializes concurrent messages through each rank's port
/// with this figure (LogGP's G*k term) - that is what makes a
/// 1536-rank Gatherv root take ~1535 serialization times, not one.
double serialization_seconds(const tofud_params& net,
                             const torus_placement& place, int src, int dst,
                             std::size_t bytes);

/// Time to combine `bytes` of reduction input at one rank.
double reduce_compute_seconds(const tofud_params& net, std::size_t bytes);

/// Retransmission timeout after `attempt` prior failures of the same
/// message: timeout_s * factor^attempt (exponential backoff). Part of
/// the network-timing layer so the threaded runtime and the
/// discrete-event engine charge bit-identical retry delays
/// (faultplane.hpp drives both).
double backoff_delay_seconds(double timeout_s, double factor, int attempt);

}  // namespace tfx::mpisim
