#include "obs/chrome.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

namespace tfx::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_metadata(std::string& out, const char* what, int pid, int tid,
                     std::string_view name) {
  char buf[64];
  out += "{\"name\":\"";
  out += what;
  std::snprintf(buf, sizeof buf, "\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,", pid,
                tid);
  out += buf;
  out += "\"args\":{\"name\":\"";
  append_escaped(out, name);
  out += "\"}},\n";
}

}  // namespace

std::string to_chrome_json(std::span<const event> events,
                           std::string_view process_name) {
  // Stable sort by timestamp: per-thread emission order survives among
  // ties, so every tid's stream is nondecreasing in ts and span
  // begin/end records keep their LIFO nesting.
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t lhs, std::size_t rhs) {
                     return events[lhs].ts < events[rhs].ts;
                   });

  constexpr int pid = 1;
  std::string out;
  out.reserve(events.size() * 96 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  append_metadata(out, "process_name", pid, 0, process_name);

  // Declare every (domain, track) that carries events as a named
  // Chrome thread, e.g. "net/3" for rank 3's virtual-clock track.
  std::set<std::pair<int, std::uint16_t>> tracks;
  for (const event& e : events)
    tracks.emplace(static_cast<int>(e.dom), e.track);
  for (const auto& [dom, track] : tracks) {
    char name[32];
    std::snprintf(name, sizeof name, "%s/%u",
                  domain_name(static_cast<domain>(dom)),
                  static_cast<unsigned>(track));
    append_metadata(out, "thread_name", pid,
                    export_tid(static_cast<domain>(dom), track), name);
  }

  char buf[160];
  for (std::size_t n = 0; n < order.size(); ++n) {
    const event& e = events[order[n]];
    const int tid = export_tid(e.dom, e.track);
    out += "{\"name\":\"";
    append_escaped(out, e.name != nullptr ? e.name : "?");
    const char* ph = "i";
    switch (e.what) {
      case kind::begin: ph = "B"; break;
      case kind::end: ph = "E"; break;
      case kind::instant: ph = "i"; break;
      case kind::counter: ph = "C"; break;
    }
    std::snprintf(buf, sizeof buf, "\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,",
                  ph, pid, tid);
    out += buf;
    if (e.what == kind::instant) out += "\"s\":\"t\",";
    // Microseconds with sub-ns precision: virtual clocks tick in the
    // microsecond range, host spans can be tens of milliseconds.
    std::snprintf(buf, sizeof buf, "\"ts\":%.6f,", e.ts * 1e6);
    out += buf;
    if (e.what == kind::counter) {
      std::snprintf(buf, sizeof buf,
                    "\"args\":{\"value\":%" PRIu64 ",\"aux\":%" PRIu64 "}}",
                    e.a, e.b);
    } else {
      std::snprintf(buf, sizeof buf,
                    "\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}", e.a,
                    e.b);
    }
    out += buf;
    out += n + 1 < order.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        std::span<const event> events,
                        std::string_view process_name) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  const std::string json = to_chrome_json(events, process_name);
  os.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(os);
}

// -- validator --------------------------------------------------------------

namespace {

/// Minimal JSON cursor for the exporter's output subset (objects,
/// arrays, strings, numbers; no unicode escapes beyond \uXXXX pass-
/// through, which we never need to decode for structural checks).
class json_cursor {
 public:
  explicit json_cursor(std::string_view s) : s_(s) {}

  [[nodiscard]] const std::string& error() const { return err_; }
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    std::string val;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("truncated escape");
        switch (s_[pos_]) {
          case 'n': val += '\n'; break;
          case 't': val += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return fail("truncated \\u escape");
            pos_ += 4;
            val += '?';
            break;
          default: val += s_[pos_];
        }
      } else {
        val += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;
    if (out != nullptr) *out = std::move(val);
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    double val = 0;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_, val);
    if (res.ec != std::errc{}) return fail("malformed number");
    if (out != nullptr) *out = val;
    return true;
  }

  /// Skip any JSON value (used for args and unknown keys).
  bool skip_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= s_.size()) return fail("expected value");
    const char c = s_[pos_];
    if (c == '"') return parse_string(nullptr);
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      skip_ws();
      if (peek_is(close)) {
        ++pos_;
        return true;
      }
      while (true) {
        if (c == '{') {
          if (!parse_string(nullptr) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (peek_is(',')) {
          ++pos_;
          continue;
        }
        return expect(close);
      }
    }
    if (c == 't') return expect_word("true");
    if (c == 'f') return expect_word("false");
    if (c == 'n') return expect_word("null");
    return parse_number(nullptr);
  }

  bool fail(std::string msg) {
    if (err_.empty()) err_ = std::move(msg);
    return false;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool expect_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return fail("bad literal");
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

struct record {
  std::string name;
  std::string ph;
  double pid = -1;
  double tid = -1;
  double ts = 0;
  bool has_ts = false;
  bool has_pid = false;
  bool has_tid = false;
};

bool parse_record(json_cursor& c, record* r) {
  if (!c.expect('{')) return false;
  if (c.peek_is('}')) return c.expect('}');
  while (true) {
    std::string key;
    if (!c.parse_string(&key) || !c.expect(':')) return false;
    bool ok = true;
    if (key == "name") {
      ok = c.parse_string(&r->name);
    } else if (key == "ph") {
      ok = c.parse_string(&r->ph);
    } else if (key == "pid") {
      ok = c.parse_number(&r->pid);
      r->has_pid = ok;
    } else if (key == "tid") {
      ok = c.parse_number(&r->tid);
      r->has_tid = ok;
    } else if (key == "ts") {
      ok = c.parse_number(&r->ts);
      r->has_ts = ok;
    } else {
      ok = c.skip_value();
    }
    if (!ok) return false;
    if (c.peek_is(',')) {
      c.expect(',');
      continue;
    }
    return c.expect('}');
  }
}

}  // namespace

trace_validation validate_chrome_json(std::string_view json) {
  trace_validation v;
  const auto reject = [&v](std::string msg) {
    v.ok = false;
    if (v.error.empty()) v.error = std::move(msg);
    return v;
  };

  json_cursor c(json);
  if (!c.expect('{')) return reject("not a JSON object: " + c.error());

  struct tid_state {
    std::vector<std::string> open;  ///< names of open spans (LIFO)
    double last_ts = 0;
    bool any_ts = false;
  };
  std::map<std::pair<long, long>, tid_state> tids;
  std::set<long> named_pids;
  std::set<std::pair<long, long>> named_tids;
  std::set<long> seen_pids;

  bool saw_trace_events = false;
  while (true) {
    std::string key;
    if (!c.parse_string(&key) || !c.expect(':'))
      return reject("bad top-level key: " + c.error());
    if (key != "traceEvents") {
      if (!c.skip_value()) return reject("bad top-level value: " + c.error());
    } else {
      saw_trace_events = true;
      if (!c.expect('[')) return reject("traceEvents not an array");
      if (!c.peek_is(']')) {
        while (true) {
          record r;
          if (!parse_record(c, &r))
            return reject("malformed record: " + c.error());
          if (r.ph.size() != 1 ||
              std::string_view("BEiCM").find(r.ph[0]) == std::string::npos)
            return reject("unknown ph '" + r.ph + "' in '" + r.name + "'");
          if (!r.has_pid || !r.has_tid)
            return reject("record '" + r.name + "' missing pid/tid");
          const long pid = static_cast<long>(r.pid);
          const long tid = static_cast<long>(r.tid);
          const char ph = r.ph[0];
          if (ph == 'M') {
            ++v.metadata;
            if (r.name == "process_name") named_pids.insert(pid);
            if (r.name == "thread_name") named_tids.emplace(pid, tid);
          } else {
            if (!r.has_ts)
              return reject("record '" + r.name + "' missing ts");
            ++v.events;
            seen_pids.insert(pid);
            tid_state& st = tids[{pid, tid}];
            if (st.any_ts && r.ts < st.last_ts)
              return reject("ts went backwards on tid " +
                            std::to_string(tid) + " at '" + r.name + "'");
            st.last_ts = r.ts;
            st.any_ts = true;
            switch (ph) {
              case 'B': st.open.push_back(r.name); break;
              case 'E':
                if (st.open.empty())
                  return reject("unmatched E '" + r.name + "' on tid " +
                                std::to_string(tid));
                if (st.open.back() != r.name)
                  return reject("E '" + r.name + "' closes B '" +
                                st.open.back() + "' on tid " +
                                std::to_string(tid));
                st.open.pop_back();
                ++v.spans;
                break;
              case 'i': ++v.instants; break;
              case 'C': ++v.counters; break;
              default: break;
            }
          }
          if (c.peek_is(',')) {
            c.expect(',');
            continue;
          }
          break;
        }
      }
      if (!c.expect(']')) return reject("unterminated traceEvents");
    }
    if (c.peek_is(',')) {
      c.expect(',');
      continue;
    }
    break;
  }
  if (!c.expect('}')) return reject("unterminated top-level object");
  if (!saw_trace_events) return reject("no traceEvents array");

  for (const auto& [key, st] : tids) {
    if (!st.open.empty())
      return reject("tid " + std::to_string(key.second) +
                    " ends with open span '" + st.open.back() + "'");
    if (named_tids.count(key) == 0)
      return reject("tid " + std::to_string(key.second) +
                    " has no thread_name metadata");
  }
  for (const long pid : seen_pids) {
    if (named_pids.count(pid) == 0)
      return reject("pid " + std::to_string(pid) +
                    " has no process_name metadata");
  }
  return v;
}

}  // namespace tfx::obs
