#include "arch/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace tfx::arch {

namespace {

/// Usable fraction of each level for a streaming working set: a few
/// ways are lost to the stack, code, and the benchmark harness itself.
constexpr double l1_residency = 0.80;
constexpr double l2_residency = 0.85;

}  // namespace

double effective_bandwidth_gbs(const a64fx_params& machine,
                               std::size_t working_set_bytes) {
  const double ws = std::max<double>(1.0, static_cast<double>(working_set_bytes));
  const double e1 = l1_residency * static_cast<double>(machine.l1.size_bytes);
  const double e2 = l2_residency * static_cast<double>(machine.l2.size_bytes);

  // Fractions of the steady-state traffic served by each level.
  const double f1 = std::min(1.0, e1 / ws);
  const double f2 = std::min(1.0 - f1, std::max(0.0, (e2 - e1) / ws));
  const double fm = std::max(0.0, 1.0 - f1 - f2);

  const double inv = f1 / machine.l1_bandwidth_gbs +
                     f2 / machine.l2_bandwidth_gbs +
                     fm / machine.mem_bandwidth_gbs;
  return 1.0 / inv;
}

model_time predict(const a64fx_params& machine, const kernel_profile& profile,
                   std::size_t n, std::size_t elem_bytes,
                   std::size_t working_set_bytes,
                   std::uint64_t subnormal_ops) {
  TFX_EXPECTS(n > 0);
  TFX_EXPECTS(elem_bytes > 0);

  model_time out;
  const double cycle_s = machine.cycle_ns() * 1e-9;
  const double dn = static_cast<double>(n);

  const bool scalar = profile.vector_bits == 0;
  const double lanes =
      scalar ? 1.0
             : static_cast<double>(machine.lanes(elem_bytes,
                                                 profile.vector_bits));
  const double vectors = std::ceil(dn / lanes);

  // FP pipes: each vector iteration needs flops/(2*lanes) FMAs; both
  // pipes retire one vector FMA per cycle.
  const double fmas_per_vector =
      profile.flops_per_elem / machine.fma_flops;  // usually 1
  double compute_cycles =
      vectors * fmas_per_vector / static_cast<double>(machine.fp_pipes);
  compute_cycles /= std::max(1e-6, profile.simd_efficiency);
  compute_cycles += dn * profile.soft_float_cycles;
  out.compute_seconds = compute_cycles * cycle_s;

  // LSU: vector loads over the load ports, vector stores over the
  // store port. The narrower the code's vectors, the more issue slots
  // the same traffic costs - this is what sinks the NEON-only backends.
  const double lsu_cycles =
      vectors * (profile.loads_per_elem /
                     static_cast<double>(machine.load_ports) +
                 profile.stores_per_elem /
                     static_cast<double>(machine.store_ports)) /
      std::max(1e-6, profile.simd_efficiency);
  out.lsu_seconds = lsu_cycles * cycle_s;

  // Memory: total bytes moved at the blended bandwidth of the levels
  // the steady-state working set streams from.
  const double bytes_moved =
      dn * static_cast<double>(elem_bytes) *
      (profile.loads_per_elem + profile.stores_per_elem);
  const double bw = effective_bandwidth_gbs(machine, working_set_bytes);
  out.memory_seconds = bytes_moved / (bw * 1e9);

  // Overheads are additive: loop control occupies issue slots and the
  // call cost is serial with the loop.
  out.overhead_seconds = vectors * profile.loop_overhead_cycles * cycle_s +
                         profile.call_overhead_ns * 1e-9;

  const double trap_seconds = static_cast<double>(subnormal_ops) *
                              machine.subnormal_trap_cycles * cycle_s;

  out.seconds = std::max({out.compute_seconds, out.lsu_seconds,
                          out.memory_seconds}) +
                out.overhead_seconds + trap_seconds;
  out.gflops = profile.flops_per_elem * dn / out.seconds / 1e9;
  return out;
}

}  // namespace tfx::arch
