// Topology ablation: flat vs CMG/node-aware hierarchical allreduce on
// the uncontended and the contended fabric, at 256 / 1536 / 4096
// simulated ranks - the canonical producer of BENCH_topology.json.
//
// Three questions, one JSON:
//
//  1. Does the node hierarchy pay?  On the uncontended endpoint-port
//     fabric it does NOT (block placement already makes the flat
//     algorithm's low-mask rounds intra-node; the hierarchy adds
//     sequential phases). On the contended fabric the picture flips
//     for bandwidth-bound sizes: 4 ranks/node means the flat algorithm
//     pushes 4x the per-link traffic of the leader phase, and hot
//     links back up.
//  2. Where is the congestion cliff?  The 1536-rank flat Gatherv
//     funnels 1535 messages into the root node's links; the contended
//     DES reports the per-link occupancy stats that price it.
//  3. What did the DES refactor buy?  Host wall-time per simulated
//     rank at 1536/4096 ranks, with the pre-refactor numbers recorded
//     alongside as the regression witness.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "imb/benchmarks.hpp"
#include "mpisim/des.hpp"
#include "mpisim/patterns.hpp"

using namespace tfx;
using namespace tfx::imb;
using namespace tfx::mpisim;

namespace {

struct scale {
  const char* name;
  torus_placement place;
};

struct latency_row {
  int ranks = 0;
  std::size_t bytes = 0;
  const char* layout = "";  ///< "flat" | "hierarchical"
  const char* fabric = "";  ///< "uncontended" | "contended"
  double latency_s = 0;
};

struct gatherv_report {
  std::size_t bytes = 0;
  double uncontended_s = 0;  ///< single cold op, endpoint-port fabric
  double contended_s = 0;    ///< single cold op, link fabric
  double imb_uncontended_s = 0;  ///< steady state (IMB repetitions)
  double imb_contended_s = 0;
  link_stat_block links;
};

struct host_row {
  int ranks = 0;
  const char* program = "";
  std::size_t bytes = 0;
  double host_s = 0;       ///< build + simulate wall time, this run
  double host_s_seed = 0;  ///< same workload at the pre-refactor commit
};

collective_kind kind_of(bool hier) {
  return hier ? collective_kind::hierarchical_allreduce
              : collective_kind::allreduce;
}

des_options fabric(fabric_mode mode) {
  des_options opts;
  opts.fabric = mode;
  return opts;
}

void write_json(const std::string& path, const std::vector<latency_row>& rows,
                const gatherv_report& gv, const std::vector<host_row>& host) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_hierarchy\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"bytes\": %zu, \"layout\": \"%s\", "
                 "\"fabric\": \"%s\", \"latency_s\": %.6e}%s\n",
                 r.ranks, r.bytes, r.layout, r.fabric, r.latency_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"gatherv_1536\": {\"bytes\": %zu, "
               "\"cold_uncontended_s\": %.6e, \"cold_contended_s\": %.6e, "
               "\"steady_uncontended_s\": %.6e, "
               "\"steady_contended_s\": %.6e, \"steady_slowdown\": %.3f,\n"
               "    \"routed_messages\": %llu, "
               "\"link_hops\": %llu, \"contended_hops\": %llu, "
               "\"link_wait_s\": %.6e, \"max_link_busy_s\": %.6e, "
               "\"max_link\": %d},\n",
               gv.bytes, gv.uncontended_s, gv.contended_s,
               gv.imb_uncontended_s, gv.imb_contended_s,
               gv.imb_contended_s / gv.imb_uncontended_s,
               static_cast<unsigned long long>(gv.links.routed_messages),
               static_cast<unsigned long long>(gv.links.link_hops),
               static_cast<unsigned long long>(gv.links.contended_hops),
               gv.links.wait_seconds, gv.links.max_link_busy_s,
               gv.links.max_link);
  std::fprintf(f, "  \"des_host_time\": [\n");
  for (std::size_t i = 0; i < host.size(); ++i) {
    const auto& h = host[i];
    std::fprintf(
        f,
        "    {\"ranks\": %d, \"program\": \"%s\", \"bytes\": %zu, "
        "\"host_s\": %.6e, \"host_us_per_rank\": %.3f, "
        "\"host_s_seed\": %.6e, \"speedup_vs_seed\": %.2f}%s\n",
        h.ranks, h.program, h.bytes, h.host_s,
        h.host_s * 1e6 / h.ranks, h.host_s_seed, h.host_s_seed / h.host_s,
        i + 1 < host.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv,
           {{"json", "output path (default BENCH_topology.json)"},
            {"quick", "skip the 4096-rank scale (CI smoke)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const std::string json = args.get_string("json", "BENCH_topology.json");
  const bool quick = args.has("quick");

  std::puts("Topology ablation: flat vs hierarchical allreduce across");
  std::puts("fabric models (uncontended endpoint ports vs per-link");
  std::puts("contention), 4 ranks/node throughout.\n");

  const bench_config config;
  std::vector<scale> scales;
  scales.push_back({"256 ranks  (4x4x4 x4)", torus_placement({4, 4, 4}, 4)});
  scales.push_back({"1536 ranks (4x6x16 x4)", fugaku_fig3_placement()});
  if (!quick) {
    scales.push_back(
        {"4096 ranks (8x8x16 x4)", torus_placement({8, 8, 16}, 4)});
  }
  const std::vector<std::size_t> sizes = {64, 8192, 1 << 20};

  std::vector<latency_row> rows;
  for (const auto& s : scales) {
    std::printf("== %s ==\n", s.name);
    table t({"bytes", "flat", "hier", "hier/flat", "flat+cont", "hier+cont",
             "hier/flat+cont"});
    const int p = s.place.rank_count();
    for (const std::size_t bytes : sizes) {
      double lat[2][2];  // [hier][contended]
      for (const bool hier : {false, true}) {
        for (const bool cont : {false, true}) {
          const auto mode =
              cont ? fabric_mode::contended : fabric_mode::uncontended;
          const auto m =
              run_collective(kind_of(hier), imb_c, config, s.place, {bytes},
                             coll_algorithm::automatic, fabric(mode));
          lat[hier][cont] = m.front().latency_s;
          rows.push_back({p, bytes, hier ? "hierarchical" : "flat",
                          cont ? "contended" : "uncontended",
                          m.front().latency_s});
        }
      }
      t.add_row({format_bytes(bytes), format_seconds(lat[0][0]),
                 format_seconds(lat[1][0]),
                 format_fixed(lat[1][0] / lat[0][0], 2),
                 format_seconds(lat[0][1]), format_seconds(lat[1][1]),
                 format_fixed(lat[1][1] / lat[0][1], 2)});
    }
    t.print(std::cout);
    std::puts("");
  }

  // -- the congestion cliff: 1536-rank flat Gatherv -------------------
  // Every non-root rank sends its block to rank 0; dimension-ordered
  // routes funnel into the root node's six incoming links, so the
  // contended fabric shows the store-and-forward pile-up the endpoint
  // model structurally cannot.
  gatherv_report gv;
  gv.bytes = 4096;
  {
    const auto place = fugaku_fig3_placement();
    const auto prog =
        make_gatherv_program(place.rank_count(), gv.bytes / 4, 4, 0);
    gv.uncontended_s = simulate(prog, config.net, place).max_clock();
    auto res = simulate(prog, config.net, place, {}, nullptr,
                        fabric(fabric_mode::contended));
    gv.contended_s = res.max_clock();
    gv.links = res.links;
    gv.imb_uncontended_s =
        run_collective(collective_kind::gatherv, imb_c, config, place,
                       {gv.bytes})
            .front()
            .latency_s;
    gv.imb_contended_s =
        run_collective(collective_kind::gatherv, imb_c, config, place,
                       {gv.bytes}, coll_algorithm::automatic,
                       fabric(fabric_mode::contended))
            .front()
            .latency_s;
  }
  std::puts("== congestion cliff: flat Gatherv, 1536 ranks, 4 KiB/rank ==");
  std::printf("  cold op:      uncontended %s   contended %s   (%.2fx)\n",
              format_seconds(gv.uncontended_s).c_str(),
              format_seconds(gv.contended_s).c_str(),
              gv.contended_s / gv.uncontended_s);
  std::printf("  steady state: uncontended %s   contended %s   (%.2fx)\n",
              format_seconds(gv.imb_uncontended_s).c_str(),
              format_seconds(gv.imb_contended_s).c_str(),
              gv.imb_contended_s / gv.imb_uncontended_s);
  std::printf(
      "  routed %llu msgs over %llu link-hops, %llu found the link busy\n",
      static_cast<unsigned long long>(gv.links.routed_messages),
      static_cast<unsigned long long>(gv.links.link_hops),
      static_cast<unsigned long long>(gv.links.contended_hops));
  std::printf("  total queueing %s, busiest link #%d occupied %s\n",
              format_seconds(gv.links.wait_seconds).c_str(), gv.links.max_link,
              format_seconds(gv.links.max_link_busy_s).c_str());
  std::puts("  A single cold incast is bounded by the root's ejection port");
  std::puts("  in both fabrics (the sink drains 1535 x ser either way); the");
  std::puts("  cliff appears under IMB's back-to-back repetitions, where");
  std::puts("  link queues persist across iterations and the hot links near");
  std::puts("  the root, not the port, set the steady-state rate.\n");

  // -- DES host time per simulated rank (refactor witness) ------------
  // `host_s_seed` is the same build+simulate workload measured at the
  // pre-refactor commit (d50f556, Release -O2, same container class):
  // the unordered_map channel registry and per-op allocations dominated
  // above ~1k ranks.
  std::vector<host_row> host;
  struct workload {
    int ranks;
    const char* name;
    coll_algorithm algo;
    std::size_t bytes;
    double seed_s;
    bool heavy;
  };
  const std::vector<workload> workloads = {
      {1536, "allreduce/rdoubling", coll_algorithm::recursive_doubling, 64,
       16.85e-3, false},
      {1536, "allreduce/rabenseifner", coll_algorithm::rabenseifner, 1 << 20,
       13.57e-3, false},
      {4096, "allreduce/rdoubling", coll_algorithm::recursive_doubling, 64,
       95.82e-3, true},
      {4096, "allreduce/rabenseifner", coll_algorithm::rabenseifner, 1 << 20,
       85.32e-3, true},
  };
  std::puts("== DES host time (build + simulate, uncontended) ==");
  table ht({"ranks", "program", "bytes", "host ms", "us/rank", "seed ms",
            "speedup"});
  for (const auto& w : workloads) {
    if (quick && w.heavy) continue;
    const torus_placement place = w.ranks == 1536
                                      ? fugaku_fig3_placement()
                                      : torus_placement({8, 8, 16}, 4);
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      stopwatch sw;
      const auto prog = make_allreduce_program(
          config.net, place.rank_count(), w.bytes / 4, 4, w.algo);
      (void)simulate(prog, config.net, place).max_clock();
      const double t = sw.seconds();
      best = rep == 0 ? t : std::min(best, t);
    }
    host.push_back({w.ranks, w.name, w.bytes, best, w.seed_s});
    ht.add_row({std::to_string(w.ranks), w.name, format_bytes(w.bytes),
                format_fixed(best * 1e3, 2),
                format_fixed(best * 1e6 / w.ranks, 2),
                format_fixed(w.seed_s * 1e3, 2),
                format_fixed(w.seed_s / best, 1)});
  }
  ht.print(std::cout);

  write_json(json, rows, gv, host);
  return 0;
}
