#pragma once

/// \file faultplane.hpp
/// Deterministic, seed-replayable fault injection for the mpisim
/// runtime and the discrete-event engine.
///
/// The paper's MPI measurements (Figs. 2-3) assume a perfect TofuD
/// fabric; a production message-passing runtime must survive dropped,
/// duplicated, reordered, delayed, and corrupted messages and stalled
/// or crashed ranks. The fault plane injects exactly those, the way
/// LogGP-family validation suites do gap-recovery injection - and it
/// is *deterministic*: every decision is a pure function of
/// (seed, src, dst, per-channel message index, attempt) via
/// core/rng.hpp's derive_stream, never of thread interleaving. The
/// threaded runtime and the DES therefore produce identical delivery
/// orders, identical retry counts, and identical virtual clocks under
/// the same seed - tests/mpisim_fault_test and the faulty half of
/// tests/mpisim_fuzz_test pin this.
///
/// Reliability protocol the runtime layers on top (runtime.cpp):
///  * every eager send is stamped with a per-(src,dst)-channel
///    sequence number and an FNV-1a checksum of the payload;
///  * lost or corrupted transmissions are retransmitted after an
///    exponential-backoff timeout (timeout_s * backoff^attempt), up to
///    max_retries; the sender's port is occupied for every attempt, so
///    retries inflate both latency and port pressure (the Fig. 2
///    inflation measured by bench/ablation_faults);
///  * the receive side discards checksum-mismatched copies, dedups
///    replayed sequence numbers (idempotent delivery), and matches the
///    lowest outstanding sequence number first so reordered queues
///    deliver in-order per (source, tag) stream;
///  * when retries are exhausted, or when a rank crashes by schedule,
///    both endpoints raise a typed comm_error instead of hanging -
///    crash notices propagate so every rank blocked on a dead peer
///    fails loudly too.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "mpisim/network.hpp"

namespace tfx::mpisim {

/// Per-channel fault probabilities, drawn independently per attempt.
struct fault_probs {
  double drop = 0;       ///< transmission lost on the wire
  double duplicate = 0;  ///< delivered copy followed by a replay
  double corrupt = 0;    ///< payload bit-flip (checksum catches it)
  double reorder = 0;    ///< delivered copy jumps the mailbox queue
  double delay = 0;      ///< extra wire latency on the delivered copy
  double delay_max_s = 2.0e-6;  ///< delay drawn uniform in [0, max)
};

/// Timeout-retry-backoff policy of the reliability layer.
struct retry_policy {
  double timeout_s = 3.0e-6;  ///< first retransmission timeout
  double backoff = 2.0;       ///< timeout multiplier per retry
  int max_retries = 25;       ///< retransmissions before comm_error
};

/// Stall rank `rank` for `seconds` of virtual time immediately before
/// its `send_index`-th send (0-based, counted over all destinations).
struct stall_event {
  int rank = 0;
  std::uint64_t send_index = 0;
  double seconds = 0;
};

/// Crash rank `rank` immediately before its `send_index`-th send: it
/// broadcasts a crash notice and raises comm_error.
struct crash_event {
  int rank = 0;
  std::uint64_t send_index = 0;
};

/// A complete, replayable fault schedule.
struct fault_config {
  std::uint64_t seed = 1;
  fault_probs probs;
  retry_policy retry;
  std::vector<stall_event> stalls;
  std::vector<crash_event> crashes;
};

/// Typed failure of the reliability layer; what collectives and the
/// distributed shallow-water halo exchange catch and surface.
class comm_error : public std::runtime_error {
 public:
  enum class reason {
    retries_exhausted,  ///< a send burned max_retries without an ack
    peer_crashed,       ///< the peer raised, crashed, or was poisoned
    unrecoverable,      ///< rollback recovery cannot restore the run
                        ///< (e.g. a rank and its buddy died together;
                        ///< see swm/resilience.hpp)
    transport_lost,     ///< the channel layer itself failed: refused
                        ///< connect, handshake timeout, peer process
                        ///< death, truncated frame (transport.hpp)
  };

  comm_error(reason why, int peer, const std::string& what)
      : std::runtime_error(what), why_(why), peer_(peer) {}

  [[nodiscard]] reason why() const { return why_; }
  [[nodiscard]] int peer() const { return peer_; }

 private:
  reason why_;
  int peer_;
};

/// Injection/retry counters; summed over ranks. Equal between the
/// threaded runtime and the DES under the same schedule.
struct fault_stats {
  std::uint64_t sends = 0;         ///< messages entering the fault plane
  std::uint64_t attempts = 0;      ///< transmissions incl. retries
  std::uint64_t retries = 0;       ///< attempts - first tries
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t delays = 0;
  std::uint64_t stalls = 0;
  std::uint64_t failed_sends = 0;  ///< retries exhausted (poisoned)

  bool operator==(const fault_stats&) const = default;
  fault_stats& operator+=(const fault_stats& o);
};

/// One accepted delivery, as the receiver saw it; the per-rank
/// sequence of these is the delivery order the engines must agree on.
struct delivery_record {
  int source = 0;
  int tag = 0;
  std::uint64_t seq = 0;

  bool operator==(const delivery_record&) const = default;
};

/// The deterministic transmission schedule of one message: when each
/// attempt departs, which attempts are lost, when the delivered copy
/// departs, and when the sender's port frees. Computed by
/// fault_plane::plan and consumed identically by both engines.
struct transmit_plan {
  /// One wire transmission of the message.
  struct attempt {
    double depart = 0;        ///< injection start of this attempt
    bool dropped = false;     ///< lost on the wire, nothing arrives
    bool corrupt = false;     ///< arrives bit-flipped (checksum fails)
    std::uint64_t flip = 0;   ///< which byte/bit the corruption flips
  };

  std::vector<attempt> attempts;  ///< at least one entry
  double good_depart = 0;  ///< depart of the delivered copy (delay incl.)
  double port_free = 0;    ///< sender port after all attempts (+dup)
  bool failed = false;     ///< retries exhausted, nothing delivered
  bool duplicated = false; ///< a replayed copy follows the delivery
  double dup_depart = 0;
  bool reordered = false;  ///< delivered copy jumps the mailbox queue

  [[nodiscard]] int retries() const {
    return static_cast<int>(attempts.size()) - 1;
  }
};

/// The seeded fault injector. Stateless after construction: every
/// query is a pure function of its arguments, so one instance can be
/// shared by all rank threads and by the DES.
class fault_plane {
 public:
  explicit fault_plane(fault_config cfg);

  [[nodiscard]] const fault_config& config() const { return cfg_; }

  /// True when any probability or schedule entry can fire. An inactive
  /// plane leaves the runtime on its vanilla path (bit- and
  /// allocation-identical; tests/mpisim_fault_test asserts both).
  [[nodiscard]] bool active() const { return active_; }

  /// Fault draw for one transmission attempt of the msg_index-th
  /// message on channel (src, dst). Deterministic.
  struct decision {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    bool reorder = false;
    double extra_delay_s = 0;
    std::uint64_t flip = 0;
  };
  [[nodiscard]] decision decide(int src, int dst, std::uint64_t msg_index,
                                int attempt) const;

  /// Total scheduled stall before rank's send_index-th send (0 if none).
  [[nodiscard]] double stall_seconds(int rank,
                                     std::uint64_t send_index) const;

  /// True when rank is scheduled to crash instead of performing its
  /// send_index-th send.
  [[nodiscard]] bool crashes_before(int rank,
                                    std::uint64_t send_index) const;

  /// The full transmission schedule of one message, advancing `stats`.
  /// `clock` is the sender's clock after o_send; `port_free` the
  /// sender's current injection-port horizon.
  [[nodiscard]] transmit_plan plan(const tofud_params& net,
                                   const torus_placement& place, int src,
                                   int dst, std::size_t bytes,
                                   std::uint64_t msg_index, double clock,
                                   double port_free,
                                   fault_stats& stats) const;

  /// FNV-1a 64 over the payload; the wire checksum.
  static std::uint64_t checksum(std::span<const std::byte> payload);

 private:
  fault_config cfg_;
  bool active_ = false;
};

}  // namespace tfx::mpisim
