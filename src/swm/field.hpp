#pragma once

/// \file field.hpp
/// 2-D gridded fields for the shallow-water model.
///
/// Row-major storage, (i, j) = (x, y) indices, periodic in both
/// directions (the doubly-periodic beta-plane configuration; DESIGN.md
/// documents this simplification of ShallowWaters.jl's closed basin).
/// The element type is the template parameter the whole
/// type-flexibility story rests on: the same model instantiates with
/// double, float, float16 or sherlog<float>.

#include <cstddef>
#include <span>
#include <vector>

#include "core/contracts.hpp"

namespace tfx::swm {

template <typename T>
class field2d {
 public:
  field2d() = default;
  field2d(int nx, int ny)
      : nx_(nx), ny_(ny),
        data_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny)) {
    TFX_EXPECTS(nx > 0 && ny > 0);
  }

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Unchecked interior access (callers use wrapped indices).
  T& operator()(int i, int j) {
    return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(i)];
  }
  const T& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(i)];
  }

  /// Periodic neighbour indices.
  [[nodiscard]] int ip(int i) const { return i + 1 == nx_ ? 0 : i + 1; }
  [[nodiscard]] int im(int i) const { return i == 0 ? nx_ - 1 : i - 1; }
  [[nodiscard]] int jp(int j) const { return j + 1 == ny_ ? 0 : j + 1; }
  [[nodiscard]] int jm(int j) const { return j == 0 ? ny_ - 1 : j - 1; }

  void fill(T value) {
    for (auto& v : data_) v = value;
  }

  [[nodiscard]] std::span<T> flat() { return data_; }
  [[nodiscard]] std::span<const T> flat() const { return data_; }

 private:
  int nx_ = 0, ny_ = 0;
  std::vector<T> data_;
};

/// Element-wise precision conversion into a preallocated field (via
/// double, which is exact for every format in the library). The
/// allocation-free building block the measurement path uses.
template <typename To, typename From>
void convert_field_into(field2d<To>& dst, const field2d<From>& src) {
  TFX_EXPECTS(dst.size() == src.size());
  auto in = src.flat();
  auto out = dst.flat();
  for (std::size_t k = 0; k < in.size(); ++k) {
    out[k] = To(static_cast<double>(in[k]));
  }
}

/// Element-wise precision conversion between field types.
template <typename To, typename From>
field2d<To> convert_field(const field2d<From>& src) {
  field2d<To> dst(src.nx(), src.ny());
  convert_field_into(dst, src);
  return dst;
}

/// The model's prognostic variables on the Arakawa C-grid. With
/// doubly-periodic boundaries all three arrays share the cell count;
/// u lives on x-faces, v on y-faces, eta at centres.
template <typename T>
struct state {
  field2d<T> u, v, eta;

  state() = default;
  state(int nx, int ny) : u(nx, ny), v(nx, ny), eta(nx, ny) {}

  [[nodiscard]] int nx() const { return eta.nx(); }
  [[nodiscard]] int ny() const { return eta.ny(); }

  void fill(T value) {
    u.fill(value);
    v.fill(value);
    eta.fill(value);
  }
};

template <typename To, typename From>
void convert_state_into(state<To>& dst, const state<From>& src) {
  convert_field_into(dst.u, src.u);
  convert_field_into(dst.v, src.v);
  convert_field_into(dst.eta, src.eta);
}

template <typename To, typename From>
state<To> convert_state(const state<From>& src) {
  state<To> dst;
  dst.u = convert_field<To>(src.u);
  dst.v = convert_field<To>(src.v);
  dst.eta = convert_field<To>(src.eta);
  return dst;
}

}  // namespace tfx::swm
