// Checkpoint/restart and the spectral diagnostic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "fp/float16.hpp"
#include "swm/checkpoint.hpp"
#include "swm/diagnostics.hpp"
#include "swm/model.hpp"

using namespace tfx::swm;
using tfx::fp::float16;

namespace {

swm_params small_params() {
  swm_params p;
  p.nx = 32;
  p.ny = 16;
  return p;
}

const char* tmp_path() { return "/tmp/tfx_checkpoint_test.bin"; }

}  // namespace

TEST(Checkpoint, RoundTripFloat64) {
  const swm_params p = small_params();
  model<double> m(p);
  m.seed_random_eddies(5, 0.5);
  m.run(30);

  checkpoint_info info{p.nx, p.ny,
                       static_cast<std::uint64_t>(m.steps_taken()), 1.0};
  ASSERT_TRUE(save_checkpoint(m.prognostic(), info, tmp_path()));

  const auto loaded = load_checkpoint<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->second.nx, p.nx);
  EXPECT_EQ(loaded->second.steps_taken, 30u);
  for (std::size_t k = 0; k < loaded->first.eta.size(); ++k) {
    ASSERT_EQ(loaded->first.eta.flat()[k], m.prognostic().eta.flat()[k]);
    ASSERT_EQ(loaded->first.u.flat()[k], m.prognostic().u.flat()[k]);
  }
}

TEST(Checkpoint, RestartContinuesTheTrajectoryExactly) {
  // run 40 straight == run 20, checkpoint, restore into a fresh model,
  // run 20 more (standard scheme: no compensation state to lose).
  const swm_params p = small_params();
  model<double> straight(p);
  straight.seed_random_eddies(6, 0.5);
  straight.run(40);

  model<double> first(p);
  first.seed_random_eddies(6, 0.5);
  first.run(20);
  checkpoint_info info{p.nx, p.ny, 20, 1.0};
  ASSERT_TRUE(save_checkpoint(first.prognostic(), info, tmp_path()));

  const auto loaded = load_checkpoint<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  model<double> resumed(p);
  resumed.restore(loaded->first, static_cast<int>(loaded->second.steps_taken));
  resumed.run(20);
  EXPECT_EQ(resumed.steps_taken(), 40);

  for (std::size_t k = 0; k < straight.prognostic().eta.size(); ++k) {
    ASSERT_EQ(resumed.prognostic().eta.flat()[k],
              straight.prognostic().eta.flat()[k]);
  }
}

TEST(Checkpoint, Float16BitsSurviveExactly) {
  swm_params p = small_params();
  p.log2_scale = 12;
  model<float16> m(p, integration_scheme::compensated);
  m.seed_random_eddies(7, 0.5);
  m.run(10);
  checkpoint_info info{p.nx, p.ny, 10, std::ldexp(1.0, 12)};
  ASSERT_TRUE(save_checkpoint(m.prognostic(), info, tmp_path()));
  const auto loaded = load_checkpoint<float16>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->second.scale, 4096.0);
  for (std::size_t k = 0; k < loaded->first.u.size(); ++k) {
    ASSERT_EQ(loaded->first.u.flat()[k].bits(),
              m.prognostic().u.flat()[k].bits());
  }
}

TEST(Checkpoint, ElementSizeMismatchRejected) {
  const swm_params p = small_params();
  model<double> m(p);
  m.seed_random_eddies(8, 0.5);
  checkpoint_info info{p.nx, p.ny, 0, 1.0};
  ASSERT_TRUE(save_checkpoint(m.prognostic(), info, tmp_path()));
  EXPECT_FALSE(load_checkpoint<float>(tmp_path()).has_value());
  EXPECT_FALSE(load_checkpoint<float16>(tmp_path()).has_value());
}

TEST(Checkpoint, MissingOrCorruptFileRejected) {
  EXPECT_FALSE(load_checkpoint<double>("/tmp/tfx_no_such_file").has_value());
  // Corrupt the magic.
  FILE* f = std::fopen(tmp_path(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTACKPT", f);
  std::fclose(f);
  EXPECT_FALSE(load_checkpoint<double>(tmp_path()).has_value());
}

TEST(Checkpoint, CrossPrecisionHandoff) {
  // The deployment pattern: spin up at Float64, hand off to Float16.
  swm_params p = small_params();
  model<double> spinup(p);
  spinup.seed_random_eddies(9, 0.5);
  spinup.run(25);
  checkpoint_info info{p.nx, p.ny, 25, 1.0};
  ASSERT_TRUE(save_checkpoint(spinup.prognostic(), info, tmp_path()));

  const auto loaded = load_checkpoint<double>(tmp_path());
  ASSERT_TRUE(loaded.has_value());
  swm_params p16 = p;
  p16.log2_scale = 12;
  // Scale while converting: the Float16 model stores s * state.
  state<double> scaled = loaded->first;
  const double s = std::ldexp(1.0, p16.log2_scale);
  for (auto* f : {&scaled.u, &scaled.v, &scaled.eta}) {
    for (auto& v : f->flat()) v *= s;
  }
  model<float16> prod(p16, integration_scheme::compensated);
  prod.restore(convert_state<float16>(scaled),
               static_cast<int>(loaded->second.steps_taken));
  prod.run(15);
  EXPECT_TRUE(prod.diag().finite);
  EXPECT_EQ(prod.steps_taken(), 40);
}

TEST(Spectrum, PureModeHasSinglePeak) {
  field2d<double> f(32, 4);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 32; ++i) {
      f(i, j) = std::sin(2.0 * M_PI * 5 * i / 32.0);
    }
  }
  const auto power = zonal_power_spectrum(f);
  ASSERT_EQ(power.size(), 17u);
  // All the energy at k=5.
  for (std::size_t k = 0; k < power.size(); ++k) {
    if (k == 5) {
      EXPECT_GT(power[k], 1.0);
    } else {
      EXPECT_NEAR(power[k], 0.0, 1e-9);
    }
  }
}

TEST(Spectrum, ParsevalHolds) {
  // Sum of |f|^2 equals (roughly, with the one-sided folding) the
  // spectral sum: check for a deterministic random field via the exact
  // two-sided relation sum|F_k|^2 = n * sum|f_i|^2.
  field2d<double> f(16, 2);
  tfx::xoshiro256 rng(4);
  double ss = 0;
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 16; ++i) {
      f(i, j) = rng.uniform(-1.0, 1.0);
      ss += f(i, j) * f(i, j);
    }
  }
  const auto power = zonal_power_spectrum(f);
  // Reconstruct the two-sided total: k=0 and k=n/2 appear once, the
  // rest twice.
  double total = power[0] + power[8];
  for (std::size_t k = 1; k < 8; ++k) total += 2.0 * power[k];
  EXPECT_NEAR(total, ss, 1e-9 * (ss + 1.0));
}

TEST(Spectrum, Float16PreservesTheEnergyCascade) {
  // Beyond point-wise RMSE: the spectral shape (where the turbulence
  // keeps its energy) must survive the Float16 run - the spectral
  // version of Fig. 4.
  swm_params p;
  p.nx = 48;
  p.ny = 24;
  model<double> ref(p);
  ref.seed_random_eddies(42, 0.5);
  ref.run(100);

  swm_params p16 = p;
  p16.log2_scale = 13;
  tfx::fp::ftz_guard ftz(tfx::fp::ftz_mode::flush);
  model<float16> half(p16, integration_scheme::compensated);
  half.seed_random_eddies(42, 0.5);
  half.run(100);

  const auto sr = zonal_power_spectrum(
      relative_vorticity(ref.unscaled(), p));
  const auto sh = zonal_power_spectrum(
      relative_vorticity(half.unscaled(), p16));
  ASSERT_EQ(sr.size(), sh.size());
  for (std::size_t k = 1; k < sr.size(); ++k) {
    if (sr[k] > 1e-12) {
      EXPECT_NEAR(sh[k] / sr[k], 1.0, 0.05) << "wavenumber " << k;
    }
  }
}
