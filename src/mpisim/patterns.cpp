#include "mpisim/patterns.hpp"

#include "core/contracts.hpp"

namespace tfx::mpisim {

namespace {

int largest_pow2_below(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

}  // namespace

sim_program make_barrier_program(int p) {
  sim_program prog(p);
  if (p == 1) return prog;
  for (int r = 0; r < p; ++r) {
    for (int k = 1; k < p; k <<= 1) {
      const int dst = (r + k) % p;
      const int src = (r - k % p + p) % p;
      prog.rank(r).push_back(sim_op::send_to(dst, 1));
      prog.rank(r).push_back(sim_op::recv_from(src, 1));
    }
  }
  return prog;
}

sim_program make_bcast_program(int p, std::size_t count,
                               std::size_t elem_bytes, int root) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  if (p == 1) return prog;
  for (int r = 0; r < p; ++r) {
    const int vrank = (r - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int src = ((vrank - mask) + root) % p;
        prog.rank(r).push_back(sim_op::recv_from(src, bytes));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < p) {
        const int dst = ((vrank + mask) + root) % p;
        prog.rank(r).push_back(sim_op::send_to(dst, bytes));
      }
      mask >>= 1;
    }
  }
  return prog;
}

sim_program make_reduce_program(const tofud_params& net, int p,
                                std::size_t count, std::size_t elem_bytes,
                                int root) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  const double combine_s = reduce_compute_seconds(net, bytes);
  for (int r = 0; r < p; ++r) {
    const int vrank = (r - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int dst = ((vrank - mask) + root) % p;
        prog.rank(r).push_back(sim_op::send_to(dst, bytes));
        break;
      }
      if (vrank + mask < p) {
        const int src = ((vrank + mask) + root) % p;
        prog.rank(r).push_back(sim_op::recv_from(src, bytes));
        prog.rank(r).push_back(sim_op::compute_for(combine_s));
      }
      mask <<= 1;
    }
  }
  return prog;
}

sim_program make_allreduce_program(const tofud_params& net, int p,
                                   std::size_t count, std::size_t elem_bytes,
                                   coll_algorithm algo) {
  if (algo == coll_algorithm::automatic) {
    algo = count * elem_bytes <= allreduce_ring_threshold
               ? coll_algorithm::recursive_doubling
               : coll_algorithm::rabenseifner;
  }
  TFX_EXPECTS(algo == coll_algorithm::recursive_doubling ||
              algo == coll_algorithm::ring ||
              algo == coll_algorithm::rabenseifner);

  sim_program prog(p);
  if (p == 1) return prog;
  const std::size_t bytes = count * elem_bytes;
  const double combine_s = reduce_compute_seconds(net, bytes);

  if (algo == coll_algorithm::recursive_doubling) {
    const int pof2 = largest_pow2_below(p);
    const int rem = p - pof2;
    auto real_rank = [rem](int nr) { return nr < rem ? nr * 2 : nr + rem; };
    for (int r = 0; r < p; ++r) {
      auto& ops = prog.rank(r);
      int newrank;
      if (r < 2 * rem) {
        if (r % 2 != 0) {
          ops.push_back(sim_op::send_to(r - 1, bytes));
          newrank = -1;
        } else {
          ops.push_back(sim_op::recv_from(r + 1, bytes));
          ops.push_back(sim_op::compute_for(combine_s));
          newrank = r / 2;
        }
      } else {
        newrank = r - rem;
      }
      if (newrank != -1) {
        for (int mask = 1; mask < pof2; mask <<= 1) {
          const int partner = real_rank(newrank ^ mask);
          ops.push_back(sim_op::send_to(partner, bytes));
          ops.push_back(sim_op::recv_from(partner, bytes));
          ops.push_back(sim_op::compute_for(combine_s));
        }
      }
      if (r < 2 * rem) {
        if (r % 2 == 0) {
          ops.push_back(sim_op::send_to(r + 1, bytes));
        } else {
          ops.push_back(sim_op::recv_from(r - 1, bytes));
        }
      }
    }
    return prog;
  }

  if (algo == coll_algorithm::rabenseifner) {
    // Mirrors detail::allreduce_rabenseifner operation for operation.
    const int pof2 = largest_pow2_below(p);
    const int rem = p - pof2;
    auto real_rank = [rem](int nr) { return nr < rem ? nr * 2 : nr + rem; };
    auto bound = [count, pof2](int b) {
      return count * static_cast<std::size_t>(b) /
             static_cast<std::size_t>(pof2);
    };
    for (int r = 0; r < p; ++r) {
      auto& ops = prog.rank(r);
      int newrank;
      if (r < 2 * rem) {
        if (r % 2 != 0) {
          ops.push_back(sim_op::send_to(r - 1, bytes));
          newrank = -1;
        } else {
          ops.push_back(sim_op::recv_from(r + 1, bytes));
          ops.push_back(sim_op::compute_for(combine_s));
          newrank = r / 2;
        }
      } else {
        newrank = r - rem;
      }
      int lo = 0, hi = pof2;
      if (newrank != -1) {
        for (int mask = pof2 >> 1; mask > 0; mask >>= 1) {
          const int partner = real_rank(newrank ^ mask);
          const int mid = (lo + hi) / 2;
          const std::size_t lo_b = bound(lo), mid_b = bound(mid),
                            hi_b = bound(hi);
          if (newrank < (newrank ^ mask)) {
            ops.push_back(sim_op::send_to(partner,
                                          (hi_b - mid_b) * elem_bytes));
            ops.push_back(sim_op::recv_from(partner,
                                            (mid_b - lo_b) * elem_bytes));
            ops.push_back(sim_op::compute_for(reduce_compute_seconds(
                net, (mid_b - lo_b) * elem_bytes)));
            hi = mid;
          } else {
            ops.push_back(sim_op::send_to(partner,
                                          (mid_b - lo_b) * elem_bytes));
            ops.push_back(sim_op::recv_from(partner,
                                            (hi_b - mid_b) * elem_bytes));
            ops.push_back(sim_op::compute_for(reduce_compute_seconds(
                net, (hi_b - mid_b) * elem_bytes)));
            lo = mid;
          }
        }
        for (int mask = 1; mask < pof2; mask <<= 1) {
          const int partner = real_rank(newrank ^ mask);
          const int span_blocks = hi - lo;
          const std::size_t lo_b = bound(lo), hi_b = bound(hi);
          ops.push_back(sim_op::send_to(partner, (hi_b - lo_b) * elem_bytes));
          if (newrank < (newrank ^ mask)) {
            const std::size_t sib_b = bound(hi + span_blocks);
            ops.push_back(sim_op::recv_from(partner,
                                            (sib_b - hi_b) * elem_bytes));
            hi += span_blocks;
          } else {
            const std::size_t sib_b = bound(lo - span_blocks);
            ops.push_back(sim_op::recv_from(partner,
                                            (lo_b - sib_b) * elem_bytes));
            lo -= span_blocks;
          }
        }
      }
      if (r < 2 * rem) {
        if (r % 2 == 0) {
          ops.push_back(sim_op::send_to(r + 1, bytes));
        } else {
          ops.push_back(sim_op::recv_from(r - 1, bytes));
        }
      }
    }
    return prog;
  }

  // Ring: reduce-scatter then allgather with the same segment sizes as
  // the template (n*(k)/p boundaries over *elements*, then scaled).
  auto seg_elems = [&](int s) {
    const int seg = ((s % p) + p) % p;
    const std::size_t b =
        count * static_cast<std::size_t>(seg) / static_cast<std::size_t>(p);
    const std::size_t e = count * (static_cast<std::size_t>(seg) + 1) /
                          static_cast<std::size_t>(p);
    return e - b;
  };
  for (int r = 0; r < p; ++r) {
    auto& ops = prog.rank(r);
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const std::size_t out_b = seg_elems(r - step) * elem_bytes;
      const std::size_t in_b = seg_elems(r - step - 1) * elem_bytes;
      ops.push_back(sim_op::send_to(right, out_b));
      ops.push_back(sim_op::recv_from(left, in_b));
      ops.push_back(sim_op::compute_for(
          reduce_compute_seconds(net, in_b)));
    }
    for (int step = 0; step < p - 1; ++step) {
      const std::size_t out_b = seg_elems(r + 1 - step) * elem_bytes;
      const std::size_t in_b = seg_elems(r - step) * elem_bytes;
      ops.push_back(sim_op::send_to(right, out_b));
      ops.push_back(sim_op::recv_from(left, in_b));
    }
  }
  return prog;
}

sim_program make_allgather_program(int p, std::size_t count,
                                   std::size_t elem_bytes) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  if (p == 1) return prog;
  for (int r = 0; r < p; ++r) {
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      prog.rank(r).push_back(sim_op::send_to(right, bytes));
      prog.rank(r).push_back(sim_op::recv_from(left, bytes));
    }
  }
  return prog;
}

sim_program make_gatherv_program(int p, std::size_t count,
                                 std::size_t elem_bytes, int root) {
  sim_program prog(p);
  const std::size_t bytes = count * elem_bytes;
  for (int r = 0; r < p; ++r) {
    if (r != root) {
      prog.rank(r).push_back(sim_op::send_to(root, bytes));
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    prog.rank(root).push_back(sim_op::recv_from(src, bytes));
  }
  return prog;
}

}  // namespace tfx::mpisim
