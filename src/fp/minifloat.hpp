#pragma once

/// \file minifloat.hpp
/// Arbitrary small IEEE-style binary floating-point formats.
///
/// The paper's § II argument is that a type-flexible code base admits
/// *any* number format that implements the arithmetic interface. This
/// header makes the point general: `minifloat<E, M>` is an IEEE-754
/// style format with E exponent bits and M mantissa bits (sign +
/// gradual underflow + infinities + NaN), with the same
/// extend-compute-truncate operational semantics as float16. The 8-bit
/// deep-learning formats fall out as aliases:
///
///   using float8_e5m2 = minifloat<5, 2>;   // "bfloat16 of fp16"
///   using float8_e4m3 = minifloat<4, 3>;   // more precision, less range
///
/// and minifloat<5, 10> is bit-compatible with fp::float16 - the test
/// suite uses that to cross-validate both conversion pipelines over
/// every pattern.
///
/// Conversions are correctly rounded (RN-even) from double, done with
/// integer arithmetic on the scaled significand.

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace tfx::fp {

template <int ExpBits, int ManBits>
class minifloat {
  static_assert(ExpBits >= 2 && ExpBits <= 8);
  static_assert(ManBits >= 1 && ManBits <= 23);
  static_assert(ExpBits + ManBits <= 15, "must fit 16 bits with sign");

 public:
  static constexpr int exponent_bits = ExpBits;
  static constexpr int mantissa_bits = ManBits;
  static constexpr int bias = (1 << (ExpBits - 1)) - 1;
  static constexpr int total_bits = 1 + ExpBits + ManBits;

  constexpr minifloat() = default;

  explicit minifloat(double d) : bits_(from_double(d)) {}
  explicit minifloat(float f) : bits_(from_double(static_cast<double>(f))) {}
  template <typename Int, typename = std::enable_if_t<std::is_integral_v<Int>>>
  explicit minifloat(Int i) : bits_(from_double(static_cast<double>(i))) {}

  static constexpr minifloat from_bits(std::uint16_t bits) {
    minifloat m;
    m.bits_ = bits & mask_all;
    return m;
  }
  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  explicit operator double() const { return to_double(bits_); }
  explicit operator float() const {
    return static_cast<float>(to_double(bits_));
  }

  [[nodiscard]] constexpr bool isnan() const {
    return ((bits_ & mask_exp) == mask_exp) && (bits_ & mask_man) != 0;
  }
  [[nodiscard]] constexpr bool isinf() const {
    return (bits_ & (mask_exp | mask_man)) == mask_exp;
  }
  [[nodiscard]] constexpr bool isfinite() const {
    return (bits_ & mask_exp) != mask_exp;
  }
  [[nodiscard]] constexpr bool iszero() const {
    return (bits_ & (mask_exp | mask_man)) == 0;
  }
  [[nodiscard]] constexpr bool is_subnormal() const {
    return (bits_ & mask_exp) == 0 && (bits_ & mask_man) != 0;
  }
  [[nodiscard]] constexpr bool signbit() const {
    return (bits_ & mask_sign) != 0;
  }

  friend minifloat operator+(minifloat a, minifloat b) {
    return minifloat(static_cast<double>(a) + static_cast<double>(b));
  }
  friend minifloat operator-(minifloat a, minifloat b) {
    return minifloat(static_cast<double>(a) - static_cast<double>(b));
  }
  friend minifloat operator*(minifloat a, minifloat b) {
    return minifloat(static_cast<double>(a) * static_cast<double>(b));
  }
  friend minifloat operator/(minifloat a, minifloat b) {
    return minifloat(static_cast<double>(a) / static_cast<double>(b));
  }
  friend constexpr minifloat operator-(minifloat a) {
    return from_bits(static_cast<std::uint16_t>(a.bits_ ^ mask_sign));
  }

  minifloat& operator+=(minifloat o) { return *this = *this + o; }
  minifloat& operator-=(minifloat o) { return *this = *this - o; }
  minifloat& operator*=(minifloat o) { return *this = *this * o; }
  minifloat& operator/=(minifloat o) { return *this = *this / o; }

  friend bool operator==(minifloat a, minifloat b) {
    return static_cast<double>(a) == static_cast<double>(b);
  }
  friend bool operator!=(minifloat a, minifloat b) { return !(a == b); }
  friend bool operator<(minifloat a, minifloat b) {
    return static_cast<double>(a) < static_cast<double>(b);
  }
  friend bool operator>(minifloat a, minifloat b) { return b < a; }
  friend bool operator<=(minifloat a, minifloat b) {
    return static_cast<double>(a) <= static_cast<double>(b);
  }
  friend bool operator>=(minifloat a, minifloat b) { return b <= a; }

 private:
  static constexpr std::uint16_t mask_man =
      static_cast<std::uint16_t>((1u << ManBits) - 1);
  static constexpr std::uint16_t mask_exp =
      static_cast<std::uint16_t>(((1u << ExpBits) - 1) << ManBits);
  static constexpr std::uint16_t mask_sign =
      static_cast<std::uint16_t>(1u << (ExpBits + ManBits));
  static constexpr std::uint16_t mask_all =
      static_cast<std::uint16_t>((1u << total_bits) - 1);
  static constexpr int emax = (1 << ExpBits) - 2 - bias;  // largest finite exp
  static constexpr int emin = 1 - bias;                   // smallest normal exp

  /// Correctly rounded (RN-even) conversion from double, via integer
  /// rounding of the significand scaled to the target ulp.
  static std::uint16_t from_double(double d) {
    if (std::isnan(d)) {
      return static_cast<std::uint16_t>(
          mask_exp | (std::uint16_t{1} << (ManBits - 1)) |
          (std::signbit(d) ? mask_sign : 0));
    }
    const std::uint16_t sign = std::signbit(d) ? mask_sign : 0;
    double a = std::abs(d);
    if (std::isinf(d)) return static_cast<std::uint16_t>(sign | mask_exp);
    if (a == 0.0) return sign;

    int e = 0;
    (void)std::frexp(a, &e);  // a = f * 2^e, f in [0.5, 1)
    const int exp = e - 1;    // a in [2^exp, 2^{exp+1})

    // Determine the quantum (ulp) at this magnitude: for normals the
    // ulp is 2^(exp - ManBits); below the normal range it is fixed at
    // 2^(emin - ManBits).
    const int ulp_exp =
        (exp < emin ? emin : exp) - ManBits;
    // Round a / 2^ulp_exp to an integer, ties to even, exactly:
    const double scaled = std::ldexp(a, -ulp_exp);
    double rounded = std::nearbyint(scaled);  // default mode: RN-even
    if (rounded != scaled) {
      // nearbyint honours the current rounding mode, which is RN-even
      // by default; nothing more to do. (Kept explicit for readers.)
    }
    // Reassemble: value = rounded * 2^ulp_exp. Renormalize if the
    // rounding carried into the next binade.
    std::uint64_t q = static_cast<std::uint64_t>(rounded);
    int qexp = ulp_exp;
    while (q >= (std::uint64_t{2} << ManBits)) {
      // carry: q has ManBits+2 bits; halving is exact (q is even after
      // a carry out of an all-ones mantissa).
      q >>= 1;
      ++qexp;
    }
    if (q == 0) return sign;  // underflow to zero

    // Now q in [1, 2^{ManBits+1}): subnormal if q < 2^ManBits.
    if (q < (std::uint64_t{1} << ManBits)) {
      // Subnormal: stored exponent 0, mantissa = q (qexp == emin-ManBits).
      return static_cast<std::uint16_t>(sign | static_cast<std::uint16_t>(q));
    }
    const int value_exp = qexp + ManBits;  // exponent of the leading bit
    if (value_exp > emax) {
      return static_cast<std::uint16_t>(sign | mask_exp);  // overflow -> inf
    }
    const auto stored_exp =
        static_cast<std::uint16_t>((value_exp + bias) << ManBits);
    const auto man = static_cast<std::uint16_t>(
        q & ((std::uint64_t{1} << ManBits) - 1));
    return static_cast<std::uint16_t>(sign | stored_exp | man);
  }

  static double to_double(std::uint16_t bits) {
    const bool neg = (bits & mask_sign) != 0;
    const int stored_exp = (bits & mask_exp) >> ManBits;
    const int man = bits & mask_man;
    double v;
    if (stored_exp == (1 << ExpBits) - 1) {
      v = man != 0 ? std::numeric_limits<double>::quiet_NaN()
                   : std::numeric_limits<double>::infinity();
    } else if (stored_exp == 0) {
      v = std::ldexp(man, emin - ManBits);
    } else {
      v = std::ldexp((1 << ManBits) + man, stored_exp - bias - ManBits);
    }
    return neg ? -v : v;
  }

  std::uint16_t bits_ = 0;
};

/// The OCP / deep-learning 8-bit formats.
using float8_e5m2 = minifloat<5, 2>;
using float8_e4m3 = minifloat<4, 3>;

/// minifloat<5, 10> is the same format as fp::float16; the tests pin
/// the two conversion pipelines against each other exhaustively.
using minifloat16 = minifloat<5, 10>;

template <int E, int M>
minifloat<E, M> abs(minifloat<E, M> x) {
  return x.signbit() ? -x : x;
}
template <int E, int M>
minifloat<E, M> muladd(minifloat<E, M> a, minifloat<E, M> b,
                       minifloat<E, M> c) {
  return a * b + c;
}
template <int E, int M>
bool isnan(minifloat<E, M> x) {
  return x.isnan();
}

}  // namespace tfx::fp
