// Compensated summation: the error-bound properties the shallow-water
// model's compensated time integration relies on (paper § III-B).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "fp/compensated.hpp"
#include "fp/float16.hpp"

namespace fp = tfx::fp;
using tfx::fp::float16;

TEST(Kahan, RecoversSmallTermsFloat) {
  // 1 + 1e-8 * 10^6: naive float loses everything, Kahan keeps it.
  std::vector<float> xs(1000001, 1e-8f);
  xs[0] = 1.0f;
  const float naive = fp::naive_sum<float>(xs);
  const float kahan = fp::compensated_sum<float>(xs);
  EXPECT_EQ(naive, 1.0f);  // every 1e-8 is absorbed
  EXPECT_NEAR(kahan, 1.01f, 1e-6f);
}

TEST(Kahan, Float16TimeIntegrationAnalogue) {
  // The model's situation: a state ~1 receiving tiny per-step
  // increments. 2048 increments of 2^-13 should advance a float16
  // accumulator by 0.25; plain addition strands at 1 + epsilon region.
  const float16 inc = float16(std::ldexp(1.0, -13));
  float16 plain(1.0);
  fp::kahan_accumulator<float16> comp(float16(1.0));
  for (int i = 0; i < 2048; ++i) {
    plain += inc;
    comp.add(inc);
  }
  const double exact = 1.0 + 2048 * std::ldexp(1.0, -13);  // 1.25
  EXPECT_GT(std::abs(static_cast<double>(plain) - exact), 0.2);
  EXPECT_NEAR(static_cast<double>(comp.value()), exact, 2e-3);
}

TEST(Neumaier, HandlesSwampedRunningSum) {
  // [1, 1e30, 1, -1e30] : Kahan returns 0, Neumaier returns 2.
  const std::vector<double> xs{1.0, 1e30, 1.0, -1e30};
  EXPECT_EQ(fp::compensated_sum<double>(xs), 0.0);
  EXPECT_EQ(fp::neumaier_sum<double>(xs), 2.0);
}

TEST(Compensated, MatchesDoubleReferenceOnRandomData) {
  // Kahan's bound: |err| <= 2 eps sum|x_i| + O(n eps^2); the naive
  // left-to-right bound grows with n. Check the hard bound per trial
  // and the aggregate advantage over many trials.
  tfx::xoshiro256 rng(99);
  double kahan_total = 0, naive_total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> xs(20000);
    double exact = 0, sum_abs = 0;
    for (auto& x : xs) {
      x = static_cast<float>(rng.uniform(-1.0, 1.0));
      exact += x;
      sum_abs += std::abs(static_cast<double>(x));
    }
    constexpr double eps = 1.2e-7;  // float machine epsilon / 2, rounded up
    const double bound = 2.0 * eps * sum_abs;
    const double naive_err = std::abs(fp::naive_sum<float>(xs) - exact);
    const double kahan_err =
        std::abs(fp::compensated_sum<float>(xs) - exact);
    const double neum_err = std::abs(fp::neumaier_sum<float>(xs) - exact);
    EXPECT_LE(kahan_err, bound);
    EXPECT_LE(neum_err, bound);
    kahan_total += kahan_err;
    naive_total += naive_err;
  }
  EXPECT_LT(kahan_total, naive_total);
}

TEST(Compensated, DotAgainstDoubleReference) {
  tfx::xoshiro256 rng(3);
  std::vector<float> xs(5000), ys(5000);
  double exact = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    ys[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    exact += static_cast<double>(xs[i]) * static_cast<double>(ys[i]);
  }
  EXPECT_NEAR(fp::compensated_dot<float>(xs, ys), exact,
              1e-4 * std::abs(exact) + 1e-5);
}

TEST(Compensated, AccumulatorResetAndCompensationReadout) {
  fp::kahan_accumulator<double> acc(5.0);
  acc.add(1.0);
  EXPECT_EQ(acc.value(), 6.0);
  acc.reset();
  EXPECT_EQ(acc.value(), 0.0);
  EXPECT_EQ(acc.compensation(), 0.0);
  fp::neumaier_accumulator<double> n;
  n.add(2.0);
  EXPECT_EQ(n.value(), 2.0);
  n.reset(1.0);
  EXPECT_EQ(n.value(), 1.0);
}

// Property sweep: for series sizes across orders of magnitude, the
// Kahan float32 sum of uniform(0,1) terms stays within a tiny relative
// error of the double reference while the naive error grows.
class CompensatedGrowth : public ::testing::TestWithParam<int> {};

TEST_P(CompensatedGrowth, KahanErrorIndependentOfLength) {
  const int n = GetParam();
  tfx::xoshiro256 rng(static_cast<std::uint64_t>(n));
  std::vector<float> xs(static_cast<std::size_t>(n));
  double exact = 0;
  for (auto& x : xs) {
    x = static_cast<float>(rng.uniform());
    exact += x;
  }
  const double kahan_rel =
      std::abs(fp::compensated_sum<float>(xs) - exact) / exact;
  EXPECT_LT(kahan_rel, 5e-7) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, CompensatedGrowth,
                         ::testing::Values(10, 100, 1000, 10000, 100000,
                                           1000000));
