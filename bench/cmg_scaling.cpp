// Multi-core CMG scaling: STREAM triad and axpy across 1..12 cores of
// one A64FX CMG (modeled), next to the host thread-pool wall-clock of
// the real parallel kernels.
//
// The modeled curve shows the A64FX signature the co-design papers
// report: near-linear compute scaling but memory bandwidth saturating
// at the CMG aggregate (~230 GB/s) around 4-6 cores - the reason the
// Fig. 5 performance model charges a 1/12 L2 share per core.

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "arch/roofline.hpp"
#include "core/table.hpp"
#include "core/threadpool.hpp"
#include "core/timer.hpp"
#include "core/units.hpp"
#include "kernels/parallel.hpp"
#include "kernels/stream.hpp"

using namespace tfx;
using namespace tfx::kernels;

namespace {

double host_triad_gbs(int threads, std::size_t n) {
  thread_pool pool(threads);
  std::vector<double> a(n), b(n, 1.0), c(n, 2.0);
  const auto t = measure(
      [&] {
        triad_parallel(pool, 0.5, std::span<const double>(b),
                       std::span<const double>(c), std::span<double>(a));
      },
      5, 5e-3);
  return 3.0 * static_cast<double>(n) * 8.0 / t.min() / 1e9;
}

}  // namespace

int main() {
  std::puts("CMG core scaling: modeled A64FX STREAM triad vs core count.\n");

  const std::size_t n = 1 << 24;  // 128-MiB arrays: HBM regime
  table t({"cores", "triad GB/s (model)", "scaling", "axpy GFLOPS (model)"});
  double base = 0;
  for (const int cores : {1, 2, 4, 6, 8, 12}) {
    const auto machine = arch::cmg_view(arch::fugaku_node, cores);
    const double gbs = modeled_stream_gbs(machine, stream_kernel::triad,
                                          stream_cxx, n, 8);
    if (cores == 1) base = gbs;
    arch::kernel_profile axpy;  // default = axpy shape
    const auto m = arch::predict(machine, axpy, n, 8, 2 * n * 8);
    t.add_row({std::to_string(cores), format_fixed(gbs, 1),
               format_fixed(gbs / base, 2), format_fixed(m.gflops, 1)});
  }
  t.print(std::cout);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\nHost thread-pool triad (for reference, %u hw threads):\n",
              hw);
  table h({"threads", "triad GB/s (host)"});
  for (unsigned threads = 1; threads <= std::min(hw, 4u); threads *= 2) {
    h.add_row({std::to_string(threads),
               format_fixed(host_triad_gbs(static_cast<int>(threads),
                                           1 << 22), 1)});
  }
  h.print(std::cout);

  std::puts("\nBandwidth saturates near the CMG aggregate while compute");
  std::puts("keeps scaling - the same imbalance that makes reduced");
  std::puts("precision (fewer bytes per value) the lever of Fig. 5.");
  return 0;
}
