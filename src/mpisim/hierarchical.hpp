#pragma once

/// \file hierarchical.hpp
/// CMG/node-aware collectives: route intra-node first, cross the torus
/// only between node leaders.
///
/// The paper's Fig. 3 placement puts 4 ranks on every node; a
/// production MPI exploits that by keeping (P/4 - 1) of every
/// collective's traffic off the TofuD links. The `hierarchy` handle
/// caches the two sub-communicators this needs - the node communicator
/// (split_by_node) and the leader communicator (local rank 0 of every
/// node) - so the splits' allgather rounds are paid once at
/// construction, and every collective after that is allocation-free in
/// steady state (a shared scratch arena grows to the largest payload
/// seen, then stops; tests/mpisim_hierarchy_test counts operator new).
///
/// Results are bit-identical to the flat algorithms for the
/// order-insensitive ops (min/max) and for exactly-representable sums
/// (integers, integer-valued doubles); the conformance matrix pins
/// this across all three transports. bench/ablation_hierarchy
/// quantifies when the hierarchy beats the flat algorithms on the
/// modeled fabric - with the contention-aware DES (docs/TOPOLOGY.md)
/// the leader phase's link relief finally shows up in virtual time.
///
/// Tag plan: intra-node and leader phases reuse the collective tag
/// space through each sub-communicator's tag offset; the two
/// root-handoff messages and the barrier tokens use
/// collective_tag_base + 192..195, which no flat collective occupies.

#include <cstddef>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/subcomm.hpp"

namespace tfx::mpisim {

class hierarchy {
 public:
  /// Collective over `comm` (two split() allgathers). All ranks must
  /// construct the hierarchy together, like MPI_Comm_split.
  explicit hierarchy(communicator& comm)
      : comm_(&comm), node_(split_by_node(comm)),
        leaders_(split(comm, node_.rank() == 0 ? 0 : undefined_color,
                       comm.rank())) {}

  /// True on the rank that represents its node on the torus (the
  /// node's lowest global rank).
  [[nodiscard]] bool leader() const { return node_.rank() == 0; }

  [[nodiscard]] const sub_communicator& node() const { return node_; }
  [[nodiscard]] const sub_communicator& leaders() const { return leaders_; }

  /// Node reduce -> leader allreduce -> node bcast. `algo` selects the
  /// leader-phase algorithm (automatic = same size threshold as the
  /// flat allreduce). Mirrored op-for-op by
  /// make_hierarchical_allreduce_program (patterns.hpp).
  template <typename T, typename Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op,
                 coll_algorithm algo = coll_algorithm::automatic) {
    TFX_EXPECTS(in.size() == out.size());
    const std::span<T> incoming = scratch<T>(in.size());
    detail::with_comm_context("hierarchical_allreduce", [&] {
      std::copy(in.begin(), in.end(), out.begin());
      detail::reduce_inplace(node_, out, op, 0, incoming);
      if (leader()) {
        detail::allreduce_inplace(leaders_, out, op, algo, incoming);
      }
      tfx::mpisim::bcast(node_, out, 0);
    });
  }

  /// Node reduce -> leader reduce to the root's node -> handoff to the
  /// root if it is not its node's leader.
  template <typename T, typename Op>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
    TFX_EXPECTS(in.size() == out.size());
    TFX_EXPECTS(root >= 0 && root < comm_->size());
    const std::span<T> incoming = scratch<T>(in.size());
    const int root_node = comm_->placement().node_of(root);
    const int root_leader =
        root_node * comm_->placement().ranks_per_node();
    detail::with_comm_context("hierarchical_reduce", [&] {
      std::copy(in.begin(), in.end(), out.begin());
      detail::reduce_inplace(node_, out, op, 0, incoming);
      if (leader()) {
        detail::reduce_inplace(leaders_, out, op, root_node, incoming);
      }
      if (root_leader != root) {
        const int tag = collective_tag_base + 194;
        if (comm_->rank() == root_leader) {
          comm_->send(std::span<const T>(out.data(), out.size()), root, tag);
        } else if (comm_->rank() == root) {
          comm_->recv(out, root_leader, tag);
        }
      }
    });
  }

  /// Handoff to the root's node leader -> leader bcast -> node bcast.
  template <typename T>
  void bcast(std::span<T> data, int root) {
    TFX_EXPECTS(root >= 0 && root < comm_->size());
    const int root_node = comm_->placement().node_of(root);
    const int root_leader =
        root_node * comm_->placement().ranks_per_node();
    detail::with_comm_context("hierarchical_bcast", [&] {
      if (root_leader != root) {
        const int tag = collective_tag_base + 195;
        if (comm_->rank() == root) {
          comm_->send(std::span<const T>(data.data(), data.size()),
                      root_leader, tag);
        } else if (comm_->rank() == root_leader) {
          comm_->recv(data, root, tag);
        }
      }
      if (leader()) tfx::mpisim::bcast(leaders_, data, root_node);
      tfx::mpisim::bcast(node_, data, 0);
    });
  }

  /// Gather tokens at each node leader, dissemination barrier among
  /// the leaders, release tokens back - log2(nodes) + 2 latency terms
  /// on the torus instead of log2(P).
  void barrier() {
    const int up_tag = collective_tag_base + 192;
    const int down_tag = collective_tag_base + 193;
    detail::with_comm_context("hierarchical_barrier", [&] {
      std::byte token{};
      if (leader()) {
        for (int j = 1; j < node_.size(); ++j) {
          node_.recv_bytes(std::span<std::byte>(&token, 1), j, up_tag);
        }
        tfx::mpisim::barrier(leaders_);
        for (int j = 1; j < node_.size(); ++j) {
          node_.send_bytes(std::span<const std::byte>(&token, 1), j,
                           down_tag);
        }
      } else {
        node_.send_bytes(std::span<const std::byte>(&token, 1), 0, up_tag);
        node_.recv_bytes(std::span<std::byte>(&token, 1), 0, down_tag);
      }
    });
  }

 private:
  /// Scratch arena shared by all collectives: grows to the largest
  /// payload ever used, then every later call is allocation-free.
  template <typename T>
  std::span<T> scratch(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    const std::size_t bytes = n * sizeof(T);
    if (scratch_.size() < bytes) scratch_.resize(bytes);
    return {reinterpret_cast<T*>(scratch_.data()), n};
  }

  communicator* comm_;
  sub_communicator node_;
  sub_communicator leaders_;
  std::vector<std::byte> scratch_;
};

/// One-shot composed form (constructs the hierarchy, two splits, every
/// call). Kept for ad-hoc use; steady-state code should hold a
/// `hierarchy`.
template <typename T, typename Op>
void hierarchical_allreduce(communicator& comm, std::span<const T> in,
                            std::span<T> out, Op op) {
  hierarchy h(comm);
  h.allreduce(in, out, op);
}

}  // namespace tfx::mpisim
