#pragma once

/// \file autopilot.hpp
/// Online precision autopilot: Sherlog range monitoring + a graceful
/// escalation ladder for reduced-precision production runs.
///
/// The paper picks the Float16 scaling s = 2^k *offline* from Sherlog
/// exponent histograms (fp/sherlog.hpp, fp/scaling.hpp, § III-B). That
/// leaves every production f16 run one regime shift away from a
/// subnormal flush-out or an overflow NaN that fail-stops the member.
/// The autopilot closes the loop online:
///
///  * every `check_every` member steps it samples a **shadow stripe**:
///    `stripe_rows` consecutive rows of the scaled prognostic state
///    (rotating through the grid) are copied into a small
///    `sherlog<double>` state and one RHS evaluation is run on them,
///    recording the exponent of every arithmetic result — plus the raw
///    stripe values themselves — into a per-member
///    `fp::exponent_histogram` window. The shadow runs in double, so
///    it sees the magnitudes *before* the production format flushes or
///    overflows them: that is the early warning.
///  * `assess()` compares the window against the member's admitted
///    format range (the same fraction-below-subnormal /
///    fraction-at-overflow quantities `fp::choose_scaling` reports)
///    and answers with a deterministic escalation ladder:
///      (1) **rescale**  — an exact power-of-two restate of the
///          prognostic state and `log2_scale` (powers of two perturb
///          no mantissa bits of in-range values);
///      (2) **promote**  — move the member one rung up a declared
///          precision ladder (the caller owns the ladder; the ensemble
///          engine uses f16 -> bf16 -> f32 -> f64);
///      (3) **fail**     — a typed permanent failure, only once both
///          cheaper rungs are exhausted.
///  * `on_numerical_error()` is the reactive entry: a health-sentinel
///    trip (swm::numerical_error) maps to rollback + the same ladder.
///
/// Decisions depend only on member-local state (the window histogram
/// and the member's own counters), never on scheduling, so a repair
/// sequence is bit-reproducible across thread pools and submission
/// orders — the property tests/ensemble_repair_test pins.
///
/// The monitor only *reads* the model state; with no action taken the
/// member's trajectory is bit-identical to an unmonitored run. The
/// current thread's `fp::sherlog_sink()` is saved and restored around
/// every shadow evaluation, so the autopilot can ride inside code that
/// itself uses Sherlogs.

#include <cstdint>
#include <memory>

#include "fp/scaling.hpp"
#include "fp/sherlog.hpp"
#include "swm/field.hpp"
#include "swm/params.hpp"
#include "swm/rhs.hpp"

namespace tfx::swm {

/// Tuning knobs of the monitor and ladder. Defaults are conservative:
/// a member showing more than 0.1% of its shadow samples inside the
/// guard bands escalates.
struct autopilot_options {
  /// Sample + assess every this many member steps; 0 disables the
  /// autopilot entirely (the member behaves exactly as before).
  int check_every = 0;

  /// Rows of the shadow stripe (clamped to the member's ny). The
  /// stripe rotates through the grid, so successive checks see
  /// different rows.
  int stripe_rows = 4;

  /// Escalate when more than this fraction of window samples lies
  /// below the format's min normal exponent + subnormal_guard.
  double max_subnormal_fraction = 1e-3;
  int subnormal_guard = 0;

  /// Escalate when more than this fraction of window samples lies at
  /// or above the format's overflow exponent - overflow_guard.
  double max_overflow_fraction = 1e-3;
  int overflow_guard = 1;

  /// Rescales a member may take over its lifetime before the ladder
  /// moves on to promotion.
  int max_rescales = 2;

  /// Binades kept clear between the window's *unclipped* top and the
  /// format ceiling when picking a rescale. choose_scaling centres the
  /// clipped window, but the discarded tail (stencil intermediates, a
  /// few large products) still has to fit after the shift: an
  /// overshooting lift trades a subnormal flush for an overflow NaN.
  int rescale_headroom = 2;

  /// false: the ladder skips promotion and goes straight from rescale
  /// exhaustion to typed failure (a member pinned to its format).
  bool allow_promote = true;

  /// Outlier clip handed to fp::choose_scaling.
  double clip = 1e-4;
};

enum class autopilot_action : std::uint8_t {
  none,     ///< range healthy, do nothing
  rescale,  ///< exact power-of-two restate at verdict.log2_scale
  promote,  ///< move one rung up the caller's precision ladder
  retry,    ///< reactive only: roll back and re-run unchanged
  fail,     ///< ladder exhausted: typed permanent failure
};

enum class autopilot_cause : std::uint8_t {
  none,
  subnormal_drift,   ///< window mass drifting below the normal range
  overflow_drift,    ///< window mass drifting toward overflow
  nonfinite_shadow,  ///< the shadow evaluation itself saw NaN/Inf
  numerical_error,   ///< reactive: the health sentinel tripped
};

constexpr const char* autopilot_action_name(autopilot_action a) {
  switch (a) {
    case autopilot_action::none: return "none";
    case autopilot_action::rescale: return "rescale";
    case autopilot_action::promote: return "promote";
    case autopilot_action::retry: return "retry";
    case autopilot_action::fail: return "fail";
  }
  return "?";
}

constexpr const char* autopilot_cause_name(autopilot_cause c) {
  switch (c) {
    case autopilot_cause::none: return "none";
    case autopilot_cause::subnormal_drift: return "subnormal_drift";
    case autopilot_cause::overflow_drift: return "overflow_drift";
    case autopilot_cause::nonfinite_shadow: return "nonfinite_shadow";
    case autopilot_cause::numerical_error: return "numerical_error";
  }
  return "?";
}

/// What assess() / on_numerical_error() answer.
struct autopilot_verdict {
  autopilot_action action = autopilot_action::none;
  autopilot_cause cause = autopilot_cause::none;
  int log2_scale = 0;  ///< rescale only: the new member scale
  /// true: the member's current state is suspect — the caller must
  /// restart the action from its last good snapshot instead of the
  /// live state (always set on the reactive path).
  bool rollback = false;
  double subnormal_fraction = 0;  ///< of the assessed window
  double overflow_fraction = 0;
};

/// Per-member range monitor + escalation policy. Not thread-safe: the
/// owner (one ensemble member, stepped by one worker at a time) calls
/// sample/assess from whatever thread currently steps the member.
class autopilot {
 public:
  /// `target` is the admitted exponent range of the member's format
  /// (fp::float16_range for a Float16 member); `member_params` the
  /// member's model parameters — the shadow stripe copies its grid
  /// spacing, physics and current log2_scale so the shadow arithmetic
  /// matches the member's scaled domain.
  autopilot(autopilot_options opt, fp::format_range target,
            const swm_params& member_params);
  ~autopilot();
  autopilot(const autopilot&) = delete;
  autopilot& operator=(const autopilot&) = delete;

  /// Record one shadow-stripe sample of the scaled prognostic state
  /// into the window: the stripe's raw values plus every arithmetic
  /// result of one sherlog<double> RHS evaluation on it. Reads the
  /// state only; saves/restores the thread's sherlog_sink().
  template <typename Tprog>
  void sample(const state<Tprog>& prog) {
    const int ny = prog.ny();
    const int nx = stripe_params_.nx;
    const int rows = stripe_params_.ny;
    for (int jj = 0; jj < rows; ++jj) {
      const int j = (row0_ + jj) % ny;
      for (int i = 0; i < nx; ++i) {
        stripe_in_.u(i, jj) = static_cast<double>(prog.u(i, j));
        stripe_in_.v(i, jj) = static_cast<double>(prog.v(i, j));
        stripe_in_.eta(i, jj) = static_cast<double>(prog.eta(i, j));
      }
    }
    row0_ = (row0_ + rows) % ny;
    sample_impl();
  }

  /// Inject one value into the window directly (tests, and callers
  /// that fold extra observations in).
  void observe(double value) { window_.record(value); }

  /// Evaluate the window against the admitted range and pick the next
  /// ladder action. Resets the window (each assessment judges the
  /// samples since the previous one). `current_log2_scale` is the
  /// member's scale now; a rescale verdict carries the replacement.
  autopilot_verdict assess(int current_log2_scale);

  /// Reactive entry: the member's health sentinel threw. Picks the
  /// escalation for the rolled-back state: first failure retries (or
  /// rescales when the last assessment saw a usable shift), repeated
  /// failures promote.
  autopilot_verdict on_numerical_error(int current_log2_scale);

  /// The caller performed the rescale: track the new scale so the
  /// shadow coefficients follow the member's.
  void note_rescale(int new_log2_scale);

  /// The caller promoted the member: new admitted range + scale, and
  /// the window restarts (the old format's statistics are moot).
  void note_promotion(fp::format_range new_target, int new_log2_scale);

  [[nodiscard]] int rescales() const { return rescales_; }
  [[nodiscard]] int promotions() const { return promotions_; }
  [[nodiscard]] int failures() const { return failures_; }
  [[nodiscard]] int checks() const { return checks_; }
  [[nodiscard]] const fp::exponent_histogram& window() const {
    return window_;
  }
  [[nodiscard]] const autopilot_options& options() const { return opt_; }
  [[nodiscard]] fp::format_range target() const { return target_; }

 private:
  void sample_impl();
  void rebuild_shadow();

  autopilot_options opt_;
  fp::format_range target_;
  swm_params stripe_params_;  ///< ny = stripe rows, same dx/dy/physics
  state<double> stripe_in_;   ///< stripe copy of the scaled state
  state<fp::sherlog64> shadow_state_;
  tendencies<fp::sherlog64> shadow_k_;
  std::unique_ptr<rhs_evaluator<fp::sherlog64>> shadow_rhs_;
  fp::exponent_histogram window_;
  fp::scaling_choice last_choice_{};  ///< from the latest assess()
  bool have_choice_ = false;
  int row0_ = 0;    ///< rotating stripe anchor row
  int src_ny_ = 0;  ///< member grid rows (rotation modulus)
  int checks_ = 0;
  int rescales_ = 0;
  int promotions_ = 0;
  int failures_ = 0;  ///< reactive repairs consumed
};

}  // namespace tfx::swm
