#pragma once

/// \file generic.hpp
/// Type-generic Level 1 BLAS kernels - the C++ analogue of the paper's
/// generic Julia `axpy!` (§ III-A.1):
///
///   function axpy!(a::T, x::Vector{T}, y::Vector{T}) where {T<:Number}
///       @simd for i in eachindex(x, y)
///           @inbounds y[i] = muladd(a, x[i], y[i])
///       end
///       return y
///   end
///
/// One template works for double, float, float16, bfloat16 and
/// sherlog<T>; this single definition is what the whole "productivity"
/// argument of the paper rests on. `@simd`/`@inbounds` correspond to
/// writing a tight, bounds-check-free loop the optimizer can vectorize.

#include <cmath>
#include <cstddef>
#include <span>

#include "core/contracts.hpp"
#include "fp/float16.hpp"
#include "fp/sherlog.hpp"

namespace tfx::kernels {

/// muladd for the built-in types. Julia's `muladd` documents "may fuse,
/// may not — whichever is faster", which makes results depend on the
/// compiler's contraction mood (-ffp-contract, FMA availability). That
/// nondeterminism is exactly what the swappable-backend contract cannot
/// tolerate: the fixed-width vector kernels (kernels/simd.hpp) must be
/// bit-identical to this scalar definition on every target. So the
/// library pins ONE semantics: muladd(a, b, c) is round(round(a*b) + c)
/// — multiply rounded, then add rounded, never contracted into a single
/// fused step. The assoc barrier blocks the compiler from combining the
/// two (GCC >= 12 / clang); tests/kernels_simd_test pins the contract
/// with a case where fma and mul-then-add differ
/// (docs/KERNELS.md#muladd-contract).
#if defined(__GNUC__) && (__GNUC__ >= 12 || defined(__clang__))
constexpr double muladd(double a, double b, double c) {
  return __builtin_assoc_barrier(a * b) + c;
}
constexpr float muladd(float a, float b, float c) {
  return __builtin_assoc_barrier(a * b) + c;
}
#else
constexpr double muladd(double a, double b, double c) { return a * b + c; }
constexpr float muladd(float a, float b, float c) { return a * b + c; }
#endif
// float16/bfloat16/sherlog pick up their own muladd via ADL from tfx::fp.

/// y <- a*x + y. The headline kernel of the paper's Fig. 1.
template <typename T>
void axpy(T a, std::span<const T> x, std::span<T> y) {
  TFX_EXPECTS(x.size() == y.size());
  using tfx::fp::muladd;  // ADL fallback for the soft-float types
  using tfx::kernels::muladd;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = muladd(a, x[i], y[i]);
  }
}

/// dot <- x . y (sequential reduction, as the reference BLAS does).
template <typename T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y) {
  TFX_EXPECTS(x.size() == y.size());
  using tfx::fp::muladd;
  using tfx::kernels::muladd;
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc = muladd(x[i], y[i], acc);
  return acc;
}

/// x <- a*x.
template <typename T>
void scal(T a, std::span<T> x) {
  for (auto& v : x) v = a * v;
}

/// y <- x.
template <typename T>
void copy(std::span<const T> x, std::span<T> y) {
  TFX_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// sum of |x_i| (the BLAS asum).
template <typename T>
[[nodiscard]] T asum(std::span<const T> x) {
  using std::abs;
  using tfx::fp::abs;
  T acc{};
  for (const T& v : x) acc += abs(v);
  return acc;
}

/// Euclidean norm, computed with scaling against spurious
/// overflow/underflow (the classic netlib dnrm2 algorithm) - exactly
/// the kind of range care § III-B says Float16 code needs.
template <typename T>
[[nodiscard]] T nrm2(std::span<const T> x) {
  using std::abs;
  using std::sqrt;
  using tfx::fp::abs;
  using tfx::fp::sqrt;
  T scale{};
  T ssq{1};
  bool any = false;
  for (const T& v : x) {
    if (v == T{}) continue;
    any = true;
    const T a = abs(v);
    if (scale < a) {
      const T r = scale / a;
      ssq = T{1} + ssq * (r * r);
      scale = a;
    } else {
      const T r = a / scale;
      ssq = ssq + r * r;
    }
  }
  if (!any) return T{};
  return scale * sqrt(ssq);
}

/// Index of the element with the largest magnitude (BLAS iamax);
/// returns 0 for an empty span.
template <typename T>
[[nodiscard]] std::size_t iamax(std::span<const T> x) {
  using std::abs;
  using tfx::fp::abs;
  std::size_t best = 0;
  T best_mag{};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const T m = abs(x[i]);
    if (i == 0 || best_mag < m) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

}  // namespace tfx::kernels
