// The IMB-style drivers and the two harness personalities: this test
// pins the qualitative claims of Figs. 2-3 (§ III-A.2).

#include <gtest/gtest.h>

#include <cmath>

#include "imb/benchmarks.hpp"

using namespace tfx::imb;

namespace {

bench_config quick_config() {
  bench_config c;
  c.warmup = 1;
  c.repetitions = 3;
  return c;
}

}  // namespace

TEST(Sizes, PowerOfTwoGeneration) {
  const auto s = power_of_two_sizes(0, 4, true);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 1u);
  EXPECT_EQ(s[5], 16u);
}

TEST(BufferTouch, ColdBuffersCostMoreThanHot) {
  const bench_config c = quick_config();
  for (std::size_t bytes : {1024u, 16384u, 65536u}) {
    if (bytes > c.net.eager_threshold) continue;
    const double hot = buffer_touch_seconds(c.machine, mpi_jl, c.net, bytes);
    const double cold = buffer_touch_seconds(c.machine, imb_c, c.net, bytes);
    EXPECT_GT(cold, hot) << "bytes=" << bytes;
  }
}

TEST(BufferTouch, RendezvousIsZeroCopy) {
  const bench_config c = quick_config();
  const std::size_t big = c.net.eager_threshold + 1;
  EXPECT_EQ(buffer_touch_seconds(c.machine, imb_c, c.net, big), 0.0);
  EXPECT_EQ(buffer_touch_seconds(c.machine, mpi_jl, c.net, big), 0.0);
}

TEST(PingPong, LatencyMonotoneAndThroughputSaturates) {
  const auto sizes = power_of_two_sizes(0, 22);
  const auto res = run_pingpong(imb_c, quick_config(), sizes);
  ASSERT_EQ(res.size(), sizes.size());
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_GE(res[i].latency_s, res[i - 1].latency_s * 0.999)
        << "size " << res[i].bytes;
  }
  // Small-message latency in the microsecond decade (R-CCS plots).
  EXPECT_GT(res.front().latency_s, 0.2e-6);
  EXPECT_LT(res.front().latency_s, 5e-6);
  // Peak throughput approaches the TofuD link bandwidth.
  const auto& last = res.back();
  EXPECT_GT(last.throughput_Bps, 0.7 * quick_config().net.link_bandwidth_Bps);
  EXPECT_LT(last.throughput_Bps, quick_config().net.link_bandwidth_Bps);
}

TEST(PingPong, JuliaFasterBelowL1ThenConverges) {
  // The paper's crossover: "MPI.jl appears to show better latency than
  // IMB for messages with size up to 64 KiB, which corresponds to the
  // size of the L1 cache" - MPIBenchmarks.jl reuses hot buffers.
  const bench_config c = quick_config();
  const auto sizes = power_of_two_sizes(10, 22);  // 1 KiB .. 4 MiB
  const auto jl = run_pingpong(mpi_jl, c, sizes);
  const auto imb = run_pingpong(imb_c, c, sizes);
  ASSERT_EQ(jl.size(), imb.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // Crossover: the dispatch overhead loses to the cold-buffer cost
    // once messages reach several KiB; above the eager threshold
    // (64 KiB = L1 size) zero-copy erases the difference.
    if (sizes[i] >= 8192 && sizes[i] <= c.net.eager_threshold) {
      EXPECT_LT(jl[i].latency_s, imb[i].latency_s)
          << "jl should look faster at " << sizes[i];
    }
  }
  // "peak throughput of ping-pong communication with MPI.jl is within
  // 1% of that reported by R-CCS".
  const double ratio =
      jl.back().throughput_Bps / imb.back().throughput_Bps;
  EXPECT_NEAR(ratio, 1.0, 0.01);
}

TEST(PingPong, JuliaSlightlySlowerAtTinySizes) {
  // The dispatch overhead dominates when the buffer-touch effect is
  // negligible (very small messages).
  const bench_config c = quick_config();
  const auto sizes = power_of_two_sizes(0, 2);
  const auto jl = run_pingpong(mpi_jl, c, sizes);
  const auto imb = run_pingpong(imb_c, c, sizes);
  EXPECT_GT(jl[0].latency_s, imb[0].latency_s);
}

TEST(Collectives, LatencyGrowsWithSizeAndRanks) {
  const bench_config c = quick_config();
  const auto place8 = tfx::mpisim::torus_placement::line(8);
  const auto place32 = tfx::mpisim::torus_placement::line(32);
  const auto sizes = power_of_two_sizes(2, 16);

  const auto r8 = run_collective(collective_kind::allreduce, imb_c, c,
                                 place8, sizes);
  const auto r32 = run_collective(collective_kind::allreduce, imb_c, c,
                                  place32, sizes);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(r8[i].latency_s, r8[i - 1].latency_s * 0.98);
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_GT(r32[i].latency_s, r8[i].latency_s);  // more ranks, more rounds
  }
}

TEST(Collectives, AllThreeFig3KindsRun) {
  const bench_config c = quick_config();
  const auto place = tfx::mpisim::torus_placement::line(16);
  const auto sizes = power_of_two_sizes(2, 12);
  for (const auto kind : {collective_kind::allreduce, collective_kind::reduce,
                          collective_kind::gatherv}) {
    const auto res = run_collective(kind, mpi_jl, c, place, sizes);
    ASSERT_EQ(res.size(), sizes.size());
    for (const auto& m : res) {
      EXPECT_GT(m.latency_s, 0.0);
      EXPECT_LT(m.latency_s, 1.0);
    }
  }
}

TEST(Collectives, JuliaOverheadShrinksWithSize) {
  const bench_config c = quick_config();
  const auto place = tfx::mpisim::torus_placement::line(16);
  const auto sizes = power_of_two_sizes(2, 20);
  const auto jl = run_collective(collective_kind::allreduce, mpi_jl, c,
                                 place, sizes);
  const auto imb = run_collective(collective_kind::allreduce, imb_c, c,
                                  place, sizes);
  const double small_gap =
      jl.front().latency_s / imb.front().latency_s;
  const double large_gap = jl.back().latency_s / imb.back().latency_s;
  EXPECT_GT(small_gap, 1.0);   // visible overhead at 4 B
  EXPECT_LT(large_gap, 1.05);  // negligible at 1 MiB
  EXPECT_LT(large_gap, small_gap);
}

TEST(Collectives, NoAllreducePerformanceDropAtLargeSizes) {
  // "contrary to [16], we did not find a significant performance drop
  // for the Allreduce operation for larger message sizes": per-byte
  // cost must not jump across the ring-algorithm switchover.
  const bench_config c = quick_config();
  const auto place = tfx::mpisim::torus_placement::line(16);
  const auto sizes = power_of_two_sizes(16, 22);  // 64 KiB .. 4 MiB
  const auto res = run_collective(collective_kind::allreduce, mpi_jl, c,
                                  place, sizes);
  for (std::size_t i = 1; i < res.size(); ++i) {
    const double per_byte_prev =
        res[i - 1].latency_s / static_cast<double>(res[i - 1].bytes);
    const double per_byte = res[i].latency_s / static_cast<double>(res[i].bytes);
    EXPECT_LT(per_byte, per_byte_prev * 1.5) << "size " << res[i].bytes;
  }
}

TEST(Fig3Placement, MatchesPaperGeometry) {
  const auto place = fugaku_fig3_placement();
  EXPECT_EQ(place.node_count(), 384);
  EXPECT_EQ(place.rank_count(), 1536);
  EXPECT_EQ(place.ranks_per_node(), 4);
}

TEST(P2PFamily, PingPingSendrecvExchangeShapes) {
  const bench_config c = quick_config();
  const auto sizes = power_of_two_sizes(4, 16);
  const auto pong = run_pingpong(mpi_jl, c, sizes);
  const auto ping = run_pingping(mpi_jl, c, sizes);
  const auto srv = run_sendrecv(mpi_jl, c, 6, sizes);
  const auto exch = run_exchange(mpi_jl, c, 6, sizes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // A full duplex exchange takes at least the one-way time and at
    // most a round trip.
    EXPECT_GE(ping[i].latency_s, pong[i].latency_s * 0.99) << sizes[i];
    EXPECT_LE(ping[i].latency_s, 2.2 * pong[i].latency_s) << sizes[i];
    // Exchange moves twice Sendrecv's bytes; it must cost more than
    // Sendrecv but less than twice (duplex overlap).
    EXPECT_GT(exch[i].latency_s, srv[i].latency_s) << sizes[i];
    EXPECT_LT(exch[i].latency_s, 2.5 * srv[i].latency_s) << sizes[i];
    // Monotone in size.
    if (i > 0) {
      EXPECT_GE(srv[i].latency_s, srv[i - 1].latency_s * 0.999);
      EXPECT_GE(exch[i].latency_s, exch[i - 1].latency_s * 0.999);
    }
  }
}
