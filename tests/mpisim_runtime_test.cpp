// The threaded message-passing runtime: matching, ordering, virtual
// clocks, placement, and failure propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "mpisim/network.hpp"
#include "mpisim/runtime.hpp"

using namespace tfx::mpisim;

TEST(TorusPlacement, CoordinatesAndHops) {
  const torus_placement t({4, 6, 16}, 4);
  EXPECT_EQ(t.node_count(), 384);
  EXPECT_EQ(t.rank_count(), 1536);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);

  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 1);          // +x neighbour
  EXPECT_EQ(t.hops(0, 3), 1);          // wraparound in x (4 wide)
  EXPECT_EQ(t.hops(0, 4), 1);          // +y neighbour
  const int far = 2 + 3 + 8;           // max per-dim distances
  EXPECT_EQ(t.hops(0, t.node_count() - 1), 1 + 1 + 1);  // all wrap by 1
  int max_h = 0;
  for (int n = 0; n < t.node_count(); ++n) max_h = std::max(max_h, t.hops(0, n));
  EXPECT_EQ(max_h, far);
}

TEST(Network, TransferTimeComponents) {
  const tofud_params net;
  const auto place = torus_placement::line(4);
  // Small message, 1 hop: alpha + per_hop + bytes/bw.
  const double t1 = transfer_seconds(net, place, 0, 1, 8);
  EXPECT_NEAR(t1, net.alpha_s + net.per_hop_s + 8 / net.link_bandwidth_Bps,
              1e-12);
  // 2 hops cost one per_hop more.
  const double t2 = transfer_seconds(net, place, 0, 2, 8);
  EXPECT_NEAR(t2 - t1, net.per_hop_s, 1e-12);
  // Rendezvous surcharge above the eager threshold.
  const double eager = transfer_seconds(net, place, 0, 1, net.eager_threshold);
  const double rndv =
      transfer_seconds(net, place, 0, 1, net.eager_threshold + 1);
  EXPECT_GT(rndv - eager, net.rendezvous_extra_s * 0.9);
}

TEST(Network, IntraNodeIsCheaper) {
  const tofud_params net;
  const torus_placement place({2, 1, 1}, 2);  // 2 nodes x 2 ranks
  const double intra = transfer_seconds(net, place, 0, 1, 1024);
  const double inter = transfer_seconds(net, place, 0, 2, 1024);
  EXPECT_LT(intra, inter);
}

TEST(Runtime, SendRecvMovesData) {
  world w(2);
  w.run([](communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4};
      comm.send(std::span<const int>(data), 1, 7);
    } else {
      std::vector<int> got(4);
      const auto st = comm.recv(std::span<int>(got), 0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 16u);
    }
  });
}

TEST(Runtime, TagMatchingOutOfOrder) {
  world w(2);
  w.run([](communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(111, 1, /*tag=*/1);
      comm.send_value(222, 1, /*tag=*/2);
    } else {
      // Receive tag 2 first although it was sent second.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(Runtime, FifoPerSourceAndTag) {
  world w(2);
  w.run([](communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value(i, 1, 3);
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST(Runtime, AnySourceAndAnyTag) {
  world w(3);
  w.run([](communicator& comm) {
    if (comm.rank() != 0) {
      comm.send_value(comm.rank() * 100, 0, comm.rank());
    } else {
      int sum = 0;
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        const auto st = comm.recv_bytes(
            std::as_writable_bytes(std::span<int>(&v, 1)), any_source,
            any_tag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 300);
    }
  });
}

TEST(Runtime, VirtualClockPingPong) {
  // One round trip: each leg costs o_send + transfer + o_recv on the
  // receiving side's clock; rank 0's final clock is exactly the sum.
  const tofud_params net;
  world w(2, net);
  w.run([&](communicator& comm) {
    std::vector<std::byte> buf(64);
    if (comm.rank() == 0) {
      comm.send_bytes(buf, 1, 1);
      comm.recv_bytes(buf, 1, 2);
    } else {
      comm.recv_bytes(buf, 0, 1);
      comm.send_bytes(buf, 0, 2);
    }
  });
  const double leg = net.send_overhead_s +
                     transfer_seconds(net, w.placement(), 0, 1, 64) +
                     net.recv_overhead_s;
  EXPECT_NEAR(w.final_clocks()[0], 2 * leg, 1e-12);
  EXPECT_NEAR(w.final_clocks()[1], leg + net.send_overhead_s, 1e-12);
}

TEST(Runtime, AdvanceAddsToClock) {
  world w(1);
  w.run([](communicator& comm) {
    comm.advance(1.5e-3);
    comm.advance(0.5e-3);
    EXPECT_DOUBLE_EQ(comm.now(), 2.0e-3);
  });
  EXPECT_DOUBLE_EQ(w.final_clocks()[0], 2.0e-3);
}

TEST(Runtime, ReceiverWaitsForVirtualArrival) {
  // The receiver's clock jumps to the arrival time even if it posted
  // the receive "early" (clock 0).
  const tofud_params net;
  world w(2, net);
  w.run([&](communicator& comm) {
    if (comm.rank() == 0) {
      comm.advance(100e-6);  // sender is busy for 100 us first
      comm.send_value(42, 1, 0);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 0), 42);
      EXPECT_GT(comm.now(), 100e-6);  // inherited the sender's lateness
    }
  });
}

TEST(Runtime, SendrecvDoesNotDeadlock) {
  world w(2);
  w.run([](communicator& comm) {
    const int peer = 1 - comm.rank();
    int out = comm.rank(), in = -1;
    comm.sendrecv_bytes(std::as_bytes(std::span<const int>(&out, 1)), peer, 5,
                        std::as_writable_bytes(std::span<int>(&in, 1)), peer,
                        5);
    EXPECT_EQ(in, peer);
  });
}

TEST(Runtime, ExceptionPropagatesToRun) {
  world w(2);
  EXPECT_THROW(w.run([](communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 failed");
    // rank 0 must not deadlock: it only sends.
    comm.send_value(1, 1, 0);
  }),
               std::runtime_error);
}

TEST(Runtime, ReusableAcrossRuns) {
  world w(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round) {
    w.run([&](communicator& comm) {
      if (comm.rank() == 0) {
        comm.send_value(round, 1, 0);
      } else {
        total += comm.recv_value<int>(0, 0);
      }
    });
  }
  EXPECT_EQ(total.load(), 0 + 1 + 2);
}

TEST(Runtime, SingleRankWorld) {
  world w(1);
  w.run([](communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    // Self-send works (eager).
    comm.send_value(9, 0, 0);
    EXPECT_EQ(comm.recv_value<int>(0, 0), 9);
  });
}
