#include "core/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace tfx {

cli::cli(int argc, const char* const* argv,
         std::map<std::string, std::string> spec)
    : program_(argc > 0 ? argv[0] : "bench"), spec_(std::move(spec)) {
  spec_.try_emplace("help", "print this message");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      help_ = true;
      return;
    }
    arg.erase(0, 2);
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (!spec_.contains(arg)) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(),
                   arg.c_str());
      help_ = true;
      return;
    }
    values_[arg] = value;
  }
  if (values_.contains("help")) help_ = true;
}

bool cli::has(const std::string& name) const { return values_.contains(name); }

std::optional<std::string> cli::value(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  return std::nullopt;
}

std::int64_t cli::get_int(const std::string& name, std::int64_t fallback) const {
  if (auto v = value(name); v && !v->empty())
    return std::strtoll(v->c_str(), nullptr, 10);
  return fallback;
}

double cli::get_double(const std::string& name, double fallback) const {
  if (auto v = value(name); v && !v->empty())
    return std::strtod(v->c_str(), nullptr);
  return fallback;
}

std::string cli::get_string(const std::string& name,
                            std::string fallback) const {
  if (auto v = value(name); v && !v->empty()) return *v;
  return fallback;
}

std::string cli::help() const {
  std::string out = "usage: " + program_ + " [options]\n";
  for (const auto& [name, desc] : spec_) {
    out += "  --" + name;
    out.append(name.size() < 18 ? 18 - name.size() : 1, ' ');
    out += desc + "\n";
  }
  return out;
}

}  // namespace tfx
