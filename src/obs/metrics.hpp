#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry for the observability plane:
/// monotonic counters, gauges, and fixed-bucket histograms, exported
/// as a flat core/table (docs/TRACING.md).
///
/// Hot-path contract: name lookup takes the registry mutex, so the
/// instrumented per-element loops never touch the registry directly -
/// they accumulate locally and flush at region/step/run boundaries.
/// Updates on an obtained handle (counter::add, histogram::observe)
/// are relaxed atomics and allocation-free, and looking up an existing
/// name via std::map's transparent comparator allocates nothing, so
/// after the first touch of each metric (the warm-up) the convenience
/// entry points below stay heap-free too. Everything is gated on
/// tfx::obs::active() and compiles out entirely under TFX_OBS=OFF.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace tfx {
class table;  // core/table.hpp
}

namespace tfx::obs {

/// Monotonic counter.
class metric_counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge.
class metric_gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations x with
/// x <= upper[i]; the final bucket is the +inf overflow. Bucket bounds
/// are fixed at creation (no allocation on observe()).
class metric_histogram {
 public:
  explicit metric_histogram(std::span<const double> uppers)
      : uppers_(uppers.begin(), uppers.end()),
        counts_(uppers_.size() + 1) {}

  void observe(double x) {
    std::size_t i = 0;
    while (i < uppers_.size() && x > uppers_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  /// Upper bound of bucket i; the last bucket has no finite bound.
  [[nodiscard]] double upper(std::size_t i) const { return uppers_[i]; }
  [[nodiscard]] std::uint64_t count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& c : counts_) t += c.load(std::memory_order_relaxed);
    return t;
  }
  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<double> uppers_;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

/// The process-wide registry. get_* creates on first use and returns a
/// stable reference thereafter (entries are never removed except by
/// clear(), which is a quiescent test-only operation).
class metrics_registry {
 public:
  static metrics_registry& instance() {
    static metrics_registry reg;
    return reg;
  }

  metric_counter& get_counter(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name),
                             std::make_unique<metric_counter>())
               .first;
    }
    return *it->second;
  }

  metric_gauge& get_gauge(std::string_view name) {
    const std::scoped_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name),
                           std::make_unique<metric_gauge>())
               .first;
    }
    return *it->second;
  }

  /// Bucket bounds apply only on first creation of `name`.
  metric_histogram& get_histogram(std::string_view name,
                                  std::span<const double> uppers) {
    const std::scoped_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(std::string(name),
                        std::make_unique<metric_histogram>(uppers))
               .first;
    }
    return *it->second;
  }

  /// Zero every metric, keeping registrations (bucket layouts survive).
  void reset();
  /// Drop every metric (quiescent; tests only).
  void clear();

  /// Flat export: columns {metric, type, value} with histograms
  /// flattened to one row per bucket. Defined in metrics.cpp.
  [[nodiscard]] tfx::table to_table() const;

 private:
  metrics_registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<metric_counter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<metric_gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<metric_histogram>, std::less<>>
      histograms_;
};

// -- gated convenience entry points (no-ops when tracing is off) ------------

inline void metric_add(std::string_view name, std::uint64_t delta = 1) {
  if constexpr (compiled) {
    if (!active()) return;
    metrics_registry::instance().get_counter(name).add(delta);
  }
}

inline void metric_set(std::string_view name, double value) {
  if constexpr (compiled) {
    if (!active()) return;
    metrics_registry::instance().get_gauge(name).set(value);
  }
}

inline void metric_observe(std::string_view name,
                           std::span<const double> uppers, double x) {
  if constexpr (compiled) {
    if (!active()) return;
    metrics_registry::instance().get_histogram(name, uppers).observe(x);
  }
}

}  // namespace tfx::obs
