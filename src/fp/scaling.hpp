#pragma once

/// \file scaling.hpp
/// Choosing the multiplicative scaling `s` of the equations.
///
/// The paper (§ III-B): "The available normal range of Float16,
/// 6e-5 to 65504, is less than 10 orders of magnitude and scaling is
/// often required to guarantee no under or overflow. [...] we developed
/// the analysis-number format Sherlogs.jl, which records a histogram of
/// numbers during the simulation that allowed us to monitor, for
/// example, how a multiplicative scaling s of the equations avoids
/// Float16 subnormals."
///
/// `choose_scaling` implements that workflow: given the exponent
/// histogram from a Sherlog development run and a description of the
/// target format, it returns the power-of-two scale that centres the
/// observed dynamic range inside the target's safe range. Powers of two
/// are exact in binary arithmetic, so the scaling perturbs no bits.

#include <cstdint>

#include "fp/sherlog.hpp"

namespace tfx::fp {

/// Exponent range of a floating-point target format.
struct format_range {
  int min_normal_exponent;  ///< smallest e with 2^e normal (binary16: -14)
  int max_exponent;         ///< largest e with 2^e finite (binary16: 15)
};

inline constexpr format_range float16_range{-14, 15};
inline constexpr format_range bfloat16_range{-126, 127};
inline constexpr format_range float32_range{-126, 127};
inline constexpr format_range float64_range{-1022, 1023};

/// Result of the scaling search.
struct scaling_choice {
  int log2_scale = 0;       ///< s = 2^log2_scale
  double scale = 1.0;       ///< the factor itself
  double subnormal_fraction_before = 0;  ///< samples below normal range, unscaled
  double subnormal_fraction_after = 0;   ///< ... after scaling
  double overflow_fraction_after = 0;    ///< samples at/above overflow after scaling
  bool fits = false;        ///< whole observed range fits after scaling
};

/// Choose s = 2^k so that the observed exponent range (between the
/// `clip` and 1-`clip` quantiles, to shrug off stray outliers) sits
/// centred in [target.min_normal_exponent, target.max_exponent].
///
/// When even the clipped range is wider than the target can hold, the
/// scale still centres it and `fits` reports false: the caller must
/// either accept flushed/overflowed tails or restructure the algorithm
/// (the paper's compensated integration is one such restructuring).
scaling_choice choose_scaling(const exponent_histogram& hist,
                              format_range target, double clip = 1e-4);

}  // namespace tfx::fp
