#include "mpisim/network.hpp"

#include "core/contracts.hpp"

namespace tfx::mpisim {

torus_placement::torus_placement(std::array<int, 3> shape, int ranks_per_node)
    : shape_(shape), ranks_per_node_(ranks_per_node) {
  TFX_EXPECTS(shape[0] > 0 && shape[1] > 0 && shape[2] > 0);
  TFX_EXPECTS(ranks_per_node > 0);
}

torus_placement torus_placement::line(int nodes, int ranks_per_node) {
  return torus_placement({nodes, 1, 1}, ranks_per_node);
}

std::array<int, 3> torus_placement::coords_of(int node) const {
  TFX_EXPECTS(node >= 0 && node < node_count());
  const int x = node % shape_[0];
  const int y = (node / shape_[0]) % shape_[1];
  const int z = node / (shape_[0] * shape_[1]);
  return {x, y, z};
}

int torus_placement::neighbor_of(int node, int dim, int dir) const {
  TFX_EXPECTS(dim >= 0 && dim < 3);
  TFX_EXPECTS(dir == 1 || dir == -1);
  auto c = coords_of(node);
  const int n = shape_[dim];
  c[dim] = ((c[dim] + dir) % n + n) % n;
  return node_index(c);
}

std::vector<int> torus_placement::route_of(int node_a, int node_b) const {
  TFX_EXPECTS(node_a >= 0 && node_a < node_count());
  TFX_EXPECTS(node_b >= 0 && node_b < node_count());
  std::vector<int> links;
  links.reserve(static_cast<std::size_t>(hops(node_a, node_b)));
  for_each_route_link(node_a, node_b,
                      [&links](int id) { links.push_back(id); });
  return links;
}

int torus_placement::hops(int node_a, int node_b) const {
  const auto a = coords_of(node_a);
  const auto b = coords_of(node_b);
  int total = 0;
  for (int d = 0; d < 3; ++d) {
    const int direct = a[d] > b[d] ? a[d] - b[d] : b[d] - a[d];
    const int wrapped = shape_[d] - direct;
    total += direct < wrapped ? direct : wrapped;
  }
  return total;
}

double transfer_latency_seconds(const tofud_params& net,
                                const torus_placement& place, int src,
                                int dst, std::size_t bytes) {
  double t = 0;
  if (src != dst) {
    const int node_src = place.node_of(src);
    const int node_dst = place.node_of(dst);
    if (node_src == node_dst) {
      t = net.intra_alpha_s;
    } else {
      const int h = place.hops(node_src, node_dst);
      t = net.alpha_s + static_cast<double>(h) * net.per_hop_s;
    }
  }
  if (bytes > net.eager_threshold) t += net.rendezvous_extra_s;
  return t;
}

double serialization_seconds(const tofud_params& net,
                             const torus_placement& place, int src, int dst,
                             std::size_t bytes) {
  const bool on_node = place.node_of(src) == place.node_of(dst);
  const double bw =
      on_node ? net.intra_bandwidth_Bps : net.link_bandwidth_Bps;
  return static_cast<double>(bytes) / bw;
}

double transfer_seconds(const tofud_params& net, const torus_placement& place,
                        int src, int dst, std::size_t bytes) {
  return transfer_latency_seconds(net, place, src, dst, bytes) +
         serialization_seconds(net, place, src, dst, bytes);
}

double reduce_compute_seconds(const tofud_params& net, std::size_t bytes) {
  return static_cast<double>(bytes) * net.reduce_compute_s_per_byte;
}

double backoff_delay_seconds(double timeout_s, double factor, int attempt) {
  TFX_EXPECTS(attempt >= 0);
  double delay = timeout_s;
  for (int k = 0; k < attempt; ++k) delay *= factor;
  return delay;
}

}  // namespace tfx::mpisim
