// Semantics of the float16 type: Julia's extend-compute-truncate model,
// FTZ policy, counters, muladd-vs-fma, ordering, numeric_limits.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/rng.hpp"
#include "fp/float16.hpp"
#include "fp/rounding.hpp"

using tfx::fp::float16;
namespace fp = tfx::fp;

namespace {

float16 h(double v) { return float16(v); }

bool bits_equal(float16 a, float16 b) { return a.bits() == b.bits(); }

}  // namespace

TEST(Float16, BasicValues) {
  EXPECT_EQ(h(0.0).bits(), 0x0000u);
  EXPECT_EQ(h(1.0).bits(), 0x3c00u);
  EXPECT_EQ(h(-1.0).bits(), 0xbc00u);
  EXPECT_EQ(h(0.5).bits(), 0x3800u);
  EXPECT_EQ(h(65504.0).bits(), 0x7bffu);
  EXPECT_EQ(float16(2048).bits(), h(2048.0).bits());
  EXPECT_EQ(static_cast<double>(h(2.0)), 2.0);
}

TEST(Float16, ArithmeticMatchesExactDoubleReference) {
  // The sum/difference/product of two binary16 values is exact in
  // double, so rounding that exact value once (via the round-to-odd
  // f64 path) is the true binary16 result; the operators use the
  // independent binary32 path. The two must agree everywhere (2p+2
  // double-rounding innocuity) - this is the property that makes the
  // software type bit-compatible with A64FX hardware.
  tfx::xoshiro256 rng(7);
  for (int trial = 0; trial < 100000; ++trial) {
    const auto a = float16::from_bits(
        static_cast<std::uint16_t>(rng.bounded(0x7c01)));  // finite, +
    auto b = float16::from_bits(
        static_cast<std::uint16_t>(rng.bounded(0x7c01)));
    if (rng.bounded(2)) b = -b;
    const double da = static_cast<double>(a);
    const double db = static_cast<double>(b);

    EXPECT_TRUE(bits_equal(a + b, float16(da + db)));
    EXPECT_TRUE(bits_equal(a - b, float16(da - db)));
    EXPECT_TRUE(bits_equal(a * b, float16(da * db)));
    if (db != 0.0) {
      // Quotients are not exact in double, but binary32 division is
      // correctly rounded and 2p+2 applies to the f32->f16 narrowing.
      // Cross-check against long-double-free reference: the f32 result.
      const float q = static_cast<float>(a) / static_cast<float>(b);
      EXPECT_TRUE(bits_equal(a / b, float16(q)));
    }
  }
}

TEST(Float16, AssociativityFailsAsExpected) {
  // Documented float behaviour the compensated sums exist for.
  const float16 big = h(2048);
  const float16 one = h(1);
  EXPECT_TRUE(bits_equal((big + one) + one, big));  // 1 below the ulp of 2048
  EXPECT_TRUE(bits_equal(big + (one + one), h(2050)));
}

TEST(Float16, MuladdRoundsTwiceFmaRoundsOnce) {
  // Construct a case where the intermediate rounding changes the
  // result: a*b hits a round-up whose error the addend then exposes.
  // a = 1+2^-10 (ulp above 1), b = 1+2^-10: a*b = 1 + 2^-9 + 2^-20.
  // Rounded to f16: 1 + 2^-9 + 2^-20 -> 1+2^-9 (2^-20 far below the
  // tie). With c = -(1+2^-9): muladd gives 0, fma gives 2^-20.
  const float16 a = float16::from_bits(0x3c01);
  const float16 b = float16::from_bits(0x3c01);
  const float16 c = -(h(1.0) + float16(std::ldexp(1.0, -9)));
  const float16 via_muladd = muladd(a, b, c);
  const float16 via_fma = fma(a, b, c);
  EXPECT_EQ(static_cast<double>(via_muladd), 0.0);
  EXPECT_EQ(static_cast<double>(via_fma), std::ldexp(1.0, -20));
}

TEST(Float16, MuladdEqualsSeparateOps) {
  // muladd must be exactly x*y then +z (the fpext/fptrunc IR of
  // § IV-C), never silently fused.
  tfx::xoshiro256 rng(11);
  for (int trial = 0; trial < 20000; ++trial) {
    const float16 x = float16(rng.uniform(-100.0, 100.0));
    const float16 y = float16(rng.uniform(-100.0, 100.0));
    const float16 z = float16(rng.uniform(-100.0, 100.0));
    EXPECT_TRUE(bits_equal(muladd(x, y, z), x * y + z));
  }
}

TEST(Float16, ComparisonsFollowIEEE) {
  const float16 nan = std::numeric_limits<float16>::quiet_NaN();
  const float16 inf = std::numeric_limits<float16>::infinity();
  EXPECT_FALSE(nan == nan);
  EXPECT_TRUE(nan != nan);
  EXPECT_FALSE(nan < nan);
  EXPECT_TRUE(h(0.0) == h(-0.0));  // signed zeros compare equal
  EXPECT_TRUE(h(1.0) < inf);
  EXPECT_TRUE(-inf < h(-65504.0));
  EXPECT_TRUE(h(1.0) <= h(1.0));
  EXPECT_TRUE(h(2.0) > h(1.0));
}

TEST(Float16, ExhaustiveUnaryClassification) {
  int subnormals = 0, nans = 0, infs = 0, zeros = 0;
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto x = float16::from_bits(static_cast<std::uint16_t>(bits));
    subnormals += x.is_subnormal();
    nans += x.isnan();
    infs += x.isinf();
    zeros += x.iszero();
    // Negation must flip only the sign bit; abs must clear it.
    EXPECT_EQ((-x).bits(), bits ^ 0x8000u);
    EXPECT_EQ(fp::abs(x).bits(), bits & 0x7fffu);
    EXPECT_EQ(x.isfinite(), !x.isnan() && !x.isinf());
  }
  EXPECT_EQ(subnormals, 2 * 1023);
  EXPECT_EQ(nans, 2 * 1023);
  EXPECT_EQ(infs, 2);
  EXPECT_EQ(zeros, 2);
}

TEST(Float16, NumericLimits) {
  using lim = std::numeric_limits<float16>;
  EXPECT_EQ(static_cast<double>(lim::min()), std::ldexp(1.0, -14));
  EXPECT_EQ(static_cast<double>(lim::max()), 65504.0);
  EXPECT_EQ(static_cast<double>(lim::lowest()), -65504.0);
  EXPECT_EQ(static_cast<double>(lim::epsilon()), std::ldexp(1.0, -10));
  EXPECT_EQ(static_cast<double>(lim::denorm_min()), std::ldexp(1.0, -24));
  EXPECT_TRUE(lim::infinity().isinf());
  EXPECT_TRUE(lim::quiet_NaN().isnan());
  EXPECT_EQ(lim::digits, 11);
}

TEST(Float16Ftz, FlushModeFlushesSubnormalResults) {
  fp::counters().reset();
  const float16 tiny = float16(std::ldexp(1.0, -15));  // subnormal-producing ops
  {
    fp::ftz_guard guard(fp::ftz_mode::flush);
    const float16 half_tiny = tiny * h(0.5);  // 2^-16: subnormal
    EXPECT_TRUE(half_tiny.iszero());
    const float16 neg = (-tiny) * h(0.5);
    EXPECT_TRUE(neg.iszero());
    EXPECT_TRUE(neg.signbit());  // flush preserves the sign
  }
  EXPECT_GE(fp::counters().f16_flushed_results, 2u);
}

TEST(Float16Ftz, PreserveModeKeepsGradualUnderflow) {
  fp::set_ftz_mode(fp::ftz_mode::preserve);
  fp::counters().reset();
  const float16 tiny = float16(std::ldexp(1.0, -15));
  const float16 half_tiny = tiny * h(0.5);
  EXPECT_TRUE(half_tiny.is_subnormal());
  EXPECT_EQ(static_cast<double>(half_tiny), std::ldexp(1.0, -16));
  EXPECT_GE(fp::counters().f16_subnormal_results, 1u);
  EXPECT_EQ(fp::counters().f16_flushed_results, 0u);
}

TEST(Float16Ftz, GuardRestoresPreviousMode) {
  fp::set_ftz_mode(fp::ftz_mode::preserve);
  {
    fp::ftz_guard guard(fp::ftz_mode::flush);
    EXPECT_EQ(fp::current_ftz_mode(), fp::ftz_mode::flush);
    {
      fp::ftz_guard inner(fp::ftz_mode::preserve);
      EXPECT_EQ(fp::current_ftz_mode(), fp::ftz_mode::preserve);
    }
    EXPECT_EQ(fp::current_ftz_mode(), fp::ftz_mode::flush);
  }
  EXPECT_EQ(fp::current_ftz_mode(), fp::ftz_mode::preserve);
}

TEST(Float16Counters, OverflowAndNanCounting) {
  fp::counters().reset();
  const float16 big = h(60000.0);
  const float16 inf = big + big;
  EXPECT_TRUE(inf.isinf());
  EXPECT_GE(fp::counters().f16_overflows, 1u);
  const float16 nan = inf - inf;
  EXPECT_TRUE(nan.isnan());
  EXPECT_GE(fp::counters().f16_nans, 1u);
}

TEST(Float16Math, SqrtExpLogRoundCorrectly) {
  EXPECT_EQ(static_cast<double>(fp::sqrt(h(4.0))), 2.0);
  EXPECT_EQ(static_cast<double>(fp::sqrt(h(2.0))),
            static_cast<double>(float16(std::sqrt(2.0))));
  EXPECT_EQ(static_cast<double>(fp::exp(h(0.0))), 1.0);
  EXPECT_EQ(static_cast<double>(fp::log(h(1.0))), 0.0);
  EXPECT_TRUE(fp::isnan(fp::sqrt(h(-1.0))));
  EXPECT_EQ(static_cast<double>(fp::min(h(1.0), h(2.0))), 1.0);
  EXPECT_EQ(static_cast<double>(fp::max(h(1.0), h(2.0))), 2.0);
}

// Parameterized sweep: x -> x * (1/x) stays within one ulp of 1 across
// the full normal range (exercises division+multiplication together).
class Float16ReciprocalSweep : public ::testing::TestWithParam<int> {};

TEST_P(Float16ReciprocalSweep, MulByReciprocalNearOne) {
  const int e = GetParam();
  const float16 x = float16(std::ldexp(1.5, e));
  const float16 r = h(1.0) / x;
  const float16 p = x * r;
  EXPECT_NEAR(static_cast<double>(p), 1.0, std::ldexp(1.0, -10));
}

INSTANTIATE_TEST_SUITE_P(NormalRange, Float16ReciprocalSweep,
                         ::testing::Range(-13, 15));
