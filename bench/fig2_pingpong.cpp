// Figure 2: inter-node ping-pong latency (top panel) and throughput
// (bottom panel), MPI.jl vs IMB (C), 2 ranks on 2 nodes
// ("-L node=2 -mpi max-proc-per-node=1").

#include <cstdio>
#include <iostream>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "imb/benchmarks.hpp"

using namespace tfx;
using namespace tfx::imb;

int main(int argc, char** argv) {
  cli args(argc, argv, {{"max-log2", "largest message exponent (default 22)"}});
  if (args.wants_help()) {
    std::fputs(args.help().c_str(), stderr);
    return 1;
  }
  const auto hi = static_cast<unsigned>(args.get_int("max-log2", 22));

  std::puts("Reproduction of Fig. 2 (PingPong, MPI.jl vs IMB over TofuD).");
  std::puts("Expected shape: MPI.jl slightly slower at tiny sizes (call");
  std::puts("overhead), apparently *faster* from a few KiB to 64 KiB (no");
  std::puts("cache avoidance), identical beyond (zero-copy rendezvous);");
  std::puts("peak throughput within 1%.");

  const bench_config config;
  const auto sizes = power_of_two_sizes(0, hi);
  const auto jl = run_pingpong(mpi_jl, config, sizes);
  const auto ic = run_pingpong(imb_c, config, sizes);

  table lat({"bytes", "MPI.jl latency", "IMB (C) latency", "jl/imb"});
  table tput({"bytes", "MPI.jl GB/s", "IMB (C) GB/s"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    lat.add_row({format_bytes(sizes[i]), format_seconds(jl[i].latency_s),
                 format_seconds(ic[i].latency_s),
                 format_fixed(jl[i].latency_s / ic[i].latency_s, 3)});
    tput.add_row({format_bytes(sizes[i]),
                  format_fixed(jl[i].throughput_Bps / 1e9, 3),
                  format_fixed(ic[i].throughput_Bps / 1e9, 3)});
  }
  std::puts("\n== Fig. 2 top panel: latency ==");
  lat.print(std::cout);
  std::puts("\n== Fig. 2 bottom panel: throughput ==");
  tput.print(std::cout);

  const double peak_ratio =
      jl.back().throughput_Bps / ic.back().throughput_Bps;
  std::printf("\nPeak throughput MPI.jl / IMB: %.4f  (paper: within 1%%)\n",
              peak_ratio);
  return 0;
}
