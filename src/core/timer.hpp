#pragma once

/// \file timer.hpp
/// Wall-clock timing utilities for the benchmark harness.
///
/// The measurement discipline follows the one used by the paper's
/// benchmarks (BenchmarkTools.jl / IMB): repeat the kernel until a
/// minimum total runtime is reached, report the minimum per-iteration
/// time (least-noise estimator for a deterministic kernel), and keep
/// the full sample set around for dispersion statistics.

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/stats.hpp"

namespace tfx {

/// Monotonic stopwatch with nanosecond resolution.
class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds since construction or last reset().
  [[nodiscard]] std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Result of a repeated-measurement run.
struct timing_result {
  std::vector<double> samples;  ///< per-iteration seconds, one per repeat
  std::uint64_t inner_iters = 1;  ///< kernel executions per sample

  [[nodiscard]] double min() const { return stats::min(samples); }
  [[nodiscard]] double median() const { return stats::median(samples); }
  [[nodiscard]] double mean() const { return stats::mean(samples); }
  [[nodiscard]] double max() const { return stats::max(samples); }
};

/// Measure `fn` by running it in batches until each batch takes at least
/// `min_batch_seconds`, collecting `repeats` batch samples.
///
/// Returns per-call seconds for each batch. `fn` must be invocable with
/// no arguments; its result, if any, is discarded (callers should sink
/// side effects themselves, e.g. via a volatile accumulator or by
/// touching output buffers).
template <typename Fn>
timing_result measure(Fn&& fn, int repeats = 7,
                      double min_batch_seconds = 2e-3) {
  timing_result result;
  // Warm-up and batch-size calibration: grow the inner iteration count
  // until one batch is long enough to be timed reliably.
  std::uint64_t iters = 1;
  for (;;) {
    stopwatch sw;
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double t = sw.seconds();
    if (t >= min_batch_seconds || iters >= (1ULL << 30)) break;
    const double scale = t > 0 ? min_batch_seconds / t : 16.0;
    const auto grown = static_cast<std::uint64_t>(
        static_cast<double>(iters) * (scale < 16.0 ? scale * 1.3 + 1.0 : 16.0));
    iters = grown > iters ? grown : iters * 2;
  }
  result.inner_iters = iters;
  result.samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    stopwatch sw;
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    result.samples.push_back(sw.seconds() / static_cast<double>(iters));
  }
  return result;
}

}  // namespace tfx
